package dining

import (
	"context"
	"fmt"
	"iter"

	"repro/internal/par"
	"repro/internal/stats"
)

// Sweep crosses a topology × algorithm × scheduler grid into a scenario
// matrix: every combination becomes one scenario, every scenario runs Trials
// Monte-Carlo trials, and the per-scenario aggregates stream out as workers
// finish. The whole matrix is deterministic: a scenario's trials derive all
// randomness from the base seed and the scenario's grid index, so the matrix
// is bit-identical for any worker count.
type Sweep struct {
	// Topologies is the grid's topology axis (required, at least one).
	Topologies []*Topology
	// Algorithms is the grid's algorithm axis by registered name (required).
	Algorithms []string
	// Schedulers is the grid's scheduler axis by registered name
	// (default: just Random).
	Schedulers []string
	// Faults is the grid's fault axis: fault specs in the internal/fault
	// grammar ("crash-rejoin:0.1", "freeze:0.05@0"); the empty spec "" is the
	// no-fault cell. Default: just the no-fault cell, so existing grids are
	// unchanged.
	Faults []string
	// Trials is the number of runs per scenario (default 10).
	Trials int
	// MaxSteps bounds each run (0 = the simulator default).
	MaxSteps int64
	// Seed is the base seed of the whole sweep.
	Seed uint64
	// Workers bounds the scenario goroutines (0 = one per CPU,
	// 1 = sequential). The matrix is identical for every value.
	Workers int
	// AlgorithmOptions tunes every algorithm in the grid.
	AlgorithmOptions AlgorithmOptions
	// FairnessWindow configures adversarial schedulers in the grid
	// (0 = default).
	FairnessWindow int64
}

// Scenario is one cell of the sweep grid.
type Scenario struct {
	// Index is the scenario's position in grid order (topology-major, then
	// algorithm, then scheduler, then faults); it determines all of the
	// scenario's randomness.
	Index int `json:"index"`
	// Topology, Algorithm and Scheduler name the cell's configuration.
	Topology  string `json:"topology"`
	Algorithm string `json:"algorithm"`
	Scheduler string `json:"scheduler"`
	// Faults is the cell's fault spec ("" = no faults).
	Faults string `json:"faults,omitempty"`

	topo *Topology
}

// ScenarioResult aggregates one scenario's trials.
type ScenarioResult struct {
	Scenario
	// Trials is the number of runs aggregated.
	Trials int `json:"trials"`
	// ProgressRuns counts runs with at least one meal.
	ProgressRuns int `json:"progress_runs"`
	// MeanEats is the mean number of completed meals per run.
	MeanEats float64 `json:"mean_eats"`
	// MeanStepsPerMeal is the mean cost of a meal over runs that ate.
	MeanStepsPerMeal float64 `json:"mean_steps_per_meal"`
	// MeanWaitSteps is the mean hungry-to-eating wait, averaged over runs.
	MeanWaitSteps float64 `json:"mean_wait_steps"`
	// MeanJain is the mean Jain fairness index of per-philosopher meals.
	MeanJain float64 `json:"mean_jain"`
	// StarvedRuns counts runs in which some hungry philosopher never ate.
	StarvedRuns int `json:"starved_runs"`
}

// scenarioSeedStride separates the seed blocks of consecutive scenarios so
// that no two scenarios share a trial seed.
const scenarioSeedStride = 1_000_003

// Scenarios expands the grid into its scenario list in grid order. It errors
// on an empty axis so that a misconfigured sweep fails loudly instead of
// streaming nothing.
func (s Sweep) Scenarios() ([]Scenario, error) {
	if len(s.Topologies) == 0 {
		return nil, fmt.Errorf("dining: Sweep needs at least one topology")
	}
	if len(s.Algorithms) == 0 {
		return nil, fmt.Errorf("dining: Sweep needs at least one algorithm")
	}
	schedulers := s.Schedulers
	if len(schedulers) == 0 {
		schedulers = []string{Random}
	}
	faults := s.Faults
	if len(faults) == 0 {
		faults = []string{""}
	}
	var out []Scenario
	for _, topo := range s.Topologies {
		if topo == nil {
			return nil, fmt.Errorf("dining: Sweep has a nil topology")
		}
		for _, alg := range s.Algorithms {
			for _, sch := range schedulers {
				for _, flt := range faults {
					out = append(out, Scenario{
						Index:     len(out),
						Topology:  topo.Name(),
						Algorithm: alg,
						Scheduler: sch,
						Faults:    flt,
						topo:      topo,
					})
				}
			}
		}
	}
	return out, nil
}

// trials returns the per-scenario trial count.
func (s Sweep) trials() int {
	if s.Trials <= 0 {
		return 10
	}
	return s.Trials
}

// runScenario executes one scenario's trials sequentially (parallelism lives
// at the scenario level) and aggregates them in trial order.
func (s Sweep) runScenario(ctx context.Context, sc Scenario) (ScenarioResult, error) {
	opts := []Option{
		WithScheduler(sc.Scheduler),
		WithSeed(s.Seed + uint64(sc.Index)*scenarioSeedStride*seedStride),
		WithMaxSteps(s.MaxSteps),
		WithAlgorithmOptions(s.AlgorithmOptions),
		WithFairnessWindow(s.FairnessWindow),
		WithWorkers(1),
	}
	if sc.Faults != "" {
		opts = append(opts, WithFaults(sc.Faults))
	}
	eng, err := New(sc.topo, sc.Algorithm, opts...)
	if err != nil {
		return ScenarioResult{}, fmt.Errorf("dining: sweep scenario %d (%s/%s/%s/%s): %w",
			sc.Index, sc.Topology, sc.Algorithm, sc.Scheduler, orNone(sc.Faults), err)
	}
	res := ScenarioResult{Scenario: sc, Trials: s.trials()}
	var eats, wait, jain, stepsPerMeal stats.Running
	for tr, err := range eng.Trials(ctx, res.Trials) {
		if err != nil {
			return ScenarioResult{}, err
		}
		if tr.TotalEats > 0 {
			res.ProgressRuns++
			stepsPerMeal.Add(float64(tr.Steps) / float64(tr.TotalEats))
		}
		if len(tr.Starved) > 0 {
			res.StarvedRuns++
		}
		eats.Add(float64(tr.TotalEats))
		wait.Add(tr.MeanWaitSteps)
		jain.Add(stats.JainIndex(tr.EatsBy))
	}
	res.MeanEats = eats.Mean()
	res.MeanStepsPerMeal = stepsPerMeal.Mean()
	res.MeanWaitSteps = wait.Mean()
	res.MeanJain = jain.Mean()
	return res, nil
}

// Stream runs the sweep, yielding each scenario's aggregate as its worker
// finishes — completion order, not grid order. The result yielded for a
// given scenario is bit-identical whatever the worker count. The stream
// stops at the first error or context cancellation, yielding that error
// last.
func (s Sweep) Stream(ctx context.Context) iter.Seq2[ScenarioResult, error] {
	return func(yield func(ScenarioResult, error) bool) {
		scenarios, err := s.Scenarios()
		if err != nil {
			yield(ScenarioResult{}, err)
			return
		}
		s.stream(ctx, scenarios)(yield)
	}
}

// stream runs an already-expanded scenario list.
func (s Sweep) stream(ctx context.Context, scenarios []Scenario) iter.Seq2[ScenarioResult, error] {
	return func(yield func(ScenarioResult, error) bool) {
		for item := range par.Stream(ctx, s.Workers, len(scenarios), func(i int) (ScenarioResult, error) {
			return s.runScenario(ctx, scenarios[i])
		}) {
			if item.Err != nil {
				yield(ScenarioResult{Scenario: scenarios[item.Index]}, item.Err)
				return
			}
			if !yield(item.Value, nil) {
				return
			}
		}
	}
}

// Results runs the sweep to completion and returns every scenario result in
// grid order — the blocking counterpart of Stream, bit-identical for any
// worker count.
func (s Sweep) Results(ctx context.Context) ([]ScenarioResult, error) {
	scenarios, err := s.Scenarios()
	if err != nil {
		return nil, err
	}
	out := make([]ScenarioResult, len(scenarios))
	for res, err := range s.stream(ctx, scenarios) {
		if err != nil {
			return nil, err
		}
		out[res.Index] = res
	}
	return out, nil
}

// Matrix runs the sweep and renders the scenario results as a Table in grid
// order, ready for text, Markdown or JSON output.
func (s Sweep) Matrix(ctx context.Context) (*Table, error) {
	results, err := s.Results(ctx)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "sweep",
		Title:  fmt.Sprintf("%d-scenario sweep, %d trials each", len(results), s.trials()),
		Header: []string{"topology", "algorithm", "scheduler", "progress runs", "mean meals", "steps/meal", "mean wait", "Jain", "starved runs"},
	}
	// The faults column only appears when the sweep actually has a fault
	// axis, so fault-free matrices render exactly as before.
	withFaults := len(s.Faults) > 0
	if withFaults {
		t.Header = append([]string{t.Header[0], t.Header[1], t.Header[2], "faults"}, t.Header[3:]...)
	}
	for _, r := range results {
		row := []any{r.Topology, r.Algorithm, r.Scheduler}
		if withFaults {
			row = append(row, orNone(r.Faults))
		}
		row = append(row,
			fmt.Sprintf("%d/%d", r.ProgressRuns, r.Trials),
			fmt.Sprintf("%.1f", r.MeanEats),
			fmt.Sprintf("%.1f", r.MeanStepsPerMeal),
			fmt.Sprintf("%.1f", r.MeanWaitSteps),
			fmt.Sprintf("%.3f", r.MeanJain),
			r.StarvedRuns)
		t.AddRow(row...)
	}
	return t, nil
}

// orNone renders the empty fault spec as "none" in tables and error text.
func orNone(spec string) string {
	if spec == "" {
		return "none"
	}
	return spec
}

package dining_test

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/dining"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the JSON golden files")

// TestJSONStableFieldNames pins the JSON wire format of the types the CLI
// tools emit with -json: TrialResult (dpsim) and Table (dpbench, sweep
// matrices). The golden files are the contract — renaming or retagging a
// field is a breaking change that must show up here.
func TestJSONStableFieldNames(t *testing.T) {
	t.Parallel()
	trials := []dining.TrialResult{
		{
			Trial:          0,
			Seed:           42,
			Topology:       "ring-3",
			Algorithm:      "GDP2",
			Scheduler:      "uniform-random",
			Steps:          1000,
			TotalEats:      12,
			EatsBy:         []int64{4, 4, 4},
			FirstEatStep:   17,
			MeanWaitSteps:  8.5,
			MaxScheduleGap: 21,
			Reason:         "max-steps",
		},
		{
			Trial:          1,
			Seed:           11400714819323198527,
			Topology:       "ring-3",
			Algorithm:      "GDP2",
			Scheduler:      "uniform-random",
			Steps:          900,
			TotalEats:      3,
			EatsBy:         []int64{3, 0, 0},
			FirstEatStep:   5,
			MeanWaitSteps:  2.25,
			MaxScheduleGap: 400,
			Starved:        []dining.PhilID{1, 2},
			Reason:         "cancelled",
		},
	}
	table := &dining.Table{
		ID:         "sweep",
		Title:      "2-scenario sweep, 3 trials each",
		Reproduces: "Theorem 3",
		Header:     []string{"topology", "algorithm"},
		Rows:       [][]string{{"ring-3", "GDP1"}, {"ring-3", "GDP2"}},
		Notes:      []string{"a note"},
	}

	// The PropertyResult wire format emitted by dpcheck -json and
	// dpadversary -json, including a counterexample trace.
	props := []dining.PropertyResult{
		{
			Property:    dining.StarvationTrap,
			Kind:        dining.ExhaustiveProperty,
			Topology:    "theta-[1 1 1]",
			Algorithm:   "LR2",
			Protected:   []dining.PhilID{0},
			Passed:      false,
			Detail:      "a fair adversary can starve the protected set forever",
			States:      12830,
			Transitions: 38490,
			TrapStates:  48,
			Counterexample: &dining.Trace{
				Property:   dining.StarvationTrap,
				Topology:   "theta-[1 1 1]",
				Algorithm:  "LR2",
				Steps:      []dining.TraceStep{{Phil: 0, Outcome: 0, Label: "become hungry", Prob: 1}, {Phil: 0, Outcome: 1, Label: "commit right", Prob: 0.5}},
				FinalKey:   "0201",
				FinalState: "step 2\n",
			},
		},
		{
			Property:  dining.StatisticalProgress,
			Kind:      dining.StatisticalProperty,
			Topology:  "ring-3",
			Algorithm: "GDP1",
			Scheduler: "adversary",
			Passed:    true,
			Detail:    "progress in 100/100 trials",
			Trials:    100,
		},
	}

	checkGolden(t, "trialresult.golden.json", trials)
	checkGolden(t, "table.golden.json", table)
	checkGolden(t, "propertyresult.golden.json", props)
}

func checkGolden(t *testing.T, name string, v any) {
	t.Helper()
	got, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run go test ./dining -update-golden): %v", err)
	}
	if string(got) != string(want) {
		t.Errorf("%s: JSON output changed — field names are a stable contract.\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

package dining_test

import (
	"context"
	"slices"
	"sort"
	"testing"

	"repro/dining"
)

// The registries are process-global and panic on duplicate registration, and
// go test -cpu reruns every test in one process — so the tests below only
// register a name the first time around and rely on the registry keeping it.

func TestRegistriesEnumerateSorted(t *testing.T) {
	t.Parallel()
	for name, list := range map[string][]string{
		"Algorithms": dining.Algorithms(),
		"Schedulers": dining.Schedulers(),
		"Topologies": dining.Topologies(),
	} {
		if len(list) == 0 {
			t.Errorf("%s() is empty", name)
		}
		if !sort.StringsAreSorted(list) {
			t.Errorf("%s() is not sorted: %v", name, list)
		}
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	t.Parallel()
	mustPanic := func(what string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", what)
			}
		}()
		fn()
	}
	ctor := func(dining.AlgorithmOptions) dining.Program {
		p, _ := dining.NewAlgorithm(dining.GDP1, dining.AlgorithmOptions{})
		return p
	}
	if !slices.Contains(dining.Algorithms(), "test-dup-algo") {
		dining.RegisterAlgorithm("test-dup-algo", ctor)
	}
	mustPanic("duplicate RegisterAlgorithm", func() { dining.RegisterAlgorithm("test-dup-algo", ctor) })
	mustPanic("empty RegisterAlgorithm name", func() { dining.RegisterAlgorithm("", ctor) })
	mustPanic("nil RegisterAlgorithm ctor", func() { dining.RegisterAlgorithm("test-nil-algo", nil) })

	schedCtor := func(cfg dining.SchedulerConfig) dining.Scheduler {
		s, _ := dining.NewScheduler(dining.RoundRobin, cfg)
		return s
	}
	if !slices.Contains(dining.Schedulers(), "test-dup-sched") {
		dining.RegisterScheduler("test-dup-sched", schedCtor)
	}
	mustPanic("duplicate RegisterScheduler", func() { dining.RegisterScheduler("test-dup-sched", schedCtor) })

	topoCtor := func(n int) *dining.Topology {
		if n <= 0 {
			n = 4
		}
		return dining.Ring(n)
	}
	if !slices.Contains(dining.Topologies(), "test-dup-topo") {
		dining.RegisterTopology("test-dup-topo", topoCtor)
	}
	mustPanic("duplicate RegisterTopology", func() { dining.RegisterTopology("test-dup-topo", topoCtor) })
}

// TestRegisteredPluginsAreUsableEverywhere registers a custom algorithm,
// scheduler and topology and drives them through the engine by name — the
// open-registry contract of the v2 API.
func TestRegisteredPluginsAreUsableEverywhere(t *testing.T) {
	t.Parallel()
	if !slices.Contains(dining.Algorithms(), "test-gdp1-alias") {
		dining.RegisterAlgorithm("test-gdp1-alias", func(o dining.AlgorithmOptions) dining.Program {
			p, err := dining.NewAlgorithm(dining.GDP1, o)
			if err != nil {
				t.Fatal(err)
			}
			return p
		})
	}
	if !slices.Contains(dining.Schedulers(), "test-round-robin-alias") {
		dining.RegisterScheduler("test-round-robin-alias", func(cfg dining.SchedulerConfig) dining.Scheduler {
			s, err := dining.NewScheduler(dining.RoundRobin, cfg)
			if err != nil {
				t.Fatal(err)
			}
			return s
		})
	}
	if !slices.Contains(dining.Topologies(), "test-ring") {
		dining.RegisterTopology("test-ring", func(n int) *dining.Topology {
			if n <= 0 {
				n = 5
			}
			return dining.Ring(n)
		})
	}

	topo, err := dining.NewTopology("test-ring", 0)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := dining.New(topo, "test-gdp1-alias",
		dining.WithScheduler("test-round-robin-alias"),
		dining.WithMaxSteps(5_000))
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalEats == 0 {
		t.Error("custom-registered configuration made no progress")
	}
}

package dining_test

import (
	"context"
	"testing"

	"repro/dining"
)

// TestSweepDeterministicAtAnyWorkerCount pins the Sweep determinism
// guarantee: the same seed must produce a bit-identical matrix whether the
// scenarios run sequentially or fanned out over many goroutines.
func TestSweepDeterministicAtAnyWorkerCount(t *testing.T) {
	t.Parallel()
	base := dining.Sweep{
		Topologies: []*dining.Topology{dining.Ring(4), dining.Theta(1, 1, 1)},
		Algorithms: []string{dining.LR1, dining.GDP2},
		Schedulers: []string{dining.Random, dining.Adversary},
		Trials:     3,
		MaxSteps:   3_000,
		Seed:       5,
	}

	render := func(workers int) string {
		s := base
		s.Workers = workers
		m, err := s.Matrix(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return m.Markdown()
	}
	seq := render(1)
	for _, workers := range []int{2, 7} {
		if par := render(workers); par != seq {
			t.Errorf("matrix differs at %d workers:\n--- sequential ---\n%s\n--- parallel ---\n%s", workers, seq, par)
		}
	}
	if render(1) != seq {
		t.Error("re-running the sweep with the same seed changed the matrix")
	}
}

func TestSweepGridShapeAndStreaming(t *testing.T) {
	t.Parallel()
	s := dining.Sweep{
		Topologies: []*dining.Topology{dining.Ring(4)},
		Algorithms: []string{dining.GDP1, dining.GDP2},
		Schedulers: []string{dining.Random},
		Trials:     2,
		MaxSteps:   2_000,
	}
	scenarios, err := s.Scenarios()
	if err != nil {
		t.Fatal(err)
	}
	if len(scenarios) != 2 {
		t.Fatalf("expected 2 scenarios, got %d", len(scenarios))
	}
	seen := map[int]bool{}
	for res, err := range s.Stream(context.Background()) {
		if err != nil {
			t.Fatal(err)
		}
		if seen[res.Index] {
			t.Errorf("scenario %d streamed twice", res.Index)
		}
		seen[res.Index] = true
		if res.Trials != 2 {
			t.Errorf("scenario %d aggregated %d trials, want 2", res.Index, res.Trials)
		}
	}
	if len(seen) != 2 {
		t.Errorf("streamed %d scenarios, want 2", len(seen))
	}

	// Misconfigured sweeps fail loudly.
	empty := dining.Sweep{Algorithms: []string{dining.GDP1}}
	if _, err := empty.Scenarios(); err == nil {
		t.Error("Scenarios accepted an empty topology axis")
	}
	sawErr := false
	for _, err := range empty.Stream(context.Background()) {
		if err != nil {
			sawErr = true
		}
	}
	if !sawErr {
		t.Error("Stream did not surface the empty-axis error")
	}
}

package dining_test

import (
	"context"
	"reflect"
	"testing"

	"repro/dining"
	"repro/internal/core"
	"repro/internal/sim"
)

// TestTrialsBitIdenticalToParallelTrials is the determinism pin of the v2
// streaming engine: for any worker count, collecting an Engine.Trials stream
// by index must reproduce the internal core.ParallelTrials-based
// System.Repeat results exactly — same seeds, same meals, same
// floating-point aggregates.
func TestTrialsBitIdenticalToParallelTrials(t *testing.T) {
	t.Parallel()
	const trials = 13
	const steps = 8_000
	topo := dining.Ring(5)

	sys := core.System{Topology: topo, Algorithm: "GDP2", Scheduler: "random", Seed: 9}
	want, err := sys.Repeat(trials, sim.RunOptions{MaxSteps: steps})
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 3, 8} {
		eng, err := dining.New(topo, dining.GDP2,
			dining.WithSeed(9),
			dining.WithWorkers(workers),
			dining.WithMaxSteps(steps))
		if err != nil {
			t.Fatal(err)
		}
		got := make([]*dining.SimResult, trials)
		for tr, err := range eng.Trials(context.Background(), trials) {
			if err != nil {
				t.Fatal(err)
			}
			if got[tr.Trial] != nil {
				t.Fatalf("workers=%d: trial %d yielded twice", workers, tr.Trial)
			}
			got[tr.Trial] = tr.Result
		}
		for i := range want {
			if got[i] == nil {
				t.Fatalf("workers=%d: trial %d never yielded", workers, i)
			}
			w, g := want[i], got[i]
			if g.TotalEats != w.TotalEats || g.Steps != w.Steps ||
				g.FirstEatStep != w.FirstEatStep ||
				g.MeanWaitSteps != w.MeanWaitSteps ||
				g.MaxScheduleGap != w.MaxScheduleGap ||
				!reflect.DeepEqual(g.EatsBy, w.EatsBy) ||
				!reflect.DeepEqual(g.ScheduledCount, w.ScheduledCount) {
				t.Errorf("workers=%d: trial %d differs from core.ParallelTrials: got (eats %d, steps %d, wait %v), want (eats %d, steps %d, wait %v)",
					workers, i, g.TotalEats, g.Steps, g.MeanWaitSteps, w.TotalEats, w.Steps, w.MeanWaitSteps)
			}
		}

		// Repeat is the blocking counterpart and must agree too.
		rep, err := eng.Repeat(context.Background(), trials)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if rep[i].TotalEats != want[i].TotalEats || rep[i].Steps != want[i].Steps {
				t.Errorf("workers=%d: Repeat trial %d differs from core.ParallelTrials", workers, i)
			}
		}
	}
}

func TestEngineIsImmutableAndReusable(t *testing.T) {
	t.Parallel()
	eng, err := dining.New(dining.Ring(4), dining.LR1,
		dining.WithSeed(3), dining.WithMaxSteps(4_000))
	if err != nil {
		t.Fatal(err)
	}
	a, err := eng.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	b, err := eng.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalEats != b.TotalEats || a.Steps != b.Steps {
		t.Error("two Run calls on the same engine differ: engines must be immutable")
	}
	if eng.Algorithm() != "LR1" || eng.Scheduler() != dining.Random || eng.Seed() != 3 {
		t.Error("accessors disagree with configuration")
	}
}

func TestTrialsStopsOnConsumerBreak(t *testing.T) {
	t.Parallel()
	eng, err := dining.New(dining.Ring(4), dining.GDP1,
		dining.WithMaxSteps(2_000), dining.WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	seen := 0
	for _, err := range eng.Trials(context.Background(), 100) {
		if err != nil {
			t.Fatal(err)
		}
		seen++
		if seen == 3 {
			break
		}
	}
	if seen != 3 {
		t.Errorf("saw %d results after breaking at 3", seen)
	}
}

package dining

import (
	"repro/internal/algo"
	"repro/internal/fault"
	"repro/internal/graph"
	"repro/internal/sched"
)

// This file is the public face of the open registries (topologies,
// algorithms, schedulers, fault models; properties register in property.go).
// The built-in implementations self-register in their internal packages;
// external code extends the system here. Registration is init-time wiring:
// every Register function panics on an empty name, a nil constructor or a
// duplicate name, because a collision is a programming bug that must not be
// resolved silently by load order.

// AlgorithmCtor constructs a fresh algorithm program from options. Programs
// must be stateless between runs — all run state lives in the simulation
// world.
type AlgorithmCtor = algo.Ctor

// SchedulerCtor constructs a fresh scheduler for one run from a
// SchedulerConfig. Schedulers are stateful, so the registry stores
// constructors, not instances.
type SchedulerCtor = sched.Ctor

// TopologyCtor builds a topology from a size parameter n; it must substitute
// a sensible default when n <= 0 (fixed topologies ignore n).
type TopologyCtor = graph.TopologyCtor

// FaultConfig parameterizes a fault-model instance: the model's rates (with
// documented defaults for missing ones) and an optional target-philosopher
// restriction.
type FaultConfig = fault.Config

// FaultModel is one configured fault model: a named, parameterized
// transformer of the transition system. See internal/fault for the built-ins
// (crash-rejoin, delayed-grants, freeze, lossy-grants) and the
// Program-wrapping semantics.
type FaultModel = fault.Model

// FaultCtor constructs a fault-model instance from a FaultConfig, validating
// the rates eagerly.
type FaultCtor = fault.Ctor

// RegisterAlgorithm registers a named algorithm. The name becomes valid
// everywhere an algorithm name is accepted: New, Sweep, the experiment suite
// and the -algorithm flag of the CLI tools.
func RegisterAlgorithm(name string, ctor AlgorithmCtor) { algo.Register(name, ctor) }

// RegisterScheduler registers a named scheduler or adversary. The name
// becomes valid everywhere a scheduler name is accepted: WithScheduler,
// Sweep and the -scheduler flag of the CLI tools.
func RegisterScheduler(name string, ctor SchedulerCtor) { sched.Register(name, ctor) }

// RegisterTopology registers a named topology constructor, available to
// NewTopology, Sweep and the -topology flag of the CLI tools.
func RegisterTopology(name string, ctor TopologyCtor) { graph.RegisterTopology(name, ctor) }

// RegisterFault registers a named fault model — the fifth registry axis. The
// name becomes valid everywhere a fault spec is accepted: WithFaults, the
// Faults axis of Sweep and the -faults flag of the CLI tools.
func RegisterFault(name string, ctor FaultCtor) { fault.Register(name, ctor) }

// Algorithms returns every registered algorithm name in sorted order.
func Algorithms() []string { return algo.Names() }

// Schedulers returns every registered scheduler name in sorted order.
func Schedulers() []string { return sched.Names() }

// Topologies returns every registered topology name in sorted order.
func Topologies() []string { return graph.TopologyNames() }

// Faults returns every registered fault-model name in sorted order.
func Faults() []string { return fault.Names() }

// LookupFault returns the named registered fault-model constructor. Unknown
// names produce a one-line error listing the registered options.
func LookupFault(name string) (FaultCtor, error) { return fault.Lookup(name) }

// NewFault constructs the named registered fault model, validating the
// configuration's rates and targets eagerly. It is mainly useful for feeding
// fault models into the lower-level internal engines; engine users configure
// faults with WithFaults.
func NewFault(name string, cfg FaultConfig) (FaultModel, error) { return fault.New(name, cfg) }

// NewFaultFromSpec constructs a fault model from a spec string in the
// internal/fault grammar, name[:rates][@philosophers] — the same strings
// WithFaults, the Sweep fault axis and the -faults CLI flag accept.
func NewFaultFromSpec(spec string) (FaultModel, error) { return fault.NewFromSpec(spec) }

// NewTopology builds the named registered topology with size parameter n
// (n <= 0 selects the constructor's default size; fixed topologies ignore
// n). Unknown names produce a one-line error listing the registered options.
func NewTopology(name string, n int) (*Topology, error) { return graph.NewTopology(name, n) }

// NewAlgorithm constructs the named registered algorithm, mainly useful for
// feeding custom programs into the lower-level internal engines from tests.
// Unknown names produce a one-line error listing the registered options.
func NewAlgorithm(name string, opts AlgorithmOptions) (Program, error) { return algo.New(name, opts) }

// NewScheduler constructs the named registered scheduler. Unknown names
// produce a one-line error listing the registered options.
func NewScheduler(name string, cfg SchedulerConfig) (Scheduler, error) { return sched.New(name, cfg) }

package dining

import (
	"context"
	"fmt"
	"iter"

	"repro/internal/graph"
	"repro/internal/modelcheck"
	"repro/internal/par"
	"repro/internal/prng"
	"repro/internal/registry"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/verify"
)

// This file is the property layer: the paper's claims (deadlock-freedom,
// progress, lockout-freedom, starvation traps — Theorems 1–4) as first-class,
// pluggable checks. Properties live in the fourth open registry next to
// topologies, algorithms and schedulers; Engine.Check resolves names against
// it, explores the state space once (in parallel) when any exhaustive
// property is requested, and streams one PropertyResult per property. Every
// exhaustive failure carries a replayable counterexample Trace.

// PropertyKind classifies how a property is checked.
type PropertyKind string

const (
	// ExhaustiveProperty marks properties decided on the fully explored
	// state space (PropertyInput.Space). Their verdicts are proofs for the
	// explored instance, and their failures carry counterexample traces.
	ExhaustiveProperty PropertyKind = "exhaustive"
	// StatisticalProperty marks Monte-Carlo properties that sample runs
	// through the engine's scheduler instead of exploring exhaustively.
	StatisticalProperty PropertyKind = "statistical"
)

// Names of the built-in properties (see the property registry).
const (
	// DeadlockFreedom: no reachable state in which every action of every
	// philosopher is a self-loop.
	DeadlockFreedom = "deadlock-freedom"
	// Progress: from every reachable state a meal remains reachable
	// (eat-reachable-from-everywhere); a failure exhibits a true dead end.
	Progress = "progress"
	// LockoutFreedom: no philosopher in the protected set (all of them when
	// the set is empty) can be individually starved forever by a fair
	// adversary.
	LockoutFreedom = "lockout-freedom"
	// StarvationTrap: no fair adversary can confine the system to a region
	// in which no protected philosopher ever eats — the machine-checked form
	// of Theorems 1–4. The property FAILS when such a trap exists.
	StarvationTrap = "starvation-trap"
	// StatisticalProgress is the Monte-Carlo progress check of
	// internal/verify: every sampled run must reach a first meal.
	StatisticalProgress = "statistical-progress"
	// StatisticalLockout is the Monte-Carlo lockout-freedom check: every
	// sampled run must serve every philosopher at least once.
	StatisticalLockout = "statistical-lockout"
	// ProgressUnderFaults is the recoverable-variant progress check: the
	// Progress analysis run exhaustively on the fault-perturbed state space
	// (the engine must have WithFaults). A failure means the injected faults
	// can drive the system into a region from which no meal is ever
	// reachable, and carries a replayable fault-labelled counterexample.
	ProgressUnderFaults = "progress-under-faults"
	// LockoutFreedomUnderFaults is the recoverable-variant lockout-freedom
	// check: no fair adversary, with the injected faults at its disposal, can
	// starve a protected philosopher forever (requires WithFaults).
	LockoutFreedomUnderFaults = "lockout-freedom-under-faults"
)

// StateSpace is the explored MDP an exhaustive property is decided on. See
// internal/modelcheck for the analyses it offers.
type StateSpace = modelcheck.StateSpace

// Trace is a replayable counterexample: the scheduler-choice path from the
// initial state to a property-violating state, with a stable JSON wire
// format. Engine.ReplayTrace re-executes one and verifies where it lands.
type Trace = trace.Trace

// TraceStep is one scheduler choice of a Trace.
type TraceStep = trace.Step

// PropertyInput is what a property check receives: the engine under check
// and, for exhaustive properties, the explored state space (shared by every
// exhaustive property of one Engine.Check call).
type PropertyInput struct {
	// Engine is the engine being checked (always set).
	Engine *Engine
	// Space is the explored state space; set iff the property is exhaustive.
	Space *StateSpace
}

// Property is a checkable claim about a system. Implementations register
// through RegisterProperty and become selectable by name in Engine.Check and
// the -props flag of the CLI tools. A Property must be stateless and safe
// for concurrent use: one instance serves every engine and every check.
type Property interface {
	// Name returns the registered property name ("deadlock-freedom").
	Name() string
	// Kind reports how the property is checked; it decides whether Check
	// receives an explored state space.
	Kind() PropertyKind
	// Check decides the property. A failed property is NOT an error: it
	// returns a PropertyResult with Passed false (ideally with a
	// counterexample). The error return is for infrastructure failures —
	// context cancellation, truncated exploration a check cannot tolerate,
	// simulation errors.
	Check(ctx context.Context, in PropertyInput) (PropertyResult, error)
}

// PropertyResult is the verdict of one property on one engine: the stable
// JSON wire format emitted by dpcheck -json and dpadversary -json.
type PropertyResult struct {
	// Property and Kind identify the check.
	Property string       `json:"property"`
	Kind     PropertyKind `json:"kind"`
	// Topology, Algorithm and (for statistical checks) Scheduler identify
	// the system.
	Topology  string `json:"topology"`
	Algorithm string `json:"algorithm"`
	Scheduler string `json:"scheduler,omitempty"`
	// Faults is the canonical spec of the engine's fault model, empty for
	// unperturbed engines. When set, the verdict is about the perturbed
	// system: exhaustive properties were decided on the fault-injected state
	// space and statistical properties sampled fault-injected runs.
	Faults string `json:"faults,omitempty"`
	// Protected is the engine's protected set (empty = all philosophers).
	Protected []PhilID `json:"protected,omitempty"`
	// Passed is the verdict; Detail explains it in one line.
	Passed bool   `json:"passed"`
	Detail string `json:"detail"`
	// States, Transitions and Truncated describe the explored space
	// (exhaustive properties only). A truncated exploration proves nothing
	// beyond the explored fragment.
	States      int  `json:"states,omitempty"`
	Transitions int  `json:"transitions,omitempty"`
	Truncated   bool `json:"truncated,omitempty"`
	// TrapStates is the size of the starvation trap found (trap-based
	// failures only).
	TrapStates int `json:"trap_states,omitempty"`
	// Trials and Failures summarise statistical checks.
	Trials   int `json:"trials,omitempty"`
	Failures int `json:"failures,omitempty"`
	// Counterexample is the replayable path to a violating state, present on
	// exhaustive failures.
	Counterexample *Trace `json:"counterexample,omitempty"`
}

// PropertyFunc adapts a function to the Property interface — the quickest
// way to register a custom property:
//
//	dining.RegisterProperty(dining.PropertyFunc{
//		PropName: "my-invariant",
//		PropKind: dining.ExhaustiveProperty,
//		Func:     func(ctx context.Context, in dining.PropertyInput) (dining.PropertyResult, error) { ... },
//	})
type PropertyFunc struct {
	PropName string
	PropKind PropertyKind
	Func     func(ctx context.Context, in PropertyInput) (PropertyResult, error)
}

// Name implements Property.
func (f PropertyFunc) Name() string { return f.PropName }

// Kind implements Property.
func (f PropertyFunc) Kind() PropertyKind { return f.PropKind }

// Check implements Property.
func (f PropertyFunc) Check(ctx context.Context, in PropertyInput) (PropertyResult, error) {
	return f.Func(ctx, in)
}

// properties is the fourth open registry, next to topologies, algorithms and
// schedulers.
var properties = registry.New[Property]("dining", "property")

// RegisterProperty registers a property under p.Name(). The name becomes
// valid everywhere a property name is accepted: Engine.Check, CheckAll and
// the -props flag of the CLI tools. Like the other registries it panics on
// an empty name, a nil property or a duplicate name — registration is
// init-time wiring whose collisions must not be resolved silently.
func RegisterProperty(p Property) {
	if p == nil {
		panic("dining: RegisterProperty(nil)")
	}
	properties.Register(p.Name(), p)
}

// Properties returns every registered property name in sorted order.
func Properties() []string { return properties.Names() }

// LookupProperty returns the named registered property. Unknown names
// produce a one-line error listing the registered options.
func LookupProperty(name string) (Property, error) { return properties.Lookup(name) }

// ExhaustiveProperties returns the names of the four exhaustive built-ins —
// the default property set of Engine.Check — in check order.
func ExhaustiveProperties() []string {
	return []string{DeadlockFreedom, Progress, LockoutFreedom, StarvationTrap}
}

func init() {
	RegisterProperty(PropertyFunc{DeadlockFreedom, ExhaustiveProperty, checkDeadlockFreedom})
	RegisterProperty(PropertyFunc{Progress, ExhaustiveProperty, checkProgress})
	RegisterProperty(PropertyFunc{LockoutFreedom, ExhaustiveProperty, checkLockoutFreedom})
	RegisterProperty(PropertyFunc{StarvationTrap, ExhaustiveProperty, checkStarvationTrap})
	RegisterProperty(PropertyFunc{StatisticalProgress, StatisticalProperty, checkStatisticalProgress})
	RegisterProperty(PropertyFunc{StatisticalLockout, StatisticalProperty, checkStatisticalLockout})
	RegisterProperty(PropertyFunc{ProgressUnderFaults, ExhaustiveProperty, checkProgressUnderFaults})
	RegisterProperty(PropertyFunc{LockoutFreedomUnderFaults, ExhaustiveProperty, checkLockoutFreedomUnderFaults})
}

// Check resolves the named properties against the registry — no names
// selects the four exhaustive built-ins — explores the state space once (in
// parallel across WithWorkers goroutines) when any exhaustive property is
// requested, and streams one PropertyResult per property as its check
// completes. The stream stops at the first error (an unknown property name,
// a cancelled context, a failed check infrastructure), yielding that error
// last; a property that merely FAILS is a regular result with Passed false
// and, for exhaustive properties, a replayable counterexample trace.
func (e *Engine) Check(ctx context.Context, props ...string) iter.Seq2[PropertyResult, error] {
	ctx = orBackground(ctx)
	return func(yield func(PropertyResult, error) bool) {
		list, err := resolveProperties(props)
		if err != nil {
			yield(PropertyResult{}, err)
			return
		}
		var ss *StateSpace
		for _, p := range list {
			if p.Kind() == ExhaustiveProperty {
				if ss, err = e.explore(ctx); err != nil {
					yield(PropertyResult{}, err)
					return
				}
				break
			}
		}
		for s := range par.Stream(ctx, e.cfg.workers, len(list), func(i int) (PropertyResult, error) {
			in := PropertyInput{Engine: e}
			if list[i].Kind() == ExhaustiveProperty {
				in.Space = ss
			}
			return list[i].Check(ctx, in)
		}) {
			if s.Err != nil {
				yield(PropertyResult{}, s.Err)
				return
			}
			if !yield(s.Value, nil) {
				return
			}
		}
	}
}

// CheckAll runs Check and returns the results in property order — the
// blocking counterpart of the Check stream.
func (e *Engine) CheckAll(ctx context.Context, props ...string) ([]PropertyResult, error) {
	list, err := resolveProperties(props)
	if err != nil {
		return nil, err
	}
	// Results stream in completion order; map each back to its position in
	// the request. A name requested twice owns two positions (its checks are
	// identical, so which result lands where is immaterial).
	positions := make(map[string][]int, len(list))
	for i, p := range list {
		positions[p.Name()] = append(positions[p.Name()], i)
	}
	results := make([]PropertyResult, len(list))
	for res, err := range e.Check(ctx, props...) {
		if err != nil {
			return nil, err
		}
		at := positions[res.Property]
		results[at[0]] = res
		positions[res.Property] = at[1:]
	}
	return results, nil
}

// ReplayTrace re-executes a counterexample trace against this engine's
// topology and algorithm and verifies that it lands in the exact state the
// trace reports (the hex-encoded canonical key). It is the public form of
// the replay check the trace tests pin.
func (e *Engine) ReplayTrace(t *Trace) error {
	prog, err := e.program()
	if err != nil {
		return err
	}
	_, err = trace.Replay(e.topo, prog, nil, t)
	return err
}

// Explore builds and returns the engine's explored state space — the exact
// exploration Engine.Check runs once for its exhaustive properties, on the
// same (possibly fault-perturbed) transition system, with the engine's
// worker and shard configuration. The returned space is immutable and safe
// for concurrent use (its lazily built predecessor index is constructed at
// most once), which is what lets long-lived services cache explored spaces
// across requests keyed by Engine.Fingerprint and hand one space to many
// concurrent property checks: Property.Check accepts it through
// PropertyInput.Space. Cancelling ctx aborts the exploration.
func (e *Engine) Explore(ctx context.Context) (*StateSpace, error) {
	ctx = orBackground(ctx)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return e.explore(ctx)
}

// resolveProperties maps names to registered properties; no names selects
// the exhaustive built-ins.
func resolveProperties(names []string) ([]Property, error) {
	if len(names) == 0 {
		names = ExhaustiveProperties()
	}
	list := make([]Property, len(names))
	for i, name := range names {
		p, err := LookupProperty(name)
		if err != nil {
			return nil, err
		}
		list[i] = p
	}
	return list, nil
}

// explore builds the engine's state space with the engine's worker count,
// wiring ctx cancellation into the exploration loop.
func (e *Engine) explore(ctx context.Context) (*StateSpace, error) {
	return e.exploreQuotient(ctx, e.cfg.symmetry)
}

// exploreQuotient is explore with the symmetry quotient explicitly on or
// off; the lockout checks use it to re-explore unreduced.
func (e *Engine) exploreQuotient(ctx context.Context, symmetry bool) (*StateSpace, error) {
	prog, err := e.program()
	if err != nil {
		return nil, err
	}
	opts := modelcheck.Options{
		MaxStates: e.cfg.maxStates,
		Protected: e.cfg.protected,
		Workers:   e.cfg.workers,
		Shards:    e.cfg.shards,
	}
	if symmetry {
		canon, err := e.canonicalizer(prog)
		if err != nil {
			return nil, err
		}
		opts.Symmetry = canon
	}
	if ctx.Done() != nil {
		opts.Interrupt = ctx.Err
	}
	return modelcheck.Explore(e.topo, prog, opts)
}

// canonicalizer builds the orbit canonicalizer of a symmetry-enabled
// exploration, applying the soundness gates: no quotient at all for programs
// that break the paper's symmetry condition (including fault-targeted ones),
// orientation-preserving automorphisms only unless the program is invariant
// under the left/right swap, and the setwise stabilizer of a configured
// protected set. The result may be trivial (identity-only), which the model
// checker treats as symmetry off.
func (e *Engine) canonicalizer(prog sim.Program) (*graph.OrbitCanonicalizer, error) {
	if !prog.Symmetric() {
		return nil, nil
	}
	copts := graph.CanonOptions{
		OrientationPreserving: true,
		Stabilize:             e.cfg.protected,
	}
	if sp, ok := prog.(sim.SideSymmetricProgram); ok && sp.SideSymmetric() {
		copts.OrientationPreserving = false
	}
	return graph.NewOrbitCanonicalizer(e.topo, copts)
}

// newResult seeds a PropertyResult with the identity of the check.
func (in PropertyInput) newResult(name string, kind PropertyKind) PropertyResult {
	e := in.Engine
	r := PropertyResult{
		Property:  name,
		Kind:      kind,
		Topology:  e.topo.Name(),
		Algorithm: e.alg,
		Faults:    e.Faults(),
		Protected: append([]PhilID(nil), e.cfg.protected...),
	}
	if in.Space != nil {
		r.States = in.Space.NumStates()
		r.Transitions = in.Space.NumTransitions()
		r.Truncated = in.Space.Truncated
	}
	if kind == StatisticalProperty {
		r.Scheduler = e.cfg.scheduler
	}
	return r
}

// --- Exhaustive built-ins ---

func checkDeadlockFreedom(_ context.Context, in PropertyInput) (PropertyResult, error) {
	res := in.newResult(DeadlockFreedom, ExhaustiveProperty)
	dead := in.Space.DeadlockStates()
	if len(dead) == 0 {
		res.Passed = true
		res.Detail = "no reachable deadlock state"
		return res, nil
	}
	res.Detail = fmt.Sprintf("%d reachable deadlock state(s): every philosopher's every action is a self-loop", len(dead))
	cx, err := in.Space.CounterexampleTo(DeadlockFreedom, dead[0])
	if err != nil {
		return res, err
	}
	res.Counterexample = cx
	return res, nil
}

func checkProgress(_ context.Context, in PropertyInput) (PropertyResult, error) {
	return checkProgressAs(Progress, in)
}

// checkProgressAs decides eat-reachable-from-everywhere on the explored
// space under the given property name; Progress and ProgressUnderFaults
// share it, since the exploration already ran on the (possibly perturbed)
// transition system.
func checkProgressAs(name string, in PropertyInput) (PropertyResult, error) {
	res := in.newResult(name, ExhaustiveProperty)
	dead := in.Space.DeadRegionStates()
	if len(dead) == 0 {
		res.Passed = true
		res.Detail = "a meal remains reachable from every reachable state"
		if res.Faults != "" {
			res.Detail += " under " + res.Faults
		}
		return res, nil
	}
	res.Detail = fmt.Sprintf("%d reachable state(s) from which no meal is reachable under any scheduling", len(dead))
	cx, err := in.Space.CounterexampleTo(name, dead[0])
	if err != nil {
		return res, err
	}
	res.Counterexample = cx
	return res, nil
}

// checkProgressUnderFaults is the recoverable-variant progress check: it
// requires a fault-injected engine (the unperturbed check is Progress) and
// decides progress on the perturbed state space.
func checkProgressUnderFaults(_ context.Context, in PropertyInput) (PropertyResult, error) {
	if in.Engine.cfg.faultModel == nil {
		return PropertyResult{}, fmt.Errorf("dining: property %s requires a fault model (use WithFaults; registered: %v)",
			ProgressUnderFaults, Faults())
	}
	return checkProgressAs(ProgressUnderFaults, in)
}

// checkLockoutFreedomUnderFaults is the recoverable-variant lockout-freedom
// check; like ProgressUnderFaults it refuses unperturbed engines.
func checkLockoutFreedomUnderFaults(ctx context.Context, in PropertyInput) (PropertyResult, error) {
	if in.Engine.cfg.faultModel == nil {
		return PropertyResult{}, fmt.Errorf("dining: property %s requires a fault model (use WithFaults; registered: %v)",
			LockoutFreedomUnderFaults, Faults())
	}
	return checkLockoutFreedomAs(ctx, LockoutFreedomUnderFaults, in)
}

func checkStarvationTrap(_ context.Context, in PropertyInput) (PropertyResult, error) {
	res := in.newResult(StarvationTrap, ExhaustiveProperty)
	trap := in.Space.FindStarvationTrap()
	phils := in.Engine.topo.NumPhilosophers()
	if !trap.Exists || !trap.Reachable {
		res.Passed = true
		res.Detail = fmt.Sprintf("no fair starvation trap (safe region %d states, best coverage %d/%d philosophers)",
			trap.SafeRegionStates, len(trap.CoveredPhilosophers), phils)
		return res, nil
	}
	res.TrapStates = trap.States
	res.Detail = fmt.Sprintf("a fair adversary can starve the protected set forever: trap of %d states inside a %d-state safe region",
		trap.States, trap.SafeRegionStates)
	cx, err := in.Space.CounterexampleTo(StarvationTrap, trap.WitnessState)
	if err != nil {
		return res, err
	}
	res.Counterexample = cx
	return res, nil
}

func checkLockoutFreedom(ctx context.Context, in PropertyInput) (PropertyResult, error) {
	return checkLockoutFreedomAs(ctx, LockoutFreedom, in)
}

// checkLockoutFreedomAs decides individual starvation traps on the explored
// space under the given property name; LockoutFreedom and
// LockoutFreedomUnderFaults share it.
func checkLockoutFreedomAs(ctx context.Context, name string, in PropertyInput) (PropertyResult, error) {
	res := in.newResult(name, ExhaustiveProperty)
	space := in.Space
	if space.Symmetric() {
		// The per-philosopher trap labellings ("philosopher p eats") are not
		// invariant under automorphisms that move p, so they cannot be decided
		// on the quotient space. Re-explore unreduced once; the per-philosopher
		// fan-out below shares the space.
		var err error
		if space, err = in.Engine.exploreQuotient(ctx, false); err != nil {
			return res, err
		}
	}
	phils := in.Engine.cfg.protected
	if len(phils) == 0 {
		phils = make([]PhilID, in.Engine.topo.NumPhilosophers())
		for i := range phils {
			phils[i] = PhilID(i)
		}
	}
	// One trap analysis per protected philosopher, fanned across the
	// engine's workers: the analyses are pure reads of the shared state
	// space, so they run concurrently, and both the verdict and the reported
	// philosopher are chosen in index order afterwards — identical to the
	// sequential loop for every worker count. With one worker the fan-out
	// buys nothing, so the stream is consumed with an early break the moment
	// the verdict-deciding (lowest-index) trap appears; par.Stream yields
	// inline in index order at workers == 1, so later philosophers are never
	// analysed — the old sequential loop's short-circuit.
	workers := in.Engine.cfg.workers
	traps := make([]modelcheck.Trap, len(phils))
	errs := make([]error, len(phils))
	for s := range par.Stream(ctx, workers, len(phils), func(i int) (modelcheck.Trap, error) {
		return space.FindStarvationTrapAgainst([]PhilID{phils[i]})
	}) {
		traps[s.Index], errs[s.Index] = s.Value, s.Err
		if workers == 1 && (s.Err != nil || (s.Value.Exists && s.Value.Reachable)) {
			break
		}
	}
	for _, err := range errs {
		if err != nil {
			return res, err
		}
	}
	for i, trap := range traps {
		if !trap.Exists || !trap.Reachable {
			continue
		}
		res.TrapStates = trap.States
		res.Detail = fmt.Sprintf("a fair adversary can starve philosopher %d forever: trap of %d states", phils[i], trap.States)
		cx, err := space.CounterexampleTo(name, trap.WitnessState)
		if err != nil {
			return res, err
		}
		res.Counterexample = cx
		return res, nil
	}
	res.Passed = true
	res.Detail = fmt.Sprintf("no individual starvation trap against any of %d philosopher(s)", len(phils))
	return res, nil
}

// --- Statistical built-ins (Monte-Carlo wrappers over internal/verify) ---

// schedulerFactory adapts the engine's scheduler configuration to the
// per-trial constructor the verify checks expect.
func (e *Engine) schedulerFactory() verify.SchedulerFactory {
	return func(rng *prng.Source) sim.Scheduler {
		s, err := sched.New(e.cfg.scheduler, sched.Config{
			RNG:            rng,
			Protected:      e.cfg.protected,
			FairnessWindow: e.cfg.fairnessWindow,
		})
		if err != nil {
			// New validated the scheduler name eagerly; reaching this means
			// the registry entry was removed at runtime, a programming error.
			panic(err)
		}
		return s
	}
}

// stopFunc adapts ctx cancellation to the polling hook of the verify checks.
func stopFunc(ctx context.Context) func() bool {
	if ctx.Done() == nil {
		return nil
	}
	return func() bool { return ctx.Err() != nil }
}

func checkStatisticalProgress(ctx context.Context, in PropertyInput) (PropertyResult, error) {
	e := in.Engine
	res := in.newResult(StatisticalProgress, StatisticalProperty)
	prog, err := e.program()
	if err != nil {
		return res, err
	}
	check := verify.ProgressCheck{
		Topology:  e.topo,
		Algorithm: prog,
		Scheduler: e.schedulerFactory(),
		Trials:    e.cfg.trials,
		MaxSteps:  e.cfg.maxSteps,
		Seed:      e.cfg.seed,
		Workers:   e.cfg.workers,
		Stop:      stopFunc(ctx),
	}
	pr, err := check.Run()
	if err != nil {
		return res, err
	}
	if err := ctx.Err(); err != nil {
		return res, err
	}
	res.Trials = int(pr.Proportion.Trials())
	res.Failures = len(pr.Failures)
	res.Passed = pr.Passed()
	if res.Passed {
		res.Detail = fmt.Sprintf("progress in %d/%d trials (mean steps to first meal %.1f)",
			pr.Proportion.Successes(), pr.Proportion.Trials(), pr.StepsToFirstMeal.Mean())
	} else {
		res.Detail = fmt.Sprintf("no progress in %d/%d trials (first failing seed %d)",
			res.Failures, pr.Proportion.Trials(), pr.Failures[0])
	}
	return res, nil
}

func checkStatisticalLockout(ctx context.Context, in PropertyInput) (PropertyResult, error) {
	e := in.Engine
	res := in.newResult(StatisticalLockout, StatisticalProperty)
	prog, err := e.program()
	if err != nil {
		return res, err
	}
	check := verify.LockoutCheck{
		Topology:  e.topo,
		Algorithm: prog,
		Scheduler: e.schedulerFactory(),
		Trials:    e.cfg.trials,
		MaxSteps:  e.cfg.maxSteps,
		Seed:      e.cfg.seed,
		Workers:   e.cfg.workers,
		Stop:      stopFunc(ctx),
	}
	lr, err := check.Run()
	if err != nil {
		return res, err
	}
	if err := ctx.Err(); err != nil {
		return res, err
	}
	res.Trials = int(lr.Proportion.Trials())
	res.Failures = len(lr.Failures)
	res.Passed = lr.Passed()
	if res.Passed {
		res.Detail = fmt.Sprintf("every philosopher served in %d/%d trials (worst Jain index %.3f)",
			lr.Proportion.Successes(), lr.Proportion.Trials(), lr.WorstJainIndex)
	} else {
		res.Detail = fmt.Sprintf("a philosopher went unserved in %d/%d trials (first failing seed %d)",
			res.Failures, lr.Proportion.Trials(), lr.Failures[0])
	}
	return res, nil
}

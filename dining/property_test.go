package dining_test

import (
	"context"
	"encoding/json"
	"slices"
	"strings"
	"testing"

	"repro/dining"
)

// mustCheckJSON runs CheckAll and returns the results in their stable JSON
// wire form — the deep-equality currency of the determinism tests below.
func mustCheckJSON(t *testing.T, eng *dining.Engine, props ...string) string {
	t.Helper()
	results, err := eng.CheckAll(context.Background(), props...)
	if err != nil {
		t.Fatal(err)
	}
	out, err := json.Marshal(results)
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}

func mustEngine(t *testing.T, topo *dining.Topology, alg string, opts ...dining.Option) *dining.Engine {
	t.Helper()
	eng, err := dining.New(topo, alg, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func checkOne(t *testing.T, eng *dining.Engine, prop string) dining.PropertyResult {
	t.Helper()
	results, err := eng.CheckAll(context.Background(), prop)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || results[0].Property != prop {
		t.Fatalf("CheckAll(%s) returned %+v", prop, results)
	}
	if results[0].Truncated {
		t.Fatalf("%s on %s: exploration truncated; the instance is supposed to fit", eng.Algorithm(), eng.Topology())
	}
	return results[0]
}

func TestPropertyRegistry(t *testing.T) {
	t.Parallel()
	names := dining.Properties()
	for _, want := range []string{
		dining.DeadlockFreedom, dining.Progress, dining.LockoutFreedom, dining.StarvationTrap,
		dining.StatisticalProgress, dining.StatisticalLockout,
	} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("built-in property %q not registered (have %v)", want, names)
		}
	}
	if _, err := dining.LookupProperty("nope"); err == nil {
		t.Error("LookupProperty accepted an unknown name")
	} else if !strings.Contains(err.Error(), "registered:") {
		t.Errorf("unknown-property error should list the registered options, got: %v", err)
	}

	p, err := dining.LookupProperty(dining.Progress)
	if err != nil {
		t.Fatal(err)
	}
	if p.Kind() != dining.ExhaustiveProperty {
		t.Errorf("progress should be exhaustive, got %q", p.Kind())
	}
}

func TestEngineCheckUnknownProperty(t *testing.T) {
	t.Parallel()
	eng := mustEngine(t, dining.Ring(3), dining.LR1)
	if _, err := eng.CheckAll(context.Background(), "warp-freedom"); err == nil {
		t.Error("CheckAll accepted an unknown property name")
	} else if !strings.Contains(err.Error(), "registered:") {
		t.Errorf("unknown-property error should list the registered options, got: %v", err)
	}
	sawErr := false
	for _, err := range eng.Check(context.Background(), "warp-freedom") {
		if err != nil {
			sawErr = true
		}
	}
	if !sawErr {
		t.Error("Check stream swallowed the unknown property name")
	}
}

// TestEngineCheckReproducesTheorems replays every verdict of the internal
// model-checker test suite (Theorems 1–4 and their boundary cases) through
// the public property layer: the starvation-trap, progress, deadlock-freedom
// and lockout-freedom built-ins on the paper's minimal instances.
func TestEngineCheckReproducesTheorems(t *testing.T) {
	t.Parallel()
	ring3 := []dining.PhilID{0, 1, 2}
	theta := dining.Theorem2Minimal()
	t1min := dining.Theorem1Minimal()

	type tc struct {
		name      string
		topo      *dining.Topology
		algorithm string
		opts      dining.AlgorithmOptions
		protected []dining.PhilID
		prop      string
		wantPass  bool
		big       bool
	}
	cases := []tc{
		// Theorem 1: a fair adversary defeats LR1 once a ring fork is shared.
		{"T1 LR1 trap", t1min, dining.LR1, dining.AlgorithmOptions{}, ring3, dining.StarvationTrap, false, false},
		{"T1 LR1 global", t1min, dining.LR1, dining.AlgorithmOptions{}, nil, dining.StarvationTrap, false, false},
		{"T1 pendant LR1", dining.RingWithPendant(3), dining.LR1, dining.AlgorithmOptions{}, ring3, dining.StarvationTrap, false, false},
		// Lehmann-Rabin 1981: no trap for LR1 on the classic ring.
		{"LR1 classic ring", dining.Ring(3), dining.LR1, dining.AlgorithmOptions{}, nil, dining.StarvationTrap, true, false},
		// Theorem 2: the theta graph defeats LR1 and LR2 even for global progress.
		{"T2 LR1", theta, dining.LR1, dining.AlgorithmOptions{}, nil, dining.StarvationTrap, false, false},
		{"T2 LR2", theta, dining.LR2, dining.AlgorithmOptions{}, nil, dining.StarvationTrap, false, false},
		// Theorem 3: GDP1 has no progress trap anywhere.
		{"T3 GDP1 theta", theta, dining.GDP1, dining.AlgorithmOptions{}, nil, dining.StarvationTrap, true, false},
		{"T3 GDP1 t1min", t1min, dining.GDP1, dining.AlgorithmOptions{}, nil, dining.StarvationTrap, true, true},
		{"T3 GDP1 ring", dining.Ring(3), dining.GDP1, dining.AlgorithmOptions{}, nil, dining.StarvationTrap, true, false},
		// GDP1 is not lockout-free (Section 5 motivation).
		{"GDP1 lockout", theta, dining.GDP1, dining.AlgorithmOptions{}, []dining.PhilID{0}, dining.LockoutFreedom, false, false},
		// Theorem 4: GDP2 is lockout-free on the minimal generalized instance.
		{"T4 GDP2", theta, dining.GDP2, dining.AlgorithmOptions{}, []dining.PhilID{0}, dining.LockoutFreedom, true, false},
		// LR2 is lockout-free on the classic ring; LR1 is not.
		{"LR2 ring lockout", dining.Ring(3), dining.LR2, dining.AlgorithmOptions{}, []dining.PhilID{0}, dining.LockoutFreedom, true, false},
		{"LR1 ring lockout", dining.Ring(3), dining.LR1, dining.AlgorithmOptions{}, []dining.PhilID{0}, dining.LockoutFreedom, false, false},
		// The paper's algorithms never wedge; the naive baseline deadlocks.
		{"GDP2 deadlock-free", theta, dining.GDP2, dining.AlgorithmOptions{}, nil, dining.DeadlockFreedom, true, false},
		{"GDP2 progress", theta, dining.GDP2, dining.AlgorithmOptions{}, nil, dining.Progress, true, false},
		{"naive deadlocks", dining.Ring(3), dining.NaiveLeftFirst, dining.AlgorithmOptions{}, nil, dining.DeadlockFreedom, false, false},
		{"naive dead region", dining.Ring(3), dining.NaiveLeftFirst, dining.AlgorithmOptions{}, nil, dining.Progress, false, false},
		// E-T4 courtesy gap: first-fork-only courtesy admits an individual
		// trap on the classic ring; both-forks courtesy removes it.
		{"GDP2 courtesy gap", dining.Ring(3), dining.GDP2, dining.AlgorithmOptions{}, []dining.PhilID{0}, dining.LockoutFreedom, false, true},
		{"GDP2 strengthened", dining.Ring(3), dining.GDP2, dining.AlgorithmOptions{CourtesyOnBothForks: true}, []dining.PhilID{0}, dining.LockoutFreedom, true, true},
	}
	for _, c := range cases {
		if testing.Short() && c.big {
			continue
		}
		eng := mustEngine(t, c.topo, c.algorithm,
			dining.WithAlgorithmOptions(c.opts), dining.WithProtected(c.protected...))
		res := checkOne(t, eng, c.prop)
		if res.Passed != c.wantPass {
			t.Errorf("%s: %s on %s (protected %v): passed=%v, want %v — %s",
				c.name, c.algorithm, c.topo.Name(), c.protected, res.Passed, c.wantPass, res.Detail)
			continue
		}
		if !res.Passed {
			// Every exhaustive failure must carry a replayable counterexample.
			if res.Counterexample == nil {
				t.Errorf("%s: failed without a counterexample trace", c.name)
				continue
			}
			if err := eng.ReplayTrace(res.Counterexample); err != nil {
				t.Errorf("%s: counterexample does not replay: %v", c.name, err)
			}
		}
	}
}

// TestCounterexampleTraceGolden pins the exact counterexample traces of the
// two headline negative results — Theorem 1 (LR1 on the ring with an extra
// arc) and Theorem 2 (LR2 on the theta graph) — as JSON golden files: the
// scheduler-choice path, the outcome labels and probabilities, the rendered
// final state and the canonical final key are all part of the stable wire
// format. The traces are deterministic because the BFS state numbering and
// the path search are, for every worker count.
func TestCounterexampleTraceGolden(t *testing.T) {
	t.Parallel()
	ring3 := []dining.PhilID{0, 1, 2}
	cases := []struct {
		golden    string
		topo      *dining.Topology
		algorithm string
		protected []dining.PhilID
	}{
		{"trace_theorem1_lr1.golden.json", dining.Theorem1Minimal(), dining.LR1, ring3},
		{"trace_theorem2_lr2.golden.json", dining.Theorem2Minimal(), dining.LR2, nil},
	}
	for _, c := range cases {
		eng := mustEngine(t, c.topo, c.algorithm, dining.WithProtected(c.protected...))
		res := checkOne(t, eng, dining.StarvationTrap)
		if res.Passed {
			t.Fatalf("%s on %s: expected the starvation trap of the theorem", c.algorithm, c.topo.Name())
		}
		if res.Counterexample == nil {
			t.Fatalf("%s on %s: trap reported without a counterexample", c.algorithm, c.topo.Name())
		}
		// The replay test: re-execute the trace and land in the reported state.
		if err := eng.ReplayTrace(res.Counterexample); err != nil {
			t.Errorf("%s: counterexample replay: %v", c.golden, err)
		}
		checkGolden(t, c.golden, res.Counterexample)
	}
}

func TestEngineCheckWorkersYieldIdenticalResults(t *testing.T) {
	t.Parallel()
	ring3 := []dining.PhilID{0, 1, 2}
	base := mustEngine(t, dining.Theorem1Minimal(), dining.LR1,
		dining.WithProtected(ring3...), dining.WithWorkers(1))
	want, err := base.CheckAll(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 5} {
		eng := mustEngine(t, dining.Theorem1Minimal(), dining.LR1,
			dining.WithProtected(ring3...), dining.WithWorkers(workers))
		got, err := eng.CheckAll(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(got), len(want))
		}
		for i := range got {
			if got[i].Passed != want[i].Passed || got[i].Detail != want[i].Detail ||
				got[i].States != want[i].States || got[i].TrapStates != want[i].TrapStates {
				t.Errorf("workers=%d: result %s differs:\n got  %+v\n want %+v",
					workers, got[i].Property, got[i], want[i])
			}
			gotCx, wantCx := got[i].Counterexample, want[i].Counterexample
			if (gotCx == nil) != (wantCx == nil) {
				t.Errorf("workers=%d: %s counterexample presence differs", workers, got[i].Property)
				continue
			}
			if gotCx != nil && (gotCx.FinalKey != wantCx.FinalKey || len(gotCx.Steps) != len(wantCx.Steps)) {
				t.Errorf("workers=%d: %s counterexample differs", workers, got[i].Property)
			}
		}
	}
}

func TestCheckAllToleratesDuplicateNames(t *testing.T) {
	t.Parallel()
	eng := mustEngine(t, dining.Ring(3), dining.LR1)
	results, err := eng.CheckAll(context.Background(), dining.Progress, dining.Progress)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("got %d results for two requests", len(results))
	}
	for i, r := range results {
		if r.Property != dining.Progress || !r.Passed {
			t.Errorf("result %d: %+v; want a passing progress verdict", i, r)
		}
	}
}

func TestEngineCheckStatisticalProperties(t *testing.T) {
	t.Parallel()
	eng := mustEngine(t, dining.Theorem2Minimal(), dining.GDP1,
		dining.WithTrials(5), dining.WithMaxSteps(50_000), dining.WithSeed(7))
	results, err := eng.CheckAll(context.Background(), dining.StatisticalProgress, dining.StatisticalLockout)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.Kind != dining.StatisticalProperty {
			t.Errorf("%s: kind %q", r.Property, r.Kind)
		}
		if !r.Passed {
			t.Errorf("%s failed for GDP1 on the theta graph: %s", r.Property, r.Detail)
		}
		if r.Trials != 5 {
			t.Errorf("%s: WithTrials(5) not honoured, ran %d trials", r.Property, r.Trials)
		}
		if r.Scheduler == "" {
			t.Errorf("%s: statistical results must name the scheduler", r.Property)
		}
		if r.States != 0 {
			t.Errorf("%s: statistical results must not claim an explored space", r.Property)
		}
	}
}

func TestEngineCheckContextCancellation(t *testing.T) {
	t.Parallel()
	eng := mustEngine(t, dining.Ring(3), dining.GDP2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.CheckAll(ctx); err == nil {
		t.Error("CheckAll ignored a cancelled context")
	}
}

func TestRegisterCustomProperty(t *testing.T) {
	t.Parallel()
	// A custom exhaustive property plugs into the registry and rides the
	// shared exploration of Engine.Check. The registry is process-global and
	// -cpu reruns the test in one process, so register only once.
	if !slices.Contains(dining.Properties(), "test-has-states") {
		dining.RegisterProperty(dining.PropertyFunc{
			PropName: "test-has-states",
			PropKind: dining.ExhaustiveProperty,
			Func: func(ctx context.Context, in dining.PropertyInput) (dining.PropertyResult, error) {
				return dining.PropertyResult{
					Property: "test-has-states",
					Kind:     dining.ExhaustiveProperty,
					Passed:   in.Space.NumStates() > 0,
					Detail:   "custom",
				}, nil
			},
		})
	}
	eng := mustEngine(t, dining.Ring(3), dining.LR1)
	results, err := eng.CheckAll(context.Background(), "test-has-states")
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || !results[0].Passed {
		t.Errorf("custom property did not run: %+v", results)
	}
}

// TestLockoutFreedomStreamedMatchesSequential pins the determinism of the
// parallelized lockout-freedom check: the per-philosopher trap analyses run
// concurrently over par.Stream, but the verdict — including which
// philosopher is reported starvable and the exact counterexample trace —
// must match the sequential loop for every worker count. GDP1 on the theta
// graph fails the check (it guarantees progress but not lockout-freedom), so
// both the failing and the trace-selection paths are exercised; GDP2 passes,
// covering the all-philosophers-survive path.
func TestLockoutFreedomStreamedMatchesSequential(t *testing.T) {
	t.Parallel()
	for _, alg := range []string{dining.GDP1, dining.GDP2} {
		seq := mustCheckJSON(t,
			mustEngine(t, dining.Theorem2Minimal(), alg, dining.WithWorkers(1)),
			dining.LockoutFreedom)
		for _, workers := range []int{2, 3, 5} {
			got := mustCheckJSON(t,
				mustEngine(t, dining.Theorem2Minimal(), alg, dining.WithWorkers(workers)),
				dining.LockoutFreedom)
			if got != seq {
				t.Errorf("%s: lockout-freedom with %d workers diverged from the sequential loop:\n got  %s\n want %s",
					alg, workers, got, seq)
			}
		}
	}
}

// TestEngineCheckShardsYieldIdenticalResults pins the shard-count
// determinism contract at the property layer: the sharded state-space
// stores change only the internal memory layout, so every verdict, state
// count and counterexample trace is identical for any WithShards value —
// including the default (match workers).
func TestEngineCheckShardsYieldIdenticalResults(t *testing.T) {
	t.Parallel()
	ring3 := []dining.PhilID{0, 1, 2}
	want := mustCheckJSON(t, mustEngine(t, dining.Theorem1Minimal(), dining.LR1,
		dining.WithProtected(ring3...), dining.WithWorkers(1), dining.WithShards(1)))
	for _, cfg := range []struct{ workers, shards int }{
		{1, 4}, {3, 0}, {3, 8}, {5, 64},
	} {
		got := mustCheckJSON(t, mustEngine(t, dining.Theorem1Minimal(), dining.LR1,
			dining.WithProtected(ring3...), dining.WithWorkers(cfg.workers), dining.WithShards(cfg.shards)))
		if got != want {
			t.Errorf("workers=%d shards=%d: results diverged from the sequential single-shard run",
				cfg.workers, cfg.shards)
		}
	}
}

func TestWithShardsRejectsNegative(t *testing.T) {
	t.Parallel()
	if _, err := dining.New(dining.Ring(3), dining.LR1, dining.WithShards(-1)); err == nil {
		t.Error("New accepted WithShards(-1)")
	}
}

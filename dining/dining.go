// Package dining is the public facade of the repository: a streaming
// experiment engine for the generalized dining-philosophers systems of
// Herescu & Palamidessi (PODC 2001).
//
// The v3 API has five layers:
//
// # Registries
//
// Topologies, algorithms, schedulers, properties and fault models are open,
// name-indexed registries. The nine built-in algorithms, the six built-in
// schedulers/adversaries, every builder topology, the built-in properties
// and the three built-in fault models self-register at init time; new
// implementations plug in with [RegisterAlgorithm], [RegisterScheduler],
// [RegisterTopology], [RegisterProperty] and [RegisterFault] and immediately
// become available to every consumer — the engine, the sweep matrix, the
// experiment suite and the command-line tools. [Algorithms], [Schedulers],
// [Topologies], [Properties] and [Faults] enumerate the registered names in
// sorted order.
//
// # Engine
//
// [New] assembles an immutable [Engine] from a topology, an algorithm name
// and functional options:
//
//	topo, _ := dining.NewTopology("ring", 5)
//	eng, err := dining.New(topo, dining.GDP2,
//		dining.WithScheduler(dining.Adversary),
//		dining.WithSeed(42),
//		dining.WithWorkers(8),
//		dining.WithMaxSteps(100_000))
//
// Every run path takes a [context.Context] and honours cancellation:
// [Engine.Run] executes one simulation, [Engine.Repeat] runs n deterministic
// Monte-Carlo trials in index order, [Engine.Check] verifies properties,
// [Engine.ModelCheck] builds the legacy aggregate report, and
// [Engine.RunConcurrent] executes the system on real goroutines.
//
// # Properties
//
// The paper's claims are first-class checks. [Engine.Check] resolves
// property names against the registry, explores the state space once — a
// parallel breadth-first search over hash-sharded state stores whose result
// is byte-identical for every [WithWorkers] and [WithShards] value — and
// streams one [PropertyResult] per property:
//
//	eng, _ := dining.New(dining.Theorem2Minimal(), dining.LR2)
//	for res, err := range eng.Check(ctx, dining.StarvationTrap, dining.Progress) {
//		...
//	}
//
// The four exhaustive built-ins ([DeadlockFreedom], [Progress],
// [LockoutFreedom], [StarvationTrap]) are checked on the explored space and
// attach a replayable counterexample [Trace] to every failure — the exact
// scheduler-choice path into the violating region, verifiable with
// [Engine.ReplayTrace]; the statistical built-ins ([StatisticalProgress],
// [StatisticalLockout]) wrap the Monte-Carlo checks for instances too large
// to explore. Custom properties implement [Property] (or wrap a function in
// [PropertyFunc]) and register with [RegisterProperty].
//
// # Faults
//
// [WithFaults] injects a registered fault model into the engine's
// transition system — crash-rejoin (crash, drop forks, later rejoin),
// freeze (permanent crash) or lossy-grants (a hungry philosopher's acquire
// step probabilistically no-ops):
//
//	eng, _ := dining.New(dining.Ring(5), dining.GDP2,
//		dining.WithFaults("crash-rejoin", 0.05, 0.5))
//
// The model wraps the algorithm's program, so the simulator and the model
// checker see the same perturbed MDP; [WithFaultTargets] restricts the
// faults to named philosophers, the recoverable properties
// ([ProgressUnderFaults], [LockoutFreedomUnderFaults]) check the paper's
// guarantees on the perturbed space exhaustively, fault branches appear as
// "fault: "-labelled steps in counterexample traces, and the [Sweep] Faults
// axis crosses fault specs into the scenario matrix. Without [WithFaults]
// the engine is byte-identical to one without the fault layer. Custom
// models register with [RegisterFault].
//
// # Symmetry
//
// [WithSymmetry] quotients exhaustive exploration by the topology's
// automorphism group: states are interned under their orbit-canonical key
// (the lexicographically minimal image over the group), so a ring-n instance
// stores roughly a 1/(2n)-th of the concrete states while every verdict —
// and every counterexample trace, lifted back to concrete scheduler steps —
// is identical to the unreduced exploration:
//
//	eng, _ := dining.New(dining.Ring(5), dining.LR1, dining.WithSymmetry())
//
// The reduction is gated for soundness, falling back to the unreduced
// exploration whenever it could change a verdict: algorithms that break
// philosopher symmetry (GDP1/GDP2's fork numbering, the naive left-first
// tie-break) and targeted faults disable the quotient entirely; reflections
// are used only for algorithms invariant under the left/right swap (LR1,
// LR2); protected sets restrict the group to their setwise stabilizer; and
// lockout-freedom's per-philosopher labellings are checked on an unreduced
// twin exploration. State counts in [PropertyResult] are then per-orbit;
// simulation and trial surfaces are never affected. [Engine.Symmetry]
// reports the engine's setting, which also enters [Engine.Fingerprint].
//
// # Streams
//
// [Engine.Trials] yields per-trial results as workers finish — an
// [iter.Seq2] stream in completion order whose per-index payloads are
// nevertheless bit-identical for any worker count (each trial derives all
// randomness from its index). [Sweep] crosses topology × algorithm ×
// scheduler × fault grids into a streamed scenario matrix with the same
// determinism guarantee; [Engine.Check] streams property verdicts the same
// way.
//
// See the examples directory for complete programs and cmd/dpsim, dpbench,
// dpcheck, dpadversary for the command-line tools.
package dining

import (
	"context"
	"time"

	"repro/internal/algo"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/modelcheck"
	"repro/internal/prng"
	"repro/internal/runtime"
	"repro/internal/sched"
	"repro/internal/sim"
)

// Topology is a generalized dining-philosopher system: forks are nodes,
// philosophers are arcs of a multigraph, and every philosopher uses exactly
// two distinct forks.
type Topology = graph.Topology

// PhilID identifies a philosopher.
type PhilID = graph.PhilID

// ForkID identifies a fork.
type ForkID = graph.ForkID

// Topology constructors (see package graph for the full set). Each of these
// is also available by name through the topology registry.
var (
	// Ring is the classic table of n philosophers and n forks.
	Ring = graph.Ring
	// DoubledPolygon is a cycle of k forks with two philosophers per edge;
	// DoubledPolygon(3) is the paper's 6-philosopher / 3-fork example.
	DoubledPolygon = graph.DoubledPolygon
	// RingWithChord adds one philosopher across a ring (Theorem 1 family).
	RingWithChord = graph.RingWithChord
	// RingWithPendant adds one philosopher from a ring fork to a private fork.
	RingWithPendant = graph.RingWithPendant
	// Theta joins two forks by three or more disjoint paths (Theorem 2 family).
	Theta = graph.Theta
	// Theorem1Minimal and Theorem2Minimal are the smallest instances the
	// model checker uses for Theorems 1 and 2.
	Theorem1Minimal = graph.Theorem1Minimal
	Theorem2Minimal = graph.Theorem2Minimal
	// Star, Path, Grid, CompleteForkGraph and RandomMultigraph build further
	// synthetic topologies.
	Star              = graph.Star
	Path              = graph.Path
	Grid              = graph.Grid
	CompleteForkGraph = graph.CompleteForkGraph
	RandomMultigraph  = graph.RandomMultigraph
	// Figure1A..Figure1D are the four example systems of the paper's Figure 1.
	Figure1A = graph.Figure1A
	Figure1B = graph.Figure1B
	Figure1C = graph.Figure1C
	Figure1D = graph.Figure1D
	// NewTopologyBuilder builds arbitrary custom topologies.
	NewTopologyBuilder = graph.NewBuilder
)

// Names of the built-in algorithms (see the algorithm registry).
const (
	// LR1 is Lehmann & Rabin's free-choice algorithm (Table 1).
	LR1 = "LR1"
	// LR2 is the courteous Lehmann & Rabin algorithm with request lists and
	// guest books (Table 2).
	LR2 = "LR2"
	// GDP1 is the paper's random fork-numbering progress algorithm (Table 3).
	GDP1 = "GDP1"
	// GDP2 is the paper's lockout-free algorithm (Table 4).
	GDP2 = "GDP2"
	// OrderedForks, Colored, CentralMonitor, TicketBox and NaiveLeftFirst are
	// the classical baselines of the paper's introduction.
	OrderedForks   = "ordered-forks"
	Colored        = "colored"
	CentralMonitor = "central-monitor"
	TicketBox      = "ticket-box"
	NaiveLeftFirst = "naive-left-first"
)

// Names of the built-in schedulers (see the scheduler registry).
const (
	// RoundRobin cycles through philosophers.
	RoundRobin = "round-robin"
	// Random picks a uniformly random philosopher each step. It is the
	// engine's default scheduler.
	Random = "random"
	// Sticky schedules bursts per philosopher.
	Sticky = "sticky"
	// HungryFirst prefers philosophers in their trying section.
	HungryFirst = "hungry-first"
	// Adversary is the fair livelock adversary of Section 3 / Theorems 1–2.
	Adversary = "adversary"
	// StubbornAdversary uses the paper's growing-stubbornness construction.
	StubbornAdversary = "stubborn-adversary"
)

// AlgorithmOptions tunes an algorithm (number range m, courtesy variants,
// coin bias).
type AlgorithmOptions = algo.Options

// Program is a philosopher algorithm as a state machine over the simulation
// engine; custom algorithms implement it and register through
// RegisterAlgorithm.
type Program = sim.Program

// Scheduler decides which philosopher executes the next atomic action;
// custom schedulers implement it and register through RegisterScheduler.
type Scheduler = sim.Scheduler

// SchedulerConfig carries what a scheduler constructor may need: the run's
// random source, the protected set and the adversary fairness window.
type SchedulerConfig = sched.Config

// RandSource is the deterministic random source handed to scheduler
// constructors through SchedulerConfig.
type RandSource = prng.Source

// Recorder receives every simulation event; see WithRecorder.
type Recorder = sim.Recorder

// SimResult is the outcome of a simulation run.
type SimResult = sim.Result

// ConcurrentMetrics is the outcome of a goroutine-runtime run.
type ConcurrentMetrics = runtime.Metrics

// CheckReport is the outcome of an exhaustive model check — the legacy
// aggregate of the analyses that Engine.Check now runs as selectable
// properties with counterexample traces (see the v2→v3 migration table in
// CHANGES.md).
type CheckReport = modelcheck.Report

// Table is a titled result table (the sweep matrix and experiment-suite
// format), renderable as text, Markdown or JSON.
type Table = core.Table

// Simulate is a convenience wrapper: build an engine from the arguments and
// run one simulation.
func Simulate(ctx context.Context, topo *Topology, algorithm string, opts ...Option) (*SimResult, error) {
	eng, err := New(topo, algorithm, opts...)
	if err != nil {
		return nil, err
	}
	return eng.Run(ctx)
}

// RunConcurrent is a convenience wrapper around the goroutine runtime: it
// runs the algorithm on real goroutines until every philosopher has eaten
// targetMeals times or the duration expires.
func RunConcurrent(ctx context.Context, topo *Topology, algorithm string, seed uint64, duration time.Duration, targetMeals int64) (*ConcurrentMetrics, error) {
	eng, err := New(topo, algorithm, WithSeed(seed))
	if err != nil {
		return nil, err
	}
	return eng.RunConcurrent(ctx, duration, targetMeals)
}

// ModelCheck exhaustively verifies a small instance: it reports whether a
// fair adversary can forever starve the protected philosophers (all of them
// when protected is empty).
func ModelCheck(ctx context.Context, topo *Topology, algorithm string, protected ...PhilID) (*CheckReport, error) {
	eng, err := New(topo, algorithm, WithProtected(protected...))
	if err != nil {
		return nil, err
	}
	return eng.ModelCheck(ctx)
}

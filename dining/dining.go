// Package dining is the public facade of the repository: it exposes the
// generalized dining-philosophers library — topologies, the four algorithms
// of Herescu & Palamidessi (PODC 2001), schedulers and adversaries, the
// discrete-event simulator, the concurrent goroutine runtime and the model
// checker — through a small, stable surface.
//
// A minimal session:
//
//	topo := dining.Ring(5)
//	sys := dining.System{Topology: topo, Algorithm: dining.GDP2, Seed: 1}
//	res, err := sys.Simulate(dining.SimOptions{MaxSteps: 100_000})
//	// res.TotalEats, res.EatsBy, ...
//
// For adversarial executions set Scheduler to dining.Adversary; for real
// goroutine-based concurrency use RunConcurrent; for exhaustive verification
// on small instances use ModelCheck. See the examples directory for complete
// programs.
package dining

import (
	"context"
	"time"

	"repro/internal/algo"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/modelcheck"
	"repro/internal/runtime"
	"repro/internal/sim"
)

// Topology is a generalized dining-philosopher system: forks are nodes,
// philosophers are arcs of a multigraph, and every philosopher uses exactly
// two distinct forks.
type Topology = graph.Topology

// PhilID identifies a philosopher.
type PhilID = graph.PhilID

// ForkID identifies a fork.
type ForkID = graph.ForkID

// Topology constructors (see package graph for the full set).
var (
	// Ring is the classic table of n philosophers and n forks.
	Ring = graph.Ring
	// DoubledPolygon is a cycle of k forks with two philosophers per edge;
	// DoubledPolygon(3) is the paper's 6-philosopher / 3-fork example.
	DoubledPolygon = graph.DoubledPolygon
	// RingWithChord adds one philosopher across a ring (Theorem 1 family).
	RingWithChord = graph.RingWithChord
	// RingWithPendant adds one philosopher from a ring fork to a private fork.
	RingWithPendant = graph.RingWithPendant
	// Theta joins two forks by three or more disjoint paths (Theorem 2 family).
	Theta = graph.Theta
	// Star, Path, Grid, CompleteForkGraph and RandomMultigraph build further
	// synthetic topologies.
	Star              = graph.Star
	Path              = graph.Path
	Grid              = graph.Grid
	CompleteForkGraph = graph.CompleteForkGraph
	RandomMultigraph  = graph.RandomMultigraph
	// Figure1A..Figure1D are the four example systems of the paper's Figure 1.
	Figure1A = graph.Figure1A
	Figure1B = graph.Figure1B
	Figure1C = graph.Figure1C
	Figure1D = graph.Figure1D
	// NewTopologyBuilder builds arbitrary custom topologies.
	NewTopologyBuilder = graph.NewBuilder
)

// Algorithm names accepted by System.Algorithm.
const (
	// LR1 is Lehmann & Rabin's free-choice algorithm (Table 1).
	LR1 = "LR1"
	// LR2 is the courteous Lehmann & Rabin algorithm with request lists and
	// guest books (Table 2).
	LR2 = "LR2"
	// GDP1 is the paper's random fork-numbering progress algorithm (Table 3).
	GDP1 = "GDP1"
	// GDP2 is the paper's lockout-free algorithm (Table 4).
	GDP2 = "GDP2"
	// OrderedForks, Colored, CentralMonitor, TicketBox and NaiveLeftFirst are
	// the classical baselines of the paper's introduction.
	OrderedForks   = "ordered-forks"
	Colored        = "colored"
	CentralMonitor = "central-monitor"
	TicketBox      = "ticket-box"
	NaiveLeftFirst = "naive-left-first"
)

// Algorithms returns every registered algorithm name.
func Algorithms() []string { return algo.Names() }

// AlgorithmOptions tunes an algorithm.
type AlgorithmOptions = algo.Options

// Scheduler kinds.
const (
	// RoundRobin cycles through philosophers.
	RoundRobin = core.RoundRobin
	// Random picks a uniformly random philosopher each step.
	Random = core.Random
	// Sticky schedules bursts per philosopher.
	Sticky = core.Sticky
	// HungryFirst prefers philosophers in their trying section.
	HungryFirst = core.HungryFirst
	// Adversary is the fair livelock adversary of Section 3 / Theorems 1–2.
	Adversary = core.Adversary
	// StubbornAdversary uses the paper's growing-stubbornness construction.
	StubbornAdversary = core.StubbornAdversary
)

// System is a configured system: topology + algorithm + scheduler + seed.
type System = core.System

// SimOptions configures a simulation run.
type SimOptions = sim.RunOptions

// SimResult is the outcome of a simulation run.
type SimResult = sim.Result

// ConcurrentMetrics is the outcome of a goroutine-runtime run.
type ConcurrentMetrics = runtime.Metrics

// CheckReport is the outcome of an exhaustive model check.
type CheckReport = modelcheck.Report

// Simulate is a convenience wrapper: build a System from the arguments and
// run it on the step simulator.
func Simulate(topo *Topology, algorithm string, seed uint64, opts SimOptions) (*SimResult, error) {
	sys := System{Topology: topo, Algorithm: algorithm, Scheduler: Random, Seed: seed}
	return sys.Simulate(opts)
}

// RunConcurrent is a convenience wrapper around the goroutine runtime: it
// runs the algorithm on real goroutines until every philosopher has eaten
// targetMeals times or the duration expires.
func RunConcurrent(ctx context.Context, topo *Topology, algorithm string, seed uint64, duration time.Duration, targetMeals int64) (*ConcurrentMetrics, error) {
	sys := System{Topology: topo, Algorithm: algorithm, Seed: seed}
	return sys.RunConcurrent(ctx, duration, targetMeals)
}

// ModelCheck exhaustively verifies a small instance: it reports whether a
// fair adversary can forever starve the protected philosophers (all of them
// when protected is empty).
func ModelCheck(topo *Topology, algorithm string, protected ...PhilID) (*CheckReport, error) {
	sys := System{Topology: topo, Algorithm: algorithm, Protected: protected}
	return sys.ModelCheck(0)
}

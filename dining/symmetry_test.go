package dining_test

import (
	"context"
	"encoding/json"
	"strings"
	"testing"

	"repro/dining"
	"repro/internal/algo"
	"repro/internal/trace"
)

// TestSymmetryQuotientMatchesUnreduced is the acceptance grid of the symmetry
// quotient: across topology × algorithm × fault configurations, an engine
// with WithSymmetry must decide exactly the verdicts of the unreduced engine,
// produce a counterexample exactly when the unreduced engine does, and every
// quotient counterexample — lifted from orbits back to concrete states — must
// replay cleanly on the UNREDUCED engine. State counts are per-orbit, so the
// quotient space must never be larger, and must be strictly smaller wherever
// the topology has a nontrivial automorphism group.
func TestSymmetryQuotientMatchesUnreduced(t *testing.T) {
	t.Parallel()
	type cell struct {
		topo    *dining.Topology
		algs    []string
		faults  []dining.Option
		reduced bool // nontrivial group: expect strictly fewer states
	}
	grid := []cell{
		{dining.Ring(3), []string{dining.LR1, dining.LR2, dining.GDP1, dining.GDP2, dining.NaiveLeftFirst}, nil, true},
		{dining.Ring(4), []string{dining.LR1, dining.NaiveLeftFirst}, nil, true},
		{dining.Star(3), []string{dining.LR1, dining.GDP2}, nil, true},
		// Asymmetric topology: WithSymmetry is a sound no-op.
		{dining.Theorem2Minimal(), []string{dining.LR1}, nil, false},
		// Fault-injected transition systems quotient too (the crashed bit
		// rides along in the permuted image).
		{dining.Ring(3), []string{dining.LR1, dining.GDP1}, []dining.Option{dining.WithFaults("crash-rejoin", 0.1, 0.5)}, true},
	}
	ctx := context.Background()
	for _, c := range grid {
		for _, alg := range c.algs {
			plain := mustEngine(t, c.topo, alg, c.faults...)
			sym := mustEngine(t, c.topo, alg, append([]dining.Option{dining.WithSymmetry()}, c.faults...)...)
			if !sym.Symmetry() || plain.Symmetry() {
				t.Fatalf("%s/%s: Symmetry() accessor does not reflect WithSymmetry", c.topo.Name(), alg)
			}
			want, err := plain.CheckAll(ctx)
			if err != nil {
				t.Fatal(err)
			}
			got, err := sym.CheckAll(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("%s/%s: %d results under symmetry, %d unreduced", c.topo.Name(), alg, len(got), len(want))
			}
			for i := range want {
				name := c.topo.Name() + "/" + alg + "/" + want[i].Property
				if got[i].Property != want[i].Property || got[i].Kind != want[i].Kind {
					t.Fatalf("%s: result order differs under symmetry", name)
				}
				if got[i].Passed != want[i].Passed {
					t.Errorf("%s: symmetry verdict %v, unreduced %v", name, got[i].Passed, want[i].Passed)
				}
				if (got[i].Counterexample == nil) != (want[i].Counterexample == nil) {
					t.Errorf("%s: counterexample presence differs (symmetry %v, unreduced %v)",
						name, got[i].Counterexample != nil, want[i].Counterexample != nil)
				}
				if got[i].States > want[i].States {
					t.Errorf("%s: quotient space has %d states, unreduced %d", name, got[i].States, want[i].States)
				}
				if c.reduced && got[i].States >= want[i].States {
					t.Errorf("%s: quotient did not shrink the space (%d states)", name, got[i].States)
				}
				if !c.reduced && got[i].States != want[i].States {
					t.Errorf("%s: trivial group changed the state count: %d vs %d", name, got[i].States, want[i].States)
				}
				if cx := got[i].Counterexample; cx != nil {
					// The lifted trace must be a concrete execution of the
					// unreduced system.
					if err := plain.ReplayTrace(cx); err != nil {
						t.Errorf("%s: lifted counterexample does not replay on the unreduced engine: %v", name, err)
					}
					if err := sym.ReplayTrace(cx); err != nil {
						t.Errorf("%s: lifted counterexample does not replay on its own engine: %v", name, err)
					}
				}
			}
		}
	}
}

// TestSymmetryLiftedDeadlockWitness pins the semantics of a lifted witness:
// the final state of a quotient deadlock counterexample, replayed concretely,
// must itself be a deadlock of the unreduced system — every outcome of every
// philosopher is a self-loop — not merely some state in the witness orbit's
// vicinity.
func TestSymmetryLiftedDeadlockWitness(t *testing.T) {
	t.Parallel()
	topo := dining.Ring(4)
	sym := mustEngine(t, topo, dining.NaiveLeftFirst, dining.WithSymmetry())
	results, err := sym.CheckAll(context.Background(), dining.DeadlockFreedom)
	if err != nil {
		t.Fatal(err)
	}
	res := results[0]
	if res.Passed || res.Counterexample == nil {
		t.Fatalf("naive-left-first on ring-4 must fail deadlock-freedom with a counterexample (passed=%v)", res.Passed)
	}
	prog, err := algo.New(dining.NaiveLeftFirst, algo.Options{})
	if err != nil {
		t.Fatal(err)
	}
	w, err := trace.Replay(topo, prog, nil, res.Counterexample)
	if err != nil {
		t.Fatalf("replay of the lifted counterexample failed: %v", err)
	}
	base := w.AppendKey(nil)
	for p := 0; p < topo.NumPhilosophers(); p++ {
		pid := dining.PhilID(p)
		outcomes := prog.Outcomes(w, pid, nil)
		for o := range outcomes {
			succ := w.Clone()
			prog.Outcomes(succ, pid, nil)[o].Do(succ, pid)
			if key := succ.AppendKey(nil); string(key) != string(base) {
				t.Fatalf("lifted final state is not a deadlock: P%d outcome %d moves the system", p, o)
			}
		}
	}
}

// TestZeroRateFaultSymmetryEquivalence extends the fault layer's zero-cost
// promise to the quotient: a symmetry-enabled engine wrapped in a zero-rate
// fault model produces JSON-identical verdicts to the fault-free
// symmetry-enabled engine (the crashed bit never sets, so both explore the
// same orbit space). Only the fault annotation itself may differ.
func TestZeroRateFaultSymmetryEquivalence(t *testing.T) {
	t.Parallel()
	ctx := context.Background()
	for _, alg := range []string{dining.LR1, dining.GDP2, dining.NaiveLeftFirst} {
		plain := mustEngine(t, dining.Ring(3), alg, dining.WithSymmetry(), dining.WithSeed(7))
		zero := mustEngine(t, dining.Ring(3), alg, dining.WithSymmetry(), dining.WithSeed(7),
			dining.WithFaults("crash-rejoin", 0))
		want, err := plain.CheckAll(ctx)
		if err != nil {
			t.Fatal(err)
		}
		got, err := zero.CheckAll(ctx)
		if err != nil {
			t.Fatal(err)
		}
		for i := range got {
			if got[i].Faults != "crash-rejoin:0,0.5" {
				t.Errorf("%s: zero-rate result reports faults %q", alg, got[i].Faults)
			}
			got[i].Faults = ""
			got[i].Detail = strings.TrimSuffix(got[i].Detail, " under crash-rejoin:0,0.5")
			if got[i].Counterexample != nil {
				got[i].Counterexample.Faults = ""
			}
		}
		wantJSON, err := json.Marshal(want)
		if err != nil {
			t.Fatal(err)
		}
		gotJSON, err := json.Marshal(got)
		if err != nil {
			t.Fatal(err)
		}
		if string(wantJSON) != string(gotJSON) {
			t.Errorf("%s: zero-rate fault + symmetry differs from plain symmetry:\nwant %s\ngot  %s", alg, wantJSON, gotJSON)
		}
	}
}

// TestSymmetryTruncatedDeterministicAcrossWorkers pins truncation under the
// quotient: a state cap cuts the orbit exploration at the same point for
// every worker/shard configuration, so capped symmetric engines are
// JSON-deterministic too (a truncated quotient is compared against itself,
// not the unreduced engine — a per-orbit cap covers more of the system than
// the same cap unreduced, so verdict equivalence is not expected).
func TestSymmetryTruncatedDeterministicAcrossWorkers(t *testing.T) {
	t.Parallel()
	build := func(workers, shards int) *dining.Engine {
		return mustEngine(t, dining.Ring(4), dining.LR2,
			dining.WithSymmetry(), dining.WithMaxStates(700),
			dining.WithWorkers(workers), dining.WithShards(shards))
	}
	ref := build(1, 1)
	results, err := ref.CheckAll(context.Background(), dining.StarvationTrap)
	if err != nil {
		t.Fatal(err)
	}
	if !results[0].Truncated {
		t.Fatalf("cap 700 did not truncate the ring-4 LR2 quotient (%d states)", results[0].States)
	}
	want := mustCheckJSON(t, ref, dining.StarvationTrap)
	for _, cfg := range [][2]int{{4, 1}, {8, 4}} {
		if got := mustCheckJSON(t, build(cfg[0], cfg[1]), dining.StarvationTrap); got != want {
			t.Errorf("workers=%d shards=%d: truncated symmetric verdict differs:\nwant %s\ngot  %s",
				cfg[0], cfg[1], want, got)
		}
	}
}

package dining

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math"

	"repro/internal/graph"
)

// fingerprintVersion tags the canonical encoding; bump it whenever a field
// is added, removed or re-ordered so that stale cache entries keyed by an
// older encoding can never alias a new configuration. v2 added the symmetry
// bit (WithSymmetry changes the explored space, so quotiented and unreduced
// explorations must never share a cache entry).
const fingerprintVersion = "dining-fingerprint-v2"

// Fingerprint returns a stable hexadecimal key of the engine's canonical
// configuration: the topology (name and full fork/philosopher structure,
// so two same-named custom topologies with different wiring never collide),
// the algorithm and its options, the scheduler, the base seed, the step and
// state bounds, the statistical trial count, the fairness window, the
// protected set, the exploration shard count and the canonical fault spec.
//
// The fingerprint is a pure function of the configuration — it never reads
// the clock, the environment or any global state — and the encoding is
// fixed-width and versioned, so the same configuration produces the same
// key in every process, on every platform, across runs. Two engines with
// equal fingerprints are behaviourally identical: every Run, Trials, Check
// and ModelCheck result is bit-identical between them. This is what makes
// the fingerprint safe to use as a cache key for explored state spaces
// (cmd/dpserve does exactly that); deriving keys any other way risks
// drifting from engine semantics when options are added.
//
// Two deliberate exclusions:
//
//   - WithWorkers is NOT part of the fingerprint. The worker count is a
//     resource knob: every result is pinned bit-identical for every value,
//     so two requests differing only in workers share one cache entry.
//   - WithRecorder is NOT part of the fingerprint. A recorder observes a
//     run; it never alters the transition system.
//
// WithShards IS included even though verdicts are provably identical for
// every shard count: the shard count selects the physical layout of the
// explored state space, so a cache keyed by the fingerprint hands back a
// space laid out exactly as the configuration requested.
func (e *Engine) Fingerprint() string {
	h := sha256.New()
	var scratch [8]byte
	u64 := func(v uint64) {
		binary.LittleEndian.PutUint64(scratch[:], v)
		h.Write(scratch[:])
	}
	str := func(s string) {
		u64(uint64(len(s)))
		h.Write([]byte(s))
	}
	b := func(v bool) {
		if v {
			u64(1)
		} else {
			u64(0)
		}
	}

	str(fingerprintVersion)
	// Topology: registered name plus the complete structure.
	str(e.topo.Name())
	u64(uint64(e.topo.NumForks()))
	u64(uint64(e.topo.NumPhilosophers()))
	for p := 0; p < e.topo.NumPhilosophers(); p++ {
		forks := e.topo.Forks(graph.PhilID(p))
		u64(uint64(forks[0]))
		u64(uint64(forks[1]))
	}
	// Algorithm and options.
	str(e.alg)
	u64(math.Float64bits(e.cfg.algoOpts.LeftBias))
	u64(uint64(e.cfg.algoOpts.M))
	b(e.cfg.algoOpts.DisableCourtesy)
	b(e.cfg.algoOpts.CourtesyOnBothForks)
	// Scheduler, seed, bounds.
	str(e.cfg.scheduler)
	u64(e.cfg.seed)
	u64(uint64(e.cfg.maxSteps))
	u64(uint64(e.cfg.maxStates))
	u64(uint64(e.cfg.trials))
	u64(uint64(e.cfg.fairnessWindow))
	// Protected set (order matters: WithProtected order is part of the
	// config, and the engine preserves it).
	u64(uint64(len(e.cfg.protected)))
	for _, p := range e.cfg.protected {
		u64(uint64(p))
	}
	// Storage layout.
	u64(uint64(e.cfg.shards))
	// Symmetry quotient: a quotiented space stores orbit representatives, so
	// it must never alias the unreduced space of the same configuration.
	b(e.cfg.symmetry)
	// Fault model, by canonical spec ("" when none): Spec() re-canonicalizes
	// rates and targets, so every spelling of the same model agrees.
	str(e.Faults())

	sum := h.Sum(nil)
	return hex.EncodeToString(sum[:16])
}

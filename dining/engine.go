package dining

import (
	"context"
	"fmt"
	"iter"
	"time"

	"repro/internal/algo"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/graph"
	"repro/internal/modelcheck"
	"repro/internal/par"
	"repro/internal/prng"
	"repro/internal/sim"
)

// seedStride separates derived per-trial seeds; it matches the stride of the
// internal experiment engine so that Engine trials are bit-identical to
// core.System.Repeat trials.
const seedStride = 0x9e3779b97f4a7c15

// config is the mutable bag the functional options write into; New freezes
// it into an immutable Engine.
type config struct {
	scheduler      string
	algoOpts       algo.Options
	protected      []graph.PhilID
	fairnessWindow int64
	seed           uint64
	workers        int
	shards         int
	maxSteps       int64
	maxStates      int
	trials         int
	symmetry       bool
	recorder       sim.Recorder

	faultName    string
	faultRates   []float64
	faultTargets []graph.PhilID
	faultModel   fault.Model // resolved by New from the three fields above
}

// Option configures an Engine at construction time.
type Option func(*config)

// WithScheduler selects the scheduler by registered name (default Random).
func WithScheduler(name string) Option { return func(c *config) { c.scheduler = name } }

// WithSeed sets the base random seed (default 0). Trial i of a Monte-Carlo
// run derives its seed from the base seed and i alone, which is what makes
// streamed trials deterministic at any worker count.
func WithSeed(seed uint64) Option { return func(c *config) { c.seed = seed } }

// WithWorkers bounds the number of goroutines used by Trials, Repeat and
// Sweep (0 = one per CPU, 1 = sequential). Results are identical for every
// value.
func WithWorkers(n int) Option { return func(c *config) { c.workers = n } }

// WithShards splits the state-space store of Check and ModelCheck
// explorations into 2^k independently-owned shards, so exploration workers
// intern and append states without a sequential per-level merge (rounded up
// to a power of two; 0 = match the worker count). Results — state counts,
// verdicts, counterexample traces — are identical for every value; only
// wall-clock and memory layout change.
func WithShards(n int) Option { return func(c *config) { c.shards = n } }

// WithMaxSteps bounds the number of atomic steps per simulation run
// (0 = the simulator default).
func WithMaxSteps(n int64) Option { return func(c *config) { c.maxSteps = n } }

// WithAlgorithmOptions tunes the algorithm (number range m, courtesy
// variants, coin bias).
func WithAlgorithmOptions(opts AlgorithmOptions) Option {
	return func(c *config) { c.algoOpts = opts }
}

// WithProtected restricts an adversary's (and the model checker's) target
// set to the given philosophers; empty means all of them.
func WithProtected(protected ...PhilID) Option {
	return func(c *config) { c.protected = append([]PhilID(nil), protected...) }
}

// WithFairnessWindow sets the bounded-fair adversary's window (0 = default).
func WithFairnessWindow(window int64) Option {
	return func(c *config) { c.fairnessWindow = window }
}

// WithMaxStates caps the state count of ModelCheck and Check explorations
// (0 = the model-checker default).
func WithMaxStates(n int) Option { return func(c *config) { c.maxStates = n } }

// WithTrials sets the Monte-Carlo trial count used by the statistical
// properties of Check (0 = each check's default).
func WithTrials(n int) Option { return func(c *config) { c.trials = n } }

// WithSymmetry quotients the explorations of Check and Explore by the
// topology's automorphism group: states that are permutations of one another
// under a declared topology symmetry (ring rotations and reflections, star
// leaf permutations) are stored once, shrinking the state space by up to the
// group order while preserving every exhaustive verdict. The reduction only
// applies when it is sound — the engine's (possibly fault-wrapped) program
// must satisfy the paper's symmetry condition (Program.Symmetric; targeted
// faults disable it), reflections are used only for left/right-symmetric
// programs (sim.SideSymmetricProgram), and a protected set restricts the
// group to its setwise stabilizer. On asymmetric programs or topologies
// without declared symmetries the option is a no-op. Counterexample traces
// are lifted back to concrete schedules, so they replay on engines without
// the option. Verdicts are identical with and without symmetry; reported
// state and transition counts are per orbit, so they differ.
func WithSymmetry() Option { return func(c *config) { c.symmetry = true } }

// WithFaults injects the named fault model into the engine's transition
// system. The name may be a full fault spec ("crash-rejoin:0.1,0.5@2", see
// the grammar in internal/fault); explicit rates append after the spec's.
// Missing rates take the model's documented defaults. New validates
// everything eagerly — an unknown model name, a rate outside [0, 1], too
// many rates and a target philosopher the topology does not have are all
// construction-time errors. The Monte-Carlo simulator and the exhaustive
// model checker both run the wrapped program, so Run, Trials, Repeat, Check
// and ModelCheck all see the same perturbed MDP. RunConcurrent injects the
// crash-family models (crash-rejoin, freeze) as goroutine park/resume
// decisions driven by per-seed streams, and rejects the message-level models
// (lossy-grants, delayed-grants), which have no goroutine equivalent.
func WithFaults(name string, rates ...float64) Option {
	return func(c *config) {
		c.faultName = name
		c.faultRates = append([]float64(nil), rates...)
	}
}

// WithFaultTargets restricts the engine's fault model to the given
// philosophers (default: all of them). It requires WithFaults; targeting
// without a model is a construction-time error.
func WithFaultTargets(phils ...PhilID) Option {
	return func(c *config) { c.faultTargets = append([]PhilID(nil), phils...) }
}

// WithRecorder attaches an event recorder to Run. A recorder observes a
// single event stream, so Trials and Repeat reject engines that have one
// combined with more than one worker.
func WithRecorder(r Recorder) Option { return func(c *config) { c.recorder = r } }

// Engine is an immutable, fully validated experiment configuration: a
// topology, an algorithm and a scheduler resolved against the registries,
// plus seeds, step budgets and worker counts. Construct one with New; an
// Engine is safe for concurrent use and every method may be called any
// number of times.
type Engine struct {
	topo *graph.Topology
	alg  string
	cfg  config
}

// New builds an Engine for the algorithm (by registered name) on the
// topology, applying the options. It validates everything eagerly: a nil or
// invalid topology, an unknown algorithm name and an unknown scheduler name
// are construction-time errors listing the registered options.
func New(topo *Topology, algorithm string, opts ...Option) (*Engine, error) {
	if topo == nil {
		return nil, fmt.Errorf("dining: New requires a topology")
	}
	if err := topo.Validate(); err != nil {
		return nil, err
	}
	c := config{scheduler: Random}
	for _, opt := range opts {
		opt(&c)
	}
	if _, err := algo.New(algorithm, c.algoOpts); err != nil {
		return nil, err
	}
	// Probe the scheduler with a throwaway configuration that honours the
	// full Config contract (non-nil RNG), so custom constructors that draw
	// randomness at construction time survive eager validation.
	if _, err := NewScheduler(c.scheduler, SchedulerConfig{
		RNG:            prng.New(c.seed),
		Protected:      c.protected,
		FairnessWindow: c.fairnessWindow,
	}); err != nil {
		return nil, err
	}
	if c.maxSteps < 0 {
		return nil, fmt.Errorf("dining: WithMaxSteps(%d) is negative", c.maxSteps)
	}
	if c.workers < 0 {
		return nil, fmt.Errorf("dining: WithWorkers(%d) is negative (0 means one per CPU)", c.workers)
	}
	if c.shards < 0 {
		return nil, fmt.Errorf("dining: WithShards(%d) is negative (0 means match the worker count)", c.shards)
	}
	if c.maxStates < 0 {
		return nil, fmt.Errorf("dining: WithMaxStates(%d) is negative", c.maxStates)
	}
	if c.trials < 0 {
		return nil, fmt.Errorf("dining: WithTrials(%d) is negative", c.trials)
	}
	if c.faultName != "" {
		name, fcfg, err := fault.ParseSpec(c.faultName)
		if err != nil {
			return nil, err
		}
		fcfg.Rates = append(fcfg.Rates, c.faultRates...)
		fcfg.Phils = append(fcfg.Phils, c.faultTargets...)
		m, err := fault.New(name, fcfg)
		if err != nil {
			return nil, err
		}
		if err := m.Validate(topo); err != nil {
			return nil, err
		}
		c.faultModel = m
	} else if len(c.faultRates) > 0 || len(c.faultTargets) > 0 {
		return nil, fmt.Errorf("dining: fault rates and WithFaultTargets require WithFaults")
	}
	return &Engine{topo: topo, alg: algorithm, cfg: c}, nil
}

// Topology returns the engine's topology.
func (e *Engine) Topology() *Topology { return e.topo }

// Algorithm returns the engine's algorithm name.
func (e *Engine) Algorithm() string { return e.alg }

// Scheduler returns the engine's scheduler name.
func (e *Engine) Scheduler() string { return e.cfg.scheduler }

// Seed returns the engine's base seed.
func (e *Engine) Seed() uint64 { return e.cfg.seed }

// Workers returns the engine's worker bound (0 = one per CPU).
func (e *Engine) Workers() int { return e.cfg.workers }

// Shards returns the engine's exploration shard count (0 = match workers).
func (e *Engine) Shards() int { return e.cfg.shards }

// MaxSteps returns the engine's per-run step bound (0 = simulator default).
func (e *Engine) MaxSteps() int64 { return e.cfg.maxSteps }

// MaxStates returns the engine's exploration state cap (0 = model-checker
// default).
func (e *Engine) MaxStates() int { return e.cfg.maxStates }

// TrialCount returns the engine's statistical trial count (0 = each check's
// default). The name avoids colliding with the Trials stream method.
func (e *Engine) TrialCount() int { return e.cfg.trials }

// Symmetry reports whether the engine quotients its explorations by the
// topology's automorphism group (WithSymmetry).
func (e *Engine) Symmetry() bool { return e.cfg.symmetry }

// FairnessWindow returns the engine's bounded-fair adversary window
// (0 = default).
func (e *Engine) FairnessWindow() int64 { return e.cfg.fairnessWindow }

// AlgorithmOptions returns the engine's algorithm options.
func (e *Engine) AlgorithmOptions() AlgorithmOptions { return e.cfg.algoOpts }

// Protected returns a copy of the engine's protected philosopher set
// (empty = all philosophers).
func (e *Engine) Protected() []PhilID { return append([]PhilID(nil), e.cfg.protected...) }

// Faults returns the canonical spec of the engine's fault model
// ("crash-rejoin:0.05,0.5"), or "" when the engine injects no faults.
func (e *Engine) Faults() string {
	if e.cfg.faultModel == nil {
		return ""
	}
	return e.cfg.faultModel.Spec()
}

// system assembles the internal system for one run with the given seed.
func (e *Engine) system(seed uint64) core.System {
	return core.System{
		Topology:       e.topo,
		Algorithm:      e.alg,
		AlgoOptions:    e.cfg.algoOpts,
		Scheduler:      e.cfg.scheduler,
		Protected:      e.cfg.protected,
		FairnessWindow: e.cfg.fairnessWindow,
		Faults:         e.cfg.faultModel,
		Seed:           seed,
	}
}

// program constructs the engine's algorithm program, wrapped by the fault
// model when one is configured — the single assembly point that keeps the
// simulator, the model checker and trace replay on the same (possibly
// perturbed) transition system.
func (e *Engine) program() (sim.Program, error) {
	prog, err := algo.New(e.alg, e.cfg.algoOpts)
	if err != nil || e.cfg.faultModel == nil {
		return prog, err
	}
	return e.cfg.faultModel.Wrap(e.topo, prog), nil
}

// orBackground substitutes context.Background for a nil ctx so that every
// engine entry point tolerates nil uniformly.
func orBackground(ctx context.Context) context.Context {
	if ctx == nil {
		return context.Background()
	}
	return ctx
}

// runOptions builds the simulator options for one run, wiring ctx
// cancellation into the step loop.
func (e *Engine) runOptions(ctx context.Context, recorder sim.Recorder) sim.RunOptions {
	opts := sim.RunOptions{MaxSteps: e.cfg.maxSteps, Recorder: recorder}
	if ctx.Done() != nil {
		opts.Stop = func() bool { return ctx.Err() != nil }
	}
	return opts
}

// trialSeed derives the seed of trial i from the base seed and i alone.
func (e *Engine) trialSeed(i int) uint64 { return e.cfg.seed + uint64(i)*seedStride }

// Run executes one simulation with the engine's base seed. Cancelling ctx
// ends the run and returns the context's error.
func (e *Engine) Run(ctx context.Context) (*SimResult, error) {
	ctx = orBackground(ctx)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	sys := e.system(e.cfg.seed)
	res, err := sys.Simulate(e.runOptions(ctx, e.cfg.recorder))
	if err != nil {
		return nil, err
	}
	if res.Reason == sim.StopCancelled {
		return nil, ctx.Err()
	}
	return res, nil
}

// TrialResult is one entry of a trial stream: the trial's index and seed
// plus a flat, JSON-stable summary of the run. Result carries the complete
// simulation outcome for programmatic consumers and is excluded from JSON.
type TrialResult struct {
	Trial          int      `json:"trial"`
	Seed           uint64   `json:"seed"`
	Topology       string   `json:"topology"`
	Algorithm      string   `json:"algorithm"`
	Scheduler      string   `json:"scheduler"`
	Steps          int64    `json:"steps"`
	TotalEats      int64    `json:"total_eats"`
	EatsBy         []int64  `json:"eats_by"`
	FirstEatStep   int64    `json:"first_eat_step"`
	MeanWaitSteps  float64  `json:"mean_wait_steps"`
	MaxScheduleGap int64    `json:"max_schedule_gap"`
	Starved        []PhilID `json:"starved,omitempty"`
	Reason         string   `json:"reason"`

	Result *SimResult `json:"-"`
}

// newTrialResult flattens a simulation result into the stream entry.
func newTrialResult(trial int, seed uint64, res *SimResult) TrialResult {
	return TrialResult{
		Trial:          trial,
		Seed:           seed,
		Topology:       res.Topology,
		Algorithm:      res.Algorithm,
		Scheduler:      res.SchedulerName,
		Steps:          res.Steps,
		TotalEats:      res.TotalEats,
		EatsBy:         res.EatsBy,
		FirstEatStep:   res.FirstEatStep,
		MeanWaitSteps:  res.MeanWaitSteps,
		MaxScheduleGap: res.MaxScheduleGap,
		Starved:        res.Starved,
		Reason:         string(res.Reason),
		Result:         res,
	}
}

// runTrial executes trial i with its derived seed. The engine's recorder is
// attached when present — streamWorkers has then already forced sequential
// execution, so the recorder observes a single ordered event stream.
func (e *Engine) runTrial(ctx context.Context, i int) (TrialResult, error) {
	seed := e.trialSeed(i)
	sys := e.system(seed)
	res, err := sys.Simulate(e.runOptions(ctx, e.cfg.recorder))
	if err != nil {
		return TrialResult{Trial: i, Seed: seed}, fmt.Errorf("dining: trial %d: %w", i, err)
	}
	if res.Reason == sim.StopCancelled {
		return TrialResult{Trial: i, Seed: seed}, ctx.Err()
	}
	return newTrialResult(i, seed, res), nil
}

// streamWorkers resolves the worker count for a stream, honouring the
// recorder restriction (a recorder observes a single event stream).
func (e *Engine) streamWorkers() (int, error) {
	if e.cfg.recorder != nil {
		if e.cfg.workers > 1 {
			return 0, fmt.Errorf("dining: WithRecorder requires WithWorkers(1), got %d", e.cfg.workers)
		}
		return 1, nil
	}
	return e.cfg.workers, nil
}

// Trials streams n Monte-Carlo trials, yielding each TrialResult as its
// worker finishes — completion order, not index order. Each trial's seed
// depends only on its index, so the result yielded for a given index is
// bit-identical whatever the worker count; aggregate in index order (or use
// Repeat) to reproduce a sequential run exactly. The stream stops at the
// first trial error or context cancellation, yielding that error last.
func (e *Engine) Trials(ctx context.Context, n int) iter.Seq2[TrialResult, error] {
	ctx = orBackground(ctx)
	if n <= 0 {
		n = 1 // mirror Repeat: the degenerate request still runs one trial
	}
	return func(yield func(TrialResult, error) bool) {
		workers, err := e.streamWorkers()
		if err != nil {
			yield(TrialResult{}, err)
			return
		}
		for s := range par.Stream(ctx, workers, n, func(i int) (TrialResult, error) {
			return e.runTrial(ctx, i)
		}) {
			if s.Err != nil {
				yield(TrialResult{Trial: s.Index, Seed: e.trialSeed(s.Index)}, s.Err)
				return
			}
			if !yield(s.Value, nil) {
				return
			}
		}
	}
}

// Repeat runs n trials and returns the full results in trial-index order —
// the blocking, aggregate-friendly counterpart of Trials, bit-identical to a
// sequential run for any worker count.
func (e *Engine) Repeat(ctx context.Context, n int) ([]*SimResult, error) {
	ctx = orBackground(ctx)
	if n <= 0 {
		n = 1
	}
	workers, err := e.streamWorkers()
	if err != nil {
		return nil, err
	}
	results := make([]*SimResult, n)
	for s := range par.Stream(ctx, workers, n, func(i int) (TrialResult, error) {
		return e.runTrial(ctx, i)
	}) {
		if s.Err != nil {
			return nil, s.Err
		}
		results[s.Index] = s.Value.Result
	}
	return results, nil
}

// ModelCheck exhaustively explores the system's state space (small instances
// only) and returns the legacy aggregate analysis report. The scheduler
// configuration is irrelevant here: the model checker quantifies over all
// schedulers. Cancelling ctx aborts the exploration. New code should prefer
// Check, which runs the same analyses as selectable properties, streams
// per-property verdicts and attaches replayable counterexample traces to
// failures; see the v2→v3 migration table in CHANGES.md.
func (e *Engine) ModelCheck(ctx context.Context) (*CheckReport, error) {
	ctx = orBackground(ctx)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	prog, err := e.program()
	if err != nil {
		return nil, err
	}
	return checkWithContext(ctx, e.topo, prog, e.cfg.maxStates, e.cfg.protected, e.cfg.workers, e.cfg.shards)
}

// RunConcurrent executes the system on the goroutine runtime for the given
// duration (or until every philosopher has eaten targetMeals times).
func (e *Engine) RunConcurrent(ctx context.Context, duration time.Duration, targetMeals int64) (*ConcurrentMetrics, error) {
	sys := e.system(e.cfg.seed)
	return sys.RunConcurrent(orBackground(ctx), duration, targetMeals)
}

// checkWithContext runs the model checker with ctx cancellation wired into
// the exploration loop.
func checkWithContext(ctx context.Context, topo *graph.Topology, prog sim.Program, maxStates int, protected []graph.PhilID, workers, shards int) (*CheckReport, error) {
	opts := modelcheck.Options{MaxStates: maxStates, Protected: protected, Workers: workers, Shards: shards}
	if ctx.Done() != nil {
		opts.Interrupt = ctx.Err
	}
	return modelcheck.Check(topo, prog, opts)
}

package dining_test

import (
	"context"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"repro/dining"
	"repro/internal/algo"
	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/trace"
)

// TestNewRejectsMalformedFaults pins the eager-validation contract: every
// malformed fault configuration is a construction error of dining.New, not a
// surprise during a run hours later.
func TestNewRejectsMalformedFaults(t *testing.T) {
	t.Parallel()
	cases := []struct {
		name string
		opts []dining.Option
		want string // substring of the error
	}{
		{"unknown model", []dining.Option{dining.WithFaults("meteor-strike")}, `unknown fault model "meteor-strike"`},
		{"negative rate", []dining.Option{dining.WithFaults("crash-rejoin", -0.1)}, "want a probability"},
		{"rate above one", []dining.Option{dining.WithFaults("freeze", 1.5)}, "want a probability"},
		{"too many rates", []dining.Option{dining.WithFaults("freeze", 0.1, 0.2)}, "at most 1 rate"},
		{"bad spec rate", []dining.Option{dining.WithFaults("lossy-grants:zero")}, "bad rate"},
		{"negative target", []dining.Option{dining.WithFaults("freeze"), dining.WithFaultTargets(-1)}, "negative philosopher"},
		{"duplicate target", []dining.Option{dining.WithFaults("freeze"), dining.WithFaultTargets(1, 1)}, "twice"},
		{"unknown target", []dining.Option{dining.WithFaults("freeze"), dining.WithFaultTargets(99)}, "unknown philosopher 99"},
		{"targets without model", []dining.Option{dining.WithFaultTargets(0)}, "require WithFaults"},
		{"rates without model", []dining.Option{dining.WithFaults("", 0.5)}, "require WithFaults"},
	}
	for _, c := range cases {
		_, err := dining.New(dining.Ring(5), dining.GDP1, c.opts...)
		if err == nil {
			t.Errorf("%s: dining.New accepted the malformed fault configuration", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error = %q, want it to contain %q", c.name, err, c.want)
		}
	}
}

// TestNilFaultEquivalenceGrid pins the zero-cost promise of the fault layer
// across a topology × algorithm grid: an engine with no fault model and an
// engine wrapped in a zero-rate fault model produce byte-identical Check
// verdicts (the wrapper passes every outcome set through untouched, and the
// crashed bit never sets, so the explored key space is the same) and
// bit-identical trial results.
func TestNilFaultEquivalenceGrid(t *testing.T) {
	t.Parallel()
	topologies := []*dining.Topology{dining.Ring(3), dining.Theorem2Minimal()}
	algorithms := []string{dining.LR1, dining.LR2, dining.GDP1, dining.GDP2}
	for _, topo := range topologies {
		for _, alg := range algorithms {
			plain, err := dining.New(topo, alg, dining.WithSeed(7), dining.WithMaxSteps(4_000))
			if err != nil {
				t.Fatal(err)
			}
			zero, err := dining.New(topo, alg, dining.WithSeed(7), dining.WithMaxSteps(4_000),
				dining.WithFaults("crash-rejoin", 0))
			if err != nil {
				t.Fatal(err)
			}

			ctx := context.Background()
			want, err := plain.CheckAll(ctx)
			if err != nil {
				t.Fatal(err)
			}
			got, err := zero.CheckAll(ctx)
			if err != nil {
				t.Fatal(err)
			}
			// The only permitted difference is the fault annotation itself:
			// the Faults field, the " under <spec>" detail suffix and the
			// counterexample's recorded spec.
			for i := range got {
				if got[i].Faults != "crash-rejoin:0,0.5" {
					t.Errorf("%s/%s: zero-rate result reports faults %q", topo.Name(), alg, got[i].Faults)
				}
				got[i].Faults = ""
				got[i].Detail = strings.TrimSuffix(got[i].Detail, " under crash-rejoin:0,0.5")
				if got[i].Counterexample != nil {
					got[i].Counterexample.Faults = ""
				}
			}
			wantJSON, err := json.Marshal(want)
			if err != nil {
				t.Fatal(err)
			}
			gotJSON, err := json.Marshal(got)
			if err != nil {
				t.Fatal(err)
			}
			if string(wantJSON) != string(gotJSON) {
				t.Errorf("%s/%s: zero-rate fault verdicts differ from the fault-free engine:\nwant %s\ngot  %s",
					topo.Name(), alg, wantJSON, gotJSON)
			}

			wantTrials, err := plain.Repeat(ctx, 4)
			if err != nil {
				t.Fatal(err)
			}
			gotTrials, err := zero.Repeat(ctx, 4)
			if err != nil {
				t.Fatal(err)
			}
			for i := range wantTrials {
				if wantTrials[i].TotalEats != gotTrials[i].TotalEats || wantTrials[i].Steps != gotTrials[i].Steps ||
					!reflect.DeepEqual(wantTrials[i].EatsBy, gotTrials[i].EatsBy) {
					t.Errorf("%s/%s: zero-rate trial %d differs from the fault-free engine", topo.Name(), alg, i)
				}
			}
		}
	}
}

// TestDelayedGrantsNilFaultEquivalenceGrid is the delayed-grants instance of
// the zero-cost promise: a zero-rate delayed-grants engine never materializes
// the pending-grant array, so its explored key space, Check verdicts and
// trial results are byte-identical to the fault-free engine's.
func TestDelayedGrantsNilFaultEquivalenceGrid(t *testing.T) {
	t.Parallel()
	topologies := []*dining.Topology{dining.Ring(3), dining.Theorem2Minimal()}
	algorithms := []string{dining.LR1, dining.LR2, dining.GDP1, dining.GDP2}
	for _, topo := range topologies {
		for _, alg := range algorithms {
			plain, err := dining.New(topo, alg, dining.WithSeed(7), dining.WithMaxSteps(4_000))
			if err != nil {
				t.Fatal(err)
			}
			zero, err := dining.New(topo, alg, dining.WithSeed(7), dining.WithMaxSteps(4_000),
				dining.WithFaults("delayed-grants", 0, 3))
			if err != nil {
				t.Fatal(err)
			}

			ctx := context.Background()
			want, err := plain.CheckAll(ctx)
			if err != nil {
				t.Fatal(err)
			}
			got, err := zero.CheckAll(ctx)
			if err != nil {
				t.Fatal(err)
			}
			for i := range got {
				if got[i].Faults != "delayed-grants:0,3" {
					t.Errorf("%s/%s: zero-rate result reports faults %q", topo.Name(), alg, got[i].Faults)
				}
				got[i].Faults = ""
				got[i].Detail = strings.TrimSuffix(got[i].Detail, " under delayed-grants:0,3")
				if got[i].Counterexample != nil {
					got[i].Counterexample.Faults = ""
				}
			}
			wantJSON, err := json.Marshal(want)
			if err != nil {
				t.Fatal(err)
			}
			gotJSON, err := json.Marshal(got)
			if err != nil {
				t.Fatal(err)
			}
			if string(wantJSON) != string(gotJSON) {
				t.Errorf("%s/%s: zero-rate delayed-grants verdicts differ from the fault-free engine:\nwant %s\ngot  %s",
					topo.Name(), alg, wantJSON, gotJSON)
			}

			wantTrials, err := plain.Repeat(ctx, 4)
			if err != nil {
				t.Fatal(err)
			}
			gotTrials, err := zero.Repeat(ctx, 4)
			if err != nil {
				t.Fatal(err)
			}
			for i := range wantTrials {
				if wantTrials[i].TotalEats != gotTrials[i].TotalEats || wantTrials[i].Steps != gotTrials[i].Steps ||
					!reflect.DeepEqual(wantTrials[i].EatsBy, gotTrials[i].EatsBy) {
					t.Errorf("%s/%s: zero-rate delayed-grants trial %d differs from the fault-free engine", topo.Name(), alg, i)
				}
			}
		}
	}
}

// TestFaultTrialsDeterministicAcrossWorkers pins fault-injection determinism
// for Monte-Carlo trials: the same (seed, fault spec) produces bit-identical
// per-trial results at every worker count.
func TestFaultTrialsDeterministicAcrossWorkers(t *testing.T) {
	t.Parallel()
	const trials = 12
	collect := func(workers int) []*dining.SimResult {
		eng, err := dining.New(dining.Ring(5), dining.GDP2,
			dining.WithSeed(42),
			dining.WithMaxSteps(6_000),
			dining.WithWorkers(workers),
			dining.WithFaults("crash-rejoin", 0.05, 0.5))
		if err != nil {
			t.Fatal(err)
		}
		res, err := eng.Repeat(context.Background(), trials)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	want := collect(1)
	for _, workers := range []int{3, 8} {
		got := collect(workers)
		for i := range want {
			if want[i].TotalEats != got[i].TotalEats || want[i].Steps != got[i].Steps ||
				want[i].FirstEatStep != got[i].FirstEatStep ||
				!reflect.DeepEqual(want[i].EatsBy, got[i].EatsBy) {
				t.Errorf("workers=%d: faulty trial %d differs from the sequential run", workers, i)
			}
		}
	}
}

// TestFaultEventSequenceDeterministic pins the stronger per-run contract:
// two engines with the same (seed, fault spec) record the same event
// sequence, fault events included — and fault events actually occur.
func TestFaultEventSequenceDeterministic(t *testing.T) {
	t.Parallel()
	record := func() []sim.Event {
		log := trace.NewLog(0)
		eng, err := dining.New(dining.Ring(5), dining.LR1,
			dining.WithSeed(11),
			dining.WithMaxSteps(3_000),
			dining.WithWorkers(1),
			dining.WithRecorder(log),
			dining.WithFaults("crash-rejoin", 0.1, 0.5))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := eng.Run(context.Background()); err != nil {
			t.Fatal(err)
		}
		return log.Events()
	}
	first := record()
	second := record()
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("the same (seed, fault spec) produced different event sequences: %d vs %d events", len(first), len(second))
	}
	faultEvents := 0
	for _, e := range first {
		switch e.Kind {
		case sim.EventCrashed, sim.EventRejoined, sim.EventStillCrashed, sim.EventGrantLost:
			faultEvents++
		}
	}
	if faultEvents == 0 {
		t.Error("a 3000-step run at crash rate 0.1 recorded no fault events")
	}
}

// TestFaultCheckDeterministicAcrossWorkersAndShards pins exhaustive-check
// determinism on the perturbed state space: verdicts, details and
// counterexample traces are byte-identical for every (workers, shards)
// configuration.
func TestFaultCheckDeterministicAcrossWorkersAndShards(t *testing.T) {
	t.Parallel()
	run := func(workers, shards int) string {
		eng, err := dining.New(dining.Theorem2Minimal(), dining.LR2,
			dining.WithWorkers(workers),
			dining.WithShards(shards),
			dining.WithFaults("crash-rejoin", 0.1, 0.5))
		if err != nil {
			t.Fatal(err)
		}
		res, err := eng.CheckAll(context.Background(),
			dining.Progress, dining.ProgressUnderFaults, dining.StarvationTrap)
		if err != nil {
			t.Fatal(err)
		}
		out, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		return string(out)
	}
	want := run(1, 1)
	for _, c := range [][2]int{{2, 4}, {4, 1}, {8, 8}} {
		if got := run(c[0], c[1]); got != want {
			t.Errorf("workers=%d shards=%d: faulty check results differ from the sequential run:\nwant %s\ngot  %s",
				c[0], c[1], want, got)
		}
	}
}

// TestProgressUnderFaultsCounterexampleReplay drives the headline recoverable
// check end to end: under a permanent-crash fault every philosopher can
// freeze, the all-crashed region is a reachable dead end, so the exhaustive
// progress-under-faults check fails — with a counterexample whose path must
// contain the "fault: crash" steps that kill the system — and
// Engine.ReplayTrace verifies the trace step by step, while an engine with
// different faults refuses to replay it.
func TestProgressUnderFaultsCounterexampleReplay(t *testing.T) {
	t.Parallel()
	eng, err := dining.New(dining.Ring(3), dining.GDP1, dining.WithFaults("freeze", 0.5))
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.CheckAll(context.Background(), dining.ProgressUnderFaults)
	if err != nil {
		t.Fatal(err)
	}
	r := res[0]
	if r.Passed {
		t.Fatal("progress-under-faults passed although every philosopher can freeze permanently")
	}
	if r.Faults != "freeze:0.5" {
		t.Errorf("result reports faults %q, want %q", r.Faults, "freeze:0.5")
	}
	if r.Counterexample == nil {
		t.Fatal("failing progress-under-faults produced no counterexample")
	}
	if r.Counterexample.Faults != "freeze:0.5" {
		t.Errorf("counterexample records faults %q, want %q", r.Counterexample.Faults, "freeze:0.5")
	}
	faultSteps := 0
	for _, step := range r.Counterexample.Steps {
		if strings.HasPrefix(step.Label, "fault: ") {
			faultSteps++
		}
	}
	if faultSteps == 0 {
		t.Error("the counterexample contains no fault-labelled steps")
	}
	if err := eng.ReplayTrace(r.Counterexample); err != nil {
		t.Errorf("ReplayTrace rejected the engine's own counterexample: %v", err)
	}

	// A fault-free engine must refuse the trace instead of silently replaying
	// it against the unperturbed transition system.
	plain, err := dining.New(dining.Ring(3), dining.GDP1)
	if err != nil {
		t.Fatal(err)
	}
	err = plain.ReplayTrace(r.Counterexample)
	if err == nil {
		t.Fatal("a fault-free engine replayed a fault counterexample")
	}
	if !strings.Contains(err.Error(), "recorded under faults") {
		t.Errorf("replay error = %q, want it to mention the fault mismatch", err)
	}
}

// TestDelayedGrantsCounterexampleReplay drives the in-flight fault model end
// to end on the exhaustive side: the perturbed state space genuinely grows
// (in-flight grants are new states, not relabelled old ones), the recoverable
// lockout check fails with a counterexample recorded under the spec, and a
// trace whose path goes through injection, delay and delivery branches —
// built on the identical wrapped program — carries the "fault: grant
// delayed"/"fault: grant delivered" labels and replays step by step on the
// engine, while a fault-free engine refuses it.
func TestDelayedGrantsCounterexampleReplay(t *testing.T) {
	t.Parallel()
	const spec = "delayed-grants:0.5,1"
	eng, err := dining.New(dining.Ring(3), dining.LR1, dining.WithFaults(spec))
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.CheckAll(context.Background(), dining.LockoutFreedomUnderFaults)
	if err != nil {
		t.Fatal(err)
	}
	r := res[0]
	if r.Passed {
		t.Fatal("lockout-freedom-under-faults passed although the adversary can stall grants forever")
	}
	if r.Faults != spec {
		t.Errorf("result reports faults %q, want %q", r.Faults, spec)
	}
	if r.Counterexample == nil {
		t.Fatal("failing lockout-freedom-under-faults produced no counterexample")
	}
	if r.Counterexample.Faults != spec {
		t.Errorf("counterexample records faults %q, want %q", r.Counterexample.Faults, spec)
	}
	if err := eng.ReplayTrace(r.Counterexample); err != nil {
		t.Errorf("ReplayTrace rejected the engine's own counterexample: %v", err)
	}

	// Honest state growth: the in-flight grants must enlarge the explored
	// space over the fault-free exploration of the same system.
	plain, err := dining.New(dining.Ring(3), dining.LR1)
	if err != nil {
		t.Fatal(err)
	}
	base, err := plain.CheckAll(context.Background(), dining.Progress)
	if err != nil {
		t.Fatal(err)
	}
	if r.States <= base[0].States {
		t.Errorf("delayed-grants explored %d states, fault-free %d — in-flight grants added no states", r.States, base[0].States)
	}

	// A path through the flight branches: advance P0 (first outcomes) until
	// its take step offers the injection branch, inject, take the delay
	// branch, then the forced delivery. Build fills labels from the executed
	// outcomes, so the trace must carry the delayed/delivered pair — and it
	// must replay on the engine, whose program injects the same spec.
	topo := dining.Ring(3)
	prog, err := algo.New(dining.LR1, algo.Options{})
	if err != nil {
		t.Fatal(err)
	}
	model, err := fault.NewFromSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	wrapped := model.Wrap(topo, prog)
	w := sim.NewWorld(topo)
	wrapped.Init(w)
	var steps []trace.Step
	var buf []sim.Outcome
	for i := 0; i < 8; i++ {
		buf = wrapped.Outcomes(w, 0, buf[:0])
		if buf[len(buf)-1].Label == "fault: grant delayed" {
			break
		}
		steps = append(steps, trace.Step{Phil: 0, Outcome: 0})
		buf[0].Do(w, 0)
		w.Step++
	}
	flight := len(buf) - 1
	buf[flight].Do(w, 0)
	w.Step++
	steps = append(steps,
		trace.Step{Phil: 0, Outcome: flight}, // grant enters flight (counter 1)
		trace.Step{Phil: 0, Outcome: 1},      // delay branch: counter 1 -> 0
		trace.Step{Phil: 0, Outcome: 0})      // forced delivery
	tr, err := trace.Build(topo, wrapped, nil, dining.LockoutFreedomUnderFaults, steps)
	if err != nil {
		t.Fatal(err)
	}
	var delayed, delivered int
	for _, s := range tr.Steps {
		switch s.Label {
		case "fault: grant delayed":
			delayed++
		case "fault: grant delivered":
			delivered++
		}
	}
	if delayed < 2 || delivered != 1 {
		t.Fatalf("flight trace has %d delayed / %d delivered steps, want >=2 / 1:\n%s", delayed, delivered, tr)
	}
	if err := eng.ReplayTrace(tr); err != nil {
		t.Errorf("ReplayTrace rejected the flight trace: %v", err)
	}
	if err := plain.ReplayTrace(tr); err == nil {
		t.Error("a fault-free engine replayed a delayed-grants trace")
	} else if !strings.Contains(err.Error(), "recorded under faults") {
		t.Errorf("replay error = %q, want it to mention the fault mismatch", err)
	}
}

// TestRecoverablePropertiesRequireFaultModel pins the infrastructure error:
// asking for the under-faults variants on a fault-free engine is a usage
// error, not a trivially passing check.
func TestRecoverablePropertiesRequireFaultModel(t *testing.T) {
	t.Parallel()
	eng, err := dining.New(dining.Ring(3), dining.GDP1)
	if err != nil {
		t.Fatal(err)
	}
	for _, prop := range []string{dining.ProgressUnderFaults, dining.LockoutFreedomUnderFaults} {
		_, err := eng.CheckAll(context.Background(), prop)
		if err == nil {
			t.Errorf("%s succeeded on an engine without a fault model", prop)
			continue
		}
		if !strings.Contains(err.Error(), "requires a fault model") {
			t.Errorf("%s: error = %q, want it to mention the missing fault model", prop, err)
		}
	}
}

package dining_test

import (
	"context"
	"testing"
	"time"

	"repro/dining"
)

func TestSimulateQuickstart(t *testing.T) {
	t.Parallel()
	res, err := dining.Simulate(dining.Ring(5), dining.GDP2, 1, dining.SimOptions{MaxSteps: 20_000})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalEats == 0 {
		t.Error("no meals in the quickstart simulation")
	}
}

func TestFacadeExposesAlgorithmsAndTopologies(t *testing.T) {
	t.Parallel()
	if len(dining.Algorithms()) < 4 {
		t.Error("expected at least the four paper algorithms")
	}
	if dining.Figure1A().NumPhilosophers() != 6 {
		t.Error("Figure1A should have 6 philosophers")
	}
	b := dining.NewTopologyBuilder("custom", 3)
	b.AddPhilosopher(0, 1)
	b.AddPhilosopher(1, 2)
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if topo.NumPhilosophers() != 2 {
		t.Error("custom topology wrong")
	}
}

func TestFacadeAdversarialSystem(t *testing.T) {
	t.Parallel()
	sys := dining.System{
		Topology:  dining.DoubledPolygon(3),
		Algorithm: dining.GDP1,
		Scheduler: dining.Adversary,
		Seed:      7,
	}
	res, err := sys.Simulate(dining.SimOptions{MaxSteps: 30_000})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalEats == 0 {
		t.Error("GDP1 should make progress even under the adversary (Theorem 3)")
	}
}

func TestFacadeModelCheck(t *testing.T) {
	t.Parallel()
	rep, err := dining.ModelCheck(dining.Theta(1, 1, 1), dining.LR2)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.FairAdversaryWins() {
		t.Error("expected the Theorem 2 verdict for LR2 on the theta graph")
	}
}

func TestFacadeRunConcurrent(t *testing.T) {
	t.Parallel()
	metrics, err := dining.RunConcurrent(context.Background(), dining.Ring(5), dining.GDP2, 3, 5*time.Second, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(metrics.Starved) != 0 {
		t.Errorf("starved: %v", metrics.Starved)
	}
}

package dining_test

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/dining"
)

func TestSimulateQuickstart(t *testing.T) {
	t.Parallel()
	res, err := dining.Simulate(context.Background(), dining.Ring(5), dining.GDP2,
		dining.WithSeed(1), dining.WithMaxSteps(20_000))
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalEats == 0 {
		t.Error("no meals in the quickstart simulation")
	}
}

func TestFacadeExposesAlgorithmsAndTopologies(t *testing.T) {
	t.Parallel()
	if len(dining.Algorithms()) < 9 {
		t.Errorf("expected the nine built-in algorithms, got %v", dining.Algorithms())
	}
	if len(dining.Schedulers()) < 6 {
		t.Errorf("expected the six built-in schedulers, got %v", dining.Schedulers())
	}
	if len(dining.Topologies()) < 10 {
		t.Errorf("expected the builder topologies to be registered, got %v", dining.Topologies())
	}
	if dining.Figure1A().NumPhilosophers() != 6 {
		t.Error("Figure1A should have 6 philosophers")
	}
	b := dining.NewTopologyBuilder("custom", 3)
	b.AddPhilosopher(0, 1)
	b.AddPhilosopher(1, 2)
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if topo.NumPhilosophers() != 2 {
		t.Error("custom topology wrong")
	}
}

func TestEngineValidation(t *testing.T) {
	t.Parallel()
	if _, err := dining.New(nil, dining.GDP1); err == nil {
		t.Error("New accepted a nil topology")
	}
	if _, err := dining.New(dining.Ring(3), "nope"); err == nil {
		t.Error("New accepted an unknown algorithm")
	} else if !strings.Contains(err.Error(), "registered:") {
		t.Errorf("unknown-algorithm error should list the registered options, got: %v", err)
	}
	if _, err := dining.New(dining.Ring(3), dining.GDP1, dining.WithScheduler("warp")); err == nil {
		t.Error("New accepted an unknown scheduler")
	} else if !strings.Contains(err.Error(), "registered:") {
		t.Errorf("unknown-scheduler error should list the registered options, got: %v", err)
	}
	if _, err := dining.NewTopology("moebius", 3); err == nil {
		t.Error("NewTopology accepted an unknown name")
	} else if !strings.Contains(err.Error(), "registered:") {
		t.Errorf("unknown-topology error should list the registered options, got: %v", err)
	}
}

func TestEngineAdversarialRun(t *testing.T) {
	t.Parallel()
	eng, err := dining.New(dining.DoubledPolygon(3), dining.GDP1,
		dining.WithScheduler(dining.Adversary),
		dining.WithSeed(7),
		dining.WithMaxSteps(30_000))
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalEats == 0 {
		t.Error("GDP1 should make progress even under the adversary (Theorem 3)")
	}
}

func TestFacadeModelCheck(t *testing.T) {
	t.Parallel()
	rep, err := dining.ModelCheck(context.Background(), dining.Theta(1, 1, 1), dining.LR2)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.FairAdversaryWins() {
		t.Error("expected the Theorem 2 verdict for LR2 on the theta graph")
	}
}

func TestFacadeRunConcurrent(t *testing.T) {
	t.Parallel()
	metrics, err := dining.RunConcurrent(context.Background(), dining.Ring(5), dining.GDP2, 3, 5*time.Second, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(metrics.Starved) != 0 {
		t.Errorf("starved: %v", metrics.Starved)
	}
}

func TestEngineContextCancellation(t *testing.T) {
	t.Parallel()
	eng, err := dining.New(dining.Ring(5), dining.GDP2, dining.WithMaxSteps(1_000_000_000))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.Run(ctx); err == nil {
		t.Error("Run ignored a cancelled context")
	}
	if _, err := eng.ModelCheck(ctx); err == nil {
		t.Error("ModelCheck ignored a cancelled context")
	}
	sawErr := false
	for _, err := range eng.Trials(ctx, 8) {
		if err != nil {
			sawErr = true
		}
	}
	if !sawErr {
		t.Error("Trials stream ignored a cancelled context")
	}

	// A context cancelled mid-run must stop a long simulation promptly.
	ctx2, cancel2 := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel2()
	start := time.Now()
	if _, err := eng.Run(ctx2); err == nil {
		t.Error("Run with a 1e9-step budget should have been cancelled")
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("cancellation took %s", elapsed)
	}
}

package dining_test

import (
	"context"
	"testing"

	"repro/dining"
)

// TestFingerprintStableAcrossProcesses pins the exact fingerprint of a known
// configuration. The value is the contract: it must be reproducible in every
// process on every platform, because cmd/dpserve uses it as the cache key
// for explored state spaces. If this test fails, the canonical encoding
// changed — bump fingerprintVersion and update the pin deliberately.
func TestFingerprintStableAcrossProcesses(t *testing.T) {
	t.Parallel()
	eng := mustEngine(t, dining.Ring(3), dining.LR1)
	const want = "a84bfa3b98601de34710fa3e2a805656"
	if got := eng.Fingerprint(); got != want {
		t.Errorf("Fingerprint() = %q, want the cross-process pin %q", got, want)
	}
}

// TestFingerprintEqualForEqualConfigs checks that two independently
// constructed engines with the same configuration agree.
func TestFingerprintEqualForEqualConfigs(t *testing.T) {
	t.Parallel()
	opts := []dining.Option{
		dining.WithScheduler(dining.Adversary),
		dining.WithSeed(42),
		dining.WithMaxStates(5000),
		dining.WithShards(4),
		dining.WithProtected(0, 2),
		dining.WithFaults("crash-rejoin", 0.1, 0.5),
	}
	a := mustEngine(t, dining.Theorem2Minimal(), dining.GDP2, opts...)
	b := mustEngine(t, dining.Theorem2Minimal(), dining.GDP2, opts...)
	if a.Fingerprint() != b.Fingerprint() {
		t.Errorf("equal configs disagree: %s vs %s", a.Fingerprint(), b.Fingerprint())
	}
}

// TestFingerprintDistinguishesConfigs builds one variant per configuration
// axis and checks that every fingerprint is unique — in particular the
// distinct-fault-spec and distinct-shard cases the serve cache relies on.
func TestFingerprintDistinguishesConfigs(t *testing.T) {
	t.Parallel()
	base := func(extra ...dining.Option) *dining.Engine {
		return mustEngine(t, dining.Ring(3), dining.LR1, extra...)
	}
	variants := map[string]*dining.Engine{
		"base":            base(),
		"algorithm":       mustEngine(t, dining.Ring(3), dining.LR2),
		"topology-size":   mustEngine(t, dining.Ring(4), dining.LR1),
		"topology-kind":   mustEngine(t, dining.Theorem2Minimal(), dining.LR1),
		"scheduler":       base(dining.WithScheduler(dining.Adversary)),
		"seed":            base(dining.WithSeed(7)),
		"max-steps":       base(dining.WithMaxSteps(123)),
		"max-states":      base(dining.WithMaxStates(99)),
		"trials":          base(dining.WithTrials(17)),
		"fairness-window": base(dining.WithFairnessWindow(64)),
		"protected":       base(dining.WithProtected(1)),
		"shards":          base(dining.WithShards(8)),
		"algo-m":          base(dining.WithAlgorithmOptions(dining.AlgorithmOptions{M: 9})),
		"fault-crash":     base(dining.WithFaults("crash-rejoin", 0.1)),
		"fault-freeze":    base(dining.WithFaults("freeze", 0.1)),
		"fault-rate":      base(dining.WithFaults("crash-rejoin", 0.2)),
		"fault-target":    base(dining.WithFaults("crash-rejoin", 0.1), dining.WithFaultTargets(1)),
		"symmetry":        base(dining.WithSymmetry()),
	}
	seen := make(map[string]string, len(variants))
	for name, eng := range variants {
		fp := eng.Fingerprint()
		if prev, dup := seen[fp]; dup {
			t.Errorf("variants %q and %q share fingerprint %s", name, prev, fp)
		}
		seen[fp] = name
	}
}

// TestFingerprintIgnoresWorkers pins the deliberate exclusion: the worker
// count is a resource knob with bit-identical results for every value, so it
// must not split the cache.
func TestFingerprintIgnoresWorkers(t *testing.T) {
	t.Parallel()
	a := mustEngine(t, dining.Ring(3), dining.GDP1, dining.WithWorkers(1))
	b := mustEngine(t, dining.Ring(3), dining.GDP1, dining.WithWorkers(8))
	if a.Fingerprint() != b.Fingerprint() {
		t.Errorf("workers changed the fingerprint: %s vs %s", a.Fingerprint(), b.Fingerprint())
	}
}

// TestExploreMatchesCheck checks that the exported Explore produces the same
// space Engine.Check analyses: state and transition counts match the counts
// echoed in PropertyResult, and a space explored once can be handed to a
// property through PropertyInput.Space.
func TestExploreMatchesCheck(t *testing.T) {
	t.Parallel()
	eng := mustEngine(t, dining.Theorem2Minimal(), dining.LR2)
	ss, err := eng.Explore(nil)
	if err != nil {
		t.Fatal(err)
	}
	results, err := eng.CheckAll(nil, dining.StarvationTrap)
	if err != nil {
		t.Fatal(err)
	}
	if results[0].States != ss.NumStates() || results[0].Transitions != ss.NumTransitions() {
		t.Errorf("Explore space (%d states, %d transitions) disagrees with Check (%d, %d)",
			ss.NumStates(), ss.NumTransitions(), results[0].States, results[0].Transitions)
	}
	prop, err := dining.LookupProperty(dining.StarvationTrap)
	if err != nil {
		t.Fatal(err)
	}
	res, err := prop.Check(context.Background(), dining.PropertyInput{Engine: eng, Space: ss})
	if err != nil {
		t.Fatal(err)
	}
	if res.Passed != results[0].Passed || res.Detail != results[0].Detail {
		t.Errorf("check on cached space = (%v, %q), want (%v, %q)",
			res.Passed, res.Detail, results[0].Passed, results[0].Detail)
	}
}

// Package repro is a production-quality Go reproduction of "On the
// generalized dining philosophers problem" by Oltea Mihaela Herescu and
// Catuscia Palamidessi (PODC 2001): the four algorithms of the paper (LR1,
// LR2, GDP1, GDP2), generalized fork/philosopher topologies, fair and
// adversarial schedulers, a discrete-event simulator, a concurrent goroutine
// runtime, an exhaustive model checker for the paper's theorems, and the
// experiment harness that regenerates every reproduced artifact.
//
// The public entry point for library users is package dining — a v3
// streaming experiment engine built on five open registries (topologies,
// algorithms, schedulers, properties, fault models), functional-options
// construction (dining.New(topo, algo, dining.WithScheduler(...), ...)) and
// incremental result streams (Engine.Trials yields per-trial results as
// workers finish; Sweep crosses topology × algorithm × scheduler × fault
// grids into a streamed scenario matrix). New algorithms, adversaries,
// topologies, properties and fault models plug in with
// dining.RegisterAlgorithm / RegisterScheduler / RegisterTopology /
// RegisterProperty / RegisterFault without touching the core packages.
//
// The property layer is the v3 centerpiece: the paper's claims — deadlock-
// freedom, progress, lockout-freedom, starvation traps (Theorems 1–4) — are
// first-class named checks. Engine.Check(ctx, props...) explores the state
// space once (a parallel breadth-first search whose result is byte-identical
// for every worker count) and streams one PropertyResult per property; every
// exhaustive failure carries a replayable counterexample Trace — the exact
// scheduler-choice path from the initial state into the violating region,
// rendered in the paper's arrow notation and verifiable with
// Engine.ReplayTrace. Statistical built-ins (statistical-progress,
// statistical-lockout) cover instances too large to explore.
//
// The fault layer (internal/fault) perturbs the transition system itself:
// a registered fault model — crash-rejoin (a philosopher crashes, drops its
// forks and later re-enters thinking), freeze (a permanent crash),
// lossy-grants (a hungry philosopher's acquire step probabilistically
// no-ops) or delayed-grants (with rate p an acquire step instead puts the
// grant in flight with a remaining-delay counter of at most k; each later
// scheduled step of the would-be holder branches between delivering the
// fork and decrementing the counter, with delivery forced at zero) — wraps
// the algorithm's Program, scaling the base outcomes and appending
// "fault: "-labelled branches into the same reused outcome buffer. Because
// the wrapping happens at the Program seam, the Monte-Carlo simulator and
// the exhaustive model checker see the same perturbed MDP:
// dining.WithFaults("crash-rejoin:0.05,0.5") makes every Run, Trials and
// Check observe identical fault semantics, the recoverable properties
// (progress-under-faults, lockout-freedom-under-faults) check exhaustively
// how far the paper's guarantees survive the perturbation, and failing
// checks produce fault-labelled counterexample traces that Engine.ReplayTrace
// verifies against the same fault spec. Fault state rides in
// previously-always-absent parts of the canonical state key — a crashed
// philosopher occupies one always-zero flag bit, in-flight grants a
// pending-slot suffix appended only when a grant has ever entered flight —
// so a fault-free engine's exploration is byte-identical to one without the
// fault layer, while delayed-grants honestly grows the state space with the
// in-flight message state.
//
// The concurrent goroutine runtime (internal/runtime) injects the
// crash-family models too: under dining.WithFaults("crash-rejoin:...") or
// ("freeze:..."), RunConcurrent wraps each philosopher goroutine with a
// fault driver that decides crash and rejoin at think→try cycle boundaries,
// drawing every decision from dedicated per-seed internal/prng streams —
// the i-th fault decision of philosopher p is a pure function of (seed, p,
// i), and the algorithm's own random streams are untouched, so fault-free
// runs are bit-identical with and without the fault layer compiled in. The
// message-level models (lossy-grants, delayed-grants) have no goroutine
// equivalent and are rejected with a descriptive error.
//
// # Architecture
//
// The verification stack is layered; each layer only sees the one below:
//
//	sharded store  →  exploration  →  graphalg analyses  →  properties  →  faults  →  serve / CLI
//
// At the bottom, internal/modelcheck stores the explored MDP in 2^k
// independently-owned shards (dining.WithShards, -shards; 0 = match the
// worker count). Each shard holds its own intern table, key arena and flat
// transition arrays; a state lives in the shard selected by a deterministic
// FNV-1a hash of its canonical key, addressed by the packed id
// shard<<25 | local. The level-synchronous parallel BFS writes every shard
// from exactly one goroutine per phase — expansion and frontier assembly are
// parallel over chunks, interning and row-writing are parallel over shards —
// so there are no locks and no sequential per-level merge. On top of the
// shards sits the dense view: states renumbered in breadth-first discovery
// order, which is provably the same numbering for every (workers, shards)
// combination, so state counts, verdicts, witnesses and counterexample
// traces never depend on how the exploration was parallelized.
//
// The analyses — reachability, deadlock detection, the safety game and
// maximal-end-component computation behind the starvation-trap theorems,
// SCCs, shortest counterexample paths — live in internal/graphalg behind a
// read-only StateView interface (NumStates/NumActions/Succs/Probs/Bad), with
// no dependency on the store layout. Between the view and the analyses sits
// the predecessor-index/worklist layer: a graphalg.PredecessorIndex is the
// CSR form of the explored graph in both directions (flat forward successor
// rows, reverse (pred, action) edge occurrences, per-(state, action)
// successor counts), built once in O(E) — in parallel over state chunks —
// and cached on the StateSpace, so every property of one Engine.Check run
// shares it. Over that index every fixpoint analysis is a worklist
// algorithm: dead regions are a reverse BFS, the safety game is a
// counter-decrement attractor (remove a state, decrement exactly its
// predecessors' counters), the maximal-end-component loop re-checks only the
// states whose edges were removed, and SCCs are an iterative Tarjan that
// enumerates edges in place. Analyses draw their mutable state from a
// scratch pool on the index, so they run concurrently with zero per-state
// allocations: lockout-freedom fans one trap analysis per protected
// philosopher across the engine's workers over the one shared index. The
// pre-worklist whole-state-space sweeps are retained verbatim in
// internal/graphalg/graphalgtest as reference oracles; an equivalence grid
// pins that verdicts, witness keys and counterexample traces are
// byte-identical across every topology × algorithm cell, truncated runs
// included. internal/trace turns analysis witnesses into replayable
// counterexample traces, the dining property layer packages the analyses as
// registered properties, and the CLI tools plumb -workers/-shards (and
// -cpuprofile/-memprofile on dpcheck and dpbench) down the stack.
//
// At the top of the stack sits the serve layer (internal/serve, served by
// cmd/dpserve): a long-lived HTTP service exposing the engine's streaming
// surfaces — property checking, Monte-Carlo trials and sweep grids — as
// newline-delimited JSON. Its core is a fingerprint-keyed cache of explored
// state spaces: the cache key is dining.Engine.Fingerprint(), a versioned
// hash of the canonical engine configuration (topology structure, algorithm
// and options, scheduler, seed, bounds, protected set, shard count, fault
// spec — but not the worker count, whose results are pinned bit-identical),
// so repeated and concurrent requests about the same configuration share
// one exploration and hot verdicts are answered from the retained space and
// its cached predecessor index. Every response line is accountable: request
// id, the echoed engine configuration, the cache disposition and wall-clock
// timing ride on each NDJSON event, and the wire format is golden-pinned.
// See the internal/serve package documentation for the endpoints, schema
// and fingerprint rules.
//
// The command-line tools live under cmd (dpsim, dpbench, dpcheck,
// dpadversary, dpserve; all speak JSON with -json, dpcheck/dpadversary
// select properties with -props, and the engine tools inject fault models
// with -faults) and share the internal/cli config layer, so registered
// extensions appear in every tool's flags and error messages. The
// reproduction experiments are described in DESIGN.md and their results in
// EXPERIMENTS.md. The benchmark suite in bench_test.go has one benchmark per
// reproduced table or figure of the paper.
//
// # Enforced invariants
//
// The repo-wide invariants that the determinism and allocation guarantees
// above rest on are machine-checked by dplint (cmd/dplint, built on the
// stdlib-only analyzer framework in internal/analysis):
//
//	go run ./cmd/dplint ./...
//
// exits non-zero with file:line diagnostics when any of its five analyzers
// finds a violation:
//
//   - maporder: a map range loop must not feed iteration order into a
//     returned or accumulated value (append, +=, last-writer-wins) unless
//     the result is re-canonicalized — Go's randomized map order would make
//     results run-dependent.
//   - detsource: the deterministic core (internal/sim, algo, sched,
//     modelcheck, graphalg, fault, verify) must not read wall-clock time
//     (time.Now/Since), the process environment (os.Getenv/LookupEnv) or
//     the globally seeded math/rand; randomness flows only through
//     internal/prng sources threaded from the per-trial seed. The gate also
//     applies file-by-file where a deterministic core shares a package with
//     clock-reading code: internal/serve's cache and fingerprint files are
//     held to the rules while its handlers may stamp response timing, and
//     internal/runtime's fault driver is gated while the runtime itself
//     keeps its think/eat timers.
//   - hotalloc: no function literals bound to sim.Outcome.Apply (outcome
//     sets are rebuilt every step; closures would allocate per step —
//     programs use static funcs with the Arg field) and no fmt.* formatting
//     on non-error hot paths.
//   - unsafeaudit: package unsafe is confined to an explicit allowlist
//     (the model checker's intern-key arena).
//   - registryname: names registered with the five open registries
//     (topologies, algorithms, schedulers, properties, faults) are
//     canonical lower-kebab-case and unique per registry.
//
// A deliberate exception is suppressed in place with a mandatory reason:
//
//	//dplint:ok <analyzer> <reason>
//
// on (or immediately above) the flagged line. dplint itself checks the
// annotations: a missing reason, an unknown analyzer name, or a suppression
// that no longer suppresses anything is a diagnostic too. CI runs dplint as
// a blocking step of the lint job.
package repro

// Package repro is a production-quality Go reproduction of "On the
// generalized dining philosophers problem" by Oltea Mihaela Herescu and
// Catuscia Palamidessi (PODC 2001): the four algorithms of the paper (LR1,
// LR2, GDP1, GDP2), generalized fork/philosopher topologies, fair and
// adversarial schedulers, a discrete-event simulator, a concurrent goroutine
// runtime, an exhaustive model checker for the paper's theorems, and the
// experiment harness that regenerates every reproduced artifact.
//
// The public entry point for library users is package dining — a v2
// streaming experiment engine built on three open registries (topologies,
// algorithms, schedulers), functional-options construction
// (dining.New(topo, algo, dining.WithScheduler(...), ...)) and incremental
// result streams (Engine.Trials yields per-trial results as workers finish;
// Sweep crosses topology × algorithm × scheduler grids into a streamed
// scenario matrix). New algorithms, adversaries and topologies plug in with
// dining.RegisterAlgorithm / RegisterScheduler / RegisterTopology without
// touching the core packages.
//
// The command-line tools live under cmd (dpsim, dpbench, dpcheck,
// dpadversary; dpsim and dpbench speak JSON with -json) and share the
// internal/cli config layer, so registered extensions appear in every tool's
// flags and error messages. The reproduction experiments are described in
// DESIGN.md and their results in EXPERIMENTS.md. The benchmark suite in
// bench_test.go has one benchmark per reproduced table or figure of the
// paper.
package repro

package repro_test

// The benchmark harness: one benchmark per reproduced artifact of the paper
// (its tables are algorithm listings and its figures are topologies and
// adversary walks, so each benchmark exercises the corresponding
// implementation end to end). Run with:
//
//	go test -bench=. -benchmem
//
// The per-op metric is one complete experiment trial (a bounded simulation
// run, a model-check, or a concurrent execution), so relative numbers across
// algorithms and topologies are directly comparable. EXPERIMENTS.md records
// the qualitative results; these benchmarks track their cost.

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/dining"
	"repro/internal/algo"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/graph"
	"repro/internal/graphalg"
	"repro/internal/graphalg/graphalgtest"
	"repro/internal/modelcheck"
	"repro/internal/prng"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/verify"
)

// simulateOnce runs one bounded simulation and reports meals/step metrics.
func simulateOnce(b *testing.B, topo *graph.Topology, algorithm string, kind string, seed uint64, steps int64) *sim.Result {
	b.Helper()
	sys := core.System{Topology: topo, Algorithm: algorithm, Scheduler: kind, Seed: seed}
	res, err := sys.Simulate(sim.RunOptions{MaxSteps: steps})
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkTable1LR1 .. BenchmarkTable4GDP2 exercise the four algorithm
// listings (Tables 1-4) on the classic ring under a random fair scheduler.
func benchmarkTable(b *testing.B, algorithm string) {
	topo := graph.Ring(9)
	b.ReportAllocs()
	var meals int64
	for i := 0; i < b.N; i++ {
		res := simulateOnce(b, topo, algorithm, "random", uint64(i)+1, 20_000)
		meals += res.TotalEats
	}
	b.ReportMetric(float64(meals)/float64(b.N), "meals/run")
}

func BenchmarkTable1LR1(b *testing.B)  { benchmarkTable(b, "LR1") }
func BenchmarkTable2LR2(b *testing.B)  { benchmarkTable(b, "LR2") }
func BenchmarkTable3GDP1(b *testing.B) { benchmarkTable(b, "GDP1") }
func BenchmarkTable4GDP2(b *testing.B) { benchmarkTable(b, "GDP2") }

// BenchmarkFigure1Topologies runs GDP1 on each of the four Figure 1 systems.
func BenchmarkFigure1Topologies(b *testing.B) {
	for _, topo := range graph.Figure1() {
		b.Run(topo.Name(), func(b *testing.B) {
			b.ReportAllocs()
			var meals int64
			for i := 0; i < b.N; i++ {
				res := simulateOnce(b, topo, "GDP1", "random", uint64(i)+1, 20_000)
				meals += res.TotalEats
			}
			b.ReportMetric(float64(meals)/float64(b.N), "meals/run")
		})
	}
}

// BenchmarkSection3Adversary measures one adversarial trial of the Section 3
// example (Figure 1a) for each algorithm, reporting the fraction of trials
// with no progress (the paper's headline quantity, lower-bounded by 1/16 for
// LR1 and 0 for GDP1/GDP2).
func BenchmarkSection3Adversary(b *testing.B) {
	for _, algorithm := range []string{"LR1", "LR2", "GDP1", "GDP2"} {
		b.Run(algorithm, func(b *testing.B) {
			topo := graph.Figure1A()
			b.ReportAllocs()
			starved := 0
			for i := 0; i < b.N; i++ {
				res := simulateOnce(b, topo, algorithm, "adversary", uint64(i)+1, 30_000)
				if res.TotalEats == 0 {
					starved++
				}
			}
			b.ReportMetric(float64(starved)/float64(b.N), "no-progress-rate")
		})
	}
}

// BenchmarkTheorem1 covers the Theorem 1 / Figure 2 reproduction: the
// exhaustive trap analysis on the minimal ring-with-extra-arc instance. For
// LR1 the ring philosophers are protected and a trap must exist (Theorem 1);
// for GDP1 the claim is global progress (Theorem 3), so everyone is protected
// and no trap may exist.
func BenchmarkTheorem1(b *testing.B) {
	cases := []struct {
		algorithm string
		protected []graph.PhilID
		wantTrap  bool
	}{
		{"LR1", []graph.PhilID{0, 1, 2}, true},
		{"GDP1", nil, false},
	}
	for _, c := range cases {
		b.Run(c.algorithm, func(b *testing.B) {
			prog, err := algo.New(c.algorithm, algo.Options{})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				rep, err := modelcheck.Check(graph.Theorem1Minimal(), prog, modelcheck.Options{Protected: c.protected})
				if err != nil {
					b.Fatal(err)
				}
				if rep.FairAdversaryWins() != c.wantTrap {
					b.Fatalf("%s verdict %v, want %v", c.algorithm, rep.FairAdversaryWins(), c.wantTrap)
				}
			}
		})
	}
}

// BenchmarkTheorem2 covers the Theorem 2 / Figure 3 reproduction: the trap
// analysis for LR2 versus GDP2 on the theta graph.
func BenchmarkTheorem2(b *testing.B) {
	for _, algorithm := range []string{"LR2", "GDP2"} {
		b.Run(algorithm, func(b *testing.B) {
			prog, err := algo.New(algorithm, algo.Options{})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				rep, err := modelcheck.Check(graph.Theorem2Minimal(), prog, modelcheck.Options{})
				if err != nil {
					b.Fatal(err)
				}
				want := algorithm == "LR2"
				if rep.FairAdversaryWins() != want {
					b.Fatalf("%s verdict %v, want %v", algorithm, rep.FairAdversaryWins(), want)
				}
			}
		})
	}
}

// BenchmarkTheorem3Progress measures the time for GDP1 to reach its first
// meal under the livelock adversary on each Figure 1 topology (Theorem 3:
// progress under every fair scheduler).
func BenchmarkTheorem3Progress(b *testing.B) {
	for _, topo := range graph.Figure1() {
		b.Run(topo.Name(), func(b *testing.B) {
			b.ReportAllocs()
			var firstMeal int64
			for i := 0; i < b.N; i++ {
				sys := core.System{Topology: topo, Algorithm: "GDP1", Scheduler: "adversary", Seed: uint64(i) + 1}
				res, err := sys.Simulate(sim.RunOptions{MaxSteps: 60_000, StopAfterTotalEats: 1})
				if err != nil {
					b.Fatal(err)
				}
				if !res.Progress() {
					b.Fatal("GDP1 failed to progress under the adversary")
				}
				firstMeal += res.FirstEatStep
			}
			b.ReportMetric(float64(firstMeal)/float64(b.N), "steps-to-first-meal")
		})
	}
}

// BenchmarkTheorem4Lockout measures GDP2 serving every philosopher on the
// Section 3 topology under round-robin scheduling (Theorem 4).
func BenchmarkTheorem4Lockout(b *testing.B) {
	topo := graph.Figure1A()
	b.ReportAllocs()
	var steps int64
	for i := 0; i < b.N; i++ {
		sys := core.System{Topology: topo, Algorithm: "GDP2", Scheduler: "round-robin", Seed: uint64(i) + 1}
		res, err := sys.Simulate(sim.RunOptions{MaxSteps: 200_000, StopWhenAllHaveEaten: true})
		if err != nil {
			b.Fatal(err)
		}
		if res.Reason != sim.StopAllAte {
			b.Fatalf("not everyone ate: %v", res.EatsBy)
		}
		steps += res.Steps
	}
	b.ReportMetric(float64(steps)/float64(b.N), "steps-to-feed-everyone")
}

// BenchmarkClassicRing is the sanity baseline: LR1 and LR2 on the topology
// for which Lehmann & Rabin proved them correct, under the adversary.
func BenchmarkClassicRing(b *testing.B) {
	for _, algorithm := range []string{"LR1", "LR2"} {
		b.Run(algorithm, func(b *testing.B) {
			topo := graph.Ring(5)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res := simulateOnce(b, topo, algorithm, "adversary", uint64(i)+1, 30_000)
				if !res.Progress() {
					b.Fatalf("%s starved on the classic ring", algorithm)
				}
			}
		})
	}
}

// BenchmarkAlgorithmsRing sweeps ring sizes for all four algorithms plus the
// centralized baselines (experiment E-B1, the efficiency dimension the paper
// leaves open).
func BenchmarkAlgorithmsRing(b *testing.B) {
	for _, size := range []int{5, 25, 101} {
		for _, algorithm := range []string{"LR1", "LR2", "GDP1", "GDP2", "ordered-forks", "ticket-box"} {
			b.Run(fmt.Sprintf("n=%d/%s", size, algorithm), func(b *testing.B) {
				topo := graph.Ring(size)
				b.ReportAllocs()
				var meals int64
				for i := 0; i < b.N; i++ {
					res := simulateOnce(b, topo, algorithm, "random", uint64(i)+1, 20_000)
					meals += res.TotalEats
				}
				b.ReportMetric(float64(meals)/float64(b.N), "meals/run")
			})
		}
	}
}

// BenchmarkNumberRangeSweep measures GDP1 with different number ranges m
// (experiment E-B2: the Theorem 3 bound m!/(m^k(m−k)!) improves with m).
func BenchmarkNumberRangeSweep(b *testing.B) {
	topo := graph.Figure1A()
	k := topo.NumForks()
	for _, mult := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("m=%dk", mult), func(b *testing.B) {
			m := k * mult
			b.ReportAllocs()
			var firstMeal int64
			for i := 0; i < b.N; i++ {
				sys := core.System{
					Topology:    topo,
					Algorithm:   "GDP1",
					AlgoOptions: algo.Options{M: m},
					Scheduler:   "adversary",
					Seed:        uint64(i) + 1,
				}
				res, err := sys.Simulate(sim.RunOptions{MaxSteps: 60_000, StopAfterTotalEats: 1})
				if err != nil {
					b.Fatal(err)
				}
				firstMeal += res.FirstEatStep
			}
			b.ReportMetric(float64(firstMeal)/float64(b.N), "steps-to-first-meal")
			b.ReportMetric(verify.DistinctNumberBound(m, k), "distinct-draw-bound")
		})
	}
}

// BenchmarkGuardedChoice measures the motivating application: processes with
// binary guarded choice committing via GDP2 on a random conflict graph
// (experiment E-PI).
func BenchmarkGuardedChoice(b *testing.B) {
	topo := graph.RandomMultigraph(24, 10, 7)
	b.ReportAllocs()
	var commits int64
	for i := 0; i < b.N; i++ {
		res := simulateOnce(b, topo, "GDP2", "random", uint64(i)+1, 40_000)
		commits += res.TotalEats
	}
	b.ReportMetric(float64(commits)/float64(b.N), "commits/run")
}

// BenchmarkRuntimeGoroutines measures the concurrent goroutine runtime
// (experiment E-RT): one op is a full 50ms concurrent execution.
func BenchmarkRuntimeGoroutines(b *testing.B) {
	for _, algorithm := range []string{dining.LR1, dining.GDP1, dining.GDP2} {
		b.Run(algorithm, func(b *testing.B) {
			topo := dining.Figure1A()
			b.ReportAllocs()
			var meals int64
			for i := 0; i < b.N; i++ {
				metrics, err := dining.RunConcurrent(context.Background(), topo, algorithm, uint64(i)+1, 50*time.Millisecond, 0)
				if err != nil {
					b.Fatal(err)
				}
				meals += metrics.TotalMeals
			}
			b.ReportMetric(float64(meals)/float64(b.N), "meals/op")
		})
	}
}

// BenchmarkAdversaryOverhead compares the cost of the adversarial scheduler
// against round-robin (the price of full-information scheduling).
func BenchmarkAdversaryOverhead(b *testing.B) {
	topo := graph.Figure1A()
	prog, err := algo.New("LR1", algo.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("round-robin", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := sim.Run(topo, prog, sched.NewRoundRobin(), prng.New(uint64(i)+1), sim.RunOptions{MaxSteps: 10_000}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("greedy-livelock", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			adv := sched.NewBoundedFair(sched.NewGreedyLivelock(), 512)
			if _, err := sim.Run(topo, prog, adv, prng.New(uint64(i)+1), sim.RunOptions{MaxSteps: 10_000}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFaultInjection measures the fault layer at the Program seam.
// "none" is the nil-fault path — no wrapper at all, the configuration that
// must stay within noise of the pre-fault-layer engine (the crashed flag
// rides in a previously-always-zero bit of the state key, so the only
// candidate cost is the extra PhilState field). "zero-rate" wraps the
// program in a rate-0 crash-rejoin model, isolating the pure wrapper
// overhead of one passthrough delegation per outcome call; the active
// models actually perturb the run and pay for their extra branches. The
// explore cases measure the model checker on the perturbed state space,
// which genuinely grows (crash/rejoin interleavings; in-flight grant
// counters for delayed-grants). "delayed-zero" is the rate-0 delayed-grants
// wrapper — like zero-rate it must sit within noise of none, since no grant
// ever enters flight and the pending key suffix stays absent.
func BenchmarkFaultInjection(b *testing.B) {
	faultModel := func(spec string) fault.Model {
		if spec == "" {
			return nil
		}
		m, err := fault.NewFromSpec(spec)
		if err != nil {
			b.Fatal(err)
		}
		return m
	}
	specs := []struct{ name, spec string }{
		{"none", ""},
		{"zero-rate", "crash-rejoin:0"},
		{"crash-rejoin", "crash-rejoin:0.05,0.5"},
		{"lossy-grants", "lossy-grants:0.2"},
		{"delayed-zero", "delayed-grants:0"},
		{"delayed-grants", "delayed-grants:0.2,2"},
	}
	b.Run("simulate", func(b *testing.B) {
		topo := graph.Ring(9)
		for _, c := range specs {
			m := faultModel(c.spec)
			b.Run(c.name, func(b *testing.B) {
				b.ReportAllocs()
				var meals int64
				for i := 0; i < b.N; i++ {
					sys := core.System{Topology: topo, Algorithm: "GDP1", Scheduler: "random", Seed: uint64(i) + 1, Faults: m}
					res, err := sys.Simulate(sim.RunOptions{MaxSteps: 20_000})
					if err != nil {
						b.Fatal(err)
					}
					meals += res.TotalEats
				}
				b.ReportMetric(float64(meals)/float64(b.N), "meals/run")
			})
		}
	})
	b.Run("explore", func(b *testing.B) {
		topo := graph.Theorem2Minimal()
		for _, c := range specs {
			m := faultModel(c.spec)
			b.Run(c.name, func(b *testing.B) {
				prog, err := algo.New("LR1", algo.Options{})
				if err != nil {
					b.Fatal(err)
				}
				if m != nil {
					prog = m.Wrap(topo, prog)
				}
				b.ReportAllocs()
				var states int
				for i := 0; i < b.N; i++ {
					ss, err := modelcheck.Explore(topo, prog, modelcheck.Options{Workers: 1})
					if err != nil {
						b.Fatal(err)
					}
					states = ss.NumStates()
				}
				b.ReportMetric(float64(states), "states")
			})
		}
	})
	// The runtime cases measure goroutine-level injection: RunConcurrent
	// wraps each philosopher with the crash-family fault driver (per-seed
	// decision streams at cycle boundaries). Message-level models are
	// rejected there, so this axis only crosses the crash family.
	b.Run("runtime", func(b *testing.B) {
		topo := graph.Ring(5)
		for _, c := range []struct{ name, spec string }{
			{"none", ""},
			{"crash-rejoin", "crash-rejoin:0.05,0.5"},
			{"freeze", "freeze:0.05"},
		} {
			m := faultModel(c.spec)
			b.Run(c.name, func(b *testing.B) {
				b.ReportAllocs()
				var meals int64
				for i := 0; i < b.N; i++ {
					sys := core.System{Topology: topo, Algorithm: "GDP2", Seed: uint64(i) + 1, Faults: m}
					metrics, err := sys.RunConcurrent(context.Background(), 20*time.Millisecond, 0)
					if err != nil {
						b.Fatal(err)
					}
					meals += metrics.TotalMeals
				}
				b.ReportMetric(float64(meals)/float64(b.N), "meals/run")
			})
		}
	})
}

// BenchmarkModelCheckerScaling measures state-space exploration itself,
// sequentially (workers=1, the allocation-optimized path).
func BenchmarkModelCheckerScaling(b *testing.B) {
	cases := []struct {
		name string
		topo *graph.Topology
		alg  string
	}{
		{"theta/LR1", graph.Theorem2Minimal(), "LR1"},
		{"theta/GDP1", graph.Theorem2Minimal(), "GDP1"},
		{"t1min/LR1", graph.Theorem1Minimal(), "LR1"},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			prog, err := algo.New(c.alg, algo.Options{})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			var states int
			for i := 0; i < b.N; i++ {
				ss, err := modelcheck.Explore(c.topo, prog, modelcheck.Options{Workers: 1})
				if err != nil {
					b.Fatal(err)
				}
				states = ss.NumStates()
			}
			b.ReportMetric(float64(states), "states")
		})
	}
}

// BenchmarkAnalyses measures the worklist graph-analysis engine against the
// retained reference sweeps on the Theorem 1 instances: the safety-game/trap
// analysis, the dead-region analysis and the SCC decomposition, each as
//
//   - sweep: the pre-worklist whole-state-space fixpoint iteration
//     (graphalgtest oracles — the PR-4 baseline),
//   - cold:  worklist including a one-shot predecessor-index build,
//   - warm:  worklist over the shared cached index (the steady state of
//     Engine.Check, where every property and every per-philosopher lockout
//     labelling reuses one index).
//
// The exploration is outside the timed region; one op is one analysis.
func BenchmarkAnalyses(b *testing.B) {
	for _, c := range []struct {
		name string
		alg  string
	}{
		{"t1min-LR1", "LR1"},
		{"t1min-GDP1", "GDP1"},
	} {
		prog, err := algo.New(c.alg, algo.Options{})
		if err != nil {
			b.Fatal(err)
		}
		ss, err := modelcheck.Explore(graph.Theorem1Minimal(), prog, modelcheck.Options{})
		if err != nil {
			b.Fatal(err)
		}
		warm := ss.PredecessorIndex()
		warm.MaximalTrap(ss.Bad) // prime the scratch pool

		b.Run("trap/"+c.name+"/sweep", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				graphalgtest.MaximalTrap(ss, ss.Bad)
			}
		})
		b.Run("trap/"+c.name+"/cold", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				graphalg.NewPredecessorIndex(ss, 1).MaximalTrap(ss.Bad)
			}
		})
		b.Run("trap/"+c.name+"/warm", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				warm.MaximalTrap(ss.Bad)
			}
		})

		b.Run("deadregion/"+c.name+"/sweep", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				graphalgtest.DeadRegionStates(ss, ss.Bad)
			}
		})
		b.Run("deadregion/"+c.name+"/cold", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				graphalg.NewPredecessorIndex(ss, 1).DeadRegionStates(ss.Bad)
			}
		})
		b.Run("deadregion/"+c.name+"/warm", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				warm.DeadRegionStates(ss.Bad)
			}
		})

		// SCC decomposition over the full reachable space with every action
		// retained: reference (per-visited-state successor slices) versus the
		// live in-place cursor enumeration.
		inSet := warm.Reachable()
		act := make([][]bool, ss.NumStates())
		for s := range act {
			row := make([]bool, ss.NumActions())
			for a := range row {
				row[a] = true
			}
			act[s] = row
		}
		comp := make([]int, ss.NumStates())
		b.Run("scc/"+c.name+"/sweep", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				graphalgtest.StronglyConnected(ss, inSet, act, comp)
			}
		})
		b.Run("scc/"+c.name+"/cold", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				graphalg.StronglyConnected(ss, inSet, act, comp)
			}
		})
		b.Run("scc/"+c.name+"/warm", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				warm.StronglyConnected(inSet, act, comp)
			}
		})
	}
}

// BenchmarkSymmetry measures the orbit-quotient exploration against the
// unreduced baseline on growing rings under LR1 — side-symmetric, so the
// full dihedral group of order 2n applies and the quotient must shrink the
// space by at least n× (the acceptance floor; the observed factor grows
// with n because larger rings have fewer states fixed by any symmetry).
// Each op is one full exploration on the allocation-optimized sequential
// path; the "states" metric is the explored count and "reduction-x" the
// plain/quotient ratio.
func BenchmarkSymmetry(b *testing.B) {
	prog, err := algo.New("LR1", algo.Options{})
	if err != nil {
		b.Fatal(err)
	}
	for _, n := range []int{3, 4, 5} {
		topo := graph.Ring(n)
		canon, err := graph.NewOrbitCanonicalizer(topo, graph.CanonOptions{})
		if err != nil {
			b.Fatal(err)
		}
		var plainStates, quotStates int
		b.Run(fmt.Sprintf("ring-%d/LR1/plain", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ss, err := modelcheck.Explore(topo, prog, modelcheck.Options{Workers: 1})
				if err != nil {
					b.Fatal(err)
				}
				plainStates = ss.NumStates()
			}
			b.ReportMetric(float64(plainStates), "states")
		})
		b.Run(fmt.Sprintf("ring-%d/LR1/quotient", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ss, err := modelcheck.Explore(topo, prog, modelcheck.Options{Workers: 1, Symmetry: canon})
				if err != nil {
					b.Fatal(err)
				}
				quotStates = ss.NumStates()
			}
			ratio := float64(plainStates) / float64(quotStates)
			if ratio < float64(n) {
				b.Fatalf("ring-%d quotient reduction %.2fx < %dx floor (%d -> %d states)", n, ratio, n, plainStates, quotStates)
			}
			b.ReportMetric(float64(quotStates), "states")
			b.ReportMetric(ratio, "reduction-x")
		})
	}
}

// BenchmarkParallelExplore compares the level-synchronous BFS on the largest
// model-checked instance (Theorem 1 on GDP1, ~64k states) across the
// (workers, shards) grid: the sequential single-shard baseline, the parallel
// expansion funneled through one shard, and the fully sharded configuration
// in which interning and row-writing are parallel per shard too. The dense
// view of every explored space is identical; only wall-clock differs.
func BenchmarkParallelExplore(b *testing.B) {
	prog, err := algo.New("GDP1", algo.Options{})
	if err != nil {
		b.Fatal(err)
	}
	topo := graph.Theorem1Minimal()
	for _, cfg := range []struct {
		name            string
		workers, shards int
	}{
		{"t1min/GDP1/workers=1/shards=1", 1, 1},
		{"t1min/GDP1/workers=all/shards=1", 0, 1},
		{"t1min/GDP1/workers=all/shards=all", 0, 0},
		{"t1min/GDP1/workers=all/shards=64", 0, 64},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := modelcheck.Explore(topo, prog, modelcheck.Options{Workers: cfg.workers, Shards: cfg.shards}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

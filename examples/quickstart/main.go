// Quickstart: five philosophers at the classic table running GDP2 (the
// paper's lockout-free algorithm) as real goroutines, then the same system on
// the reproducible discrete-event simulator.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/dining"
)

func main() {
	table := dining.Ring(5)

	// 1. Real concurrency: philosophers are goroutines, forks are mutexes.
	fmt.Println("== goroutine runtime ==")
	metrics, err := dining.RunConcurrent(context.Background(), table, dining.GDP2, 42, 500*time.Millisecond, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("meals per philosopher: %v\n", metrics.Meals)
	fmt.Printf("throughput: %.0f meals/s, Jain fairness index %.3f, starved: %d\n\n",
		metrics.MealsPerSecond, metrics.JainIndex, len(metrics.Starved))

	// 2. Reproducible simulation: same system, deterministic seed, step budget.
	fmt.Println("== discrete-event simulator ==")
	res, err := dining.Simulate(table, dining.GDP2, 42, dining.SimOptions{MaxSteps: 100_000})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("meals per philosopher: %v\n", res.EatsBy)
	fmt.Printf("first meal at step %d, mean hungry-to-eating wait %.1f steps\n", res.FirstEatStep, res.MeanWaitSteps)
}

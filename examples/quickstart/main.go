// Quickstart: five philosophers at the classic table running GDP2 (the
// paper's lockout-free algorithm) as real goroutines, then the same system on
// the reproducible discrete-event simulator — both through one engine built
// with the v2 functional-options API.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/dining"
)

func main() {
	ctx := context.Background()
	table := dining.Ring(5)

	eng, err := dining.New(table, dining.GDP2,
		dining.WithSeed(42),
		dining.WithMaxSteps(100_000))
	if err != nil {
		log.Fatal(err)
	}

	// 1. Real concurrency: philosophers are goroutines, forks are mutexes.
	fmt.Println("== goroutine runtime ==")
	metrics, err := eng.RunConcurrent(ctx, 500*time.Millisecond, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("meals per philosopher: %v\n", metrics.Meals)
	fmt.Printf("throughput: %.0f meals/s, Jain fairness index %.3f, starved: %d\n\n",
		metrics.MealsPerSecond, metrics.JainIndex, len(metrics.Starved))

	// 2. Reproducible simulation: same engine, deterministic seed, step budget.
	fmt.Println("== discrete-event simulator ==")
	res, err := eng.Run(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("meals per philosopher: %v\n", res.EatsBy)
	fmt.Printf("first meal at step %d, mean hungry-to-eating wait %.1f steps\n", res.FirstEatStep, res.MeanWaitSteps)
}

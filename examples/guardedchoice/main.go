// guardedchoice demonstrates the paper's motivating application (Section 1):
// implementing the mixed guarded choice of the pi-calculus on a fully
// distributed system. Each channel is a shared resource (a fork); a process
// offering a choice between an action on channel a and an action on channel b
// is a philosopher adjacent to the two channels; committing to a
// communication requires exclusive access to both channels — exactly a meal
// of the generalized dining philosophers. GDP2 resolves the conflicts
// symmetrically, with no central broker, and serves every process.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/dining"
)

// choiceProcess describes one process offering a binary guarded choice.
type choiceProcess struct {
	name     string
	channelA string
	channelB string
}

func main() {
	// A small "chat" system: channels are meeting points, processes offer to
	// communicate on either of two channels. Several processes compete for
	// the same channels (the hard case for guarded choice: conflicts must be
	// resolved consistently and without global coordination).
	processes := []choiceProcess{
		{"alice", "room1", "room2"},
		{"bob", "room2", "room3"},
		{"carol", "room3", "room1"},
		{"dave", "room1", "room2"},
		{"erin", "room2", "room3"},
		{"frank", "room3", "room1"},
	}

	// Map channels to forks and processes to philosophers.
	channelIDs := map[string]dining.ForkID{}
	var channels []string
	for _, p := range processes {
		for _, ch := range []string{p.channelA, p.channelB} {
			if _, ok := channelIDs[ch]; !ok {
				channelIDs[ch] = dining.ForkID(len(channels))
				channels = append(channels, ch)
			}
		}
	}
	builder := dining.NewTopologyBuilder("guarded-choice", len(channels))
	for _, p := range processes {
		builder.AddPhilosopher(channelIDs[p.channelA], channelIDs[p.channelB])
	}
	topo, err := builder.Build()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("channels: %v\n", channels)
	fmt.Printf("processes: %d, conflict graph: %s\n\n", len(processes), topo)

	// Run GDP2: every completed "meal" is one committed communication (the
	// process held both of its channels exclusively).
	res, err := dining.Simulate(context.Background(), topo, dining.GDP2,
		dining.WithSeed(7),
		dining.WithMaxSteps(200_000))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("committed guarded choices per process:")
	for i, p := range processes {
		fmt.Printf("  %-6s (%s|%s): %d commits\n", p.name, p.channelA, p.channelB, res.EatsBy[i])
	}
	fmt.Printf("\ntotal commits: %d, mean wait %.1f steps\n", res.TotalEats, res.MeanWaitSteps)
	if len(res.Starved) == 0 {
		fmt.Println("every process committed at least once: the symmetric, fully distributed")
		fmt.Println("conflict resolution the paper needs for its pi-calculus implementation.")
	} else {
		fmt.Printf("starved processes: %v\n", res.Starved)
	}
}

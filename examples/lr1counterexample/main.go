// lr1counterexample reproduces the paper's Section 3 example: on the
// generalized system with six philosophers sharing three forks (Figure 1,
// leftmost), a fair adversary prevents Lehmann & Rabin's algorithm LR1 from
// ever making progress — while GDP1, the paper's algorithm, eats happily
// under the very same adversary (Theorem 3). The per-trial verdicts stream
// in through Engine.Trials as workers finish.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/dining"
)

func main() {
	ctx := context.Background()
	topo := dining.DoubledPolygon(3) // 6 philosophers, 3 forks (Figure 1a)
	const steps = 30_000
	const trials = 20

	fmt.Printf("topology: %s\n", topo)
	fmt.Printf("adversary: greedy livelock strategy inside a fixed fairness window\n")
	fmt.Printf("%d trials of %d atomic steps each\n\n", trials, steps)

	for _, algorithm := range []string{dining.LR1, dining.GDP1} {
		eng, err := dining.New(topo, algorithm,
			dining.WithScheduler(dining.Adversary),
			dining.WithSeed(1000),
			dining.WithMaxSteps(steps))
		if err != nil {
			log.Fatal(err)
		}
		starvedRuns := 0
		var totalMeals int64
		for tr, err := range eng.Trials(ctx, trials) {
			if err != nil {
				log.Fatal(err)
			}
			if tr.TotalEats == 0 {
				starvedRuns++
			}
			totalMeals += tr.TotalEats
		}
		fmt.Printf("%-5s no-progress runs: %2d/%d   total meals across runs: %d\n",
			algorithm, starvedRuns, trials, totalMeals)
	}

	fmt.Println()
	fmt.Println("The paper proves the LR1 no-progress probability is at least 1/16 for its")
	fmt.Println("explicit scheduler; the adaptive adversary here does much better. GDP1 makes")
	fmt.Println("progress in every run, as Theorem 3 guarantees for every fair scheduler.")

	// The exhaustive verdict on the minimal instances (a few thousand
	// states), through the property layer: the starvation-trap property is
	// the machine-checked form of the theorems, and its failure for LR1
	// carries a replayable scheduler path into the trap region.
	fmt.Println()
	for _, algorithm := range []string{dining.LR1, dining.GDP1} {
		eng, err := dining.New(dining.Theta(1, 1, 1), algorithm)
		if err != nil {
			log.Fatal(err)
		}
		results, err := eng.CheckAll(ctx, dining.StarvationTrap, dining.Progress)
		if err != nil {
			log.Fatal(err)
		}
		for _, r := range results {
			verdict := "holds"
			if !r.Passed {
				verdict = "FAILS"
			}
			fmt.Printf("theta graph, %-5s %-16s %s — %s\n", algorithm+":", r.Property, verdict, r.Detail)
			if r.Counterexample != nil {
				if err := eng.ReplayTrace(r.Counterexample); err != nil {
					log.Fatal(err)
				}
				fmt.Printf("  (replayable counterexample: %d scheduler choices into the trap, verified by replay)\n",
					r.Counterexample.Len())
			}
		}
	}
}

// topologysweep runs all four algorithms of the paper on each of the Figure 1
// topologies (plus the classic ring as a control) under a benign fair
// scheduler and prints a throughput/fairness comparison — the quantitative
// side of the generalization, which the paper leaves as future work.
package main

import (
	"fmt"
	"log"

	"repro/dining"
	"repro/internal/stats"
)

func main() {
	topologies := []*dining.Topology{
		dining.Ring(6),
		dining.Figure1A(),
		dining.Figure1B(),
		dining.Figure1C(),
		dining.Figure1D(),
	}
	algorithms := []string{dining.LR1, dining.LR2, dining.GDP1, dining.GDP2}
	const steps = 60_000

	fmt.Printf("%-22s %-6s %10s %12s %10s %8s\n", "topology", "algo", "meals", "steps/meal", "mean wait", "Jain")
	for _, topo := range topologies {
		for _, algorithm := range algorithms {
			res, err := dining.Simulate(topo, algorithm, 11, dining.SimOptions{MaxSteps: steps})
			if err != nil {
				log.Fatal(err)
			}
			stepsPerMeal := 0.0
			if res.TotalEats > 0 {
				stepsPerMeal = float64(res.Steps) / float64(res.TotalEats)
			}
			fmt.Printf("%-22s %-6s %10d %12.1f %10.1f %8.3f\n",
				topo.Name(), algorithm, res.TotalEats, stepsPerMeal, res.MeanWaitSteps, stats.JainIndex(res.EatsBy))
		}
	}

	fmt.Println()
	fmt.Println("All four algorithms are live under a benign random scheduler; the adversarial")
	fmt.Println("differences (Theorems 1-4) only appear under malicious fair schedulers — see")
	fmt.Println("cmd/dpadversary and cmd/dpcheck.")
}

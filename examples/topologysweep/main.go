// topologysweep crosses the four paper algorithms with the Figure 1
// topologies (plus the classic ring as a control) using the v2 Sweep API:
// scenario aggregates stream in as workers finish, and the final matrix is
// bit-identical for any worker count — the quantitative side of the
// generalization, which the paper leaves as future work.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/dining"
)

func main() {
	sweep := dining.Sweep{
		Topologies: []*dining.Topology{
			dining.Ring(6),
			dining.Figure1A(),
			dining.Figure1B(),
			dining.Figure1C(),
			dining.Figure1D(),
		},
		Algorithms: []string{dining.LR1, dining.LR2, dining.GDP1, dining.GDP2},
		Trials:     5,
		MaxSteps:   60_000,
		Seed:       11,
	}

	// Watch the scenarios stream in as workers finish (completion order).
	count := 0
	for res, err := range sweep.Stream(context.Background()) {
		if err != nil {
			log.Fatal(err)
		}
		count++
		fmt.Printf("done %2d/20: %-22s %-5s meals %.1f\n", count, res.Topology, res.Algorithm, res.MeanEats)
	}

	// The deterministic matrix, in grid order.
	fmt.Println()
	matrix, err := sweep.Matrix(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(matrix.Text())

	fmt.Println()
	fmt.Println("All four algorithms are live under a benign random scheduler; the adversarial")
	fmt.Println("differences (Theorems 1-4) only appear under malicious fair schedulers — see")
	fmt.Println("cmd/dpadversary and cmd/dpcheck.")
}

// serveclient demonstrates the dpserve checking service end to end without
// needing a separate process: it boots the internal/serve handler on an
// in-process listener, posts the same /v1/check configuration twice, and
// prints the NDJSON responses side by side — the first response reports
// "cache":"miss" and pays for the exploration, the second reports
// "cache":"hit" and answers from the fingerprint-keyed state-space cache.
// Every line carries the request id, the echoed engine configuration
// (fingerprint included) and the timing fields, so any single line can be
// logged and later reproduced.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"

	"repro/internal/serve"
)

func main() {
	ts := httptest.NewServer(serve.New(serve.Options{}).Handler())
	defer ts.Close()

	body := `{"id":"demo-1","topology":"ring","n":3,"algorithm":"LR1"}`
	fmt.Println("--- first request (cold cache) ---")
	check(ts.URL, body)

	body = `{"id":"demo-2","topology":"ring","n":3,"algorithm":"LR1"}`
	fmt.Println("\n--- second request (same fingerprint) ---")
	check(ts.URL, body)
}

// check posts one /v1/check request and prints a digest of each NDJSON
// line: the accountability fields plus the verdict payloads.
func check(baseURL, body string) {
	resp, err := http.Post(baseURL+"/v1/check", "application/json", strings.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	for sc.Scan() {
		var ev serve.Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			log.Fatal(err)
		}
		switch ev.Event {
		case "progress":
			fmt.Printf("%s seq=%d cache=%-6s fp=%s  %s\n",
				ev.ID, ev.Seq, ev.Cache, ev.Config.Fingerprint, ev.Detail)
		case "result":
			verdict := "PASS"
			if !ev.Result.Passed {
				verdict = "FAIL"
			}
			fmt.Printf("%s seq=%d cache=%-6s %-22s %s  %s\n",
				ev.ID, ev.Seq, ev.Cache, ev.Result.Property, verdict, ev.Result.Detail)
		case "done":
			fmt.Printf("%s seq=%d cache=%-6s done: %d states, %d transitions, %dms\n",
				ev.ID, ev.Seq, ev.Cache, ev.States, ev.Transitions, ev.ElapsedMS)
		case "error":
			log.Fatalf("server error: %s", ev.Error)
		}
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}
}

// faultsweep crosses two paper algorithms with the fault-model axis of the
// Sweep API: the same (topology, algorithm, scheduler) cells run fault-free,
// under crash-and-rejoin philosophers, under lossy fork grants and under
// permanent freezes, so the matrix shows how gracefully the paper's
// guarantees degrade. A second pass asks the exhaustive checker the
// recoverable-variant question directly: does progress survive the faults on
// the minimal instances, and if not, what exact fault schedule kills it?
package main

import (
	"context"
	"fmt"
	"log"

	"repro/dining"
)

func main() {
	sweep := dining.Sweep{
		Topologies: []*dining.Topology{dining.Ring(5), dining.Figure1A()},
		Algorithms: []string{dining.LR1, dining.GDP2},
		Faults: []string{
			"",                      // fault-free control cell
			"crash-rejoin:0.02,0.5", // crash, drop forks, rejoin at 0.5
			"lossy-grants:0.2",      // hungry acquires no-op 20% of the time
			"freeze:0.005",          // rare permanent crashes
		},
		Trials:   5,
		MaxSteps: 60_000,
		Seed:     17,
	}

	matrix, err := sweep.Matrix(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(matrix.Text())

	// The exhaustive twin: is a meal still reachable from every reachable
	// state of the perturbed system? Under crash-rejoin it is (every crash
	// can be healed), under freeze it is not — and the counterexample names
	// the crashes that kill the system, replayable with Engine.ReplayTrace.
	fmt.Println()
	for _, spec := range []string{"crash-rejoin:0.1,0.5", "freeze:0.1"} {
		eng, err := dining.New(dining.Ring(3), dining.GDP1, dining.WithFaults(spec))
		if err != nil {
			log.Fatal(err)
		}
		results, err := eng.CheckAll(context.Background(), dining.ProgressUnderFaults)
		if err != nil {
			log.Fatal(err)
		}
		r := results[0]
		verdict := "PASS"
		if !r.Passed {
			verdict = "FAIL"
		}
		fmt.Printf("%-22s %-6s %s\n", r.Faults, verdict, r.Detail)
		if r.Counterexample != nil {
			if err := eng.ReplayTrace(r.Counterexample); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("counterexample verified by replay (%d steps):\n", r.Counterexample.Len())
			fmt.Print(r.Counterexample)
		}
	}
}

package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestRunningMoments(t *testing.T) {
	t.Parallel()
	var r Running
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		r.Add(x)
	}
	if r.Count() != 8 {
		t.Errorf("Count = %d", r.Count())
	}
	if math.Abs(r.Mean()-5) > 1e-12 {
		t.Errorf("Mean = %v, want 5", r.Mean())
	}
	// Sample variance of this classic data set is 32/7.
	if math.Abs(r.Variance()-32.0/7.0) > 1e-9 {
		t.Errorf("Variance = %v, want %v", r.Variance(), 32.0/7.0)
	}
	if r.Min() != 2 || r.Max() != 9 {
		t.Errorf("Min/Max = %v/%v", r.Min(), r.Max())
	}
	if r.CI95() <= 0 {
		t.Error("CI95 should be positive for varied data")
	}
	if !strings.Contains(r.String(), "n=8") {
		t.Errorf("String = %q", r.String())
	}
}

func TestRunningZeroValue(t *testing.T) {
	t.Parallel()
	var r Running
	if r.Mean() != 0 || r.Variance() != 0 || r.CI95() != 0 || r.Count() != 0 {
		t.Error("zero-value Running should report zeros")
	}
}

func TestRunningMatchesDirectComputationProperty(t *testing.T) {
	t.Parallel()
	f := func(raw []uint16) bool {
		if len(raw) < 2 {
			return true
		}
		var r Running
		sum := 0.0
		for _, v := range raw {
			r.Add(float64(v))
			sum += float64(v)
		}
		mean := sum / float64(len(raw))
		return math.Abs(r.Mean()-mean) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestProportion(t *testing.T) {
	t.Parallel()
	var p Proportion
	for i := 0; i < 100; i++ {
		p.Add(i < 25)
	}
	if p.Estimate() != 0.25 {
		t.Errorf("Estimate = %v", p.Estimate())
	}
	lo, hi := p.Wilson95()
	if lo >= 0.25 || hi <= 0.25 {
		t.Errorf("Wilson interval [%v, %v] should contain the point estimate", lo, hi)
	}
	if lo < 0.15 || hi > 0.37 {
		t.Errorf("Wilson interval [%v, %v] implausibly wide for n=100", lo, hi)
	}
	if p.Successes() != 25 || p.Trials() != 100 {
		t.Error("counters wrong")
	}
	if !strings.Contains(p.String(), "25/100") {
		t.Errorf("String = %q", p.String())
	}
}

func TestProportionEdgeCases(t *testing.T) {
	t.Parallel()
	var empty Proportion
	lo, hi := empty.Wilson95()
	if lo != 0 || hi != 1 {
		t.Errorf("empty proportion interval [%v, %v], want [0, 1]", lo, hi)
	}
	var all Proportion
	all.AddN(50, 50)
	lo, hi = all.Wilson95()
	if hi != 1 || lo < 0.9 {
		t.Errorf("all-success interval [%v, %v]", lo, hi)
	}
	var none Proportion
	none.AddN(0, 50)
	lo, hi = none.Wilson95()
	if lo != 0 || hi > 0.1 {
		t.Errorf("no-success interval [%v, %v]", lo, hi)
	}
}

func TestJainIndex(t *testing.T) {
	t.Parallel()
	if got := JainIndex([]int64{5, 5, 5, 5}); math.Abs(got-1) > 1e-12 {
		t.Errorf("equal allocation index = %v, want 1", got)
	}
	got := JainIndex([]int64{10, 0, 0, 0})
	if math.Abs(got-0.25) > 1e-12 {
		t.Errorf("single-winner index = %v, want 0.25", got)
	}
	if JainIndex(nil) != 1 || JainIndex([]int64{0, 0}) != 1 {
		t.Error("degenerate Jain index should be 1")
	}
	mixed := JainIndex([]int64{4, 6})
	if mixed <= 0.25 || mixed >= 1 {
		t.Errorf("mixed allocation index = %v, expected strictly between 1/n and 1", mixed)
	}
}

func TestJainIndexBoundsProperty(t *testing.T) {
	t.Parallel()
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]int64, len(raw))
		for i, v := range raw {
			xs[i] = int64(v)
		}
		idx := JainIndex(xs)
		return idx >= 1/float64(len(xs))-1e-9 && idx <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMinMaxSum(t *testing.T) {
	t.Parallel()
	min, max := MinMax([]int64{3, -1, 7, 0})
	if min != -1 || max != 7 {
		t.Errorf("MinMax = %d, %d", min, max)
	}
	if Sum([]int64{3, -1, 7, 0}) != 9 {
		t.Error("Sum wrong")
	}
	min, max = MinMax(nil)
	if min != 0 || max != 0 {
		t.Error("MinMax of empty should be 0,0")
	}
}

func TestPercentile(t *testing.T) {
	t.Parallel()
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if got := Percentile(xs, 50); got != 5 {
		t.Errorf("P50 = %v, want 5", got)
	}
	if got := Percentile(xs, 100); got != 10 {
		t.Errorf("P100 = %v, want 10", got)
	}
	if got := Percentile(xs, 0); got != 1 {
		t.Errorf("P0 = %v, want 1", got)
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Errorf("empty percentile = %v, want 0", got)
	}
}

func TestHistogram(t *testing.T) {
	t.Parallel()
	h := NewHistogram(10)
	for _, x := range []int64{1, 5, 9, 10, 11, 25, 25, -3} {
		h.Add(x)
	}
	if h.Total() != 8 {
		t.Errorf("Total = %d", h.Total())
	}
	lows, counts := h.Buckets()
	if len(lows) != len(counts) || len(lows) == 0 {
		t.Fatal("empty buckets")
	}
	if lows[0] != -10 {
		t.Errorf("first bucket low = %d, want -10 for the negative observation", lows[0])
	}
	var sum int64
	for _, c := range counts {
		sum += c
	}
	if sum != 8 {
		t.Errorf("bucket counts sum to %d, want 8", sum)
	}
	if h.String() == "" {
		t.Error("empty histogram rendering")
	}
	if NewHistogram(0).BucketWidth != 1 {
		t.Error("zero bucket width should be clamped to 1")
	}
}

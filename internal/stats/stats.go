// Package stats provides the small statistical toolkit used by the
// experiment harness: running moments, histograms, binomial proportion
// estimates with confidence intervals, and fairness indices over
// per-philosopher meal counts.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Running accumulates a stream of float64 observations with Welford's
// algorithm, providing mean, variance and extrema without storing the stream.
// The zero value is ready to use.
type Running struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add records one observation.
func (r *Running) Add(x float64) {
	r.n++
	if r.n == 1 {
		r.min, r.max = x, x
	} else {
		if x < r.min {
			r.min = x
		}
		if x > r.max {
			r.max = x
		}
	}
	delta := x - r.mean
	r.mean += delta / float64(r.n)
	r.m2 += delta * (x - r.mean)
}

// Count returns the number of observations.
func (r *Running) Count() int64 { return r.n }

// Mean returns the sample mean (0 with no observations).
func (r *Running) Mean() float64 { return r.mean }

// Variance returns the unbiased sample variance (0 with fewer than two
// observations).
func (r *Running) Variance() float64 {
	if r.n < 2 {
		return 0
	}
	return r.m2 / float64(r.n-1)
}

// StdDev returns the sample standard deviation.
func (r *Running) StdDev() float64 { return math.Sqrt(r.Variance()) }

// Min returns the smallest observation (0 with none).
func (r *Running) Min() float64 { return r.min }

// Max returns the largest observation (0 with none).
func (r *Running) Max() float64 { return r.max }

// CI95 returns the half-width of a normal-approximation 95% confidence
// interval for the mean.
func (r *Running) CI95() float64 {
	if r.n < 2 {
		return 0
	}
	return 1.96 * r.StdDev() / math.Sqrt(float64(r.n))
}

// String formats the summary as "mean ± ci (n=...)".
func (r *Running) String() string {
	return fmt.Sprintf("%.3f ± %.3f (n=%d)", r.Mean(), r.CI95(), r.n)
}

// Proportion is a Bernoulli success-rate estimator.
type Proportion struct {
	successes int64
	trials    int64
}

// Add records one trial.
func (p *Proportion) Add(success bool) {
	p.trials++
	if success {
		p.successes++
	}
}

// AddN records a batch of trials.
func (p *Proportion) AddN(successes, trials int64) {
	p.successes += successes
	p.trials += trials
}

// Successes returns the number of successes.
func (p *Proportion) Successes() int64 { return p.successes }

// Trials returns the number of trials.
func (p *Proportion) Trials() int64 { return p.trials }

// Estimate returns the point estimate successes/trials (0 with no trials).
func (p *Proportion) Estimate() float64 {
	if p.trials == 0 {
		return 0
	}
	return float64(p.successes) / float64(p.trials)
}

// Wilson95 returns the 95% Wilson score interval for the proportion, which
// behaves sensibly even for extreme counts (0 or all successes).
func (p *Proportion) Wilson95() (lo, hi float64) {
	if p.trials == 0 {
		return 0, 1
	}
	const z = 1.96
	n := float64(p.trials)
	phat := p.Estimate()
	denom := 1 + z*z/n
	center := (phat + z*z/(2*n)) / denom
	half := z * math.Sqrt(phat*(1-phat)/n+z*z/(4*n*n)) / denom
	lo = center - half
	hi = center + half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}

// String formats the estimate with its Wilson interval.
func (p *Proportion) String() string {
	lo, hi := p.Wilson95()
	return fmt.Sprintf("%.3f [%.3f, %.3f] (%d/%d)", p.Estimate(), lo, hi, p.successes, p.trials)
}

// JainIndex computes Jain's fairness index over the given per-philosopher
// quantities: (Σx)² / (n·Σx²). It is 1 for perfectly equal allocations and
// approaches 1/n when a single philosopher gets everything. It returns 1 for
// an empty or all-zero input (an empty system is vacuously fair).
func JainIndex(xs []int64) float64 {
	if len(xs) == 0 {
		return 1
	}
	var sum, sumSq float64
	for _, x := range xs {
		f := float64(x)
		sum += f
		sumSq += f * f
	}
	if sumSq == 0 {
		return 1
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}

// MinMax returns the smallest and largest values of xs (0, 0 for empty input).
func MinMax(xs []int64) (min, max int64) {
	if len(xs) == 0 {
		return 0, 0
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max
}

// Sum returns the sum of xs.
func Sum(xs []int64) int64 {
	var total int64
	for _, x := range xs {
		total += x
	}
	return total
}

// Percentile returns the q-th percentile (0 <= q <= 100) of xs using
// nearest-rank on a sorted copy. It returns 0 for empty input.
func Percentile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := int(math.Ceil(q/100*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	return sorted[rank]
}

// Histogram is a fixed-bucket histogram over int64 observations.
type Histogram struct {
	// BucketWidth is the width of each bucket (must be positive).
	BucketWidth int64
	counts      map[int64]int64
	total       int64
}

// NewHistogram returns a histogram with the given bucket width.
func NewHistogram(bucketWidth int64) *Histogram {
	if bucketWidth <= 0 {
		bucketWidth = 1
	}
	return &Histogram{BucketWidth: bucketWidth, counts: make(map[int64]int64)}
}

// Add records one observation.
func (h *Histogram) Add(x int64) {
	bucket := x / h.BucketWidth
	if x < 0 {
		bucket = -((-x + h.BucketWidth - 1) / h.BucketWidth)
	}
	h.counts[bucket]++
	h.total++
}

// Total returns the number of observations.
func (h *Histogram) Total() int64 { return h.total }

// Buckets returns the non-empty buckets as (lower bound, count) pairs in
// increasing order.
func (h *Histogram) Buckets() ([]int64, []int64) {
	keys := make([]int64, 0, len(h.counts))
	for k := range h.counts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	lows := make([]int64, len(keys))
	counts := make([]int64, len(keys))
	for i, k := range keys {
		lows[i] = k * h.BucketWidth
		counts[i] = h.counts[k]
	}
	return lows, counts
}

// String renders a small ASCII bar chart.
func (h *Histogram) String() string {
	lows, counts := h.Buckets()
	var maxCount int64
	for _, c := range counts {
		if c > maxCount {
			maxCount = c
		}
	}
	out := ""
	for i := range lows {
		bar := 1
		if maxCount > 0 {
			bar = int(40 * counts[i] / maxCount)
		}
		if bar < 1 {
			bar = 1
		}
		out += fmt.Sprintf("%8d | %s %d\n", lows[i], repeat('#', bar), counts[i])
	}
	return out
}

func repeat(c byte, n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = c
	}
	return string(b)
}

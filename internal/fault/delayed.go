package fault

import (
	"fmt"
	"sync"

	"repro/internal/graph"
	"repro/internal/sim"
)

func init() {
	Register("delayed-grants", newDelayedGrants)
}

// delayedDeliverProb is the probability that a scheduled stalled philosopher's
// in-flight grant arrives this step while its remaining-delay counter is still
// positive; at counter zero delivery is forced. Fixed rather than configured:
// the adversarially relevant parameters are the injection rate and the delay
// bound, which the spec carries.
const delayedDeliverProb = 0.5

// delayedModel is the delayed-grants fault model: with the injection rate, a
// fork-acquiring outcome of a scheduled hungry philosopher is replaced by "the
// grant enters flight with a remaining-delay counter of at most k". The fork
// is reserved for its holder-to-be (everyone else finds it busy) and the
// philosopher stalls: its scheduled steps offer only delivery/decrement
// branches until the grant arrives, after which its next step re-executes the
// take. Unlike the crash and lossy families the perturbation is not
// expressible in per-philosopher flags — it lives in the world's per-slot
// pending-grant array, which the key encoding and the orbit canonicalizer
// carry (see sim.World.GrantInFlight).
type delayedModel struct {
	rates []float64 // resolved parameters, Spec order: rate, delay bound
	rate  float64   // injection probability per fork-acquiring outcome
	delay uint8     // initial remaining-delay counter k
	phils []graph.PhilID
}

// newDelayedGrants validates and resolves a Config. The second parameter is
// not a probability but the integer delay bound k, so the model checks its
// parameters itself instead of going through checkRates.
func newDelayedGrants(cfg Config) (Model, error) {
	cfg = normalize(cfg)
	if len(cfg.Rates) > 2 {
		return nil, fmt.Errorf("fault: delayed-grants takes at most 2 parameters (rate, delay bound), got %d", len(cfg.Rates))
	}
	rates := []float64{0.1, 2}
	copy(rates, cfg.Rates)
	if r := rates[0]; r < 0 || r > 1 {
		return nil, fmt.Errorf("fault: delayed-grants rate is %v, want a probability in [0, 1]", r)
	}
	k := rates[1]
	if k != float64(int(k)) || k < 0 || k > sim.MaxGrantDelay {
		return nil, fmt.Errorf("fault: delayed-grants delay bound is %v, want an integer in [0, %d]", k, sim.MaxGrantDelay)
	}
	if err := checkPhils("delayed-grants", cfg.Phils); err != nil {
		return nil, err
	}
	return &delayedModel{rates: rates, rate: rates[0], delay: uint8(k), phils: cfg.Phils}, nil
}

// Name implements Model.
func (m *delayedModel) Name() string { return "delayed-grants" }

// Spec implements Model.
func (m *delayedModel) Spec() string { return formatSpec("delayed-grants", m.rates, m.phils) }

// Validate implements Model.
func (m *delayedModel) Validate(topo *graph.Topology) error {
	return validateTopo("delayed-grants", m.phils, topo)
}

// Wrap implements Model.
func (m *delayedModel) Wrap(topo *graph.Topology, prog sim.Program) sim.Program {
	dp := &delayedProgram{base: prog, model: m}
	if len(m.phils) > 0 {
		dp.target = make([]bool, topo.NumPhilosophers())
		for _, p := range m.phils {
			dp.target[p] = true
		}
	}
	return dp
}

// Labels of the delay branches. Injection and decrement share one label —
// both are the grant being delayed in flight — so counterexample traces use
// exactly the delayed/delivered pair.
const (
	labelGrantDelayed   = LabelPrefix + "grant delayed"
	labelGrantDelivered = LabelPrefix + "grant delivered"
)

func applyGrantInFlight(w *sim.World, p graph.PhilID, arg int64) {
	w.GrantInFlight(p, graph.ForkID(arg>>8), uint8(arg&0xff))
}
func applyDelayGrant(w *sim.World, p graph.PhilID, arg int64) {
	w.DelayGrant(p, graph.ForkID(arg))
}
func applyDeliverGrant(w *sim.World, p graph.PhilID, arg int64) {
	w.DeliverGrant(p, graph.ForkID(arg))
}

// delayedProbe is the pooled scratch of the acquisition probe: one recycled
// protocol clone and one outcome buffer, so probing steps allocates nothing
// in steady state.
type delayedProbe struct {
	w   *sim.World
	buf []sim.Outcome
}

var delayedProbePool = sync.Pool{New: func() any { return new(delayedProbe) }}

// delayedProgram is the perturbed transition system of the delayed-grants
// model. Immutable after Wrap, safe to share across exploration workers.
type delayedProgram struct {
	base   sim.Program
	model  *delayedModel
	target []bool // nil = every philosopher targeted
}

// Name implements sim.Program (see program.Name).
func (dp *delayedProgram) Name() string { return dp.base.Name() }

// FaultSpec returns the canonical spec of the injected model (see
// program.FaultSpec).
func (dp *delayedProgram) FaultSpec() string { return dp.model.Spec() }

// Base returns the unwrapped algorithm program.
func (dp *delayedProgram) Base() sim.Program { return dp.base }

// Init implements sim.Program. With a positive rate the world's pending-grant
// array is materialized up front, so exploration and simulation steps never
// allocate it mid-run; at rate zero the world is left exactly as the base
// program's, keeping the zero-rate engine byte- and allocation-identical to a
// fault-free one.
func (dp *delayedProgram) Init(w *sim.World) {
	dp.base.Init(w)
	if dp.model.rate > 0 {
		w.EnsurePending()
	}
}

// Symmetric implements sim.Program (see program.Symmetric): the untargeted
// model perturbs every philosopher identically and the pending-grant array is
// permuted by the orbit canonicalizer, so symmetry reduces to the base's.
func (dp *delayedProgram) Symmetric() bool { return dp.base.Symmetric() && dp.target == nil }

// SideSymmetric implements sim.SideSymmetricProgram by forwarding to the base
// algorithm: the flight, delay and delivery branches never mention a side.
func (dp *delayedProgram) SideSymmetric() bool {
	sp, ok := dp.base.(sim.SideSymmetricProgram)
	return ok && sp.SideSymmetric()
}

// Outcomes implements sim.Program. A stalled philosopher (one with a grant in
// flight) gets only the delivery/decrement branches. A live targeted hungry
// philosopher gets the base outcome set with every fork-acquiring outcome
// scaled by (1 - rate) plus an appended flight branch of the complementary
// probability; acquiring outcomes are identified by a probe that applies each
// base outcome to a pooled protocol clone and checks that its whole effect on
// the fork holders is exactly one free adjacent fork becoming held by the
// philosopher. Everything goes through the caller's reused buffer and the
// pooled probe, so the steady-state step loop stays allocation-free.
func (dp *delayedProgram) Outcomes(w *sim.World, p graph.PhilID, buf []sim.Outcome) []sim.Outcome {
	if f, delay, ok := w.PendingGrant(p); ok {
		if delay == 0 {
			return append(buf, sim.Outcome{Prob: 1, Label: labelGrantDelivered, Arg: int64(f), Apply: applyDeliverGrant})
		}
		return append(buf,
			sim.Outcome{Prob: delayedDeliverProb, Label: labelGrantDelivered, Arg: int64(f), Apply: applyDeliverGrant},
			sim.Outcome{Prob: 1 - delayedDeliverProb, Label: labelGrantDelayed, Arg: int64(f), Apply: applyDelayGrant})
	}
	if dp.model.rate <= 0 || (dp.target != nil && !dp.target[p]) || w.PhaseOf(p) != sim.Hungry {
		return dp.base.Outcomes(w, p, buf)
	}
	start := len(buf)
	buf = dp.base.Outcomes(w, p, buf)
	end := len(buf)
	pr := delayedProbePool.Get().(*delayedProbe)
	scratch, obuf := pr.w, pr.buf
	for i := start; i < end; i++ {
		scratch = w.CloneProtocolInto(scratch)
		obuf = dp.base.Outcomes(scratch, p, obuf[:0])
		obuf[i-start].Do(scratch, p)
		f, ok := acquiredFork(w, scratch, p)
		if !ok {
			continue
		}
		flight := sim.Outcome{
			Prob:  dp.model.rate * buf[i].Prob,
			Label: labelGrantDelayed,
			Arg:   int64(f)<<8 | int64(dp.model.delay),
			Apply: applyGrantInFlight,
		}
		buf[i].Prob *= 1 - dp.model.rate
		buf = append(buf, flight)
	}
	pr.w, pr.buf = scratch, obuf
	delayedProbePool.Put(pr)
	if dp.model.rate >= 1 {
		// Fully replaced acquiring outcomes scaled to probability zero, which
		// ValidateOutcomes rightly rejects; drop them.
		out := buf[:start]
		for _, o := range buf[start:] {
			if o.Prob > 0 {
				out = append(out, o)
			}
		}
		buf = out
	}
	return buf
}

// acquiredFork reports whether applying an outcome turned world w into s by —
// as far as the fork holders are concerned — exactly one free fork becoming
// held by philosopher p, returning that fork. Outcomes releasing forks or
// acquiring more than one are not plain takes and are never put in flight.
func acquiredFork(w, s *sim.World, p graph.PhilID) (graph.ForkID, bool) {
	acquired := graph.NoFork
	count := 0
	for f := range w.Forks {
		before, after := w.Forks[f].Holder, s.Forks[f].Holder
		if before == after {
			continue
		}
		if before != graph.NoPhil || after != p {
			return graph.NoFork, false
		}
		acquired = graph.ForkID(f)
		count++
	}
	return acquired, count == 1
}

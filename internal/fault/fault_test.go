package fault

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/algo"
	"repro/internal/graph"
	"repro/internal/prng"
	"repro/internal/sim"
)

func TestNames(t *testing.T) {
	want := []string{"crash-rejoin", "delayed-grants", "freeze", "lossy-grants"}
	if got := Names(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
}

func TestLookupUnknown(t *testing.T) {
	_, err := Lookup("meteor")
	if err == nil {
		t.Fatal("Lookup(meteor) succeeded")
	}
	want := `fault: unknown fault model "meteor" (registered: crash-rejoin, delayed-grants, freeze, lossy-grants)`
	if err.Error() != want {
		t.Fatalf("error = %q, want %q", err, want)
	}
}

func TestParseSpecRoundTrip(t *testing.T) {
	cases := []struct {
		spec string // input
		want string // canonical Spec() with defaults resolved
	}{
		{"crash-rejoin", "crash-rejoin:0.05,0.5"},
		{"crash-rejoin:0.1", "crash-rejoin:0.1,0.5"},
		{"crash-rejoin:0.1,0.25", "crash-rejoin:0.1,0.25"},
		{"freeze", "freeze:0.05"},
		{"freeze:0.2@2,0", "freeze:0.2@0,2"},
		{"lossy-grants:0.25@1", "lossy-grants:0.25@1"},
		{" lossy-grants ", "lossy-grants:0.1"},
		{"delayed-grants", "delayed-grants:0.1,2"},
		{"delayed-grants:0.25", "delayed-grants:0.25,2"},
		{"delayed-grants:0.25,3@2,0", "delayed-grants:0.25,3@0,2"},
	}
	for _, tc := range cases {
		m, err := NewFromSpec(tc.spec)
		if err != nil {
			t.Errorf("NewFromSpec(%q): %v", tc.spec, err)
			continue
		}
		if got := m.Spec(); got != tc.want {
			t.Errorf("NewFromSpec(%q).Spec() = %q, want %q", tc.spec, got, tc.want)
			continue
		}
		// The canonical spec must itself round-trip unchanged.
		again, err := NewFromSpec(m.Spec())
		if err != nil {
			t.Errorf("NewFromSpec(%q): %v", m.Spec(), err)
			continue
		}
		if again.Spec() != m.Spec() {
			t.Errorf("round-trip of %q drifted to %q", m.Spec(), again.Spec())
		}
	}
}

func TestParseSpecErrors(t *testing.T) {
	for _, spec := range []string{"", ":0.1", "@1", "freeze:nope", "freeze@x", "freeze:0.1@1.5"} {
		if _, _, err := ParseSpec(spec); err == nil {
			t.Errorf("ParseSpec(%q) succeeded", spec)
		}
	}
}

func TestConstructorValidation(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		want string // substring of the error
	}{
		{"crash-rejoin", Config{Rates: []float64{-0.1}}, "want a probability"},
		{"crash-rejoin", Config{Rates: []float64{0.1, 1.5}}, "want a probability"},
		{"crash-rejoin", Config{Rates: []float64{0.1, 0.2, 0.3}}, "at most 2 rate(s)"},
		{"freeze", Config{Rates: []float64{0.1, 0.2}}, "at most 1 rate(s)"},
		{"freeze", Config{Phils: []graph.PhilID{-1}}, "negative philosopher"},
		{"lossy-grants", Config{Phils: []graph.PhilID{2, 1, 2}}, "philosopher 2 twice"},
		{"delayed-grants", Config{Rates: []float64{1.5}}, "want a probability"},
		{"delayed-grants", Config{Rates: []float64{0.1, 2.5}}, "want an integer"},
		{"delayed-grants", Config{Rates: []float64{0.1, 64}}, "want an integer"},
		{"delayed-grants", Config{Rates: []float64{0.1, 2, 3}}, "at most 2 parameters"},
	}
	for _, tc := range cases {
		_, err := New(tc.name, tc.cfg)
		if err == nil {
			t.Errorf("New(%q, %+v) succeeded", tc.name, tc.cfg)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("New(%q, %+v) error = %q, want substring %q", tc.name, tc.cfg, err, tc.want)
		}
	}
}

func TestValidateTargetsAgainstTopology(t *testing.T) {
	m, err := New("freeze", Config{Phils: []graph.PhilID{4}})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(graph.Ring(5)); err != nil {
		t.Errorf("Validate(Ring(5)): %v", err)
	}
	if err := m.Validate(graph.Ring(4)); err == nil {
		t.Error("Validate(Ring(4)) accepted target philosopher 4")
	} else if !strings.Contains(err.Error(), "unknown philosopher 4") {
		t.Errorf("Validate(Ring(4)) error = %q", err)
	}
}

// wrap builds the given model around LR1 on a ring.
func wrap(t *testing.T, spec string, n int) (*graph.Topology, sim.Program) {
	t.Helper()
	topo := graph.Ring(n)
	base, err := algo.New("LR1", algo.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewFromSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(topo); err != nil {
		t.Fatal(err)
	}
	return topo, m.Wrap(topo, base)
}

func TestWrappedOutcomeSets(t *testing.T) {
	topo, prog := wrap(t, "crash-rejoin:0.25,0.5", 3)
	w := sim.NewWorld(topo)
	prog.Init(w)

	// Live philosopher: the base outcome set scaled by 0.75 plus the crash
	// branch.
	outs := prog.Outcomes(w, 0, nil)
	if err := sim.ValidateOutcomes(outs); err != nil {
		t.Fatalf("live outcome set: %v", err)
	}
	last := outs[len(outs)-1]
	if last.Label != labelCrash || last.Prob != 0.25 {
		t.Fatalf("last outcome = %+v, want crash branch with prob 0.25", last)
	}

	// Crashed philosopher: rejoin vs still-crashed only.
	w.Crash(1)
	outs = prog.Outcomes(w, 1, outs[:0])
	if err := sim.ValidateOutcomes(outs); err != nil {
		t.Fatalf("crashed outcome set: %v", err)
	}
	if len(outs) != 2 || outs[0].Label != labelRejoin || outs[1].Label != labelStillCrashed {
		t.Fatalf("crashed outcome set = %+v", outs)
	}
	outs[0].Do(w, 1)
	if w.IsCrashed(1) {
		t.Fatal("rejoin outcome left philosopher crashed")
	}
}

func TestFreezeIsAbsorbing(t *testing.T) {
	topo, prog := wrap(t, "freeze:0.5", 3)
	w := sim.NewWorld(topo)
	prog.Init(w)
	w.Crash(2)
	outs := prog.Outcomes(w, 2, nil)
	if len(outs) != 1 || outs[0].Label != labelStillCrashed || outs[0].Prob != 1 {
		t.Fatalf("frozen outcome set = %+v, want single still-crashed", outs)
	}
}

func TestLossyGrantsOnlyWhenHungry(t *testing.T) {
	topo, prog := wrap(t, "lossy-grants:0.5", 3)
	base := prog.(interface{ Base() sim.Program }).Base()
	w := sim.NewWorld(topo)
	prog.Init(w)

	// Thinking philosopher: untouched base outcomes.
	got := prog.Outcomes(w, 0, nil)
	want := base.Outcomes(w, 0, nil)
	if !outcomesEqual(got, want) {
		t.Fatalf("thinking outcomes perturbed: got %+v, want %+v", got, want)
	}

	// Hungry philosopher: loss branch appended, state unchanged by it.
	w.BecomeHungry(0)
	got = prog.Outcomes(w, 0, got[:0])
	if err := sim.ValidateOutcomes(got); err != nil {
		t.Fatal(err)
	}
	last := got[len(got)-1]
	if last.Label != labelGrantLost || last.Prob != 0.5 {
		t.Fatalf("last outcome = %+v, want grant-lost with prob 0.5", last)
	}
	var before, after []byte
	before = w.AppendKey(before)
	last.Do(w, 0)
	after = w.AppendKey(after)
	if string(before) != string(after) {
		t.Fatal("grant-lost outcome changed the protocol state")
	}
}

func TestUntargetedPhilosophersSeeBaseOutcomes(t *testing.T) {
	topo, prog := wrap(t, "freeze:0.5@1", 3)
	base := prog.(interface{ Base() sim.Program }).Base()
	w := sim.NewWorld(topo)
	prog.Init(w)
	for p := graph.PhilID(0); p < 3; p++ {
		got := prog.Outcomes(w, p, nil)
		want := base.Outcomes(w, p, nil)
		if p == 1 {
			if outcomesEqual(got, want) {
				t.Errorf("targeted P%d saw unperturbed outcomes", p)
			}
			continue
		}
		if !outcomesEqual(got, want) {
			t.Errorf("untargeted P%d: got %+v, want %+v", p, got, want)
		}
	}
	if prog.Symmetric() {
		t.Error("targeted fault model claims symmetry")
	}
}

func TestFaultSpecExposed(t *testing.T) {
	_, prog := wrap(t, "crash-rejoin", 3)
	fs, ok := prog.(interface{ FaultSpec() string })
	if !ok {
		t.Fatal("wrapped program does not expose FaultSpec")
	}
	if got := fs.FaultSpec(); got != "crash-rejoin:0.05,0.5" {
		t.Fatalf("FaultSpec() = %q", got)
	}
	if prog.Name() != "LR1" {
		t.Fatalf("Name() = %q, want base algorithm name LR1", prog.Name())
	}
}

// TestRunUnderFaultsKeepsInvariants runs the step engine with invariant and
// outcome validation on: crashes mid-acquisition must leave the world
// consistent (forks released, requests withdrawn).
func TestRunUnderFaultsKeepsInvariants(t *testing.T) {
	for _, spec := range []string{"crash-rejoin:0.2,0.3", "freeze:0.05", "lossy-grants:0.3", "delayed-grants:0.3,2"} {
		topo, prog := wrap(t, spec, 5)
		sched := sim.SchedulerFunc{
			SchedulerName: "round-robin",
			NextFunc:      func(w *sim.World) graph.PhilID { return graph.PhilID(w.Step % 5) },
		}
		_, err := sim.Run(topo, prog, sched, prng.New(7), sim.RunOptions{
			MaxSteps:         4000,
			CheckInvariants:  true,
			ValidateOutcomes: true,
		})
		if err != nil {
			t.Errorf("%s: %v", spec, err)
		}
	}
}

func outcomesEqual(a, b []sim.Outcome) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Prob != b[i].Prob || a[i].Label != b[i].Label || a[i].Arg != b[i].Arg {
			return false
		}
	}
	return true
}

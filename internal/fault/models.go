package fault

import (
	"repro/internal/graph"
	"repro/internal/sim"
)

func init() {
	Register("crash-rejoin", func(cfg Config) (Model, error) {
		return newModel("crash-rejoin", cfg, []float64{0.05, 0.5}, false)
	})
	Register("freeze", func(cfg Config) (Model, error) {
		return newModel("freeze", cfg, []float64{0.05}, false)
	})
	Register("lossy-grants", func(cfg Config) (Model, error) {
		return newModel("lossy-grants", cfg, []float64{0.1}, true)
	})
}

// model implements the three built-in fault models. The crash family
// (crash-rejoin, freeze) injects a crash branch on live philosophers and a
// rejoin/self-loop branch on crashed ones; the lossy family injects a no-op
// branch on hungry philosophers. freeze is crash-rejoin with rejoin pinned
// to 0, which makes a crash absorbing.
type model struct {
	name   string
	lossy  bool
	rates  []float64 // resolved rates, Spec order
	rate   float64   // crash (or loss) probability per scheduled step
	rejoin float64   // rejoin probability per scheduled step (crash family)
	phils  []graph.PhilID
}

// newModel validates and resolves a Config against the model's defaults.
func newModel(name string, cfg Config, defaults []float64, lossy bool) (Model, error) {
	cfg = normalize(cfg)
	rates, err := checkRates(name, cfg.Rates, defaults)
	if err != nil {
		return nil, err
	}
	if err := checkPhils(name, cfg.Phils); err != nil {
		return nil, err
	}
	m := &model{name: name, lossy: lossy, rates: rates, rate: rates[0], phils: cfg.Phils}
	if len(rates) > 1 {
		m.rejoin = rates[1]
	}
	return m, nil
}

// Name implements Model.
func (m *model) Name() string { return m.name }

// Spec implements Model.
func (m *model) Spec() string { return formatSpec(m.name, m.rates, m.phils) }

// Validate implements Model.
func (m *model) Validate(topo *graph.Topology) error {
	return validateTopo(m.name, m.phils, topo)
}

// Wrap implements Model. The target mask is materialized here — Wrap is the
// only place the philosopher count is known — so Outcomes stays a read-only
// O(1) membership test, safe for the model checker's concurrent workers.
func (m *model) Wrap(topo *graph.Topology, prog sim.Program) sim.Program {
	fp := &program{base: prog, model: m}
	if len(m.phils) > 0 {
		fp.target = make([]bool, topo.NumPhilosophers())
		for _, p := range m.phils {
			fp.target[p] = true
		}
	}
	return fp
}

// Fault-outcome labels. The "fault: " prefix marks fault branches in traces
// and counterexamples without any wire-format change.
const (
	// LabelPrefix prefixes the label of every injected fault outcome.
	LabelPrefix = "fault: "

	labelCrash        = LabelPrefix + "crash"
	labelRejoin       = LabelPrefix + "rejoin"
	labelStillCrashed = LabelPrefix + "still crashed"
	labelGrantLost    = LabelPrefix + "grant lost"
)

// The Apply functions of fault outcomes are static, like every algorithm's:
// the outcome sets stay allocation-free and the model checker can re-apply
// outcome i of a recomputed set to a cloned world.

func applyCrash(w *sim.World, p graph.PhilID, _ int64)       { w.Crash(p) }
func applyRejoin(w *sim.World, p graph.PhilID, _ int64)      { w.Rejoin(p) }
func applyStayCrashed(w *sim.World, p graph.PhilID, _ int64) { w.StayCrashed(p) }
func applyLoseGrant(w *sim.World, p graph.PhilID, _ int64)   { w.LoseGrant(p) }

// program is the perturbed transition system: the base algorithm with fault
// branches spliced into each scheduled philosopher's outcome set. It is
// immutable after Wrap and therefore safe to share across exploration
// workers, exactly like the base programs.
type program struct {
	base   sim.Program
	model  *model
	target []bool // nil = every philosopher targeted
}

// Name implements sim.Program: the wrapped program keeps the algorithm's
// name so traces and reports stay attributed to it; the fault model travels
// via FaultSpec.
func (fp *program) Name() string { return fp.base.Name() }

// FaultSpec returns the canonical spec of the injected model. Package trace
// discovers it by interface assertion when recording and replaying
// counterexamples.
func (fp *program) FaultSpec() string { return fp.model.Spec() }

// Base returns the unwrapped algorithm program.
func (fp *program) Base() sim.Program { return fp.base }

// Init implements sim.Program.
func (fp *program) Init(w *sim.World) { fp.base.Init(w) }

// Symmetric implements sim.Program: targeting a strict subset of the
// philosophers breaks the paper's symmetry condition, an untargeted fault
// model preserves it.
func (fp *program) Symmetric() bool { return fp.base.Symmetric() && fp.target == nil }

// SideSymmetric implements sim.SideSymmetricProgram by forwarding to the
// base algorithm: the crash, rejoin and message-loss branches never mention
// a side, so the wrapper is exactly as left/right symmetric as its base.
func (fp *program) SideSymmetric() bool {
	sp, ok := fp.base.(sim.SideSymmetricProgram)
	return ok && sp.SideSymmetric()
}

// Outcomes implements sim.Program. Crashed philosophers get the rejoin /
// still-crashed branch; live targeted ones get the base outcome set with
// probabilities scaled by (1 - rate) in place plus the appended fault
// branch. Everything goes through the caller's reused buffer, so the
// steady-state step loop stays allocation-free.
func (fp *program) Outcomes(w *sim.World, p graph.PhilID, buf []sim.Outcome) []sim.Outcome {
	if w.IsCrashed(p) {
		switch {
		case fp.model.rejoin >= 1:
			return append(buf, sim.Outcome{Prob: 1, Label: labelRejoin, Apply: applyRejoin})
		case fp.model.rejoin > 0:
			return append(buf,
				sim.Outcome{Prob: fp.model.rejoin, Label: labelRejoin, Apply: applyRejoin},
				sim.Outcome{Prob: 1 - fp.model.rejoin, Label: labelStillCrashed, Apply: applyStayCrashed})
		default:
			return append(buf, sim.Outcome{Prob: 1, Label: labelStillCrashed, Apply: applyStayCrashed})
		}
	}
	if fp.model.rate <= 0 || (fp.target != nil && !fp.target[p]) ||
		(fp.model.lossy && w.Phils[p].Phase != sim.Hungry) {
		return fp.base.Outcomes(w, p, buf)
	}
	injected := sim.Outcome{Prob: fp.model.rate, Label: labelCrash, Apply: applyCrash}
	if fp.model.lossy {
		injected.Label = labelGrantLost
		injected.Apply = applyLoseGrant
	}
	if fp.model.rate >= 1 {
		return append(buf, injected)
	}
	start := len(buf)
	buf = fp.base.Outcomes(w, p, buf)
	for i := start; i < len(buf); i++ {
		buf[i].Prob *= 1 - fp.model.rate
	}
	return append(buf, injected)
}

// Package fault implements fault injection for generalized
// dining-philosopher systems: named, parameterized models that perturb the
// transition system itself. A Model wraps a philosopher program (sim.Program)
// and rewrites each scheduled philosopher's outcome set — appending a
// crash branch, a rejoin branch or a lost-grant self-loop and rescaling the
// base outcomes — so that the Monte-Carlo simulator and the exhaustive model
// checker see the *same* perturbed MDP through the one Program interface.
//
// The wrapper honours every Program contract the engines rely on: outcome
// sets are a pure function of the protocol state and the model's fixed
// parameters (equal protocol states produce identical outcome sets),
// probabilities still sum to 1, Apply functions are static with the variable
// part in Arg, and fault outcomes are appended into the caller's reused
// buffer, so the 0-alloc steady state of the step engine is preserved.
//
// Fault state is protocol state: a crashed philosopher carries the
// PhilState.Crashed flag, which sim.World.AppendKey encodes (bit 4 of the
// per-philosopher flags byte), and an in-flight fork grant lives in the
// world's per-slot pending-grant array, encoded as a key suffix — so faulty
// states stay canonically keyed and deduplicate correctly in the sharded
// store. Neither is ever populated without a fault model, which keeps the
// nil-fault key encoding byte-identical.
//
// Four models are built in:
//
//   - crash-rejoin (rates: crash, rejoin): a scheduled philosopher crashes
//     with the crash probability — dropping held forks, withdrawing requests,
//     losing volatile local state — and a scheduled crashed philosopher
//     rejoins the thinking section with the rejoin probability.
//   - freeze (rate: crash): a permanent crash, modelling guests leaving the
//     table; a frozen philosopher self-loops forever.
//   - lossy-grants (rate: loss): a scheduled hungry philosopher's step
//     no-ops with the loss probability — the fork grant was lost in flight —
//     leaving the protocol state untouched.
//   - delayed-grants (parameters: rate, delay bound k): with the injection
//     rate a fork-acquiring outcome is replaced by "the grant enters flight
//     with remaining-delay counter k". The fork is reserved for its
//     holder-to-be (everyone else finds it busy) and the philosopher stalls:
//     each of its scheduled steps offers a delivery branch and, while the
//     counter is positive, a decrement branch. Delivery releases the
//     reservation and the philosopher's next step re-executes the take. The
//     in-flight state enlarges the reachable state space — the first model
//     whose effects per-philosopher flags cannot express.
//
// Models register by name in an open registry with the same contract as the
// algorithm, scheduler, topology and property registries (panic on empty or
// duplicate registration, sorted names, one-line unknown-name errors); the
// public face is dining.RegisterFault / Faults / LookupFault and the engine
// option dining.WithFaults.
package fault

import (
	"fmt"
	"slices"
	"strconv"
	"strings"

	"repro/internal/graph"
	"repro/internal/registry"
	"repro/internal/sim"
)

// Config parameterizes a fault model instance.
type Config struct {
	// Rates are the model's probabilities in model-defined order (see the
	// package comment); missing rates take the model's documented defaults.
	// Every rate must lie in [0, 1].
	Rates []float64
	// Phils restricts the faults to the given philosophers (empty = all).
	// Crash and loss branches are only injected for targeted philosophers.
	Phils []graph.PhilID
}

// Model is one configured fault model: a named, parameterized transformer of
// the transition system. Models are immutable after construction and safe
// for concurrent use; Wrap may be called any number of times.
type Model interface {
	// Name returns the registered model name ("crash-rejoin").
	Name() string
	// Spec returns the canonical parseable description of the instance —
	// "crash-rejoin:0.05,0.5" or "freeze:0.1@0,2" — with defaults resolved.
	// ParseSpec(Spec()) round-trips, and traces record it for replay
	// verification.
	Spec() string
	// Validate checks the instance against a topology (target philosopher
	// ids must be in range). Constructors validate rates; Validate is the
	// topology-dependent half, called eagerly by dining.New.
	Validate(topo *graph.Topology) error
	// Wrap returns the program presenting the perturbed MDP of prog on topo.
	// The wrapped program keeps prog's Name, so traces and reports stay
	// attributed to the algorithm; the fault instance travels separately via
	// the FaultSpec method (see trace.Build).
	Wrap(topo *graph.Topology, prog sim.Program) sim.Program
}

// Ctor constructs a model instance from a Config, validating the rates (a
// negative or >1 rate, too many rates, or malformed targets are construction
// errors — faults must fail at configuration time, not mid-run).
type Ctor func(cfg Config) (Model, error)

// models is the open fault-model registry.
var models = registry.New[Ctor]("fault", "fault model")

// Register registers a named fault-model constructor. Like the other
// registries it panics on an empty name, a nil constructor or a duplicate
// name — registration is init-time wiring.
func Register(name string, ctor Ctor) { models.Register(name, ctor) }

// Names returns every registered fault-model name in sorted order.
func Names() []string { return models.Names() }

// Lookup returns the named registered constructor. Unknown names produce a
// one-line error listing the registered options.
func Lookup(name string) (Ctor, error) { return models.Lookup(name) }

// New constructs the named registered model with the given configuration.
func New(name string, cfg Config) (Model, error) {
	ctor, err := Lookup(name)
	if err != nil {
		return nil, err
	}
	m, err := ctor(normalize(cfg))
	if err != nil {
		return nil, err
	}
	return m, nil
}

// NewFromSpec parses a spec string (see ParseSpec) and constructs the model.
func NewFromSpec(spec string) (Model, error) {
	name, cfg, err := ParseSpec(spec)
	if err != nil {
		return nil, err
	}
	return New(name, cfg)
}

// normalize copies and canonicalizes a Config: targets are sorted so that
// equal instances produce equal specs.
func normalize(cfg Config) Config {
	out := Config{
		Rates: append([]float64(nil), cfg.Rates...),
		Phils: append([]graph.PhilID(nil), cfg.Phils...),
	}
	slices.Sort(out.Phils)
	return out
}

// ParseSpec parses the fault-spec grammar shared by the -faults CLI flag,
// the sweep fault axis and Model.Spec:
//
//	name[:rate1,rate2,...][@phil1,phil2,...]
//
// For example "crash-rejoin", "freeze:0.1" or "lossy-grants:0.25@0,2". It
// validates only the syntax; rate ranges are checked by the model
// constructor and target ranges by Model.Validate.
func ParseSpec(spec string) (name string, cfg Config, err error) {
	name = strings.TrimSpace(spec)
	if at := strings.IndexByte(name, '@'); at >= 0 {
		for _, part := range strings.Split(name[at+1:], ",") {
			id, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				return "", Config{}, fmt.Errorf("fault: spec %q: bad philosopher id %q", spec, part)
			}
			cfg.Phils = append(cfg.Phils, graph.PhilID(id))
		}
		name = name[:at]
	}
	if colon := strings.IndexByte(name, ':'); colon >= 0 {
		for _, part := range strings.Split(name[colon+1:], ",") {
			rate, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
			if err != nil {
				return "", Config{}, fmt.Errorf("fault: spec %q: bad rate %q", spec, part)
			}
			cfg.Rates = append(cfg.Rates, rate)
		}
		name = name[:colon]
	}
	if name == "" {
		return "", Config{}, fmt.Errorf("fault: spec %q has no model name", spec)
	}
	return name, cfg, nil
}

// formatSpec renders the canonical spec of an instance.
func formatSpec(name string, rates []float64, phils []graph.PhilID) string {
	var b strings.Builder
	b.WriteString(name)
	for i, r := range rates {
		if i == 0 {
			b.WriteByte(':')
		} else {
			b.WriteByte(',')
		}
		b.WriteString(strconv.FormatFloat(r, 'g', -1, 64))
	}
	for i, p := range phils {
		if i == 0 {
			b.WriteByte('@')
		} else {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(int(p)))
	}
	return b.String()
}

// checkRates validates the rate list of a model taking want parameters with
// the given defaults: extra rates and out-of-range values are errors, and
// missing rates are filled from defaults. It returns the resolved rates.
func checkRates(name string, rates, defaults []float64) ([]float64, error) {
	if len(rates) > len(defaults) {
		return nil, fmt.Errorf("fault: %s takes at most %d rate(s), got %d", name, len(defaults), len(rates))
	}
	out := append([]float64(nil), defaults...)
	for i, r := range rates {
		if r < 0 || r > 1 {
			return nil, fmt.Errorf("fault: %s rate %d is %v, want a probability in [0, 1]", name, i, r)
		}
		out[i] = r
	}
	return out, nil
}

// checkPhils validates a target list: negative ids are always invalid, and
// duplicates are configuration bugs (phils is sorted by normalize).
func checkPhils(name string, phils []graph.PhilID) error {
	for i, p := range phils {
		if p < 0 {
			return fmt.Errorf("fault: %s targets negative philosopher id %d", name, p)
		}
		if i > 0 && phils[i-1] == p {
			return fmt.Errorf("fault: %s targets philosopher %d twice", name, p)
		}
	}
	return nil
}

// validateTopo is the shared topology-dependent check: every target id must
// name a philosopher of the topology.
func validateTopo(name string, phils []graph.PhilID, topo *graph.Topology) error {
	if topo == nil {
		return fmt.Errorf("fault: %s: Validate requires a topology", name)
	}
	n := topo.NumPhilosophers()
	for _, p := range phils {
		if int(p) >= n {
			return fmt.Errorf("fault: %s targets unknown philosopher %d (topology %s has %d)", name, p, topo.Name(), n)
		}
	}
	return nil
}

package fault

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/sim"
)

// driveToTake advances philosopher p through its thinking and selection steps
// (always the first outcome) until its next scheduled step would attempt a
// take, i.e. until the wrapped outcome set contains a flight branch.
func driveToTake(t *testing.T, prog sim.Program, w *sim.World, p graph.PhilID) []sim.Outcome {
	t.Helper()
	for i := 0; i < 8; i++ {
		outs := prog.Outcomes(w, p, nil)
		if err := sim.ValidateOutcomes(outs); err != nil {
			t.Fatal(err)
		}
		if outs[len(outs)-1].Label == labelGrantDelayed {
			return outs
		}
		outs[0].Do(w, p)
		w.Step++
		if err := w.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	}
	t.Fatalf("philosopher %d never reached a fork-acquiring step", p)
	return nil
}

// TestDelayedGrantsLifecycle walks one grant through its whole flight:
// injection replaces the take and reserves the fork, delay branches count the
// flight down, delivery releases the reservation, and the re-executed take
// then succeeds against the fork the reservation kept free.
func TestDelayedGrantsLifecycle(t *testing.T) {
	topo, prog := wrap(t, "delayed-grants:0.5,2", 3)
	w := sim.NewWorld(topo)
	prog.Init(w)

	outs := driveToTake(t, prog, w, 0)
	if len(outs) != 2 {
		t.Fatalf("take-step outcome set = %+v, want scaled take + flight branch", outs)
	}
	if outs[0].Prob != 0.5 || outs[1].Prob != 0.5 || outs[1].Label != labelGrantDelayed {
		t.Fatalf("take-step outcome set = %+v", outs)
	}

	// Inject: the grant enters flight with counter 2.
	outs[1].Do(w, 0)
	w.Step++
	if err := w.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	f, delay, ok := w.PendingGrant(0)
	if !ok || delay != 2 {
		t.Fatalf("PendingGrant(0) = (%d, %d, %v), want an in-flight grant with counter 2", f, delay, ok)
	}
	if w.HolderOf(f) != graph.NoPhil {
		t.Fatalf("reserved fork %d has holder %d", f, w.HolderOf(f))
	}
	if w.IsFree(f) {
		t.Fatalf("reserved fork %d reports free", f)
	}

	// The reservation blocks every other adjacent philosopher's take.
	for q := graph.PhilID(0); q < 3; q++ {
		if q == 0 {
			continue
		}
		for _, qf := range topo.Forks(q) {
			if qf == f && w.TryTake(q, qf) {
				t.Fatalf("philosopher %d took reserved fork %d", q, qf)
			}
		}
	}

	// Two delay branches count the flight down to zero.
	for want := uint8(1); ; want-- {
		outs = prog.Outcomes(w, 0, outs[:0])
		if err := sim.ValidateOutcomes(outs); err != nil {
			t.Fatal(err)
		}
		if len(outs) != 2 || outs[0].Label != labelGrantDelivered || outs[1].Label != labelGrantDelayed {
			t.Fatalf("stalled outcome set = %+v", outs)
		}
		outs[1].Do(w, 0)
		w.Step++
		if _, delay, _ = w.PendingGrant(0); delay != want {
			t.Fatalf("after delay branch, counter = %d, want %d", delay, want)
		}
		if want == 0 {
			break
		}
	}

	// At counter zero delivery is forced and releases the reservation...
	outs = prog.Outcomes(w, 0, outs[:0])
	if len(outs) != 1 || outs[0].Prob != 1 || outs[0].Label != labelGrantDelivered {
		t.Fatalf("counter-0 outcome set = %+v, want forced delivery", outs)
	}
	outs[0].Do(w, 0)
	w.Step++
	if err := w.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := w.PendingGrant(0); ok {
		t.Fatal("grant still pending after delivery")
	}
	if !w.IsFree(f) {
		t.Fatalf("fork %d still unavailable after delivery", f)
	}

	// ...and the next scheduled step re-executes the take (with the flight
	// branch injected again — each retry can be delayed anew).
	outs = prog.Outcomes(w, 0, outs[:0])
	if len(outs) != 2 || outs[1].Label != labelGrantDelayed {
		t.Fatalf("post-delivery outcome set = %+v", outs)
	}
	outs[0].Do(w, 0)
	w.Step++
	if err := w.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if w.HolderOf(f) != 0 {
		t.Fatalf("fork %d holder = %d after re-executed take, want 0", f, w.HolderOf(f))
	}
}

// TestDelayedGrantsCertainInjection pins the rate >= 1 shape: the acquiring
// outcome is fully replaced, leaving only the flight branch — no zero-
// probability remnants for ValidateOutcomes to reject.
func TestDelayedGrantsCertainInjection(t *testing.T) {
	topo, prog := wrap(t, "delayed-grants:1,0", 3)
	w := sim.NewWorld(topo)
	prog.Init(w)
	outs := driveToTake(t, prog, w, 0)
	if len(outs) != 1 || outs[0].Prob != 1 || outs[0].Label != labelGrantDelayed {
		t.Fatalf("certain-injection outcome set = %+v, want single flight branch", outs)
	}
	outs[0].Do(w, 0)
	w.Step++
	// Delay bound 0: delivery is forced immediately.
	outs = prog.Outcomes(w, 0, outs[:0])
	if len(outs) != 1 || outs[0].Label != labelGrantDelivered {
		t.Fatalf("counter-0 outcome set = %+v, want forced delivery", outs)
	}
	_ = topo
}

// TestDelayedGrantsZeroRateIsByteIdentical pins the gate the allocation and
// equivalence budgets rely on: a zero-rate delayed-grants engine never
// materializes the pending array, so keys and outcome sets match the base
// program byte for byte.
func TestDelayedGrantsZeroRateIsByteIdentical(t *testing.T) {
	topo, prog := wrap(t, "delayed-grants:0,3", 3)
	base := prog.(interface{ Base() sim.Program }).Base()
	w := sim.NewWorld(topo)
	prog.Init(w)
	wb := sim.NewWorld(topo)
	base.Init(wb)
	for step := 0; step < 30; step++ {
		p := graph.PhilID(step % 3)
		got := prog.Outcomes(w, p, nil)
		want := base.Outcomes(wb, p, nil)
		if !outcomesEqual(got, want) {
			t.Fatalf("step %d: outcomes diverge: %+v vs %+v", step, got, want)
		}
		got[0].Do(w, p)
		want[0].Do(wb, p)
		w.Step++
		wb.Step++
		if w.Key() != wb.Key() {
			t.Fatalf("step %d: keys diverge", step)
		}
	}
}

package algo

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/sim"
)

// Program-counter values for LR2, matching the line numbers of Table 2:
//
//  1. think
//  2. insert(id, left.r); insert(id, right.r)
//  3. fork := random_choice(left, right)
//  4. if isFree(fork) and Cond(fork) then take(fork) else goto 4
//  5. if isFree(other(fork)) then take(other(fork))
//     else { release(fork); goto 3 }
//  6. eat
//  7. remove(id, left.r); remove(id, right.r)
//  8. insert(id, left.g); insert(id, right.g)
//  9. release(fork); release(other(fork))
//  10. goto 1
const (
	lr2Think     = 1
	lr2Request   = 2
	lr2Choose    = 3
	lr2TakeFirst = 4
	lr2TrySecond = 5
	lr2Eat       = 6
	lr2Unrequest = 7
	lr2Sign      = 8
	lr2Release   = 9
)

// LR2 is the second (courteous) algorithm of Lehmann and Rabin, generalized
// as in Section 3.2 of the paper: each fork carries a request list r and a
// guest book g; a philosopher announces its hunger in the request lists of
// both forks, and may take a fork only when no other requester has been
// waiting since before the philosopher's own last use of that fork
// (Cond(fork)). On the classic ring LR2 is lockout-free; Theorem 2 shows it
// fails on topologies containing a ring with two nodes joined by a third
// path.
type LR2 struct {
	opts Options
}

// NewLR2 returns LR2 configured with opts.
func NewLR2(opts Options) *LR2 { return &LR2{opts: opts} }

// Name implements sim.Program.
func (*LR2) Name() string { return "LR2" }

// Symmetric implements sim.Program: LR2 is symmetric and fully distributed
// (the request lists and guest books live on the forks).
func (*LR2) Symmetric() bool { return true }

// SideSymmetric implements sim.SideSymmetricProgram: with the default fair
// coin LR2 treats left and right forks identically; a biased coin breaks the
// left/right symmetry.
func (a *LR2) SideSymmetric() bool { return a.opts.leftBias() == 0.5 }

// Init implements sim.Program.
func (*LR2) Init(*sim.World) {}

// Outcomes implements sim.Program.
func (a *LR2) Outcomes(w *sim.World, p graph.PhilID, buf []sim.Outcome) []sim.Outcome {
	st := &w.Phils[p]
	switch st.PC {
	case lr2Think:
		return sim.ThinkOutcomes(w, p, buf, lr2Request)

	case lr2Request:
		return one(buf, "insert requests", 0, lr2ApplyRequest)

	case lr2Choose:
		return coinFlip(buf, a.opts.leftBias(),
			sim.Outcome{Label: "commit left", Arg: int64(w.Topo.Left(p)), Apply: lr2ApplyCommit},
			sim.Outcome{Label: "commit right", Arg: int64(w.Topo.Right(p)), Apply: lr2ApplyCommit},
		)

	case lr2TakeFirst:
		return one(buf, "take first fork (courteous)", 0, lr2ApplyTakeFirst)

	case lr2TrySecond:
		return one(buf, "try second fork", a.opts.courtesyFlags(), lr2ApplyTrySecond)

	case lr2Eat:
		return one(buf, "eat", 0, lr2ApplyEat)

	case lr2Unrequest:
		return one(buf, "remove requests", 0, lr2ApplyUnrequest)

	case lr2Sign:
		return one(buf, "sign guest books", 0, lr2ApplySign)

	case lr2Release:
		return one(buf, "release forks", 0, lr2ApplyRelease)

	default:
		panic(fmt.Sprintf("algo: LR2 philosopher %d has invalid pc %d", p, st.PC))
	}
}

func lr2ApplyRequest(w *sim.World, p graph.PhilID, _ int64) {
	w.Request(p, w.Topo.Left(p))
	w.Request(p, w.Topo.Right(p))
	w.Phils[p].PC = lr2Choose
}

func lr2ApplyCommit(w *sim.World, p graph.PhilID, arg int64) {
	w.Commit(p, graph.ForkID(arg))
	w.Phils[p].PC = lr2TakeFirst
}

func lr2ApplyTakeFirst(w *sim.World, p graph.PhilID, _ int64) {
	st := &w.Phils[p]
	if w.IsFree(st.First) && w.Cond(p, st.First) {
		if !w.TryTake(p, st.First) {
			return
		}
		w.MarkHoldingFirst(p)
		st.PC = lr2TrySecond
		return
	}
	// Busy wait at line 4. Record why for the trace.
	if !w.IsFree(st.First) {
		w.TryTake(p, st.First) // records a fork-busy event, cannot succeed
		return
	}
	w.RecordBlockedByCond(p, st.First)
}

func lr2ApplyTrySecond(w *sim.World, p graph.PhilID, arg int64) {
	st := &w.Phils[p]
	second := w.Topo.OtherFork(p, st.First)
	allowed := arg&flagCourtesyOnBoth == 0 || w.Cond(p, second)
	if allowed && w.TryTake(p, second) {
		w.MarkHoldingSecond(p)
		w.StartEating(p)
		st.PC = lr2Eat
		return
	}
	if !allowed {
		w.RecordBlockedByCond(p, second)
	}
	w.Release(p, st.First)
	w.ClearSelection(p)
	st.PC = lr2Choose
}

func lr2ApplyEat(w *sim.World, p graph.PhilID, _ int64) {
	w.FinishEating(p)
	w.Phils[p].PC = lr2Unrequest
}

func lr2ApplyUnrequest(w *sim.World, p graph.PhilID, _ int64) {
	w.Unrequest(p, w.Topo.Left(p))
	w.Unrequest(p, w.Topo.Right(p))
	w.Phils[p].PC = lr2Sign
}

func lr2ApplySign(w *sim.World, p graph.PhilID, _ int64) {
	w.SignGuestBook(p, w.Topo.Left(p))
	w.SignGuestBook(p, w.Topo.Right(p))
	w.Phils[p].PC = lr2Release
}

func lr2ApplyRelease(w *sim.World, p graph.PhilID, _ int64) {
	w.ReleaseAll(p)
	w.BackToThinking(p, lr2Think)
}

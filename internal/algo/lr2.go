package algo

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/sim"
)

// Program-counter values for LR2, matching the line numbers of Table 2:
//
//  1. think
//  2. insert(id, left.r); insert(id, right.r)
//  3. fork := random_choice(left, right)
//  4. if isFree(fork) and Cond(fork) then take(fork) else goto 4
//  5. if isFree(other(fork)) then take(other(fork))
//     else { release(fork); goto 3 }
//  6. eat
//  7. remove(id, left.r); remove(id, right.r)
//  8. insert(id, left.g); insert(id, right.g)
//  9. release(fork); release(other(fork))
//  10. goto 1
const (
	lr2Think     = 1
	lr2Request   = 2
	lr2Choose    = 3
	lr2TakeFirst = 4
	lr2TrySecond = 5
	lr2Eat       = 6
	lr2Unrequest = 7
	lr2Sign      = 8
	lr2Release   = 9
)

// LR2 is the second (courteous) algorithm of Lehmann and Rabin, generalized
// as in Section 3.2 of the paper: each fork carries a request list r and a
// guest book g; a philosopher announces its hunger in the request lists of
// both forks, and may take a fork only when no other requester has been
// waiting since before the philosopher's own last use of that fork
// (Cond(fork)). On the classic ring LR2 is lockout-free; Theorem 2 shows it
// fails on topologies containing a ring with two nodes joined by a third
// path.
type LR2 struct {
	opts Options
}

// NewLR2 returns LR2 configured with opts.
func NewLR2(opts Options) *LR2 { return &LR2{opts: opts} }

// Name implements sim.Program.
func (*LR2) Name() string { return "LR2" }

// Symmetric implements sim.Program: LR2 is symmetric and fully distributed
// (the request lists and guest books live on the forks).
func (*LR2) Symmetric() bool { return true }

// Init implements sim.Program.
func (*LR2) Init(*sim.World) {}

// Outcomes implements sim.Program.
func (a *LR2) Outcomes(w *sim.World, p graph.PhilID) []sim.Outcome {
	st := &w.Phils[p]
	left, right := w.Topo.Left(p), w.Topo.Right(p)
	switch st.PC {
	case lr2Think:
		return sim.ThinkOutcomes(w, p, func() {
			w.BecomeHungry(p)
			st.PC = lr2Request
		})

	case lr2Request:
		return one("insert requests", func() {
			w.Request(p, left)
			w.Request(p, right)
			st.PC = lr2Choose
		})

	case lr2Choose:
		return coinFlip(a.opts.leftBias(),
			sim.Outcome{Label: "commit left", Apply: func() {
				w.Commit(p, left)
				st.PC = lr2TakeFirst
			}},
			sim.Outcome{Label: "commit right", Apply: func() {
				w.Commit(p, right)
				st.PC = lr2TakeFirst
			}},
		)

	case lr2TakeFirst:
		return one("take first fork (courteous)", func() {
			if w.IsFree(st.First) && w.Cond(p, st.First) {
				if !w.TryTake(p, st.First) {
					return
				}
				w.MarkHoldingFirst(p)
				st.PC = lr2TrySecond
				return
			}
			// Busy wait at line 4. Record why for the trace.
			if !w.IsFree(st.First) {
				w.TryTake(p, st.First) // records a fork-busy event, cannot succeed
				return
			}
			w.RecordBlockedByCond(p, st.First)
		})

	case lr2TrySecond:
		return one("try second fork", func() {
			second := w.Topo.OtherFork(p, st.First)
			allowed := !a.opts.CourtesyOnBothForks || w.Cond(p, second)
			if allowed && w.TryTake(p, second) {
				w.MarkHoldingSecond(p)
				w.StartEating(p)
				st.PC = lr2Eat
				return
			}
			if !allowed {
				w.RecordBlockedByCond(p, second)
			}
			w.Release(p, st.First)
			w.ClearSelection(p)
			st.PC = lr2Choose
		})

	case lr2Eat:
		return one("eat", func() {
			w.FinishEating(p)
			st.PC = lr2Unrequest
		})

	case lr2Unrequest:
		return one("remove requests", func() {
			w.Unrequest(p, left)
			w.Unrequest(p, right)
			st.PC = lr2Sign
		})

	case lr2Sign:
		return one("sign guest books", func() {
			w.SignGuestBook(p, left)
			w.SignGuestBook(p, right)
			st.PC = lr2Release
		})

	case lr2Release:
		return one("release forks", func() {
			w.ReleaseAll(p)
			w.BackToThinking(p, lr2Think)
		})

	default:
		panic(fmt.Sprintf("algo: LR2 philosopher %d has invalid pc %d", p, st.PC))
	}
}

package algo

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/prng"
	"repro/internal/sim"
)

// TestSimulationStepDoesNotAllocate pins the headline property of the
// zero-allocation refactor: a full simulation step — computing a
// philosopher's outcome set into a reused scratch buffer, sampling one
// outcome and applying it — performs no heap allocations in steady state,
// for every algorithm of the paper and every baseline. Outcome sets are built
// from static Apply functions plus an Arg (no closures), the scratch buffer
// is reused, and sampling walks the probabilities in place.
func TestSimulationStepDoesNotAllocate(t *testing.T) {
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			prog, err := New(name, Options{})
			if err != nil {
				t.Fatal(err)
			}
			topo := graph.Ring(5)
			w := sim.NewWorld(topo)
			prog.Init(w)
			rng := prng.New(42)
			var buf []sim.Outcome
			nextPhil := 0
			step := func() {
				p := graph.PhilID(nextPhil % topo.NumPhilosophers())
				nextPhil++
				outcomes := prog.Outcomes(w, p, buf[:0])
				buf = outcomes
				sim.SampleOutcome(outcomes, rng).Do(w, p)
				w.Step++
			}
			// Warm up: grow the scratch buffer to its steady-state capacity
			// (the widest outcome set is the GDP renumber draw, m outcomes)
			// and let the naive baseline reach its deadlock, the deepest
			// state any program settles into.
			for i := 0; i < 2000; i++ {
				step()
			}
			if allocs := testing.AllocsPerRun(2000, step); allocs != 0 {
				t.Errorf("%s: a steady-state simulation step allocates %.2f times, want 0", name, allocs)
			}
		})
	}
}

// TestRunWorldSteadyStateAllocations verifies the same property end to end
// through the engine: doubling the steps of a run must not measurably
// increase its allocations, i.e. the per-step cost of sim.RunWorld is
// allocation-free (the fixed per-run setup — result slices, trackers — is
// allowed).
func TestRunWorldSteadyStateAllocations(t *testing.T) {
	run := func(steps int64) func() {
		return func() {
			prog := NewGDP2(Options{})
			topo := graph.Ring(7)
			rr := sim.SchedulerFunc{
				SchedulerName: "alloc-round-robin",
				NextFunc: func(w *sim.World) graph.PhilID {
					return graph.PhilID(w.Step % int64(len(w.Phils)))
				},
			}
			if _, err := sim.Run(topo, prog, rr, prng.New(7), sim.RunOptions{MaxSteps: steps}); err != nil {
				t.Fatal(err)
			}
		}
	}
	short := testing.AllocsPerRun(20, run(2_000))
	long := testing.AllocsPerRun(20, run(20_000))
	// 18k extra steps may add at most a few allocations (scratch growth on
	// the first iterations); anything proportional to the step count fails.
	if long > short+16 {
		t.Errorf("10x steps raised allocations from %.1f to %.1f; the step loop is allocating", short, long)
	}
}

// TestOutcomeBufferReuse checks that Outcomes actually appends into the
// provided buffer instead of allocating a new one when capacity suffices.
func TestOutcomeBufferReuse(t *testing.T) {
	prog := NewLR1(Options{})
	w := sim.NewWorld(graph.Ring(3))
	prog.Init(w)
	buf := make([]sim.Outcome, 0, 8)
	out := prog.Outcomes(w, 0, buf)
	if len(out) == 0 {
		t.Fatal("no outcomes")
	}
	if &out[0] != &buf[0:1][0] {
		t.Error("Outcomes did not append into the caller's scratch buffer")
	}
}

func BenchmarkOutcomesPerStep(b *testing.B) {
	for _, name := range []string{"LR1", "LR2", "GDP1", "GDP2"} {
		b.Run(name, func(b *testing.B) {
			prog, err := New(name, Options{})
			if err != nil {
				b.Fatal(err)
			}
			topo := graph.Ring(9)
			w := sim.NewWorld(topo)
			prog.Init(w)
			rng := prng.New(1)
			var buf []sim.Outcome
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p := graph.PhilID(i % topo.NumPhilosophers())
				outcomes := prog.Outcomes(w, p, buf[:0])
				buf = outcomes
				sim.SampleOutcome(outcomes, rng).Do(w, p)
				w.Step++
			}
		})
	}
}

package algo

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/sim"
)

// Program-counter values for GDP2, matching the line numbers of Table 4:
//
//  1. think
//  2. insert(id, left.r); insert(id, right.r)
//  3. if left.nr > right.nr then fork := left else fork := right
//  4. if isFree(fork) and Cond(fork) then take(fork) else goto 4
//  5. if fork.nr = other(fork).nr then fork.nr := random[1, m]
//  6. if isFree(other(fork)) then take(other(fork))
//     else { release(fork); goto 3 }
//  7. eat
//  8. remove(id, left.r); remove(id, right.r)
//  9. insert(id, left.g); insert(id, right.g)
//  10. release(fork); release(other(fork)); goto 1
//
// (The published Table 4 prints line 4 without the Cond(fork) conjunct, but
// Section 5 introduces the request lists and guest books precisely so that
// "the test Cond(fork) is defined in the same way as in Section 3.2"; we
// therefore include the courtesy test on the first fork exactly as LR2 does.
// Options.DisableCourtesy removes it for ablation.)
const (
	gdp2Think     = 1
	gdp2Request   = 2
	gdp2Select    = 3
	gdp2TakeFirst = 4
	gdp2Renumber  = 5
	gdp2TrySecond = 6
	gdp2Eat       = 7
	gdp2Unrequest = 8
	gdp2Sign      = 9
	gdp2Release   = 10
)

// GDP2 is the paper's lockout-free algorithm (Table 4, Theorem 4): GDP1's
// random fork numbering combined with LR2's request lists and guest books, so
// that a philosopher that has just eaten defers to hungry neighbours that
// have not.
type GDP2 struct {
	opts Options
}

// NewGDP2 returns GDP2 configured with opts.
func NewGDP2(opts Options) *GDP2 { return &GDP2{opts: opts} }

// Name implements sim.Program.
func (*GDP2) Name() string { return "GDP2" }

// Symmetric implements sim.Program: GDP2 is symmetric and fully distributed.
func (*GDP2) Symmetric() bool { return true }

// Init implements sim.Program.
func (*GDP2) Init(*sim.World) {}

// Outcomes implements sim.Program.
func (a *GDP2) Outcomes(w *sim.World, p graph.PhilID, buf []sim.Outcome) []sim.Outcome {
	st := &w.Phils[p]
	switch st.PC {
	case gdp2Think:
		return sim.ThinkOutcomes(w, p, buf, gdp2Request)

	case gdp2Request:
		return one(buf, "insert requests", 0, gdp2ApplyRequest)

	case gdp2Select:
		return one(buf, "select higher-numbered fork", 0, gdp2ApplySelect)

	case gdp2TakeFirst:
		return one(buf, "take first fork (courteous)", a.opts.courtesyFlags(), gdp2ApplyTakeFirst)

	case gdp2Renumber:
		second := w.Topo.OtherFork(p, st.First)
		if w.NR(st.First) != w.NR(second) {
			return one(buf, "numbers already distinct", gdp2TrySecond, applySetPC)
		}
		return uniformNR(buf, a.opts.nrRange(w.Topo), gdp2ApplyRenumber)

	case gdp2TrySecond:
		return one(buf, "try second fork", a.opts.courtesyFlags(), gdp2ApplyTrySecond)

	case gdp2Eat:
		return one(buf, "eat", 0, gdp2ApplyEat)

	case gdp2Unrequest:
		return one(buf, "remove requests", 0, gdp2ApplyUnrequest)

	case gdp2Sign:
		return one(buf, "sign guest books", 0, gdp2ApplySign)

	case gdp2Release:
		return one(buf, "release forks", 0, gdp2ApplyRelease)

	default:
		panic(fmt.Sprintf("algo: GDP2 philosopher %d has invalid pc %d", p, st.PC))
	}
}

func gdp2ApplyRequest(w *sim.World, p graph.PhilID, _ int64) {
	w.Request(p, w.Topo.Left(p))
	w.Request(p, w.Topo.Right(p))
	w.Phils[p].PC = gdp2Select
}

func gdp2ApplySelect(w *sim.World, p graph.PhilID, _ int64) {
	left, right := w.Topo.Left(p), w.Topo.Right(p)
	if w.NR(left) > w.NR(right) {
		w.Commit(p, left)
	} else {
		w.Commit(p, right)
	}
	w.Phils[p].PC = gdp2TakeFirst
}

func gdp2ApplyTakeFirst(w *sim.World, p graph.PhilID, arg int64) {
	st := &w.Phils[p]
	allowed := w.IsFree(st.First) && (arg&flagDisableCourtesy != 0 || w.Cond(p, st.First))
	if allowed {
		if !w.TryTake(p, st.First) {
			return
		}
		w.MarkHoldingFirst(p)
		st.PC = gdp2Renumber
		return
	}
	if !w.IsFree(st.First) {
		w.TryTake(p, st.First) // records fork-busy, cannot succeed
		return
	}
	w.RecordBlockedByCond(p, st.First)
}

func gdp2ApplyRenumber(w *sim.World, p graph.PhilID, arg int64) {
	w.SetNR(p, w.Phils[p].First, int(arg))
	w.Phils[p].PC = gdp2TrySecond
}

func gdp2ApplyTrySecond(w *sim.World, p graph.PhilID, arg int64) {
	st := &w.Phils[p]
	second := w.Topo.OtherFork(p, st.First)
	allowed := arg&flagCourtesyOnBoth == 0 || arg&flagDisableCourtesy != 0 || w.Cond(p, second)
	if allowed && w.TryTake(p, second) {
		w.MarkHoldingSecond(p)
		w.StartEating(p)
		st.PC = gdp2Eat
		return
	}
	if !allowed {
		w.RecordBlockedByCond(p, second)
	}
	w.Release(p, st.First)
	w.ClearSelection(p)
	st.PC = gdp2Select
}

func gdp2ApplyEat(w *sim.World, p graph.PhilID, _ int64) {
	w.FinishEating(p)
	w.Phils[p].PC = gdp2Unrequest
}

func gdp2ApplyUnrequest(w *sim.World, p graph.PhilID, _ int64) {
	w.Unrequest(p, w.Topo.Left(p))
	w.Unrequest(p, w.Topo.Right(p))
	w.Phils[p].PC = gdp2Sign
}

func gdp2ApplySign(w *sim.World, p graph.PhilID, _ int64) {
	w.SignGuestBook(p, w.Topo.Left(p))
	w.SignGuestBook(p, w.Topo.Right(p))
	w.Phils[p].PC = gdp2Release
}

func gdp2ApplyRelease(w *sim.World, p graph.PhilID, _ int64) {
	w.ReleaseAll(p)
	w.BackToThinking(p, gdp2Think)
}

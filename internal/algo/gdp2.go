package algo

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/sim"
)

// Program-counter values for GDP2, matching the line numbers of Table 4:
//
//  1. think
//  2. insert(id, left.r); insert(id, right.r)
//  3. if left.nr > right.nr then fork := left else fork := right
//  4. if isFree(fork) and Cond(fork) then take(fork) else goto 4
//  5. if fork.nr = other(fork).nr then fork.nr := random[1, m]
//  6. if isFree(other(fork)) then take(other(fork))
//     else { release(fork); goto 3 }
//  7. eat
//  8. remove(id, left.r); remove(id, right.r)
//  9. insert(id, left.g); insert(id, right.g)
//  10. release(fork); release(other(fork)); goto 1
//
// (The published Table 4 prints line 4 without the Cond(fork) conjunct, but
// Section 5 introduces the request lists and guest books precisely so that
// "the test Cond(fork) is defined in the same way as in Section 3.2"; we
// therefore include the courtesy test on the first fork exactly as LR2 does.
// Options.DisableCourtesy removes it for ablation.)
const (
	gdp2Think     = 1
	gdp2Request   = 2
	gdp2Select    = 3
	gdp2TakeFirst = 4
	gdp2Renumber  = 5
	gdp2TrySecond = 6
	gdp2Eat       = 7
	gdp2Unrequest = 8
	gdp2Sign      = 9
	gdp2Release   = 10
)

// GDP2 is the paper's lockout-free algorithm (Table 4, Theorem 4): GDP1's
// random fork numbering combined with LR2's request lists and guest books, so
// that a philosopher that has just eaten defers to hungry neighbours that
// have not.
type GDP2 struct {
	opts Options
}

// NewGDP2 returns GDP2 configured with opts.
func NewGDP2(opts Options) *GDP2 { return &GDP2{opts: opts} }

// Name implements sim.Program.
func (*GDP2) Name() string { return "GDP2" }

// Symmetric implements sim.Program: GDP2 is symmetric and fully distributed.
func (*GDP2) Symmetric() bool { return true }

// Init implements sim.Program.
func (*GDP2) Init(*sim.World) {}

// Outcomes implements sim.Program.
func (a *GDP2) Outcomes(w *sim.World, p graph.PhilID) []sim.Outcome {
	st := &w.Phils[p]
	left, right := w.Topo.Left(p), w.Topo.Right(p)
	switch st.PC {
	case gdp2Think:
		return sim.ThinkOutcomes(w, p, func() {
			w.BecomeHungry(p)
			st.PC = gdp2Request
		})

	case gdp2Request:
		return one("insert requests", func() {
			w.Request(p, left)
			w.Request(p, right)
			st.PC = gdp2Select
		})

	case gdp2Select:
		return one("select higher-numbered fork", func() {
			if w.NR(left) > w.NR(right) {
				w.Commit(p, left)
			} else {
				w.Commit(p, right)
			}
			st.PC = gdp2TakeFirst
		})

	case gdp2TakeFirst:
		return one("take first fork (courteous)", func() {
			allowed := w.IsFree(st.First) && (a.opts.DisableCourtesy || w.Cond(p, st.First))
			if allowed {
				if !w.TryTake(p, st.First) {
					return
				}
				w.MarkHoldingFirst(p)
				st.PC = gdp2Renumber
				return
			}
			if !w.IsFree(st.First) {
				w.TryTake(p, st.First) // records fork-busy, cannot succeed
				return
			}
			w.RecordBlockedByCond(p, st.First)
		})

	case gdp2Renumber:
		second := w.Topo.OtherFork(p, st.First)
		if w.NR(st.First) != w.NR(second) {
			return one("numbers already distinct", func() {
				st.PC = gdp2TrySecond
			})
		}
		m := a.opts.nrRange(w.Topo)
		first := st.First
		return uniformNR(m,
			func(v int) string { return fmt.Sprintf("nr := %d", v) },
			func(v int) {
				w.SetNR(p, first, v)
				st.PC = gdp2TrySecond
			})

	case gdp2TrySecond:
		return one("try second fork", func() {
			second := w.Topo.OtherFork(p, st.First)
			allowed := !a.opts.CourtesyOnBothForks || a.opts.DisableCourtesy || w.Cond(p, second)
			if allowed && w.TryTake(p, second) {
				w.MarkHoldingSecond(p)
				w.StartEating(p)
				st.PC = gdp2Eat
				return
			}
			if !allowed {
				w.RecordBlockedByCond(p, second)
			}
			w.Release(p, st.First)
			w.ClearSelection(p)
			st.PC = gdp2Select
		})

	case gdp2Eat:
		return one("eat", func() {
			w.FinishEating(p)
			st.PC = gdp2Unrequest
		})

	case gdp2Unrequest:
		return one("remove requests", func() {
			w.Unrequest(p, left)
			w.Unrequest(p, right)
			st.PC = gdp2Sign
		})

	case gdp2Sign:
		return one("sign guest books", func() {
			w.SignGuestBook(p, left)
			w.SignGuestBook(p, right)
			st.PC = gdp2Release
		})

	case gdp2Release:
		return one("release forks", func() {
			w.ReleaseAll(p)
			w.BackToThinking(p, gdp2Think)
		})

	default:
		panic(fmt.Sprintf("algo: GDP2 philosopher %d has invalid pc %d", p, st.PC))
	}
}

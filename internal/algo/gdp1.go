package algo

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/sim"
)

// Program-counter values for GDP1, matching the line numbers of Table 3:
//
//  1. think
//  2. if left.nr > right.nr then fork := left else fork := right
//  3. if isFree(fork) then take(fork) else goto 3
//  4. if fork.nr = other(fork).nr then fork.nr := random[1, m]
//  5. if isFree(other(fork)) then take(other(fork))
//     else { release(fork); goto 2 }
//  6. eat
//  7. release(fork); release(other(fork)); goto 1
//
// (In the published Table 3 line 4 reads "fork := random[1,m]"; per the
// accompanying prose — "the philosopher may change the nr value of a fork
// when it finds that it is equal to the nr value of the other fork" — the
// assignment targets the held fork's nr field.)
const (
	gdp1Think     = 1
	gdp1Select    = 2
	gdp1TakeFirst = 3
	gdp1Renumber  = 4
	gdp1TrySecond = 5
	gdp1Eat       = 6
	gdp1Release   = 7
)

// GDP1 is the paper's progress algorithm (Table 3, Theorem 3). Every fork
// carries an integer field nr, initially 0. A hungry philosopher first
// selects the adjacent fork with the strictly larger nr (the right fork on a
// tie), busy-waits to take it, and — if the two adjacent forks have equal nr
// values — re-randomises the held fork's nr over [1, m] with m at least the
// total number of forks. It then tries the second fork once, releasing and
// restarting on failure. Randomising the numbers eventually makes the forks
// around every cycle pairwise distinct, after which the algorithm behaves
// like hierarchical resource allocation along the induced partial order and
// some philosopher must eat under any fair scheduler.
type GDP1 struct {
	opts Options
}

// NewGDP1 returns GDP1 configured with opts.
func NewGDP1(opts Options) *GDP1 { return &GDP1{opts: opts} }

// Name implements sim.Program.
func (*GDP1) Name() string { return "GDP1" }

// Symmetric implements sim.Program: GDP1 is symmetric and fully distributed.
func (*GDP1) Symmetric() bool { return true }

// Init implements sim.Program. Fork nr fields start at 0, which NewWorld
// already guarantees.
func (*GDP1) Init(*sim.World) {}

// Outcomes implements sim.Program.
func (a *GDP1) Outcomes(w *sim.World, p graph.PhilID, buf []sim.Outcome) []sim.Outcome {
	st := &w.Phils[p]
	switch st.PC {
	case gdp1Think:
		return sim.ThinkOutcomes(w, p, buf, gdp1Select)

	case gdp1Select:
		return one(buf, "select higher-numbered fork", 0, gdp1ApplySelect)

	case gdp1TakeFirst:
		return one(buf, "take first fork", 0, gdp1ApplyTakeFirst)

	case gdp1Renumber:
		second := w.Topo.OtherFork(p, st.First)
		if w.NR(st.First) != w.NR(second) {
			return one(buf, "numbers already distinct", gdp1TrySecond, applySetPC)
		}
		return uniformNR(buf, a.opts.nrRange(w.Topo), gdp1ApplyRenumber)

	case gdp1TrySecond:
		return one(buf, "try second fork", 0, gdp1ApplyTrySecond)

	case gdp1Eat:
		return one(buf, "eat", 0, gdp1ApplyEat)

	case gdp1Release:
		return one(buf, "release forks", 0, gdp1ApplyRelease)

	default:
		panic(fmt.Sprintf("algo: GDP1 philosopher %d has invalid pc %d", p, st.PC))
	}
}

func gdp1ApplySelect(w *sim.World, p graph.PhilID, _ int64) {
	left, right := w.Topo.Left(p), w.Topo.Right(p)
	if w.NR(left) > w.NR(right) {
		w.Commit(p, left)
	} else {
		w.Commit(p, right)
	}
	w.Phils[p].PC = gdp1TakeFirst
}

func gdp1ApplyTakeFirst(w *sim.World, p graph.PhilID, _ int64) {
	if w.TryTake(p, w.Phils[p].First) {
		w.MarkHoldingFirst(p)
		w.Phils[p].PC = gdp1Renumber
	}
	// else: busy wait at line 3.
}

func gdp1ApplyRenumber(w *sim.World, p graph.PhilID, arg int64) {
	w.SetNR(p, w.Phils[p].First, int(arg))
	w.Phils[p].PC = gdp1TrySecond
}

func gdp1ApplyTrySecond(w *sim.World, p graph.PhilID, _ int64) {
	st := &w.Phils[p]
	second := w.Topo.OtherFork(p, st.First)
	if w.TryTake(p, second) {
		w.MarkHoldingSecond(p)
		w.StartEating(p)
		st.PC = gdp1Eat
	} else {
		w.Release(p, st.First)
		w.ClearSelection(p)
		st.PC = gdp1Select
	}
}

func gdp1ApplyEat(w *sim.World, p graph.PhilID, _ int64) {
	w.FinishEating(p)
	w.Phils[p].PC = gdp1Release
}

func gdp1ApplyRelease(w *sim.World, p graph.PhilID, _ int64) {
	w.ReleaseAll(p)
	w.BackToThinking(p, gdp1Think)
}

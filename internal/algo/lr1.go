package algo

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/sim"
)

// Program-counter values for LR1, matching the line numbers of Table 1:
//
//  1. think
//  2. fork := random_choice(left, right)
//  3. if isFree(fork) then take(fork) else goto 3
//  4. if isFree(other(fork)) then take(other(fork))
//     else { release(fork); goto 2 }
//  5. eat
//  6. release(fork); release(other(fork)); goto 1
const (
	lr1Think     = 1
	lr1Choose    = 2
	lr1TakeFirst = 3
	lr1TrySecond = 4
	lr1Eat       = 5
	lr1Release   = 6
)

// LR1 is the first algorithm of Lehmann and Rabin (Table 1): a hungry
// philosopher randomly commits to one of its forks, busy-waits to take it,
// then tries the other fork once; on failure it releases the first fork and
// draws again. LR1 guarantees progress with probability 1 on the classic ring
// but not on generalized topologies (Theorem 1).
type LR1 struct {
	opts Options
}

// NewLR1 returns LR1 configured with opts.
func NewLR1(opts Options) *LR1 { return &LR1{opts: opts} }

// Name implements sim.Program.
func (*LR1) Name() string { return "LR1" }

// Symmetric implements sim.Program: LR1 is symmetric and fully distributed.
func (*LR1) Symmetric() bool { return true }

// SideSymmetric implements sim.SideSymmetricProgram: with the default fair
// coin LR1 treats left and right forks identically; a biased coin breaks the
// left/right symmetry.
func (a *LR1) SideSymmetric() bool { return a.opts.leftBias() == 0.5 }

// Init implements sim.Program. LR1 needs no state beyond NewWorld's defaults.
func (*LR1) Init(*sim.World) {}

// Outcomes implements sim.Program.
func (a *LR1) Outcomes(w *sim.World, p graph.PhilID, buf []sim.Outcome) []sim.Outcome {
	st := &w.Phils[p]
	switch st.PC {
	case lr1Think:
		return sim.ThinkOutcomes(w, p, buf, lr1Choose)

	case lr1Choose:
		return coinFlip(buf, a.opts.leftBias(),
			sim.Outcome{Label: "commit left", Arg: int64(w.Topo.Left(p)), Apply: lr1ApplyCommit},
			sim.Outcome{Label: "commit right", Arg: int64(w.Topo.Right(p)), Apply: lr1ApplyCommit},
		)

	case lr1TakeFirst:
		return one(buf, "take first fork", 0, lr1ApplyTakeFirst)

	case lr1TrySecond:
		return one(buf, "try second fork", 0, lr1ApplyTrySecond)

	case lr1Eat:
		return one(buf, "eat", 0, lr1ApplyEat)

	case lr1Release:
		return one(buf, "release forks", 0, lr1ApplyRelease)

	default:
		panic(fmt.Sprintf("algo: LR1 philosopher %d has invalid pc %d", p, st.PC))
	}
}

func lr1ApplyCommit(w *sim.World, p graph.PhilID, arg int64) {
	w.Commit(p, graph.ForkID(arg))
	w.Phils[p].PC = lr1TakeFirst
}

func lr1ApplyTakeFirst(w *sim.World, p graph.PhilID, _ int64) {
	if w.TryTake(p, w.Phils[p].First) {
		w.MarkHoldingFirst(p)
		w.Phils[p].PC = lr1TrySecond
	}
	// else: busy wait, PC stays at 3.
}

func lr1ApplyTrySecond(w *sim.World, p graph.PhilID, _ int64) {
	st := &w.Phils[p]
	second := w.Topo.OtherFork(p, st.First)
	if w.TryTake(p, second) {
		w.MarkHoldingSecond(p)
		w.StartEating(p)
		st.PC = lr1Eat
	} else {
		w.Release(p, st.First)
		w.ClearSelection(p)
		st.PC = lr1Choose
	}
}

func lr1ApplyEat(w *sim.World, p graph.PhilID, _ int64) {
	w.FinishEating(p)
	w.Phils[p].PC = lr1Release
}

func lr1ApplyRelease(w *sim.World, p graph.PhilID, _ int64) {
	w.ReleaseAll(p)
	w.BackToThinking(p, lr1Think)
}

package algo

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/sim"
)

// This file implements the four classical solutions sketched in the paper's
// introduction as baselines. None of them satisfies both of the paper's
// conditions: the first two break symmetry (philosophers or forks are
// distinguishable), the last two break full distribution (they rely on a
// central monitor or a shared ticket box). They are included for the
// comparative benchmarks and to illustrate, by contrast, what the symmetric
// fully distributed algorithms achieve.

// --- Ordered forks (hierarchical resource allocation) ---

const (
	ordThink    = 1
	ordTakeLow  = 2
	ordTakeHigh = 3
	ordEat      = 4
	ordRelease  = 5
)

// OrderedForks is the classical deterministic solution via a global total
// order on forks: every philosopher first acquires its lower-numbered fork,
// holding it while waiting for the higher-numbered one. It is deadlock-free on
// every topology (the wait-for relation follows the fork order) but breaks
// the symmetry condition: fork identities are globally ordered, so forks are
// distinguishable.
type OrderedForks struct{}

// NewOrderedForks returns the ordered-fork baseline.
func NewOrderedForks() *OrderedForks { return &OrderedForks{} }

// Name implements sim.Program.
func (*OrderedForks) Name() string { return "ordered-forks" }

// Symmetric implements sim.Program.
func (*OrderedForks) Symmetric() bool { return false }

// Init implements sim.Program.
func (*OrderedForks) Init(*sim.World) {}

// Outcomes implements sim.Program.
func (*OrderedForks) Outcomes(w *sim.World, p graph.PhilID, buf []sim.Outcome) []sim.Outcome {
	st := &w.Phils[p]
	switch st.PC {
	case ordThink:
		return sim.ThinkOutcomes(w, p, buf, ordTakeLow)
	case ordTakeLow:
		return one(buf, "take low fork", 0, ordApplyTakeLow)
	case ordTakeHigh:
		return one(buf, "take high fork", 0, ordApplyTakeHigh)
	case ordEat:
		return one(buf, "eat", 0, ordApplyEat)
	case ordRelease:
		return one(buf, "release forks", 0, ordApplyRelease)
	default:
		panic(fmt.Sprintf("algo: ordered-forks philosopher %d has invalid pc %d", p, st.PC))
	}
}

// orderedForksOf returns p's forks as (low, high) in the global fork order.
func orderedForksOf(w *sim.World, p graph.PhilID) (graph.ForkID, graph.ForkID) {
	low, high := w.Topo.Left(p), w.Topo.Right(p)
	if low > high {
		low, high = high, low
	}
	return low, high
}

func ordApplyTakeLow(w *sim.World, p graph.PhilID, _ int64) {
	low, _ := orderedForksOf(w, p)
	w.Commit(p, low)
	if w.TryTake(p, low) {
		w.MarkHoldingFirst(p)
		w.Phils[p].PC = ordTakeHigh
	}
}

func ordApplyTakeHigh(w *sim.World, p graph.PhilID, _ int64) {
	_, high := orderedForksOf(w, p)
	if w.TryTake(p, high) {
		w.MarkHoldingSecond(p)
		w.StartEating(p)
		w.Phils[p].PC = ordEat
	}
	// else: hold the low fork and busy wait (hierarchical allocation never
	// releases while waiting).
}

func ordApplyEat(w *sim.World, p graph.PhilID, _ int64) {
	w.FinishEating(p)
	w.Phils[p].PC = ordRelease
}

func ordApplyRelease(w *sim.World, p graph.PhilID, _ int64) {
	w.ReleaseAll(p)
	w.BackToThinking(p, ordThink)
}

// --- Naive left-first philosophers ---

// Naive is the textbook broken solution: every philosopher takes its left
// fork first and holds it while waiting for the right fork. It is symmetric
// and fully distributed but deterministic, so — as Lehmann and Rabin's
// impossibility result predicts — it cannot be correct: on any ring the
// adversary (or plain round-robin scheduling) drives it into the circular
// hold-and-wait deadlock. It exists as the negative control for the deadlock
// detectors and benchmarks.
type Naive struct{}

// NewNaive returns the naive left-first baseline.
func NewNaive() *Naive { return &Naive{} }

// Name implements sim.Program.
func (*Naive) Name() string { return "naive-left-first" }

// Symmetric implements sim.Program: the code is symmetric and fully
// distributed — which is exactly why it cannot work.
func (*Naive) Symmetric() bool { return true }

// Init implements sim.Program.
func (*Naive) Init(*sim.World) {}

// Outcomes implements sim.Program.
func (*Naive) Outcomes(w *sim.World, p graph.PhilID, buf []sim.Outcome) []sim.Outcome {
	st := &w.Phils[p]
	switch st.PC {
	case colThink:
		return sim.ThinkOutcomes(w, p, buf, colTakeA)
	case colTakeA:
		return one(buf, "take left fork", int64(w.Topo.Left(p)), holdWaitApplyTakeFirst)
	case colTakeB:
		return one(buf, "take right fork", 0, holdWaitApplyTakeSecond)
	case colEat:
		return one(buf, "eat", 0, holdWaitApplyEat)
	case colRelease:
		return one(buf, "release forks", 0, holdWaitApplyRelease)
	default:
		panic(fmt.Sprintf("algo: naive philosopher %d has invalid pc %d", p, st.PC))
	}
}

// The hold-and-wait apply functions are shared by the naive and colored
// baselines: both commit to a rule-determined first fork (passed as arg) and
// hold it while busy-waiting for the second.

func holdWaitApplyTakeFirst(w *sim.World, p graph.PhilID, arg int64) {
	f := graph.ForkID(arg)
	w.Commit(p, f)
	if w.TryTake(p, f) {
		w.MarkHoldingFirst(p)
		w.Phils[p].PC = colTakeB
	}
}

func holdWaitApplyTakeSecond(w *sim.World, p graph.PhilID, _ int64) {
	second := w.Topo.OtherFork(p, w.Phils[p].First)
	if w.TryTake(p, second) {
		w.MarkHoldingSecond(p)
		w.StartEating(p)
		w.Phils[p].PC = colEat
	}
}

func holdWaitApplyEat(w *sim.World, p graph.PhilID, _ int64) {
	w.FinishEating(p)
	w.Phils[p].PC = colRelease
}

func holdWaitApplyRelease(w *sim.World, p graph.PhilID, _ int64) {
	w.ReleaseAll(p)
	w.BackToThinking(p, colThink)
}

// --- Colored philosophers ---

const (
	colThink   = 1
	colTakeA   = 2
	colTakeB   = 3
	colEat     = 4
	colRelease = 5
)

// Colored is the classical two-coloring solution: "yellow" philosophers (even
// IDs) take their left fork first, "blue" philosophers (odd IDs) take their
// right fork first, each holding the first fork while waiting for the second.
// On an even classic ring the coloring alternates around the table and the
// solution is deadlock-free; on odd rings and on generalized topologies the
// ID-parity coloring is not a proper alternation and the algorithm can
// deadlock — which the deadlock benchmarks demonstrate. It breaks the
// symmetry condition: philosophers are distinguishable by color.
type Colored struct{}

// NewColored returns the colored-philosophers baseline.
func NewColored() *Colored { return &Colored{} }

// Name implements sim.Program.
func (*Colored) Name() string { return "colored" }

// Symmetric implements sim.Program.
func (*Colored) Symmetric() bool { return false }

// Init implements sim.Program.
func (*Colored) Init(*sim.World) {}

// Outcomes implements sim.Program.
func (*Colored) Outcomes(w *sim.World, p graph.PhilID, buf []sim.Outcome) []sim.Outcome {
	st := &w.Phils[p]
	first := w.Topo.Left(p)
	if p%2 == 1 {
		first = w.Topo.Right(p)
	}
	switch st.PC {
	case colThink:
		return sim.ThinkOutcomes(w, p, buf, colTakeA)
	case colTakeA:
		return one(buf, "take first fork (by color)", int64(first), holdWaitApplyTakeFirst)
	case colTakeB:
		return one(buf, "take second fork (by color)", 0, holdWaitApplyTakeSecond)
	case colEat:
		return one(buf, "eat", 0, holdWaitApplyEat)
	case colRelease:
		return one(buf, "release forks", 0, holdWaitApplyRelease)
	default:
		panic(fmt.Sprintf("algo: colored philosopher %d has invalid pc %d", p, st.PC))
	}
}

// --- Central monitor ---

const (
	monThink   = 1
	monAcquire = 2
	monGrab    = 3
	monEat     = 4
	monRelease = 5
)

// monitorTokenGlobal is the index of the global register holding the monitor
// token: 0 when free, p+1 when philosopher p holds it.
const monitorTokenGlobal = 0

// CentralMonitor is the classical centralized solution: a single monitor
// serialises fork acquisition, and a philosopher that holds the monitor takes
// both forks atomically if both are free (otherwise it releases the monitor
// and retries). It trivially ensures progress but breaks full distribution.
type CentralMonitor struct{}

// NewCentralMonitor returns the central-monitor baseline.
func NewCentralMonitor() *CentralMonitor { return &CentralMonitor{} }

// Name implements sim.Program.
func (*CentralMonitor) Name() string { return "central-monitor" }

// Symmetric implements sim.Program: the code is identical for every
// philosopher, but the solution is not fully distributed (shared monitor), so
// it does not satisfy the paper's conditions.
func (*CentralMonitor) Symmetric() bool { return false }

// Init implements sim.Program.
func (*CentralMonitor) Init(w *sim.World) { w.EnsureGlobals(1) }

// Outcomes implements sim.Program.
func (*CentralMonitor) Outcomes(w *sim.World, p graph.PhilID, buf []sim.Outcome) []sim.Outcome {
	st := &w.Phils[p]
	switch st.PC {
	case monThink:
		return sim.ThinkOutcomes(w, p, buf, monAcquire)
	case monAcquire:
		return one(buf, "acquire monitor", 0, monApplyAcquire)
	case monGrab:
		return one(buf, "take both forks under monitor", 0, monApplyGrab)
	case monEat:
		return one(buf, "eat", 0, monApplyEat)
	case monRelease:
		return one(buf, "release forks", 0, monApplyRelease)
	default:
		panic(fmt.Sprintf("algo: central-monitor philosopher %d has invalid pc %d", p, st.PC))
	}
}

func monApplyAcquire(w *sim.World, p graph.PhilID, _ int64) {
	if w.Global(monitorTokenGlobal) == 0 {
		w.SetGlobal(monitorTokenGlobal, int64(p)+1)
		w.Phils[p].PC = monGrab
	}
}

func monApplyGrab(w *sim.World, p graph.PhilID, _ int64) {
	left, right := w.Topo.Left(p), w.Topo.Right(p)
	if w.IsFree(left) && w.IsFree(right) {
		w.Commit(p, left)
		w.TryTake(p, left)
		w.MarkHoldingFirst(p)
		w.TryTake(p, right)
		w.MarkHoldingSecond(p)
		w.StartEating(p)
		w.SetGlobal(monitorTokenGlobal, 0)
		w.Phils[p].PC = monEat
	} else {
		w.SetGlobal(monitorTokenGlobal, 0)
		w.Phils[p].PC = monAcquire
	}
}

func monApplyEat(w *sim.World, p graph.PhilID, _ int64) {
	w.FinishEating(p)
	w.Phils[p].PC = monRelease
}

func monApplyRelease(w *sim.World, p graph.PhilID, _ int64) {
	w.ReleaseAll(p)
	w.BackToThinking(p, monThink)
}

// --- Ticket box ---

const (
	tktThink     = 1
	tktAcquire   = 2
	tktTakeLeft  = 3
	tktTakeRight = 4
	tktEat       = 5
	tktRelease   = 6
)

// ticketsGlobal is the index of the global register holding the number of
// available tickets.
const ticketsGlobal = 0

// TicketBox is the classical solution via a box of n−1 tickets: a hungry
// philosopher must obtain a ticket before acquiring its forks (left then
// right, holding while waiting) and returns the ticket after eating. On the
// classic ring, limiting the number of simultaneous contenders to n−1
// prevents the circular wait; the bound does not generalize to arbitrary
// topologies. It breaks full distribution (the ticket box is shared).
type TicketBox struct {
	// Tickets is the number of tickets in the box; 0 means "one fewer than
	// the number of philosophers", the paper's formulation.
	Tickets int
}

// NewTicketBox returns the ticket-box baseline with the given number of
// tickets (0 = philosophers − 1).
func NewTicketBox(tickets int) *TicketBox { return &TicketBox{Tickets: tickets} }

// Name implements sim.Program.
func (*TicketBox) Name() string { return "ticket-box" }

// Symmetric implements sim.Program.
func (*TicketBox) Symmetric() bool { return false }

// Init implements sim.Program.
func (t *TicketBox) Init(w *sim.World) {
	tickets := t.Tickets
	if tickets <= 0 {
		tickets = w.Topo.NumPhilosophers() - 1
	}
	w.EnsureGlobals(1)
	w.SetGlobal(ticketsGlobal, int64(tickets))
}

// Outcomes implements sim.Program.
func (*TicketBox) Outcomes(w *sim.World, p graph.PhilID, buf []sim.Outcome) []sim.Outcome {
	st := &w.Phils[p]
	switch st.PC {
	case tktThink:
		return sim.ThinkOutcomes(w, p, buf, tktAcquire)
	case tktAcquire:
		return one(buf, "acquire ticket", 0, tktApplyAcquire)
	case tktTakeLeft:
		return one(buf, "take left fork", 0, tktApplyTakeLeft)
	case tktTakeRight:
		return one(buf, "take right fork", 0, tktApplyTakeRight)
	case tktEat:
		return one(buf, "eat", 0, tktApplyEat)
	case tktRelease:
		return one(buf, "release forks and ticket", 0, tktApplyRelease)
	default:
		panic(fmt.Sprintf("algo: ticket-box philosopher %d has invalid pc %d", p, st.PC))
	}
}

func tktApplyAcquire(w *sim.World, p graph.PhilID, _ int64) {
	if w.Global(ticketsGlobal) > 0 {
		w.SetGlobal(ticketsGlobal, w.Global(ticketsGlobal)-1)
		w.Phils[p].Aux[0] = 1
		w.Phils[p].PC = tktTakeLeft
	}
}

func tktApplyTakeLeft(w *sim.World, p graph.PhilID, _ int64) {
	left := w.Topo.Left(p)
	w.Commit(p, left)
	if w.TryTake(p, left) {
		w.MarkHoldingFirst(p)
		w.Phils[p].PC = tktTakeRight
	}
}

func tktApplyTakeRight(w *sim.World, p graph.PhilID, _ int64) {
	if w.TryTake(p, w.Topo.Right(p)) {
		w.MarkHoldingSecond(p)
		w.StartEating(p)
		w.Phils[p].PC = tktEat
	}
}

func tktApplyEat(w *sim.World, p graph.PhilID, _ int64) {
	w.FinishEating(p)
	w.Phils[p].PC = tktRelease
}

func tktApplyRelease(w *sim.World, p graph.PhilID, _ int64) {
	w.ReleaseAll(p)
	w.SetGlobal(ticketsGlobal, w.Global(ticketsGlobal)+1)
	w.Phils[p].Aux[0] = 0
	w.BackToThinking(p, tktThink)
}

// Package algo implements the philosopher algorithms studied in the paper as
// programs over the sim engine:
//
//   - LR1  — Lehmann & Rabin's free-choice algorithm (Table 1).
//   - LR2  — Lehmann & Rabin's courteous, lockout-free algorithm generalized
//     with request lists and guest books (Table 2).
//   - GDP1 — the paper's progress algorithm based on random fork numbering
//     (Table 3).
//   - GDP2 — the paper's lockout-free variant (Table 4).
//
// plus the classical non-symmetric / non-distributed baselines sketched in
// the introduction (ordered forks, colored philosophers, central monitor,
// ticket box), which are useful as comparison points in the benchmarks.
//
// Every program is a state machine over the philosopher's program counter
// (PhilState.PC), with PC values matching the line numbers of the paper's
// pseudo-code tables. Each atomic action of the pseudo-code is one sim.Outcome,
// so an adversarial scheduler can interleave the philosophers at exactly the
// granularity assumed by the paper.
package algo

import (
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/sim"
)

// one wraps a single deterministic action as an outcome set.
func one(label string, apply func()) []sim.Outcome {
	return []sim.Outcome{{Prob: 1, Label: label, Apply: apply}}
}

// coinFlip returns the two-outcome set of the algorithms' random_choice(left,
// right) draw. pLeft is the probability of choosing the left fork; the paper
// uses 1/2 but notes the negative results do not depend on the value.
func coinFlip(pLeft float64, left, right sim.Outcome) []sim.Outcome {
	if pLeft <= 0 {
		right.Prob = 1
		return []sim.Outcome{right}
	}
	if pLeft >= 1 {
		left.Prob = 1
		return []sim.Outcome{left}
	}
	left.Prob = pLeft
	right.Prob = 1 - pLeft
	return []sim.Outcome{left, right}
}

// uniformNR returns the outcome set of the GDP step "fork.nr := random[1, m]":
// one outcome per value in [1, m], each with probability 1/m.
func uniformNR(m int, label func(v int) string, apply func(v int)) []sim.Outcome {
	outcomes := make([]sim.Outcome, m)
	p := 1.0 / float64(m)
	for v := 1; v <= m; v++ {
		v := v
		outcomes[v-1] = sim.Outcome{
			Prob:  p,
			Label: label(v),
			Apply: func() { apply(v) },
		}
	}
	return outcomes
}

// Options configures the tunable parameters shared by the algorithms.
type Options struct {
	// LeftBias is the probability that random_choice(left, right) returns the
	// left fork (LR1, LR2). Zero means the default of 0.5.
	LeftBias float64
	// M is the upper bound of the random fork numbers drawn by GDP1/GDP2
	// (the paper requires m >= k, the number of forks). Zero means "use the
	// number of forks of the topology".
	M int
	// DisableCourtesy turns off the Cond(fork) test in GDP2, reducing it to
	// GDP1 plus bookkeeping; used by ablation benchmarks.
	DisableCourtesy bool
	// CourtesyOnBothForks extends the Cond(fork) test of LR2 and GDP2 to the
	// second fork as well (the paper's Tables 2 and 4 check it only when
	// taking the first fork). The model checker shows that with the
	// first-fork-only reading a fair adversary can still lock an individual
	// philosopher out of GDP2 on the classic ring by always acquiring the
	// shared fork second; checking the condition on both forks removes that
	// trap. See EXPERIMENTS.md, experiment E-T4.
	CourtesyOnBothForks bool
}

// leftBias returns the configured or default probability of picking left.
func (o Options) leftBias() float64 {
	if o.LeftBias <= 0 || o.LeftBias >= 1 {
		return 0.5
	}
	return o.LeftBias
}

// nrRange returns the configured or default value of m for a topology,
// enforcing the paper's requirement m >= k.
func (o Options) nrRange(topo *graph.Topology) int {
	m := o.M
	if m < topo.NumForks() {
		m = topo.NumForks()
	}
	if m < 1 {
		m = 1
	}
	return m
}

// Registry lists the implemented algorithms by name.
//
// New constructs a fresh program for the given options; programs are
// stateless between runs (all run state lives in the World), so a single
// instance may be reused across runs, but constructing per run is cheapest to
// reason about.
var registry = map[string]func(Options) sim.Program{
	"LR1":              func(o Options) sim.Program { return NewLR1(o) },
	"LR2":              func(o Options) sim.Program { return NewLR2(o) },
	"GDP1":             func(o Options) sim.Program { return NewGDP1(o) },
	"GDP2":             func(o Options) sim.Program { return NewGDP2(o) },
	"ordered-forks":    func(o Options) sim.Program { return NewOrderedForks() },
	"colored":          func(o Options) sim.Program { return NewColored() },
	"naive-left-first": func(o Options) sim.Program { return NewNaive() },
	"central-monitor":  func(o Options) sim.Program { return NewCentralMonitor() },
	"ticket-box":       func(o Options) sim.Program { return NewTicketBox(0) },
}

// New returns the named algorithm configured with opts, or an error listing
// the available names.
func New(name string, opts Options) (sim.Program, error) {
	ctor, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("algo: unknown algorithm %q (available: %v)", name, Names())
	}
	return ctor(opts), nil
}

// Names returns the registered algorithm names in sorted order.
func Names() []string {
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// PaperAlgorithms returns the four algorithms of the paper's tables, in table
// order, configured with opts.
func PaperAlgorithms(opts Options) []sim.Program {
	return []sim.Program{NewLR1(opts), NewLR2(opts), NewGDP1(opts), NewGDP2(opts)}
}

// Package algo implements the philosopher algorithms studied in the paper as
// programs over the sim engine:
//
//   - LR1  — Lehmann & Rabin's free-choice algorithm (Table 1).
//   - LR2  — Lehmann & Rabin's courteous, lockout-free algorithm generalized
//     with request lists and guest books (Table 2).
//   - GDP1 — the paper's progress algorithm based on random fork numbering
//     (Table 3).
//   - GDP2 — the paper's lockout-free variant (Table 4).
//
// plus the classical non-symmetric / non-distributed baselines sketched in
// the introduction (ordered forks, colored philosophers, central monitor,
// ticket box), which are useful as comparison points in the benchmarks.
//
// Every program is a state machine over the philosopher's program counter
// (PhilState.PC), with PC values matching the line numbers of the paper's
// pseudo-code tables. Each atomic action of the pseudo-code is one sim.Outcome,
// so an adversarial scheduler can interleave the philosophers at exactly the
// granularity assumed by the paper.
package algo

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/registry"
	"repro/internal/sim"
)

// The outcome constructors below append to a caller-provided scratch buffer
// and build outcomes from static Apply functions plus an Arg, so that a
// steady-state simulation step performs no heap allocations (see
// sim.Outcome).

// one appends a single deterministic action with probability 1.
func one(buf []sim.Outcome, label string, arg int64, apply func(*sim.World, graph.PhilID, int64)) []sim.Outcome {
	return append(buf, sim.Outcome{Prob: 1, Label: label, Arg: arg, Apply: apply})
}

// coinFlip appends the two-outcome set of the algorithms' random_choice(left,
// right) draw. pLeft is the probability of choosing the left fork; the paper
// uses 1/2 but notes the negative results do not depend on the value.
func coinFlip(buf []sim.Outcome, pLeft float64, left, right sim.Outcome) []sim.Outcome {
	if pLeft <= 0 {
		right.Prob = 1
		return append(buf, right)
	}
	if pLeft >= 1 {
		left.Prob = 1
		return append(buf, left)
	}
	left.Prob = pLeft
	right.Prob = 1 - pLeft
	return append(buf, left, right)
}

// uniformNR appends the outcome set of the GDP step "fork.nr := random[1, m]":
// one outcome per value in [1, m], each with probability 1/m. apply receives
// the drawn value as arg.
func uniformNR(buf []sim.Outcome, m int, apply func(*sim.World, graph.PhilID, int64)) []sim.Outcome {
	p := 1.0 / float64(m)
	for v := 1; v <= m; v++ {
		buf = append(buf, sim.Outcome{
			Prob:  p,
			Label: nrLabel(v),
			Arg:   int64(v),
			Apply: apply,
		})
	}
	return buf
}

// nrLabels precomputes the labels of the common nr draws so that building the
// uniformNR outcome set allocates nothing; draws beyond the table (m beyond
// 256 forks, only reachable through explicit Options.M or very large
// topologies) fall back to fmt.
var nrLabels = func() [257]string {
	var labels [257]string
	for v := range labels {
		labels[v] = fmt.Sprintf("nr := %d", v)
	}
	return labels
}()

func nrLabel(v int) string {
	if v >= 0 && v < len(nrLabels) {
		return nrLabels[v]
	}
	//dplint:ok hotalloc cold fallback: only reachable for m beyond the 256-entry precomputed label table
	return fmt.Sprintf("nr := %d", v)
}

// applySetPC is the generic "nothing to do but advance" action: it sets the
// philosopher's program counter to arg.
func applySetPC(w *sim.World, p graph.PhilID, arg int64) {
	w.Phils[p].PC = uint8(arg)
}

// Options configures the tunable parameters shared by the algorithms.
type Options struct {
	// LeftBias is the probability that random_choice(left, right) returns the
	// left fork (LR1, LR2). Zero means the default of 0.5.
	LeftBias float64
	// M is the upper bound of the random fork numbers drawn by GDP1/GDP2
	// (the paper requires m >= k, the number of forks). Zero means "use the
	// number of forks of the topology".
	M int
	// DisableCourtesy turns off the Cond(fork) test in GDP2, reducing it to
	// GDP1 plus bookkeeping; used by ablation benchmarks.
	DisableCourtesy bool
	// CourtesyOnBothForks extends the Cond(fork) test of LR2 and GDP2 to the
	// second fork as well (the paper's Tables 2 and 4 check it only when
	// taking the first fork). The model checker shows that with the
	// first-fork-only reading a fair adversary can still lock an individual
	// philosopher out of GDP2 on the classic ring by always acquiring the
	// shared fork second; checking the condition on both forks removes that
	// trap. See EXPERIMENTS.md, experiment E-T4.
	CourtesyOnBothForks bool
}

// Courtesy option bits passed to the static Apply functions through
// Outcome.Arg (the Apply functions are shared across program instances, so
// per-instance options must travel with the outcome).
const (
	flagCourtesyOnBoth int64 = 1 << iota
	flagDisableCourtesy
)

// courtesyFlags encodes the courtesy options as Outcome.Arg bits.
func (o Options) courtesyFlags() int64 {
	var flags int64
	if o.CourtesyOnBothForks {
		flags |= flagCourtesyOnBoth
	}
	if o.DisableCourtesy {
		flags |= flagDisableCourtesy
	}
	return flags
}

// leftBias returns the configured or default probability of picking left.
func (o Options) leftBias() float64 {
	if o.LeftBias <= 0 || o.LeftBias >= 1 {
		return 0.5
	}
	return o.LeftBias
}

// nrRange returns the configured or default value of m for a topology,
// enforcing the paper's requirement m >= k.
func (o Options) nrRange(topo *graph.Topology) int {
	m := o.M
	if m < topo.NumForks() {
		m = topo.NumForks()
	}
	if m < 1 {
		m = 1
	}
	return m
}

// Ctor constructs a fresh program for the given options; programs are
// stateless between runs (all run state lives in the World), so a single
// instance may be reused across runs, but constructing per run is cheapest to
// reason about.
type Ctor func(Options) sim.Program

// The algorithm registry maps names to constructors. The nine implementations
// of this package self-register in init below; external algorithms plug in
// through Register (typically via the public facade's RegisterAlgorithm) and
// become available to every consumer — the CLI tools, the experiment suite
// and the model checker — without touching this package.
var reg = registry.New[Ctor]("algo", "algorithm")

// Register registers a named algorithm constructor. It panics if the name is
// empty, the constructor is nil, or the name is already registered:
// registration happens at init time, where a collision is a programming bug
// that must not be silently resolved by load order.
func Register(name string, ctor Ctor) { reg.Register(name, ctor) }

// New returns the named algorithm configured with opts, or an error listing
// the registered names.
func New(name string, opts Options) (sim.Program, error) {
	ctor, err := reg.Lookup(name)
	if err != nil {
		return nil, err
	}
	return ctor(opts), nil
}

// Names returns the registered algorithm names in sorted order.
func Names() []string { return reg.Names() }

func init() {
	Register("LR1", func(o Options) sim.Program { return NewLR1(o) })
	Register("LR2", func(o Options) sim.Program { return NewLR2(o) })
	Register("GDP1", func(o Options) sim.Program { return NewGDP1(o) })
	Register("GDP2", func(o Options) sim.Program { return NewGDP2(o) })
	Register("ordered-forks", func(Options) sim.Program { return NewOrderedForks() })
	Register("colored", func(Options) sim.Program { return NewColored() })
	Register("naive-left-first", func(Options) sim.Program { return NewNaive() })
	Register("central-monitor", func(Options) sim.Program { return NewCentralMonitor() })
	Register("ticket-box", func(Options) sim.Program { return NewTicketBox(0) })
}

// PaperAlgorithms returns the four algorithms of the paper's tables, in table
// order, configured with opts.
func PaperAlgorithms(opts Options) []sim.Program {
	return []sim.Program{NewLR1(opts), NewLR2(opts), NewGDP1(opts), NewGDP2(opts)}
}

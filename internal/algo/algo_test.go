package algo

import (
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/prng"
	"repro/internal/sched"
	"repro/internal/sim"
)

// runFor is a test helper running prog on topo under the given scheduler.
func runFor(t *testing.T, topo *graph.Topology, prog sim.Program, scheduler sim.Scheduler, seed uint64, opts sim.RunOptions) *sim.Result {
	t.Helper()
	opts.CheckInvariants = true
	opts.ValidateOutcomes = true
	res, err := sim.Run(topo, prog, scheduler, prng.New(seed), opts)
	if err != nil {
		t.Fatalf("run of %s on %s under %s failed: %v", prog.Name(), topo.Name(), scheduler.Name(), err)
	}
	return res
}

func TestRegistry(t *testing.T) {
	t.Parallel()
	names := Names()
	if len(names) != 9 {
		t.Errorf("expected 9 registered algorithms, got %d: %v", len(names), names)
	}
	for _, name := range names {
		prog, err := New(name, Options{})
		if err != nil {
			t.Errorf("New(%q) failed: %v", name, err)
			continue
		}
		if prog.Name() == "" {
			t.Errorf("algorithm %q has empty name", name)
		}
	}
	if _, err := New("no-such-algorithm", Options{}); err == nil {
		t.Error("New accepted an unknown algorithm name")
	}
}

func TestPaperAlgorithmsAreSymmetric(t *testing.T) {
	t.Parallel()
	for _, prog := range PaperAlgorithms(Options{}) {
		if !prog.Symmetric() {
			t.Errorf("%s must be symmetric and fully distributed", prog.Name())
		}
	}
	for _, name := range []string{"ordered-forks", "colored", "central-monitor", "ticket-box"} {
		prog, err := New(name, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if prog.Symmetric() {
			t.Errorf("baseline %s should not claim to be symmetric/fully distributed", name)
		}
	}
}

func TestAllAlgorithmsProgressOnClassicRing(t *testing.T) {
	t.Parallel()
	// Every algorithm — including LR1 and LR2, whose guarantees hold on the
	// classic ring — must make progress under benign fair schedulers. The
	// naive left-first baseline is excluded: it exists precisely because it
	// deadlocks (see TestNaiveLeftFirstDeadlocks).
	for _, name := range Names() {
		if name == "naive-left-first" {
			continue
		}
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			prog, err := New(name, Options{})
			if err != nil {
				t.Fatal(err)
			}
			topo := graph.Ring(5)
			for _, mk := range []func() sim.Scheduler{
				func() sim.Scheduler { return sched.NewRoundRobin() },
				func() sim.Scheduler { return sched.NewUniformRandom(prng.New(7)) },
				func() sim.Scheduler { return sched.NewSticky(3) },
			} {
				scheduler := mk()
				res := runFor(t, topo, prog, scheduler, 42, sim.RunOptions{MaxSteps: 30000})
				if !res.Progress() {
					t.Errorf("%s under %s made no progress on the classic ring", name, scheduler.Name())
				}
			}
		})
	}
}

func TestPaperAlgorithmsProgressOnFigure1Topologies(t *testing.T) {
	t.Parallel()
	for _, topo := range graph.Figure1() {
		for _, prog := range PaperAlgorithms(Options{}) {
			t.Run(topo.Name()+"/"+prog.Name(), func(t *testing.T) {
				t.Parallel()
				res := runFor(t, topo, prog, sched.NewUniformRandom(prng.New(3)), 11,
					sim.RunOptions{MaxSteps: 60000})
				if !res.Progress() {
					t.Errorf("%s made no progress on %s under a uniform random scheduler", prog.Name(), topo.Name())
				}
			})
		}
	}
}

func TestGDPAlgorithmsLockoutFreeOnRingUnderRoundRobin(t *testing.T) {
	t.Parallel()
	for _, name := range []string{"GDP1", "GDP2", "LR2"} {
		prog, err := New(name, Options{})
		if err != nil {
			t.Fatal(err)
		}
		res := runFor(t, graph.Ring(6), prog, sched.NewRoundRobin(), 5, sim.RunOptions{
			MaxSteps:             100000,
			StopWhenAllHaveEaten: true,
		})
		if res.Reason != sim.StopAllAte {
			t.Errorf("%s on Ring(6) under round-robin: not everyone ate within the step budget (eats %v)", name, res.EatsBy)
		}
	}
}

func TestGDP2LockoutFreeOnFigure1AUnderRandomScheduler(t *testing.T) {
	t.Parallel()
	prog := NewGDP2(Options{})
	res := runFor(t, graph.Figure1A(), prog, sched.NewUniformRandom(prng.New(9)), 13, sim.RunOptions{
		MaxSteps:             200000,
		StopWhenAllHaveEaten: true,
	})
	if res.Reason != sim.StopAllAte {
		t.Errorf("GDP2 on Figure1A: not everyone ate within the budget; eats = %v, starved = %v", res.EatsBy, res.Starved)
	}
}

func TestLR1ReleasesFirstForkWhenSecondTaken(t *testing.T) {
	t.Parallel()
	topo := graph.Ring(3)
	prog := NewLR1(Options{LeftBias: 0.999999}) // force committing to the left fork
	w := sim.NewWorld(topo)
	prog.Init(w)
	rng := prng.New(1)

	// Make P1 hold P0's right fork (= fork 1): P1's left fork is 1.
	stepPhil := func(p graph.PhilID, times int) {
		for i := 0; i < times; i++ {
			sim.SampleOutcome(prog.Outcomes(w, p, nil), rng).Do(w, p)
			w.Step++
		}
	}
	stepPhil(1, 3) // think->hungry, commit left (fork 1), take it
	if w.HolderOf(1) != 1 {
		t.Fatalf("setup failed: fork 1 held by %d", w.HolderOf(1))
	}
	// Now run P0: hungry, commit left (fork 0), take it, try fork 1 (held) ->
	// must release fork 0 and go back to the choice step.
	stepPhil(0, 4)
	if !w.IsFree(0) {
		t.Error("LR1 did not release its first fork after failing to take the second")
	}
	if w.Phils[0].PC != lr1Choose {
		t.Errorf("LR1 pc after failed second take = %d, want %d (line 2)", w.Phils[0].PC, lr1Choose)
	}
	if got := w.EatsBy[0]; got != 0 {
		t.Errorf("philosopher 0 should not have eaten, got %d meals", got)
	}
}

func TestLR1BusyWaitsOnHeldFirstFork(t *testing.T) {
	t.Parallel()
	topo := graph.Ring(3)
	prog := NewLR1(Options{LeftBias: 0.999999})
	w := sim.NewWorld(topo)
	rng := prng.New(1)
	step := func(p graph.PhilID, times int) {
		for i := 0; i < times; i++ {
			sim.SampleOutcome(prog.Outcomes(w, p, nil), rng).Do(w, p)
			w.Step++
		}
	}
	step(1, 3) // P1 holds fork 1
	step(0, 2) // P0 hungry, commits to fork 0... wait: P0's left is fork 0 (free)

	// Make P0 commit to a held fork instead: P2's left fork is 2; P0's right is 1.
	// Simpler: drive P2 to hold fork 2, then P0 with right bias.
	prog2 := NewLR1(Options{LeftBias: 0.000001}) // commit right
	w2 := sim.NewWorld(topo)
	step2 := func(p graph.PhilID, times int) {
		for i := 0; i < times; i++ {
			sim.SampleOutcome(prog2.Outcomes(w2, p, nil), rng).Do(w2, p)
			w2.Step++
		}
	}
	step2(1, 3) // P1 commits right (fork 2) and takes it
	if w2.HolderOf(2) != 1 {
		t.Fatalf("setup failed: fork 2 held by %d", w2.HolderOf(2))
	}
	step2(0, 2) // P0 hungry, commits right (fork 1) — free, fine
	// P2 commits right = fork 0 (free)... instead check busy wait via P0 on a
	// fork held by P1: P0's right fork is 1, which is free; so use P2 whose
	// right fork is 0 (free) — build the busy wait directly instead:
	w3 := sim.NewWorld(topo)
	w3.BecomeHungry(2)
	w3.Commit(2, 2)
	w3.TryTake(2, 2)
	w3.MarkHoldingFirst(2)
	w3.Phils[2].PC = lr1TrySecond
	w3.BecomeHungry(0)
	w3.Commit(0, 2) // fork 2 is held by P2
	w3.Phils[0].PC = lr1TakeFirst
	for i := 0; i < 5; i++ {
		sim.SampleOutcome(prog.Outcomes(w3, 0, nil), rng).Do(w3, 0)
		if w3.Phils[0].PC != lr1TakeFirst {
			t.Fatalf("LR1 left the busy-wait loop although the fork is held")
		}
	}
}

func TestGDP1SelectsHigherNumberedFork(t *testing.T) {
	t.Parallel()
	topo := graph.Ring(3)
	prog := NewGDP1(Options{})
	w := sim.NewWorld(topo)
	rng := prng.New(1)
	// P0: left fork 0, right fork 1. Give fork 0 a higher nr.
	w.SetNR(0, 0, 5)
	w.SetNR(0, 1, 2)
	sim.SampleOutcome(prog.Outcomes(w, 0, nil), rng).Do(w, 0) // think -> hungry
	sim.SampleOutcome(prog.Outcomes(w, 0, nil), rng).Do(w, 0) // select
	if w.FirstForkOf(0) != 0 {
		t.Errorf("GDP1 selected fork %d, want the higher-numbered fork 0", w.FirstForkOf(0))
	}
	// Ties select the right fork (the else branch of line 2).
	w2 := sim.NewWorld(topo)
	sim.SampleOutcome(prog.Outcomes(w2, 0, nil), rng).Do(w2, 0)
	sim.SampleOutcome(prog.Outcomes(w2, 0, nil), rng).Do(w2, 0)
	if w2.FirstForkOf(0) != 1 {
		t.Errorf("GDP1 tie-break selected fork %d, want the right fork 1", w2.FirstForkOf(0))
	}
}

func TestGDP1RenumbersOnTie(t *testing.T) {
	t.Parallel()
	topo := graph.Ring(4)
	prog := NewGDP1(Options{})
	w := sim.NewWorld(topo)
	rng := prng.New(2)
	step := func(p graph.PhilID, times int) {
		for i := 0; i < times; i++ {
			sim.SampleOutcome(prog.Outcomes(w, p, nil), rng).Do(w, p)
			w.Step++
		}
	}
	// P0 becomes hungry, selects (tie -> right fork 1), takes it, and at line
	// 4 finds both nr equal (0 == 0) so it must renumber fork 1 into [1, m].
	step(0, 4)
	if got := w.NR(1); got < 1 || got > topo.NumForks() {
		t.Errorf("after the tie, fork 1 nr = %d, want within [1, %d]", got, topo.NumForks())
	}
	if got := w.NR(0); got != 0 {
		t.Errorf("the unheld fork's nr changed to %d; only the held fork should be renumbered", got)
	}

	// With distinct numbers the renumber step must not change anything.
	outcomes := prog.Outcomes(w, 0, nil)
	if len(outcomes) != 1 {
		t.Errorf("renumber step with distinct numbers should be deterministic, got %d outcomes", len(outcomes))
	}
}

func TestGDP1RenumberOutcomeDistribution(t *testing.T) {
	t.Parallel()
	topo := graph.Ring(4)
	prog := NewGDP1(Options{M: 7})
	w := sim.NewWorld(topo)
	rng := prng.New(3)
	for i := 0; i < 3; i++ { // hungry, select, take
		sim.SampleOutcome(prog.Outcomes(w, 0, nil), rng).Do(w, 0)
	}
	outcomes := prog.Outcomes(w, 0, nil) // renumber step, tie
	if len(outcomes) != 7 {
		t.Fatalf("renumber with m=7 should offer 7 outcomes, got %d", len(outcomes))
	}
	if err := sim.ValidateOutcomes(outcomes); err != nil {
		t.Error(err)
	}
}

func TestGDPOptionsEnforceMinimumM(t *testing.T) {
	t.Parallel()
	topo := graph.Ring(9)
	opts := Options{M: 3} // below k = 9; must be raised to 9
	if got := opts.nrRange(topo); got != 9 {
		t.Errorf("nrRange = %d, want 9 (m >= k)", got)
	}
	opts2 := Options{M: 20}
	if got := opts2.nrRange(topo); got != 20 {
		t.Errorf("nrRange = %d, want 20", got)
	}
}

func TestLR2InsertsAndClearsRequests(t *testing.T) {
	t.Parallel()
	topo := graph.Ring(3)
	prog := NewLR2(Options{})
	res := runFor(t, topo, prog, sched.NewRoundRobin(), 21, sim.RunOptions{
		MaxSteps:           100000,
		StopAfterTotalEats: 9,
	})
	if !res.Progress() {
		t.Fatal("LR2 made no progress on the classic ring")
	}
	// After a full run, every philosopher that is currently thinking must have
	// no outstanding requests (they are removed in line 7 before going back to
	// think).
	w := res.Final
	for p := 0; p < topo.NumPhilosophers(); p++ {
		pid := graph.PhilID(p)
		if w.PhaseOf(pid) != sim.Thinking {
			continue
		}
		for _, f := range []graph.ForkID{topo.Left(pid), topo.Right(pid)} {
			if w.HasRequest(pid, f) {
				t.Errorf("thinking philosopher %d still has a request on fork %d", p, f)
			}
		}
	}
}

func TestLR2SignsGuestBookAfterEating(t *testing.T) {
	t.Parallel()
	topo := graph.Ring(3)
	prog := NewLR2(Options{})
	res := runFor(t, topo, prog, sched.NewRoundRobin(), 22, sim.RunOptions{
		MaxSteps:           100000,
		StopAfterTotalEats: 3,
	})
	w := res.Final
	signedSomewhere := false
	for f := 0; f < topo.NumForks(); f++ {
		if !w.GuestBookEmpty(graph.ForkID(f)) {
			signedSomewhere = true
		}
	}
	if !signedSomewhere {
		t.Error("after meals completed, no guest book was ever signed")
	}
}

func TestGDP2CourtesyCanBeDisabled(t *testing.T) {
	t.Parallel()
	// Smoke test for the ablation flag: both variants progress on the ring.
	for _, disable := range []bool{false, true} {
		prog := NewGDP2(Options{DisableCourtesy: disable})
		res := runFor(t, graph.Ring(4), prog, sched.NewRoundRobin(), 4, sim.RunOptions{MaxSteps: 30000})
		if !res.Progress() {
			t.Errorf("GDP2 (courtesy disabled=%t) made no progress", disable)
		}
	}
}

func TestNaiveLeftFirstDeadlocks(t *testing.T) {
	t.Parallel()
	// Under round-robin scheduling every philosopher grabs its left fork and
	// the naive baseline wedges without a single meal — the behaviour that
	// motivates the whole problem.
	res := runFor(t, graph.Ring(5), NewNaive(), sched.NewRoundRobin(), 1, sim.RunOptions{MaxSteps: 5000})
	if res.Progress() {
		t.Errorf("naive left-first made %d meals on a ring under round-robin; expected a deadlock", res.TotalEats)
	}
}

func TestColoredWorksOnEvenRing(t *testing.T) {
	t.Parallel()
	res := runFor(t, graph.Ring(6), NewColored(), sched.NewRoundRobin(), 8, sim.RunOptions{MaxSteps: 30000})
	if !res.Progress() {
		t.Error("colored philosophers made no progress on an even ring")
	}
}

func TestColoredCanDeadlockOnOddRing(t *testing.T) {
	t.Parallel()
	// On an odd ring the parity coloring puts two "same color" philosophers
	// next to each other; under round-robin all philosophers grab their
	// preferred fork and the hold-and-wait cycle deadlocks. We only check that
	// a deadlock is possible, i.e. that at some point no meals happen for a
	// long stretch — which distinguishes this broken baseline from the paper's
	// algorithms.
	res := runFor(t, graph.Ring(5), NewColored(), sched.NewRoundRobin(), 8, sim.RunOptions{MaxSteps: 30000})
	if res.TotalEats > 0 && res.Final.AnyEating() {
		// Progress is possible depending on interleaving; nothing to assert.
		return
	}
	// Either no meals at all or the system wedged eventually; both are
	// acceptable demonstrations. The real assertion is that the run completed
	// without invariant violations, which runFor already checked.
}

func TestTicketBoxPreventsDeadlockOnRing(t *testing.T) {
	t.Parallel()
	res := runFor(t, graph.Ring(5), NewTicketBox(0), sched.NewRoundRobin(), 9, sim.RunOptions{
		MaxSteps:             200000,
		StopWhenAllHaveEaten: true,
	})
	if res.Reason != sim.StopAllAte {
		t.Errorf("ticket box on Ring(5): not everyone ate; eats = %v", res.EatsBy)
	}
}

func TestCentralMonitorProgressAndMutualExclusion(t *testing.T) {
	t.Parallel()
	res := runFor(t, graph.Figure1A(), NewCentralMonitor(), sched.NewUniformRandom(prng.New(4)), 10,
		sim.RunOptions{MaxSteps: 60000})
	if !res.Progress() {
		t.Error("central monitor made no progress on Figure1A")
	}
}

func TestOrderedForksProgressEverywhere(t *testing.T) {
	t.Parallel()
	for _, topo := range []*graph.Topology{graph.Ring(5), graph.Figure1A(), graph.RingWithChord(6, 3), graph.Theta(1, 1, 1)} {
		res := runFor(t, topo, NewOrderedForks(), sched.NewUniformRandom(prng.New(5)), 12,
			sim.RunOptions{MaxSteps: 60000})
		if !res.Progress() {
			t.Errorf("ordered forks made no progress on %s", topo.Name())
		}
	}
}

func TestGDP1ProgressOnRandomTopologiesProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("property test skipped in -short mode")
	}
	t.Parallel()
	f := func(seed uint64, pRaw, fRaw uint8) bool {
		numForks := int(fRaw%6) + 2
		numPhils := int(pRaw%12) + numForks
		topo := graph.RandomMultigraph(numPhils, numForks, seed)
		prog := NewGDP1(Options{})
		res, err := sim.Run(topo, prog, sched.NewUniformRandom(prng.New(seed^0x5bd1e995)), prng.New(seed), sim.RunOptions{
			MaxSteps: 80000,
		})
		if err != nil {
			return false
		}
		return res.Progress()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestEatsConservation(t *testing.T) {
	t.Parallel()
	// Meals counted per philosopher must sum to the total for every algorithm.
	for _, name := range Names() {
		prog, err := New(name, Options{})
		if err != nil {
			t.Fatal(err)
		}
		res := runFor(t, graph.Ring(5), prog, sched.NewUniformRandom(prng.New(14)), 15,
			sim.RunOptions{MaxSteps: 20000})
		var sum int64
		for _, e := range res.EatsBy {
			sum += e
		}
		if sum != res.TotalEats {
			t.Errorf("%s: per-philosopher meals %d != total %d", name, sum, res.TotalEats)
		}
	}
}

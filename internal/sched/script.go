package sched

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/sim"
)

// Replay schedules a fixed sequence of philosophers and then either loops the
// sequence or falls back to another scheduler. It is used in tests and for
// replaying manually constructed walks such as the state sequences of the
// paper's figures.
type Replay struct {
	// Sequence is the list of philosophers to schedule, in order.
	Sequence []graph.PhilID
	// Loop repeats the sequence forever when true; otherwise Fallback (or
	// round-robin if nil) takes over after the sequence is exhausted.
	Loop bool
	// Fallback is consulted after a non-looping sequence ends.
	Fallback sim.Scheduler

	pos int
}

// NewReplay returns a Replay scheduler over the given sequence.
func NewReplay(loop bool, sequence ...graph.PhilID) *Replay {
	return &Replay{Sequence: sequence, Loop: loop}
}

// Name implements sim.Scheduler.
func (*Replay) Name() string { return "replay" }

// Next implements sim.Scheduler.
func (r *Replay) Next(w *sim.World) graph.PhilID {
	if len(r.Sequence) == 0 {
		return r.fallback(w)
	}
	if r.pos >= len(r.Sequence) {
		if !r.Loop {
			return r.fallback(w)
		}
		r.pos = 0
	}
	p := r.Sequence[r.pos]
	r.pos++
	if int(p) < 0 || int(p) >= len(w.Phils) {
		return 0
	}
	return p
}

func (r *Replay) fallback(w *sim.World) graph.PhilID {
	if r.Fallback == nil {
		r.Fallback = NewRoundRobin()
	}
	return r.Fallback.Next(w)
}

// Directive is one step of a Scripted adversary: keep scheduling Phil until
// Until holds (evaluated after each of Phil's actions) or Budget actions have
// been spent. A nil Until with Budget b schedules Phil exactly b times.
type Directive struct {
	// Phil is the philosopher to schedule.
	Phil graph.PhilID
	// Until, when non-nil, ends the directive as soon as it evaluates true.
	Until func(w *sim.World) bool
	// Budget bounds the number of schedulings (0 means 1).
	Budget int
}

// defaultDirectiveBudget bounds condition-driven directives whose Budget is
// left at zero, so a condition that never becomes true cannot hang the
// adversary in an unfair loop.
const defaultDirectiveBudget = 1024

// Scripted executes a list of directives, such as the "schedule P4 until he
// commits to the fork taken by P3" steps of the Section 3 walk, then hands
// over to Fallback (round-robin if nil). Optionally the directive list loops.
type Scripted struct {
	// Directives is the program of the adversary.
	Directives []Directive
	// Loop restarts the directive list after the last directive completes.
	Loop bool
	// Fallback takes over when the script is exhausted and Loop is false.
	Fallback sim.Scheduler

	idx   int
	spent int
	done  bool
}

// NewScripted returns a Scripted adversary over the given directives.
func NewScripted(loop bool, directives ...Directive) *Scripted {
	return &Scripted{Directives: directives, Loop: loop}
}

// Name implements sim.Scheduler.
func (*Scripted) Name() string { return "scripted" }

// Exhausted reports whether the script has run out of directives (and is now
// delegating to the fallback).
func (s *Scripted) Exhausted() bool { return s.done }

// Next implements sim.Scheduler.
func (s *Scripted) Next(w *sim.World) graph.PhilID {
	for !s.done {
		if s.idx >= len(s.Directives) {
			if s.Loop && len(s.Directives) > 0 {
				s.idx, s.spent = 0, 0
				continue
			}
			s.done = true
			break
		}
		d := s.Directives[s.idx]
		budget := d.Budget
		if budget <= 0 {
			if d.Until != nil {
				budget = defaultDirectiveBudget
			} else {
				budget = 1
			}
		}
		// Directive finished by condition or budget?
		if d.Until != nil && s.spent > 0 && d.Until(w) {
			s.idx, s.spent = s.idx+1, 0
			continue
		}
		if s.spent >= budget {
			s.idx, s.spent = s.idx+1, 0
			continue
		}
		s.spent++
		if int(d.Phil) < 0 || int(d.Phil) >= len(w.Phils) {
			return 0
		}
		return d.Phil
	}
	if s.Fallback == nil {
		s.Fallback = NewRoundRobin()
	}
	return s.Fallback.Next(w)
}

// String describes the script for diagnostics.
func (s *Scripted) String() string {
	return fmt.Sprintf("scripted adversary: %d directives, loop=%t", len(s.Directives), s.Loop)
}

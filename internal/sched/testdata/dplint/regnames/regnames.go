// Package regnames is dplint testdata: registrations against the real
// registrars (never executed — only type-checked) plus literal Name()
// methods. It lives under internal/sched so its Name() methods are held to
// the scheduler registry's canon.
package regnames

import (
	"repro/dining"
	"repro/internal/algo"
	"repro/internal/fault"
	"repro/internal/graph"
	"repro/internal/sched"
)

func wire() {
	sched.Register("all-random", nil) // clean: lowercase-hyphen
	sched.Register("Bad_Name", nil)   // want `scheduler name "Bad_Name" is not canonical`
	sched.Register("dup-sched", nil)
	sched.Register("dup-sched", nil) // want `scheduler "dup-sched" registered twice`

	algo.Register("LR9", nil)        // clean: paper mnemonic
	algo.Register("fair-coin", nil)  // clean: lowercase-hyphen
	algo.Register("Mixed-Case", nil) // want `algorithm name "Mixed-Case" is not canonical`

	graph.RegisterTopology("Ring2", nil) // want `topology name "Ring2" is not canonical`

	fault.Register("chaos monkey", nil) // want `fault name "chaos monkey" is not canonical`

	dining.RegisterProperty(dining.PropertyFunc{PropName: "My Property"}) // want `property name "My Property" is not canonical`
	dining.RegisterProperty(dining.PropertyFunc{"positional-prop", dining.ExhaustiveProperty, nil})

	//dplint:ok registryname legacy name kept for replay compatibility
	sched.Register("Legacy_V1", nil)

	// Dynamic names are out of static reach and skipped.
	sched.Register(dynamicName(), nil)
}

func dynamicName() string { return "dyn" + "-sched" }

type fancy struct{}

func (fancy) Name() string { return "Fancy-Sched" } // want `Name\(\) "Fancy-Sched" is not canonical for the scheduler registry`

type plain struct{}

func (plain) Name() string { return "plain-sched" }

type dyn struct{ s string }

func (d dyn) Name() string { return d.s }

var _ = []any{wire, fancy{}, plain{}, dyn{}}

package sched

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/sim"
)

// FairnessMonitor wraps a scheduler and measures how fair it actually is: the
// largest observed gap (in steps) between consecutive schedulings of the same
// philosopher, per philosopher and overall. The paper's adversary
// constructions are required to be fair; wrapping them in a FairnessMonitor
// turns that requirement into an observable reported alongside every
// experiment.
type FairnessMonitor struct {
	inner sim.Scheduler

	step      int64
	lastStep  []int64
	maxGap    []int64
	scheduled []int64
}

// NewFairnessMonitor wraps inner.
func NewFairnessMonitor(inner sim.Scheduler) *FairnessMonitor {
	return &FairnessMonitor{inner: inner}
}

// Name implements sim.Scheduler.
func (m *FairnessMonitor) Name() string { return m.inner.Name() + "+fairness" }

// Next implements sim.Scheduler.
func (m *FairnessMonitor) Next(w *sim.World) graph.PhilID {
	if m.lastStep == nil {
		n := len(w.Phils)
		m.lastStep = make([]int64, n)
		m.maxGap = make([]int64, n)
		m.scheduled = make([]int64, n)
		for i := range m.lastStep {
			m.lastStep[i] = -1
		}
	}
	p := m.inner.Next(w)
	if int(p) >= 0 && int(p) < len(m.lastStep) {
		gap := m.step + 1
		if m.lastStep[p] >= 0 {
			gap = m.step - m.lastStep[p]
		}
		if gap > m.maxGap[p] {
			m.maxGap[p] = gap
		}
		m.lastStep[p] = m.step
		m.scheduled[p]++
	}
	m.step++
	return p
}

// MaxGap returns the largest gap observed for any philosopher, including the
// still-open gap of philosophers not scheduled recently (or ever).
func (m *FairnessMonitor) MaxGap() int64 {
	var max int64
	for p := range m.maxGap {
		g := m.maxGap[p]
		var open int64
		if m.lastStep[p] < 0 {
			open = m.step
		} else {
			open = m.step - m.lastStep[p]
		}
		if open > g {
			g = open
		}
		if g > max {
			max = g
		}
	}
	return max
}

// GapOf returns the largest gap observed for philosopher p.
func (m *FairnessMonitor) GapOf(p graph.PhilID) int64 {
	if m.maxGap == nil || int(p) >= len(m.maxGap) {
		return 0
	}
	g := m.maxGap[p]
	var open int64
	if m.lastStep[p] < 0 {
		open = m.step
	} else {
		open = m.step - m.lastStep[p]
	}
	if open > g {
		g = open
	}
	return g
}

// ScheduledCount returns how many times p was scheduled.
func (m *FairnessMonitor) ScheduledCount(p graph.PhilID) int64 {
	if m.scheduled == nil || int(p) >= len(m.scheduled) {
		return 0
	}
	return m.scheduled[p]
}

// Steps returns the number of scheduling decisions observed.
func (m *FairnessMonitor) Steps() int64 { return m.step }

// EveryoneScheduled reports whether every philosopher has been scheduled at
// least once.
func (m *FairnessMonitor) EveryoneScheduled() bool {
	if m.scheduled == nil {
		return false
	}
	for _, c := range m.scheduled {
		if c == 0 {
			return false
		}
	}
	return true
}

// Report returns a one-line summary.
func (m *FairnessMonitor) Report() string {
	return fmt.Sprintf("%s: %d steps, max scheduling gap %d", m.Name(), m.step, m.MaxGap())
}

package sched

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/sim"
)

// GreedyLivelock is the adversarial scheduling strategy used to reproduce the
// negative results of the paper (the Section 3 example and Theorems 1 and 2):
// it tries to prevent every philosopher in a protected set from ever eating,
// using only scheduling decisions (it cannot influence the random draws).
//
// The strategy distils the rotating walks of the paper's Figures 2 and 3 into
// a priority rule evaluated on the full system state each step. Terminology:
//
//   - a protected philosopher is "dangerous" when it holds its first fork and
//     its second fork is free — scheduling it would let it start eating;
//   - a held fork is "covered" when some other philosopher is committed to it
//     (a queued taker that will pick it up as soon as it is released);
//   - a "reserve" is a hungry philosopher that neither holds nor has selected
//     a fork — the only philosophers whose future commitment the adversary
//     can still steer (by choosing when to schedule their random draw).
//
// Priorities (first match wins):
//
//  1. let a useful unprotected philosopher run (Theorem 1's walk repeatedly
//     feeds the extra philosopher outside the ring so it keeps the shared
//     fork busy);
//  2. defuse: schedule a philosopher committed to a fork that a dangerous
//     philosopher needs — it takes the fork away;
//  3. safe take: schedule a philosopher committed to a free fork whose other
//     fork is held (it can never reach a meal from there);
//  4. steer a reserve adjacent to a dangerous fork (its draw may commit it to
//     that fork; a wrong draw either parks it harmlessly on a held fork or
//     enters the free-take/release retry loop of the paper's walk);
//  5. cover: steer a reserve adjacent to an uncovered held fork, so that when
//     the holder is eventually forced to release it there is a queued taker;
//  6. advance a retry loop: a philosopher that holds a fork wanted by a
//     queued taker and whose own second fork is held can release safely;
//  7. wake thinking philosophers;
//  8. burn time on parked philosophers (committed to a held fork — a pure
//     busy-wait no-op);
//  9. during the initial symmetric phase, advance reserves and committed
//     philosophers to break the system into the pattern;
//  10. only when every remaining choice would feed a protected philosopher
//     does it concede.
//
// Wrap the advisor in BoundedFair (fixed fairness window, the honest choice
// for finite experiments) or Stubborn (the paper's growing-stubbornness
// construction) to obtain a fair scheduler.
type GreedyLivelock struct {
	// Protected is the set of philosophers that must not eat; nil or empty
	// means every philosopher is protected (the Section 3 example).
	Protected []graph.PhilID

	protected map[graph.PhilID]bool

	// Per-step scratch, reused across Advise calls so that the adversary
	// allocates nothing in steady state. dangerForks and committedTo are
	// dense per-fork tables (iterated in fork-ID order, which also makes the
	// advisor deterministic); reserves and cand hold candidate lists.
	dangerForks []bool
	committedTo []int
	reserves    []graph.PhilID
	cand        []graph.PhilID
}

// NewGreedyLivelock returns the livelock advisor protecting the given
// philosophers (all philosophers when none are given).
func NewGreedyLivelock(protected ...graph.PhilID) *GreedyLivelock {
	return &GreedyLivelock{Protected: protected}
}

// Name implements Advisor.
func (g *GreedyLivelock) Name() string {
	if len(g.Protected) == 0 {
		return "greedy-livelock"
	}
	return fmt.Sprintf("greedy-livelock-%d-protected", len(g.Protected))
}

// isProtected reports whether p is in the protected set.
func (g *GreedyLivelock) isProtected(p graph.PhilID) bool {
	if len(g.Protected) == 0 {
		return true
	}
	if g.protected == nil {
		g.protected = make(map[graph.PhilID]bool, len(g.Protected))
		for _, q := range g.Protected {
			g.protected[q] = true
		}
	}
	return g.protected[p]
}

// analysis is the per-step classification of the system state used by the
// advisor's rules. It views the advisor's reusable scratch tables:
// dangerForks and committedTo are indexed by fork ID.
type analysis struct {
	dangerForks []bool
	anyDanger   bool
	// committedTo[f] counts philosophers committed (but not holding) to f.
	committedTo []int
	reserves    []graph.PhilID
}

func (g *GreedyLivelock) analyse(w *sim.World) analysis {
	k := w.Topo.NumForks()
	if cap(g.dangerForks) < k {
		g.dangerForks = make([]bool, k)
		g.committedTo = make([]int, k)
	}
	g.dangerForks = g.dangerForks[:k]
	g.committedTo = g.committedTo[:k]
	for f := 0; f < k; f++ {
		g.dangerForks[f] = false
		g.committedTo[f] = 0
	}
	g.reserves = g.reserves[:0]
	a := analysis{dangerForks: g.dangerForks, committedTo: g.committedTo}
	for p := range w.Phils {
		pid := graph.PhilID(p)
		if g.isProtected(pid) && w.CouldEatNext(pid) {
			a.dangerForks[w.SecondForkOf(pid)] = true
			a.anyDanger = true
		}
		if w.IsCommitted(pid) {
			a.committedTo[w.FirstForkOf(pid)]++
		}
		st := &w.Phils[pid]
		if st.Phase == sim.Hungry && !st.HasFirst && !w.IsCommitted(pid) {
			g.reserves = append(g.reserves, pid)
		}
	}
	a.reserves = g.reserves
	return a
}

// oldest returns the candidate that was scheduled least recently, so that the
// advisor's voluntary choices keep everyone's fairness clock reset and no
// burst of forced schedulings (over which the advisor has no control) ever
// builds up. Returns graph.NoPhil for an empty candidate list.
func oldest(w *sim.World, candidates []graph.PhilID) graph.PhilID {
	best := graph.NoPhil
	var bestLast int64
	for _, pid := range candidates {
		last := int64(-1)
		if int(pid) < len(w.LastScheduled) {
			last = w.LastScheduled[pid]
		}
		if best == graph.NoPhil || last < bestLast {
			best = pid
			bestLast = last
		}
	}
	return best
}

// steerTarget picks a reserve adjacent to fork f, preferring reserves whose
// other fork is free (a wrong draw then leads back to the choice step via the
// take/fail/release retry loop, so the steering can be repeated) and
// unprotected reserves. Returns graph.NoPhil when no reserve is adjacent.
func (g *GreedyLivelock) steerTarget(w *sim.World, an analysis, f graph.ForkID) graph.PhilID {
	best := graph.NoPhil
	bestScore := -1
	for _, pid := range an.reserves {
		left, right := w.Topo.Left(pid), w.Topo.Right(pid)
		if left != f && right != f {
			continue
		}
		other := left
		if other == f {
			other = right
		}
		score := 0
		if w.IsFree(other) {
			score += 2 // retriable steering
		}
		if !g.isProtected(pid) {
			score++
		}
		if score > bestScore {
			bestScore = score
			best = pid
		}
	}
	return best
}

// Advise implements Advisor.
func (g *GreedyLivelock) Advise(w *sim.World) graph.PhilID {
	n := len(w.Phils)
	an := g.analyse(w)

	// Rule 1: useful unprotected philosopher.
	rule1 := g.cand[:0]
	for p := 0; p < n; p++ {
		pid := graph.PhilID(p)
		if g.isProtected(pid) {
			continue
		}
		st := &w.Phils[pid]
		switch {
		case st.Phase == sim.Eating,
			w.CouldEatNext(pid),
			an.anyDanger && w.IsCommitted(pid) && an.dangerForks[st.First],
			an.anyDanger && st.Phase == sim.Hungry && !st.HasFirst && !w.IsCommitted(pid) &&
				(an.dangerForks[w.Topo.Left(pid)] || an.dangerForks[w.Topo.Right(pid)]):
			rule1 = append(rule1, pid)
		}
	}
	g.cand = rule1
	if pid := oldest(w, rule1); pid != graph.NoPhil {
		return pid
	}

	// Rule 2: defuse — take a dangerous fork away from the endangered holder.
	if an.anyDanger {
		defusers := g.cand[:0]
		for p := 0; p < n; p++ {
			pid := graph.PhilID(p)
			if w.IsCommitted(pid) && an.dangerForks[w.FirstForkOf(pid)] && w.IsFree(w.FirstForkOf(pid)) {
				defusers = append(defusers, pid)
			}
		}
		g.cand = defusers
		if pid := oldest(w, defusers); pid != graph.NoPhil {
			return pid
		}
	}

	// Rule 3: safe take — committed to a free fork, other fork held.
	takers := g.cand[:0]
	for p := 0; p < n; p++ {
		pid := graph.PhilID(p)
		if !w.IsCommitted(pid) {
			continue
		}
		if w.IsFree(w.FirstForkOf(pid)) && !w.IsFree(w.SecondForkOf(pid)) {
			takers = append(takers, pid)
		}
	}
	g.cand = takers
	if pid := oldest(w, takers); pid != graph.NoPhil {
		return pid
	}

	// Rule 4: steer a reserve towards a dangerous fork (in fork-ID order, so
	// the advisor is deterministic).
	if an.anyDanger {
		for f := 0; f < len(an.dangerForks); f++ {
			if !an.dangerForks[f] {
				continue
			}
			if target := g.steerTarget(w, an, graph.ForkID(f)); target != graph.NoPhil {
				return target
			}
		}
	}

	// Rule 5: cover — make sure every held fork has a queued taker before its
	// holder is forced to release it.
	for f := 0; f < w.Topo.NumForks(); f++ {
		fid := graph.ForkID(f)
		if w.IsFree(fid) || an.committedTo[fid] > 0 {
			continue
		}
		if target := g.steerTarget(w, an, fid); target != graph.NoPhil {
			return target
		}
	}

	// Rule 6: advance a retry loop — a philosopher holding a fork that a
	// queued taker wants, with its own second fork held, can release safely.
	retriers := g.cand[:0]
	for p := 0; p < n; p++ {
		pid := graph.PhilID(p)
		if !w.HoldsOnlyFirst(pid) {
			continue
		}
		first := w.FirstForkOf(pid)
		second := w.SecondForkOf(pid)
		if !w.IsFree(second) && an.committedTo[first] > 0 {
			retriers = append(retriers, pid)
		}
	}
	g.cand = retriers
	if pid := oldest(w, retriers); pid != graph.NoPhil {
		return pid
	}

	// Rules 7+8: harmless time-burners — thinking philosophers and parked
	// philosophers (committed to a held fork, a pure busy-wait). Scheduling
	// the least recently scheduled one keeps fairness pressure from building
	// up behind the adversary's back.
	idle := g.cand[:0]
	for p := 0; p < n; p++ {
		pid := graph.PhilID(p)
		if w.Phils[pid].Phase == sim.Thinking {
			idle = append(idle, pid)
			continue
		}
		if w.IsCommitted(pid) && !w.IsFree(w.FirstForkOf(pid)) {
			idle = append(idle, pid)
		}
	}
	g.cand = idle
	if pid := oldest(w, idle); pid != graph.NoPhil {
		return pid
	}

	// Rule 9: pattern formation. While no fork is held, the adversary builds
	// the walk's starting configuration: it first steers reserves so that
	// every fork has a committed prospective holder (the paper's State 1 has
	// one philosopher committed to each fork), and only then lets a committed
	// philosopher take its fork — the resulting chain of "dangerous" holders
	// resolves through rules 2 and 3 because every needed fork has a taker.
	heldCount := 0
	for f := 0; f < w.Topo.NumForks(); f++ {
		if !w.IsFree(graph.ForkID(f)) {
			heldCount++
		}
	}
	if heldCount == 0 {
		for f := 0; f < w.Topo.NumForks(); f++ {
			fid := graph.ForkID(f)
			if an.committedTo[fid] > 0 {
				continue
			}
			if target := g.steerTarget(w, an, fid); target != graph.NoPhil {
				return target
			}
		}
		committed := g.cand[:0]
		for p := 0; p < n; p++ {
			pid := graph.PhilID(p)
			if w.IsCommitted(pid) {
				committed = append(committed, pid)
			}
		}
		g.cand = committed
		if pid := oldest(w, committed); pid != graph.NoPhil {
			return pid
		}
	}

	// Rule 9b: nothing better to do — advance reserves and committed
	// philosophers (oldest first) to keep the system moving.
	breaking := g.cand[:0]
	for p := 0; p < n; p++ {
		pid := graph.PhilID(p)
		st := &w.Phils[pid]
		if st.Phase == sim.Hungry && !st.HasFirst {
			breaking = append(breaking, pid)
		}
	}
	g.cand = breaking
	if pid := oldest(w, breaking); pid != graph.NoPhil {
		return pid
	}

	// Rule 10: a philosopher holding its first fork with the second held can
	// always be scheduled safely even without a queued taker.
	holders := g.cand[:0]
	for p := 0; p < n; p++ {
		pid := graph.PhilID(p)
		if w.HoldsOnlyFirst(pid) && !w.IsFree(w.SecondForkOf(pid)) {
			holders = append(holders, pid)
		}
	}
	g.cand = holders
	if pid := oldest(w, holders); pid != graph.NoPhil {
		return pid
	}

	// Rule 11: everything left is dangerous or eating; concede.
	rest := g.cand[:0]
	for p := 0; p < n; p++ {
		pid := graph.PhilID(p)
		if !w.CouldEatNext(pid) && !w.IsEating(pid) {
			rest = append(rest, pid)
		}
	}
	g.cand = rest
	if pid := oldest(w, rest); pid != graph.NoPhil {
		return pid
	}
	return 0
}

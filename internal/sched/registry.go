package sched

import (
	"repro/internal/graph"
	"repro/internal/prng"
	"repro/internal/registry"
	"repro/internal/sim"
)

// Config carries everything a scheduler constructor may need. Schedulers are
// stateful (they remember scheduling history), so a fresh one must be
// constructed per run; the registry therefore stores constructors, not
// instances.
type Config struct {
	// RNG drives randomized schedulers. Always non-nil when the registry is
	// used through core.System or the public engine.
	RNG *prng.Source
	// Protected restricts an adversary's target set (nil = starve everyone).
	Protected []graph.PhilID
	// FairnessWindow is the bounded-fair adversary's window (0 = default).
	FairnessWindow int64
}

// Ctor constructs a scheduler from a Config.
type Ctor func(cfg Config) sim.Scheduler

// The scheduler registry maps names to constructors. The six schedulers and
// adversaries of this package self-register in init below; external
// strategies plug in through Register (typically via the public facade's
// RegisterScheduler).
var reg = registry.New[Ctor]("sched", "scheduler")

// Register registers a named scheduler constructor. It panics if the name is
// empty, the constructor is nil, or the name is already registered:
// registration happens at init time, where a collision is a programming bug
// that must not be silently resolved by load order.
func Register(name string, ctor Ctor) { reg.Register(name, ctor) }

// New constructs the named registered scheduler, or returns an error listing
// the registered names.
func New(name string, cfg Config) (sim.Scheduler, error) {
	ctor, err := reg.Lookup(name)
	if err != nil {
		return nil, err
	}
	return ctor(cfg), nil
}

// Names returns the registered scheduler names in sorted order.
func Names() []string { return reg.Names() }

func init() {
	Register("round-robin", func(Config) sim.Scheduler { return NewRoundRobin() })
	Register("random", func(cfg Config) sim.Scheduler { return NewUniformRandom(cfg.RNG) })
	Register("sticky", func(Config) sim.Scheduler { return NewSticky(4) })
	Register("hungry-first", func(cfg Config) sim.Scheduler { return NewHungryFirst(cfg.RNG) })
	Register("adversary", func(cfg Config) sim.Scheduler {
		return NewBoundedFair(NewGreedyLivelock(cfg.Protected...), cfg.FairnessWindow)
	})
	Register("stubborn-adversary", func(cfg Config) sim.Scheduler {
		return NewStubborn(NewGreedyLivelock(cfg.Protected...))
	})
}

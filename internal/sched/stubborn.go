package sched

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/sim"
)

// Advisor encodes a (possibly unfair) adversarial scheduling strategy: given
// the full state of the system it suggests which philosopher it would like to
// schedule next. Advisors are turned into fair schedulers by the Stubborn
// wrapper.
type Advisor interface {
	// Name identifies the strategy.
	Name() string
	// Advise returns the philosopher the strategy wants to schedule next.
	Advise(w *sim.World) graph.PhilID
}

// AdvisorFunc adapts a function to the Advisor interface.
type AdvisorFunc struct {
	AdvisorName string
	AdviseFunc  func(w *sim.World) graph.PhilID
}

// Name implements Advisor.
func (a AdvisorFunc) Name() string { return a.AdvisorName }

// Advise implements Advisor.
func (a AdvisorFunc) Advise(w *sim.World) graph.PhilID { return a.AdviseFunc(w) }

// Stubborn turns an Advisor into a fair scheduler using the construction of
// Section 3 of the paper: the adversary follows its strategy, but it may
// ignore a given philosopher only for a bounded number of steps (the current
// "level of stubbornness"); whenever the bound forces it to schedule a
// philosopher it did not want to schedule, the bound for subsequent rounds is
// increased, so that the probability that the adversary is never forced again
// remains bounded away from zero while every computation it produces is fair.
type Stubborn struct {
	// Advisor is the wrapped strategy.
	Advisor Advisor
	// InitialWindow is the initial bound on how many consecutive steps a
	// philosopher may be ignored (minimum 1). Zero means DefaultWindow.
	InitialWindow int64
	// Growth is the factor by which the window grows after every forced
	// scheduling; values <= 1 mean DefaultGrowth.
	Growth float64

	window    int64
	lastSched []int64
	step      int64
	forced    int64
}

// DefaultWindow is the initial stubbornness bound used when none is given.
const DefaultWindow = 64

// DefaultGrowth is the window growth factor used when none is given.
const DefaultGrowth = 2.0

// NewStubborn wraps advisor in a Stubborn scheduler with default parameters.
func NewStubborn(advisor Advisor) *Stubborn {
	return &Stubborn{Advisor: advisor}
}

// Name implements sim.Scheduler.
func (s *Stubborn) Name() string {
	return fmt.Sprintf("stubborn(%s)", s.Advisor.Name())
}

// ForcedCount returns how many scheduling decisions were forced by the
// fairness bound rather than chosen by the advisor.
func (s *Stubborn) ForcedCount() int64 { return s.forced }

// Window returns the current stubbornness bound.
func (s *Stubborn) Window() int64 {
	if s.window == 0 {
		if s.InitialWindow > 0 {
			return s.InitialWindow
		}
		return DefaultWindow
	}
	return s.window
}

// Next implements sim.Scheduler.
func (s *Stubborn) Next(w *sim.World) graph.PhilID {
	n := len(w.Phils)
	if len(s.lastSched) != n {
		// First step after construction or Reset (which truncates the table,
		// keeping its capacity for reuse across pooled trials).
		s.lastSched = resizeGaps(s.lastSched, n)
		s.window = s.InitialWindow
		if s.window <= 0 {
			s.window = DefaultWindow
		}
	}
	growth := s.Growth
	if growth <= 1 {
		growth = DefaultGrowth
	}

	// Fairness pressure: if some philosopher has waited at least the current
	// window, schedule the longest-waiting one and grow the window.
	forcedPhil := graph.NoPhil
	var worstGap int64 = -1
	for p := 0; p < n; p++ {
		var gap int64
		if s.lastSched[p] < 0 {
			gap = s.step + 1
		} else {
			gap = s.step - s.lastSched[p]
		}
		if gap >= s.window && gap > worstGap {
			worstGap = gap
			forcedPhil = graph.PhilID(p)
		}
	}

	var choice graph.PhilID
	if forcedPhil != graph.NoPhil {
		choice = forcedPhil
		s.forced++
		next := int64(float64(s.window) * growth)
		if next <= s.window {
			next = s.window + 1
		}
		s.window = next
	} else {
		choice = s.Advisor.Advise(w)
		if int(choice) < 0 || int(choice) >= n {
			choice = 0
		}
	}
	s.lastSched[choice] = s.step
	s.step++
	return choice
}

// Reset implements sim.ResettableScheduler: the next Next call re-derives
// the window from the configuration exactly as a fresh instance would. The
// gap table keeps its capacity.
func (s *Stubborn) Reset() {
	s.lastSched = s.lastSched[:0]
	s.window = 0
	s.step = 0
	s.forced = 0
}

// resizeGaps returns a length-n gap table filled with the "never scheduled"
// sentinel, reusing prior capacity when it suffices.
func resizeGaps(gaps []int64, n int) []int64 {
	if cap(gaps) < n {
		gaps = make([]int64, n)
	} else {
		gaps = gaps[:n]
	}
	for i := range gaps {
		gaps[i] = -1
	}
	return gaps
}

package sched

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/prng"
	"repro/internal/sim"
)

// countingProgram is a trivial program for scheduler unit tests: every action
// is a no-op.
type countingProgram struct{}

func (countingProgram) Name() string    { return "counting" }
func (countingProgram) Init(*sim.World) {}
func (countingProgram) Symmetric() bool { return true }
func (countingProgram) Outcomes(w *sim.World, p graph.PhilID, buf []sim.Outcome) []sim.Outcome {
	return append(buf, sim.Outcome{Prob: 1, Label: "noop", Apply: func(*sim.World, graph.PhilID, int64) {}})
}

func TestRoundRobinCyclesThroughAll(t *testing.T) {
	t.Parallel()
	w := sim.NewWorld(graph.Ring(4))
	s := NewRoundRobin()
	var got []graph.PhilID
	for i := 0; i < 8; i++ {
		got = append(got, s.Next(w))
	}
	want := []graph.PhilID{0, 1, 2, 3, 0, 1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("round robin sequence %v, want %v", got, want)
		}
	}
}

func TestUniformRandomCoversEveryone(t *testing.T) {
	t.Parallel()
	w := sim.NewWorld(graph.Ring(5))
	s := NewUniformRandom(prng.New(1))
	seen := map[graph.PhilID]int{}
	for i := 0; i < 2000; i++ {
		seen[s.Next(w)]++
	}
	for p := 0; p < 5; p++ {
		if seen[graph.PhilID(p)] < 200 {
			t.Errorf("philosopher %d scheduled only %d/2000 times", p, seen[graph.PhilID(p)])
		}
	}
}

func TestStickySchedulesBursts(t *testing.T) {
	t.Parallel()
	w := sim.NewWorld(graph.Ring(3))
	s := NewSticky(4)
	var got []graph.PhilID
	for i := 0; i < 12; i++ {
		got = append(got, s.Next(w))
	}
	for i := 0; i < 4; i++ {
		if got[i] != 0 || got[4+i] != 1 || got[8+i] != 2 {
			t.Fatalf("sticky sequence %v not in bursts of 4", got)
		}
	}
	if NewSticky(0).Burst != 1 {
		t.Error("NewSticky should clamp burst to at least 1")
	}
}

func TestHungryFirstPrefersBusyPhilosophers(t *testing.T) {
	t.Parallel()
	w := sim.NewWorld(graph.Ring(4))
	w.BecomeHungry(2)
	s := NewHungryFirst(prng.New(3))
	for i := 0; i < 50; i++ {
		if got := s.Next(w); got != 2 {
			t.Fatalf("hungry-first scheduled %d while only philosopher 2 is hungry", got)
		}
	}
	// With nobody hungry it still returns someone valid.
	w2 := sim.NewWorld(graph.Ring(4))
	if got := s.Next(w2); got < 0 || int(got) >= 4 {
		t.Fatalf("hungry-first returned invalid philosopher %d", got)
	}
}

func TestPrioritySchedulerReturnsHighestPriority(t *testing.T) {
	t.Parallel()
	w := sim.NewWorld(graph.Ring(4))
	s := NewPriority(3, 1)
	if got := s.Next(w); got != 3 {
		t.Errorf("priority scheduler returned %d, want 3", got)
	}
	if got := NewPriority().Next(w); got != 0 {
		t.Errorf("priority scheduler with empty order returned %d, want 0", got)
	}
}

func TestFairnessMonitorMeasuresGaps(t *testing.T) {
	t.Parallel()
	topo := graph.Ring(3)
	w := sim.NewWorld(topo)
	mon := NewFairnessMonitor(NewRoundRobin())
	for i := 0; i < 30; i++ {
		mon.Next(w)
	}
	if !mon.EveryoneScheduled() {
		t.Error("round robin should have scheduled everyone")
	}
	if got := mon.MaxGap(); got != 3 {
		t.Errorf("round robin max gap = %d, want 3", got)
	}
	if mon.Steps() != 30 {
		t.Errorf("Steps = %d, want 30", mon.Steps())
	}
	if mon.ScheduledCount(0) != 10 {
		t.Errorf("ScheduledCount(0) = %d, want 10", mon.ScheduledCount(0))
	}
	if mon.Report() == "" {
		t.Error("empty fairness report")
	}
}

func TestFairnessMonitorDetectsUnfairness(t *testing.T) {
	t.Parallel()
	w := sim.NewWorld(graph.Ring(3))
	unfair := sim.SchedulerFunc{SchedulerName: "stuck", NextFunc: func(*sim.World) graph.PhilID { return 0 }}
	mon := NewFairnessMonitor(unfair)
	for i := 0; i < 100; i++ {
		mon.Next(w)
	}
	if mon.EveryoneScheduled() {
		t.Error("monitor claims everyone was scheduled under a stuck scheduler")
	}
	if mon.MaxGap() < 100 {
		t.Errorf("MaxGap = %d, want >= 100 for never-scheduled philosophers", mon.MaxGap())
	}
	if mon.GapOf(1) < 100 {
		t.Errorf("GapOf(1) = %d, want >= 100", mon.GapOf(1))
	}
}

func TestStubbornForcesFairness(t *testing.T) {
	t.Parallel()
	// An advisor that always wants philosopher 0; the stubborn wrapper must
	// still schedule everyone.
	adv := AdvisorFunc{AdvisorName: "always-0", AdviseFunc: func(*sim.World) graph.PhilID { return 0 }}
	s := NewStubborn(adv)
	topo := graph.Ring(4)
	res, err := sim.Run(topo, countingProgram{}, s, prng.New(1), sim.RunOptions{MaxSteps: 5000})
	if err != nil {
		t.Fatal(err)
	}
	for p, c := range res.ScheduledCount {
		if c == 0 {
			t.Errorf("stubborn wrapper never scheduled philosopher %d", p)
		}
	}
	if s.ForcedCount() == 0 {
		t.Error("stubborn wrapper should have been forced at least once")
	}
	if s.Window() <= DefaultWindow {
		t.Errorf("window should have grown beyond %d, got %d", DefaultWindow, s.Window())
	}
}

func TestBoundedFairRespectsWindow(t *testing.T) {
	t.Parallel()
	adv := AdvisorFunc{AdvisorName: "always-0", AdviseFunc: func(*sim.World) graph.PhilID { return 0 }}
	s := NewBoundedFair(adv, 50)
	mon := NewFairnessMonitor(s)
	topo := graph.Ring(5)
	res, err := sim.Run(topo, countingProgram{}, mon, prng.New(1), sim.RunOptions{MaxSteps: 4000})
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxScheduleGap > 55 {
		t.Errorf("bounded-fair(50) produced a scheduling gap of %d", res.MaxScheduleGap)
	}
	if s.ForcedCount() == 0 {
		t.Error("bounded-fair should have forced schedulings against the stubborn advisor")
	}
	if got := NewBoundedFair(adv, 0).window(); got != DefaultBoundedWindow {
		t.Errorf("default window = %d, want %d", got, DefaultBoundedWindow)
	}
}

func TestReplayFollowsSequenceThenFallsBack(t *testing.T) {
	t.Parallel()
	w := sim.NewWorld(graph.Ring(3))
	r := NewReplay(false, 2, 2, 1)
	got := []graph.PhilID{r.Next(w), r.Next(w), r.Next(w), r.Next(w), r.Next(w)}
	want := []graph.PhilID{2, 2, 1, 0, 1} // falls back to round robin
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("replay sequence %v, want %v", got, want)
		}
	}
	loop := NewReplay(true, 1, 2)
	for i := 0; i < 10; i++ {
		p := loop.Next(w)
		if p != 1 && p != 2 {
			t.Fatalf("looping replay escaped its sequence: %d", p)
		}
	}
}

func TestScriptedDirectives(t *testing.T) {
	t.Parallel()
	topo := graph.Ring(3)
	w := sim.NewWorld(topo)
	hungryCount := 0
	s := NewScripted(false,
		Directive{Phil: 1, Budget: 3},
		Directive{Phil: 2, Until: func(w *sim.World) bool { return hungryCount >= 2 }},
	)
	var seq []graph.PhilID
	for i := 0; i < 8; i++ {
		p := s.Next(w)
		seq = append(seq, p)
		if p == 2 {
			hungryCount++
		}
	}
	// First 3 schedulings of philosopher 1, then philosopher 2 until the
	// condition (checked before each subsequent scheduling) holds, then the
	// round-robin fallback.
	if seq[0] != 1 || seq[1] != 1 || seq[2] != 1 {
		t.Fatalf("scripted sequence %v should start with three schedulings of P1", seq)
	}
	if seq[3] != 2 || seq[4] != 2 {
		t.Fatalf("scripted sequence %v should continue with P2", seq)
	}
	if !s.Exhausted() {
		t.Error("script should be exhausted after its directives completed")
	}
	if s.String() == "" {
		t.Error("empty script description")
	}
}

func TestGreedyLivelockReturnsValidPhilosophers(t *testing.T) {
	t.Parallel()
	// Whatever the state, the advisor must return a valid philosopher.
	topo := graph.Figure1A()
	adv := NewGreedyLivelock()
	w := sim.NewWorld(topo)
	rng := prng.New(5)
	for i := 0; i < 200; i++ {
		p := adv.Advise(w)
		if int(p) < 0 || int(p) >= topo.NumPhilosophers() {
			t.Fatalf("advisor returned invalid philosopher %d", p)
		}
		// Drive the world with a random scheduler so states vary.
		q := graph.PhilID(rng.Intn(topo.NumPhilosophers()))
		st := &w.Phils[q]
		if st.Phase == sim.Thinking {
			w.BecomeHungry(q)
		}
	}
	if NewGreedyLivelock().Name() == "" || NewGreedyLivelock(1, 2).Name() == "" {
		t.Error("advisor names empty")
	}
}

// TestResetMatchesFresh pins the sim.ResettableScheduler contract for every
// resettable scheduler of this package: after consuming decisions, Reset
// (plus reseeding the shared RNG in place, as the verify trial pool does)
// must reproduce the decision stream of a newly constructed instance.
func TestResetMatchesFresh(t *testing.T) {
	t.Parallel()
	w := sim.NewWorld(graph.Ring(6))
	const seed, steps = 11, 200
	cases := []struct {
		name string
		make func(rng *prng.Source) sim.ResettableScheduler
	}{
		{"round-robin", func(*prng.Source) sim.ResettableScheduler { return NewRoundRobin() }},
		{"uniform-random", func(rng *prng.Source) sim.ResettableScheduler { return NewUniformRandom(rng) }},
		{"sticky", func(*prng.Source) sim.ResettableScheduler { return NewSticky(3) }},
		{"priority", func(*prng.Source) sim.ResettableScheduler { return NewPriority(2, 4) }},
		{"hungry-first", func(rng *prng.Source) sim.ResettableScheduler { return NewHungryFirst(rng) }},
		{"stubborn", func(*prng.Source) sim.ResettableScheduler { return NewStubborn(NewGreedyLivelock()) }},
		{"bounded-fair", func(*prng.Source) sim.ResettableScheduler { return NewBoundedFair(NewGreedyLivelock(), 16) }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			rng := prng.New(seed)
			s := c.make(rng)
			for i := 0; i < steps; i++ {
				s.Next(w) // consume an arbitrary prefix
			}
			rng.Reseed(seed)
			s.Reset()
			freshRNG := prng.New(seed)
			fresh := c.make(freshRNG)
			for i := 0; i < steps; i++ {
				if got, want := s.Next(w), fresh.Next(w); got != want {
					t.Fatalf("step %d: reset scheduler chose %d, fresh instance chose %d", i, got, want)
				}
			}
		})
	}
}

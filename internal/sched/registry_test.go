package sched

import (
	"sort"
	"strings"
	"testing"

	"repro/internal/prng"
	"repro/internal/sim"
)

func TestSchedulerRegistryNamesSortedAndConstructible(t *testing.T) {
	t.Parallel()
	names := Names()
	if len(names) < 6 {
		t.Fatalf("expected the six built-in schedulers, got %v", names)
	}
	if !sort.StringsAreSorted(names) {
		t.Errorf("Names not sorted: %v", names)
	}
	for _, name := range names {
		if strings.HasPrefix(name, "test-") {
			continue // registered by other tests
		}
		s, err := New(name, Config{RNG: prng.New(1)})
		if err != nil {
			t.Errorf("New(%q): %v", name, err)
			continue
		}
		if s == nil || s.Name() == "" {
			t.Errorf("New(%q) returned an unusable scheduler", name)
		}
	}
}

func TestSchedulerRegistryUnknownName(t *testing.T) {
	t.Parallel()
	_, err := New("warp", Config{})
	if err == nil {
		t.Fatal("New accepted an unknown scheduler")
	}
	msg := err.Error()
	if !strings.Contains(msg, "registered:") || !strings.Contains(msg, "round-robin") || strings.Contains(msg, "\n") {
		t.Errorf("want a one-line error listing the registered options, got: %v", err)
	}
}

func TestSchedulerRegistryDuplicatePanics(t *testing.T) {
	t.Parallel()
	ctor := func(Config) sim.Scheduler { return NewRoundRobin() }
	Register("test-sched-dup", ctor)
	defer func() {
		if recover() == nil {
			t.Error("duplicate Register did not panic")
		}
	}()
	Register("test-sched-dup", ctor)
}

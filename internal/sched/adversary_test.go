package sched

import (
	"testing"

	"repro/internal/algo"
	"repro/internal/graph"
	"repro/internal/prng"
	"repro/internal/sim"
)

// livelockRate runs `trials` independent runs of the named algorithm on topo
// under the bounded-fair greedy livelock adversary and returns how many runs
// ended with no protected philosopher having eaten.
func livelockRate(t *testing.T, topo *graph.Topology, algoName string, protected []graph.PhilID, trials int, steps int64) int {
	t.Helper()
	safe := 0
	for i := 0; i < trials; i++ {
		prog, err := algo.New(algoName, algo.Options{})
		if err != nil {
			t.Fatal(err)
		}
		adv := NewBoundedFair(NewGreedyLivelock(protected...), 300)
		res, err := sim.Run(topo, prog, adv, prng.New(uint64(i)+1), sim.RunOptions{MaxSteps: steps})
		if err != nil {
			t.Fatal(err)
		}
		ok := true
		if len(protected) == 0 {
			ok = res.TotalEats == 0
		} else {
			for _, p := range protected {
				if res.EatsBy[p] > 0 {
					ok = false
				}
			}
		}
		if ok {
			safe++
		}
		// The adversary must remain fair: within a bounded window every
		// philosopher acts.
		if res.MaxScheduleGap > 400 {
			t.Fatalf("adversary exceeded its fairness window: max gap %d", res.MaxScheduleGap)
		}
	}
	return safe
}

// These tests reproduce the paper's headline qualitative results with the
// greedy livelock adversary (experiments E-S3, E-T2, E-T3, E-T4 of DESIGN.md).
// The thresholds are intentionally loose; EXPERIMENTS.md records the measured
// rates.

func TestAdversaryDefeatsLR1OnSection3Topology(t *testing.T) {
	if testing.Short() {
		t.Skip("adversary experiment skipped in -short mode")
	}
	t.Parallel()
	// Section 3 example: on the 6-philosopher / 3-fork doubled triangle a
	// fair adversary keeps LR1 from any progress with clearly positive
	// probability (the paper proves >= 1/4 · Π(1−p^k) >= 1/16; the adaptive
	// adversary does much better).
	safe := livelockRate(t, graph.Figure1A(), "LR1", nil, 20, 30000)
	if safe < 8 {
		t.Errorf("LR1 no-progress rate %d/20 under the Section 3 adversary; expected at least 8/20 (paper bound: 1/16)", safe)
	}
}

func TestAdversaryDefeatsLR2OnSection3Topology(t *testing.T) {
	if testing.Short() {
		t.Skip("adversary experiment skipped in -short mode")
	}
	t.Parallel()
	safe := livelockRate(t, graph.Figure1A(), "LR2", nil, 20, 30000)
	if safe < 8 {
		t.Errorf("LR2 no-progress rate %d/20 on Figure 1a; expected at least 8/20 (Theorem 2 applies)", safe)
	}
}

func TestAdversaryDefeatsLR2OnThetaGraph(t *testing.T) {
	if testing.Short() {
		t.Skip("adversary experiment skipped in -short mode")
	}
	t.Parallel()
	// Theorem 2: two forks joined by three philosophers (the minimal "ring
	// plus extra path" instance).
	safe := livelockRate(t, graph.Theorem2Minimal(), "LR2", nil, 20, 30000)
	if safe < 6 {
		t.Errorf("LR2 no-progress rate %d/20 on the theta graph; expected at least 6/20", safe)
	}
}

func TestGDP1DefeatsAdversaryOnSection3Topology(t *testing.T) {
	if testing.Short() {
		t.Skip("adversary experiment skipped in -short mode")
	}
	t.Parallel()
	// Theorem 3: GDP1 makes progress under every fair adversary — in
	// particular under the same adversary that defeats LR1.
	safe := livelockRate(t, graph.Figure1A(), "GDP1", nil, 20, 30000)
	if safe != 0 {
		t.Errorf("GDP1 was starved in %d/20 runs by a fair adversary; Theorem 3 predicts progress in every run", safe)
	}
}

func TestGDP2DefeatsAdversaryOnThetaGraph(t *testing.T) {
	if testing.Short() {
		t.Skip("adversary experiment skipped in -short mode")
	}
	t.Parallel()
	safe := livelockRate(t, graph.Theorem2Minimal(), "GDP2", nil, 20, 30000)
	if safe != 0 {
		t.Errorf("GDP2 was starved in %d/20 runs by a fair adversary; Theorem 4 predicts progress in every run", safe)
	}
}

func TestGDP2DefeatsAdversaryOnFigure1A(t *testing.T) {
	if testing.Short() {
		t.Skip("adversary experiment skipped in -short mode")
	}
	t.Parallel()
	safe := livelockRate(t, graph.Figure1A(), "GDP2", nil, 20, 30000)
	if safe != 0 {
		t.Errorf("GDP2 was starved in %d/20 runs by a fair adversary", safe)
	}
}

func TestAdversaryCannotDefeatLR1OnClassicRing(t *testing.T) {
	if testing.Short() {
		t.Skip("adversary experiment skipped in -short mode")
	}
	t.Parallel()
	// Lehmann & Rabin's original result: on the classic ring LR1 guarantees
	// progress with probability 1 under every fair scheduler, so even the
	// livelock adversary cannot starve it.
	safe := livelockRate(t, graph.Ring(5), "LR1", nil, 20, 30000)
	if safe != 0 {
		t.Errorf("LR1 was starved on the classic ring in %d/20 runs; the original Lehmann-Rabin guarantee should hold there", safe)
	}
}

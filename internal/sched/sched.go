// Package sched provides schedulers (the paper's adversaries) for the sim
// engine.
//
// The paper's execution model gives an adversary complete information about
// the computation so far and lets it pick the next philosopher to move; the
// only restriction considered is fairness (every philosopher is scheduled
// infinitely often). This package provides:
//
//   - neutral fair schedulers (round-robin, uniform random, sticky bursts,
//     fixed priority) used for throughput and correctness experiments;
//   - a fairness monitor that observes any scheduler and reports the largest
//     scheduling gap, so fairness is measured rather than assumed;
//   - the adversary machinery of Section 3: Advisors that encode a malicious
//     scheduling strategy, a Stubborn wrapper that turns any advisor into a
//     fair scheduler by bounding how long it may ignore a philosopher and
//     growing that bound each time it is forced (the paper's "level of
//     stubbornness" construction), a greedy livelock advisor that defeats LR1
//     and LR2 on the topologies of Theorems 1 and 2, and a scripted adversary
//     for reproducing the exact walks of Figures 2 and 3.
package sched

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/prng"
	"repro/internal/sim"
)

// RoundRobin schedules philosophers cyclically 0, 1, ..., n−1, 0, ... It is
// fair with gap exactly n.
type RoundRobin struct {
	next int
}

// NewRoundRobin returns a round-robin scheduler.
func NewRoundRobin() *RoundRobin { return &RoundRobin{} }

// Name implements sim.Scheduler.
func (*RoundRobin) Name() string { return "round-robin" }

// Next implements sim.Scheduler.
func (s *RoundRobin) Next(w *sim.World) graph.PhilID {
	p := graph.PhilID(s.next % len(w.Phils))
	s.next++
	return p
}

// Reset implements sim.ResettableScheduler.
func (s *RoundRobin) Reset() { s.next = 0 }

// UniformRandom schedules a uniformly random philosopher each step. It is
// fair with probability 1.
type UniformRandom struct {
	rng *prng.Source
}

// NewUniformRandom returns a uniform random scheduler driven by rng.
func NewUniformRandom(rng *prng.Source) *UniformRandom {
	return &UniformRandom{rng: rng}
}

// Name implements sim.Scheduler.
func (*UniformRandom) Name() string { return "uniform-random" }

// Next implements sim.Scheduler.
func (s *UniformRandom) Next(w *sim.World) graph.PhilID {
	return graph.PhilID(s.rng.Intn(len(w.Phils)))
}

// Reset implements sim.ResettableScheduler: the scheduler itself is
// stateless beyond its RNG, which the recycling harness reseeds in place.
func (s *UniformRandom) Reset() {}

// Sticky schedules each philosopher for Burst consecutive steps before moving
// to the next (round-robin over bursts). It models coarse time slicing and is
// fair with gap (n−1)·Burst.
type Sticky struct {
	// Burst is the number of consecutive steps given to each philosopher
	// (minimum 1).
	Burst int

	pos   int
	count int
}

// NewSticky returns a sticky scheduler with the given burst length.
func NewSticky(burst int) *Sticky {
	if burst < 1 {
		burst = 1
	}
	return &Sticky{Burst: burst}
}

// Name implements sim.Scheduler.
func (s *Sticky) Name() string { return fmt.Sprintf("sticky-%d", s.Burst) }

// Next implements sim.Scheduler.
func (s *Sticky) Next(w *sim.World) graph.PhilID {
	n := len(w.Phils)
	if s.count >= s.Burst {
		s.count = 0
		s.pos = (s.pos + 1) % n
	}
	s.count++
	return graph.PhilID(s.pos % n)
}

// Reset implements sim.ResettableScheduler.
func (s *Sticky) Reset() { s.pos, s.count = 0, 0 }

// Priority schedules the first schedulable philosopher in a fixed preference
// order every step. It is deliberately unfair (philosophers late in the order
// may never run while earlier ones exist); it is used in tests of the
// fairness monitor and in starvation demonstrations.
type Priority struct {
	// Order is the preference order; philosophers not listed are appended in
	// ID order.
	Order []graph.PhilID
}

// NewPriority returns a priority scheduler with the given preference order.
func NewPriority(order ...graph.PhilID) *Priority {
	return &Priority{Order: order}
}

// Name implements sim.Scheduler.
func (*Priority) Name() string { return "priority" }

// Next implements sim.Scheduler. It schedules the highest-priority philosopher
// that is not currently blocked in a pure busy-wait with nothing to do; since
// every philosopher always has an action in this model, it simply returns the
// first philosopher of the order.
func (s *Priority) Next(w *sim.World) graph.PhilID {
	if len(s.Order) > 0 {
		p := s.Order[0]
		if int(p) < len(w.Phils) {
			return p
		}
	}
	return 0
}

// Reset implements sim.ResettableScheduler: the preference order is
// configuration, not run state.
func (s *Priority) Reset() {}

// HungryFirst schedules a uniformly random hungry or eating philosopher when
// one exists, and a uniformly random philosopher otherwise. It keeps the
// system busy without being adversarial, and is fair with probability 1 under
// the AlwaysHungry workload.
type HungryFirst struct {
	rng  *prng.Source
	busy []graph.PhilID // per-step scratch, reused across Next calls
}

// NewHungryFirst returns a hungry-first random scheduler.
func NewHungryFirst(rng *prng.Source) *HungryFirst { return &HungryFirst{rng: rng} }

// Name implements sim.Scheduler.
func (*HungryFirst) Name() string { return "hungry-first" }

// Next implements sim.Scheduler.
func (s *HungryFirst) Next(w *sim.World) graph.PhilID {
	busy := s.busy[:0]
	for p := range w.Phils {
		if w.Phils[p].Phase != sim.Thinking {
			busy = append(busy, graph.PhilID(p))
		}
	}
	s.busy = busy
	if len(busy) == 0 {
		return graph.PhilID(s.rng.Intn(len(w.Phils)))
	}
	return busy[s.rng.Intn(len(busy))]
}

// Reset implements sim.ResettableScheduler: busy is per-step scratch whose
// contents never survive a Next call, so only the (externally reseeded) RNG
// carries state.
func (s *HungryFirst) Reset() {}

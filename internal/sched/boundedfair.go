package sched

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/sim"
)

// BoundedFair turns an Advisor into a scheduler that is fair by construction
// with a fixed bound: every philosopher is scheduled at least once every
// Window steps (so in an infinite run every philosopher is scheduled
// infinitely often, which is the paper's fairness requirement). Within the
// bound, the advisor is free to schedule whoever it wants.
//
// BoundedFair is the finite-horizon counterpart of the paper's growing
// "stubbornness level" construction (see Stubborn): for empirical runs a
// fixed window is the honest choice, because a window that grows without
// bound is indistinguishable from an unfair scheduler within any finite
// experiment.
type BoundedFair struct {
	// Advisor is the wrapped strategy.
	Advisor Advisor
	// Window is the fairness bound in steps (minimum 2·number of
	// philosophers is recommended). Zero means DefaultBoundedWindow.
	Window int64

	lastSched []int64
	step      int64
	forced    int64
}

// DefaultBoundedWindow is the window used when none is configured.
const DefaultBoundedWindow = 512

// NewBoundedFair wraps advisor with the given fairness window.
func NewBoundedFair(advisor Advisor, window int64) *BoundedFair {
	return &BoundedFair{Advisor: advisor, Window: window}
}

// Name implements sim.Scheduler.
func (s *BoundedFair) Name() string {
	return fmt.Sprintf("bounded-fair(%s,w=%d)", s.Advisor.Name(), s.window())
}

// ForcedCount returns how many scheduling decisions were forced by the
// fairness bound rather than chosen by the advisor.
func (s *BoundedFair) ForcedCount() int64 { return s.forced }

func (s *BoundedFair) window() int64 {
	if s.Window > 0 {
		return s.Window
	}
	return DefaultBoundedWindow
}

// Next implements sim.Scheduler.
func (s *BoundedFair) Next(w *sim.World) graph.PhilID {
	n := len(w.Phils)
	if len(s.lastSched) != n {
		// First step after construction or Reset (which truncates the table,
		// keeping its capacity for reuse across pooled trials).
		s.lastSched = resizeGaps(s.lastSched, n)
	}
	window := s.window()

	// Fairness: schedule the philosopher with the largest gap if it has
	// reached the window.
	forcedPhil := graph.NoPhil
	var worstGap int64 = -1
	for p := 0; p < n; p++ {
		var gap int64
		if s.lastSched[p] < 0 {
			gap = s.step + 1
		} else {
			gap = s.step - s.lastSched[p]
		}
		if gap >= window && gap > worstGap {
			worstGap = gap
			forcedPhil = graph.PhilID(p)
		}
	}

	var choice graph.PhilID
	if forcedPhil != graph.NoPhil {
		choice = forcedPhil
		s.forced++
	} else {
		choice = s.Advisor.Advise(w)
		if int(choice) < 0 || int(choice) >= n {
			choice = 0
		}
	}
	s.lastSched[choice] = s.step
	s.step++
	return choice
}

// Reset implements sim.ResettableScheduler. The wrapped Advisor needs no
// reset: every advisor in this package recomputes its analysis from the
// world each step and keeps only value-neutral scratch buffers.
func (s *BoundedFair) Reset() {
	s.lastSched = s.lastSched[:0]
	s.step = 0
	s.forced = 0
}

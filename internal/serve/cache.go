package serve

// The state-space cache. This file is part of the detsource-gated core (see
// internal/analysis): cache decisions — who explores, who waits, who gets
// evicted — must be a pure function of the request sequence, never of the
// wall clock or the environment, so that a request trace replays to the
// same cache behaviour. Recency is tracked by access order, not time.

import (
	"container/list"
	"context"
	"sync"

	"repro/dining"
)

// Status classifies how Cache.Get satisfied a request.
type Status string

const (
	// StatusHit: the space was already cached.
	StatusHit Status = "hit"
	// StatusMiss: this request ran the exploration (and cached the result).
	StatusMiss Status = "miss"
	// StatusShared: another request was already exploring the same
	// fingerprint; this one waited for that in-flight exploration.
	StatusShared Status = "shared"
)

// CacheStats is a snapshot of the cache counters (the /v1/stats payload).
type CacheStats struct {
	// Entries and States describe the current contents: number of cached
	// spaces and the sum of their state counts.
	Entries int `json:"entries"`
	States  int `json:"states"`
	// CapStates is the configured bound on States.
	CapStates int `json:"cap_states"`
	// Hits, Misses and Shared count Get outcomes; Explorations counts
	// actual explore invocations (== Misses: the singleflight guarantee in
	// counter form), Evictions counts LRU removals.
	Hits         int64 `json:"hits"`
	Misses       int64 `json:"misses"`
	Shared       int64 `json:"shared"`
	Explorations int64 `json:"explorations"`
	Evictions    int64 `json:"evictions"`
}

// entry is one cached space on the recency list.
type entry struct {
	key    string
	space  *dining.StateSpace
	states int
	elem   *list.Element
}

// flight is one in-flight exploration; waiters block on done.
type flight struct {
	done  chan struct{}
	space *dining.StateSpace
	err   error
}

// Cache is a bounded, fingerprint-keyed store of explored state spaces with
// singleflight population: concurrent Gets for one key run the explore
// function exactly once. Entries are immutable once published — a
// dining.StateSpace never changes after exploration and builds its
// predecessor index through a sync.Once — so any number of readers may use
// a returned space concurrently, including while it is being evicted (an
// evicted space stays valid for the requests still holding it; eviction
// only stops future reuse).
//
// The bound is a state budget, not an entry count: the sum of NumStates
// over retained entries stays at or below the cap, least-recently-used
// entries evicting first. The most recent entry is always retained, even
// when it exceeds the cap on its own — the request that paid for the
// exploration gets to keep its result for at least one round.
type Cache struct {
	mu      sync.Mutex
	cap     int
	total   int
	ll      *list.List // of *entry; front = most recently used
	entries map[string]*entry
	flights map[string]*flight
	stats   CacheStats
}

// NewCache builds a cache bounded by capStates total retained states
// (0 = DefaultCacheStates).
func NewCache(capStates int) *Cache {
	if capStates <= 0 {
		capStates = DefaultCacheStates
	}
	return &Cache{
		cap:     capStates,
		ll:      list.New(),
		entries: make(map[string]*entry),
		flights: make(map[string]*flight),
	}
}

// Get returns the state space cached under key, exploring at most once
// across all concurrent callers. onStatus, when non-nil, is invoked exactly
// once, before any blocking work, with the request's disposition — a hit
// returns immediately afterwards, a miss runs explore, a shared request
// waits for the in-flight exploration (or its own ctx). The explore
// function is supplied by the caller so the cache stays agnostic of engine
// assembly; a failed exploration is not cached, and its error propagates to
// every waiter of that flight. A cancelled waiter returns its ctx error
// without disturbing the exploration.
func (c *Cache) Get(ctx context.Context, key string, onStatus func(Status), explore func() (*dining.StateSpace, error)) (*dining.StateSpace, Status, error) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.ll.MoveToFront(e.elem)
		c.stats.Hits++
		c.mu.Unlock()
		notify(onStatus, StatusHit)
		return e.space, StatusHit, nil
	}
	if f, ok := c.flights[key]; ok {
		c.stats.Shared++
		c.mu.Unlock()
		notify(onStatus, StatusShared)
		select {
		case <-f.done:
			return f.space, StatusShared, f.err
		case <-ctx.Done():
			return nil, StatusShared, ctx.Err()
		}
	}
	f := &flight{done: make(chan struct{})}
	c.flights[key] = f
	c.stats.Misses++
	c.stats.Explorations++
	c.mu.Unlock()

	notify(onStatus, StatusMiss)
	f.space, f.err = explore()

	c.mu.Lock()
	delete(c.flights, key)
	if f.err == nil {
		c.insert(key, f.space)
	}
	c.mu.Unlock()
	close(f.done)
	return f.space, StatusMiss, f.err
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.stats
	st.Entries = len(c.entries)
	st.States = c.total
	st.CapStates = c.cap
	return st
}

// insert publishes a freshly explored space and evicts from the LRU tail
// until the state budget holds again (always keeping the newest entry).
// Callers hold c.mu.
func (c *Cache) insert(key string, space *dining.StateSpace) {
	e := &entry{key: key, space: space, states: space.NumStates()}
	e.elem = c.ll.PushFront(e)
	c.entries[key] = e
	c.total += e.states
	for c.total > c.cap && c.ll.Len() > 1 {
		back := c.ll.Back()
		victim := back.Value.(*entry)
		c.ll.Remove(back)
		delete(c.entries, victim.key)
		c.total -= victim.states
		c.stats.Evictions++
	}
}

// notify invokes the optional status callback.
func notify(onStatus func(Status), st Status) {
	if onStatus != nil {
		onStatus(st)
	}
}

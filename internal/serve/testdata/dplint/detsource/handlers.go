package detsource

import "time"

// Stamp is clean despite reading the wall clock: handlers.go is not in the
// gated-file set of repro/internal/serve, because response timing is
// exactly what the serve handlers use the clock for.
func Stamp() time.Time { return time.Now() }

// Elapsed is likewise clean in an ungated file.
func Elapsed(start time.Time) time.Duration { return time.Since(start) }

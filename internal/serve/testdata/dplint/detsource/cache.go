// Package detsource seeds the file-level detsource gate. The directory's
// natural import path sits under repro/internal/serve, whose entry in
// deterministicFileTrees gates only cache.go and fingerprint.go — so the
// violations in this file are reported while the identical calls in
// handlers.go stay silent.
package detsource

import (
	"math/rand" // want `deterministic package .* imports math/rand`
	"time"
)

// Evict is a gated-file violation: cache logic must not read the clock.
func Evict() int64 {
	return time.Now().Unix() // want `time\.Now reads the wall clock`
}

// Uptime is a suppressed finding: the annotation names the analyzer and
// carries a reason, so the diagnostic on the line below is swallowed.
func Uptime(start time.Time) time.Duration {
	//dplint:ok detsource exercising the suppression path in a gated file
	return time.Since(start)
}

// Pick keeps the math/rand import referenced; only the import line itself
// is the finding.
func Pick() int { return rand.Int() }

package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/dining"
)

// newTestServer boots a serve.Server on an httptest listener with a fixed
// clock, so elapsed_ms is deterministically zero.
func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	if opts.Clock == nil {
		fixed := time.Unix(1_700_000_000, 0)
		opts.Clock = func() time.Time { return fixed }
	}
	s := New(opts)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// post sends a JSON body and decodes the NDJSON response into events.
func post(t *testing.T, ts *httptest.Server, path string, body any) (int, []Event) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(string(raw)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var events []Event
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	for sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, events
}

// checkAccountable asserts the per-line contract of an engine endpoint:
// every event carries the request id, a 1-based increasing sequence number
// and the echoed engine config with a non-empty fingerprint.
func checkAccountable(t *testing.T, events []Event, wantID string) {
	t.Helper()
	if len(events) == 0 {
		t.Fatal("no response events")
	}
	for i, ev := range events {
		if ev.ID != wantID {
			t.Errorf("event %d: id = %q, want %q", i, ev.ID, wantID)
		}
		if ev.Seq != i+1 {
			t.Errorf("event %d: seq = %d, want %d", i, ev.Seq, i+1)
		}
		if ev.Config == nil || ev.Config.Fingerprint == "" {
			t.Errorf("event %d: missing config echo / fingerprint", i)
		}
	}
	if last := events[len(events)-1]; last.Event != "done" {
		t.Errorf("last event = %q, want done", last.Event)
	}
}

var checkBody = Request{ID: "req-1", Topology: "ring", N: 3, Algorithm: dining.LR1}

// TestCheckSecondRequestIsCacheHit is the headline acceptance criterion:
// the same /v1/check configuration twice, the first response reporting a
// cache miss and the second a hit, with exactly one exploration run.
func TestCheckSecondRequestIsCacheHit(t *testing.T) {
	t.Parallel()
	s, ts := newTestServer(t, Options{})

	code, first := post(t, ts, "/v1/check", checkBody)
	if code != http.StatusOK {
		t.Fatalf("first request: status %d", code)
	}
	checkAccountable(t, first, "req-1")
	if first[0].Event != "progress" || first[0].Cache != StatusMiss {
		t.Errorf("first response opens with (%q, cache=%q), want progress/miss", first[0].Event, first[0].Cache)
	}

	second := Request{ID: "req-2", Topology: "ring", N: 3, Algorithm: dining.LR1}
	code, events := post(t, ts, "/v1/check", second)
	if code != http.StatusOK {
		t.Fatalf("second request: status %d", code)
	}
	checkAccountable(t, events, "req-2")
	for i, ev := range events {
		if ev.Cache != StatusHit {
			t.Errorf("second response event %d: cache = %q, want hit on every line", i, ev.Cache)
		}
	}
	if first[0].Config.Fingerprint != events[0].Config.Fingerprint {
		t.Errorf("identical configs echoed different fingerprints: %s vs %s",
			first[0].Config.Fingerprint, events[0].Config.Fingerprint)
	}

	// Both responses carry the same verdicts: four exhaustive built-ins.
	for _, events := range [][]Event{first, events} {
		results := 0
		for _, ev := range events {
			if ev.Event == "result" {
				results++
				if ev.Result == nil {
					t.Error("result event without payload")
				}
			}
		}
		if want := len(dining.ExhaustiveProperties()); results != want {
			t.Errorf("got %d result lines, want %d", results, want)
		}
	}

	if st := s.CacheStats(); st.Explorations != 1 || st.Hits != 1 || st.Misses != 1 {
		t.Errorf("cache stats = %+v, want exactly 1 exploration, 1 miss, 1 hit", st)
	}
}

// TestCheckConcurrentIdenticalRequests fires identical /v1/check requests
// concurrently and checks that the server ran exactly one exploration —
// the singleflight guarantee end-to-end through HTTP. (Any interleaving
// satisfies this: overlapping requests share the flight, later ones hit.)
func TestCheckConcurrentIdenticalRequests(t *testing.T) {
	t.Parallel()
	s, ts := newTestServer(t, Options{})
	const clients = 8
	var wg sync.WaitGroup
	errs := make(chan string, clients)
	for i := range clients {
		wg.Add(1)
		go func() {
			defer wg.Done()
			req := checkBody
			req.ID = fmt.Sprintf("c%d", i)
			code, events := post(t, ts, "/v1/check", req)
			if code != http.StatusOK {
				errs <- fmt.Sprintf("client %d: status %d", i, code)
				return
			}
			if last := events[len(events)-1]; last.Event != "done" {
				errs <- fmt.Sprintf("client %d: last event %q", i, last.Event)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Error(msg)
	}
	if st := s.CacheStats(); st.Explorations != 1 {
		t.Errorf("%d identical concurrent requests ran %d explorations, want exactly 1 (stats %+v)",
			clients, st.Explorations, st)
	}
}

// TestCheckDistinctConfigsDistinctEntries checks that a semantically
// different request (a fault spec) misses rather than reusing the entry.
func TestCheckDistinctConfigsDistinctEntries(t *testing.T) {
	t.Parallel()
	s, ts := newTestServer(t, Options{})
	if code, _ := post(t, ts, "/v1/check", checkBody); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	faulty := Request{Topology: "ring", N: 3, Algorithm: dining.LR1, Faults: "crash-rejoin:0.1",
		Props: []string{dining.ProgressUnderFaults}}
	code, events := post(t, ts, "/v1/check", faulty)
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if events[0].Cache != StatusMiss {
		t.Errorf("fault-injected config served cache %q, want miss — fault specs must split the key", events[0].Cache)
	}
	delayed := Request{Topology: "ring", N: 3, Algorithm: dining.LR1, Faults: "delayed-grants:0.5,2",
		Props: []string{dining.ProgressUnderFaults}}
	code, dEvents := post(t, ts, "/v1/check", delayed)
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if dEvents[0].Cache != StatusMiss {
		t.Errorf("delayed-grants config served cache %q, want miss", dEvents[0].Cache)
	}
	if a, b := events[0].Config.Fingerprint, dEvents[0].Config.Fingerprint; a == b {
		t.Errorf("crash-rejoin and delayed-grants requests share fingerprint %s — fault specs must split the key", a)
	}
	if got := dEvents[0].Config.Faults; got != "delayed-grants:0.5,2" {
		t.Errorf("echoed fault spec %q, want the canonical delayed-grants spec", got)
	}
	if st := s.CacheStats(); st.Explorations != 3 || st.Entries != 3 {
		t.Errorf("stats = %+v, want 3 explorations and 3 entries", st)
	}
}

// TestCheckStatisticalOnlySkipsExploration: a props list with no exhaustive
// property must not explore (or touch the cache) at all.
func TestCheckStatisticalOnlySkipsExploration(t *testing.T) {
	t.Parallel()
	s, ts := newTestServer(t, Options{})
	req := Request{Topology: "ring", N: 3, Algorithm: dining.LR1,
		Props: []string{dining.StatisticalProgress}, Trials: 5, MaxSteps: 2000}
	code, events := post(t, ts, "/v1/check", req)
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	for i, ev := range events {
		if ev.Cache != "" {
			t.Errorf("event %d carries cache %q, want none for statistical-only checks", i, ev.Cache)
		}
	}
	if st := s.CacheStats(); st.Explorations != 0 {
		t.Errorf("statistical-only request ran %d explorations, want 0", st.Explorations)
	}
}

// TestTrialsEndpoint checks /v1/trials: one trial line per requested trial,
// every line accountable, closing with done.
func TestTrialsEndpoint(t *testing.T) {
	t.Parallel()
	_, ts := newTestServer(t, Options{})
	req := Request{ID: "t-1", Topology: "ring", N: 3, Algorithm: dining.GDP1, Trials: 4, MaxSteps: 2000}
	code, events := post(t, ts, "/v1/trials", req)
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	checkAccountable(t, events, "t-1")
	trials := 0
	for _, ev := range events {
		if ev.Event == "trial" {
			trials++
			if ev.Trial == nil {
				t.Error("trial event without payload")
			}
		}
	}
	if trials != 4 {
		t.Errorf("got %d trial lines, want 4", trials)
	}
}

// TestSweepEndpoint checks /v1/sweep: one scenario line per grid cell, the
// expanded grid echoed on every line.
func TestSweepEndpoint(t *testing.T) {
	t.Parallel()
	_, ts := newTestServer(t, Options{})
	req := SweepRequest{
		ID:         "s-1",
		Topologies: []TopologySpec{{Name: "ring", N: 3}},
		Algorithms: []string{dining.GDP1, dining.OrderedForks},
		Trials:     2,
		MaxSteps:   2000,
	}
	code, events := post(t, ts, "/v1/sweep", req)
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	scenarios := 0
	for i, ev := range events {
		if ev.ID != "s-1" || ev.Seq != i+1 {
			t.Errorf("event %d: id/seq = %q/%d", i, ev.ID, ev.Seq)
		}
		if ev.SweepConfig == nil || ev.SweepConfig.Scenarios != 2 {
			t.Errorf("event %d: missing or wrong sweep config echo: %+v", i, ev.SweepConfig)
		}
		if ev.Event == "scenario" {
			scenarios++
			if ev.Scenario == nil {
				t.Error("scenario event without payload")
			}
		}
	}
	if scenarios != 2 {
		t.Errorf("got %d scenario lines, want 2", scenarios)
	}
	if last := events[len(events)-1]; last.Event != "done" {
		t.Errorf("last event = %q, want done", last.Event)
	}
}

// TestBadRequests checks the validation path: every malformed request gets
// a 400 with a single NDJSON error event carrying a request id.
func TestBadRequests(t *testing.T) {
	t.Parallel()
	_, ts := newTestServer(t, Options{})
	cases := []struct {
		name string
		path string
		body any
	}{
		{"unknown topology", "/v1/check", Request{Topology: "moebius", Algorithm: dining.LR1}},
		{"unknown algorithm", "/v1/check", Request{Topology: "ring", N: 3, Algorithm: "nope"}},
		{"unknown property", "/v1/check", Request{Topology: "ring", N: 3, Algorithm: dining.LR1, Props: []string{"nope"}}},
		{"unknown field", "/v1/check", map[string]any{"topology": "ring", "n": 3, "algorithm": dining.LR1, "shardz": 4}},
		{"empty sweep", "/v1/sweep", SweepRequest{}},
		{"unknown sweep topology", "/v1/sweep", SweepRequest{Topologies: []TopologySpec{{Name: "moebius"}}, Algorithms: []string{dining.LR1}}},
	}
	for _, tc := range cases {
		code, events := post(t, ts, tc.path, tc.body)
		if code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.name, code)
		}
		if len(events) != 1 || events[0].Event != "error" || events[0].Error == "" || events[0].ID == "" {
			t.Errorf("%s: response = %+v, want one accountable error event", tc.name, events)
		}
	}
}

// TestStatsAndHealthz checks the two GET endpoints.
func TestStatsAndHealthz(t *testing.T) {
	t.Parallel()
	_, ts := newTestServer(t, Options{})
	if code, _ := post(t, ts, "/v1/check", checkBody); code != http.StatusOK {
		t.Fatalf("priming check: status %d", code)
	}

	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st CacheStats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Explorations != 1 || st.Entries != 1 || st.CapStates != DefaultCacheStates {
		t.Errorf("/v1/stats = %+v, want 1 exploration, 1 entry, default cap", st)
	}

	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body := make([]byte, 16)
	n, _ := resp.Body.Read(body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || strings.TrimSpace(string(body[:n])) != "ok" {
		t.Errorf("/healthz = %d %q, want 200 ok", resp.StatusCode, body[:n])
	}
}

// TestServerAssignsRequestIDs checks that requests without a client id get
// distinct server-assigned ids.
func TestServerAssignsRequestIDs(t *testing.T) {
	t.Parallel()
	_, ts := newTestServer(t, Options{})
	req := Request{Topology: "ring", N: 3, Algorithm: dining.LR1}
	_, first := post(t, ts, "/v1/check", req)
	_, second := post(t, ts, "/v1/check", req)
	if first[0].ID == "" || second[0].ID == "" || first[0].ID == second[0].ID {
		t.Errorf("server-assigned ids = %q and %q, want distinct non-empty", first[0].ID, second[0].ID)
	}
}

// TestAdmissionCapRejectsOversizedChecks checks -max-request-states: with a
// cap configured, /v1/check admits only requests bounded at or under it;
// over-cap and unbounded requests get a 422 with one structured error line
// and never touch the cache. /v1/trials (no exploration) stays unaffected.
func TestAdmissionCapRejectsOversizedChecks(t *testing.T) {
	t.Parallel()
	s, ts := newTestServer(t, Options{MaxRequestStates: 5000})

	admitted := Request{ID: "ok", Topology: "ring", N: 3, Algorithm: dining.LR1, MaxStates: 5000}
	if code, events := post(t, ts, "/v1/check", admitted); code != http.StatusOK {
		t.Fatalf("at-cap request: status %d, events %+v", code, events)
	}

	rejected := []struct {
		name string
		req  Request
		want string
	}{
		{"over cap", Request{ID: "big", Topology: "ring", N: 3, Algorithm: dining.LR1, MaxStates: 5001},
			"exceeds this server's cap of 5000"},
		{"unbounded", Request{ID: "inf", Topology: "ring", N: 3, Algorithm: dining.LR1},
			"no max_states bound"},
	}
	for _, tc := range rejected {
		code, events := post(t, ts, "/v1/check", tc.req)
		if code != http.StatusUnprocessableEntity {
			t.Errorf("%s: status %d, want 422", tc.name, code)
		}
		if len(events) != 1 || events[0].Event != "error" || events[0].ID != tc.req.ID {
			t.Fatalf("%s: response = %+v, want one accountable error event", tc.name, events)
		}
		if !strings.Contains(events[0].Error, tc.want) {
			t.Errorf("%s: error %q, want it to mention %q", tc.name, events[0].Error, tc.want)
		}
	}
	if st := s.CacheStats(); st.Explorations != 1 {
		t.Errorf("rejected requests changed the exploration count: stats %+v, want exactly the admitted one", st)
	}

	trials := Request{ID: "t", Topology: "ring", N: 3, Algorithm: dining.GDP1, Trials: 2, MaxSteps: 2000}
	if code, _ := post(t, ts, "/v1/trials", trials); code != http.StatusOK {
		t.Errorf("/v1/trials: status %d, want 200 (admission caps explorations, not sampling)", code)
	}
}

// TestCheckSymmetryRequest checks the symmetry knob end-to-end: the quotient
// request is echoed (config + distinct fingerprint), verdicts match the
// unreduced request, and the done line reports the smaller orbit space.
func TestCheckSymmetryRequest(t *testing.T) {
	t.Parallel()
	s, ts := newTestServer(t, Options{})
	code, plain := post(t, ts, "/v1/check", checkBody)
	if code != http.StatusOK {
		t.Fatalf("unreduced request: status %d", code)
	}
	req := Request{ID: "sym", Topology: "ring", N: 3, Algorithm: dining.LR1, Symmetry: true}
	code, sym := post(t, ts, "/v1/check", req)
	if code != http.StatusOK {
		t.Fatalf("symmetry request: status %d", code)
	}
	checkAccountable(t, sym, "sym")
	if !sym[0].Config.Symmetry || plain[0].Config.Symmetry {
		t.Error("config echo does not reflect the symmetry knob")
	}
	if sym[0].Config.Fingerprint == plain[0].Config.Fingerprint {
		t.Error("symmetry did not split the fingerprint — quotient and unreduced spaces would share a cache entry")
	}
	verdicts := func(events []Event) map[string]bool {
		out := make(map[string]bool)
		for _, ev := range events {
			if ev.Event == "result" {
				out[ev.Result.Property] = ev.Result.Passed
			}
		}
		return out
	}
	pv, sv := verdicts(plain), verdicts(sym)
	if len(sv) != len(pv) {
		t.Fatalf("symmetry returned %d verdicts, unreduced %d", len(sv), len(pv))
	}
	for prop, passed := range pv {
		if sv[prop] != passed {
			t.Errorf("%s: symmetry verdict %v, unreduced %v", prop, sv[prop], passed)
		}
	}
	plainDone, symDone := plain[len(plain)-1], sym[len(sym)-1]
	if symDone.States >= plainDone.States {
		t.Errorf("quotient explored %d states, unreduced %d — expected a strict reduction on ring-3",
			symDone.States, plainDone.States)
	}
	if st := s.CacheStats(); st.Entries != 2 {
		t.Errorf("stats = %+v, want 2 cache entries (quotient and unreduced)", st)
	}
}

// TestBaseContextCancellationAbortsExploration checks the shutdown path:
// cancelling the server's base context fails in-flight explorations.
func TestBaseContextCancellationAbortsExploration(t *testing.T) {
	t.Parallel()
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already cancelled: any exploration fails immediately
	_, ts := newTestServer(t, Options{BaseContext: ctx})
	code, events := post(t, ts, "/v1/check", checkBody)
	if code != http.StatusOK {
		t.Fatalf("status %d (streaming starts before the exploration fails)", code)
	}
	last := events[len(events)-1]
	if last.Event != "error" || last.Error == "" {
		t.Errorf("last event = %+v, want an error event from the cancelled exploration", last)
	}
}

package serve

import (
	"bytes"
	"encoding/json"
	"flag"
	"net/http"
	"os"
	"path/filepath"
	"testing"

	"repro/dining"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the NDJSON golden files")

// goldenRequest posts body and compares the raw NDJSON response bytes to a
// golden file — the serve wire format is a stable contract, like the dining
// JSON goldens. Determinism: the test server's clock is fixed (elapsed_ms
// 0), the request pins its id, and workers are forced to 1 so streamed
// lines arrive in index order.
func goldenRequest(t *testing.T, name, path string, body any) []byte {
	t.Helper()
	_, ts := newTestServer(t, Options{})
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	got := buf.Bytes()

	goldenPath := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.WriteFile(goldenPath, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return got
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden file (run go test ./internal/serve -update-golden): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s: NDJSON output changed — the wire format is a stable contract.\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
	return got
}

// TestGoldenCheck pins the /v1/check wire format. The configuration is
// naive-left-first on the classic ring, which deadlocks — so the golden
// also pins a failing verdict with an embedded counterexample trace.
func TestGoldenCheck(t *testing.T) {
	t.Parallel()
	goldenRequest(t, "check.golden.ndjson", "/v1/check", Request{
		ID:        "golden-check",
		Topology:  "ring",
		N:         3,
		Algorithm: dining.NaiveLeftFirst,
		Props:     []string{dining.DeadlockFreedom, dining.Progress},
		Workers:   1,
		Shards:    1,
	})
}

// TestGoldenTrials pins the /v1/trials wire format.
func TestGoldenTrials(t *testing.T) {
	t.Parallel()
	goldenRequest(t, "trials.golden.ndjson", "/v1/trials", Request{
		ID:        "golden-trials",
		Topology:  "ring",
		N:         3,
		Algorithm: dining.GDP1,
		Trials:    3,
		MaxSteps:  2000,
		Seed:      7,
		Workers:   1,
		Shards:    1,
	})
}

// TestGoldenSweep pins the /v1/sweep wire format.
func TestGoldenSweep(t *testing.T) {
	t.Parallel()
	goldenRequest(t, "sweep.golden.ndjson", "/v1/sweep", SweepRequest{
		ID:         "golden-sweep",
		Topologies: []TopologySpec{{Name: "ring", N: 3}},
		Algorithms: []string{dining.GDP1, dining.OrderedForks},
		Trials:     2,
		MaxSteps:   2000,
		Seed:       7,
		Workers:    1,
	})
}

// TestCheckCounterexampleReplays round-trips a streamed counterexample:
// decode the failing verdict from a /v1/check response, rebuild the engine
// from the echoed configuration, and replay the trace step by step with
// Engine.ReplayTrace. A trace that survives the HTTP encoding and still
// replays proves the serve layer transports the dining wire formats intact.
func TestCheckCounterexampleReplays(t *testing.T) {
	t.Parallel()
	_, ts := newTestServer(t, Options{})
	req := Request{
		ID:        "replay",
		Topology:  "ring",
		N:         3,
		Algorithm: dining.NaiveLeftFirst,
		Props:     []string{dining.DeadlockFreedom},
	}
	code, events := post(t, ts, "/v1/check", req)
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	var failed *Event
	for i, ev := range events {
		if ev.Event == "result" && ev.Result != nil && !ev.Result.Passed {
			failed = &events[i]
			break
		}
	}
	if failed == nil {
		t.Fatal("no failing verdict in response — expected naive-left-first to deadlock on ring-3")
	}
	trace := failed.Result.Counterexample
	if trace == nil {
		t.Fatal("failing verdict carries no counterexample")
	}

	// Rebuild the engine from the line's own config echo — the
	// accountability contract says the echo suffices to reproduce.
	echo := failed.Config
	topo, err := dining.NewTopology("ring", echo.Phils)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := dining.New(topo, echo.Algorithm, dining.WithSeed(echo.Seed))
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.ReplayTrace(trace); err != nil {
		t.Errorf("streamed counterexample does not replay: %v", err)
	}
}

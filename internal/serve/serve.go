// Package serve is the long-lived checking service behind cmd/dpserve: an
// HTTP server exposing the dining engine's streaming surfaces — property
// checking, Monte-Carlo trials and sweep grids — over newline-delimited
// JSON, with a fingerprint-keyed cache of explored state spaces so that
// many concurrent clients asking about the same configuration share one
// exploration.
//
// # Endpoints
//
//	POST /v1/check   body: Request   → NDJSON property verdicts
//	POST /v1/trials  body: Request   → NDJSON per-trial results
//	POST /v1/sweep   body: SweepRequest → NDJSON per-scenario aggregates
//	GET  /v1/stats   → one JSON object with cache statistics
//	GET  /healthz    → "ok"
//
// # NDJSON schema
//
// Every response line is one JSON-encoded Event terminated by '\n'. Every
// line of an engine endpoint (/v1/check, /v1/trials) is accountable on its
// own: it carries the request id (client-chosen, or server-assigned
// "r<n>"), a monotonically increasing per-response sequence number, the
// full canonical engine configuration echoed back (Config, including the
// fingerprint the cache keyed on), the cache disposition of the request's
// state space, and the wall-clock milliseconds since the request started.
// Sweep lines carry the echoed sweep configuration (SweepConfig) instead
// of a single engine Config, plus the per-cell scenario identity on every
// scenario line. A consumer can therefore log any single line and later
// reproduce the exact engine (or grid cell) that produced it.
//
// The event kinds, in stream order:
//
//	{"event":"progress", ...}  exploration/run lifecycle notes (Detail)
//	{"event":"result",  "result":  {PropertyResult}}   one per property
//	{"event":"trial",   "trial":   {TrialResult}}      one per trial
//	{"event":"scenario","scenario":{ScenarioResult}}   one per sweep cell
//	{"event":"error",   "error":"..."}                 terminal failure
//	{"event":"done",    ...}   totals: states, transitions, elapsed_ms
//
// # Admission control
//
// With Options.MaxRequestStates set (dpserve -max-request-states), /v1/check
// requests are admitted only when their engine carries a max_states bound at
// or under the cap; unbounded requests and requests over the cap are
// rejected with HTTP 422 and a single structured error line before any
// exploration starts. Malformed requests stay 400 — the codes separate
// "fix your request" from "ask for less".
//
// The payload wire formats (PropertyResult, TrialResult, ScenarioResult,
// counterexample traces) are exactly the dining package's stable JSON
// formats — the same bytes dpcheck -json and dpsim -json emit — and the
// envelope is golden-pinned in testdata.
//
// # Fingerprints and the state-space cache
//
// The cache key of an explored state space is dining.Engine.Fingerprint():
// a versioned hash of the canonical engine configuration (topology
// structure, algorithm and options, scheduler, seed, bounds, trial count,
// fairness window, protected set, shard count, canonical fault spec). The
// serve layer deliberately adds nothing to the key and removes nothing
// from it — deriving cache keys from the engine itself is what guarantees
// a key can never drift from engine semantics as options are added. Two
// requests differing only in workers share an entry (results are pinned
// bit-identical for every worker count); any semantic difference, fault
// specs and shard counts included, splits the key.
//
// Concurrent requests for the same fingerprint share one in-flight
// exploration (Cache.Get has singleflight semantics), hot fingerprints are
// served from the LRU without re-exploring, and the cache is bounded by
// total retained state count, evicting least-recently-used spaces first.
// Cached spaces are immutable and safe for any number of concurrent
// readers; their lazily built predecessor indexes are constructed at most
// once and retained with the entry, so every property check after the
// first runs against a warm index.
package serve

import (
	"context"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"
)

// DefaultCacheStates bounds the cache when Options.CacheStates is zero:
// one million retained states is a few hundred MB with predecessor
// indexes — a deliberate single-node default, tunable with dpserve
// -cache-states.
const DefaultCacheStates = 1 << 20

// Options configures a Server.
type Options struct {
	// CacheStates bounds the state-space cache: the sum of NumStates over
	// retained entries stays at or below it (0 = DefaultCacheStates).
	CacheStates int
	// Workers and Shards are the defaults applied to requests that leave
	// the corresponding field zero (0 = the engine defaults: one worker
	// per CPU, shards matching workers).
	Workers int
	Shards  int
	// MaxRequestStates is the admission cap of /v1/check: a request whose
	// engine state bound (max_states) exceeds the cap — or is absent, i.e.
	// unbounded — is rejected with 422 and a single structured error line
	// before any exploration starts. Zero disables admission control. The
	// cap guards the shared exploration workers of a multi-tenant server;
	// it is deliberately per-request and independent of CacheStates, which
	// only bounds what is retained afterwards.
	MaxRequestStates int
	// BaseContext bounds cache-filling explorations. An exploration runs
	// under this context, not the requesting client's: the explored space
	// outlives any one request, so a client disconnect must not cancel the
	// work other waiters (or future requests) will reuse. Cancel it to
	// abort in-flight explorations at shutdown. Nil means Background.
	BaseContext context.Context
	// Clock substitutes the wall clock for the response timing fields
	// (nil = time.Now). The golden tests pin the wire format with a fixed
	// clock; production servers leave it nil.
	Clock func() time.Time
}

// Server is the checking service: an http.Handler with a shared state-space
// cache. Construct with New; a Server is safe for concurrent use.
type Server struct {
	cache            *Cache
	workers          int
	shards           int
	maxRequestStates int
	base             context.Context
	now              func() time.Time
	mux              *http.ServeMux
	reqSeq           atomic.Int64
}

// New builds a Server with the given options.
func New(opts Options) *Server {
	s := &Server{
		cache:            NewCache(opts.CacheStates),
		workers:          opts.Workers,
		shards:           opts.Shards,
		maxRequestStates: opts.MaxRequestStates,
		base:             opts.BaseContext,
		now:              opts.Clock,
	}
	if s.base == nil {
		s.base = context.Background()
	}
	if s.now == nil {
		s.now = time.Now
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/check", s.handleCheck)
	s.mux.HandleFunc("POST /v1/trials", s.handleTrials)
	s.mux.HandleFunc("POST /v1/sweep", s.handleSweep)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	return s
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// CacheStats returns a snapshot of the state-space cache counters.
func (s *Server) CacheStats() CacheStats { return s.cache.Stats() }

// requestID returns the client-chosen id, or assigns "r<n>" when empty.
func (s *Server) requestID(client string) string {
	if client != "" {
		return client
	}
	return "r" + strconv.FormatInt(s.reqSeq.Add(1), 10)
}

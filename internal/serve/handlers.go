package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"repro/dining"
)

// contentType is the NDJSON media type of the streaming endpoints.
const contentType = "application/x-ndjson"

// stream bundles the per-request plumbing every streaming handler shares:
// the writer, the request id, the start instant and the echoed config.
type stream struct {
	sw    *streamWriter
	id    string
	start time.Time
	now   func() time.Time
}

// elapsed returns whole milliseconds since the request started.
func (st *stream) elapsed() int64 { return st.now().Sub(st.start).Milliseconds() }

// event stamps the shared accountability fields onto ev and emits it.
func (st *stream) event(ev Event) {
	ev.ID = st.id
	ev.ElapsedMS = st.elapsed()
	st.sw.emit(ev)
}

// begin opens an NDJSON response.
func (s *Server) begin(w http.ResponseWriter, id string) *stream {
	w.Header().Set("Content-Type", contentType)
	return &stream{sw: newStreamWriter(w), id: id, start: s.now(), now: s.now}
}

// reject writes a 400 with a single NDJSON error line — validation failures
// happen before any streaming, so the status code is still settable.
func (s *Server) reject(w http.ResponseWriter, id string, err error) {
	s.rejectStatus(w, id, http.StatusBadRequest, err)
}

// rejectStatus is reject with an explicit status code; admission failures use
// 422 to distinguish a well-formed but inadmissible request from a malformed
// one.
func (s *Server) rejectStatus(w http.ResponseWriter, id string, code int, err error) {
	w.Header().Set("Content-Type", contentType)
	w.WriteHeader(code)
	st := &stream{sw: newStreamWriter(w), id: id, start: s.now(), now: s.now}
	st.event(Event{Event: "error", Error: err.Error()})
}

// admit enforces the server's per-request exploration cap on an assembled
// engine: with -max-request-states set, a /v1/check engine must carry a
// max_states bound at or under the cap. Unbounded requests are rejected too —
// an admission cap that admitted the unbounded default would cap everything
// except the most expensive request.
func (s *Server) admit(eng *dining.Engine) error {
	limit := s.maxRequestStates
	if limit <= 0 {
		return nil
	}
	switch ms := eng.MaxStates(); {
	case ms == 0:
		return fmt.Errorf("admission: request has no max_states bound; this server caps explorations at %d states (-max-request-states)", limit)
	case ms > limit:
		return fmt.Errorf("admission: request max_states %d exceeds this server's cap of %d states (-max-request-states)", ms, limit)
	}
	return nil
}

// handleCheck streams property verdicts. The state space backing the
// exhaustive properties comes from the fingerprint-keyed cache: a hot
// fingerprint is served without re-exploring, concurrent cold requests for
// one fingerprint share a single exploration, and the cache disposition is
// reported on the response's progress line and carried on every line after.
func (s *Server) handleCheck(w http.ResponseWriter, r *http.Request) {
	var req Request
	if err := decodeBody(r, &req); err != nil {
		s.reject(w, s.requestID(req.ID), err)
		return
	}
	id := s.requestID(req.ID)
	eng, err := s.engine(&req)
	if err != nil {
		s.reject(w, id, err)
		return
	}
	props, err := req.properties()
	if err != nil {
		s.reject(w, id, err)
		return
	}
	if err := s.admit(eng); err != nil {
		s.rejectStatus(w, id, http.StatusUnprocessableEntity, err)
		return
	}
	exhaustive := false
	for _, p := range props {
		if p.Kind() == dining.ExhaustiveProperty {
			exhaustive = true
			break
		}
	}
	cfg := EngineConfig(eng)
	st := s.begin(w, id)

	var space *dining.StateSpace
	var status Status
	if exhaustive {
		// Explorations run under the server's base context, not the
		// request's: the space outlives this request, and a client
		// disconnect must not cancel work other waiters will reuse.
		space, status, err = s.cache.Get(r.Context(), cfg.Fingerprint,
			func(got Status) {
				st.event(Event{Event: "progress", Config: &cfg, Cache: got,
					Detail: "state space " + string(got)})
			},
			func() (*dining.StateSpace, error) { return eng.Explore(s.base) })
		if err != nil {
			st.event(Event{Event: "error", Config: &cfg, Cache: status, Error: err.Error()})
			return
		}
	} else {
		st.event(Event{Event: "progress", Config: &cfg,
			Detail: "statistical properties only; no exploration"})
	}

	// Properties run sequentially in request order — verdict order is part
	// of the golden-pinned wire format, and the expensive step (the
	// exploration) is already shared above.
	for _, p := range props {
		in := dining.PropertyInput{Engine: eng}
		if p.Kind() == dining.ExhaustiveProperty {
			in.Space = space
		}
		res, err := p.Check(r.Context(), in)
		if err != nil {
			st.event(Event{Event: "error", Config: &cfg, Cache: status, Error: err.Error()})
			return
		}
		st.event(Event{Event: "result", Config: &cfg, Cache: status, Result: &res})
	}
	done := Event{Event: "done", Config: &cfg, Cache: status}
	if space != nil {
		done.States = space.NumStates()
		done.Transitions = space.NumTransitions()
	}
	st.event(done)
}

// handleTrials streams deterministic Monte-Carlo trials — the NDJSON face
// of Engine.Trials. Trials sample runs rather than exploring, so there is
// no cache interaction and no cache field on the lines.
func (s *Server) handleTrials(w http.ResponseWriter, r *http.Request) {
	var req Request
	if err := decodeBody(r, &req); err != nil {
		s.reject(w, s.requestID(req.ID), err)
		return
	}
	id := s.requestID(req.ID)
	eng, err := s.engine(&req)
	if err != nil {
		s.reject(w, id, err)
		return
	}
	n := req.Trials
	if n <= 0 {
		n = eng.TrialCount()
	}
	cfg := EngineConfig(eng)
	st := s.begin(w, id)
	st.event(Event{Event: "progress", Config: &cfg,
		Detail: fmt.Sprintf("running %d trials", n)})
	for tr, err := range eng.Trials(r.Context(), n) {
		if err != nil {
			st.event(Event{Event: "error", Config: &cfg, Error: err.Error()})
			return
		}
		tr := tr
		st.event(Event{Event: "trial", Config: &cfg, Trial: &tr})
	}
	st.event(Event{Event: "done", Config: &cfg})
}

// handleSweep streams a scenario matrix — the NDJSON face of Sweep.Stream.
// Every line echoes the expanded grid (SweepConfig); each scenario line
// additionally carries its cell's identity inside the payload.
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	if err := decodeBody(r, &req); err != nil {
		s.reject(w, s.requestID(req.ID), err)
		return
	}
	id := s.requestID(req.ID)
	sweep, err := s.sweep(&req)
	if err != nil {
		s.reject(w, id, err)
		return
	}
	scenarios, err := sweep.Scenarios()
	if err != nil {
		s.reject(w, id, err)
		return
	}
	cfg := sweepConfig(&req, sweep, len(scenarios))
	st := s.begin(w, id)
	st.event(Event{Event: "progress", SweepConfig: &cfg,
		Detail: fmt.Sprintf("sweep: %d scenarios x %d trials", len(scenarios), cfg.Trials)})
	for res, err := range sweep.Stream(r.Context()) {
		if err != nil {
			st.event(Event{Event: "error", SweepConfig: &cfg, Error: err.Error()})
			return
		}
		res := res
		st.event(Event{Event: "scenario", SweepConfig: &cfg, Scenario: &res})
	}
	st.event(Event{Event: "done", SweepConfig: &cfg})
}

// sweepConfig builds the grid echo with the server's defaults applied, so
// the echo describes the matrix that actually ran.
func sweepConfig(req *SweepRequest, sw dining.Sweep, scenarios int) SweepConfig {
	cfg := SweepConfig{
		Topologies:     req.Topologies,
		Algorithms:     req.Algorithms,
		Schedulers:     req.Schedulers,
		Faults:         req.Faults,
		Scenarios:      scenarios,
		Trials:         req.Trials,
		MaxSteps:       req.MaxSteps,
		Seed:           req.Seed,
		M:              req.M,
		FairnessWindow: req.FairnessWindow,
		Workers:        sw.Workers,
	}
	if len(cfg.Schedulers) == 0 {
		cfg.Schedulers = []string{dining.Random}
	}
	if cfg.Trials <= 0 {
		cfg.Trials = 10
	}
	return cfg
}

// handleStats reports the cache counters as one JSON object.
func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(s.cache.Stats())
}

// handleHealthz is the liveness probe.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_, _ = w.Write([]byte("ok\n"))
}

package serve

import (
	"context"
	"errors"
	"sync"
	"testing"

	"repro/dining"
)

// exploreSpace explores a small engine once; cache tests reuse the result
// as the payload behind arbitrary keys.
func exploreSpace(t *testing.T, topo *dining.Topology, algorithm string) *dining.StateSpace {
	t.Helper()
	eng, err := dining.New(topo, algorithm)
	if err != nil {
		t.Fatal(err)
	}
	ss, err := eng.Explore(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return ss
}

// TestCacheHitAfterMiss checks the basic contract: the first Get explores
// and caches, the second is a hit with no second exploration, and the
// statuses reported to both the callback and the return value agree.
func TestCacheHitAfterMiss(t *testing.T) {
	t.Parallel()
	ss := exploreSpace(t, dining.Ring(3), dining.LR1)
	c := NewCache(0)
	explorations := 0
	explore := func() (*dining.StateSpace, error) { explorations++; return ss, nil }

	var cbStatus Status
	got, status, err := c.Get(context.Background(), "k", func(st Status) { cbStatus = st }, explore)
	if err != nil || got != ss || status != StatusMiss || cbStatus != StatusMiss {
		t.Fatalf("first Get = (%p, %q, %v) cb %q, want (%p, miss, nil) cb miss", got, status, err, cbStatus, ss)
	}
	got, status, err = c.Get(context.Background(), "k", func(st Status) { cbStatus = st }, explore)
	if err != nil || got != ss || status != StatusHit || cbStatus != StatusHit {
		t.Fatalf("second Get = (%p, %q, %v) cb %q, want (%p, hit, nil) cb hit", got, status, err, cbStatus, ss)
	}
	if explorations != 1 {
		t.Errorf("explore ran %d times, want 1", explorations)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Explorations != 1 || st.Entries != 1 {
		t.Errorf("stats = %+v, want 1 hit / 1 miss / 1 exploration / 1 entry", st)
	}
}

// TestCacheSingleflight pins the satellite requirement: concurrent Gets for
// one key run exactly one exploration. The exploration blocks on a gate
// until every waiter has observed its shared status, so the overlap is
// deterministic, not a race the test hopes to win.
func TestCacheSingleflight(t *testing.T) {
	t.Parallel()
	const waiters = 7
	ss := exploreSpace(t, dining.Ring(3), dining.LR1)
	c := NewCache(0)

	gate := make(chan struct{})
	var explorations int
	explore := func() (*dining.StateSpace, error) {
		explorations++
		<-gate
		return ss, nil
	}

	missObserved := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		got, status, err := c.Get(context.Background(), "k",
			func(Status) { close(missObserved) }, explore)
		if err != nil || got != ss || status != StatusMiss {
			t.Errorf("leader Get = (%p, %q, %v), want (%p, miss, nil)", got, status, err, ss)
		}
	}()
	<-missObserved

	sharedObserved := make(chan struct{}, waiters)
	for range waiters {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, status, err := c.Get(context.Background(), "k",
				func(st Status) { sharedObserved <- struct{}{} }, explore)
			if err != nil || got != ss || status != StatusShared {
				t.Errorf("waiter Get = (%p, %q, %v), want (%p, shared, nil)", got, status, err, ss)
			}
		}()
	}
	for range waiters {
		<-sharedObserved
	}
	close(gate)
	wg.Wait()

	if explorations != 1 {
		t.Errorf("explore ran %d times for %d concurrent requests, want exactly 1", explorations, waiters+1)
	}
	st := c.Stats()
	if st.Explorations != 1 || st.Misses != 1 || st.Shared != waiters {
		t.Errorf("stats = %+v, want 1 exploration / 1 miss / %d shared", st, waiters)
	}
}

// TestCacheLRUEviction fills a small cache past its state budget and checks
// that the least-recently-used entry goes first — and that a re-request of
// the evicted key re-explores.
func TestCacheLRUEviction(t *testing.T) {
	t.Parallel()
	a := exploreSpace(t, dining.Ring(3), dining.LR1)
	b := exploreSpace(t, dining.Ring(3), dining.GDP1)
	// Cap admits either space alone but not both together.
	c := NewCache(a.NumStates() + b.NumStates() - 1)
	explorations := 0
	get := func(key string, ss *dining.StateSpace) Status {
		_, status, err := c.Get(context.Background(), key, nil,
			func() (*dining.StateSpace, error) { explorations++; return ss, nil })
		if err != nil {
			t.Fatal(err)
		}
		return status
	}

	if st := get("a", a); st != StatusMiss {
		t.Fatalf("first a = %q, want miss", st)
	}
	if st := get("b", b); st != StatusMiss {
		t.Fatalf("first b = %q, want miss", st)
	}
	// Inserting b evicted a (the LRU tail): a re-explores, b stays hot.
	if st := get("b", b); st != StatusHit {
		t.Errorf("b after eviction = %q, want hit", st)
	}
	if st := get("a", a); st != StatusMiss {
		t.Errorf("a after eviction = %q, want miss (evicted)", st)
	}
	if explorations != 3 {
		t.Errorf("explore ran %d times, want 3 (a, b, a-again)", explorations)
	}
	if st := c.Stats(); st.Evictions != 2 || st.Entries != 1 {
		t.Errorf("stats = %+v, want 2 evictions and 1 live entry", st)
	}
}

// TestCacheKeepsOversizedNewest pins the keep-newest rule: a space larger
// than the whole budget is still retained for the request that paid for it.
func TestCacheKeepsOversizedNewest(t *testing.T) {
	t.Parallel()
	ss := exploreSpace(t, dining.Ring(3), dining.LR1)
	c := NewCache(1) // smaller than any real space
	if _, status, err := c.Get(context.Background(), "k", nil,
		func() (*dining.StateSpace, error) { return ss, nil }); err != nil || status != StatusMiss {
		t.Fatalf("Get = (%q, %v), want (miss, nil)", status, err)
	}
	if _, status, err := c.Get(context.Background(), "k", nil, nil); err != nil || status != StatusHit {
		t.Fatalf("oversized entry not retained: Get = (%q, %v), want (hit, nil)", status, err)
	}
}

// TestCacheErrorNotCached checks that a failed exploration is not cached:
// the error reaches the caller, and the next Get for the key retries.
func TestCacheErrorNotCached(t *testing.T) {
	t.Parallel()
	ss := exploreSpace(t, dining.Ring(3), dining.LR1)
	c := NewCache(0)
	boom := errors.New("exploration failed")
	if _, status, err := c.Get(context.Background(), "k", nil,
		func() (*dining.StateSpace, error) { return nil, boom }); !errors.Is(err, boom) || status != StatusMiss {
		t.Fatalf("failing Get = (%q, %v), want (miss, boom)", status, err)
	}
	got, status, err := c.Get(context.Background(), "k", nil,
		func() (*dining.StateSpace, error) { return ss, nil })
	if err != nil || got != ss || status != StatusMiss {
		t.Fatalf("retry Get = (%p, %q, %v), want fresh miss returning the space", got, status, err)
	}
}

// TestCacheCancelledWaiter checks that a waiter whose context is cancelled
// mid-flight gets its context error while the exploration itself survives
// and is cached for later requests.
func TestCacheCancelledWaiter(t *testing.T) {
	t.Parallel()
	ss := exploreSpace(t, dining.Ring(3), dining.LR1)
	c := NewCache(0)
	gate := make(chan struct{})
	missObserved := make(chan struct{})

	done := make(chan struct{})
	go func() {
		defer close(done)
		_, _, err := c.Get(context.Background(), "k",
			func(Status) { close(missObserved) },
			func() (*dining.StateSpace, error) { <-gate; return ss, nil })
		if err != nil {
			t.Errorf("leader Get failed: %v", err)
		}
	}()
	<-missObserved

	ctx, cancel := context.WithCancel(context.Background())
	sharedObserved := make(chan struct{})
	waiterErr := make(chan error, 1)
	go func() {
		_, _, err := c.Get(ctx, "k", func(Status) { close(sharedObserved) }, nil)
		waiterErr <- err
	}()
	<-sharedObserved
	cancel()
	if err := <-waiterErr; !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled waiter returned %v, want context.Canceled", err)
	}

	close(gate)
	<-done
	if _, status, err := c.Get(context.Background(), "k", nil, nil); err != nil || status != StatusHit {
		t.Errorf("post-flight Get = (%q, %v), want hit — cancellation must not poison the entry", status, err)
	}
}

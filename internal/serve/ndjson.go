package serve

import (
	"encoding/json"
	"io"
	"net/http"

	"repro/dining"
)

// Event is one NDJSON response line — the envelope every endpoint streams.
// See the package comment for the schema and the accountability guarantee:
// each line carries the request id, its sequence number, the echoed
// configuration, the cache disposition and the elapsed wall-clock time, so
// any single line identifies exactly what produced it.
type Event struct {
	// Event is the line kind: progress, result, trial, scenario, error, done.
	Event string `json:"event"`
	// ID is the request id; Seq numbers the lines of one response from 1.
	ID  string `json:"id"`
	Seq int    `json:"seq"`
	// Config echoes the canonical engine configuration (engine endpoints);
	// SweepConfig echoes the grid (sweep endpoint).
	Config      *Config      `json:"config,omitempty"`
	SweepConfig *SweepConfig `json:"sweep_config,omitempty"`
	// Cache is the request's state-space disposition: hit, miss or shared
	// (endpoints that explore only).
	Cache Status `json:"cache,omitempty"`
	// ElapsedMS is wall-clock milliseconds since the request started.
	ElapsedMS int64 `json:"elapsed_ms"`
	// States and Transitions size the explored space (progress/done lines of
	// exploring endpoints).
	States      int `json:"states,omitempty"`
	Transitions int `json:"transitions,omitempty"`
	// Detail annotates progress lines.
	Detail string `json:"detail,omitempty"`
	// The payloads, one per event kind; their wire formats are the dining
	// package's stable JSON formats.
	Result   *dining.PropertyResult `json:"result,omitempty"`
	Trial    *dining.TrialResult    `json:"trial,omitempty"`
	Scenario *dining.ScenarioResult `json:"scenario,omitempty"`
	Error    string                 `json:"error,omitempty"`
}

// streamWriter emits Events as NDJSON, flushing after every line so clients
// observe progress while the server is still exploring. It assigns sequence
// numbers; handlers only pick the kind and payload.
type streamWriter struct {
	w   io.Writer
	fl  http.Flusher
	enc *json.Encoder
	seq int
	err error
}

// newStreamWriter wraps an http.ResponseWriter (or any writer in tests).
func newStreamWriter(w io.Writer) *streamWriter {
	sw := &streamWriter{w: w, enc: json.NewEncoder(w)}
	if fl, ok := w.(http.Flusher); ok {
		sw.fl = fl
	}
	return sw
}

// emit numbers and writes one event. The first write error sticks and turns
// later emits into no-ops: once the client is gone there is nothing useful
// left to send, and handlers check Err once at the end.
func (sw *streamWriter) emit(ev Event) {
	if sw.err != nil {
		return
	}
	sw.seq++
	ev.Seq = sw.seq
	if err := sw.enc.Encode(ev); err != nil {
		sw.err = err
		return
	}
	if sw.fl != nil {
		sw.fl.Flush()
	}
}

// Err reports the first write error, if any.
func (sw *streamWriter) Err() error { return sw.err }

package serve

// The per-line configuration echo. This file is part of the detsource-gated
// core (see internal/analysis): a Config is derived purely from the engine,
// so the echo on every response line is a deterministic function of the
// request — no clocks, no environment.

import (
	"repro/dining"
)

// Config is the canonical engine configuration echoed on every response
// line of an engine endpoint. It is built from the engine that actually
// ran — not from the request body — so the echo reports what the server
// executed, defaults applied. Fingerprint is dining.Engine.Fingerprint(),
// the exact key the state-space cache used; the remaining fields spell the
// configuration out so a single logged line suffices to rebuild the engine.
//
// Workers appears in the echo but not in the fingerprint: it is a resource
// knob with bit-identical results for every value, so it never splits the
// cache, but a reproducer still wants to know what the server ran with.
type Config struct {
	Fingerprint    string                   `json:"fingerprint"`
	Topology       string                   `json:"topology"`
	Phils          int                      `json:"phils"`
	Forks          int                      `json:"forks"`
	Algorithm      string                   `json:"algorithm"`
	Scheduler      string                   `json:"scheduler"`
	Seed           uint64                   `json:"seed"`
	MaxSteps       int64                    `json:"max_steps,omitempty"`
	MaxStates      int                      `json:"max_states,omitempty"`
	Trials         int                      `json:"trials,omitempty"`
	FairnessWindow int64                    `json:"fairness_window,omitempty"`
	Protected      []dining.PhilID          `json:"protected,omitempty"`
	Faults         string                   `json:"faults,omitempty"`
	Symmetry       bool                     `json:"symmetry,omitempty"`
	Shards         int                      `json:"shards,omitempty"`
	Workers        int                      `json:"workers,omitempty"`
	AlgoOptions    *dining.AlgorithmOptions `json:"algo_options,omitempty"`
}

// EngineConfig derives the echo from an assembled engine.
func EngineConfig(eng *dining.Engine) Config {
	cfg := Config{
		Fingerprint:    eng.Fingerprint(),
		Topology:       eng.Topology().Name(),
		Phils:          eng.Topology().NumPhilosophers(),
		Forks:          eng.Topology().NumForks(),
		Algorithm:      eng.Algorithm(),
		Scheduler:      eng.Scheduler(),
		Seed:           eng.Seed(),
		MaxSteps:       eng.MaxSteps(),
		MaxStates:      eng.MaxStates(),
		Trials:         eng.TrialCount(),
		FairnessWindow: eng.FairnessWindow(),
		Protected:      eng.Protected(),
		Faults:         eng.Faults(),
		Symmetry:       eng.Symmetry(),
		Shards:         eng.Shards(),
		Workers:        eng.Workers(),
	}
	if opts := eng.AlgorithmOptions(); opts != (dining.AlgorithmOptions{}) {
		cfg.AlgoOptions = &opts
	}
	return cfg
}

package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"repro/dining"
)

// maxBodyBytes bounds request bodies; the JSON configs are tiny.
const maxBodyBytes = 1 << 20

// Request is the body of /v1/check and /v1/trials: the engine configuration
// in registry names and numbers, mirroring the dpcheck/dpsim flags. Zero
// values mean the engine defaults, except Workers and Shards, which fall
// back to the server-wide defaults first (dpserve -workers/-shards).
type Request struct {
	// ID is the client-chosen request id echoed on every response line
	// (empty = server-assigned).
	ID string `json:"id,omitempty"`
	// Topology and N select and size the topology (registry name).
	Topology string `json:"topology"`
	N        int    `json:"n,omitempty"`
	// Algorithm and Scheduler are registry names (scheduler "" = default).
	Algorithm string `json:"algorithm"`
	Scheduler string `json:"scheduler,omitempty"`
	// Props selects the properties /v1/check runs (empty = the exhaustive
	// built-ins). Ignored by /v1/trials.
	Props []string `json:"props,omitempty"`
	// Trials is the trial count for /v1/trials (0 = 1). Ignored by /v1/check.
	Trials int `json:"trials,omitempty"`
	// Seed, MaxSteps, MaxStates, FairnessWindow, Protected, M and Faults
	// configure the engine as the same-named dpcheck flags do. Faults is a
	// fault-model spec name[:rates][@philosophers] — e.g. "crash-rejoin:0.1,0.5",
	// "freeze:0.2@1", "lossy-grants:0.3" or "delayed-grants:p,k@phils" with
	// injection rate p and maximum in-flight delay k — and joins the
	// fingerprint in canonical form, so faulty and fault-free explorations
	// of one instance never share a cache entry.
	Seed           uint64          `json:"seed,omitempty"`
	MaxSteps       int64           `json:"max_steps,omitempty"`
	MaxStates      int             `json:"max_states,omitempty"`
	FairnessWindow int64           `json:"fairness_window,omitempty"`
	Protected      []dining.PhilID `json:"protected,omitempty"`
	M              int             `json:"m,omitempty"`
	Faults         string          `json:"faults,omitempty"`
	// Symmetry quotients the exploration by the topology's automorphism
	// group (dining.WithSymmetry): verdicts are identical to the unreduced
	// engine, state counts are per-orbit, and the fingerprint (hence the
	// cache key) differs from the unreduced configuration.
	Symmetry bool `json:"symmetry,omitempty"`
	// Workers and Shards override the server defaults (0 = server default,
	// which itself defaults to the engine's one-per-CPU). Neither changes
	// any result — both are pinned bit-identical knobs.
	Workers int `json:"workers,omitempty"`
	Shards  int `json:"shards,omitempty"`
}

// engine assembles the request into a dining engine, applying the server's
// worker/shard defaults to unset fields.
func (s *Server) engine(req *Request) (*dining.Engine, error) {
	topo, err := dining.NewTopology(req.Topology, req.N)
	if err != nil {
		return nil, err
	}
	workers := req.Workers
	if workers == 0 {
		workers = s.workers
	}
	shards := req.Shards
	if shards == 0 {
		shards = s.shards
	}
	opts := []dining.Option{
		dining.WithSeed(req.Seed),
		dining.WithWorkers(workers),
		dining.WithShards(shards),
		dining.WithMaxSteps(req.MaxSteps),
		dining.WithAlgorithmOptions(dining.AlgorithmOptions{M: req.M}),
	}
	if req.MaxStates > 0 {
		opts = append(opts, dining.WithMaxStates(req.MaxStates))
	}
	if req.Trials > 0 {
		opts = append(opts, dining.WithTrials(req.Trials))
	}
	if req.FairnessWindow > 0 {
		opts = append(opts, dining.WithFairnessWindow(req.FairnessWindow))
	}
	if len(req.Protected) > 0 {
		opts = append(opts, dining.WithProtected(req.Protected...))
	}
	if req.Scheduler != "" {
		opts = append(opts, dining.WithScheduler(req.Scheduler))
	}
	if req.Faults != "" {
		opts = append(opts, dining.WithFaults(req.Faults))
	}
	if req.Symmetry {
		opts = append(opts, dining.WithSymmetry())
	}
	return dining.New(topo, req.Algorithm, opts...)
}

// properties resolves the request's property selection in request order
// (empty = the exhaustive built-ins, like Engine.Check).
func (req *Request) properties() ([]dining.Property, error) {
	names := req.Props
	if len(names) == 0 {
		names = dining.ExhaustiveProperties()
	}
	list := make([]dining.Property, len(names))
	for i, name := range names {
		p, err := dining.LookupProperty(name)
		if err != nil {
			return nil, err
		}
		list[i] = p
	}
	return list, nil
}

// TopologySpec names one topology of a sweep grid.
type TopologySpec struct {
	Name string `json:"name"`
	N    int    `json:"n,omitempty"`
}

// SweepRequest is the body of /v1/sweep: the grid axes of dining.Sweep in
// registry names. Topologies and Algorithms are required; the other axes
// default as dining.Sweep documents (schedulers: random; faults: the
// no-fault cell; trials: 10).
type SweepRequest struct {
	// ID is the client-chosen request id (empty = server-assigned).
	ID string `json:"id,omitempty"`
	// Topologies, Algorithms, Schedulers and Faults are the grid axes.
	Topologies []TopologySpec `json:"topologies"`
	Algorithms []string       `json:"algorithms"`
	Schedulers []string       `json:"schedulers,omitempty"`
	Faults     []string       `json:"faults,omitempty"`
	// Trials, MaxSteps, Seed, M and FairnessWindow configure every cell.
	Trials         int    `json:"trials,omitempty"`
	MaxSteps       int64  `json:"max_steps,omitempty"`
	Seed           uint64 `json:"seed,omitempty"`
	M              int    `json:"m,omitempty"`
	FairnessWindow int64  `json:"fairness_window,omitempty"`
	// Workers bounds the scenario goroutines (0 = server default).
	Workers int `json:"workers,omitempty"`
}

// SweepConfig is the configuration echo of sweep response lines: the grid
// as the server expanded it, scenario count included, so any one scenario
// line plus its echo reproduces the whole matrix cell.
type SweepConfig struct {
	Topologies     []TopologySpec `json:"topologies"`
	Algorithms     []string       `json:"algorithms"`
	Schedulers     []string       `json:"schedulers,omitempty"`
	Faults         []string       `json:"faults,omitempty"`
	Scenarios      int            `json:"scenarios"`
	Trials         int            `json:"trials"`
	MaxSteps       int64          `json:"max_steps,omitempty"`
	Seed           uint64         `json:"seed"`
	M              int            `json:"m,omitempty"`
	FairnessWindow int64          `json:"fairness_window,omitempty"`
	Workers        int            `json:"workers,omitempty"`
}

// sweep assembles the request into a dining.Sweep, resolving topologies.
func (s *Server) sweep(req *SweepRequest) (dining.Sweep, error) {
	if len(req.Topologies) == 0 {
		return dining.Sweep{}, fmt.Errorf("sweep needs at least one topology")
	}
	if len(req.Algorithms) == 0 {
		return dining.Sweep{}, fmt.Errorf("sweep needs at least one algorithm")
	}
	topos := make([]*dining.Topology, len(req.Topologies))
	for i, spec := range req.Topologies {
		topo, err := dining.NewTopology(spec.Name, spec.N)
		if err != nil {
			return dining.Sweep{}, err
		}
		topos[i] = topo
	}
	workers := req.Workers
	if workers == 0 {
		workers = s.workers
	}
	return dining.Sweep{
		Topologies:       topos,
		Algorithms:       req.Algorithms,
		Schedulers:       req.Schedulers,
		Faults:           req.Faults,
		Trials:           req.Trials,
		MaxSteps:         req.MaxSteps,
		Seed:             req.Seed,
		Workers:          workers,
		AlgorithmOptions: dining.AlgorithmOptions{M: req.M},
		FairnessWindow:   req.FairnessWindow,
	}, nil
}

// decodeBody decodes a JSON request body strictly: unknown fields are
// errors, so a typo'd knob fails loudly instead of silently running the
// default configuration.
func decodeBody(r *http.Request, into any) error {
	dec := json.NewDecoder(io.LimitReader(r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		return fmt.Errorf("bad request body: %w", err)
	}
	return nil
}

package graphalg

// This file holds the worklist analyses that run over a PredecessorIndex.
// Each is the linear-time form of the corresponding fixpoint sweep retained
// as a reference oracle in graphalgtest; TestWorklistMatchesReferenceFixpoint
// pins that every verdict, witness and tie-break is identical across the full
// topology × algorithm grid. Everything here reads the index's flat CSR
// arrays — never the StateView — so the inner loops are array walks with no
// interface dispatch.

// Reachable returns the set of states reachable from the initial state using
// any actions and any outcomes, as a boolean slice indexed by state.
func (ix *PredecessorIndex) Reachable() []bool {
	r := ix.reachable()
	out := make([]bool, len(r))
	copy(out, r)
	return out
}

// reachable returns the cached forward-reachability set, computing it on
// first use. Reachability depends only on the graph, so every analysis (and
// every per-philosopher labelling) shares the one computation; callers must
// treat the returned slice as read-only.
func (ix *PredecessorIndex) reachable() []bool {
	ix.reachOnce.Do(func() {
		ix.reach = make([]bool, ix.n)
		if ix.n == 0 {
			return
		}
		sc := ix.getScratch()
		defer ix.putScratch(sc)
		// The outcomes of all actions of one state are one contiguous fsucc
		// range, so expanding a state is a single flat loop.
		nActions := ix.nActions
		seen := ix.reach
		stack := sc.queue[:0]
		stack = append(stack, int32(ix.v.Initial()))
		seen[ix.v.Initial()] = true
		for len(stack) > 0 {
			s := int(stack[len(stack)-1])
			stack = stack[:len(stack)-1]
			for _, succ := range ix.fsucc[ix.foff[s*nActions]:ix.foff[(s+1)*nActions]] {
				if !seen[succ] {
					seen[succ] = true
					stack = append(stack, succ)
				}
			}
		}
		sc.queue = stack[:0]
	})
	return ix.reach
}

// DeadlockStates returns the reachable, expanded states in which every
// action is a self-loop: the system can never change state again.
func (ix *PredecessorIndex) DeadlockStates() []int {
	v, nActions := ix.v, ix.nActions
	reach := ix.reachable()
	var out []int
	for s := 0; s < ix.n; s++ {
		// Unexpanded states (possible only on truncated explorations) carry
		// artificial self-loops; treating them as deadlocks would fabricate
		// violations out of the truncation itself.
		if !reach[s] || !v.Expanded(s) {
			continue
		}
		stuck := true
		for _, succ := range ix.fsucc[ix.foff[s*nActions]:ix.foff[(s+1)*nActions]] {
			if int(succ) != s {
				stuck = false
				break
			}
		}
		if stuck {
			out = append(out, s)
		}
	}
	return out
}

// DeadRegionStates returns the reachable states from which no goal state is
// reachable under any action and any outcome: a reverse BFS from the goal
// (and unexpanded) states over the predecessor index, instead of the
// reference oracle's forward sweep to fixpoint. States that were never
// expanded count as able to reach a goal — their artificial self-loops say
// nothing about the real system, so truncation can never fabricate a
// violation; on a truncated view the analysis under-approximates, like
// MaximalTrap.
func (ix *PredecessorIndex) DeadRegionStates(goal func(s int) bool) []int {
	sc := ix.getScratch()
	defer ix.putScratch(sc)
	v := ix.v
	n := ix.n
	sc.mark = resized(sc.mark, n)
	canReach := sc.mark
	queue := sc.queue[:0]
	for s := 0; s < n; s++ {
		if goal(s) || !v.Expanded(s) {
			canReach[s] = true
			queue = append(queue, int32(s))
		}
	}
	for len(queue) > 0 {
		t := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for _, p := range ix.pred[ix.roff[t]:ix.roff[t+1]] {
			if !canReach[p] {
				canReach[p] = true
				queue = append(queue, p)
			}
		}
	}
	sc.queue = queue[:0]
	reach := ix.reachable()
	var dead []int
	for s := 0; s < n; s++ {
		if reach[s] && !canReach[s] {
			dead = append(dead, s)
		}
	}
	return dead
}

// MaximalTrap analyses the view for a trap against the given bad-state
// labelling (pass View().Bad for the default labelling). The three standard
// steps of the reference oracle — safety game, maximal end components, action
// coverage — are reformulated as worklist algorithms over the index:
//
//  1. Safety game: instead of sweeping all states to fixpoint, every
//     (state, action) keeps a counter of outcomes currently outside the safe
//     set and every state a counter of still-allowed actions. Removing a
//     state decrements the counters of exactly its predecessors; a state
//     whose last allowed action dies joins the worklist. The greatest safe
//     region is unique, so the result is identical to the sweep's.
//  2. End components: rounds of SCC decomposition over the retained graph,
//     but each round after the first re-checks only the states of components
//     in which an edge or state was removed — removals propagate to exactly
//     the affected predecessors through the index, and untouched components
//     are never revisited. The final decomposition (the maximal end
//     components) is canonical, so convergence order is unobservable; a last
//     full Tarjan pass renumbers it exactly as the reference's final
//     iteration does.
//  3. Coverage: identical to the reference, over flat per-component tallies.
func (ix *PredecessorIndex) MaximalTrap(bad func(s int) bool) Trap {
	reach := ix.reachable()
	sc := ix.getScratch()
	defer ix.putScratch(sc)
	v := ix.v
	n, nActions := ix.n, ix.nActions
	foff, fsucc := ix.foff, ix.fsucc

	// Step 1: greatest safe region S and allowed actions, as a
	// counter-decrement attractor seeded with every state outside the
	// candidate set. States that were never expanded (possible only on
	// truncated explorations) are excluded: their artificial self-loops must
	// not be mistaken for safe behaviour.
	sc.inS = resized(sc.inS, n)
	sc.badCnt = resized(sc.badCnt, n*nActions)
	sc.allowedCnt = resized(sc.allowedCnt, n)
	inS, badCnt, allowedCnt := sc.inS, sc.badCnt, sc.allowedCnt
	queue := sc.queue[:0]
	for s := 0; s < n; s++ {
		allowedCnt[s] = int32(nActions)
		if reach[s] && !bad(s) && v.Expanded(s) {
			inS[s] = true
		} else {
			queue = append(queue, int32(s))
		}
	}
	for len(queue) > 0 {
		t := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		lo, hi := ix.roff[t], ix.roff[t+1]
		for e := lo; e < hi; e++ {
			p := ix.pred[e]
			if !inS[p] {
				continue
			}
			pa := int(p)*nActions + int(ix.pact[e])
			badCnt[pa]++
			if badCnt[pa] == 1 {
				allowedCnt[p]--
				if allowedCnt[p] == 0 {
					inS[p] = false
					queue = append(queue, p)
				}
			}
		}
	}
	sc.queue = queue[:0]

	safeCount := 0
	for s := 0; s < n; s++ {
		if inS[s] {
			safeCount++
		}
	}
	trap := Trap{SafeRegionStates: safeCount, WitnessState: -1}
	if safeCount == 0 {
		return trap
	}

	// Step 2: maximal end components of (S, allowed). act and actCnt start
	// from the safety game's counters; work lists the states whose component
	// must be (re-)decomposed this round — everything in round one, then only
	// the components dirtied by the previous round's removals.
	sc.inEC = resized(sc.inEC, n)
	sc.act = resized(sc.act, n*nActions)
	sc.actCnt = resized(sc.actCnt, n)
	// comp needs no clearing: it is only ever read for states of the current
	// round's work list, all of which the round's Tarjan assigns first.
	sc.comp = sized(sc.comp, n)
	inEC, act, actCnt, comp := sc.inEC, sc.act, sc.actCnt, sc.comp
	work := sc.work[:0]
	for s := 0; s < n; s++ {
		if !inS[s] {
			continue
		}
		inEC[s] = true
		actCnt[s] = allowedCnt[s]
		base := s * nActions
		for a := 0; a < nActions; a++ {
			act[base+a] = badCnt[base+a] == 0
		}
		work = append(work, int32(s))
	}
	sc.work = work

	// ecCount tracks the surviving states; a round whose work list covers all
	// of them (always the first, possibly later ones) is a global
	// decomposition, and if nothing changes after one, its numbering is
	// already the final decomposition's — the closing Tarjan pass is skipped.
	ecCount := safeCount
	compCount := -1
	for len(work) > 0 {
		globalRound := len(work) == ecCount
		cnt := ix.tarjanSCC(sc, work, inEC, act, comp)
		sc.dirty = resized(sc.dirty, int(cnt))
		dirty := sc.dirty
		removeQ := sc.queue[:0]
		anyDirty := false
		// Re-check the decomposed states: drop actions whose outcomes left
		// the component, and remove states left with no actions.
		for _, s32 := range work {
			s := int(s32)
			if !inEC[s] {
				continue
			}
			base := s * nActions
			for a := 0; a < nActions; a++ {
				if !act[base+a] {
					continue
				}
				ok := true
				for _, succ := range fsucc[foff[base+a]:foff[base+a+1]] {
					if !inEC[succ] || comp[succ] != comp[s] {
						ok = false
						break
					}
				}
				if !ok {
					act[base+a] = false
					actCnt[s]--
					dirty[comp[s]] = true
					anyDirty = true
				}
			}
			if actCnt[s] == 0 {
				inEC[s] = false
				ecCount--
				dirty[comp[s]] = true
				anyDirty = true
				removeQ = append(removeQ, s32)
			}
		}
		// Removal cascade: a removed state invalidates exactly the retained
		// predecessor actions with an outcome into it — the incremental
		// re-check the predecessor index exists for. Retained actions never
		// cross components, so the cascade stays within this round's states.
		for len(removeQ) > 0 {
			t := removeQ[len(removeQ)-1]
			removeQ = removeQ[:len(removeQ)-1]
			lo, hi := ix.roff[t], ix.roff[t+1]
			for e := lo; e < hi; e++ {
				p := ix.pred[e]
				pa := int(p)*nActions + int(ix.pact[e])
				if !inEC[p] || !act[pa] {
					continue
				}
				act[pa] = false
				actCnt[p]--
				dirty[comp[p]] = true
				anyDirty = true
				if actCnt[p] == 0 {
					inEC[p] = false
					ecCount--
					removeQ = append(removeQ, p)
				}
			}
		}
		sc.queue = removeQ[:0]
		if !anyDirty {
			if globalRound {
				compCount = int(cnt)
			}
			break
		}
		// Next round: only the surviving states of dirtied components, in
		// increasing state order (work is ordered, so the filter preserves
		// that).
		next := sc.next[:0]
		for _, s := range work {
			if inEC[s] && dirty[comp[s]] {
				next = append(next, s)
			}
		}
		sc.work, sc.next = next, work[:0]
		work = next
	}

	// Final decomposition of the stable subgraph, numbered from zero in full
	// state order — exactly the reference's last StronglyConnected call, so
	// step 3 visits components in the same deterministic order. When the
	// loop's last round was already a stable global decomposition, its comp
	// numbering is that decomposition and the pass is skipped.
	if compCount < 0 {
		work = sc.next[:0]
		for s := 0; s < n; s++ {
			if inEC[s] {
				work = append(work, int32(s))
			}
		}
		sc.next = work
		compCount = int(ix.tarjanSCC(sc, work, inEC, act, comp))
	}

	// Step 3: per-component size, minimal state and action coverage, visited
	// in component order (the reference visits components sorted by id, and
	// Tarjan's completion numbering is already 0..compCount-1).
	sc.compSize = resized(sc.compSize, compCount)
	sc.compMin = resized(sc.compMin, compCount)
	sc.covered = resized(sc.covered, compCount*nActions)
	compSize, compMin, covered := sc.compSize, sc.compMin, sc.covered
	for c := range compMin {
		compMin[c] = -1
	}
	for _, s32 := range work {
		s := int(s32)
		c := int(comp[s])
		compSize[c]++
		if compMin[c] == -1 {
			compMin[c] = s32
		}
		base := s * nActions
		for a := 0; a < nActions; a++ {
			if act[base+a] {
				covered[c*nActions+a] = true
			}
		}
	}

	bestCovered := 0
	witness := int32(-1)
	for c := 0; c < compCount; c++ {
		count := 0
		for a := 0; a < nActions; a++ {
			if covered[c*nActions+a] {
				count++
			}
		}
		fully := count == nActions
		// The witness is the minimum state index over every fully covered
		// trap, not the reported (largest) one: state indices are discovery
		// order, so the smallest index is the shallowest trap state and lifts
		// to the shortest concrete counterexample path.
		if fully && (witness < 0 || compMin[c] < witness) {
			witness = compMin[c]
		}
		if count > bestCovered || (fully && trap.States < int(compSize[c])) {
			bestCovered = count
			coveredIDs := make([]int, 0, count)
			for a := 0; a < nActions; a++ {
				if covered[c*nActions+a] {
					coveredIDs = append(coveredIDs, a)
				}
			}
			trap.CoveredActions = coveredIDs
			if fully {
				trap.Exists = true
				trap.States = int(compSize[c])
				// Reachability of the trap (the safe region is already
				// restricted to reachable states, so any member works).
				trap.Reachable = true
			}
		}
	}
	if trap.Exists {
		trap.WitnessState = int(witness)
	}
	return trap
}

// StronglyConnected computes SCC indices (into comp) of the directed graph
// whose nodes are the states with inSet true and whose edges are all
// outcomes of the actions retained in act, over the warm index. It returns
// the number of components; states not in the set get comp = -1. It is the
// pooled-scratch form of the package-level StronglyConnected.
func (ix *PredecessorIndex) StronglyConnected(inSet []bool, act [][]bool, comp []int) int {
	n, nActions := ix.n, ix.nActions
	sc := ix.getScratch()
	defer ix.putScratch(sc)
	sc.act = resized(sc.act, n*nActions)
	sc.comp = sized(sc.comp, n) // assigned for every root before being read back
	roots := sc.work[:0]
	for s := 0; s < n; s++ {
		comp[s] = -1
		if !inSet[s] {
			continue
		}
		roots = append(roots, int32(s))
		copy(sc.act[s*nActions:(s+1)*nActions], act[s])
	}
	sc.work = roots
	count := int(ix.tarjanSCC(sc, roots, inSet, sc.act, sc.comp))
	for _, s := range roots {
		comp[s] = int(sc.comp[s])
	}
	return count
}

// tarjanSCC runs an iterative Tarjan over the states of roots (which must be
// in increasing order), following the outcomes of retained actions
// (act[s*nActions+a]) into states with in[succ] true, and writes component
// ids comp[s] = 0..count-1 in completion order. It returns the number of
// components found; states outside roots keep their comp values. Edges are
// enumerated in place through the (action, outcome) cursor of each stack
// frame — no per-visited-state successor slice is materialized — and every
// stack lives in the scratch, so a warm call performs no per-state heap
// allocations.
func (ix *PredecessorIndex) tarjanSCC(sc *scratch, roots []int32, in, act []bool, comp []int32) int32 {
	nActions := ix.nActions
	foff, fsucc := ix.foff, ix.fsucc
	const unvisited = -1
	// No O(n) clearing here — a round's cost must track its root set, not
	// the state count. index entries are explicitly set to unvisited for
	// every root below (and every visited state is a root or reached through
	// roots' in-set edges, so no stale entry is ever read); low is written at
	// push before any read; onStack is all-false by invariant, since every
	// pushed state is popped before the function returns.
	sc.tIndex = sized(sc.tIndex, ix.n)
	sc.tLow = sized(sc.tLow, ix.n)
	sc.onStack = sized(sc.onStack, ix.n)
	index, low, onStack := sc.tIndex, sc.tLow, sc.onStack
	for _, s := range roots {
		index[s] = unvisited
	}
	stack := sc.tStack[:0]
	frames := sc.frames[:0]
	var nextIndex, compCount int32

	for _, root := range roots {
		if !in[root] || index[root] != unvisited {
			continue
		}
		index[root] = nextIndex
		low[root] = nextIndex
		nextIndex++
		stack = append(stack, root)
		onStack[root] = true
		frames = append(frames, tframe{s: root, a: -1})
		for len(frames) > 0 {
			fr := &frames[len(frames)-1]
			descended := false
			// Advance the edge cursor: outcomes of the current action first,
			// then the next retained action.
			for {
				if fr.a >= 0 && int(fr.oi) < len(fr.succ) {
					w := fr.succ[fr.oi]
					fr.oi++
					if !in[w] {
						continue
					}
					if index[w] == unvisited {
						index[w] = nextIndex
						low[w] = nextIndex
						nextIndex++
						stack = append(stack, w)
						onStack[w] = true
						frames = append(frames, tframe{s: w, a: -1})
						descended = true
						break
					}
					if onStack[w] && index[w] < low[fr.s] {
						low[fr.s] = index[w]
					}
					continue
				}
				fr.a++
				base := int(fr.s) * nActions
				for int(fr.a) < nActions && !act[base+int(fr.a)] {
					fr.a++
				}
				if int(fr.a) >= nActions {
					break
				}
				o := base + int(fr.a)
				fr.succ = fsucc[foff[o]:foff[o+1]]
				fr.oi = 0
			}
			if descended {
				continue
			}
			// Finished fr.s: close the frame and pop its component if it is
			// a root of one.
			fs := fr.s
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				parent := &frames[len(frames)-1]
				if low[fs] < low[parent.s] {
					low[parent.s] = low[fs]
				}
			}
			if low[fs] == index[fs] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = compCount
					if w == fs {
						break
					}
				}
				compCount++
			}
		}
	}
	sc.tStack, sc.frames = stack[:0], frames[:0]
	return compCount
}

package graphalg

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"repro/internal/par"
)

// PredecessorIndex is the CSR view of a StateView's transition graph in both
// directions: for every state, its incoming (predecessor, action) edge
// occurrences (the reverse CSR), the per-(state, action) successor counts,
// and a flattened copy of the forward successor lists so the analyses read
// plain arrays instead of chasing the view's storage through an interface.
// It is built once in O(E) — in parallel over contiguous state chunks — and
// shared by every worklist analysis, which is what turns the package's
// fixpoint sweeps (O(N·E) worst case) into linear-time worklist algorithms:
// backward reachability and dead regions become a reverse BFS, the safety
// game becomes a counter-decrement attractor, and the maximal-end-component
// loop re-checks only the states whose edges were removed.
//
// The index stores one entry per outcome occurrence in both directions: if
// action a of state s lists state t twice in Succs(s, a), the forward row of
// (s, a) has two t entries and t has two (s, a) reverse entries. That
// multiset correspondence is what makes the safety-game counters exact (an
// action is allowed if and only if its bad-outcome count is zero) and is
// pinned by FuzzPredecessorIndex.
//
// An index is immutable after construction and safe for concurrent use: the
// analyses draw their mutable state from an internal pool of scratch buffers,
// so independent analyses — the per-philosopher trap checks of the
// lockout-freedom property, for example — run concurrently over one shared
// index with zero per-state heap allocations once the pool is warm.
type PredecessorIndex struct {
	v        StateView
	n        int
	nActions int

	// foff/fsucc are the forward CSR: the successor occurrences of action a
	// in state s are fsucc[foff[s*nActions+a]:foff[s*nActions+a+1]], in
	// outcome order — so the outcomes of all actions of one state are one
	// contiguous range, and OutDeg is an offset difference.
	foff  []int32
	fsucc []int32
	// roff/pred/pact are the reverse CSR: the incoming edge occurrences of
	// state t are pred[roff[t]:roff[t+1]] (source states) and the aligned
	// pact entries (actions). Within a bucket, entries are ordered by
	// (source state, action, outcome index) — the forward enumeration order —
	// for every build worker count.
	roff []int32
	pred []int32
	pact []int32

	// reachOnce/reach cache forward reachability from the initial state:
	// it depends only on the graph, never on a bad-state labelling, so one
	// computation serves every analysis of the index (and every
	// per-philosopher labelling of the lockout fan-out).
	reachOnce sync.Once
	reach     []bool

	pool sync.Pool // *scratch
}

// NewPredecessorIndex builds the index of v. The build is parallel over
// contiguous state chunks (workers <= 0 means one per CPU, 1 builds inline);
// the resulting index is identical for every worker count.
func NewPredecessorIndex(v StateView, workers int) *PredecessorIndex {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	n := v.NumStates()
	nActions := v.NumActions()
	ix := &PredecessorIndex{
		v:        v,
		n:        n,
		nActions: nActions,
		foff:     make([]int32, n*nActions+1),
		roff:     make([]int32, n+1),
	}
	ix.pool.New = func() any { return &scratch{} }
	if n == 0 {
		return ix
	}

	// Each chunk carries an n-length cursor array through the build, so the
	// transient scratch is chunks × n; capping the chunk count keeps that
	// bounded on many-core machines (the index itself is O(E)). The final
	// layout is identical for every chunk count — buckets are filled in
	// (chunk, source, action, outcome) order and chunks are contiguous
	// ascending source ranges, so the order is the global forward one.
	const maxBuildChunks = 8
	chunks := min(workers, maxBuildChunks, n)
	chunkSize := (n + chunks - 1) / chunks
	// Count phase: each chunk records the out-degrees of its (disjoint)
	// foff rows and counts, into its own in-degree array, the edge
	// occurrences its states emit.
	indeg := make([][]int32, chunks)
	par.Trials(chunks, chunks, func(ci int) (struct{}, error) {
		lo, hi := ci*chunkSize, min((ci+1)*chunkSize, n)
		cnt := make([]int32, n)
		for s := lo; s < hi; s++ {
			base := s * nActions
			for a := 0; a < nActions; a++ {
				succs := v.Succs(s, a)
				ix.foff[base+a+1] = int32(len(succs)) // prefix-summed below
				for _, t := range succs {
					cnt[t]++
				}
			}
		}
		indeg[ci] = cnt
		return struct{}{}, nil
	})

	// Prefix phase: foff and roff become the global offsets, and each
	// chunk's count array is transformed in place into its reverse write
	// cursors — bucket t's entries land in (chunk, source, action, outcome)
	// order, which is the global forward enumeration order.
	var edges int64
	for i := 1; i < len(ix.foff); i++ {
		edges += int64(ix.foff[i])
		if edges > math.MaxInt32 {
			// 2^31 edge occurrences would need >16 GiB for the index alone;
			// no explorable instance gets here.
			panic(fmt.Sprintf("graphalg: edge occurrences overflow the 32-bit index at state %d", i/nActions))
		}
		ix.foff[i] = int32(edges)
	}
	var cursor int64
	for t := 0; t < n; t++ {
		ix.roff[t] = int32(cursor)
		for ci := 0; ci < chunks; ci++ {
			c := indeg[ci][t]
			indeg[ci][t] = int32(cursor)
			cursor += int64(c)
		}
	}
	ix.roff[n] = int32(cursor)
	ix.fsucc = make([]int32, edges)
	ix.pred = make([]int32, edges)
	ix.pact = make([]int32, edges)

	// Fill phase: chunks write their own forward rows and push reverse
	// entries through their private cursors — all slots disjoint.
	par.Trials(chunks, chunks, func(ci int) (struct{}, error) {
		lo, hi := ci*chunkSize, min((ci+1)*chunkSize, n)
		cur := indeg[ci]
		for s := lo; s < hi; s++ {
			fw := ix.foff[s*nActions]
			for a := 0; a < nActions; a++ {
				for _, t := range v.Succs(s, a) {
					ix.fsucc[fw] = t
					fw++
					slot := cur[t]
					cur[t]++
					ix.pred[slot] = int32(s)
					ix.pact[slot] = int32(a)
				}
			}
		}
		return struct{}{}, nil
	})
	return ix
}

// View returns the StateView the index was built from.
func (ix *PredecessorIndex) View() StateView { return ix.v }

// NumEdges returns the total number of edge occurrences (outcome slots).
func (ix *PredecessorIndex) NumEdges() int { return len(ix.pred) }

// Succs returns the successor occurrences of action a in state s, in outcome
// order — the flattened copy of View().Succs(s, a). The slice aliases the
// index and must not be modified.
func (ix *PredecessorIndex) Succs(s, a int) []int32 {
	o := s*ix.nActions + a
	return ix.fsucc[ix.foff[o]:ix.foff[o+1]]
}

// PredEdges returns the incoming edge occurrences of state t: the aligned
// source-state and action slices, ordered by (source, action, outcome). The
// slices alias the index and must not be modified.
func (ix *PredecessorIndex) PredEdges(t int) (preds, acts []int32) {
	return ix.pred[ix.roff[t]:ix.roff[t+1]], ix.pact[ix.roff[t]:ix.roff[t+1]]
}

// OutDeg returns the number of outcome occurrences of action a in state s
// (the length of View().Succs(s, a)).
func (ix *PredecessorIndex) OutDeg(s, a int) int {
	o := s*ix.nActions + a
	return int(ix.foff[o+1] - ix.foff[o])
}

// scratch is the reusable per-analysis state. Every analysis draws one from
// the index's pool, sizes the fields it needs and returns it, so concurrent
// analyses over one index never contend and a warm pool serves every analysis
// with zero per-state heap allocations.
type scratch struct {
	// queue is the shared BFS / worklist buffer.
	queue []int32
	// mark is the generic visited / can-reach set.
	mark []bool

	// Safety game (counter-decrement attractor).
	inS        []bool
	badCnt     []int32 // per (state, action): outcomes currently outside S
	allowedCnt []int32 // per state: actions with badCnt == 0

	// Maximal end components.
	inEC   []bool
	act    []bool // per (state, action): action still retained
	actCnt []int32
	comp   []int32
	work   []int32
	next   []int32
	dirty  []bool // per current-round component: needs re-checking

	// Iterative Tarjan.
	tIndex  []int32
	tLow    []int32
	onStack []bool
	tStack  []int32
	frames  []tframe

	// Step 3 (component coverage).
	compSize []int32
	compMin  []int32
	covered  []bool
}

// tframe is one suspended DFS call of the iterative Tarjan: the state, the
// (action, outcome) enumeration cursor and the current action's successor
// slice — edges are enumerated in place, so no per-visited-state successor
// slice is ever materialized.
type tframe struct {
	s    int32
	a    int32
	oi   int32
	succ []int32
}

// getScratch pops a scratch from the pool.
func (ix *PredecessorIndex) getScratch() *scratch { return ix.pool.Get().(*scratch) }

// putScratch returns a scratch to the pool.
func (ix *PredecessorIndex) putScratch(sc *scratch) { ix.pool.Put(sc) }

// resized returns s with length n and every element zeroed, reusing the
// backing array when it is large enough — the allocation-free steady state of
// a warm scratch.
func resized[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	s = s[:n]
	clear(s)
	return s
}

// sized returns s with length n WITHOUT clearing retained elements: for
// scratch arrays whose every read is preceded by a write (or that maintain
// an all-false invariant across runs, like the Tarjan on-stack marks), this
// keeps reuse O(1) instead of O(n) — the property that makes an incremental
// MEC round proportional to its dirty set, not the state count. A grown
// array is freshly allocated, hence zeroed.
func sized[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

package graphalg

import (
	"reflect"
	"testing"
)

// mdp is a hand-built StateView fixture: succs[s][a] lists the successor
// states of action a in state s, probs are spread uniformly.
type mdp struct {
	nActions int
	initial  int
	succs    [][][]int32
	probs    [][][]float64
	bad      []bool
	expanded []bool
}

func newMDP(nActions int, succs [][][]int32) *mdp {
	m := &mdp{nActions: nActions, succs: succs}
	m.probs = make([][][]float64, len(succs))
	m.bad = make([]bool, len(succs))
	m.expanded = make([]bool, len(succs))
	for s := range succs {
		if len(succs[s]) != nActions {
			panic("fixture: wrong action count")
		}
		m.expanded[s] = true
		m.probs[s] = make([][]float64, nActions)
		for a := range succs[s] {
			k := len(succs[s][a])
			m.probs[s][a] = make([]float64, k)
			for i := range m.probs[s][a] {
				m.probs[s][a][i] = 1 / float64(k)
			}
		}
	}
	return m
}

func (m *mdp) NumStates() int           { return len(m.succs) }
func (m *mdp) NumActions() int          { return m.nActions }
func (m *mdp) Initial() int             { return m.initial }
func (m *mdp) Succs(s, a int) []int32   { return m.succs[s][a] }
func (m *mdp) Probs(s, a int) []float64 { return m.probs[s][a] }
func (m *mdp) Bad(s int) bool           { return m.bad[s] }
func (m *mdp) Expanded(s int) bool      { return m.expanded[s] }

// fixture builds the shared five-state MDP:
//
//	0: a0 -> 1        a1 -> 2
//	1: a0 -> 0        a1 -> 1 (self)
//	2: a0 -> 2 (self) a1 -> 2 (self)   — an absorbing deadlock
//	3: self-loops, unreachable
//	4: a0 -> 3, a1 -> 4, unreachable
func fixture() *mdp {
	return newMDP(2, [][][]int32{
		{{1}, {2}},
		{{0}, {1}},
		{{2}, {2}},
		{{3}, {3}},
		{{3}, {4}},
	})
}

func TestReachable(t *testing.T) {
	t.Parallel()
	got := Reachable(fixture())
	want := []bool{true, true, true, false, false}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Reachable = %v, want %v", got, want)
	}
}

func TestDeadlockStates(t *testing.T) {
	t.Parallel()
	m := fixture()
	if got := DeadlockStates(m); !reflect.DeepEqual(got, []int{2}) {
		t.Errorf("DeadlockStates = %v, want [2]; state 3 deadlocks but is unreachable", got)
	}
	// An unexpanded state's artificial self-loops must not read as deadlock.
	m.expanded[2] = false
	if got := DeadlockStates(m); len(got) != 0 {
		t.Errorf("DeadlockStates counted the unexpanded state 2: %v", got)
	}
}

func TestDeadRegionStates(t *testing.T) {
	t.Parallel()
	m := fixture()
	goal := func(s int) bool { return s == 1 }
	if got := DeadRegionStates(m, goal); !reflect.DeepEqual(got, []int{2}) {
		t.Errorf("DeadRegionStates = %v, want [2] (the absorbing state cannot reach 1)", got)
	}
	// Unexpanded states count as able to reach the goal — truncation must
	// never fabricate a dead region.
	m.expanded[2] = false
	if got := DeadRegionStates(m, goal); len(got) != 0 {
		t.Errorf("DeadRegionStates fabricated %v from the unexpanded state", got)
	}
}

func TestPathTo(t *testing.T) {
	t.Parallel()
	m := fixture()
	if path, ok := PathTo(m, m.Initial()); !ok || len(path) != 0 {
		t.Errorf("PathTo(initial) = %v, %v; want an empty path", path, ok)
	}
	if _, ok := PathTo(m, 99); ok {
		t.Error("PathTo accepted an out-of-range target")
	}
	if _, ok := PathTo(m, 3); ok {
		t.Error("PathTo found a path to the unreachable state 3")
	}
	path, ok := PathTo(m, 2)
	if !ok || !reflect.DeepEqual(path, []Choice{{Action: 1, Outcome: 0}}) {
		t.Errorf("PathTo(2) = %v, %v; want the single choice (a1, o0)", path, ok)
	}
}

func TestMaximalTrap(t *testing.T) {
	t.Parallel()
	m := fixture()
	m.bad[2] = true
	// Safe region: 0 (only a0 avoids the bad state 2) and 1 (both actions).
	// The end component {0, 1} retains a0 in both states and a1 in state 1,
	// so every action index is covered somewhere inside: a trap.
	trap := MaximalTrap(m, m.Bad)
	if !trap.Exists || !trap.Reachable {
		t.Fatalf("expected a trap: %+v", trap)
	}
	if trap.States != 2 || trap.SafeRegionStates != 2 || trap.WitnessState != 0 {
		t.Errorf("trap shape: %+v, want 2 states, safe region 2, witness 0", trap)
	}
	if !reflect.DeepEqual(trap.CoveredActions, []int{0, 1}) {
		t.Errorf("CoveredActions = %v, want [0 1]", trap.CoveredActions)
	}

	// Making state 1 bad too empties the safe region: from 0 every action
	// risks a bad state.
	m.bad[1] = true
	trap = MaximalTrap(m, m.Bad)
	if trap.Exists || trap.SafeRegionStates != 0 {
		t.Errorf("expected an empty safe region: %+v", trap)
	}
}

func TestMaximalTrapPartialCoverage(t *testing.T) {
	t.Parallel()
	// 0 <-> 1 via a0 only; a1 always falls into the bad absorbing state 2.
	// The end component {0, 1} covers only action 0, so no trap exists and
	// CoveredActions explains the gap.
	m := newMDP(2, [][][]int32{
		{{1}, {2}},
		{{0}, {2}},
		{{2}, {2}},
	})
	m.bad[2] = true
	trap := MaximalTrap(m, m.Bad)
	if trap.Exists {
		t.Fatalf("no action-1 move stays safe, yet a trap was found: %+v", trap)
	}
	if !reflect.DeepEqual(trap.CoveredActions, []int{0}) {
		t.Errorf("CoveredActions = %v, want [0]", trap.CoveredActions)
	}
	if trap.SafeRegionStates != 2 {
		t.Errorf("SafeRegionStates = %d, want 2", trap.SafeRegionStates)
	}
}

func TestStronglyConnected(t *testing.T) {
	t.Parallel()
	// 0 <-> 1 is one component; 2 (absorbing) another; 3, 4 excluded from
	// the set and must keep comp = -1.
	m := fixture()
	inSet := []bool{true, true, true, false, false}
	act := make([][]bool, m.NumStates())
	for s := range act {
		act[s] = []bool{true, true}
	}
	comp := make([]int, m.NumStates())
	n := StronglyConnected(m, inSet, act, comp)
	if n != 2 {
		t.Fatalf("component count = %d, want 2 (comp %v)", n, comp)
	}
	if comp[0] != comp[1] || comp[0] == comp[2] {
		t.Errorf("components %v: want 0 and 1 together, 2 separate", comp)
	}
	if comp[3] != -1 || comp[4] != -1 {
		t.Errorf("states outside the set must keep comp -1: %v", comp)
	}
}

// Package graphalgtest retains the pre-worklist fixpoint sweeps of
// internal/graphalg as reference oracles for tests and benchmarks. The live
// package decides everything through worklist algorithms over a
// PredecessorIndex; the sweeps here are the original state-by-state
// iterate-to-fixpoint implementations (O(N·E) worst case), kept verbatim so
// the equivalence grid (TestWorklistMatchesReferenceFixpoint) can pin that
// every verdict, witness and tie-break of the worklist forms is byte-identical
// — and so the benchmark suite can measure the speedup against the real
// baseline. Nothing outside _test files and bench_test.go may import this
// package.
package graphalgtest

import (
	"sort"

	"repro/internal/graphalg"
)

// Reachable is the reference forward reachability (DFS over a slice stack).
func Reachable(v graphalg.StateView) []bool {
	seen := make([]bool, v.NumStates())
	stack := []int{v.Initial()}
	seen[v.Initial()] = true
	nActions := v.NumActions()
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for a := 0; a < nActions; a++ {
			for _, succ := range v.Succs(s, a) {
				if !seen[succ] {
					seen[succ] = true
					stack = append(stack, int(succ))
				}
			}
		}
	}
	return seen
}

// DeadlockStates is the reference deadlock scan: reachable, expanded states
// in which every action is a self-loop.
func DeadlockStates(v graphalg.StateView) []int {
	reachable := Reachable(v)
	nActions := v.NumActions()
	var out []int
	for s := 0; s < v.NumStates(); s++ {
		if !reachable[s] || !v.Expanded(s) {
			continue
		}
		stuck := true
		for a := 0; a < nActions && stuck; a++ {
			for _, succ := range v.Succs(s, a) {
				if int(succ) != s {
					stuck = false
					break
				}
			}
		}
		if stuck {
			out = append(out, s)
		}
	}
	return out
}

// DeadRegionStates is the reference dead-region analysis: backward
// reachability from goal states iterated to fixpoint by whole-state-space
// sweeps.
func DeadRegionStates(v graphalg.StateView, goal func(s int) bool) []int {
	n := v.NumStates()
	nActions := v.NumActions()
	canReach := make([]bool, n)
	for s := 0; s < n; s++ {
		if goal(s) || !v.Expanded(s) {
			canReach[s] = true
		}
	}
	changed := true
	for changed {
		changed = false
		for s := 0; s < n; s++ {
			if canReach[s] {
				continue
			}
			for a := 0; a < nActions && !canReach[s]; a++ {
				for _, succ := range v.Succs(s, a) {
					if canReach[succ] {
						canReach[s] = true
						changed = true
						break
					}
				}
			}
		}
	}
	reachable := Reachable(v)
	var dead []int
	for s := 0; s < n; s++ {
		if reachable[s] && !canReach[s] {
			dead = append(dead, s)
		}
	}
	return dead
}

// MaximalTrap is the reference trap analysis: the safety game and the
// maximal-end-component loop both iterate whole-state-space sweeps to
// fixpoint, exactly as the live package did before the predecessor-index
// worklists.
func MaximalTrap(v graphalg.StateView, bad func(s int) bool) graphalg.Trap {
	n := v.NumStates()
	nActions := v.NumActions()
	reachable := Reachable(v)

	// Step 1: greatest safe region S and allowed actions.
	inS := make([]bool, n)
	for s := 0; s < n; s++ {
		inS[s] = reachable[s] && !bad(s) && v.Expanded(s)
	}
	allowed := make([][]bool, n)
	for s := range allowed {
		allowed[s] = make([]bool, nActions)
	}
	for changed := true; changed; {
		changed = false
		for s := 0; s < n; s++ {
			if !inS[s] {
				continue
			}
			anyAllowed := false
			for a := 0; a < nActions; a++ {
				ok := true
				for _, succ := range v.Succs(s, a) {
					if !inS[succ] {
						ok = false
						break
					}
				}
				allowed[s][a] = ok
				if ok {
					anyAllowed = true
				}
			}
			if !anyAllowed {
				inS[s] = false
				changed = true
			}
		}
	}
	safeCount := 0
	for s := 0; s < n; s++ {
		if inS[s] {
			safeCount++
		}
	}

	trap := graphalg.Trap{SafeRegionStates: safeCount, WitnessState: -1}
	if safeCount == 0 {
		return trap
	}

	// Step 2: maximal end components of (S, allowed).
	inEC := make([]bool, n)
	copy(inEC, inS)
	act := make([][]bool, n)
	for s := range act {
		act[s] = make([]bool, nActions)
		copy(act[s], allowed[s])
	}
	comp := make([]int, n)

	for {
		StronglyConnected(v, inEC, act, comp)

		changed := false
		for s := 0; s < n; s++ {
			if !inEC[s] {
				continue
			}
			anyAct := false
			for a := 0; a < nActions; a++ {
				if !act[s][a] {
					continue
				}
				ok := true
				for _, succ := range v.Succs(s, a) {
					if !inEC[succ] || comp[succ] != comp[s] {
						ok = false
						break
					}
				}
				if !ok {
					act[s][a] = false
					changed = true
				} else {
					anyAct = true
				}
			}
			if !anyAct {
				inEC[s] = false
				changed = true
			}
		}
		if !changed {
			break
		}
	}

	// Step 3: group remaining states by component and check action coverage.
	groups := make(map[int][]int)
	for s := 0; s < n; s++ {
		if inEC[s] {
			groups[comp[s]] = append(groups[comp[s]], s)
		}
	}
	compIDs := make([]int, 0, len(groups))
	for id := range groups {
		compIDs = append(compIDs, id)
	}
	sort.Ints(compIDs)
	bestCovered := 0
	witness := -1
	for _, id := range compIDs {
		states := groups[id]
		covered := make([]bool, nActions)
		for _, s := range states {
			for a := 0; a < nActions; a++ {
				if act[s][a] {
					covered[a] = true
				}
			}
		}
		count := 0
		var coveredIDs []int
		for a, c := range covered {
			if c {
				count++
				coveredIDs = append(coveredIDs, a)
			}
		}
		fully := count == nActions
		// Minimum state index over every fully covered trap (states is in
		// increasing order), matching the live package's witness tie-break.
		if fully && (witness < 0 || states[0] < witness) {
			witness = states[0]
		}
		if count > bestCovered || (fully && trap.States < len(states)) {
			bestCovered = count
			trap.CoveredActions = coveredIDs
			if fully {
				trap.Exists = true
				trap.States = len(states)
				trap.Reachable = true
			}
		}
	}
	if trap.Exists {
		trap.WitnessState = witness
	}
	return trap
}

// StronglyConnected is the reference SCC computation: an iterative Tarjan
// that materializes a successor slice per visited state (the per-state
// allocation the live package's in-place cursor enumeration removed).
func StronglyConnected(v graphalg.StateView, inSet []bool, act [][]bool, comp []int) int {
	n := v.NumStates()
	nActions := v.NumActions()
	const unvisited = -1
	for i := range comp[:n] {
		comp[i] = -1
	}
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = unvisited
	}
	var stack []int
	type frame struct {
		v    int
		edge int
		succ []int32
	}
	var callStack []frame
	nextIndex := 0
	compCount := 0

	successors := func(s int) []int32 {
		var out []int32
		for a := 0; a < nActions; a++ {
			if !act[s][a] {
				continue
			}
			for _, succ := range v.Succs(s, a) {
				if inSet[succ] {
					out = append(out, succ)
				}
			}
		}
		return out
	}

	for root := 0; root < n; root++ {
		if !inSet[root] || index[root] != unvisited {
			continue
		}
		callStack = callStack[:0]
		callStack = append(callStack, frame{v: root, edge: 0, succ: successors(root)})
		index[root] = nextIndex
		low[root] = nextIndex
		nextIndex++
		stack = append(stack, root)
		onStack[root] = true

		for len(callStack) > 0 {
			fr := &callStack[len(callStack)-1]
			if fr.edge < len(fr.succ) {
				wn := int(fr.succ[fr.edge])
				fr.edge++
				if index[wn] == unvisited {
					index[wn] = nextIndex
					low[wn] = nextIndex
					nextIndex++
					stack = append(stack, wn)
					onStack[wn] = true
					callStack = append(callStack, frame{v: wn, edge: 0, succ: successors(wn)})
				} else if onStack[wn] && index[wn] < low[fr.v] {
					low[fr.v] = index[wn]
				}
				continue
			}
			fv := fr.v
			callStack = callStack[:len(callStack)-1]
			if len(callStack) > 0 {
				parent := &callStack[len(callStack)-1]
				if low[fv] < low[parent.v] {
					low[parent.v] = low[fv]
				}
			}
			if low[fv] == index[fv] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = compCount
					if w == fv {
						break
					}
				}
				compCount++
			}
		}
	}
	return compCount
}

package graphalg

// Trap describes a "trap" of the safety game: a maximal end component of the
// sub-MDP in which no bad state is ever entered, offering an allowed action
// of every index. For the dining MDP this is a starvation trap — a region in
// which a fair adversary can remain forever with probability 1, scheduling
// every philosopher infinitely often, while no protected philosopher ever
// eats.
type Trap struct {
	// Exists reports whether a fully covered end component exists within the
	// reachable safe region.
	Exists bool
	// Reachable reports whether some state of the trap is reachable from the
	// initial state (with positive probability under some scheduling).
	Reachable bool
	// States is the number of states in the largest fully covered trap found.
	States int
	// SafeRegionStates is the number of reachable states in which the
	// adversary has at least one move that surely avoids a bad state forever
	// (the greatest safe region of the safety game).
	SafeRegionStates int
	// WitnessState is the minimum state index over every fully covered trap
	// (not necessarily the largest one reported by States), or -1 when no
	// trap exists. State indices are discovery order, so this is the
	// shallowest trap state the exploration found, and the anchor for
	// counterexample extraction (PathTo) lifts it to the shortest concrete
	// witness path.
	WitnessState int
	// CoveredActions lists, for the largest candidate end component found,
	// which actions are allowed somewhere inside it, in increasing order.
	// When Exists is false this explains what was missing.
	CoveredActions []int
}

// MaximalTrap analyses the view for a trap against the given bad-state
// labelling (pass v.Bad for the view's default labelling). It is the
// one-shot form of PredecessorIndex.MaximalTrap — the index is built, used
// once and discarded; callers running several analyses (or the same analysis
// against several labellings, like the lockout-freedom property) should build
// the index once and share it.
func MaximalTrap(v StateView, bad func(s int) bool) Trap {
	return NewPredecessorIndex(v, 1).MaximalTrap(bad)
}

// StronglyConnected computes SCC indices (into comp) of the directed graph
// whose nodes are the states with inSet true and whose edges are all
// outcomes of the actions retained in act. It returns the number of
// components. States not in the set get comp = -1. comp must have length
// v.NumStates(); act must have one []bool of length v.NumActions() per
// state.
//
// The implementation is an iterative Tarjan, so deeply recurrent state
// graphs cannot blow the goroutine stack, and it enumerates successors in
// place through per-frame (action, outcome) cursors instead of materializing
// a successor slice per visited state. It is the one-shot form of
// PredecessorIndex.StronglyConnected — callers decomposing the same view
// repeatedly should build the index once and share it.
func StronglyConnected(v StateView, inSet []bool, act [][]bool, comp []int) int {
	return NewPredecessorIndex(v, 1).StronglyConnected(inSet, act, comp)
}

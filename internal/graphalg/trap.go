package graphalg

import "sort"

// Trap describes a "trap" of the safety game: a maximal end component of the
// sub-MDP in which no bad state is ever entered, offering an allowed action
// of every index. For the dining MDP this is a starvation trap — a region in
// which a fair adversary can remain forever with probability 1, scheduling
// every philosopher infinitely often, while no protected philosopher ever
// eats.
type Trap struct {
	// Exists reports whether a fully covered end component exists within the
	// reachable safe region.
	Exists bool
	// Reachable reports whether some state of the trap is reachable from the
	// initial state (with positive probability under some scheduling).
	Reachable bool
	// States is the number of states in the largest fully covered trap found.
	States int
	// SafeRegionStates is the number of reachable states in which the
	// adversary has at least one move that surely avoids a bad state forever
	// (the greatest safe region of the safety game).
	SafeRegionStates int
	// WitnessState is the index of one state inside the trap, or -1 when no
	// trap exists. It is the anchor for counterexample extraction (PathTo).
	WitnessState int
	// CoveredActions lists, for the largest candidate end component found,
	// which actions are allowed somewhere inside it, in increasing order.
	// When Exists is false this explains what was missing.
	CoveredActions []int
}

// MaximalTrap analyses the view for a trap against the given bad-state
// labelling (pass v.Bad for the view's default labelling).
//
// The computation proceeds in three standard steps:
//
//  1. Safety game: compute the greatest set S of non-bad states such that in
//     every state of S at least one action keeps every outcome inside S
//     ("allowed" actions). Outside S, every choice risks a bad state no
//     matter what the adversary does later.
//  2. End components: within (S, allowed) compute maximal end components —
//     sets of states closed under the retained actions and strongly
//     connected by them. Inside an end component the adversary can remain
//     forever with probability 1 and can take every retained action
//     infinitely often.
//  3. Coverage: a trap is an end component in which every action index has
//     at least one retained action, so remaining inside it forever is
//     compatible with fairness.
func MaximalTrap(v StateView, bad func(s int) bool) Trap {
	n := v.NumStates()
	nActions := v.NumActions()
	reachable := Reachable(v)

	// Step 1: greatest safe region S and allowed actions. States that were
	// never expanded (possible only on truncated explorations) are excluded:
	// their artificial self-loops must not be mistaken for safe behaviour.
	inS := make([]bool, n)
	for s := 0; s < n; s++ {
		inS[s] = reachable[s] && !bad(s) && v.Expanded(s)
	}
	allowed := make([][]bool, n)
	for s := range allowed {
		allowed[s] = make([]bool, nActions)
	}
	for changed := true; changed; {
		changed = false
		for s := 0; s < n; s++ {
			if !inS[s] {
				continue
			}
			anyAllowed := false
			for a := 0; a < nActions; a++ {
				ok := true
				for _, succ := range v.Succs(s, a) {
					if !inS[succ] {
						ok = false
						break
					}
				}
				allowed[s][a] = ok
				if ok {
					anyAllowed = true
				}
			}
			if !anyAllowed {
				inS[s] = false
				changed = true
			}
		}
	}
	safeCount := 0
	for s := 0; s < n; s++ {
		if inS[s] {
			safeCount++
		}
	}

	trap := Trap{SafeRegionStates: safeCount, WitnessState: -1}
	if safeCount == 0 {
		return trap
	}

	// Step 2: maximal end components of (S, allowed): repeatedly compute
	// SCCs of the graph restricted to allowed actions, and drop actions whose
	// outcomes leave their SCC (and states left with no actions), until
	// stable.
	inEC := make([]bool, n)
	copy(inEC, inS)
	act := make([][]bool, n)
	for s := range act {
		act[s] = make([]bool, nActions)
		copy(act[s], allowed[s])
	}
	comp := make([]int, n)

	for {
		StronglyConnected(v, inEC, act, comp)

		changed := false
		for s := 0; s < n; s++ {
			if !inEC[s] {
				continue
			}
			anyAct := false
			for a := 0; a < nActions; a++ {
				if !act[s][a] {
					continue
				}
				ok := true
				for _, succ := range v.Succs(s, a) {
					if !inEC[succ] || comp[succ] != comp[s] {
						ok = false
						break
					}
				}
				if !ok {
					act[s][a] = false
					changed = true
				} else {
					anyAct = true
				}
			}
			if !anyAct {
				inEC[s] = false
				changed = true
			}
		}
		if !changed {
			break
		}
	}

	// Step 3: group remaining states by component and check action coverage.
	// Components are visited in sorted index order so that the reported
	// best-coverage tie-break is deterministic.
	groups := make(map[int][]int)
	for s := 0; s < n; s++ {
		if inEC[s] {
			groups[comp[s]] = append(groups[comp[s]], s)
		}
	}
	compIDs := make([]int, 0, len(groups))
	for id := range groups {
		compIDs = append(compIDs, id)
	}
	sort.Ints(compIDs)
	bestCovered := 0
	for _, id := range compIDs {
		states := groups[id]
		covered := make([]bool, nActions)
		for _, s := range states {
			for a := 0; a < nActions; a++ {
				if act[s][a] {
					covered[a] = true
				}
			}
		}
		count := 0
		var coveredIDs []int
		for a, c := range covered {
			if c {
				count++
				coveredIDs = append(coveredIDs, a)
			}
		}
		fully := count == nActions
		if count > bestCovered || (fully && trap.States < len(states)) {
			bestCovered = count
			trap.CoveredActions = coveredIDs
			if fully {
				trap.Exists = true
				trap.States = len(states)
				trap.WitnessState = states[0]
				// Reachability of the trap (the safe region is already
				// restricted to reachable states, so any member works).
				trap.Reachable = true
			}
		}
	}
	return trap
}

// StronglyConnected computes SCC indices (into comp) of the directed graph
// whose nodes are the states with inSet true and whose edges are all
// outcomes of the actions retained in act. It returns the number of
// components. States not in the set get comp = -1. comp must have length
// v.NumStates(); act must have one []bool of length v.NumActions() per
// state.
//
// The implementation is an iterative Tarjan, so deeply recurrent state
// graphs cannot blow the goroutine stack.
func StronglyConnected(v StateView, inSet []bool, act [][]bool, comp []int) int {
	n := v.NumStates()
	nActions := v.NumActions()
	const unvisited = -1
	for i := range comp[:n] {
		comp[i] = -1
	}
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = unvisited
	}
	var stack []int
	type frame struct {
		v    int
		edge int
		succ []int32
	}
	var callStack []frame
	nextIndex := 0
	compCount := 0

	successors := func(s int) []int32 {
		var out []int32
		for a := 0; a < nActions; a++ {
			if !act[s][a] {
				continue
			}
			for _, succ := range v.Succs(s, a) {
				if inSet[succ] {
					out = append(out, succ)
				}
			}
		}
		return out
	}

	for root := 0; root < n; root++ {
		if !inSet[root] || index[root] != unvisited {
			continue
		}
		callStack = callStack[:0]
		callStack = append(callStack, frame{v: root, edge: 0, succ: successors(root)})
		index[root] = nextIndex
		low[root] = nextIndex
		nextIndex++
		stack = append(stack, root)
		onStack[root] = true

		for len(callStack) > 0 {
			fr := &callStack[len(callStack)-1]
			if fr.edge < len(fr.succ) {
				wn := int(fr.succ[fr.edge])
				fr.edge++
				if index[wn] == unvisited {
					index[wn] = nextIndex
					low[wn] = nextIndex
					nextIndex++
					stack = append(stack, wn)
					onStack[wn] = true
					callStack = append(callStack, frame{v: wn, edge: 0, succ: successors(wn)})
				} else if onStack[wn] && index[wn] < low[fr.v] {
					low[fr.v] = index[wn]
				}
				continue
			}
			// Finished v.
			fv := fr.v
			callStack = callStack[:len(callStack)-1]
			if len(callStack) > 0 {
				parent := &callStack[len(callStack)-1]
				if low[fv] < low[parent.v] {
					low[parent.v] = low[fv]
				}
			}
			if low[fv] == index[fv] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = compCount
					if w == fv {
						break
					}
				}
				compCount++
			}
		}
	}
	return compCount
}

package graphalg

import (
	"reflect"
	"testing"
)

// fuzzMDP decodes an arbitrary byte string into a small MDP: the first bytes
// fix the state and action counts, the rest drive the per-(state, action)
// outcome lists (including empty actions, duplicate successors and
// self-loops — everything the reverse index must represent faithfully).
func fuzzMDP(data []byte) *mdp {
	next := func() int {
		if len(data) == 0 {
			return 0
		}
		b := data[0]
		data = data[1:]
		return int(b)
	}
	n := next()%24 + 1
	nActions := next()%4 + 1
	succs := make([][][]int32, n)
	for s := 0; s < n; s++ {
		succs[s] = make([][]int32, nActions)
		for a := 0; a < nActions; a++ {
			k := next() % 4 // 0..3 outcomes; 0 leaves the action empty
			outs := make([]int32, 0, k)
			for i := 0; i < k; i++ {
				outs = append(outs, int32(next()%n))
			}
			succs[s][a] = outs
		}
	}
	m := &mdp{nActions: nActions, succs: succs}
	m.probs = make([][][]float64, n)
	m.bad = make([]bool, n)
	m.expanded = make([]bool, n)
	for s := range succs {
		m.expanded[s] = true
		m.probs[s] = make([][]float64, nActions)
		for a := range succs[s] {
			k := len(succs[s][a])
			m.probs[s][a] = make([]float64, k)
			for i := range m.probs[s][a] {
				m.probs[s][a][i] = 1 / float64(k)
			}
		}
	}
	return m
}

// edge identifies one edge occurrence for the bijection check.
type edge struct {
	pred, act, succ int32
}

// FuzzPredecessorIndex pins the forward/reverse edge-set bijection of the
// index: for any MDP, the multiset of reverse entries equals the multiset of
// forward outcome occurrences, bucket entries appear in forward enumeration
// order, the per-(state, action) successor counts match, and a parallel
// build produces the identical index.
func FuzzPredecessorIndex(f *testing.F) {
	f.Add([]byte{3, 2, 1, 0, 2, 1, 2})
	f.Add([]byte{1, 1, 3, 0, 0, 0})
	f.Add([]byte{5, 4, 2, 4, 4, 0, 1, 2, 3, 9, 9, 9, 2, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		m := fuzzMDP(data)
		ix := NewPredecessorIndex(m, 1)

		// Forward multiset and per-(state, action) counts.
		forward := map[edge]int{}
		edges := 0
		for s := 0; s < m.NumStates(); s++ {
			for a := 0; a < m.NumActions(); a++ {
				succs := m.Succs(s, a)
				if got := ix.OutDeg(s, a); got != len(succs) {
					t.Fatalf("OutDeg(%d, %d) = %d, want %d", s, a, got, len(succs))
				}
				for _, succ := range succs {
					forward[edge{int32(s), int32(a), succ}]++
					edges++
				}
			}
		}
		if ix.NumEdges() != edges {
			t.Fatalf("NumEdges = %d, want %d", ix.NumEdges(), edges)
		}

		// Reverse multiset, plus the in-bucket ordering contract: entries of
		// one bucket are sorted by (source, action) with ties left in outcome
		// order.
		reverse := map[edge]int{}
		total := 0
		for s := 0; s < m.NumStates(); s++ {
			preds, acts := ix.PredEdges(s)
			if len(preds) != len(acts) {
				t.Fatalf("state %d: %d preds vs %d acts", s, len(preds), len(acts))
			}
			for i := range preds {
				reverse[edge{preds[i], acts[i], int32(s)}]++
				total++
				if i > 0 && (preds[i] < preds[i-1] ||
					(preds[i] == preds[i-1] && acts[i] < acts[i-1])) {
					t.Fatalf("state %d: bucket entry %d out of (source, action) order", s, i)
				}
			}
		}
		if total != edges {
			t.Fatalf("reverse index has %d entries, want %d", total, edges)
		}
		if !reflect.DeepEqual(forward, reverse) {
			t.Fatalf("forward/reverse edge multisets differ:\nforward %v\nreverse %v", forward, reverse)
		}

		// A parallel build must produce the identical index.
		ix3 := NewPredecessorIndex(m, 3)
		for s := 0; s < m.NumStates(); s++ {
			p1, a1 := ix.PredEdges(s)
			p3, a3 := ix3.PredEdges(s)
			if !reflect.DeepEqual(p1, p3) || !reflect.DeepEqual(a1, a3) {
				t.Fatalf("state %d: parallel build diverged from sequential", s)
			}
		}
	})
}

// Package graphalg holds the graph and game algorithms the model checker
// runs over an explored Markov decision process: forward and backward
// reachability, deadlock detection, the safety game and maximal-end-component
// computation behind the starvation-trap analysis, strongly connected
// components, and shortest scheduler-choice path extraction.
//
// The package is a leaf (it imports only internal/par): it depends on
// nothing but the read-only StateView interface, so the analyses are
// decoupled from how the state space is stored (the sharded stores of
// internal/modelcheck, a test fixture, or any future backend).
//
// # The predecessor index
//
// The analyses run over a PredecessorIndex: the CSR form of the view's
// transition graph in both directions — flat forward successor rows, reverse
// (predecessor, action) edge occurrences, per-(state, action) successor
// counts — built once in O(E), in parallel over contiguous state chunks.
// Over the index every fixpoint computation is a worklist algorithm instead
// of a whole-state-space sweep: dead regions are a reverse BFS, the safety
// game is a counter-decrement attractor, the maximal-end-component loop
// re-checks only the states whose edges were removed, and SCCs are an
// iterative Tarjan enumerating edges in place. The index is immutable and
// never mutated by an analysis; mutable per-call state comes from an
// internal scratch pool, so independent analyses run concurrently over one
// shared index with zero per-state heap allocations once the pool is warm —
// which is how the lockout-freedom property fans its per-philosopher trap
// analyses across workers. The package-level functions are one-shot
// conveniences that build a throwaway index; the pre-worklist sweeps are
// retained in graphalgtest as test-only reference oracles.
//
// # Determinism
//
// Every analysis visits states in increasing index order, actions in
// increasing action order and outcomes in outcome order, so for a fixed view
// the results (including witness states and tie-breaks) are deterministic —
// and identical to the retained reference sweeps, as pinned by the
// equivalence grid in internal/modelcheck. Views whose numbering is itself
// deterministic — the model checker's exploration order is, for every worker
// and shard count — therefore get deterministic analyses end to end.
package graphalg

// StateView is the read-only interface the analyses operate on: a finite MDP
// with NumStates states, NumActions actions per state, and for each
// (state, action) a set of successor states with probabilities.
//
// Implementations must be safe for concurrent readers, and the slices
// returned by Succs and Probs must stay valid (and unmodified) for the
// lifetime of the view — the analyses alias them freely and never write
// through them.
type StateView interface {
	// NumStates returns the number of states; states are indexed 0..NumStates-1.
	NumStates() int
	// NumActions returns the number of actions available in every state.
	NumActions() int
	// Initial returns the index of the initial state.
	Initial() int
	// Succs returns the successor states of action a in state s. The slice
	// must not be modified.
	Succs(s, a int) []int32
	// Probs returns the outcome probabilities of action a in state s, aligned
	// with Succs. The slice must not be modified.
	Probs(s, a int) []float64
	// Bad reports the default "bad" labelling of state s (for the dining
	// MDP: a protected philosopher is eating). Analyses that test other
	// labellings take an explicit predicate instead.
	Bad(s int) bool
	// Expanded reports whether state s had its outgoing transitions fully
	// computed. States discovered but not expanded (possible only on
	// truncated explorations) carry artificial self-loops; the analyses
	// exclude them so truncation can never fabricate a violation.
	Expanded(s int) bool
}

// Reachable returns the set of states reachable from the initial state using
// any actions and any outcomes, as a boolean slice indexed by state.
func Reachable(v StateView) []bool {
	seen := make([]bool, v.NumStates())
	stack := []int{v.Initial()}
	seen[v.Initial()] = true
	nActions := v.NumActions()
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for a := 0; a < nActions; a++ {
			for _, succ := range v.Succs(s, a) {
				if !seen[succ] {
					seen[succ] = true
					stack = append(stack, int(succ))
				}
			}
		}
	}
	return seen
}

// DeadlockStates returns the reachable, expanded states in which every
// action is a self-loop: the system can never change state again.
func DeadlockStates(v StateView) []int {
	reachable := Reachable(v)
	nActions := v.NumActions()
	var out []int
	for s := 0; s < v.NumStates(); s++ {
		// Unexpanded states (possible only on truncated explorations) carry
		// artificial self-loops; treating them as deadlocks would fabricate
		// violations out of the truncation itself.
		if !reachable[s] || !v.Expanded(s) {
			continue
		}
		stuck := true
		for a := 0; a < nActions && stuck; a++ {
			for _, succ := range v.Succs(s, a) {
				if int(succ) != s {
					stuck = false
					break
				}
			}
		}
		if stuck {
			out = append(out, s)
		}
	}
	return out
}

// DeadRegionStates returns the reachable states from which no goal state is
// reachable under any action and any outcome. States that were never
// expanded count as able to reach a goal: their artificial self-loops say
// nothing about the real system, and truncation must never fabricate a
// violation — on a truncated view the analysis under-approximates, like
// MaximalTrap. It is the one-shot form of
// PredecessorIndex.DeadRegionStates; callers running several analyses should
// build the index once and share it.
func DeadRegionStates(v StateView, goal func(s int) bool) []int {
	return NewPredecessorIndex(v, 1).DeadRegionStates(goal)
}

// Choice is one move along a scheduler-choice path: the adversary picks
// Action and the probabilistic draw resolves to the outcome with index
// Outcome within that action's outcome set.
type Choice struct {
	// Action is the chosen action.
	Action int
	// Outcome is the index of the outcome taken.
	Outcome int
}

// PathTo returns a shortest scheduler-choice path from the initial state to
// target, and whether target is reachable. The search visits states in
// breadth-first order, actions in action order and outcomes in outcome
// order, so the returned path is deterministic for a fixed view — and, since
// the recorded choices are (action, outcome) pairs, invariant under any
// renumbering of the states.
func PathTo(v StateView, target int) ([]Choice, bool) {
	if target < 0 || target >= v.NumStates() {
		return nil, false
	}
	start := int32(v.Initial())
	if target == int(start) {
		return nil, true
	}
	n := v.NumStates()
	nActions := v.NumActions()
	prevState := make([]int32, n)
	prevChoice := make([]Choice, n)
	for i := range prevState {
		prevState[i] = -1
	}
	prevState[start] = start
	queue := make([]int32, 0, 64)
	queue = append(queue, start)
	for head := 0; head < len(queue); head++ {
		s := queue[head]
		for a := 0; a < nActions; a++ {
			succs := v.Succs(int(s), a)
			for oi, succ := range succs {
				if prevState[succ] != -1 {
					continue
				}
				prevState[succ] = s
				prevChoice[succ] = Choice{Action: a, Outcome: oi}
				if int(succ) == target {
					// Reconstruct backwards, then reverse.
					var path []Choice
					for at := succ; at != start; at = prevState[at] {
						path = append(path, prevChoice[at])
					}
					for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
						path[i], path[j] = path[j], path[i]
					}
					return path, true
				}
				queue = append(queue, succ)
			}
		}
	}
	return nil, false
}

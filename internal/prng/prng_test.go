package prng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewDeterministic(t *testing.T) {
	t.Parallel()
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("step %d: sources with equal seeds diverged: %d vs %d", i, got, want)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	t.Parallel()
	a := New(1)
	b := New(2)
	same := 0
	const n = 1000
	for i := 0; i < n; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 produced %d/%d identical outputs; streams should be unrelated", same, n)
	}
}

func TestIntnRange(t *testing.T) {
	t.Parallel()
	src := New(7)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := src.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d, out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	t.Parallel()
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntRange(t *testing.T) {
	t.Parallel()
	src := New(11)
	counts := make(map[int]int)
	for i := 0; i < 6000; i++ {
		v := src.IntRange(1, 6)
		if v < 1 || v > 6 {
			t.Fatalf("IntRange(1,6) = %d out of range", v)
		}
		counts[v]++
	}
	for face := 1; face <= 6; face++ {
		if counts[face] < 700 || counts[face] > 1300 {
			t.Errorf("IntRange(1,6): face %d frequency %d far from uniform (expected ~1000)", face, counts[face])
		}
	}
}

func TestIntRangePanicsWhenInverted(t *testing.T) {
	t.Parallel()
	defer func() {
		if recover() == nil {
			t.Fatal("IntRange(3,2) did not panic")
		}
	}()
	New(1).IntRange(3, 2)
}

func TestFloat64Range(t *testing.T) {
	t.Parallel()
	src := New(3)
	sum := 0.0
	const n = 10000
	for i := 0; i < n; i++ {
		f := src.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
		sum += f
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.02 {
		t.Errorf("Float64 mean = %v, want about 0.5", mean)
	}
}

func TestBoolExtremes(t *testing.T) {
	t.Parallel()
	src := New(5)
	for i := 0; i < 100; i++ {
		if src.Bool(0) {
			t.Fatal("Bool(0) returned true")
		}
		if !src.Bool(1) {
			t.Fatal("Bool(1) returned false")
		}
	}
}

func TestBoolProbability(t *testing.T) {
	t.Parallel()
	src := New(6)
	hits := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if src.Bool(0.25) {
			hits++
		}
	}
	frac := float64(hits) / n
	if math.Abs(frac-0.25) > 0.02 {
		t.Errorf("Bool(0.25) hit fraction %v, want about 0.25", frac)
	}
}

func TestSplitIndependence(t *testing.T) {
	t.Parallel()
	parent := New(9)
	child := parent.Split()
	same := 0
	const n = 1000
	for i := 0; i < n; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("parent and split child produced %d/%d identical outputs", same, n)
	}
}

func TestSplitDeterministic(t *testing.T) {
	t.Parallel()
	a := New(9).Split()
	b := New(9).Split()
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("Split is not deterministic for equal parents")
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	t.Parallel()
	src := New(13)
	for _, n := range []int{0, 1, 2, 5, 31, 100} {
		p := src.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShuffleKeepsElements(t *testing.T) {
	t.Parallel()
	src := New(17)
	vals := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, v := range vals {
		sum += v
	}
	src.Shuffle(len(vals), func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })
	got := 0
	for _, v := range vals {
		got += v
	}
	if got != sum {
		t.Fatalf("Shuffle changed multiset: sum %d != %d", got, sum)
	}
}

func TestWeightedRespectsZeroWeights(t *testing.T) {
	t.Parallel()
	src := New(19)
	for i := 0; i < 1000; i++ {
		idx := src.Weighted([]float64{0, 1, 0})
		if idx != 1 {
			t.Fatalf("Weighted([0,1,0]) = %d, want 1", idx)
		}
	}
}

func TestWeightedDistribution(t *testing.T) {
	t.Parallel()
	src := New(23)
	counts := [3]int{}
	const n = 30000
	for i := 0; i < n; i++ {
		counts[src.Weighted([]float64{1, 2, 1})]++
	}
	frac1 := float64(counts[1]) / n
	if math.Abs(frac1-0.5) > 0.02 {
		t.Errorf("Weighted([1,2,1]) middle fraction %v, want about 0.5", frac1)
	}
}

func TestWeightedPanicsWithoutPositiveWeight(t *testing.T) {
	t.Parallel()
	defer func() {
		if recover() == nil {
			t.Fatal("Weighted with all-zero weights did not panic")
		}
	}()
	New(1).Weighted([]float64{0, 0})
}

func TestIntnUniformityProperty(t *testing.T) {
	t.Parallel()
	// Property: for any seed and any small n, 10n draws hit every residue class.
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%8) + 2
		src := New(seed)
		seen := make(map[int]bool)
		for i := 0; i < 200*n; i++ {
			seen[src.Intn(n)] = true
		}
		return len(seen) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestUint64HighBitVaries(t *testing.T) {
	t.Parallel()
	src := New(31)
	ones := 0
	const n = 10000
	for i := 0; i < n; i++ {
		if src.Uint64()>>63 == 1 {
			ones++
		}
	}
	if ones < n/3 || ones > 2*n/3 {
		t.Errorf("high bit set %d/%d times; expected roughly half", ones, n)
	}
}

func BenchmarkUint64(b *testing.B) {
	src := New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = src.Uint64()
	}
}

func BenchmarkIntn(b *testing.B) {
	src := New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = src.Intn(1000)
	}
}

func TestReseedMatchesNew(t *testing.T) {
	t.Parallel()
	reused := New(1)
	for i := 0; i < 100; i++ {
		reused.Uint64() // advance to an arbitrary interior state
	}
	reused.Reseed(42)
	fresh := New(42)
	for i := 0; i < 1000; i++ {
		if got, want := reused.Uint64(), fresh.Uint64(); got != want {
			t.Fatalf("step %d: Reseed(42) diverged from New(42): %d vs %d", i, got, want)
		}
	}
}

func TestSplitToMatchesSplit(t *testing.T) {
	t.Parallel()
	a := New(7)
	b := New(7)
	split := a.Split()
	var dst Source
	dst.Reseed(99) // dirty the destination to prove Reseed fully overwrites it
	b.SplitTo(&dst)
	for i := 0; i < 1000; i++ {
		if got, want := dst.Uint64(), split.Uint64(); got != want {
			t.Fatalf("step %d: SplitTo destination diverged from Split result: %d vs %d", i, got, want)
		}
		if got, want := b.Uint64(), a.Uint64(); got != want {
			t.Fatalf("step %d: SplitTo advanced the parent differently than Split: %d vs %d", i, got, want)
		}
	}
}

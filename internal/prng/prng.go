// Package prng provides a deterministic, splittable pseudo-random number
// generator used throughout the repository.
//
// Every experiment in this repository must be reproducible from a single
// 64-bit seed. The standard library's math/rand (v1) global functions are not
// seedable per-experiment without global state, and math/rand/v2 is not
// splittable; this package implements xoshiro256** seeded via SplitMix64,
// which gives independent streams via Split and stable results across
// platforms and Go versions.
package prng

import "math/bits"

// Source is a deterministic random number source (xoshiro256**).
//
// The zero value is not usable; construct with New. A Source is not safe for
// concurrent use; use Split to derive independent sources for concurrent
// goroutines.
type Source struct {
	s [4]uint64
}

// splitmix64 advances the given state and returns the next output. It is used
// for seeding so that nearby seeds yield unrelated streams.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a Source seeded from seed. Two Sources constructed with the same
// seed produce identical output sequences.
func New(seed uint64) *Source {
	var src Source
	src.Reseed(seed)
	return &src
}

// Reseed reinitializes the receiver in place to the exact state New(seed)
// produces, so a pooled Source value can be reused across trials without
// allocating a fresh generator per trial.
func (s *Source) Reseed(seed uint64) {
	sm := seed
	for i := range s.s {
		s.s[i] = splitmix64(&sm)
	}
	// Avoid the all-zero state (cannot occur with splitmix64, but keep the
	// invariant explicit for anyone editing the seeding procedure).
	if s.s[0]|s.s[1]|s.s[2]|s.s[3] == 0 {
		s.s[0] = 1
	}
}

// Uint64 returns the next pseudo-random 64-bit value.
func (s *Source) Uint64() uint64 {
	result := bits.RotateLeft64(s.s[1]*5, 7) * 9

	t := s.s[1] << 17
	s.s[2] ^= s.s[0]
	s.s[3] ^= s.s[1]
	s.s[1] ^= s.s[2]
	s.s[0] ^= s.s[3]
	s.s[2] ^= t
	s.s[3] = bits.RotateLeft64(s.s[3], 45)

	return result
}

// Int63 returns a non-negative pseudo-random 63-bit integer. It satisfies the
// math/rand Source interface shape so a Source can back a rand.Rand if ever
// needed.
func (s *Source) Int63() int64 {
	return int64(s.Uint64() >> 1)
}

// Seed is a no-op provided for interface compatibility; reseeding is done by
// constructing a new Source.
func (s *Source) Seed(uint64) {}

// Intn returns a pseudo-random integer in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("prng: Intn called with non-positive n")
	}
	// Lemire's nearly-divisionless bounded generation.
	v := s.Uint64()
	hi, lo := bits.Mul64(v, uint64(n))
	if lo < uint64(n) {
		thresh := uint64(-n) % uint64(n)
		for lo < thresh {
			v = s.Uint64()
			hi, lo = bits.Mul64(v, uint64(n))
		}
	}
	return int(hi)
}

// IntRange returns a pseudo-random integer in [lo, hi] inclusive. It panics if
// hi < lo.
func (s *Source) IntRange(lo, hi int) int {
	if hi < lo {
		panic("prng: IntRange called with hi < lo")
	}
	return lo + s.Intn(hi-lo+1)
}

// Float64 returns a pseudo-random float64 in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p (clamped to [0, 1]).
func (s *Source) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.Float64() < p
}

// Split returns a new Source whose stream is statistically independent of the
// receiver's remaining stream. The receiver is advanced.
func (s *Source) Split() *Source {
	dst := new(Source)
	s.SplitTo(dst)
	return dst
}

// SplitTo is Split into a caller-owned destination: it advances the receiver
// exactly as Split does and leaves dst in the exact state the Source returned
// by Split would have, without allocating. dst may be the receiver itself.
func (s *Source) SplitTo(dst *Source) {
	dst.Reseed(s.Uint64() ^ 0xa5a5a5a5deadbeef)
}

// Perm returns a pseudo-random permutation of [0, n).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle randomly permutes the first n elements using the provided swap
// function, mirroring math/rand.Shuffle.
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}

// Weighted returns an index in [0, len(weights)) chosen with probability
// proportional to weights[i]. Negative weights are treated as zero. It panics
// if the total weight is not positive.
func (s *Source) Weighted(weights []float64) int {
	total := 0.0
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		panic("prng: Weighted called with non-positive total weight")
	}
	target := s.Float64() * total
	acc := 0.0
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		acc += w
		if target < acc {
			return i
		}
	}
	// Floating point slack: return the last positive-weight index.
	for i := len(weights) - 1; i >= 0; i-- {
		if weights[i] > 0 {
			return i
		}
	}
	return len(weights) - 1
}

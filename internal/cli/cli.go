// Package cli is the shared flag-to-engine plumbing of the cmd tools: one
// Config struct registers the flags a tool opts into, validates the values
// against the public registries, and assembles the v2 dining engine. The
// four tools previously each re-implemented this; keeping it here means a
// newly registered topology, algorithm or scheduler shows up in every tool's
// -help text and error messages automatically.
package cli

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"slices"
	"strings"
	"time"

	"repro/dining"
)

// Flags selects which flags a tool registers.
type Flags uint

const (
	// FlagTopology registers -topology and -n.
	FlagTopology Flags = 1 << iota
	// FlagAlgorithm registers -algorithm.
	FlagAlgorithm
	// FlagScheduler registers -scheduler.
	FlagScheduler
	// FlagSteps registers -steps.
	FlagSteps
	// FlagTrials registers -trials.
	FlagTrials
	// FlagSeed registers -seed.
	FlagSeed
	// FlagWorkers registers -workers.
	FlagWorkers
	// FlagM registers -m (the GDP number range).
	FlagM
	// FlagJSON registers -json.
	FlagJSON
	// FlagProps registers -props (property selection for Engine.Check).
	FlagProps
	// FlagShards registers -shards (state-space shards for explorations).
	FlagShards
	// FlagProfile registers -cpuprofile and -memprofile.
	FlagProfile
	// FlagFaults registers -faults (fault-model injection).
	FlagFaults
	// FlagServe registers -addr, -cache-states, -max-request-states and
	// -drain (dpserve).
	FlagServe
	// FlagSymmetry registers -symmetry (orbit-quotient explorations).
	FlagSymmetry
)

// Config holds the shared tool configuration. Populate the fields with a
// tool's defaults, call Register to expose them as flags, then (after
// flag.Parse) Validate / Topology / Engine.
type Config struct {
	// Topology and N select and size the topology.
	Topology string
	N        int
	// Algorithm and Scheduler are registry names.
	Algorithm string
	Scheduler string
	// Steps bounds each run; Trials is the Monte-Carlo trial count.
	Steps  int64
	Trials int
	// Seed is the base random seed.
	Seed uint64
	// Workers bounds trial goroutines (0 = one per CPU; results identical).
	Workers int
	// M is the GDP number range (0 = number of forks).
	M int
	// JSON selects machine-readable output.
	JSON bool
	// Props is the comma-separated property selection for Engine.Check
	// (empty = the four exhaustive built-ins).
	Props string
	// Shards is the exploration shard count (0 = match workers; results are
	// identical for every value).
	Shards int
	// Faults is the fault-model spec injected into the run
	// ("crash-rejoin:0.1", see the grammar in internal/fault; empty = no
	// faults).
	Faults string
	// Symmetry quotients explorations by the topology's automorphism group
	// (dining.WithSymmetry; verdicts are identical, state counts per-orbit).
	Symmetry bool
	// CPUProfile and MemProfile are output paths for runtime/pprof profiles
	// (empty = no profile).
	CPUProfile string
	MemProfile string
	// Addr is the listen address of the serving tools.
	Addr string
	// CacheStates bounds dpserve's state-space cache by total retained
	// states (0 = the server default).
	CacheStates int
	// MaxRequestStates is dpserve's admission cap: /v1/check requests whose
	// engine state bound exceeds it (or is unbounded) are rejected with a
	// 422 before any exploration starts (0 = no cap).
	MaxRequestStates int
	// Drain is the graceful-shutdown drain timeout of the serving tools.
	Drain time.Duration

	registered Flags
}

// Register declares the selected flags on fs, using the Config's current
// values as defaults and the registries for the help text.
func (c *Config) Register(fs *flag.FlagSet, which Flags) {
	c.registered |= which
	if which&FlagTopology != 0 {
		fs.StringVar(&c.Topology, "topology", c.Topology,
			fmt.Sprintf("topology name (registered: %s)", strings.Join(dining.Topologies(), ", ")))
		fs.IntVar(&c.N, "n", c.N, "topology size parameter (ignored by the fixed topologies)")
	}
	if which&FlagAlgorithm != 0 {
		fs.StringVar(&c.Algorithm, "algorithm", c.Algorithm,
			fmt.Sprintf("algorithm name (registered: %s)", strings.Join(dining.Algorithms(), ", ")))
	}
	if which&FlagScheduler != 0 {
		fs.StringVar(&c.Scheduler, "scheduler", c.Scheduler,
			fmt.Sprintf("scheduler name (registered: %s)", strings.Join(dining.Schedulers(), ", ")))
	}
	if which&FlagSteps != 0 {
		fs.Int64Var(&c.Steps, "steps", c.Steps, "maximum atomic steps per run")
	}
	if which&FlagTrials != 0 {
		fs.IntVar(&c.Trials, "trials", c.Trials, "number of independent runs")
	}
	if which&FlagSeed != 0 {
		fs.Uint64Var(&c.Seed, "seed", c.Seed, "random seed")
	}
	if which&FlagWorkers != 0 {
		fs.IntVar(&c.Workers, "workers", c.Workers, "trial goroutines (0 = one per CPU, 1 = sequential; results are identical)")
	}
	if which&FlagM != 0 {
		fs.IntVar(&c.M, "m", c.M, "GDP number range m (0 = number of forks)")
	}
	if which&FlagJSON != 0 {
		fs.BoolVar(&c.JSON, "json", c.JSON, "emit JSON instead of text")
	}
	if which&FlagProps != 0 {
		fs.StringVar(&c.Props, "props", c.Props,
			fmt.Sprintf("comma-separated properties to check (registered: %s; empty = %s)",
				strings.Join(dining.Properties(), ", "), strings.Join(dining.ExhaustiveProperties(), ", ")))
	}
	if which&FlagShards != 0 {
		fs.IntVar(&c.Shards, "shards", c.Shards,
			"state-space shards for explorations, rounded up to a power of two (0 = match -workers; results are identical)")
	}
	if which&FlagFaults != 0 {
		fs.StringVar(&c.Faults, "faults", c.Faults,
			fmt.Sprintf("fault-model spec name[:rates][@philosophers], e.g. crash-rejoin:0.1,0.5@0,2 or delayed-grants:0.3,4 (rate p, max in-flight delay k; registered: %s; empty = no faults)",
				strings.Join(dining.Faults(), ", ")))
	}
	if which&FlagServe != 0 {
		fs.StringVar(&c.Addr, "addr", c.Addr, "listen address (host:port; :0 picks a free port)")
		fs.IntVar(&c.CacheStates, "cache-states", c.CacheStates,
			"state-space cache budget: total retained states across entries (0 = server default)")
		fs.IntVar(&c.MaxRequestStates, "max-request-states", c.MaxRequestStates,
			"admission cap: reject /v1/check requests whose max_states exceeds this, or is unbounded (0 = no cap)")
		fs.DurationVar(&c.Drain, "drain", c.Drain, "graceful-shutdown drain timeout on SIGINT/SIGTERM")
	}
	if which&FlagSymmetry != 0 {
		fs.BoolVar(&c.Symmetry, "symmetry", c.Symmetry,
			"quotient explorations by the topology's automorphism group (verdicts identical; state counts per-orbit)")
	}
	if which&FlagProfile != 0 {
		fs.StringVar(&c.CPUProfile, "cpuprofile", c.CPUProfile, "write a CPU profile to this file")
		fs.StringVar(&c.MemProfile, "memprofile", c.MemProfile, "write a heap profile to this file on exit")
	}
}

// Validate checks every registered value: registry names must resolve
// (unknown names produce the registry's one-line error listing the options)
// and numeric parameters must be in range.
func (c *Config) Validate() error {
	if c.registered&FlagTopology != 0 {
		if err := knownName("topology", c.Topology, dining.Topologies()); err != nil {
			return err
		}
	}
	if c.registered&FlagAlgorithm != 0 {
		if err := knownName("algorithm", c.Algorithm, dining.Algorithms()); err != nil {
			return err
		}
	}
	if c.registered&FlagScheduler != 0 {
		if err := knownName("scheduler", c.Scheduler, dining.Schedulers()); err != nil {
			return err
		}
	}
	if c.registered&FlagSteps != 0 && c.Steps < 0 {
		return fmt.Errorf("-steps must be >= 0, got %d", c.Steps)
	}
	if c.registered&FlagTrials != 0 && c.Trials < 1 {
		return fmt.Errorf("-trials must be >= 1, got %d", c.Trials)
	}
	if c.registered&FlagWorkers != 0 && c.Workers < 0 {
		return fmt.Errorf("-workers must be >= 0, got %d", c.Workers)
	}
	if c.registered&FlagM != 0 && c.M < 0 {
		return fmt.Errorf("-m must be >= 0, got %d", c.M)
	}
	if c.registered&FlagShards != 0 && c.Shards < 0 {
		return fmt.Errorf("-shards must be >= 0, got %d", c.Shards)
	}
	if c.registered&FlagProps != 0 {
		for _, name := range c.PropertyNames() {
			if err := knownName("property", name, dining.Properties()); err != nil {
				return err
			}
		}
	}
	if c.registered&FlagServe != 0 {
		if c.Addr == "" {
			return fmt.Errorf("-addr must not be empty")
		}
		if c.CacheStates < 0 {
			return fmt.Errorf("-cache-states must be >= 0, got %d", c.CacheStates)
		}
		if c.MaxRequestStates < 0 {
			return fmt.Errorf("-max-request-states must be >= 0, got %d", c.MaxRequestStates)
		}
		if c.Drain < 0 {
			return fmt.Errorf("-drain must be >= 0, got %v", c.Drain)
		}
	}
	if c.registered&FlagFaults != 0 && c.Faults != "" {
		// Check the model name here so a typo gets the registry's one-line
		// sorted-names error; rates and targets are validated against the
		// topology when the engine is built.
		name := c.Faults
		if i := strings.IndexAny(name, ":@"); i >= 0 {
			name = name[:i]
		}
		if err := knownName("fault model", strings.TrimSpace(name), dining.Faults()); err != nil {
			return err
		}
	}
	return nil
}

// PropertyNames parses the -props selection into a name list (nil when the
// flag is empty, selecting Engine.Check's exhaustive defaults).
func (c *Config) PropertyNames() []string {
	var names []string
	for _, part := range strings.Split(c.Props, ",") {
		if name := strings.TrimSpace(part); name != "" {
			names = append(names, name)
		}
	}
	return names
}

// BuildTopology validates and resolves the configured topology.
func (c *Config) BuildTopology() (*dining.Topology, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return dining.NewTopology(c.Topology, c.N)
}

// Engine validates the configuration and assembles the engine, applying any
// extra options after the flag-derived ones.
func (c *Config) Engine(extra ...dining.Option) (*dining.Engine, error) {
	topo, err := c.BuildTopology()
	if err != nil {
		return nil, err
	}
	opts := []dining.Option{
		dining.WithSeed(c.Seed),
		dining.WithWorkers(c.Workers),
		dining.WithMaxSteps(c.Steps),
		dining.WithAlgorithmOptions(dining.AlgorithmOptions{M: c.M}),
	}
	if c.registered&FlagShards != 0 {
		opts = append(opts, dining.WithShards(c.Shards))
	}
	if c.Scheduler != "" {
		opts = append(opts, dining.WithScheduler(c.Scheduler))
	}
	if c.Faults != "" {
		opts = append(opts, dining.WithFaults(c.Faults))
	}
	if c.Symmetry {
		opts = append(opts, dining.WithSymmetry())
	}
	opts = append(opts, extra...)
	return dining.New(topo, c.Algorithm, opts...)
}

// fatalCleanups are best-effort finishers (profile flushes) that Fatal runs
// before exiting, so error exits anywhere in a tool never leave a truncated
// CPU profile behind. Each cleanup is idempotent; the tools are
// single-goroutine at the points that register and fire these.
var fatalCleanups []func()

// StartProfiling starts the profiles selected by -cpuprofile/-memprofile and
// returns a stop function that finishes them (stops the CPU profile, then
// writes the heap profile after a GC). stop is idempotent and also
// registered to run on any cli.Fatal exit; tools still call it on their
// success paths — including before os.Exit, where deferred calls do not run
// — so the usual shape is: code := run(); stop(); os.Exit(code). With
// neither flag set, both StartProfiling and stop are no-ops.
func (c *Config) StartProfiling() (stop func() error, err error) {
	var cpuFile *os.File
	if c.CPUProfile != "" {
		cpuFile, err = os.Create(c.CPUProfile)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, err
		}
	}
	stopped := false
	stop = func() error {
		if stopped {
			return nil
		}
		stopped = true
		var firstErr error
		if cpuFile != nil {
			pprof.StopCPUProfile()
			firstErr = cpuFile.Close()
		}
		if c.MemProfile != "" {
			f, err := os.Create(c.MemProfile)
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				return firstErr
			}
			runtime.GC() // materialize the final live heap
			if err := pprof.WriteHeapProfile(f); err != nil && firstErr == nil {
				firstErr = err
			}
			if err := f.Close(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		return firstErr
	}
	fatalCleanups = append(fatalCleanups, func() { _ = stop() })
	return stop, nil
}

// Fatal prints "tool: err" to stderr, flushes any registered best-effort
// outputs (profiles), and exits 1 — the shared error exit of the cmd tools.
func Fatal(tool string, err error) {
	fmt.Fprintf(os.Stderr, "%s: %v\n", tool, err)
	for _, cleanup := range fatalCleanups {
		cleanup()
	}
	os.Exit(1)
}

// knownName checks a registry name at the flag layer so the tool-level error
// carries no internal package prefix; the format mirrors the one-line
// unknown-name errors of the registries themselves.
func knownName(kind, name string, names []string) error {
	if slices.Contains(names, name) {
		return nil
	}
	return fmt.Errorf("unknown %s %q (registered: %s)", kind, name, strings.Join(names, ", "))
}

package cli

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func newConfig(t *testing.T, which Flags, args ...string) *Config {
	t.Helper()
	cfg := &Config{Topology: "ring", N: 5, Algorithm: "GDP1", Scheduler: "random", Steps: 1000, Trials: 1, Seed: 1}
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	cfg.Register(fs, which)
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	return cfg
}

const allFlags = FlagTopology | FlagAlgorithm | FlagScheduler | FlagSteps | FlagTrials | FlagSeed | FlagWorkers | FlagM | FlagJSON | FlagShards

func TestValidateUnknownNamesListRegisteredOptions(t *testing.T) {
	t.Parallel()
	cases := []struct {
		args []string
		want string
	}{
		{[]string{"-topology", "moebius"}, `unknown topology "moebius"`},
		{[]string{"-algorithm", "SHA256"}, `unknown algorithm "SHA256"`},
		{[]string{"-scheduler", "warp"}, `unknown scheduler "warp"`},
	}
	for _, c := range cases {
		cfg := newConfig(t, allFlags, c.args...)
		err := cfg.Validate()
		if err == nil {
			t.Errorf("%v: Validate accepted the unknown name", c.args)
			continue
		}
		msg := err.Error()
		if !strings.Contains(msg, c.want) || !strings.Contains(msg, "registered:") {
			t.Errorf("%v: want a one-line error listing the registered options, got: %v", c.args, err)
		}
		if strings.Contains(msg, "\n") {
			t.Errorf("%v: error is not one line: %q", c.args, msg)
		}
	}
}

func TestValidateRejectsNegativeNumbers(t *testing.T) {
	t.Parallel()
	cases := [][]string{
		{"-m", "-1"},
		{"-steps", "-5"},
		{"-trials", "0"},
		{"-workers", "-2"},
		{"-shards", "-1"},
	}
	for _, args := range cases {
		cfg := newConfig(t, allFlags, args...)
		if err := cfg.Validate(); err == nil {
			t.Errorf("Validate accepted %v", args)
		}
	}
}

func TestPropsFlag(t *testing.T) {
	t.Parallel()
	cfg := newConfig(t, FlagProps, "-props", "progress, starvation-trap")
	if err := cfg.Validate(); err != nil {
		t.Fatalf("Validate rejected known properties: %v", err)
	}
	names := cfg.PropertyNames()
	if len(names) != 2 || names[0] != "progress" || names[1] != "starvation-trap" {
		t.Errorf("PropertyNames = %v", names)
	}

	empty := newConfig(t, FlagProps)
	if err := empty.Validate(); err != nil {
		t.Fatalf("Validate rejected the empty default selection: %v", err)
	}
	if names := empty.PropertyNames(); names != nil {
		t.Errorf("empty -props should select the defaults (nil), got %v", names)
	}

	bad := newConfig(t, FlagProps, "-props", "progress,warp-freedom")
	err := bad.Validate()
	if err == nil {
		t.Fatal("Validate accepted an unknown property")
	}
	msg := err.Error()
	if !strings.Contains(msg, `unknown property "warp-freedom"`) || !strings.Contains(msg, "registered:") {
		t.Errorf("want a one-line error listing the registered properties, got: %v", err)
	}
}

func TestFaultsFlag(t *testing.T) {
	t.Parallel()
	cases := []struct {
		spec    string
		wantErr string // substring of the Validate error, "" = valid
	}{
		{"", ""},
		{"crash-rejoin", ""},
		{"crash-rejoin:0.1,0.5", ""},
		{"freeze:0.2@0,2", ""},
		{"lossy-grants:0.3", ""},
		{"meteor-strike", `unknown fault model "meteor-strike" (registered: crash-rejoin, delayed-grants, freeze, lossy-grants)`},
		{"meteor-strike:0.5", `unknown fault model "meteor-strike"`},
		{"meteor-strike@0,1", `unknown fault model "meteor-strike"`},
		{" crash-rejoin :0.1", ""}, // the name is trimmed before the lookup
	}
	for _, c := range cases {
		cfg := newConfig(t, allFlags|FlagFaults, "-faults", c.spec)
		err := cfg.Validate()
		if c.wantErr == "" {
			if err != nil {
				t.Errorf("-faults %q: Validate rejected a valid spec: %v", c.spec, err)
			}
			continue
		}
		if err == nil {
			t.Errorf("-faults %q: Validate accepted the unknown fault model", c.spec)
			continue
		}
		msg := err.Error()
		if !strings.Contains(msg, c.wantErr) {
			t.Errorf("-faults %q: error = %q, want it to contain %q", c.spec, msg, c.wantErr)
		}
		if strings.Contains(msg, "\n") {
			t.Errorf("-faults %q: error is not one line: %q", c.spec, msg)
		}
	}

	// Rates and targets are beyond the flag layer's name check; the engine
	// rejects them at construction.
	bad := newConfig(t, allFlags|FlagFaults, "-faults", "freeze:1.5")
	if err := bad.Validate(); err != nil {
		t.Fatalf("Validate should defer rate checking to the engine, got: %v", err)
	}
	if _, err := bad.Engine(); err == nil {
		t.Error("Engine accepted an out-of-range fault rate")
	}
}

func TestFaultsFlagReachesEngine(t *testing.T) {
	t.Parallel()
	cfg := newConfig(t, allFlags|FlagFaults, "-faults", "crash-rejoin:0.1")
	eng, err := cfg.Engine()
	if err != nil {
		t.Fatal(err)
	}
	if got := eng.Faults(); got != "crash-rejoin:0.1,0.5" {
		t.Errorf("engine faults = %q, want the canonical spec %q", got, "crash-rejoin:0.1,0.5")
	}

	plain := newConfig(t, allFlags|FlagFaults)
	eng, err = plain.Engine()
	if err != nil {
		t.Fatal(err)
	}
	if got := eng.Faults(); got != "" {
		t.Errorf("engine without -faults reports faults %q", got)
	}
}

func TestEngineFromFlags(t *testing.T) {
	t.Parallel()
	cfg := newConfig(t, allFlags, "-topology", "theta", "-n", "1", "-algorithm", "LR2", "-scheduler", "adversary", "-seed", "9")
	eng, err := cfg.Engine()
	if err != nil {
		t.Fatal(err)
	}
	if eng.Algorithm() != "LR2" || eng.Scheduler() != "adversary" || eng.Seed() != 9 {
		t.Errorf("engine does not reflect the flags: %s/%s/%d", eng.Algorithm(), eng.Scheduler(), eng.Seed())
	}
	if eng.Topology().NumForks() != 2 {
		t.Errorf("theta(1) should have 2 forks, got %d", eng.Topology().NumForks())
	}

	bad := newConfig(t, allFlags, "-m", "-3")
	if _, err := bad.Engine(); err == nil {
		t.Error("Engine accepted a negative -m")
	}
}

func TestShardsFlagReachesEngine(t *testing.T) {
	t.Parallel()
	cfg := newConfig(t, allFlags, "-shards", "8")
	eng, err := cfg.Engine()
	if err != nil {
		t.Fatal(err)
	}
	if eng.Shards() != 8 {
		t.Errorf("engine shards = %d, want 8", eng.Shards())
	}
}

func TestServeFlags(t *testing.T) {
	t.Parallel()
	cfg := newConfig(t, FlagServe, "-addr", ":0", "-cache-states", "1000", "-drain", "5s")
	if err := cfg.Validate(); err != nil {
		t.Fatalf("Validate rejected valid serve flags: %v", err)
	}
	if cfg.Addr != ":0" || cfg.CacheStates != 1000 || cfg.Drain.Seconds() != 5 {
		t.Errorf("serve flags not applied: %q / %d / %v", cfg.Addr, cfg.CacheStates, cfg.Drain)
	}

	cases := [][]string{
		{"-addr", ""},
		{"-addr", ":0", "-cache-states", "-1"},
		{"-addr", ":0", "-drain", "-1s"},
	}
	for _, args := range cases {
		bad := newConfig(t, FlagServe, args...)
		if err := bad.Validate(); err == nil {
			t.Errorf("Validate accepted %v", args)
		}
	}
}

func TestStartProfilingWritesProfiles(t *testing.T) {
	// Not parallel: the process-wide CPU profiler admits one client at a time.
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	cfg := newConfig(t, FlagProfile, "-cpuprofile", cpu, "-memprofile", mem)
	stop, err := cfg.StartProfiling()
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{cpu, mem} {
		info, err := os.Stat(path)
		if err != nil {
			t.Errorf("profile %s not written: %v", path, err)
			continue
		}
		if info.Size() == 0 {
			t.Errorf("profile %s is empty", path)
		}
	}
	// With no flags set, both start and stop are no-ops.
	idle := newConfig(t, FlagProfile)
	stop, err = idle.StartProfiling()
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
}

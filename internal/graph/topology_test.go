package graph

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestRingStructure(t *testing.T) {
	t.Parallel()
	for _, n := range []int{2, 3, 5, 12, 101} {
		topo := Ring(n)
		if got := topo.NumPhilosophers(); got != n {
			t.Errorf("Ring(%d): %d philosophers, want %d", n, got, n)
		}
		if got := topo.NumForks(); got != n {
			t.Errorf("Ring(%d): %d forks, want %d", n, got, n)
		}
		if !topo.IsClassicRing() {
			t.Errorf("Ring(%d): IsClassicRing() = false, want true", n)
		}
		if !topo.IsConnected() {
			t.Errorf("Ring(%d): not connected", n)
		}
		for f := 0; f < n; f++ {
			if d := topo.Degree(ForkID(f)); d != 2 {
				t.Errorf("Ring(%d): fork %d degree %d, want 2", n, f, d)
			}
		}
	}
}

func TestRingPanicsOnTooSmall(t *testing.T) {
	t.Parallel()
	defer func() {
		if recover() == nil {
			t.Fatal("Ring(1) did not panic")
		}
	}()
	Ring(1)
}

func TestBuilderRejectsIdenticalForks(t *testing.T) {
	t.Parallel()
	b := NewBuilder("bad", 3)
	b.AddPhilosopher(1, 1)
	if _, err := b.Build(); err == nil {
		t.Fatal("Build accepted a philosopher with identical forks")
	}
}

func TestBuilderRejectsOutOfRangeFork(t *testing.T) {
	t.Parallel()
	b := NewBuilder("bad", 3)
	b.AddPhilosopher(0, 7)
	if _, err := b.Build(); err == nil {
		t.Fatal("Build accepted an out-of-range fork")
	}
	b2 := NewBuilder("bad2", 3)
	b2.AddPhilosopher(-1, 2)
	if _, err := b2.Build(); err == nil {
		t.Fatal("Build accepted a negative fork")
	}
}

func TestBuilderRejectsEmptySystem(t *testing.T) {
	t.Parallel()
	if _, err := NewBuilder("empty", 4).Build(); err == nil {
		t.Fatal("Build accepted a system with no philosophers")
	}
	if _, err := NewBuilder("tiny", 1).Build(); err == nil {
		t.Fatal("Build accepted a system with fewer than 2 forks")
	}
}

func TestOtherForkAndSideOf(t *testing.T) {
	t.Parallel()
	topo := Ring(5)
	for p := 0; p < 5; p++ {
		pid := PhilID(p)
		l, r := topo.Left(pid), topo.Right(pid)
		if topo.OtherFork(pid, l) != r {
			t.Errorf("OtherFork(P%d, left) != right", p)
		}
		if topo.OtherFork(pid, r) != l {
			t.Errorf("OtherFork(P%d, right) != left", p)
		}
		if topo.SideOf(pid, l) != Left || topo.SideOf(pid, r) != Right {
			t.Errorf("SideOf(P%d) inconsistent", p)
		}
		if topo.Fork(pid, Left) != l || topo.Fork(pid, Right) != r {
			t.Errorf("Fork(P%d, side) inconsistent with Left/Right", p)
		}
	}
}

func TestOtherForkPanicsOnNonAdjacent(t *testing.T) {
	t.Parallel()
	topo := Ring(5)
	defer func() {
		if recover() == nil {
			t.Fatal("OtherFork with non-adjacent fork did not panic")
		}
	}()
	topo.OtherFork(0, 3)
}

func TestSlotRoundTrip(t *testing.T) {
	t.Parallel()
	topo := Figure1A()
	for f := 0; f < topo.NumForks(); f++ {
		fid := ForkID(f)
		for i, p := range topo.PhilosophersAt(fid) {
			if got := topo.Slot(fid, p); got != i {
				t.Errorf("Slot(f%d, P%d) = %d, want %d", f, p, got, i)
			}
		}
	}
}

func TestNeighborsRing(t *testing.T) {
	t.Parallel()
	topo := Ring(5)
	nb := topo.Neighbors(0)
	if len(nb) != 2 {
		t.Fatalf("Ring(5) philosopher 0 has %d neighbors, want 2", len(nb))
	}
	if nb[0] != 1 || nb[1] != 4 {
		t.Errorf("Ring(5) philosopher 0 neighbors = %v, want [1 4]", nb)
	}
	if !topo.SharesForkWith(0, 1) || topo.SharesForkWith(0, 2) {
		t.Error("SharesForkWith inconsistent with ring adjacency")
	}
	if topo.SharesForkWith(3, 3) {
		t.Error("a philosopher should not share a fork with itself")
	}
}

func TestSideString(t *testing.T) {
	t.Parallel()
	if Left.String() != "left" || Right.String() != "right" {
		t.Error("Side.String incorrect")
	}
	if Left.Other() != Right || Right.Other() != Left {
		t.Error("Side.Other incorrect")
	}
}

func TestFigure1Counts(t *testing.T) {
	t.Parallel()
	want := []struct {
		phils, forks int
	}{{6, 3}, {12, 6}, {16, 12}, {10, 9}}
	topos := Figure1()
	if len(topos) != 4 {
		t.Fatalf("Figure1 returned %d topologies, want 4", len(topos))
	}
	for i, topo := range topos {
		if topo.NumPhilosophers() != want[i].phils || topo.NumForks() != want[i].forks {
			t.Errorf("Figure1[%d] %q = %d phils / %d forks, want %d/%d",
				i, topo.Name(), topo.NumPhilosophers(), topo.NumForks(), want[i].phils, want[i].forks)
		}
		if err := topo.Validate(); err != nil {
			t.Errorf("Figure1[%d] invalid: %v", i, err)
		}
		if !topo.IsConnected() {
			t.Errorf("Figure1[%d] %q not connected", i, topo.Name())
		}
	}
}

func TestFigure1AShape(t *testing.T) {
	t.Parallel()
	topo := Figure1A()
	// Every fork is shared by four philosophers (two doubled edges).
	for f := 0; f < topo.NumForks(); f++ {
		if d := topo.Degree(ForkID(f)); d != 4 {
			t.Errorf("Figure1A fork %d degree %d, want 4", f, d)
		}
	}
	if topo.IsClassicRing() {
		t.Error("Figure1A should not be a classic ring")
	}
}

func TestTheorem1MinimalShape(t *testing.T) {
	t.Parallel()
	topo := Theorem1Minimal()
	if topo.NumPhilosophers() != 4 || topo.NumForks() != 3 {
		t.Fatalf("Theorem1Minimal = %d phils, %d forks; want 4, 3", topo.NumPhilosophers(), topo.NumForks())
	}
	if !topo.SatisfiesTheorem1() {
		t.Error("Theorem1Minimal does not satisfy the Theorem 1 structure")
	}
}

func TestTheorem2MinimalShape(t *testing.T) {
	t.Parallel()
	topo := Theorem2Minimal()
	if topo.NumPhilosophers() != 3 || topo.NumForks() != 2 {
		t.Fatalf("Theorem2Minimal = %d phils, %d forks; want 3, 2", topo.NumPhilosophers(), topo.NumForks())
	}
	if !topo.SatisfiesTheorem2() {
		t.Error("Theorem2Minimal does not satisfy the Theorem 2 structure")
	}
	if !topo.SatisfiesTheorem1() {
		t.Error("Theorem2Minimal should also satisfy Theorem 1 (a 2-cycle with a degree-3 fork)")
	}
}

func TestClassicRingDoesNotSatisfyTheorems(t *testing.T) {
	t.Parallel()
	for _, n := range []int{3, 5, 8} {
		topo := Ring(n)
		if topo.SatisfiesTheorem1() {
			t.Errorf("Ring(%d) should not satisfy Theorem 1 structure", n)
		}
		if topo.SatisfiesTheorem2() {
			t.Errorf("Ring(%d) should not satisfy Theorem 2 structure", n)
		}
	}
}

func TestPathAndStarAreAcyclic(t *testing.T) {
	t.Parallel()
	if Path(6).HasCycle() {
		t.Error("Path(6) reports a cycle")
	}
	if Star(5).HasCycle() {
		t.Error("Star(5) reports a cycle")
	}
	if !Ring(4).HasCycle() {
		t.Error("Ring(4) reports no cycle")
	}
	if !Theta(1, 1, 1).HasCycle() {
		t.Error("Theta(1,1,1) reports no cycle")
	}
}

func TestStarDegrees(t *testing.T) {
	t.Parallel()
	topo := Star(7)
	if topo.Degree(0) != 7 {
		t.Errorf("Star(7) hub degree %d, want 7", topo.Degree(0))
	}
	for f := 1; f <= 7; f++ {
		if topo.Degree(ForkID(f)) != 1 {
			t.Errorf("Star(7) leaf fork %d degree %d, want 1", f, topo.Degree(ForkID(f)))
		}
	}
	if topo.MaxDegree() != 7 {
		t.Errorf("Star(7) MaxDegree %d, want 7", topo.MaxDegree())
	}
}

func TestGridStructure(t *testing.T) {
	t.Parallel()
	topo := Grid(3, 4)
	if topo.NumForks() != 12 {
		t.Errorf("Grid(3,4) forks = %d, want 12", topo.NumForks())
	}
	// Edges: 3*3 horizontal + 2*4 vertical = 17.
	if topo.NumPhilosophers() != 17 {
		t.Errorf("Grid(3,4) philosophers = %d, want 17", topo.NumPhilosophers())
	}
	if !topo.IsConnected() {
		t.Error("Grid(3,4) not connected")
	}
	if !topo.HasCycle() {
		t.Error("Grid(3,4) should contain cycles")
	}
}

func TestCompleteForkGraph(t *testing.T) {
	t.Parallel()
	topo := CompleteForkGraph(5)
	if topo.NumPhilosophers() != 10 {
		t.Errorf("CompleteForkGraph(5) has %d philosophers, want 10", topo.NumPhilosophers())
	}
	for f := 0; f < 5; f++ {
		if topo.Degree(ForkID(f)) != 4 {
			t.Errorf("CompleteForkGraph(5) fork %d degree %d, want 4", f, topo.Degree(ForkID(f)))
		}
	}
}

func TestRandomMultigraphValidAndDeterministic(t *testing.T) {
	t.Parallel()
	a := RandomMultigraph(20, 8, 99)
	b := RandomMultigraph(20, 8, 99)
	if a.NumPhilosophers() != 20 || a.NumForks() != 8 {
		t.Fatalf("RandomMultigraph(20,8) = %d/%d", a.NumPhilosophers(), a.NumForks())
	}
	if err := a.Validate(); err != nil {
		t.Fatalf("RandomMultigraph invalid: %v", err)
	}
	if !a.IsConnected() {
		t.Error("RandomMultigraph(20,8) should be connected (spanning tree included)")
	}
	for p := 0; p < a.NumPhilosophers(); p++ {
		if a.Forks(PhilID(p)) != b.Forks(PhilID(p)) {
			t.Fatalf("RandomMultigraph not deterministic for equal seeds at philosopher %d", p)
		}
	}
	c := RandomMultigraph(20, 8, 100)
	diff := false
	for p := 0; p < 20; p++ {
		if a.Forks(PhilID(p)) != c.Forks(PhilID(p)) {
			diff = true
			break
		}
	}
	if !diff {
		t.Error("RandomMultigraph with different seeds produced identical topologies")
	}
}

func TestRandomMultigraphProperty(t *testing.T) {
	t.Parallel()
	f := func(seed uint64, pRaw, fRaw uint8) bool {
		numForks := int(fRaw%10) + 2
		numPhils := int(pRaw%30) + numForks // ensure connectivity possible
		topo := RandomMultigraph(numPhils, numForks, seed)
		return topo.Validate() == nil && topo.IsConnected() &&
			topo.NumPhilosophers() == numPhils && topo.NumForks() == numForks
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestDOTOutput(t *testing.T) {
	t.Parallel()
	dot := Ring(3).DOT()
	for _, want := range []string{"graph", "f0 -- f1", "f2 -- f0", "P2"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT output missing %q:\n%s", want, dot)
		}
	}
}

func TestStringDescription(t *testing.T) {
	t.Parallel()
	s := Figure1A().String()
	if !strings.Contains(s, "6 philosophers") || !strings.Contains(s, "3 forks") {
		t.Errorf("String() = %q, want philosopher and fork counts", s)
	}
}

func TestThetaShapes(t *testing.T) {
	t.Parallel()
	topo := Theta(2, 2, 3)
	// Forks: 2 hubs + (1 + 1 + 2) internal = 6; philosophers: 2+2+3 = 7.
	if topo.NumForks() != 6 || topo.NumPhilosophers() != 7 {
		t.Fatalf("Theta(2,2,3) = %d forks, %d phils; want 6, 7", topo.NumForks(), topo.NumPhilosophers())
	}
	if !topo.SatisfiesTheorem2() {
		t.Error("Theta(2,2,3) should satisfy the Theorem 2 structure")
	}
	if topo.Degree(0) != 3 || topo.Degree(1) != 3 {
		t.Errorf("Theta hubs should have degree 3, got %d and %d", topo.Degree(0), topo.Degree(1))
	}
}

func TestRingWithChordTheorem1(t *testing.T) {
	t.Parallel()
	for _, k := range []int{3, 4, 6, 8} {
		topo := RingWithChord(k, k/2)
		if !topo.SatisfiesTheorem1() {
			t.Errorf("RingWithChord(%d) should satisfy Theorem 1 structure", k)
		}
		if topo.NumPhilosophers() != k+1 {
			t.Errorf("RingWithChord(%d) has %d philosophers, want %d", k, topo.NumPhilosophers(), k+1)
		}
	}
}

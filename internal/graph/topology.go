// Package graph models generalized dining-philosopher topologies.
//
// Following Herescu & Palamidessi (PODC 2001), a generalized dining
// philosopher system is an undirected multigraph whose nodes are the forks and
// whose arcs are the philosophers: each philosopher is adjacent to exactly two
// distinct forks (its "left" and "right" fork), a fork may be shared by any
// positive number of philosophers, and the numbers of philosophers and forks
// are unrelated. The classic Dijkstra table is the special case of a simple
// ring.
//
// The package provides construction, validation, structural queries (degrees,
// adjacency, cycles), the concrete topologies used in the paper (Figure 1, the
// Theorem 1 "ring plus chord" family, the Theorem 2 "theta" family) and
// generators for synthetic workloads.
package graph

import (
	"fmt"
	"sort"
	"strings"
)

// ForkID identifies a fork (a node of the topology). Fork IDs are dense
// integers in [0, NumForks).
type ForkID int

// PhilID identifies a philosopher (an arc of the topology). Philosopher IDs
// are dense integers in [0, NumPhilosophers).
type PhilID int

// NoFork is the sentinel "no fork" value.
const NoFork ForkID = -1

// NoPhil is the sentinel "no philosopher" value.
const NoPhil PhilID = -1

// Side selects one of a philosopher's two forks.
type Side int

const (
	// Left is the philosopher's left fork.
	Left Side = iota
	// Right is the philosopher's right fork.
	Right
)

// String implements fmt.Stringer.
func (s Side) String() string {
	if s == Left {
		return "left"
	}
	return "right"
}

// Other returns the opposite side.
func (s Side) Other() Side {
	if s == Left {
		return Right
	}
	return Left
}

// Topology is an immutable generalized dining-philosopher system: a multigraph
// with forks as nodes and philosophers as arcs. Construct one with a Builder
// or one of the predefined constructors; a constructed Topology is safe for
// concurrent read access.
type Topology struct {
	name     string
	numForks int
	// phils[p][Left], phils[p][Right] are the two forks of philosopher p.
	phils [][2]ForkID
	// at[f] lists the philosophers adjacent to fork f, in increasing order.
	at [][]PhilID
	// slotBase[f] is the offset of fork f's first adjacency slot in the flat
	// per-(fork, adjacent philosopher) arrays used by simulators; slotBase has
	// numForks+1 entries so slotBase[f+1]-slotBase[f] is Degree(f) and
	// slotBase[numForks] is the total slot count.
	slotBase []int
	// aut holds the declared automorphism generators of the topology (see
	// automorphism.go). Only the symmetric constructors (Ring, Star) declare
	// any; an empty set means the only known automorphism is the identity.
	aut []Automorphism
}

// Builder incrementally constructs a Topology. The zero value is not usable;
// call NewBuilder.
type Builder struct {
	name     string
	numForks int
	phils    [][2]ForkID
	err      error
}

// NewBuilder returns a Builder for a topology with numForks forks and no
// philosophers yet.
func NewBuilder(name string, numForks int) *Builder {
	b := &Builder{name: name, numForks: numForks}
	if numForks < 2 {
		b.err = fmt.Errorf("graph: topology %q needs at least 2 forks, got %d", name, numForks)
	}
	return b
}

// AddPhilosopher adds a philosopher whose left fork is left and right fork is
// right, returning its PhilID. Errors (out-of-range or identical forks) are
// deferred until Build.
func (b *Builder) AddPhilosopher(left, right ForkID) PhilID {
	id := PhilID(len(b.phils))
	if b.err == nil {
		switch {
		case left == right:
			b.err = fmt.Errorf("graph: philosopher %d in %q has identical left and right fork %d", id, b.name, left)
		case left < 0 || int(left) >= b.numForks:
			b.err = fmt.Errorf("graph: philosopher %d in %q has left fork %d out of range [0,%d)", id, b.name, left, b.numForks)
		case right < 0 || int(right) >= b.numForks:
			b.err = fmt.Errorf("graph: philosopher %d in %q has right fork %d out of range [0,%d)", id, b.name, right, b.numForks)
		}
	}
	b.phils = append(b.phils, [2]ForkID{left, right})
	return id
}

// Build validates the accumulated system and returns the immutable Topology.
func (b *Builder) Build() (*Topology, error) {
	if b.err != nil {
		return nil, b.err
	}
	if len(b.phils) == 0 {
		return nil, fmt.Errorf("graph: topology %q has no philosophers", b.name)
	}
	t := &Topology{
		name:     b.name,
		numForks: b.numForks,
		phils:    make([][2]ForkID, len(b.phils)),
		at:       make([][]PhilID, b.numForks),
	}
	copy(t.phils, b.phils)
	for p, fks := range t.phils {
		t.at[fks[Left]] = append(t.at[fks[Left]], PhilID(p))
		t.at[fks[Right]] = append(t.at[fks[Right]], PhilID(p))
	}
	for f := range t.at {
		sort.Slice(t.at[f], func(i, j int) bool { return t.at[f][i] < t.at[f][j] })
	}
	t.slotBase = make([]int, t.numForks+1)
	for f := 0; f < t.numForks; f++ {
		t.slotBase[f+1] = t.slotBase[f] + len(t.at[f])
	}
	return t, nil
}

// MustBuild is like Build but panics on error. Intended for the predefined
// constructors and tests, where a failure is a programming bug.
func (b *Builder) MustBuild() *Topology {
	t, err := b.Build()
	if err != nil {
		panic(err)
	}
	return t
}

// Name returns the topology's descriptive name.
func (t *Topology) Name() string { return t.name }

// NumForks returns the number of forks (nodes).
func (t *Topology) NumForks() int { return t.numForks }

// NumPhilosophers returns the number of philosophers (arcs).
func (t *Topology) NumPhilosophers() int { return len(t.phils) }

// Fork returns the fork on the given side of philosopher p.
func (t *Topology) Fork(p PhilID, s Side) ForkID { return t.phils[p][s] }

// Left returns philosopher p's left fork.
func (t *Topology) Left(p PhilID) ForkID { return t.phils[p][Left] }

// Right returns philosopher p's right fork.
func (t *Topology) Right(p PhilID) ForkID { return t.phils[p][Right] }

// Forks returns both forks of philosopher p as a two-element array
// (index by Side).
func (t *Topology) Forks(p PhilID) [2]ForkID { return t.phils[p] }

// OtherFork returns the fork of philosopher p that is not f. It panics if f is
// not adjacent to p.
func (t *Topology) OtherFork(p PhilID, f ForkID) ForkID {
	switch f {
	case t.phils[p][Left]:
		return t.phils[p][Right]
	case t.phils[p][Right]:
		return t.phils[p][Left]
	}
	panic(fmt.Sprintf("graph: fork %d is not adjacent to philosopher %d", f, p))
}

// SideOf returns which side of philosopher p fork f is on. It panics if f is
// not adjacent to p.
func (t *Topology) SideOf(p PhilID, f ForkID) Side {
	switch f {
	case t.phils[p][Left]:
		return Left
	case t.phils[p][Right]:
		return Right
	}
	panic(fmt.Sprintf("graph: fork %d is not adjacent to philosopher %d", f, p))
}

// PhilosophersAt returns the philosophers adjacent to fork f in increasing
// order. The returned slice must not be modified.
func (t *Topology) PhilosophersAt(f ForkID) []PhilID { return t.at[f] }

// Degree returns the number of philosophers sharing fork f.
func (t *Topology) Degree(f ForkID) int { return len(t.at[f]) }

// MaxDegree returns the maximum fork degree in the topology.
func (t *Topology) MaxDegree() int {
	max := 0
	for f := range t.at {
		if d := len(t.at[f]); d > max {
			max = d
		}
	}
	return max
}

// Slot returns the index of philosopher p within PhilosophersAt(f), used by
// simulators to store per-(fork, adjacent philosopher) bookkeeping in dense
// arrays. It panics if p is not adjacent to f.
func (t *Topology) Slot(f ForkID, p PhilID) int {
	for i, q := range t.at[f] {
		if q == p {
			return i
		}
	}
	panic(fmt.Sprintf("graph: philosopher %d is not adjacent to fork %d", p, f))
}

// SlotBase returns the offset of fork f's first adjacency slot in a flat
// array that concatenates the slots of every fork in fork-ID order: the
// per-(fork, adjacent philosopher) datum of philosopher p on fork f lives at
// index SlotBase(f)+Slot(f, p). Simulators use it to store all request-list
// and guest-book state in two shared backing arrays instead of one pair of
// small slices per fork.
func (t *Topology) SlotBase(f ForkID) int { return t.slotBase[f] }

// TotalSlots returns the total number of (fork, adjacent philosopher)
// adjacency slots, i.e. the sum of all fork degrees (always twice the number
// of philosophers).
func (t *Topology) TotalSlots() int { return t.slotBase[t.numForks] }

// Neighbors returns the philosophers that share at least one fork with p,
// excluding p itself, in increasing order without duplicates.
func (t *Topology) Neighbors(p PhilID) []PhilID {
	seen := make(map[PhilID]bool)
	for _, f := range t.phils[p] {
		for _, q := range t.at[f] {
			if q != p {
				seen[q] = true
			}
		}
	}
	out := make([]PhilID, 0, len(seen))
	for q := range seen {
		out = append(out, q)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// SharesForkWith reports whether philosophers p and q share a fork.
func (t *Topology) SharesForkWith(p, q PhilID) bool {
	if p == q {
		return false
	}
	for _, fp := range t.phils[p] {
		for _, fq := range t.phils[q] {
			if fp == fq {
				return true
			}
		}
	}
	return false
}

// IsClassicRing reports whether the topology is the classic dining-philosopher
// ring: equal numbers of forks and philosophers, every fork shared by exactly
// two philosophers, and the whole graph a single cycle.
func (t *Topology) IsClassicRing() bool {
	if t.numForks != len(t.phils) {
		return false
	}
	for f := 0; f < t.numForks; f++ {
		if t.Degree(ForkID(f)) != 2 {
			return false
		}
	}
	comps := t.connectedForkComponents()
	return len(comps) == 1
}

// Validate re-checks the structural invariants of Definition 1: at least two
// forks, at least one philosopher, every philosopher adjacent to two distinct
// in-range forks. Builders already enforce this; Validate exists so that
// topologies decoded from external input can be re-checked.
func (t *Topology) Validate() error {
	if t.numForks < 2 {
		return fmt.Errorf("graph: topology %q has %d forks, need at least 2", t.name, t.numForks)
	}
	if len(t.phils) == 0 {
		return fmt.Errorf("graph: topology %q has no philosophers", t.name)
	}
	for p, fks := range t.phils {
		if fks[Left] == fks[Right] {
			return fmt.Errorf("graph: philosopher %d has identical forks", p)
		}
		for _, f := range fks {
			if f < 0 || int(f) >= t.numForks {
				return fmt.Errorf("graph: philosopher %d references fork %d out of range", p, f)
			}
		}
	}
	return nil
}

// connectedForkComponents returns the connected components of the fork graph
// (forks connected when some philosopher is adjacent to both) as slices of
// fork IDs.
func (t *Topology) connectedForkComponents() [][]ForkID {
	visited := make([]bool, t.numForks)
	var comps [][]ForkID
	for start := 0; start < t.numForks; start++ {
		if visited[start] {
			continue
		}
		var comp []ForkID
		stack := []ForkID{ForkID(start)}
		visited[start] = true
		for len(stack) > 0 {
			f := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, f)
			for _, p := range t.at[f] {
				g := t.OtherFork(p, f)
				if !visited[g] {
					visited[g] = true
					stack = append(stack, g)
				}
			}
		}
		sort.Slice(comp, func(i, j int) bool { return comp[i] < comp[j] })
		comps = append(comps, comp)
	}
	return comps
}

// IsConnected reports whether the fork graph is connected. Isolated forks
// (degree zero) count as their own components.
func (t *Topology) IsConnected() bool {
	return len(t.connectedForkComponents()) == 1
}

// String returns a compact human-readable description.
func (t *Topology) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %d philosophers, %d forks", t.name, len(t.phils), t.numForks)
	return b.String()
}

// DOT returns a Graphviz representation: forks are nodes, philosophers are
// labelled edges. Useful for inspecting generated and reconstructed
// topologies.
func (t *Topology) DOT() string {
	var b strings.Builder
	b.WriteString("graph \"")
	b.WriteString(t.name)
	b.WriteString("\" {\n")
	for f := 0; f < t.numForks; f++ {
		fmt.Fprintf(&b, "  f%d [shape=point, label=\"f%d\"];\n", f, f)
	}
	for p, fks := range t.phils {
		fmt.Fprintf(&b, "  f%d -- f%d [label=\"P%d\"];\n", fks[Left], fks[Right], p)
	}
	b.WriteString("}\n")
	return b.String()
}

package graph

import (
	"strings"
	"testing"
)

// enumerateGroup is an independent closure of the declared generators used to
// cross-check the canonicalizer's enumeration.
func enumerateGroup(t *Topology, gens []Automorphism) []Automorphism {
	id := identityAutomorphism(t)
	seen := map[string]bool{id.permKey(): true}
	group := []Automorphism{id}
	for q := []Automorphism{id}; len(q) > 0; {
		cur := q[0]
		q = q[1:]
		for _, g := range gens {
			next := compose(g, cur)
			if key := next.permKey(); !seen[key] {
				seen[key] = true
				group = append(group, next)
				q = append(q, next)
			}
		}
	}
	return group
}

func TestRingAutomorphismGroupIsDihedral(t *testing.T) {
	t.Parallel()
	for _, n := range []int{2, 3, 4, 5, 8} {
		topo := Ring(n)
		gens := topo.Automorphisms()
		if len(gens) != 2 {
			t.Fatalf("Ring(%d): %d generators, want 2 (rotation + reflection)", n, len(gens))
		}
		for i, g := range gens {
			if err := g.Validate(topo); err != nil {
				t.Errorf("Ring(%d) generator %d invalid: %v", n, i, err)
			}
		}
		c, err := NewOrbitCanonicalizer(topo, CanonOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if c.Size() != 2*n {
			t.Errorf("Ring(%d): group order %d, want dihedral order %d", n, c.Size(), 2*n)
		}
		if c.Trivial() {
			t.Errorf("Ring(%d): canonicalizer reports trivial", n)
		}
		// Restricting to orientation-preserving elements keeps the cyclic
		// rotation subgroup.
		cp, err := NewOrbitCanonicalizer(topo, CanonOptions{OrientationPreserving: true})
		if err != nil {
			t.Fatal(err)
		}
		if cp.Size() != n {
			t.Errorf("Ring(%d) orientation-preserving: order %d, want %d", n, cp.Size(), n)
		}
	}
}

func TestStarAutomorphismGroupIsLeafPermutations(t *testing.T) {
	t.Parallel()
	for _, tc := range []struct {
		n, want int
	}{
		{1, 1},  // no symmetry declared
		{2, 2},  // swap of the two leaves
		{3, 6},  // S_3
		{4, 24}, // S_4
		{5, 120},
	} {
		topo := Star(tc.n)
		c, err := NewOrbitCanonicalizer(topo, CanonOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if c.Size() != tc.want {
			t.Errorf("Star(%d): group order %d, want %d", tc.n, c.Size(), tc.want)
		}
		// Every leaf permutation keeps the hub on the left of every
		// philosopher, so the orientation filter changes nothing.
		cp, err := NewOrbitCanonicalizer(topo, CanonOptions{OrientationPreserving: true})
		if err != nil {
			t.Fatal(err)
		}
		if cp.Size() != c.Size() {
			t.Errorf("Star(%d): orientation filter shrank %d to %d, want no change", tc.n, c.Size(), cp.Size())
		}
	}
}

func TestGroupSizeCapFallsBackToGeneratorPrefix(t *testing.T) {
	t.Parallel()
	// Star(6) has |S_6| = 720 > DefaultMaxGroupSize; dropping the transposition
	// generator leaves the cyclic leaf-rotation subgroup of order 6.
	c, err := NewOrbitCanonicalizer(Star(6), CanonOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if c.Size() != 6 {
		t.Errorf("Star(6) capped at %d: group order %d, want the rotation subgroup of order 6", DefaultMaxGroupSize, c.Size())
	}
	// An explicit generous cap admits the full group.
	cf, err := NewOrbitCanonicalizer(Star(6), CanonOptions{MaxGroupSize: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if cf.Size() != 720 {
		t.Errorf("Star(6) with cap 1000: group order %d, want 720", cf.Size())
	}
}

func TestStabilizerRestriction(t *testing.T) {
	t.Parallel()
	// The setwise stabilizer of {0} in the dihedral group of Ring(4) contains
	// the identity and the reflection fixing philosopher 0... the declared
	// reflection maps philosopher p to n-1-p, so it fixes no philosopher of
	// Ring(4); the stabilizer of {0} under the enumerated group is whatever
	// elements map 0 to 0. Cross-check against a direct filter.
	topo := Ring(4)
	full, err := NewOrbitCanonicalizer(topo, CanonOptions{})
	if err != nil {
		t.Fatal(err)
	}
	stab, err := NewOrbitCanonicalizer(topo, CanonOptions{Stabilize: []PhilID{0}})
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, a := range enumerateGroup(topo, topo.Automorphisms()) {
		if a.Phil[0] == 0 {
			want++
		}
	}
	if stab.Size() != want {
		t.Errorf("stabilizer of {0}: order %d, want %d (of full %d)", stab.Size(), want, full.Size())
	}
	if stab.Size() >= full.Size() {
		t.Errorf("stabilizer did not shrink the group: %d vs %d", stab.Size(), full.Size())
	}
	// Stabilizing every philosopher is no restriction at all.
	all, err := NewOrbitCanonicalizer(topo, CanonOptions{Stabilize: []PhilID{0, 1, 2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if all.Size() != full.Size() {
		t.Errorf("stabilizer of the full set: order %d, want %d", all.Size(), full.Size())
	}
}

func TestAsymmetricBuildersDeclareNoAutomorphisms(t *testing.T) {
	t.Parallel()
	for _, topo := range []*Topology{
		Theorem1Minimal(), Theorem2Minimal(), RingWithChord(4, 2),
		RingWithPendant(3), Path(3), Grid(2, 2), DoubledPolygon(3), Figure1A(),
	} {
		if gens := topo.Automorphisms(); len(gens) != 0 {
			t.Errorf("%s: %d declared generators, want 0", topo.Name(), len(gens))
		}
		c, err := NewOrbitCanonicalizer(topo, CanonOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if !c.Trivial() || c.Size() != 1 {
			t.Errorf("%s: canonicalizer not trivial (order %d)", topo.Name(), c.Size())
		}
	}
}

func TestAutomorphismValidate(t *testing.T) {
	t.Parallel()
	topo := Ring(3)
	id := identityAutomorphism(topo)
	if err := id.Validate(topo); err != nil {
		t.Fatalf("identity: %v", err)
	}
	if !id.IsIdentity() {
		t.Error("identity not recognized")
	}

	short := Automorphism{Phil: []PhilID{0, 1}, Fork: []ForkID{0, 1, 2}}
	if err := short.Validate(topo); err == nil || !strings.Contains(err.Error(), "philosopher images") {
		t.Errorf("short table: err = %v, want philosopher-images error", err)
	}

	dup := identityAutomorphism(topo)
	dup.Phil[1] = 0
	if err := dup.Validate(topo); err == nil || !strings.Contains(err.Error(), "not a permutation") {
		t.Errorf("duplicated image: err = %v, want permutation error", err)
	}

	// A fork permutation that breaks adjacency: swapping forks 0 and 1 while
	// fixing the philosophers is not an automorphism of the ring.
	bad := identityAutomorphism(topo)
	bad.Fork[0], bad.Fork[1] = 1, 0
	if err := bad.Validate(topo); err == nil || !strings.Contains(err.Error(), "forks map to") {
		t.Errorf("adjacency-breaking: err = %v, want fork-pair error", err)
	}
}

func TestAutomorphismsReturnsDeepCopy(t *testing.T) {
	t.Parallel()
	topo := Ring(3)
	a := topo.Automorphisms()
	a[0].Phil[0] = 2
	b := topo.Automorphisms()
	if b[0].Phil[0] == 2 {
		t.Error("mutating the returned generators leaked into the topology")
	}
}

func TestOrientationPreserving(t *testing.T) {
	t.Parallel()
	topo := Ring(5)
	gens := topo.Automorphisms()
	if !gens[0].OrientationPreserving(topo) {
		t.Error("rotation reported orientation-reversing")
	}
	if gens[1].OrientationPreserving(topo) {
		t.Error("reflection reported orientation-preserving")
	}
}

func TestCanonicalizerPermsIdentityFirst(t *testing.T) {
	t.Parallel()
	c, err := NewOrbitCanonicalizer(Ring(4), CanonOptions{})
	if err != nil {
		t.Fatal(err)
	}
	perms := c.Perms()
	for i, img := range perms[0].PhilImg {
		if img != int32(i) {
			t.Fatalf("perms[0] is not the identity: PhilImg[%d] = %d", i, img)
		}
	}
	for i, img := range perms[0].ForkImg {
		if img != int32(i) {
			t.Fatalf("perms[0] is not the identity: ForkImg[%d] = %d", i, img)
		}
	}
	// Src tables invert Img tables on every element.
	for pi, p := range perms {
		for i, img := range p.PhilImg {
			if p.PhilSrc[img] != int32(i) {
				t.Fatalf("perm %d: PhilSrc does not invert PhilImg at %d", pi, i)
			}
		}
		for i, img := range p.ForkImg {
			if p.ForkSrc[img] != int32(i) {
				t.Fatalf("perm %d: ForkSrc does not invert ForkImg at %d", pi, i)
			}
		}
	}
}

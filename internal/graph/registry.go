package graph

import (
	"repro/internal/registry"
)

// TopologyCtor builds a topology from a size parameter n. Constructors must
// accept any n and substitute a sensible default when n <= 0 (fixed
// topologies such as the Figure 1 reconstructions ignore n entirely).
type TopologyCtor func(n int) *Topology

// The topology registry maps names to constructors. The builders of this
// package self-register in init below; external packages (custom topologies,
// experiments) add their own through RegisterTopology, typically from the
// public facade's RegisterTopology.
var topoReg = registry.New[TopologyCtor]("graph", "topology")

// RegisterTopology registers a named topology constructor. It panics if the
// name is empty, the constructor is nil, or the name is already registered:
// registration happens at init time, where a collision is a programming bug
// that must not be silently resolved by load order.
func RegisterTopology(name string, ctor TopologyCtor) { topoReg.Register(name, ctor) }

// NewTopology builds the named registered topology with size parameter n
// (n <= 0 selects the constructor's default size; fixed topologies ignore n).
func NewTopology(name string, n int) (*Topology, error) {
	ctor, err := topoReg.Lookup(name)
	if err != nil {
		return nil, err
	}
	return ctor(n), nil
}

// TopologyNames returns every registered topology name in sorted order.
func TopologyNames() []string { return topoReg.Names() }

// sized substitutes fallback when the caller passed no size.
func sized(n, fallback int) int {
	if n <= 0 {
		return fallback
	}
	return n
}

func init() {
	RegisterTopology("ring", func(n int) *Topology { return Ring(sized(n, 5)) })
	RegisterTopology("doubled-polygon", func(n int) *Topology { return DoubledPolygon(sized(n, 3)) })
	RegisterTopology("ring-chord", func(n int) *Topology { k := sized(n, 6); return RingWithChord(k, k/2) })
	RegisterTopology("ring-pendant", func(n int) *Topology { return RingWithPendant(sized(n, 5)) })
	RegisterTopology("theta", func(n int) *Topology { return Theta(1, 1, sized(n, 1)) })
	RegisterTopology("star", func(n int) *Topology { return Star(sized(n, 5)) })
	RegisterTopology("path", func(n int) *Topology { return Path(sized(n, 5)) })
	RegisterTopology("grid", func(n int) *Topology { g := sized(n, 3); return Grid(g, g) })
	RegisterTopology("complete", func(n int) *Topology { return CompleteForkGraph(sized(n, 4)) })
	RegisterTopology("theorem1-minimal", func(int) *Topology { return Theorem1Minimal() })
	RegisterTopology("theorem2-minimal", func(int) *Topology { return Theorem2Minimal() })
	RegisterTopology("figure1a", func(int) *Topology { return Figure1A() })
	RegisterTopology("figure1b", func(int) *Topology { return Figure1B() })
	RegisterTopology("figure1c", func(int) *Topology { return Figure1C() })
	RegisterTopology("figure1d", func(int) *Topology { return Figure1D() })
}

package graph

import (
	"sort"
	"strings"
	"testing"
)

func TestTopologyRegistryNamesSortedAndBuildable(t *testing.T) {
	t.Parallel()
	names := TopologyNames()
	if len(names) < 10 {
		t.Fatalf("expected the builder topologies registered, got %v", names)
	}
	if !sort.StringsAreSorted(names) {
		t.Errorf("TopologyNames not sorted: %v", names)
	}
	for _, name := range names {
		if strings.HasPrefix(name, "test-") {
			continue // registered by other tests
		}
		topo, err := NewTopology(name, 0)
		if err != nil {
			t.Errorf("NewTopology(%q, 0): %v", name, err)
			continue
		}
		if err := topo.Validate(); err != nil {
			t.Errorf("default %q topology invalid: %v", name, err)
		}
	}
}

func TestTopologyRegistryUnknownName(t *testing.T) {
	t.Parallel()
	_, err := NewTopology("moebius", 3)
	if err == nil {
		t.Fatal("NewTopology accepted an unknown name")
	}
	msg := err.Error()
	if !strings.Contains(msg, "registered:") || !strings.Contains(msg, "ring") || strings.Contains(msg, "\n") {
		t.Errorf("want a one-line error listing the registered options, got: %v", err)
	}
}

func TestTopologyRegistryDuplicatePanics(t *testing.T) {
	t.Parallel()
	RegisterTopology("test-graph-dup", func(int) *Topology { return Ring(3) })
	defer func() {
		if recover() == nil {
			t.Error("duplicate RegisterTopology did not panic")
		}
	}()
	RegisterTopology("test-graph-dup", func(int) *Topology { return Ring(3) })
}

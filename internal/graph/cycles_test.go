package graph

import "testing"

func TestEnumerateCyclesRing(t *testing.T) {
	t.Parallel()
	for _, n := range []int{3, 4, 7} {
		topo := Ring(n)
		cycles := topo.EnumerateCycles(0)
		if len(cycles) != 1 {
			t.Fatalf("Ring(%d): found %d cycles, want 1", n, len(cycles))
		}
		if cycles[0].Len() != n {
			t.Errorf("Ring(%d): cycle length %d, want %d", n, cycles[0].Len(), n)
		}
	}
}

func TestEnumerateCyclesParallelArcs(t *testing.T) {
	t.Parallel()
	// Two forks, three parallel philosophers: C(3,2) = 3 two-cycles.
	topo := Theta(1, 1, 1)
	cycles := topo.EnumerateCycles(0)
	if len(cycles) != 3 {
		t.Fatalf("Theta(1,1,1): found %d cycles, want 3", len(cycles))
	}
	for _, c := range cycles {
		if c.Len() != 2 {
			t.Errorf("Theta(1,1,1): cycle length %d, want 2", c.Len())
		}
	}
}

func TestEnumerateCyclesDoubledTriangle(t *testing.T) {
	t.Parallel()
	// Figure 1a: 3 fork-pairs each doubled. Cycles: 3 two-cycles (parallel
	// pairs) + triangles choosing one arc per edge: 2^3 = 8... but cycles are
	// counted as arc sets, so 8 triangles + 3 digons = 11? Each triangle picks
	// one of two parallel arcs per edge: 2*2*2 = 8. Total 11.
	topo := Figure1A()
	cycles := topo.EnumerateCycles(0)
	digons, triangles := 0, 0
	for _, c := range cycles {
		switch c.Len() {
		case 2:
			digons++
		case 3:
			triangles++
		default:
			t.Errorf("unexpected cycle length %d", c.Len())
		}
	}
	if digons != 3 || triangles != 8 {
		t.Errorf("Figure1A cycles: %d digons and %d triangles, want 3 and 8 (total %d)", digons, triangles, len(cycles))
	}
}

func TestEnumerateCyclesAcyclic(t *testing.T) {
	t.Parallel()
	if got := Path(5).EnumerateCycles(0); len(got) != 0 {
		t.Errorf("Path(5): found %d cycles, want 0", len(got))
	}
	if got := Star(6).EnumerateCycles(0); len(got) != 0 {
		t.Errorf("Star(6): found %d cycles, want 0", len(got))
	}
}

func TestEnumerateCyclesLimit(t *testing.T) {
	t.Parallel()
	topo := Figure1B()
	cycles := topo.EnumerateCycles(4)
	if len(cycles) != 4 {
		t.Errorf("limit 4: got %d cycles", len(cycles))
	}
	if topo.CountCycles(2) != 2 {
		t.Errorf("CountCycles(2) != 2")
	}
}

func TestCycleForkSequenceConsistency(t *testing.T) {
	t.Parallel()
	for _, topo := range []*Topology{Ring(5), Figure1A(), RingWithChord(4, 2), Theta(2, 1, 2)} {
		for _, c := range topo.EnumerateCycles(0) {
			if len(c.Phils) != len(c.ForkSeq) {
				t.Fatalf("%s: cycle with %d phils but %d forks", topo.Name(), len(c.Phils), len(c.ForkSeq))
			}
			n := len(c.Phils)
			for i, p := range c.Phils {
				a, b := c.ForkSeq[i], c.ForkSeq[(i+1)%n]
				forks := topo.Forks(p)
				ok := (forks[0] == a && forks[1] == b) || (forks[0] == b && forks[1] == a)
				if !ok {
					t.Errorf("%s: cycle arc P%d does not connect forks %d and %d (has %v)", topo.Name(), p, a, b, forks)
				}
			}
			// All forks in a simple cycle are distinct.
			seen := map[ForkID]bool{}
			for _, f := range c.ForkSeq {
				if seen[f] {
					t.Errorf("%s: cycle revisits fork %d", topo.Name(), f)
				}
				seen[f] = true
			}
		}
	}
}

func TestCycleContains(t *testing.T) {
	t.Parallel()
	topo := Ring(4)
	c := topo.EnumerateCycles(0)[0]
	for p := 0; p < 4; p++ {
		if !c.ContainsPhil(PhilID(p)) {
			t.Errorf("ring cycle should contain P%d", p)
		}
	}
	for f := 0; f < 4; f++ {
		if !c.ContainsFork(ForkID(f)) {
			t.Errorf("ring cycle should contain fork %d", f)
		}
	}
	if c.ContainsPhil(99) || c.ContainsFork(99) {
		t.Error("cycle claims to contain nonexistent elements")
	}
}

func TestRingWithHighDegreeNodeDetection(t *testing.T) {
	t.Parallel()
	cyc, fork, ok := RingWithChord(5, 2).RingWithHighDegreeNode()
	if !ok {
		t.Fatal("RingWithChord(5,2): Theorem 1 structure not found")
	}
	if fork != 0 && fork != 2 {
		t.Errorf("high-degree fork = %d, want 0 or 2", fork)
	}
	if cyc.Len() < 2 {
		t.Errorf("witness cycle too short: %d", cyc.Len())
	}

	if _, _, ok := Ring(6).RingWithHighDegreeNode(); ok {
		t.Error("Ring(6) should not contain the Theorem 1 structure")
	}
}

func TestThetaPairDetection(t *testing.T) {
	t.Parallel()
	u, v, ok := Theta(2, 3, 2).ThetaPair()
	if !ok {
		t.Fatal("Theta(2,3,2): theta pair not found")
	}
	if !((u == 0 && v == 1) || (u == 1 && v == 0)) {
		t.Errorf("theta pair = (%d,%d), want the two hubs (0,1)", u, v)
	}
	if _, _, ok := RingWithChord(6, 3).ThetaPair(); !ok {
		// Ring + chord creates two hubs (0 and 3) joined by three paths.
		t.Error("RingWithChord(6,3) should contain a theta pair")
	}
	if _, _, ok := Ring(5).ThetaPair(); ok {
		t.Error("Ring(5) should not contain a theta pair")
	}
	if _, _, ok := Path(4).ThetaPair(); ok {
		t.Error("Path(4) should not contain a theta pair")
	}
}

func TestFigure1TheoremColumns(t *testing.T) {
	t.Parallel()
	// All four Figure 1 examples relax the simple-ring assumption; the first
	// two (doubled polygons) and the reconstructions contain rings whose forks
	// have degree >= 3, so LR1's guarantee is void on all of them.
	for _, topo := range Figure1() {
		if !topo.SatisfiesTheorem1() {
			t.Errorf("%s: expected Theorem 1 structure", topo.Name())
		}
	}
	// The doubled polygons also contain theta pairs (two parallel arcs plus a
	// path around), so LR2's guarantee is void there too.
	if !Figure1A().SatisfiesTheorem2() {
		t.Error("Figure1A: expected Theorem 2 structure")
	}
	if !Figure1B().SatisfiesTheorem2() {
		t.Error("Figure1B: expected Theorem 2 structure")
	}
}

func BenchmarkEnumerateCyclesFigure1B(b *testing.B) {
	topo := Figure1B()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = topo.EnumerateCycles(0)
	}
}

func BenchmarkThetaPairGrid(b *testing.B) {
	topo := Grid(4, 4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, _, _ = topo.ThetaPair()
	}
}

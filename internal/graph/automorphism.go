package graph

import (
	"fmt"
	"sort"
)

// This file implements the symmetry seam used by the model checker's
// orbit-quotient exploration: topologies declare the generators of their
// automorphism group, and an OrbitCanonicalizer enumerates the (possibly
// restricted) group once and precomputes the flat permutation tables the
// simulator needs to encode a world's lexicographically-minimal image
// without allocating.
//
// An automorphism of a generalized dining-philosopher system is a pair of
// permutations (one of the philosophers, one of the forks) that preserves
// the multigraph structure: the unordered fork pair of every philosopher
// maps onto the unordered fork pair of its image. Orientation-preserving
// automorphisms additionally map left forks to left forks; reflections swap
// the sides, which is only sound for programs whose probabilistic choice is
// left/right symmetric (see the SideSymmetric gate in package dining).

// Automorphism is one symmetry of a topology, given as the image tables of
// its two permutations: Phil[p] is the philosopher that p maps to and
// Fork[f] is the fork that f maps to.
type Automorphism struct {
	Phil []PhilID
	Fork []ForkID
}

// identityAutomorphism returns the identity symmetry of t.
func identityAutomorphism(t *Topology) Automorphism {
	a := Automorphism{
		Phil: make([]PhilID, t.NumPhilosophers()),
		Fork: make([]ForkID, t.NumForks()),
	}
	for p := range a.Phil {
		a.Phil[p] = PhilID(p)
	}
	for f := range a.Fork {
		a.Fork[f] = ForkID(f)
	}
	return a
}

// IsIdentity reports whether a is the identity symmetry.
func (a Automorphism) IsIdentity() bool {
	for p, q := range a.Phil {
		if PhilID(p) != q {
			return false
		}
	}
	for f, g := range a.Fork {
		if ForkID(f) != g {
			return false
		}
	}
	return true
}

// clone returns an independent copy of a.
func (a Automorphism) clone() Automorphism {
	return Automorphism{
		Phil: append([]PhilID(nil), a.Phil...),
		Fork: append([]ForkID(nil), a.Fork...),
	}
}

// Validate checks that a is a genuine automorphism of t: both tables are
// permutations of the right size and every philosopher's unordered fork
// pair maps onto the fork pair of its image.
func (a Automorphism) Validate(t *Topology) error {
	if len(a.Phil) != t.NumPhilosophers() {
		return fmt.Errorf("graph: automorphism has %d philosopher images, topology %q has %d philosophers",
			len(a.Phil), t.Name(), t.NumPhilosophers())
	}
	if len(a.Fork) != t.NumForks() {
		return fmt.Errorf("graph: automorphism has %d fork images, topology %q has %d forks",
			len(a.Fork), t.Name(), t.NumForks())
	}
	seenP := make([]bool, len(a.Phil))
	for p, q := range a.Phil {
		if q < 0 || int(q) >= len(a.Phil) || seenP[q] {
			return fmt.Errorf("graph: philosopher images are not a permutation (image of %d is %d)", p, q)
		}
		seenP[q] = true
	}
	seenF := make([]bool, len(a.Fork))
	for f, g := range a.Fork {
		if g < 0 || int(g) >= len(a.Fork) || seenF[g] {
			return fmt.Errorf("graph: fork images are not a permutation (image of %d is %d)", f, g)
		}
		seenF[g] = true
	}
	for p := 0; p < t.NumPhilosophers(); p++ {
		srcL, srcR := a.Fork[t.Left(PhilID(p))], a.Fork[t.Right(PhilID(p))]
		q := a.Phil[p]
		dstL, dstR := t.Left(q), t.Right(q)
		if !(srcL == dstL && srcR == dstR) && !(srcL == dstR && srcR == dstL) {
			return fmt.Errorf("graph: philosopher %d's forks map to {%d,%d} but its image %d uses {%d,%d}",
				p, srcL, srcR, q, dstL, dstR)
		}
	}
	return nil
}

// OrientationPreserving reports whether a maps every philosopher's left
// fork to its image's left fork (and hence right to right). Reflections of
// a ring are the canonical orientation-reversing example.
func (a Automorphism) OrientationPreserving(t *Topology) bool {
	for p := 0; p < t.NumPhilosophers(); p++ {
		if a.Fork[t.Left(PhilID(p))] != t.Left(a.Phil[p]) {
			return false
		}
	}
	return true
}

// compose returns the automorphism "first b, then a" (image tables
// a.Phil[b.Phil[p]], a.Fork[b.Fork[f]]).
func compose(a, b Automorphism) Automorphism {
	c := Automorphism{
		Phil: make([]PhilID, len(a.Phil)),
		Fork: make([]ForkID, len(a.Fork)),
	}
	for p := range c.Phil {
		c.Phil[p] = a.Phil[b.Phil[p]]
	}
	for f := range c.Fork {
		c.Fork[f] = a.Fork[b.Fork[f]]
	}
	return c
}

// permKey returns a canonical dedup key for a's image tables.
func (a Automorphism) permKey() string {
	buf := make([]byte, 0, 4*(len(a.Phil)+len(a.Fork)))
	for _, q := range a.Phil {
		buf = append(buf, byte(q), byte(q>>8), byte(q>>16), byte(q>>24))
	}
	for _, g := range a.Fork {
		buf = append(buf, byte(g), byte(g>>8), byte(g>>16), byte(g>>24))
	}
	return string(buf)
}

// Automorphisms returns the declared generator set of the topology's
// automorphism group (not the full group): rotations plus a reflection for
// rings, leaf permutations for stars, and the empty set for topologies that
// declare no symmetry (whose only known automorphism is then the identity).
// The returned slice is a deep copy.
func (t *Topology) Automorphisms() []Automorphism {
	out := make([]Automorphism, len(t.aut))
	for i, a := range t.aut {
		out[i] = a.clone()
	}
	return out
}

// declareAutomorphisms attaches validated generators to a freshly built
// topology. It is called by the symmetric constructors only; an invalid
// generator is a programming bug, so it panics like MustBuild.
func declareAutomorphisms(t *Topology, gens ...Automorphism) *Topology {
	for i, a := range gens {
		if err := a.Validate(t); err != nil {
			panic(fmt.Sprintf("graph: invalid automorphism generator %d of %q: %v", i, t.Name(), err))
		}
	}
	t.aut = gens
	return t
}

// DefaultMaxGroupSize bounds the enumerated automorphism group. Generators
// whose closure exceeds the bound are dropped from the tail of the
// generator list until the closure fits (any subgroup yields a sound — just
// coarser — quotient); a star's full leaf-permutation group S_n collapses
// to the cyclic rotation subgroup of order n this way once n! is too big.
const DefaultMaxGroupSize = 512

// CanonOptions restricts the group an OrbitCanonicalizer quotients by.
type CanonOptions struct {
	// OrientationPreserving keeps only automorphisms mapping left forks to
	// left forks. Required for programs that break the left/right coin
	// symmetry (a biased LR coin, GDP's tie-break toward the right fork).
	OrientationPreserving bool
	// Stabilize keeps only automorphisms mapping the given philosopher set
	// onto itself, so per-set labellings (a protected set) stay
	// orbit-invariant.
	Stabilize []PhilID
	// MaxGroupSize caps the enumerated group size; 0 means
	// DefaultMaxGroupSize.
	MaxGroupSize int
}

// AutPerm is one enumerated group element in the flat table form the
// simulator's key encoder consumes: for a destination index the Src tables
// give the source index whose state lands there, and the Img tables map
// state-internal references (a selected fork, a fork's holder) forward.
// SlotSrc does the same for the flat per-(fork, adjacent philosopher)
// adjacency slots (see Topology.SlotBase).
type AutPerm struct {
	PhilImg []int32
	ForkImg []int32
	PhilSrc []int32
	ForkSrc []int32
	SlotSrc []int32
}

// OrbitCanonicalizer holds one topology's enumerated (restricted)
// automorphism group, ready for lex-min canonical key encoding. It is
// immutable after construction and safe for concurrent use.
type OrbitCanonicalizer struct {
	topo  *Topology
	perms []AutPerm // identity first, then the rest in lexicographic order
}

// NewOrbitCanonicalizer enumerates the topology's automorphism group from
// its declared generators, applies the restrictions in opts, and returns
// the canonicalizer. The result is never nil: with no declared generators
// (or after restriction) the group is just the identity and Trivial()
// reports true.
func NewOrbitCanonicalizer(t *Topology, opts CanonOptions) (*OrbitCanonicalizer, error) {
	gens := t.Automorphisms()
	for i, a := range gens {
		if err := a.Validate(t); err != nil {
			return nil, fmt.Errorf("graph: generator %d of %q: %w", i, t.Name(), err)
		}
	}
	max := opts.MaxGroupSize
	if max <= 0 {
		max = DefaultMaxGroupSize
	}
	var group []Automorphism
	for k := len(gens); ; k-- {
		g, ok := closeGenerators(t, gens[:k], max)
		if ok {
			group = g
			break
		}
	}
	group = restrict(t, group, opts)
	sort.Slice(group, func(i, j int) bool { return lessAutomorphism(group[i], group[j]) })
	c := &OrbitCanonicalizer{topo: t, perms: make([]AutPerm, len(group))}
	for i, a := range group {
		c.perms[i] = buildPerm(t, a)
	}
	return c, nil
}

// closeGenerators returns the closure of gens under composition (always
// containing the identity), or ok=false once the closure exceeds max.
func closeGenerators(t *Topology, gens []Automorphism, max int) ([]Automorphism, bool) {
	id := identityAutomorphism(t)
	seen := map[string]bool{id.permKey(): true}
	group := []Automorphism{id}
	queue := []Automorphism{id}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, g := range gens {
			next := compose(g, cur)
			key := next.permKey()
			if seen[key] {
				continue
			}
			if len(group) >= max {
				return nil, false
			}
			seen[key] = true
			group = append(group, next)
			queue = append(queue, next)
		}
	}
	return group, true
}

// restrict filters the group to the subgroup satisfying opts. Both filters
// keep subgroups (orientation-preserving elements and setwise stabilizers
// are closed under composition and inverse), so the result is still a
// group.
func restrict(t *Topology, group []Automorphism, opts CanonOptions) []Automorphism {
	inSet := make([]bool, t.NumPhilosophers())
	stabilizing := false
	for _, p := range opts.Stabilize {
		if int(p) >= 0 && int(p) < len(inSet) {
			inSet[p] = true
			stabilizing = true
		}
	}
	out := group[:0]
	for _, a := range group {
		if opts.OrientationPreserving && !a.OrientationPreserving(t) {
			continue
		}
		if stabilizing && !stabilizes(a, inSet) {
			continue
		}
		out = append(out, a)
	}
	return out
}

// stabilizes reports whether a maps the philosopher set onto itself.
func stabilizes(a Automorphism, inSet []bool) bool {
	for p, in := range inSet {
		if in && !inSet[a.Phil[p]] {
			return false
		}
	}
	return true
}

// lessAutomorphism orders automorphisms lexicographically by (Phil, Fork);
// the identity sorts first.
func lessAutomorphism(a, b Automorphism) bool {
	for p := range a.Phil {
		if a.Phil[p] != b.Phil[p] {
			return a.Phil[p] < b.Phil[p]
		}
	}
	for f := range a.Fork {
		if a.Fork[f] != b.Fork[f] {
			return a.Fork[f] < b.Fork[f]
		}
	}
	return false
}

// buildPerm expands an automorphism into the flat tables of AutPerm.
func buildPerm(t *Topology, a Automorphism) AutPerm {
	n, k := t.NumPhilosophers(), t.NumForks()
	p := AutPerm{
		PhilImg: make([]int32, n),
		ForkImg: make([]int32, k),
		PhilSrc: make([]int32, n),
		ForkSrc: make([]int32, k),
		SlotSrc: make([]int32, t.TotalSlots()),
	}
	for i := 0; i < n; i++ {
		p.PhilImg[i] = int32(a.Phil[i])
		p.PhilSrc[a.Phil[i]] = int32(i)
	}
	for f := 0; f < k; f++ {
		p.ForkImg[f] = int32(a.Fork[f])
		p.ForkSrc[a.Fork[f]] = int32(f)
	}
	for g := 0; g < k; g++ {
		srcF := ForkID(p.ForkSrc[g])
		base := t.SlotBase(ForkID(g))
		for i, q := range t.PhilosophersAt(ForkID(g)) {
			srcP := PhilID(p.PhilSrc[q])
			p.SlotSrc[base+i] = int32(t.SlotBase(srcF) + t.Slot(srcF, srcP))
		}
	}
	return p
}

// Topology returns the topology the canonicalizer was built for.
func (c *OrbitCanonicalizer) Topology() *Topology { return c.topo }

// Size returns the number of enumerated group elements (including the
// identity).
func (c *OrbitCanonicalizer) Size() int { return len(c.perms) }

// Trivial reports whether the group is just the identity, in which case
// canonical keys equal plain keys.
func (c *OrbitCanonicalizer) Trivial() bool { return len(c.perms) <= 1 }

// Perms returns the enumerated group in flat table form, identity first.
// The returned slice and its tables must not be modified.
func (c *OrbitCanonicalizer) Perms() []AutPerm { return c.perms }

// ringAutomorphisms returns the dihedral generators of Ring(n): the
// rotation by one seat and the reflection through fork 0.
func ringAutomorphisms(n int) []Automorphism {
	rot := Automorphism{Phil: make([]PhilID, n), Fork: make([]ForkID, n)}
	refl := Automorphism{Phil: make([]PhilID, n), Fork: make([]ForkID, n)}
	for i := 0; i < n; i++ {
		rot.Phil[i] = PhilID((i + 1) % n)
		rot.Fork[i] = ForkID((i + 1) % n)
		refl.Phil[i] = PhilID(n - 1 - i)
		refl.Fork[i] = ForkID((n - i) % n)
	}
	return []Automorphism{rot, refl}
}

// starAutomorphisms returns generators of Star(n)'s leaf-permutation group
// S_n: the leaf n-cycle and, for n >= 3, the swap of the first two leaves
// (the closure cap collapses large stars to the rotation subgroup).
func starAutomorphisms(n int) []Automorphism {
	if n < 2 {
		return nil
	}
	rot := Automorphism{Phil: make([]PhilID, n), Fork: make([]ForkID, n+1)}
	rot.Fork[0] = 0
	for i := 0; i < n; i++ {
		rot.Phil[i] = PhilID((i + 1) % n)
		rot.Fork[i+1] = ForkID((i+1)%n + 1)
	}
	gens := []Automorphism{rot}
	if n >= 3 {
		swap := Automorphism{Phil: make([]PhilID, n), Fork: make([]ForkID, n+1)}
		for i := range swap.Phil {
			swap.Phil[i] = PhilID(i)
		}
		for f := range swap.Fork {
			swap.Fork[f] = ForkID(f)
		}
		swap.Phil[0], swap.Phil[1] = 1, 0
		swap.Fork[1], swap.Fork[2] = 2, 1
		gens = append(gens, swap)
	}
	return gens
}

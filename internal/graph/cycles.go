package graph

import "sort"

// Cycle is a cycle of the topology, described by the sequence of philosophers
// (arcs) traversed. The corresponding fork sequence is Forks(). A cycle of
// length 2 uses two distinct philosophers between the same pair of forks
// (parallel arcs), which the paper explicitly allows.
type Cycle struct {
	// Phils lists the philosophers of the cycle in traversal order.
	Phils []PhilID
	// ForkSeq lists the forks in traversal order; ForkSeq[i] and
	// ForkSeq[(i+1) % len] are the forks of Phils[i].
	ForkSeq []ForkID
}

// Len returns the number of arcs in the cycle.
func (c Cycle) Len() int { return len(c.Phils) }

// ContainsPhil reports whether the cycle uses philosopher p.
func (c Cycle) ContainsPhil(p PhilID) bool {
	for _, q := range c.Phils {
		if q == p {
			return true
		}
	}
	return false
}

// ContainsFork reports whether the cycle passes through fork f.
func (c Cycle) ContainsFork(f ForkID) bool {
	for _, g := range c.ForkSeq {
		if g == f {
			return true
		}
	}
	return false
}

// canonicalKey returns a rotation/direction-invariant key for deduplicating
// cycles: the sorted philosopher-ID list. Two distinct cycles can never use
// exactly the same arc set (in a cycle every arc appears once), so the arc set
// identifies the cycle.
func (c Cycle) canonicalKey() string {
	ids := make([]int, len(c.Phils))
	for i, p := range c.Phils {
		ids[i] = int(p)
	}
	sort.Ints(ids)
	key := make([]byte, 0, 4*len(ids))
	for _, id := range ids {
		key = append(key, byte(id>>24), byte(id>>16), byte(id>>8), byte(id))
	}
	return string(key)
}

// HasCycle reports whether the topology contains at least one cycle
// (equivalently, whether the number of arcs exceeds forks − components, or a
// pair of parallel arcs exists).
func (t *Topology) HasCycle() bool {
	// Union-find on forks; an arc joining two forks already in the same
	// component closes a cycle.
	parent := make([]int, t.numForks)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, fks := range t.phils {
		a, b := find(int(fks[Left])), find(int(fks[Right]))
		if a == b {
			return true
		}
		parent[a] = b
	}
	return false
}

// EnumerateCycles returns every simple cycle of the topology (no repeated fork
// and no repeated philosopher within a cycle), up to rotation and direction.
// limit bounds the number of cycles returned (0 means no limit); the search is
// exponential in the worst case, so callers analysing large random graphs
// should pass a limit.
func (t *Topology) EnumerateCycles(limit int) []Cycle {
	var out []Cycle
	seen := make(map[string]bool)

	emit := func(pathPhils []PhilID, closing PhilID, start ForkID) bool {
		phils := make([]PhilID, 0, len(pathPhils)+1)
		phils = append(phils, pathPhils...)
		phils = append(phils, closing)
		forks := make([]ForkID, len(phils))
		forks[0] = start
		for i := 0; i < len(pathPhils); i++ {
			forks[i+1] = t.OtherFork(pathPhils[i], forks[i])
		}
		cyc := Cycle{Phils: phils, ForkSeq: forks}
		key := cyc.canonicalKey()
		if !seen[key] {
			seen[key] = true
			out = append(out, cyc)
		}
		return limit > 0 && len(out) >= limit
	}

	// For every philosopher p (as the "smallest arc" of the cycle), search for
	// a path from Left(p) to Right(p) that does not reuse p, any philosopher
	// with smaller ID, or any fork twice; closing the path with p itself forms
	// the cycle.
	for p := 0; p < len(t.phils); p++ {
		start := t.phils[p][Left]
		goal := t.phils[p][Right]

		usedPhil := make([]bool, len(t.phils))
		usedFork := make([]bool, t.numForks)
		usedPhil[p] = true
		usedFork[start] = true

		var pathPhils []PhilID

		var dfs func(cur ForkID) bool
		dfs = func(cur ForkID) bool {
			if cur == goal {
				return emit(pathPhils, PhilID(p), start)
			}
			usedFork[cur] = true
			defer func() { usedFork[cur] = false }()
			for _, q := range t.at[cur] {
				if usedPhil[q] || int(q) < p {
					continue
				}
				next := t.OtherFork(q, cur)
				if next != goal && usedFork[next] {
					continue
				}
				usedPhil[q] = true
				pathPhils = append(pathPhils, q)
				stop := dfs(next)
				pathPhils = pathPhils[:len(pathPhils)-1]
				usedPhil[q] = false
				if stop {
					return true
				}
			}
			return false
		}
		// Walk each arc leaving `start` (other than p) as the first step.
		stopped := false
		for _, q := range t.at[start] {
			if q == PhilID(p) || int(q) < p {
				continue
			}
			next := t.OtherFork(q, start)
			usedPhil[q] = true
			pathPhils = append(pathPhils, q)
			stopped = dfs(next)
			pathPhils = pathPhils[:len(pathPhils)-1]
			usedPhil[q] = false
			if stopped {
				break
			}
		}
		if stopped {
			break
		}
	}
	return out
}

// CountCycles returns the number of simple cycles, bounded by limit (0 = no
// limit).
func (t *Topology) CountCycles(limit int) int {
	return len(t.EnumerateCycles(limit))
}

// RingWithHighDegreeNode searches for the structure required by Theorem 1: a
// simple cycle H together with a fork on H of degree at least three (an arc
// incident on the cycle besides the two cycle arcs). It returns the cycle, the
// high-degree fork and true when found.
func (t *Topology) RingWithHighDegreeNode() (Cycle, ForkID, bool) {
	for _, cyc := range t.EnumerateCycles(0) {
		for _, f := range cyc.ForkSeq {
			if t.Degree(f) >= 3 {
				return cyc, f, true
			}
		}
	}
	return Cycle{}, NoFork, false
}

// ThetaPair searches for the structure required by Theorem 2: two forks joined
// by at least three internally fork-disjoint paths (equivalently, a cycle H
// plus an additional path between two of its forks). It returns the two forks
// and true when found.
func (t *Topology) ThetaPair() (ForkID, ForkID, bool) {
	// Two forks u, v are a theta pair iff there exist 3 internally
	// fork-disjoint, arc-disjoint u-v paths. We check every pair with a simple
	// augmenting-path search on the arc graph (max-flow with unit arc
	// capacities and unit internal-fork capacities).
	for u := 0; u < t.numForks; u++ {
		for v := u + 1; v < t.numForks; v++ {
			if t.disjointPaths(ForkID(u), ForkID(v), 3) >= 3 {
				return ForkID(u), ForkID(v), true
			}
		}
	}
	return NoFork, NoFork, false
}

// disjointPaths returns the number of pairwise internally-fork-disjoint and
// arc-disjoint u→v paths found, stopping once `want` have been found.
func (t *Topology) disjointPaths(u, v ForkID, want int) int {
	usedPhil := make([]bool, len(t.phils))
	usedFork := make([]bool, t.numForks)
	count := 0
	for count < want {
		// DFS for one more path avoiding used philosophers and used internal forks.
		var path []PhilID
		visited := make([]bool, t.numForks)
		var dfs func(cur ForkID) bool
		dfs = func(cur ForkID) bool {
			if cur == v {
				return true
			}
			visited[cur] = true
			for _, q := range t.at[cur] {
				if usedPhil[q] {
					continue
				}
				next := t.OtherFork(q, cur)
				if next != v && (visited[next] || usedFork[next]) {
					continue
				}
				path = append(path, q)
				usedPhil[q] = true
				if dfs(next) {
					return true
				}
				usedPhil[q] = false
				path = path[:len(path)-1]
			}
			return false
		}
		if !dfs(u) {
			break
		}
		// Mark internal forks of the found path as used.
		cur := u
		for _, q := range path {
			next := t.OtherFork(q, cur)
			if next != v {
				usedFork[next] = true
			}
			cur = next
		}
		count++
	}
	return count
}

// SatisfiesTheorem1 reports whether the topology contains the Theorem 1
// structure (a cycle with a fork of degree >= 3), i.e. whether a fair
// adversary defeating LR1 is guaranteed to exist by the paper.
func (t *Topology) SatisfiesTheorem1() bool {
	_, _, ok := t.RingWithHighDegreeNode()
	return ok
}

// SatisfiesTheorem2 reports whether the topology contains the Theorem 2
// structure (two forks joined by three internally disjoint paths), i.e.
// whether a fair adversary defeating LR2 is guaranteed to exist by the paper.
func (t *Topology) SatisfiesTheorem2() bool {
	_, _, ok := t.ThetaPair()
	return ok
}

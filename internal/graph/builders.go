package graph

import (
	"fmt"

	"repro/internal/prng"
)

// Ring returns the classic dining-philosopher topology: n philosophers and n
// forks arranged alternately around a table. Philosopher i's left fork is i
// and right fork is (i+1) mod n. n must be at least 2 (n = 2 is the smallest
// ring, with two philosophers sharing both forks via parallel arcs).
func Ring(n int) *Topology {
	if n < 2 {
		panic(fmt.Sprintf("graph: Ring needs n >= 2, got %d", n))
	}
	b := NewBuilder(fmt.Sprintf("ring-%d", n), n)
	for i := 0; i < n; i++ {
		b.AddPhilosopher(ForkID(i), ForkID((i+1)%n))
	}
	return declareAutomorphisms(b.MustBuild(), ringAutomorphisms(n)...)
}

// Classic is an alias for Ring, named after the classic problem statement.
func Classic(n int) *Topology { return Ring(n) }

// DoubledPolygon returns a topology with k forks arranged in a cycle and two
// parallel philosophers on every cycle edge, i.e. 2k philosophers sharing k
// forks. DoubledPolygon(3) is the leftmost example of Figure 1 in the paper
// (6 philosophers, 3 forks).
func DoubledPolygon(k int) *Topology {
	if k < 2 {
		panic(fmt.Sprintf("graph: DoubledPolygon needs k >= 2, got %d", k))
	}
	b := NewBuilder(fmt.Sprintf("doubled-polygon-%d", k), k)
	for i := 0; i < k; i++ {
		b.AddPhilosopher(ForkID(i), ForkID((i+1)%k))
	}
	for i := 0; i < k; i++ {
		b.AddPhilosopher(ForkID(i), ForkID((i+1)%k))
	}
	return b.MustBuild()
}

// RingWithChord returns a ring of k forks (and k philosophers) plus one
// additional philosopher ("the chord") between fork 0 and fork chordTo. This
// is the minimal family covered by Theorem 1: the ring H has a fork (fork 0)
// with three incident arcs. chordTo must be a valid fork distinct from 0; pass
// k/2 for a diameter chord.
func RingWithChord(k int, chordTo int) *Topology {
	if k < 3 {
		panic(fmt.Sprintf("graph: RingWithChord needs k >= 3, got %d", k))
	}
	if chordTo <= 0 || chordTo >= k {
		panic(fmt.Sprintf("graph: RingWithChord chordTo %d out of range (0,%d)", chordTo, k))
	}
	b := NewBuilder(fmt.Sprintf("ring-%d-chord-%d", k, chordTo), k)
	for i := 0; i < k; i++ {
		b.AddPhilosopher(ForkID(i), ForkID((i+1)%k))
	}
	b.AddPhilosopher(ForkID(0), ForkID(chordTo))
	return b.MustBuild()
}

// Theorem1Minimal returns the smallest Theorem 1 topology used by the model
// checker: a triangle ring (3 forks, 3 philosophers) plus a fourth philosopher
// sharing forks 0 and 1 — a ring in which fork 0 has three incident arcs.
func Theorem1Minimal() *Topology {
	b := NewBuilder("theorem1-minimal", 3)
	b.AddPhilosopher(0, 1)
	b.AddPhilosopher(1, 2)
	b.AddPhilosopher(2, 0)
	b.AddPhilosopher(0, 1)
	return b.MustBuild()
}

// RingWithPendant returns a ring of k forks and k philosophers plus one extra
// philosopher between fork 0 and a new private fork k. Fork 0 then has three
// incident arcs (the Theorem 1 structure), but — unlike RingWithChord — the
// graph contains only the single ring cycle, so the Theorem 2 structure is
// absent: this is the family separating LR1 (defeated) from LR2 (not
// defeated by the paper's construction).
func RingWithPendant(k int) *Topology {
	if k < 3 {
		panic(fmt.Sprintf("graph: RingWithPendant needs k >= 3, got %d", k))
	}
	b := NewBuilder(fmt.Sprintf("ring-%d-pendant", k), k+1)
	for i := 0; i < k; i++ {
		b.AddPhilosopher(ForkID(i), ForkID((i+1)%k))
	}
	b.AddPhilosopher(0, ForkID(k))
	return b.MustBuild()
}

// Theta returns the "theta graph" used for Theorem 2: two hub forks joined by
// three internally disjoint paths whose lengths (numbers of arcs) are given.
// Each length must be at least 1; Theta(1, 1, 1) is the minimal instance with
// 2 forks shared by 3 philosophers.
func Theta(lengths ...int) *Topology {
	if len(lengths) < 3 {
		panic("graph: Theta needs at least 3 path lengths")
	}
	totalInternal := 0
	for _, l := range lengths {
		if l < 1 {
			panic(fmt.Sprintf("graph: Theta path length %d < 1", l))
		}
		totalInternal += l - 1
	}
	numForks := 2 + totalInternal
	b := NewBuilder(fmt.Sprintf("theta-%v", lengths), numForks)
	const hubA, hubB = ForkID(0), ForkID(1)
	next := 2
	for _, l := range lengths {
		prev := hubA
		for i := 0; i < l-1; i++ {
			mid := ForkID(next)
			next++
			b.AddPhilosopher(prev, mid)
			prev = mid
		}
		b.AddPhilosopher(prev, hubB)
	}
	return b.MustBuild()
}

// Theorem2Minimal returns the smallest Theorem 2 topology: two forks joined by
// three parallel philosophers (Theta(1,1,1)).
func Theorem2Minimal() *Topology { return Theta(1, 1, 1) }

// Star returns a topology with one hub fork shared by n philosophers, each of
// which also has a private leaf fork. It has n philosophers and n+1 forks, no
// cycles, and maximum fork degree n.
func Star(n int) *Topology {
	if n < 1 {
		panic(fmt.Sprintf("graph: Star needs n >= 1, got %d", n))
	}
	b := NewBuilder(fmt.Sprintf("star-%d", n), n+1)
	hub := ForkID(0)
	for i := 0; i < n; i++ {
		b.AddPhilosopher(hub, ForkID(i+1))
	}
	return declareAutomorphisms(b.MustBuild(), starAutomorphisms(n)...)
}

// Path returns an open chain of n philosophers over n+1 forks: philosopher i
// uses forks i and i+1. It is acyclic, so even LR1 makes progress on it.
func Path(n int) *Topology {
	if n < 1 {
		panic(fmt.Sprintf("graph: Path needs n >= 1, got %d", n))
	}
	b := NewBuilder(fmt.Sprintf("path-%d", n), n+1)
	for i := 0; i < n; i++ {
		b.AddPhilosopher(ForkID(i), ForkID(i+1))
	}
	return b.MustBuild()
}

// CompleteForkGraph returns a topology with k forks and one philosopher for
// every unordered pair of forks — the densest simple system, k(k−1)/2
// philosophers.
func CompleteForkGraph(k int) *Topology {
	if k < 2 {
		panic(fmt.Sprintf("graph: CompleteForkGraph needs k >= 2, got %d", k))
	}
	b := NewBuilder(fmt.Sprintf("complete-%d", k), k)
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			b.AddPhilosopher(ForkID(i), ForkID(j))
		}
	}
	return b.MustBuild()
}

// Grid returns a topology whose forks form an r×c grid and whose philosophers
// are the grid edges (horizontal and vertical neighbours). It is a planar
// graph with many overlapping cycles, used in scalability benchmarks.
func Grid(rows, cols int) *Topology {
	if rows < 1 || cols < 1 || rows*cols < 2 {
		panic(fmt.Sprintf("graph: Grid needs at least 1x2 forks, got %dx%d", rows, cols))
	}
	b := NewBuilder(fmt.Sprintf("grid-%dx%d", rows, cols), rows*cols)
	id := func(r, c int) ForkID { return ForkID(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				b.AddPhilosopher(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				b.AddPhilosopher(id(r, c), id(r+1, c))
			}
		}
	}
	return b.MustBuild()
}

// RandomMultigraph returns a connected random multigraph with numForks forks
// and numPhils philosophers, generated deterministically from seed. The first
// numForks−1 philosophers form a random spanning tree (guaranteeing
// connectivity when numPhils >= numForks−1); the rest join uniformly random
// distinct fork pairs, possibly in parallel with existing philosophers.
func RandomMultigraph(numPhils, numForks int, seed uint64) *Topology {
	if numForks < 2 {
		panic(fmt.Sprintf("graph: RandomMultigraph needs at least 2 forks, got %d", numForks))
	}
	if numPhils < 1 {
		panic(fmt.Sprintf("graph: RandomMultigraph needs at least 1 philosopher, got %d", numPhils))
	}
	rng := prng.New(seed)
	b := NewBuilder(fmt.Sprintf("random-p%d-f%d-s%d", numPhils, numForks, seed), numForks)
	added := 0
	// Random spanning tree via random attachment order.
	order := rng.Perm(numForks)
	for i := 1; i < numForks && added < numPhils; i++ {
		parent := order[rng.Intn(i)]
		b.AddPhilosopher(ForkID(order[i]), ForkID(parent))
		added++
	}
	for ; added < numPhils; added++ {
		u := rng.Intn(numForks)
		v := rng.Intn(numForks - 1)
		if v >= u {
			v++
		}
		b.AddPhilosopher(ForkID(u), ForkID(v))
	}
	return b.MustBuild()
}

// Figure1A returns the leftmost example of Figure 1: 6 philosophers sharing 3
// forks — a triangle of forks with two parallel philosophers per edge.
func Figure1A() *Topology {
	t := DoubledPolygon(3)
	return rename(t, "figure1a-6phil-3fork")
}

// Figure1B returns the second example of Figure 1: 12 philosophers sharing 6
// forks — a hexagon of forks with two parallel philosophers per edge.
func Figure1B() *Topology {
	t := DoubledPolygon(6)
	return rename(t, "figure1b-12phil-6fork")
}

// Figure1C returns a reconstruction of the third example of Figure 1:
// 16 philosophers sharing 12 forks. The published figure is a drawing without
// a formal definition; this reconstruction keeps the stated philosopher and
// fork counts and the structural features relied on in the text (a ring
// containing forks of degree >= 3): a 12-fork ring with 12 philosophers plus 4
// chords at alternating positions.
func Figure1C() *Topology {
	b := NewBuilder("figure1c-16phil-12fork", 12)
	for i := 0; i < 12; i++ {
		b.AddPhilosopher(ForkID(i), ForkID((i+1)%12))
	}
	// Four chords between opposite-ish forks.
	b.AddPhilosopher(0, 6)
	b.AddPhilosopher(3, 9)
	b.AddPhilosopher(1, 7)
	b.AddPhilosopher(4, 10)
	return b.MustBuild()
}

// Figure1D returns a reconstruction of the rightmost example of Figure 1:
// 10 philosophers sharing 9 forks. As with Figure1C the exact drawing is not
// formally specified; the reconstruction is a 9-fork ring of 9 philosophers
// plus one extra philosopher sharing forks 0 and 3, giving one fork of degree
// three (the Theorem 1 structure).
func Figure1D() *Topology {
	b := NewBuilder("figure1d-10phil-9fork", 9)
	for i := 0; i < 9; i++ {
		b.AddPhilosopher(ForkID(i), ForkID((i+1)%9))
	}
	b.AddPhilosopher(0, 3)
	return b.MustBuild()
}

// Figure1 returns all four Figure 1 topologies in paper order.
func Figure1() []*Topology {
	return []*Topology{Figure1A(), Figure1B(), Figure1C(), Figure1D()}
}

// rename returns a copy of t with a different name (topologies are otherwise
// immutable).
func rename(t *Topology, name string) *Topology {
	clone := *t
	clone.name = name
	return &clone
}

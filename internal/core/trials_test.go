package core

import (
	"errors"
	"testing"

	"repro/internal/graph"
	"repro/internal/sim"
)

func TestParallelTrialsOrderAndCoverage(t *testing.T) {
	t.Parallel()
	got, err := ParallelTrials(8, 100, func(i int) (int, error) { return i * i, nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 100 {
		t.Fatalf("got %d results, want 100", len(got))
	}
	for i, v := range got {
		if v != i*i {
			t.Fatalf("result %d = %d, want %d (results must land at their trial index)", i, v, i*i)
		}
	}
}

func TestParallelTrialsEdgeCases(t *testing.T) {
	t.Parallel()
	if got, err := ParallelTrials(4, 0, func(int) (int, error) { return 0, nil }); err != nil || got != nil {
		t.Errorf("zero trials: got %v, %v", got, err)
	}
	// More workers than trials must still cover every index exactly once.
	got, err := ParallelTrials(64, 3, func(i int) (int, error) { return i, nil })
	if err != nil || len(got) != 3 || got[0] != 0 || got[1] != 1 || got[2] != 2 {
		t.Errorf("workers > trials: got %v, %v", got, err)
	}
}

func TestParallelTrialsPropagatesError(t *testing.T) {
	t.Parallel()
	boom := errors.New("boom")
	_, err := ParallelTrials(8, 50, func(i int) (int, error) {
		if i%7 == 3 {
			return 0, boom
		}
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("error not propagated: %v", err)
	}
}

// TestParallelTrialsMatchSequential is the determinism guarantee of the
// parallel trial engine: for a fixed seed, every Monte-Carlo experiment table
// must be identical whether the trials run sequentially (Workers: 1) or
// fanned out over many goroutines — same rows, same floating-point
// aggregates, same rendered markdown. Trial seeds depend only on the trial
// index and aggregation happens in index order, so scheduling must be
// unobservable.
func TestParallelTrialsMatchSequential(t *testing.T) {
	t.Parallel()
	// The Monte-Carlo experiments of the suite (E-RT is wall-clock bound and
	// E-F1/E-T1/E-T2's model-check rows are deterministic anyway but slow).
	for _, id := range []string{"E-S3", "E-T3", "E-B1", "E-B2"} {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			seq, err := RunByID(id, ExperimentConfig{Quick: true, Seed: 99, Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			par, err := RunByID(id, ExperimentConfig{Quick: true, Seed: 99, Workers: 8})
			if err != nil {
				t.Fatal(err)
			}
			if seq.Markdown() != par.Markdown() {
				t.Errorf("parallel table differs from sequential:\n--- sequential ---\n%s\n--- parallel ---\n%s",
					seq.Markdown(), par.Markdown())
			}
		})
	}
}

func TestRepeatParallelMatchesSequentialResults(t *testing.T) {
	t.Parallel()
	sys := System{Topology: graph.Ring(5), Algorithm: "GDP2", Scheduler: "random", Seed: 7}
	results, err := sys.Repeat(12, sim.RunOptions{MaxSteps: 5_000})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 12 {
		t.Fatalf("got %d results, want 12", len(results))
	}
	// Re-running any single trial sequentially must reproduce the result at
	// its index exactly.
	for _, i := range []int{0, 5, 11} {
		trial := sys
		trial.Seed = sys.Seed + uint64(i)*0x9e3779b97f4a7c15
		res, err := trial.Simulate(sim.RunOptions{MaxSteps: 5_000})
		if err != nil {
			t.Fatal(err)
		}
		if res.TotalEats != results[i].TotalEats || res.Steps != results[i].Steps {
			t.Errorf("trial %d: parallel result (eats %d, steps %d) != sequential (eats %d, steps %d)",
				i, results[i].TotalEats, results[i].Steps, res.TotalEats, res.Steps)
		}
	}
}

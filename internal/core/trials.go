package core

import (
	"runtime"

	"repro/internal/par"
)

// This file exposes the parallel Monte-Carlo trial engine to the experiment
// layer. Every experiment in the suite is a loop of independent trials whose
// seeds are derived from the trial index alone, so trials can run on any
// worker in any order without changing a single result: the engine fans the
// indices out across GOMAXPROCS goroutines, stores each trial's result at
// its own index, and lets the caller aggregate in index order. The produced
// experiment tables are therefore bit-identical to a sequential run —
// including floating-point accumulations, which see the results in the same
// order — and deterministic given the base seed
// (TestParallelTrialsMatchSequential locks this in).

// DefaultTrialWorkers returns the worker count used when a configuration
// leaves Workers at zero: one per available CPU.
func DefaultTrialWorkers() int { return runtime.GOMAXPROCS(0) }

// ParallelTrials runs trials independent trial functions across min(workers,
// trials) goroutines and returns their results in trial-index order; see
// par.Trials for the full contract (workers <= 0 means one per CPU, errors
// report the lowest failing index).
func ParallelTrials[T any](workers, trials int, run func(trial int) (T, error)) ([]T, error) {
	return par.Trials(workers, trials, run)
}

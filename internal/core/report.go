package core

import (
	"fmt"
	"strings"
)

// Table is one reproduced artifact: a titled table of results plus free-form
// notes, rendered to Markdown for EXPERIMENTS.md, to plain text for the CLI,
// or to JSON (the field names below are a stable output format).
type Table struct {
	// ID is the experiment identifier from DESIGN.md (for example "E-T3").
	ID string `json:"id"`
	// Title is a one-line description.
	Title string `json:"title"`
	// Reproduces names the paper artifact being reproduced.
	Reproduces string `json:"reproduces,omitempty"`
	// Header holds the column names.
	Header []string `json:"header"`
	// Rows holds the table body.
	Rows [][]string `json:"rows"`
	// Notes carries additional observations (bounds, deviations, caveats).
	Notes []string `json:"notes,omitempty"`
}

// AddRow appends a row built from the stringified cells.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		case float32:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// AddNote appends a formatted note.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Markdown renders the table as a Markdown section.
func (t *Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "## %s — %s\n\n", t.ID, t.Title)
	if t.Reproduces != "" {
		fmt.Fprintf(&b, "*Reproduces:* %s\n\n", t.Reproduces)
	}
	if len(t.Header) > 0 {
		b.WriteString("| " + strings.Join(t.Header, " | ") + " |\n")
		sep := make([]string, len(t.Header))
		for i := range sep {
			sep[i] = "---"
		}
		b.WriteString("| " + strings.Join(sep, " | ") + " |\n")
		for _, row := range t.Rows {
			b.WriteString("| " + strings.Join(row, " | ") + " |\n")
		}
		b.WriteString("\n")
	}
	for _, note := range t.Notes {
		fmt.Fprintf(&b, "- %s\n", note)
	}
	if len(t.Notes) > 0 {
		b.WriteString("\n")
	}
	return b.String()
}

// Text renders the table as aligned plain text for terminal output.
func (t *Table) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s — %s ===\n", t.ID, t.Title)
	if t.Reproduces != "" {
		fmt.Fprintf(&b, "reproduces: %s\n", t.Reproduces)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i < len(widths) {
				fmt.Fprintf(&b, "%-*s  ", widths[i], cell)
			} else {
				b.WriteString(cell + "  ")
			}
		}
		b.WriteString("\n")
	}
	if len(t.Header) > 0 {
		writeRow(t.Header)
	}
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, note := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", note)
	}
	return b.String()
}

// RenderMarkdown concatenates a set of tables into a full EXPERIMENTS.md
// document body.
func RenderMarkdown(intro string, tables []*Table) string {
	var b strings.Builder
	b.WriteString(intro)
	if !strings.HasSuffix(intro, "\n") {
		b.WriteString("\n")
	}
	b.WriteString("\n")
	for _, t := range tables {
		b.WriteString(t.Markdown())
	}
	return b.String()
}

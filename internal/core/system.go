// Package core assembles the substrates of this repository — topologies
// (graph), the probabilistic step engine (sim), the algorithms (algo), the
// schedulers and adversaries (sched), the concurrent runtime (runtime), the
// model checker (modelcheck) and the verification harnesses (verify) — into
// the system a user configures and runs, and defines the experiment suite
// that regenerates every reproduced artifact of the paper (EXPERIMENTS.md).
package core

import (
	"context"
	"fmt"
	"time"

	"repro/internal/algo"
	"repro/internal/fault"
	"repro/internal/graph"
	"repro/internal/modelcheck"
	"repro/internal/prng"
	"repro/internal/runtime"
	"repro/internal/sched"
	"repro/internal/sim"
)

// DefaultScheduler is the scheduler used when System.Scheduler is empty.
const DefaultScheduler = "random"

// System is one configured generalized dining-philosopher system: a topology,
// an algorithm, a scheduler and a seed. The zero value is not usable;
// populate the fields and call the methods.
type System struct {
	// Topology is the fork/philosopher multigraph (required).
	Topology *graph.Topology
	// Algorithm is the algorithm name as registered in package algo
	// (required), for example "GDP1".
	Algorithm string
	// AlgoOptions tunes the algorithm (optional).
	AlgoOptions algo.Options
	// Scheduler is the scheduler name as registered in package sched
	// (default DefaultScheduler).
	Scheduler string
	// Protected restricts the adversary's target set (nil = all).
	Protected []graph.PhilID
	// FairnessWindow is the bounded-fair adversary's window (0 = default).
	FairnessWindow int64
	// Faults injects the given fault model into the transition system
	// (nil = no faults). The simulator and the model checker both run the
	// wrapped program, so they see the same perturbed MDP. The concurrent
	// runtime injects the crash-family models (crash-rejoin, freeze) as
	// goroutine park/resume decisions; RunConcurrent rejects message-level
	// models (lossy-grants, delayed-grants), which have no goroutine
	// equivalent.
	Faults fault.Model
	// Symmetry quotients ModelCheck explorations by the topology's declared
	// automorphism group (orbit-canonical state keys). Verdicts are
	// identical to the unreduced exploration; state counts are per-orbit.
	// The soundness gates of the dining engine apply: asymmetric programs
	// and topologies, and fault targeting, silently fall back to the
	// unreduced exploration. Simulate and RunConcurrent ignore the field —
	// a quotient is a property of exhaustive exploration only.
	Symmetry bool
	// Seed makes runs reproducible.
	Seed uint64
}

// NewScheduler constructs the scheduler named by the system configuration
// from the sched registry, using rng for any randomized scheduler.
func (s *System) NewScheduler(rng *prng.Source) (sim.Scheduler, error) {
	kind := s.Scheduler
	if kind == "" {
		kind = DefaultScheduler
	}
	return sched.New(kind, sched.Config{
		RNG:            rng,
		Protected:      s.Protected,
		FairnessWindow: s.FairnessWindow,
	})
}

// program constructs the algorithm program, wrapped by the fault model when
// one is configured.
func (s *System) program() (sim.Program, error) {
	if s.Algorithm == "" {
		return nil, fmt.Errorf("core: System.Algorithm is required (available: %v)", algo.Names())
	}
	prog, err := algo.New(s.Algorithm, s.AlgoOptions)
	if err != nil || s.Faults == nil {
		return prog, err
	}
	if err := s.Faults.Validate(s.Topology); err != nil {
		return nil, err
	}
	return s.Faults.Wrap(s.Topology, prog), nil
}

// Simulate runs the system on the step engine.
func (s *System) Simulate(opts sim.RunOptions) (*sim.Result, error) {
	if s.Topology == nil {
		return nil, fmt.Errorf("core: System.Topology is required")
	}
	prog, err := s.program()
	if err != nil {
		return nil, err
	}
	rng := prng.New(s.Seed)
	scheduler, err := s.NewScheduler(rng.Split())
	if err != nil {
		return nil, err
	}
	return sim.Run(s.Topology, prog, scheduler, rng, opts)
}

// Repeat runs the system `trials` times with derived seeds and returns every
// result in trial order. It is the Monte-Carlo building block of the
// experiments. Trials run on one goroutine per CPU (each trial's seed depends
// only on its index, so the results are identical to a sequential run);
// configurations with a Recorder run sequentially, since a recorder observes
// a single event stream.
func (s *System) Repeat(trials int, opts sim.RunOptions) ([]*sim.Result, error) {
	if trials <= 0 {
		trials = 1
	}
	workers := 0
	if opts.Recorder != nil {
		workers = 1
	}
	results, err := ParallelTrials(workers, trials, func(i int) (*sim.Result, error) {
		trial := *s
		trial.Seed = s.Seed + uint64(i)*0x9e3779b97f4a7c15
		res, err := trial.Simulate(opts)
		if err != nil {
			return nil, fmt.Errorf("core: trial %d: %w", i, err)
		}
		return res, nil
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}

// ModelCheck exhaustively explores the system's state space (small instances
// only) and returns the analysis report. The scheduler configuration is
// irrelevant here: the model checker quantifies over all schedulers.
func (s *System) ModelCheck(maxStates int) (*modelcheck.Report, error) {
	if s.Topology == nil {
		return nil, fmt.Errorf("core: System.Topology is required")
	}
	prog, err := s.program()
	if err != nil {
		return nil, err
	}
	opts := modelcheck.Options{
		MaxStates: maxStates,
		Protected: s.Protected,
	}
	if s.Symmetry {
		canon, err := symmetryCanonicalizer(s.Topology, prog, s.Protected)
		if err != nil {
			return nil, err
		}
		opts.Symmetry = canon
	}
	return modelcheck.Check(s.Topology, prog, opts)
}

// symmetryCanonicalizer builds the orbit canonicalizer for a symmetry-enabled
// exploration, applying the same soundness gates as the dining engine: no
// quotient for programs that break the symmetry condition, only
// orientation-preserving automorphisms unless the program is invariant under
// the left/right swap, and the setwise stabilizer of the protected set. The
// result may be trivial, which the model checker treats as symmetry off.
func symmetryCanonicalizer(topo *graph.Topology, prog sim.Program, protected []graph.PhilID) (*graph.OrbitCanonicalizer, error) {
	if !prog.Symmetric() {
		return nil, nil
	}
	copts := graph.CanonOptions{
		OrientationPreserving: true,
		Stabilize:             protected,
	}
	if sp, ok := prog.(sim.SideSymmetricProgram); ok && sp.SideSymmetric() {
		copts.OrientationPreserving = false
	}
	return graph.NewOrbitCanonicalizer(topo, copts)
}

// RunConcurrent executes the system on the goroutine runtime for the given
// duration (or until every philosopher has eaten targetMeals times).
func (s *System) RunConcurrent(ctx context.Context, duration time.Duration, targetMeals int64) (*runtime.Metrics, error) {
	if s.Topology == nil {
		return nil, fmt.Errorf("core: System.Topology is required")
	}
	var faults string
	if s.Faults != nil {
		if !runtime.SupportsFault(s.Faults.Name()) {
			return nil, fmt.Errorf("core: the concurrent runtime injects only crash-family fault models (crash-rejoin, freeze), not %s", s.Faults.Spec())
		}
		faults = s.Faults.Spec()
	}
	var alg runtime.Algorithm
	switch s.Algorithm {
	case "LR1":
		alg = runtime.LR1
	case "LR2":
		alg = runtime.LR2
	case "GDP1":
		alg = runtime.GDP1
	case "GDP2":
		alg = runtime.GDP2
	case "ordered-forks":
		alg = runtime.Ordered
	default:
		return nil, fmt.Errorf("core: algorithm %q has no concurrent runtime implementation", s.Algorithm)
	}
	return runtime.Run(ctx, runtime.Config{
		Topology:                  s.Topology,
		Algorithm:                 alg,
		M:                         s.AlgoOptions.M,
		TargetMealsPerPhilosopher: targetMeals,
		MaxDuration:               duration,
		Seed:                      s.Seed,
		Faults:                    faults,
	})
}

// BuildTopology resolves a topology by name with a size parameter (ignored by
// the fixed Figure 1 topologies).
//
// Deprecated: it is a shim over the graph registry, kept so that old callers
// keep compiling; new code should use graph.NewTopology (or the public
// facade's registry) directly.
func BuildTopology(name string, n int) (*graph.Topology, error) {
	return graph.NewTopology(name, n)
}

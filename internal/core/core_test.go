package core

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/graph"
	"repro/internal/sched"
	"repro/internal/sim"
)

func TestSystemSimulate(t *testing.T) {
	t.Parallel()
	sys := System{
		Topology:  graph.Figure1A(),
		Algorithm: "GDP1",
		Scheduler: "random",
		Seed:      1,
	}
	res, err := sys.Simulate(sim.RunOptions{MaxSteps: 20_000})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Progress() {
		t.Error("GDP1 made no progress on Figure1A")
	}
}

func TestSystemValidation(t *testing.T) {
	t.Parallel()
	if _, err := (&System{Algorithm: "GDP1"}).Simulate(sim.RunOptions{}); err == nil {
		t.Error("Simulate accepted a missing topology")
	}
	if _, err := (&System{Topology: graph.Ring(3)}).Simulate(sim.RunOptions{}); err == nil {
		t.Error("Simulate accepted a missing algorithm")
	}
	if _, err := (&System{Topology: graph.Ring(3), Algorithm: "nope"}).Simulate(sim.RunOptions{}); err == nil {
		t.Error("Simulate accepted an unknown algorithm")
	}
	bad := System{Topology: graph.Ring(3), Algorithm: "GDP1", Scheduler: "warp"}
	if _, err := bad.Simulate(sim.RunOptions{}); err == nil {
		t.Error("Simulate accepted an unknown scheduler kind")
	}
}

func TestSystemRepeatIsDeterministicPerSeed(t *testing.T) {
	t.Parallel()
	sys := System{Topology: graph.Ring(5), Algorithm: "LR1", Scheduler: "random", Seed: 9}
	a, err := sys.Repeat(3, sim.RunOptions{MaxSteps: 5_000})
	if err != nil {
		t.Fatal(err)
	}
	b, err := sys.Repeat(3, sim.RunOptions{MaxSteps: 5_000})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].TotalEats != b[i].TotalEats {
			t.Errorf("trial %d differs across identical Repeat calls", i)
		}
	}
	if a[0].TotalEats == 0 {
		t.Error("no meals in trial 0")
	}
}

func TestSystemSchedulers(t *testing.T) {
	t.Parallel()
	for _, kind := range sched.Names() {
		sys := System{Topology: graph.Ring(4), Algorithm: "GDP2", Scheduler: kind, Seed: 2}
		if _, err := sys.Simulate(sim.RunOptions{MaxSteps: 3_000}); err != nil {
			t.Errorf("scheduler %s failed: %v", kind, err)
		}
	}
}

func TestSystemModelCheck(t *testing.T) {
	t.Parallel()
	sys := System{Topology: graph.Theorem2Minimal(), Algorithm: "LR2"}
	rep, err := sys.ModelCheck(0)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.FairAdversaryWins() {
		t.Error("expected the Theorem 2 trap for LR2 on the theta graph")
	}
}

func TestSystemRunConcurrent(t *testing.T) {
	t.Parallel()
	sys := System{Topology: graph.Ring(5), Algorithm: "GDP2", Seed: 3}
	metrics, err := sys.RunConcurrent(context.Background(), 5*time.Second, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(metrics.Starved) != 0 {
		t.Errorf("starved philosophers: %v", metrics.Starved)
	}
	if _, err := (&System{Topology: graph.Ring(3), Algorithm: "colored"}).RunConcurrent(context.Background(), time.Second, 1); err == nil {
		t.Error("RunConcurrent accepted an algorithm without a concurrent implementation")
	}
}

func TestSystemRunConcurrentFaults(t *testing.T) {
	t.Parallel()
	crash, err := fault.NewFromSpec("crash-rejoin:0.2,0.5")
	if err != nil {
		t.Fatal(err)
	}
	sys := System{Topology: graph.Ring(5), Algorithm: "LR1", Seed: 7, Faults: crash}
	metrics, err := sys.RunConcurrent(context.Background(), 5*time.Second, 2)
	if err != nil {
		t.Fatal(err)
	}
	if metrics.Crashes == nil || metrics.Rejoins == nil {
		t.Fatal("faulted run reported no crash counters")
	}
	if len(metrics.Starved) != 0 {
		t.Errorf("starved philosophers under crash-rejoin: %v", metrics.Starved)
	}

	lossy, err := fault.NewFromSpec("delayed-grants:0.1,2")
	if err != nil {
		t.Fatal(err)
	}
	sys.Faults = lossy
	if _, err := sys.RunConcurrent(context.Background(), time.Second, 1); err == nil {
		t.Error("RunConcurrent accepted a message-level fault model")
	} else if !strings.Contains(err.Error(), "crash-family") {
		t.Errorf("rejection error = %q, want the crash-family wording", err)
	}
}

func TestBuildTopology(t *testing.T) {
	t.Parallel()
	topo, err := BuildTopology("figure1a", 0)
	if err != nil {
		t.Fatal(err)
	}
	if topo.NumPhilosophers() != 6 {
		t.Errorf("figure1a has %d philosophers", topo.NumPhilosophers())
	}
	ring, err := BuildTopology("ring", 7)
	if err != nil {
		t.Fatal(err)
	}
	if ring.NumPhilosophers() != 7 {
		t.Errorf("ring(7) has %d philosophers", ring.NumPhilosophers())
	}
	if _, err := BuildTopology("moebius", 3); err == nil {
		t.Error("BuildTopology accepted an unknown name")
	}
}

func TestTableRendering(t *testing.T) {
	t.Parallel()
	table := &Table{
		ID:         "E-X",
		Title:      "demo",
		Reproduces: "nothing",
		Header:     []string{"a", "b"},
	}
	table.AddRow("x", 1)
	table.AddRow(2.5, "y")
	table.AddNote("note %d", 7)
	md := table.Markdown()
	for _, want := range []string{"## E-X", "| a | b |", "| x | 1 |", "note 7"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q:\n%s", want, md)
		}
	}
	txt := table.Text()
	if !strings.Contains(txt, "E-X") || !strings.Contains(txt, "2.500") {
		t.Errorf("text rendering wrong:\n%s", txt)
	}
	doc := RenderMarkdown("# intro", []*Table{table})
	if !strings.Contains(doc, "# intro") || !strings.Contains(doc, "## E-X") {
		t.Error("RenderMarkdown malformed")
	}
}

func TestExperimentRegistry(t *testing.T) {
	t.Parallel()
	exps := Experiments()
	if len(exps) < 8 {
		t.Fatalf("expected at least 8 experiments, got %d", len(exps))
	}
	seen := map[string]bool{}
	for _, e := range exps {
		if e.ID == "" || e.Title == "" || e.Run == nil {
			t.Errorf("experiment %+v incomplete", e)
		}
		if seen[e.ID] {
			t.Errorf("duplicate experiment id %s", e.ID)
		}
		seen[e.ID] = true
	}
	if _, err := RunByID("E-NOPE", ExperimentConfig{Quick: true}); err == nil {
		t.Error("RunByID accepted an unknown id")
	}
}

func TestRunFigure1Experiment(t *testing.T) {
	t.Parallel()
	table, err := RunByID("E-F1", ExperimentConfig{Quick: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 4 {
		t.Errorf("E-F1 should have 4 rows, got %d", len(table.Rows))
	}
}

func TestRunSection3ExperimentQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment harness skipped in -short mode")
	}
	t.Parallel()
	table, err := RunByID("E-S3", ExperimentConfig{Quick: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 4 {
		t.Fatalf("E-S3 should report 4 algorithms, got %d rows", len(table.Rows))
	}
	// Row order: LR1, LR2, GDP1, GDP2. The GDP rows must report zero
	// no-progress runs (Theorem 3/4), LR1 a positive number (Section 3).
	if !strings.HasPrefix(table.Rows[2][1], "0/") || !strings.HasPrefix(table.Rows[3][1], "0/") {
		t.Errorf("GDP1/GDP2 should never be starved: %v", table.Rows)
	}
	if strings.HasPrefix(table.Rows[0][1], "0/") {
		t.Errorf("LR1 should be starved in at least one quick trial: %v", table.Rows[0])
	}
}

func TestRunNumberRangeSweepQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment harness skipped in -short mode")
	}
	t.Parallel()
	table, err := RunByID("E-B2", ExperimentConfig{Quick: true, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 4 {
		t.Errorf("E-B2 should sweep 4 values of m, got %d rows", len(table.Rows))
	}
	for _, row := range table.Rows {
		if !strings.HasSuffix(row[3], "/10") || !strings.HasPrefix(row[3], "10/") {
			t.Errorf("GDP1 should progress in every trial of the m sweep: %v", row)
		}
	}
}

package core

import (
	"context"
	"fmt"
	"time"

	"repro/internal/algo"
	"repro/internal/fault"
	"repro/internal/graph"
	"repro/internal/prng"
	"repro/internal/runtime"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/verify"
)

// ExperimentConfig controls how much work each experiment does.
type ExperimentConfig struct {
	// Quick reduces trial counts and skips the largest model-checking
	// instances so the whole suite finishes in roughly a minute; the full
	// configuration is what EXPERIMENTS.md reports.
	Quick bool
	// Seed is the base seed for all Monte-Carlo experiments.
	Seed uint64
	// Workers bounds the number of goroutines used for Monte-Carlo trials.
	// Zero means one per CPU; 1 forces sequential execution. Every table is
	// bit-identical whatever the value (see ParallelTrials).
	Workers int
	// Faults is an optional fault-model spec in the internal/fault grammar
	// (for example "crash-rejoin:0.05,0.5"); when non-empty every sequential
	// experiment runs on the perturbed transition system, so the tables show
	// how far the paper's guarantees survive crashes and delayed or lost
	// grants. E-RT runs under the crash-family models (the goroutine runtime
	// injects them as park/resume decisions) and is skipped for the
	// message-level ones.
	Faults string
	// Symmetry quotients the model-checking experiments by each topology's
	// automorphism group (System.Symmetry). Verdict tables are identical;
	// the reported state counts become per-orbit counts.
	Symmetry bool
}

func (c ExperimentConfig) trials(full, quick int) int {
	if c.Quick {
		return quick
	}
	return full
}

// faultModel resolves the Faults spec once per experiment (nil when empty);
// per-topology target validation happens inside System when it assembles the
// program.
func (c ExperimentConfig) faultModel() (fault.Model, error) {
	if c.Faults == "" {
		return nil, nil
	}
	return fault.NewFromSpec(c.Faults)
}

// Experiment is one entry of the reproduction suite.
type Experiment struct {
	// ID is the identifier used in DESIGN.md and EXPERIMENTS.md.
	ID string
	// Title is a one-line description.
	Title string
	// Reproduces names the paper artifact.
	Reproduces string
	// Run executes the experiment.
	Run func(cfg ExperimentConfig) (*Table, error)
}

// Experiments returns the full reproduction suite in report order.
func Experiments() []Experiment {
	return []Experiment{
		{ID: "E-F1", Title: "Figure 1 topology inventory", Reproduces: "Figure 1", Run: runFigure1},
		{ID: "E-S3", Title: "Fair adversary versus LR1 on the 6-philosopher / 3-fork system", Reproduces: "Section 3 example (States 1-6)", Run: runSection3},
		{ID: "E-T1", Title: "Theorem 1: rings with a shared fork defeat LR1", Reproduces: "Theorem 1 / Figure 2", Run: runTheorem1},
		{ID: "E-T2", Title: "Theorem 2: rings with an extra path defeat LR2", Reproduces: "Theorem 2 / Figure 3", Run: runTheorem2},
		{ID: "E-T3", Title: "Theorem 3: GDP1 guarantees progress", Reproduces: "Theorem 3 (and its probability bound)", Run: runTheorem3},
		{ID: "E-T4", Title: "Theorem 4: GDP2 lockout-freedom", Reproduces: "Theorem 4", Run: runTheorem4},
		{ID: "E-B1", Title: "Efficiency of the four algorithms on classic rings", Reproduces: "Section 6 (efficiency, future work)", Run: runEfficiency},
		{ID: "E-B2", Title: "Effect of the number range m on GDP1", Reproduces: "Theorem 3 bound m!/(m^k (m-k)!)", Run: runNumberRangeSweep},
		{ID: "E-RT", Title: "Concurrent goroutine runtime throughput", Reproduces: "implementation substrate (Section 1 motivation)", Run: runRuntimeThroughput},
	}
}

// RunAll executes every experiment and returns the tables in order.
func RunAll(cfg ExperimentConfig) ([]*Table, error) {
	var out []*Table
	for _, exp := range Experiments() {
		table, err := exp.Run(cfg)
		if err != nil {
			return nil, fmt.Errorf("core: experiment %s: %w", exp.ID, err)
		}
		table.ID = exp.ID
		table.Title = exp.Title
		table.Reproduces = exp.Reproduces
		out = append(out, table)
	}
	return out, nil
}

// RunByID executes a single experiment.
func RunByID(id string, cfg ExperimentConfig) (*Table, error) {
	for _, exp := range Experiments() {
		if exp.ID == id {
			table, err := exp.Run(cfg)
			if err != nil {
				return nil, err
			}
			table.ID = exp.ID
			table.Title = exp.Title
			table.Reproduces = exp.Reproduces
			return table, nil
		}
	}
	return nil, fmt.Errorf("core: unknown experiment %q", id)
}

// --- E-F1 ---

func runFigure1(ExperimentConfig) (*Table, error) {
	t := &Table{Header: []string{"topology", "philosophers", "forks", "max fork degree", "simple cycles", "Theorem 1 structure", "Theorem 2 structure"}}
	for _, topo := range graph.Figure1() {
		t.AddRow(topo.Name(), topo.NumPhilosophers(), topo.NumForks(), topo.MaxDegree(),
			topo.CountCycles(0), topo.SatisfiesTheorem1(), topo.SatisfiesTheorem2())
	}
	t.AddNote("Figure 1c and 1d are reconstructions that keep the published philosopher/fork counts and the structural features used in the text (see graph.Figure1C/Figure1D).")
	t.AddNote("every Figure 1 topology voids the Lehmann-Rabin guarantee (Theorem 1 structure present).")
	return t, nil
}

// adversaryStarvationRate measures how often the bounded-fair greedy
// adversary prevents every protected philosopher from eating. Trials fan out
// over workers goroutines (see ParallelTrials); each trial's seed is derived
// from its index, so the proportion is identical for every worker count.
func adversaryStarvationRate(topo *graph.Topology, algorithm string, opts algo.Options, faults fault.Model, protected []graph.PhilID, trials, workers int, steps int64, seed uint64) (stats.Proportion, error) {
	var prop stats.Proportion
	starvedByTrial, err := ParallelTrials(workers, trials, func(i int) (bool, error) {
		sys := System{
			Topology:    topo,
			Algorithm:   algorithm,
			AlgoOptions: opts,
			Scheduler:   "adversary",
			Protected:   protected,
			Seed:        seed + uint64(i)*7919,
			Faults:      faults,
		}
		res, err := sys.Simulate(sim.RunOptions{MaxSteps: steps})
		if err != nil {
			return false, err
		}
		if len(protected) == 0 {
			return res.TotalEats == 0, nil
		}
		for _, p := range protected {
			if res.EatsBy[p] > 0 {
				return false, nil
			}
		}
		return true, nil
	})
	if err != nil {
		return prop, err
	}
	for _, starved := range starvedByTrial {
		prop.Add(starved)
	}
	return prop, nil
}

// --- E-S3 ---

func runSection3(cfg ExperimentConfig) (*Table, error) {
	trials := cfg.trials(200, 25)
	steps := int64(30_000)
	topo := graph.Figure1A()
	flt, err := cfg.faultModel()
	if err != nil {
		return nil, err
	}
	t := &Table{Header: []string{"algorithm", "no-progress runs", "rate (Wilson 95%)", "paper bound"}}
	bound := verify.Section3Bound(0.5)
	for _, name := range []string{"LR1", "LR2", "GDP1", "GDP2"} {
		prop, err := adversaryStarvationRate(topo, name, algo.Options{}, flt, nil, trials, cfg.Workers, steps, cfg.Seed+11)
		if err != nil {
			return nil, err
		}
		paperBound := "progress w.p. 1 (Theorems 3/4)"
		if name == "LR1" || name == "LR2" {
			paperBound = fmt.Sprintf(">= %.4f (Section 3)", bound)
		}
		t.AddRow(name, fmt.Sprintf("%d/%d", prop.Successes(), prop.Trials()), prop.String(), paperBound)
	}
	t.AddNote("adversary: greedy livelock advisor wrapped in a fixed fairness window of %d steps; every philosopher acts at least once per window, so every produced computation is fair.", 512)
	t.AddNote("the paper proves the no-progress probability is at least 1/4·Π(1−p^k) ≥ 1/16 for its explicit scheduler; the adaptive adversary does much better, while GDP1/GDP2 always progress, matching Theorems 3 and 4.")
	t.AddNote("runs of %d atomic steps; a run counts as no-progress when no philosopher completed a meal.", steps)
	return t, nil
}

// --- E-T1 ---

func runTheorem1(cfg ExperimentConfig) (*Table, error) {
	t := &Table{Header: []string{"instance", "algorithm", "protected", "method", "fair adversary wins?", "detail"}}
	flt, err := cfg.faultModel()
	if err != nil {
		return nil, err
	}

	type mcCase struct {
		topo      *graph.Topology
		algorithm string
		protected []graph.PhilID
		skipQuick bool
	}
	ring3 := []graph.PhilID{0, 1, 2}
	cases := []mcCase{
		{graph.Theorem1Minimal(), "LR1", ring3, false},
		{graph.RingWithPendant(3), "LR1", ring3, false},
		{graph.Ring(3), "LR1", nil, false},
		{graph.RingWithPendant(3), "LR2", ring3, true}, // ~0.5M states
		{graph.Theorem1Minimal(), "GDP1", nil, false},
	}
	for _, c := range cases {
		if cfg.Quick && c.skipQuick {
			continue
		}
		sys := System{Topology: c.topo, Algorithm: c.algorithm, Protected: c.protected, Faults: flt}
		rep, err := sys.ModelCheck(0)
		if err != nil {
			return nil, err
		}
		detail := fmt.Sprintf("%d states, safe region %d, trap %d", rep.States, rep.Trap.SafeRegionStates, rep.Trap.States)
		t.AddRow(c.topo.Name(), c.algorithm, protectedLabel(c.protected), "exhaustive model check", rep.FairAdversaryWins(), detail)
	}

	// Empirical rate of the heuristic adversary on a larger Theorem 1 instance.
	trials := cfg.trials(100, 15)
	ringIDs := make([]graph.PhilID, 9)
	for i := range ringIDs {
		ringIDs[i] = graph.PhilID(i)
	}
	prop, err := adversaryStarvationRate(graph.Figure1D(), "LR1", algo.Options{}, flt, ringIDs, trials, cfg.Workers, 30_000, cfg.Seed+23)
	if err != nil {
		return nil, err
	}
	t.AddRow(graph.Figure1D().Name(), "LR1", "ring only", "heuristic adversary simulation", prop.Successes() > 0, prop.String())

	t.AddNote("the model checker computes the exact answer to \"does a fair scheduler have a strategy that forever prevents every protected philosopher from eating (with positive probability)?\" — a starvation trap is an end component of the no-protected-meal sub-MDP covering every philosopher.")
	t.AddNote("LR1 admits a trap exactly on the topologies Theorem 1 describes, and not on the classic ring (Lehmann & Rabin's original guarantee); GDP1 admits none even there.")
	t.AddNote("the heuristic greedy adversary used for larger instances implements the rotating pattern of Figure 2 only partially; its empirical success rate is a lower bound on the adversary's power.")
	return t, nil
}

// --- E-T2 ---

func runTheorem2(cfg ExperimentConfig) (*Table, error) {
	t := &Table{Header: []string{"instance", "algorithm", "method", "fair adversary wins?", "detail"}}
	flt, err := cfg.faultModel()
	if err != nil {
		return nil, err
	}
	for _, name := range []string{"LR1", "LR2", "GDP1", "GDP2"} {
		sys := System{Topology: graph.Theorem2Minimal(), Algorithm: name, Faults: flt}
		rep, err := sys.ModelCheck(0)
		if err != nil {
			return nil, err
		}
		detail := fmt.Sprintf("%d states, trap %d", rep.States, rep.Trap.States)
		t.AddRow(graph.Theorem2Minimal().Name(), name, "exhaustive model check", rep.FairAdversaryWins(), detail)
	}
	trials := cfg.trials(200, 25)
	prop, err := adversaryStarvationRate(graph.Theorem2Minimal(), "LR2", algo.Options{}, flt, nil, trials, cfg.Workers, 30_000, cfg.Seed+31)
	if err != nil {
		return nil, err
	}
	t.AddRow(graph.Theorem2Minimal().Name(), "LR2", "heuristic adversary simulation", prop.Successes() > 0, prop.String())
	t.AddNote("the minimal Theorem 2 instance is the theta graph: two forks shared by three philosophers (a ring plus a third path).")
	t.AddNote("LR2's guest books never help: no protected philosopher ever eats inside the trap, so they remain empty forever — exactly the observation in the proof of Theorem 2.")
	return t, nil
}

// --- E-T3 ---

func runTheorem3(cfg ExperimentConfig) (*Table, error) {
	t := &Table{Header: []string{"topology", "scheduler", "trials with progress", "mean steps to first meal"}}
	trials := cfg.trials(100, 15)
	flt, err := cfg.faultModel()
	if err != nil {
		return nil, err
	}
	topos := []*graph.Topology{graph.Figure1A(), graph.Figure1B(), graph.Figure1C(), graph.Figure1D(), graph.Ring(7), graph.RandomMultigraph(18, 7, 4242)}
	for _, topo := range topos {
		for _, kind := range []string{"random", "round-robin", "adversary"} {
			type trialResult struct {
				progressed bool
				firstEat   float64
			}
			perTrial, err := ParallelTrials(cfg.Workers, trials, func(i int) (trialResult, error) {
				sys := System{Topology: topo, Algorithm: "GDP1", Scheduler: kind, Seed: cfg.Seed + uint64(i)*131, Faults: flt}
				res, err := sys.Simulate(sim.RunOptions{MaxSteps: 60_000, StopAfterTotalEats: 1})
				if err != nil {
					return trialResult{}, err
				}
				return trialResult{progressed: res.Progress(), firstEat: float64(res.FirstEatStep)}, nil
			})
			if err != nil {
				return nil, err
			}
			var progressed int
			var firstMeal stats.Running
			for _, tr := range perTrial {
				if tr.progressed {
					progressed++
					firstMeal.Add(tr.firstEat)
				}
			}
			t.AddRow(topo.Name(), kind, fmt.Sprintf("%d/%d", progressed, trials), fmt.Sprintf("%.1f", firstMeal.Mean()))
		}
	}
	t.AddNote("Theorem 3 asserts progress with probability 1 under every fair scheduler; every trial of every configuration above made progress, including under the adversary that defeats LR1.")
	return t, nil
}

// --- E-T4 ---

func runTheorem4(cfg ExperimentConfig) (*Table, error) {
	t := &Table{Header: []string{"instance", "variant", "method", "individual starvation possible?", "detail"}}
	flt, err := cfg.faultModel()
	if err != nil {
		return nil, err
	}

	// Exhaustive check on the minimal generalized instance.
	theta := graph.Theorem2Minimal()
	for _, variant := range []struct {
		label string
		opts  algo.Options
	}{
		{"GDP2 as printed (courtesy on first fork)", algo.Options{}},
		{"GDP2 with courtesy on both forks", algo.Options{CourtesyOnBothForks: true}},
	} {
		sys := System{Topology: theta, Algorithm: "GDP2", AlgoOptions: variant.opts, Protected: []graph.PhilID{0}, Faults: flt, Symmetry: cfg.Symmetry}
		rep, err := sys.ModelCheck(0)
		if err != nil {
			return nil, err
		}
		t.AddRow(theta.Name(), variant.label, "exhaustive model check", rep.FairAdversaryWins(), fmt.Sprintf("%d states", rep.States))
	}
	if !cfg.Quick {
		for _, variant := range []struct {
			label string
			opts  algo.Options
		}{
			{"GDP2 as printed (courtesy on first fork)", algo.Options{}},
			{"GDP2 with courtesy on both forks", algo.Options{CourtesyOnBothForks: true}},
			{"GDP1 (no courtesy)", algo.Options{}},
		} {
			name := "GDP2"
			if variant.label == "GDP1 (no courtesy)" {
				name = "GDP1"
			}
			sys := System{Topology: graph.Ring(3), Algorithm: name, AlgoOptions: variant.opts, Protected: []graph.PhilID{0}, Faults: flt, Symmetry: cfg.Symmetry}
			rep, err := sys.ModelCheck(0)
			if err != nil {
				return nil, err
			}
			t.AddRow("ring-3", variant.label, "exhaustive model check", rep.FairAdversaryWins(), fmt.Sprintf("%d states", rep.States))
		}
	}

	// Monte-Carlo lockout check under fair (non-adversarial) schedulers.
	trials := cfg.trials(50, 8)
	for _, topo := range []*graph.Topology{graph.Figure1A(), graph.RingWithChord(6, 3)} {
		prog, err := algo.New("GDP2", algo.Options{})
		if err != nil {
			return nil, err
		}
		if flt != nil {
			if err := flt.Validate(topo); err != nil {
				return nil, err
			}
			prog = flt.Wrap(topo, prog)
		}
		check := verify.LockoutCheck{
			Topology:  topo,
			Algorithm: prog,
			Scheduler: randomSchedulerFactory,
			Trials:    trials,
			MaxSteps:  150_000,
			MealsEach: 1,
			Seed:      cfg.Seed + 77,
			Workers:   cfg.Workers,
		}
		res, err := check.Run()
		if err != nil {
			return nil, err
		}
		t.AddRow(topo.Name(), "GDP2 as printed", "Monte-Carlo lockout check (random fair scheduler)",
			!res.Passed(), fmt.Sprintf("all-fed rate %s, worst Jain %.3f", res.Proportion.String(), res.WorstJainIndex))
	}

	t.AddNote("REPRODUCTION FINDING: reading Tables 2/4 literally, Cond(fork) guards only the first fork. The model checker then finds a fair scheduler that starves an individual GDP2 philosopher on the classic ring (both neighbours always acquire the fork they share with the victim as their second fork, which is never courtesy-checked). Checking the courtesy condition on both acquisitions removes every such trap we could explore. Under non-adversarial fair schedulers GDP2 as printed serves everyone, which is why simulation alone would not have caught this.")
	t.AddNote("GDP1 admits individual starvation even on the theta graph — expected, since the paper only claims progress for GDP1 (Section 5 motivates GDP2 with exactly this).")
	return t, nil
}

// --- E-B1 ---

func runEfficiency(cfg ExperimentConfig) (*Table, error) {
	t := &Table{Header: []string{"ring size", "algorithm", "steps per meal", "mean wait (steps)", "Jain fairness"}}
	trials := cfg.trials(10, 3)
	flt, err := cfg.faultModel()
	if err != nil {
		return nil, err
	}
	sizes := []int{5, 11, 25}
	if cfg.Quick {
		sizes = []int{5, 11}
	}
	algorithms := []string{"LR1", "LR2", "GDP1", "GDP2", "ordered-forks", "ticket-box"}
	for _, size := range sizes {
		topo := graph.Ring(size)
		for _, name := range algorithms {
			type trialResult struct {
				ate                      bool
				stepsPerMeal, wait, jain float64
			}
			perTrial, err := ParallelTrials(cfg.Workers, trials, func(i int) (trialResult, error) {
				sys := System{Topology: topo, Algorithm: name, Scheduler: "random", Seed: cfg.Seed + uint64(i)*997, Faults: flt}
				res, err := sys.Simulate(sim.RunOptions{MaxSteps: 50_000})
				if err != nil {
					return trialResult{}, err
				}
				if res.TotalEats == 0 {
					return trialResult{}, nil
				}
				return trialResult{
					ate:          true,
					stepsPerMeal: float64(res.Steps) / float64(res.TotalEats),
					wait:         res.MeanWaitSteps,
					jain:         stats.JainIndex(res.EatsBy),
				}, nil
			})
			if err != nil {
				return nil, err
			}
			var stepsPerMeal, wait, jain stats.Running
			for _, tr := range perTrial {
				if tr.ate {
					stepsPerMeal.Add(tr.stepsPerMeal)
					wait.Add(tr.wait)
					jain.Add(tr.jain)
				}
			}
			t.AddRow(size, name, fmt.Sprintf("%.1f", stepsPerMeal.Mean()), fmt.Sprintf("%.1f", wait.Mean()), fmt.Sprintf("%.3f", jain.Mean()))
		}
	}
	t.AddNote("the paper leaves efficiency as future work (Section 6); these numbers quantify the price of the generalized guarantees on the classic ring under a uniformly random fair scheduler.")
	t.AddNote("GDP1/GDP2 pay a constant-factor overhead over LR1/LR2 for the nr bookkeeping, and the courteous variants trade throughput for fairness (higher Jain index).")
	return t, nil
}

// --- E-B2 ---

func runNumberRangeSweep(cfg ExperimentConfig) (*Table, error) {
	t := &Table{Header: []string{"topology", "m", "analytic distinct-draw bound", "measured progress trials", "mean steps to first meal"}}
	trials := cfg.trials(60, 10)
	flt, err := cfg.faultModel()
	if err != nil {
		return nil, err
	}
	topo := graph.Figure1A()
	k := topo.NumForks()
	for _, mult := range []int{1, 2, 4, 8} {
		m := k * mult
		bound := verify.DistinctNumberBound(m, k)
		type trialResult struct {
			progressed bool
			firstEat   float64
		}
		perTrial, err := ParallelTrials(cfg.Workers, trials, func(i int) (trialResult, error) {
			sys := System{
				Topology:    topo,
				Algorithm:   "GDP1",
				AlgoOptions: algo.Options{M: m},
				Scheduler:   "adversary",
				Seed:        cfg.Seed + uint64(i)*313,
				Faults:      flt,
			}
			res, err := sys.Simulate(sim.RunOptions{MaxSteps: 60_000, StopAfterTotalEats: 1})
			if err != nil {
				return trialResult{}, err
			}
			return trialResult{progressed: res.Progress(), firstEat: float64(res.FirstEatStep)}, nil
		})
		if err != nil {
			return nil, err
		}
		var progressed int
		var firstMeal stats.Running
		for _, tr := range perTrial {
			if tr.progressed {
				progressed++
				firstMeal.Add(tr.firstEat)
			}
		}
		t.AddRow(topo.Name(), m, fmt.Sprintf("%.3f", bound), fmt.Sprintf("%d/%d", progressed, trials), fmt.Sprintf("%.1f", firstMeal.Mean()))
	}
	t.AddNote("the Theorem 3 progress bound improves with m (the probability that k random numbers are pairwise distinct, m!/(mᵏ(m−k)!)); progress itself holds for every m ≥ k, as predicted.")
	return t, nil
}

// --- E-RT ---

func runRuntimeThroughput(cfg ExperimentConfig) (*Table, error) {
	header := []string{"topology", "algorithm", "meals/second", "Jain fairness", "starved"}
	var model fault.Model
	if cfg.Faults != "" {
		m, err := fault.NewFromSpec(cfg.Faults)
		if err != nil {
			return nil, err
		}
		if !runtime.SupportsFault(m.Name()) {
			t := &Table{Header: header}
			t.AddNote("skipped: the concurrent goroutine runtime injects only crash-family fault models (crash-rejoin, freeze), not %s; rerun with one of those (or without -faults) to measure E-RT.", m.Spec())
			return t, nil
		}
		model = m
		header = append(header, "crashes", "rejoins")
	}
	t := &Table{Header: header}
	duration := 400 * time.Millisecond
	if cfg.Quick {
		duration = 150 * time.Millisecond
	}
	topos := []*graph.Topology{graph.Ring(8), graph.Figure1A()}
	for _, topo := range topos {
		for _, name := range []string{"LR1", "LR2", "GDP1", "GDP2", "ordered-forks"} {
			sys := System{Topology: topo, Algorithm: name, Seed: cfg.Seed + 5, Faults: model}
			metrics, err := sys.RunConcurrent(context.Background(), duration, 0)
			if err != nil {
				return nil, err
			}
			row := []any{topo.Name(), name, fmt.Sprintf("%.0f", metrics.MealsPerSecond), fmt.Sprintf("%.3f", metrics.JainIndex), len(metrics.Starved)}
			if model != nil {
				var crashes, rejoins int64
				for p := range metrics.Crashes {
					crashes += metrics.Crashes[p]
					rejoins += metrics.Rejoins[p]
				}
				row = append(row, crashes, rejoins)
			}
			t.AddRow(row...)
		}
	}
	if model != nil {
		t.AddNote("fault injection active (%s): philosopher goroutines crash at think→try cycle boundaries and rejoin from dedicated per-seed decision streams.", model.Spec())
	}
	t.AddNote("philosophers are goroutines and forks are mutex-protected shared objects; the Go scheduler provides the (benign) adversary. Absolute throughput depends on the host; the relevant shape is that all four paper algorithms sustain comparable throughput and starve nobody.")
	return t, nil
}

func protectedLabel(protected []graph.PhilID) string {
	if len(protected) == 0 {
		return "all"
	}
	return fmt.Sprintf("%v", protected)
}

// randomSchedulerFactory adapts the sched package's uniform scheduler to the
// verify.SchedulerFactory signature.
func randomSchedulerFactory(rng *prng.Source) sim.Scheduler {
	return sched.NewUniformRandom(rng)
}

// Package analysistest runs dplint analyzers over testdata packages and
// checks their diagnostics against "// want" comments, mirroring the
// expectation harness of golang.org/x/tools' analysistest without the
// dependency.
//
// A testdata file marks each expected diagnostic on the line it occurs:
//
//	for k := range m { // want `map iteration order`
//
// Each quoted string after "want" is a regular expression that must match
// the message of exactly one diagnostic reported on that line; diagnostics
// without a matching expectation, and expectations without a matching
// diagnostic, fail the test. Lines without want comments must stay silent,
// which is how suppressed and clean cases are asserted.
package analysistest

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"

	"repro/internal/analysis"
)

var (
	mu        sync.Mutex
	sharedErr error
	shared    *analysis.Loader
)

// Loader returns the process-wide loader rooted at the enclosing module.
// Sharing one loader across tests means the module's packages (and the
// standard library, which the source importer type-checks from GOROOT/src)
// are loaded once, not once per test.
func Loader(t *testing.T) *analysis.Loader {
	t.Helper()
	mu.Lock()
	defer mu.Unlock()
	if shared == nil && sharedErr == nil {
		root, err := analysis.FindModuleRoot(".")
		if err != nil {
			sharedErr = err
		} else {
			shared, sharedErr = analysis.NewLoader(root)
		}
	}
	if sharedErr != nil {
		t.Fatalf("analysistest: loader: %v", sharedErr)
	}
	return shared
}

// Load parses and type-checks the package in dir under its natural import
// path. Path-gated analyzers are exercised by placing testdata inside the
// gated trees (internal/sim/testdata, internal/sched/testdata): testdata
// directories are invisible to the go tool and to the module-wide lint walk,
// but their natural import paths still sit inside the deterministic core.
func Load(t *testing.T, dir string) *analysis.Package {
	t.Helper()
	l := Loader(t)
	abs, err := filepath.Abs(dir)
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	pkg, err := l.LoadDirDefault(abs)
	if err != nil {
		t.Fatalf("analysistest: load %s: %v", dir, err)
	}
	return pkg
}

// Run loads the testdata package in dir, applies the analyzers, and compares
// every diagnostic (including the driver's suppression-hygiene findings)
// against the package's want comments.
func Run(t *testing.T, dir string, analyzers ...*analysis.Analyzer) {
	t.Helper()
	pkg := Load(t, dir)
	diags, err := analysis.Run([]*analysis.Package{pkg}, analyzers)
	if err != nil {
		t.Fatalf("analysistest: run: %v", err)
	}
	wants := parseWants(t, pkg)
	for _, d := range diags {
		if !claim(wants, d) {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

var wantStrRE = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

// parseWants extracts the expectations from every "// want" comment.
func parseWants(t *testing.T, pkg *analysis.Package) []*want {
	t.Helper()
	var wants []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				rest, ok := strings.CutPrefix(text, "want ")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				quoted := wantStrRE.FindAllString(rest, -1)
				if len(quoted) == 0 {
					t.Fatalf("%s: malformed want comment %q", pos, c.Text)
				}
				for _, q := range quoted {
					pattern, err := unquoteWant(q)
					if err != nil {
						t.Fatalf("%s: malformed want pattern %s: %v", pos, q, err)
					}
					re, err := regexp.Compile(pattern)
					if err != nil {
						t.Fatalf("%s: bad want regexp %s: %v", pos, q, err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return wants
}

func unquoteWant(q string) (string, error) {
	if strings.HasPrefix(q, "`") {
		return strings.Trim(q, "`"), nil
	}
	s, err := strconv.Unquote(q)
	if err != nil {
		return "", fmt.Errorf("unquote: %w", err)
	}
	return s, nil
}

// claim marks the first unmatched expectation covering d.
func claim(wants []*want, d analysis.Diagnostic) bool {
	for _, w := range wants {
		if !w.matched && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
			w.matched = true
			return true
		}
	}
	return false
}

package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// deterministicPkgs are the packages whose results must be reproducible from
// a seed alone: the simulator, the algorithms, the schedulers, the model
// checker, the graph analyses, the fault models and the statistical
// verifier. Subpackages inherit the restriction.
var deterministicPkgs = []string{
	"repro/internal/sim",
	"repro/internal/algo",
	"repro/internal/sched",
	"repro/internal/modelcheck",
	"repro/internal/graphalg",
	"repro/internal/fault",
	"repro/internal/verify",
}

// IsDeterministicPkg reports whether the import path belongs to the
// deterministic core (exported for the loader test).
func IsDeterministicPkg(path string) bool {
	for _, det := range deterministicPkgs {
		if path == det || strings.HasPrefix(path, det+"/") {
			return true
		}
	}
	return false
}

// NewDetSource returns the detsource analyzer: deterministic packages must
// not read wall clocks (time.Now, time.Since), process environment
// (os.Getenv) or the global math/rand generators — every run must be a pure
// function of its explicit seed, and all randomness flows through
// internal/prng.
func NewDetSource() *Analyzer {
	a := &Analyzer{
		Name: "detsource",
		Doc:  "deterministic packages draw randomness only from internal/prng with explicit seeds",
	}
	a.Run = runDetSource
	return a
}

// forbiddenFuncs maps package path → function names whose call sites are
// nondeterminism leaks.
var forbiddenFuncs = map[string]map[string]string{
	"time": {
		"Now":   "reads the wall clock",
		"Since": "reads the wall clock",
	},
	"os": {
		"Getenv":    "reads the process environment",
		"LookupEnv": "reads the process environment",
	},
}

func runDetSource(pass *Pass) error {
	if !IsDeterministicPkg(pass.Pkg.Path) {
		return nil
	}
	for _, file := range pass.Pkg.Files {
		// math/rand (v1 or v2) is forbidden wholesale: even a locally seeded
		// rand.Rand bypasses the splittable, cross-version-stable stream
		// contract of internal/prng.
		for _, imp := range file.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if path == "math/rand" || path == "math/rand/v2" {
				pass.Reportf(imp.Pos(), "deterministic package %s imports %s; all randomness must flow through internal/prng with explicit seeds", pass.Pkg.Path, path)
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.ObjectOf(sel.Sel).(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			if why, ok := forbiddenFuncs[fn.Pkg().Path()][fn.Name()]; ok {
				pass.Reportf(sel.Pos(), "%s.%s %s; deterministic package %s must be a pure function of its seed", fn.Pkg().Path(), fn.Name(), why, pass.Pkg.Path)
			}
			return true
		})
	}
	return nil
}

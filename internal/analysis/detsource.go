package analysis

import (
	"go/ast"
	"go/types"
	"path/filepath"
	"strings"
)

// deterministicPkgs are the packages whose results must be reproducible from
// a seed alone: the simulator, the algorithms, the schedulers, the model
// checker, the graph analyses, the fault models and the statistical
// verifier. Subpackages inherit the restriction.
var deterministicPkgs = []string{
	"repro/internal/sim",
	"repro/internal/algo",
	"repro/internal/sched",
	"repro/internal/modelcheck",
	"repro/internal/graphalg",
	"repro/internal/fault",
	"repro/internal/verify",
}

// IsDeterministicPkg reports whether the import path belongs to the
// deterministic core (exported for the loader test).
func IsDeterministicPkg(path string) bool {
	for _, det := range deterministicPkgs {
		if path == det || strings.HasPrefix(path, det+"/") {
			return true
		}
	}
	return false
}

// deterministicFileTrees extends the gate to individual files of packages
// that are otherwise free to use the clock: import-path prefix → the base
// filenames held to the deterministic rules. internal/serve's handlers
// legitimately read time.Now to stamp response timing, but its cache and
// fingerprint logic must stay a pure function of the request sequence —
// cache dispositions and keys have to replay identically from a request
// trace. Subtrees inherit the entry, so testdata under a gated tree is
// checked under the same filename filter. internal/graph is construction-time
// code and free to format, but its automorphism seam is replayed on the model
// checker's hot path — orbit canonicalization must be a pure function of the
// topology — so that one file joins the deterministic core. internal/runtime
// is wall-clock territory by design (think/eat pauses), but its fault driver
// must draw crash and rejoin decisions purely from per-seed prng streams, so
// faults.go is gated while runtime.go keeps its timers.
var deterministicFileTrees = []struct {
	prefix string
	files  map[string]bool
}{
	{"repro/internal/graph", map[string]bool{"automorphism.go": true}},
	{"repro/internal/runtime", map[string]bool{"faults.go": true}},
	{"repro/internal/serve", map[string]bool{"cache.go": true, "fingerprint.go": true}},
}

// gatedFiles returns the gated-filename set applying to the import path,
// or nil when no file-level entry covers it.
func gatedFiles(path string) map[string]bool {
	for _, tree := range deterministicFileTrees {
		if path == tree.prefix || strings.HasPrefix(path, tree.prefix+"/") {
			return tree.files
		}
	}
	return nil
}

// NewDetSource returns the detsource analyzer: deterministic packages must
// not read wall clocks (time.Now, time.Since), process environment
// (os.Getenv) or the global math/rand generators — every run must be a pure
// function of its explicit seed, and all randomness flows through
// internal/prng. The gate applies per package (deterministicPkgs) or per
// file (deterministicFileTrees) for packages whose deterministic core
// shares a directory with clock-reading code.
func NewDetSource() *Analyzer {
	a := &Analyzer{
		Name: "detsource",
		Doc:  "deterministic packages draw randomness only from internal/prng with explicit seeds",
	}
	a.Run = runDetSource
	return a
}

// forbiddenFuncs maps package path → function names whose call sites are
// nondeterminism leaks.
var forbiddenFuncs = map[string]map[string]string{
	"time": {
		"Now":   "reads the wall clock",
		"Since": "reads the wall clock",
	},
	"os": {
		"Getenv":    "reads the process environment",
		"LookupEnv": "reads the process environment",
	},
}

func runDetSource(pass *Pass) error {
	gated := gatedFiles(pass.Pkg.Path)
	if !IsDeterministicPkg(pass.Pkg.Path) && gated == nil {
		return nil
	}
	for _, file := range pass.Pkg.Files {
		if gated != nil && !gated[filepath.Base(pass.Pkg.Fset.Position(file.Pos()).Filename)] {
			continue
		}
		// math/rand (v1 or v2) is forbidden wholesale: even a locally seeded
		// rand.Rand bypasses the splittable, cross-version-stable stream
		// contract of internal/prng.
		for _, imp := range file.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if path == "math/rand" || path == "math/rand/v2" {
				pass.Reportf(imp.Pos(), "deterministic package %s imports %s; all randomness must flow through internal/prng with explicit seeds", pass.Pkg.Path, path)
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.ObjectOf(sel.Sel).(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			if why, ok := forbiddenFuncs[fn.Pkg().Path()][fn.Name()]; ok {
				pass.Reportf(sel.Pos(), "%s.%s %s; deterministic package %s must be a pure function of its seed", fn.Pkg().Path(), fn.Name(), why, pass.Pkg.Path)
			}
			return true
		})
	}
	return nil
}

package analysis

import "strings"

// unsafeAllowlist are the module-relative files permitted to import unsafe.
// Today that is exactly the model checker's intern-key arena, whose
// unsafe.String views over a stable byte arena are what make interning
// allocation-free — plus the analyzer's own testdata exemplar of an allowed
// file. Anything else importing unsafe is flagged; extending the allowlist
// is a reviewed edit to this file, not an annotation.
var unsafeAllowlist = []string{
	"internal/modelcheck/explore.go",
	"internal/analysis/testdata/unsafeaudit/allowed.go",
}

// NewUnsafeAudit returns the unsafeaudit analyzer: unsafe stays confined to
// the intern-key arena.
func NewUnsafeAudit() *Analyzer {
	a := &Analyzer{
		Name: "unsafeaudit",
		Doc:  "unsafe imports are confined to an explicit file allowlist",
	}
	a.Run = runUnsafeAudit
	return a
}

func runUnsafeAudit(pass *Pass) error {
	for _, file := range pass.Pkg.Files {
		for _, imp := range file.Imports {
			if strings.Trim(imp.Path.Value, `"`) != "unsafe" {
				continue
			}
			rel := pass.Pkg.RelFile(imp.Pos())
			allowed := false
			for _, ok := range unsafeAllowlist {
				if rel == ok {
					allowed = true
					break
				}
			}
			if !allowed {
				pass.Reportf(imp.Pos(), "%s imports unsafe outside the audited allowlist (%s); confine unsafe to the intern arena or extend the allowlist in internal/analysis/unsafeaudit.go", rel, strings.Join(unsafeAllowlist, ", "))
			}
		}
	}
	return nil
}

// Package hygiene is dplint testdata for the driver's annotation checks:
// missing reasons, unknown analyzers and stale suppressions are themselves
// findings. Asserted programmatically (not via want comments) because the
// expectations sit on the annotation lines themselves.
package hygiene

func missingReason(m map[string]int) []string {
	var keys []string
	//dplint:ok maporder
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}

func stale(x int) int {
	//dplint:ok maporder there is no map here at all
	return x + 1
}

func unknownAnalyzer(x int) int {
	//dplint:ok nosuchcheck the analyzer name is misspelled
	return x
}

var _ = []any{missingReason, stale, unknownAnalyzer}

// Package maporder is dplint testdata: order-sensitive and order-safe map
// ranges for the maporder analyzer.
package maporder

import "sort"

// keysUnsorted leaks iteration order through append.
func keysUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m { // want `map iteration order is accumulated by append into keys`
		keys = append(keys, k)
	}
	return keys
}

// keysSorted is the sanctioned collect-then-sort idiom.
func keysSorted(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// firstKey returns whichever key the runtime yields first.
func firstKey(m map[string]int) string {
	for k := range m { // want `map iteration order reaches a return value`
		return k
	}
	return ""
}

// sumInts is commutative integer accumulation: safe.
func sumInts(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// sumFloats accumulates floats, where addition order changes rounding.
func sumFloats(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m { // want `map iteration order is accumulated into total`
		total += v
	}
	return total
}

// concat accumulates strings, which is order-sensitive.
func concat(m map[string]string) string {
	s := ""
	for k := range m { // want `map iteration order is accumulated into s`
		s += k
	}
	return s
}

// lastWriter keeps whichever value iterates last.
func lastWriter(m map[string]int) int {
	last := 0
	for _, v := range m { // want `map iteration order decides the final value of last`
		last = v
	}
	return last
}

// setCopy writes through map indexes: set semantics, order-free.
func setCopy(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// clearAll only deletes: order-free.
func clearAll(m map[string]int) {
	for k := range m {
		delete(m, k)
	}
}

// suppressed carries an annotation with a reason, so the finding is dropped.
func suppressed(m map[string]int) []string {
	var keys []string
	//dplint:ok maporder callers re-canonicalize the order themselves
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}

var _ = []any{keysUnsorted, keysSorted, firstKey, sumInts, sumFloats, concat, lastWriter, setCopy, clearAll, suppressed}

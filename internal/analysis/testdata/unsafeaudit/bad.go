// Package unsafeaudit is dplint testdata: one file outside the allowlist,
// one file on it (allowed.go is named in the analyzer's allowlist), one
// suppressed.
package unsafeaudit

import "unsafe" // want `imports unsafe outside the audited allowlist`

func addr(p *int) uintptr { return uintptr(unsafe.Pointer(p)) }

var _ = addr

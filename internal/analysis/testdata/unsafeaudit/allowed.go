package unsafeaudit

import "unsafe"

// view is fine here: this file is on the unsafeaudit allowlist.
func view(b []byte) string { return unsafe.String(&b[0], uintptr(len(b))) }

var _ = view

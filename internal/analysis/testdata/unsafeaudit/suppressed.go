package unsafeaudit

//dplint:ok unsafeaudit exercises the suppression path of the audit
import "unsafe"

func size(x int32) uintptr { return unsafe.Sizeof(x) }

var _ = size

package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
)

// NewHotAlloc returns the hotalloc analyzer, which guards the 0-alloc
// steady state of the hot paths at the mechanism level:
//
//   - Outcome.Apply must hold static functions, never function literals: a
//     literal that captures variables allocates a closure per outcome set,
//     and the model checker's recompute-and-apply trick relies on the i-th
//     outcome of equal protocol states being the identical function value.
//     Function literals assigned to Apply fields, stored through .Apply
//     selectors, or passed to Apply-typed parameters are flagged module-wide
//     (capture-free literals still allocate nothing, but the static-func
//     convention is what makes that reviewable, so they are flagged too).
//
//   - fmt.* calls (except fmt.Errorf) allocate on every call and are
//     forbidden on the non-error paths of the hot packages (the
//     deterministic core, package-wide or per-file through the same gate
//     as detsource). Error paths remain free to format: calls inside
//     panic arguments, inside String/Name/Error/Format/GoString/Report
//     methods (reporting surfaces, cold by construction) and inside
//     package-level variable initializers (one-shot init-time work) are
//     allowed.
func NewHotAlloc() *Analyzer {
	a := &Analyzer{
		Name: "hotalloc",
		Doc:  "no closures in Outcome.Apply and no fmt on non-error hot paths",
	}
	a.Run = runHotAlloc
	return a
}

// coldFuncNames are the functions whose bodies are reporting surfaces:
// fmt there is the point, not a leak.
var coldFuncNames = map[string]bool{
	"String": true, "Name": true, "Error": true,
	"Format": true, "GoString": true, "Report": true,
}

func runHotAlloc(pass *Pass) error {
	sigs := applySignatures(pass)
	gated := gatedFiles(pass.Pkg.Path)
	for _, file := range pass.Pkg.Files {
		checkApplyLiterals(pass, file, sigs)
		hot := IsDeterministicPkg(pass.Pkg.Path) ||
			(gated != nil && gated[filepath.Base(pass.Pkg.Fset.Position(file.Pos()).Filename)])
		if hot {
			checkHotFmt(pass, file)
		}
	}
	return nil
}

// applySignatures collects the function signature of the Apply field of
// every Outcome struct visible to the package (its own scope and direct
// imports), so Apply-typed parameters can be matched by type identity.
func applySignatures(pass *Pass) []*types.Signature {
	var sigs []*types.Signature
	consider := func(scope *types.Scope) {
		tn, ok := scope.Lookup("Outcome").(*types.TypeName)
		if !ok {
			return
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			return
		}
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if f.Name() != "Apply" {
				continue
			}
			if sig, ok := f.Type().Underlying().(*types.Signature); ok {
				sigs = append(sigs, sig)
			}
		}
	}
	consider(pass.Pkg.Types.Scope())
	for _, imp := range pass.Pkg.Types.Imports() {
		consider(imp.Scope())
	}
	return sigs
}

func isApplySig(sigs []*types.Signature, t types.Type) bool {
	if t == nil {
		return false
	}
	sig, ok := t.Underlying().(*types.Signature)
	if !ok {
		return false
	}
	for _, s := range sigs {
		if types.Identical(s, sig) {
			return true
		}
	}
	return false
}

// isOutcomeType reports whether t (possibly a pointer) is a struct named
// Outcome with an Apply function field.
func isOutcomeType(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Name() != "Outcome" {
		return false
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if f.Name() == "Apply" {
			_, isFn := f.Type().Underlying().(*types.Signature)
			return isFn
		}
	}
	return false
}

const applyMsg = "function literal bound to Outcome.Apply allocates a closure per outcome set; use a static func with the variable part in Arg"

// checkApplyLiterals flags function literals flowing into Outcome.Apply.
func checkApplyLiterals(pass *Pass, file *ast.File, sigs []*types.Signature) {
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CompositeLit:
			if !isOutcomeType(pass.TypeOf(n)) {
				return true
			}
			for i, elt := range n.Elts {
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					if key, ok := kv.Key.(*ast.Ident); ok && key.Name == "Apply" {
						if lit, ok := ast.Unparen(kv.Value).(*ast.FuncLit); ok {
							pass.Reportf(lit.Pos(), "%s", applyMsg)
						}
					}
					continue
				}
				// Positional literal: match the field index.
				if st, ok := pass.TypeOf(n).Underlying().(*types.Struct); ok && i < st.NumFields() && st.Field(i).Name() == "Apply" {
					if lit, ok := ast.Unparen(elt).(*ast.FuncLit); ok {
						pass.Reportf(lit.Pos(), "%s", applyMsg)
					}
				}
			}
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
				if !ok || sel.Sel.Name != "Apply" || !isOutcomeType(pass.TypeOf(sel.X)) {
					continue
				}
				if i < len(n.Rhs) {
					if lit, ok := ast.Unparen(n.Rhs[i]).(*ast.FuncLit); ok {
						pass.Reportf(lit.Pos(), "%s", applyMsg)
					}
				}
			}
		case *ast.CallExpr:
			sig, ok := typeAsSignature(pass.TypeOf(n.Fun))
			if !ok || len(sigs) == 0 {
				return true
			}
			for i, arg := range n.Args {
				lit, ok := ast.Unparen(arg).(*ast.FuncLit)
				if !ok {
					continue
				}
				if isApplySig(sigs, paramTypeAt(sig, i)) {
					pass.Reportf(lit.Pos(), "%s", applyMsg)
				}
			}
		}
		return true
	})
}

func typeAsSignature(t types.Type) (*types.Signature, bool) {
	if t == nil {
		return nil, false
	}
	sig, ok := t.Underlying().(*types.Signature)
	return sig, ok
}

// paramTypeAt returns the type of parameter i, unrolling variadics.
func paramTypeAt(sig *types.Signature, i int) types.Type {
	params := sig.Params()
	if params.Len() == 0 {
		return nil
	}
	if sig.Variadic() && i >= params.Len()-1 {
		if sl, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
			return sl.Elem()
		}
		return nil
	}
	if i >= params.Len() {
		return nil
	}
	return params.At(i).Type()
}

// checkHotFmt flags fmt calls on non-error paths of a hot package.
func checkHotFmt(pass *Pass, file *ast.File) {
	var coldSpans []span // panic arguments, top-level var initializers, cold funcs
	for _, decl := range file.Decls {
		switch d := decl.(type) {
		case *ast.GenDecl:
			if d.Tok == token.VAR {
				coldSpans = append(coldSpans, span{d.Pos(), d.End()})
			}
		case *ast.FuncDecl:
			if coldFuncNames[d.Name.Name] {
				coldSpans = append(coldSpans, span{d.Pos(), d.End()})
			}
		}
	}
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			if b, ok := pass.ObjectOf(id).(*types.Builtin); ok && b.Name() == "panic" {
				coldSpans = append(coldSpans, span{call.Pos(), call.End()})
				return true
			}
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := pass.ObjectOf(sel.Sel).(*types.Func)
		if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "fmt" || fn.Name() == "Errorf" {
			return true
		}
		for _, sp := range coldSpans {
			if call.Pos() >= sp.lo && call.End() <= sp.hi {
				return true
			}
		}
		pass.Reportf(call.Pos(), "fmt.%s allocates on a hot path of %s; precompute, use strconv into a reused buffer, or annotate //dplint:ok hotalloc <reason> for cold paths", fn.Name(), pass.Pkg.Path)
		return true
	})
}

type span struct{ lo, hi token.Pos }

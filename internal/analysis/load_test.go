package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

// TestLoaderTypechecksModule loads every package of the module through the
// stdlib-only loader and verifies each one parsed and type-checked — the
// loader is the foundation every analyzer result stands on, so a package it
// silently skips is a package dplint silently ignores.
func TestLoaderTypechecksModule(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and typechecks the whole module")
	}
	pkgs, err := analysistest.Loader(t).LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	byPath := map[string]*analysis.Package{}
	for _, pkg := range pkgs {
		if pkg.Types == nil || len(pkg.Files) == 0 {
			t.Errorf("package %s loaded without types or files", pkg.Path)
		}
		byPath[pkg.Path] = pkg
	}
	// Spot-check the load covers every layer: the root facade, the public
	// API, the deterministic core, the tools, and this package itself.
	for _, path := range []string{
		"repro",
		"repro/dining",
		"repro/internal/sim",
		"repro/internal/algo",
		"repro/internal/sched",
		"repro/internal/modelcheck",
		"repro/internal/verify",
		"repro/internal/analysis",
		"repro/cmd/dplint",
	} {
		if byPath[path] == nil {
			t.Errorf("LoadAll missed %s (loaded %d packages)", path, len(pkgs))
		}
	}
	if len(pkgs) < 25 {
		t.Errorf("LoadAll found only %d packages, expected the whole module (>= 25)", len(pkgs))
	}
}

// TestDeterministicPkgGate pins which packages the path-gated analyzers
// guard.
func TestDeterministicPkgGate(t *testing.T) {
	for path, want := range map[string]bool{
		"repro/internal/sim":                        true,
		"repro/internal/sim/testdata/dplint/detsrc": true,
		"repro/internal/sched":                      true,
		"repro/internal/verify":                     true,
		"repro/internal/simulate":                   false, // prefix match is per path element
		"repro/internal/cli":                        false,
		"repro/dining":                              false,
		"repro":                                     false,
	} {
		if got := analysis.IsDeterministicPkg(path); got != want {
			t.Errorf("IsDeterministicPkg(%q) = %v, want %v", path, got, want)
		}
	}
}

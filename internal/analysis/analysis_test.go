package analysis_test

import (
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

// The five analyzer suites: each testdata package seeds positive hits,
// suppressed hits and clean code, with expectations in // want comments.

func TestMapOrderSuite(t *testing.T) {
	analysistest.Run(t, "testdata/maporder", analysis.NewMapOrder())
}

func TestDetSourceSuite(t *testing.T) {
	analysistest.Run(t, "../sim/testdata/dplint/detsource", analysis.NewDetSource())
}

// TestDetSourceFileGateSuite exercises the file-level gate: under
// repro/internal/serve only cache.go and fingerprint.go are held to the
// deterministic rules, so the testdata's cache.go reports and its
// handlers.go — same calls, ungated filename — stays silent.
func TestDetSourceFileGateSuite(t *testing.T) {
	analysistest.Run(t, "../serve/testdata/dplint/detsource", analysis.NewDetSource())
}

func TestHotAllocSuite(t *testing.T) {
	analysistest.Run(t, "../sim/testdata/dplint/hotalloc", analysis.NewHotAlloc())
}

func TestUnsafeAuditSuite(t *testing.T) {
	analysistest.Run(t, "testdata/unsafeaudit", analysis.NewUnsafeAudit())
}

func TestRegistryNameSuite(t *testing.T) {
	analysistest.Run(t, "../sched/testdata/dplint/regnames", analysis.NewRegistryName())
}

// TestSuppressionHygiene pins the driver's own findings: annotations missing
// a reason, naming an unknown analyzer, or suppressing nothing are reported
// (and a reason-less annotation does not suppress). Asserted directly rather
// than via want comments because the findings sit on the annotation lines.
func TestSuppressionHygiene(t *testing.T) {
	pkg := analysistest.Load(t, "testdata/hygiene")
	diags, err := analysis.Run([]*analysis.Package{pkg}, analysis.NewAnalyzers())
	if err != nil {
		t.Fatal(err)
	}
	wantSubstrings := []string{
		"//dplint:ok maporder needs a reason",
		"map iteration order is accumulated by append into keys",
		"unused suppression: maporder reports nothing",
		`//dplint:ok names unknown analyzer "nosuchcheck"`,
	}
	if len(diags) != len(wantSubstrings) {
		t.Fatalf("got %d diagnostics, want %d:\n%s", len(diags), len(wantSubstrings), render(diags))
	}
	for i, sub := range wantSubstrings {
		if !strings.Contains(diags[i].Message, sub) {
			t.Errorf("diagnostic %d = %s, want substring %q", i, diags[i], sub)
		}
	}
}

// TestTreeIsClean is the satellite gate in test form: the full dplint suite
// over every package of the module reports nothing, i.e. `dplint ./...`
// exits 0.
func TestTreeIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and typechecks the whole module")
	}
	pkgs, err := analysistest.Loader(t).LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	diags, err := analysis.Run(pkgs, analysis.NewAnalyzers())
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) > 0 {
		t.Errorf("dplint findings on the tree:\n%s", render(diags))
	}
}

func render(diags []analysis.Diagnostic) string {
	var b strings.Builder
	for _, d := range diags {
		b.WriteString(d.String())
		b.WriteByte('\n')
	}
	return b.String()
}

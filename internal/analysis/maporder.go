package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// NewMapOrder returns the maporder analyzer: a range over a map must not
// feed a returned or accumulated value without a sort, because Go randomizes
// map iteration order and the repository's results are pinned byte-identical
// across runs, worker counts and shard counts. Order-insensitive loop bodies
// are permitted: writes into other maps (set semantics), delete, and
// commutative integer accumulation (+=, -=, *=, |=, &=, ^= on integers).
// Appending to a slice that is later passed to a sort/slices call in the
// same function is the sanctioned idiom (collect, then sort). Everything
// else needs a //dplint:ok maporder <reason> annotation.
func NewMapOrder() *Analyzer {
	a := &Analyzer{
		Name: "maporder",
		Doc:  "map iteration order must not reach returned or accumulated values without a sort",
	}
	a.Run = runMapOrder
	return a
}

func runMapOrder(pass *Pass) error {
	for _, file := range pass.Pkg.Files {
		for _, fn := range functionsOf(file) {
			checkMapRanges(pass, fn)
		}
	}
	return nil
}

// functionsOf returns every function body of the file: declarations and
// literals. Each is analyzed independently so the "sorted later in the
// enclosing function" escape looks in the right scope.
func functionsOf(file *ast.File) []ast.Node {
	var fns []ast.Node
	ast.Inspect(file, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			fns = append(fns, n)
		}
		return true
	})
	return fns
}

func funcBody(fn ast.Node) *ast.BlockStmt {
	switch fn := fn.(type) {
	case *ast.FuncDecl:
		return fn.Body
	case *ast.FuncLit:
		return fn.Body
	}
	return nil
}

// checkMapRanges flags the order-sensitive map ranges directly inside fn
// (nested function literals are visited on their own).
func checkMapRanges(pass *Pass, fn ast.Node) {
	body := funcBody(fn)
	if body == nil {
		return
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if n != fn && isFunc(n) {
			return false // analyzed separately
		}
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		if t := pass.TypeOf(rng.X); t == nil || !isMapType(t) {
			return true
		}
		if sink := orderSensitiveSink(pass, rng); sink != nil {
			if sink.accum != nil && sortedAfter(pass, body, rng, sink.accum) {
				return true
			}
			pass.Reportf(rng.For, "map iteration order %s; sort before use or annotate //dplint:ok maporder <reason>", sink.what)
		}
		return true
	})
}

func isFunc(n ast.Node) bool {
	switch n.(type) {
	case *ast.FuncDecl, *ast.FuncLit:
		return true
	}
	return false
}

func isMapType(t types.Type) bool {
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// mapSink describes how a map range leaks iteration order: through a return
// statement or through accumulation into a variable declared outside the
// loop.
type mapSink struct {
	what  string
	accum types.Object // the accumulated variable, when one exists
}

// orderSensitiveSink scans the loop body for order-sensitive effects.
func orderSensitiveSink(pass *Pass, rng *ast.RangeStmt) *mapSink {
	loopVars := map[types.Object]bool{}
	for _, e := range [2]ast.Expr{rng.Key, rng.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := pass.ObjectOf(id); obj != nil {
				loopVars[obj] = true
			}
		}
	}
	var sink *mapSink
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if sink != nil {
			return false
		}
		switch n := n.(type) {
		case *ast.ReturnStmt:
			if len(n.Results) > 0 {
				sink = &mapSink{what: "reaches a return value"}
			}
		case *ast.AssignStmt:
			sink = orderSensitiveAssign(pass, rng, loopVars, n)
		}
		return sink == nil
	})
	return sink
}

// orderSensitiveAssign decides whether one assignment inside the loop body
// accumulates order-sensitively into a variable from outside the loop.
func orderSensitiveAssign(pass *Pass, rng *ast.RangeStmt, loopVars map[types.Object]bool, as *ast.AssignStmt) *mapSink {
	if as.Tok == token.DEFINE {
		return nil
	}
	for i, lhs := range as.Lhs {
		// Writes through a map index have set semantics: the final map is the
		// same for every iteration order (one write per distinct key).
		if idx, ok := lhs.(*ast.IndexExpr); ok {
			if t := pass.TypeOf(idx.X); t != nil && isMapType(t) {
				continue
			}
		}
		obj := rootObject(pass, lhs)
		if obj == nil || loopVars[obj] || declaredWithin(obj, rng) {
			continue
		}
		switch {
		case as.Tok == token.ASSIGN:
			if i < len(as.Rhs) && isAppendOf(pass, as.Rhs[i], obj) {
				return &mapSink{what: "is accumulated by append into " + obj.Name(), accum: obj}
			}
			// A plain overwrite is order-sensitive only when the written value
			// depends on the iteration (last writer wins).
			if i < len(as.Rhs) && mentionsAny(pass, as.Rhs[i], loopVars) {
				return &mapSink{what: "decides the final value of " + obj.Name(), accum: obj}
			}
		case orderSensitiveOp(as.Tok, obj.Type()):
			return &mapSink{what: "is accumulated into " + obj.Name() + " (non-commutative for its type)", accum: obj}
		}
	}
	return nil
}

// orderSensitiveOp reports whether a compound assignment of this operator on
// this type depends on operand order: string concatenation and floating
// point always do (rounding), integers only for the non-commutative
// division/shift/modulo family.
func orderSensitiveOp(tok token.Token, t types.Type) bool {
	basic, ok := t.Underlying().(*types.Basic)
	if !ok {
		return true // conservatively flag compound assignment of exotic types
	}
	info := basic.Info()
	switch {
	case info&types.IsString != 0:
		return true
	case info&(types.IsFloat|types.IsComplex) != 0:
		return true
	case info&types.IsInteger != 0:
		switch tok {
		case token.QUO_ASSIGN, token.REM_ASSIGN, token.SHL_ASSIGN, token.SHR_ASSIGN:
			return true
		}
		return false
	}
	return true
}

// rootObject unwraps selectors, indexes, stars and parens to the base
// identifier's object.
func rootObject(pass *Pass, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			if x.Name == "_" {
				return nil
			}
			return pass.ObjectOf(x)
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// declaredWithin reports whether obj's declaration lies inside node's span.
func declaredWithin(obj types.Object, node ast.Node) bool {
	return obj.Pos() >= node.Pos() && obj.Pos() < node.End()
}

// isAppendOf reports whether e is append(obj, ...).
func isAppendOf(pass *Pass, e ast.Expr, obj types.Object) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	if b, ok := pass.ObjectOf(id).(*types.Builtin); !ok || b.Name() != "append" {
		return false
	}
	return rootObject(pass, call.Args[0]) == obj
}

// mentionsAny reports whether expression e references any of the objects.
func mentionsAny(pass *Pass, e ast.Expr, objs map[types.Object]bool) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && objs[pass.ObjectOf(id)] {
			found = true
		}
		return !found
	})
	return found
}

// sortedAfter reports whether, after the range statement, the enclosing
// function passes the accumulated variable to a sort.* or slices.* call —
// the sanctioned collect-then-sort idiom.
func sortedAfter(pass *Pass, body *ast.BlockStmt, rng *ast.RangeStmt, accum types.Object) bool {
	sorted := false
	ast.Inspect(body, func(n ast.Node) bool {
		if sorted {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := pass.ObjectOf(sel.Sel).(*types.Func)
		if !ok || fn.Pkg() == nil {
			return true
		}
		if path := fn.Pkg().Path(); path != "sort" && path != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if rootObject(pass, arg) == accum || mentionsObj(pass, arg, accum) {
				sorted = true
				break
			}
		}
		return !sorted
	})
	return sorted
}

func mentionsObj(pass *Pass, e ast.Expr, obj types.Object) bool {
	return mentionsAny(pass, e, map[types.Object]bool{obj: true})
}

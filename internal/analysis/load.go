package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package, shared by every analyzer
// of a driver run.
type Package struct {
	// Path is the package's import path ("repro/internal/sim").
	Path string
	// Dir is the package's directory on disk.
	Dir string
	// Root is the module root the package was loaded from.
	Root string
	// Fset positions every file of the run (shared across packages).
	Fset *token.FileSet
	// Files are the package's non-test files in file-name order, parsed with
	// comments.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info carries the type-checker's expression types, object resolutions
	// and constant values.
	Info *types.Info
}

// RelFile returns the path of the file containing pos relative to the
// module root, for root-anchored allowlists (unsafeaudit).
func (p *Package) RelFile(pos token.Pos) string {
	file := p.Fset.Position(pos).Filename
	rel, err := filepath.Rel(p.Root, file)
	if err != nil {
		return file
	}
	return filepath.ToSlash(rel)
}

// Loader parses and type-checks the packages of one module using only the
// standard library: module-local imports resolve against the module tree on
// disk, standard-library imports through go/importer's source importer
// (which type-checks GOROOT/src — no compiled export data needed, so the
// loader works in a bare container with just the toolchain). Test files
// (_test.go) and testdata directories are excluded: the linted invariants
// govern shipping code, and tests are free to iterate maps or stopwatch with
// time.Now.
type Loader struct {
	// Root is the module root directory (the directory holding go.mod).
	Root string
	// ModPath is the module path declared in go.mod ("repro").
	ModPath string
	// Fset is the shared file set.
	Fset *token.FileSet

	std     types.Importer
	pkgs    map[string]*Package
	loading map[string]bool
}

// NewLoader returns a loader for the module rooted at root (a directory
// containing go.mod).
func NewLoader(root string) (*Loader, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	mod, err := os.ReadFile(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("analysis: %s is not a module root: %w", abs, err)
	}
	modPath := ""
	for _, line := range strings.Split(string(mod), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			modPath = strings.TrimSpace(rest)
			break
		}
	}
	if modPath == "" {
		return nil, fmt.Errorf("analysis: no module directive in %s/go.mod", abs)
	}
	fset := token.NewFileSet()
	return &Loader{
		Root:    abs,
		ModPath: modPath,
		Fset:    fset,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    map[string]*Package{},
		loading: map[string]bool{},
	}, nil
}

// FindModuleRoot walks upward from dir to the nearest directory containing
// go.mod.
func FindModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(abs, "go.mod")); err == nil {
			return abs, nil
		}
		parent := filepath.Dir(abs)
		if parent == abs {
			return "", fmt.Errorf("analysis: no go.mod above %s", dir)
		}
		abs = parent
	}
}

// Import implements types.Importer: module-local paths load from disk,
// "unsafe" maps to types.Unsafe, everything else goes to the source
// importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if dir, ok := l.dirFor(path); ok {
		pkg, err := l.LoadDir(dir, path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// dirFor maps a module-local import path to its directory.
func (l *Loader) dirFor(path string) (string, bool) {
	if path == l.ModPath {
		return l.Root, true
	}
	if rest, ok := strings.CutPrefix(path, l.ModPath+"/"); ok {
		return filepath.Join(l.Root, filepath.FromSlash(rest)), true
	}
	return "", false
}

// LoadDir parses and type-checks the package in dir under the given import
// path, memoized per loader.
func (l *Loader) LoadDir(dir, importPath string) (*Package, error) {
	if pkg, ok := l.pkgs[importPath]; ok {
		return pkg, nil
	}
	if l.loading[importPath] {
		return nil, fmt.Errorf("analysis: import cycle through %s", importPath)
	}
	l.loading[importPath] = true
	defer delete(l.loading, importPath)

	names, err := goFilesIn(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("analysis: no non-test Go files in %s", dir)
	}
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(importPath, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: typecheck %s: %w", importPath, err)
	}
	pkg := &Package{
		Path:  importPath,
		Dir:   dir,
		Root:  l.Root,
		Fset:  l.Fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}
	l.pkgs[importPath] = pkg
	return pkg, nil
}

// LoadDirDefault loads the package in dir under its natural import path
// (module path + module-relative directory).
func (l *Loader) LoadDirDefault(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	rel, err := filepath.Rel(l.Root, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return nil, fmt.Errorf("analysis: %s is outside module root %s", dir, l.Root)
	}
	importPath := l.ModPath
	if rel != "." {
		importPath = l.ModPath + "/" + filepath.ToSlash(rel)
	}
	return l.LoadDir(abs, importPath)
}

// LoadAll loads every package of the module (the "./..." pattern), skipping
// testdata, hidden and underscore-prefixed directories, in import-path
// order.
func (l *Loader) LoadAll() ([]*Package, error) {
	var dirs []string
	err := filepath.WalkDir(l.Root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.Root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		names, err := goFilesIn(path)
		if err != nil {
			return err
		}
		if len(names) > 0 {
			dirs = append(dirs, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	pkgs := make([]*Package, 0, len(dirs))
	for _, dir := range dirs {
		importPath := l.ModPath
		if dir != l.Root {
			rel, err := filepath.Rel(l.Root, dir)
			if err != nil {
				return nil, err
			}
			importPath = l.ModPath + "/" + filepath.ToSlash(rel)
		}
		pkg, err := l.LoadDir(dir, importPath)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// goFilesIn lists dir's non-test Go files in name order.
func goFilesIn(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"regexp"
)

// The five open registries and their naming conventions. Every registry uses
// lowercase-hyphen names ("round-robin", "crash-rejoin", "lockout-freedom");
// the algorithm registry additionally admits the paper's uppercase mnemonics
// (LR1, GDP2), which are the names the tables and theorems use.
var (
	lowerNameRE = regexp.MustCompile(`^[a-z0-9]+(?:-[a-z0-9]+)*$`)
	algoNameRE  = regexp.MustCompile(`^(?:[A-Z][A-Z0-9]*|[a-z0-9]+(?:-[a-z0-9]+)*)$`)
)

// registrySpec describes one registry's conventions.
type registrySpec struct {
	registry string         // "topology", "algorithm", ...
	re       *regexp.Regexp // canonical-name pattern
	want     string         // human description of the pattern
}

var lowerSpec = func(registry string) registrySpec {
	return registrySpec{registry: registry, re: lowerNameRE, want: "lowercase words joined by hyphens"}
}

// registrars maps the fully-qualified registration functions (internal
// registries and their public dining facades) to the registry they feed.
var registrars = map[string]registrySpec{
	"repro/internal/graph.RegisterTopology": lowerSpec("topology"),
	"repro/dining.RegisterTopology":         lowerSpec("topology"),
	"repro/internal/algo.Register":          {registry: "algorithm", re: algoNameRE, want: "a paper mnemonic (LR1, GDP2) or lowercase words joined by hyphens"},
	"repro/dining.RegisterAlgorithm":        {registry: "algorithm", re: algoNameRE, want: "a paper mnemonic (LR1, GDP2) or lowercase words joined by hyphens"},
	"repro/internal/sched.Register":         lowerSpec("scheduler"),
	"repro/dining.RegisterScheduler":        lowerSpec("scheduler"),
	"repro/internal/fault.Register":         lowerSpec("fault"),
	"repro/dining.RegisterFault":            lowerSpec("fault"),
	"repro/dining.RegisterProperty":         lowerSpec("property"),
}

// nameMethodPkgs lists registry-owning package paths (prefixes) with the
// convention their Name() methods follow: a built-in's Name() is what
// reports print and, for properties and fault models, what registration
// uses, so literal returns are held to the same canon.
var nameMethodPkgs = []struct {
	prefix string
	spec   registrySpec
}{
	{"repro/internal/graph", lowerSpec("topology")},
	{"repro/internal/algo", registrySpec{registry: "algorithm", re: algoNameRE, want: "a paper mnemonic (LR1, GDP2) or lowercase words joined by hyphens"}},
	{"repro/internal/sched", lowerSpec("scheduler")},
	{"repro/internal/fault", lowerSpec("fault")},
	{"repro/dining", lowerSpec("property")},
}

// NewRegistryName returns the registryname analyzer: every statically
// visible registration (and every literal Name() of a registry-owning
// package) must be canonical for its registry and unique within it. The
// registries panic on duplicates at init time; this check moves the failure
// to lint time and catches registrations that no test happens to trigger.
// Dynamic names (wrapper plumbing, fmt-built names) are skipped — the
// analyzer checks what it can prove.
func NewRegistryName() *Analyzer {
	seen := map[string]map[string]token.Position{} // registry → name → first site
	a := &Analyzer{
		Name: "registryname",
		Doc:  "registered built-in names are canonical and unique per registry",
	}
	a.Run = func(pass *Pass) error { return runRegistryName(pass, seen) }
	return a
}

func runRegistryName(pass *Pass, seen map[string]map[string]token.Position) error {
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkRegistration(pass, seen, n)
			case *ast.FuncDecl:
				checkNameMethod(pass, n)
			}
			return true
		})
	}
	return nil
}

func checkRegistration(pass *Pass, seen map[string]map[string]token.Position, call *ast.CallExpr) {
	fn := calleeFunc(pass, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	spec, ok := registrars[fn.Pkg().Path()+"."+fn.Name()]
	if !ok || len(call.Args) == 0 {
		return
	}
	arg := call.Args[0]
	name, namePos, ok := registrationName(pass, spec, arg)
	if !ok {
		return // dynamic name: registration plumbing, checked at its literal call sites
	}
	if !spec.re.MatchString(name) {
		pass.Reportf(namePos, "%s name %q is not canonical (want %s)", spec.registry, name, spec.want)
	}
	names := seen[spec.registry]
	if names == nil {
		names = map[string]token.Position{}
		seen[spec.registry] = names
	}
	if first, dup := names[name]; dup {
		pass.Reportf(namePos, "%s %q registered twice (first at %s); registry init would panic", spec.registry, name, first)
		return
	}
	names[name] = pass.Pkg.Fset.Position(namePos)
}

// registrationName extracts the statically-known registered name: the
// constant first argument, or — for RegisterProperty, whose argument is a
// value registered under its Name() — the constant PropName of a
// PropertyFunc composite literal.
func registrationName(pass *Pass, spec registrySpec, arg ast.Expr) (string, token.Pos, bool) {
	if name, ok := constString(pass, arg); ok {
		return name, arg.Pos(), true
	}
	if spec.registry != "property" {
		return "", token.NoPos, false
	}
	e := ast.Unparen(arg)
	if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.AND {
		e = ast.Unparen(u.X)
	}
	cl, ok := e.(*ast.CompositeLit)
	if !ok || len(cl.Elts) == 0 {
		return "", token.NoPos, false
	}
	for _, elt := range cl.Elts {
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			if key, ok := kv.Key.(*ast.Ident); ok && key.Name == "PropName" {
				if name, ok := constString(pass, kv.Value); ok {
					return name, kv.Value.Pos(), true
				}
			}
			continue
		}
	}
	// Positional PropertyFunc literal: the name is the first field.
	if _, isKV := cl.Elts[0].(*ast.KeyValueExpr); !isKV {
		if name, ok := constString(pass, cl.Elts[0]); ok {
			return name, cl.Elts[0].Pos(), true
		}
	}
	return "", token.NoPos, false
}

func constString(pass *Pass, e ast.Expr) (string, bool) {
	tv, ok := pass.Pkg.Info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

func calleeFunc(pass *Pass, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := pass.ObjectOf(fun).(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := pass.ObjectOf(fun.Sel).(*types.Func)
		return fn
	}
	return nil
}

// checkNameMethod holds literal Name() returns of registry-owning packages
// to their registry's convention.
func checkNameMethod(pass *Pass, fd *ast.FuncDecl) {
	if fd.Recv == nil || fd.Name.Name != "Name" || fd.Body == nil {
		return
	}
	spec, ok := nameMethodSpec(pass.Pkg.Path)
	if !ok {
		return
	}
	if fd.Type.Results == nil || len(fd.Type.Results.List) != 1 {
		return
	}
	if len(fd.Body.List) != 1 {
		return
	}
	ret, ok := fd.Body.List[0].(*ast.ReturnStmt)
	if !ok || len(ret.Results) != 1 {
		return
	}
	name, ok := constString(pass, ret.Results[0])
	if !ok {
		return // dynamic names (fmt-built) are out of static reach
	}
	if !spec.re.MatchString(name) {
		pass.Reportf(ret.Results[0].Pos(), "Name() %q is not canonical for the %s registry (want %s)", name, spec.registry, spec.want)
	}
}

func nameMethodSpec(path string) (registrySpec, bool) {
	for _, entry := range nameMethodPkgs {
		prefix := entry.prefix
		if path == prefix || len(path) > len(prefix) && path[:len(prefix)] == prefix && path[len(prefix)] == '/' {
			return entry.spec, true
		}
	}
	return registrySpec{}, false
}

// Package analysis is a small, standard-library-only static-analysis
// framework plus the repository's own analyzers (the "dplint" suite). The
// repository's core guarantees — deterministic results at any worker count,
// allocation-flat hot paths, unsafe confined to the intern arena, canonical
// registry names — are enforced dynamically by equivalence grids and
// allocation budgets; the analyzers in this package prove the underlying
// mechanisms at the AST/type level on every commit, before a violation can
// ship and hope to be caught by a grid.
//
// The framework deliberately mirrors the shape of golang.org/x/tools'
// go/analysis (Analyzer, Pass, positional diagnostics, a testdata harness
// driven by "// want" comments) without importing it: the module has zero
// dependencies and keeps it that way. Packages are parsed and type-checked
// once by Loader and shared by every analyzer.
//
// # Suppression
//
// A diagnostic is suppressed by an annotation on the flagged line or the
// line directly above it:
//
//	//dplint:ok <analyzer> <reason>
//
// The reason is mandatory and the analyzer name must exist; a malformed or
// unused annotation is itself reported, so stale suppressions cannot
// accumulate silently.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named check. Run inspects a single type-checked package
// and reports findings through the Pass; the driver handles suppression,
// ordering and aggregation. Analyzers carrying cross-package state (the
// registry-uniqueness check) are constructed fresh per driver run by
// NewAnalyzers.
type Analyzer struct {
	// Name is the analyzer's short name, used in diagnostics and in
	// //dplint:ok annotations.
	Name string
	// Doc is a one-line description of the enforced invariant.
	Doc string
	// Run inspects pkg and reports findings via pass.Reportf.
	Run func(pass *Pass) error
}

// Pass is one analyzer's view of one loaded package.
type Pass struct {
	// Pkg is the parsed and type-checked package under analysis.
	Pkg *Package
	// Analyzer is the analyzer this pass runs.
	Analyzer *Analyzer

	sink *sink
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.sink.add(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Pkg.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of expression e, or nil if unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Pkg.Info.TypeOf(e) }

// ObjectOf returns the object denoted by identifier id (definition or use),
// or nil.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object { return p.Pkg.Info.ObjectOf(id) }

// Diagnostic is one finding, positioned for file:line:col reporting.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// sink collects diagnostics from all passes of one driver run.
type sink struct {
	diags []Diagnostic
}

func (s *sink) add(d Diagnostic) { s.diags = append(s.diags, d) }

// suppression is one parsed //dplint:ok annotation.
type suppression struct {
	analyzer string
	reason   string
	pos      token.Position
	used     bool
}

// suppressionPrefix starts every suppression comment.
const suppressionPrefix = "//dplint:ok"

// collectSuppressions parses the //dplint:ok annotations of a package into a
// per-(file, line) index.
func collectSuppressions(pkg *Package) map[string][]*suppression {
	idx := make(map[string][]*suppression)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, suppressionPrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, suppressionPrefix)
				fields := strings.Fields(rest)
				s := &suppression{pos: pkg.Fset.Position(c.Pos())}
				if len(fields) > 0 {
					s.analyzer = fields[0]
					s.reason = strings.TrimSpace(strings.Join(fields[1:], " "))
				}
				key := lineKey(s.pos.Filename, s.pos.Line)
				idx[key] = append(idx[key], s)
			}
		}
	}
	return idx
}

func lineKey(file string, line int) string { return fmt.Sprintf("%s:%d", file, line) }

// Run executes the analyzers over the packages and returns the surviving
// diagnostics in deterministic (file, line, column, analyzer) order. A
// diagnostic is dropped when a matching //dplint:ok annotation sits on its
// line or the line directly above; malformed (missing reason, unknown
// analyzer) and unused annotations are reported as "dplint" diagnostics so
// the suppression inventory stays accurate.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	var out []Diagnostic
	for _, pkg := range pkgs {
		supp := collectSuppressions(pkg)
		s := &sink{}
		for _, a := range analyzers {
			pass := &Pass{Pkg: pkg, Analyzer: a, sink: s}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.Path, err)
			}
		}
		for _, d := range s.diags {
			if sp := matchSuppression(supp, d); sp != nil {
				sp.used = true
				continue
			}
			out = append(out, d)
		}
		// Annotation hygiene: every annotation must name a real analyzer,
		// carry a reason, and suppress something.
		var anns []*suppression
		for _, list := range supp {
			anns = append(anns, list...)
		}
		sort.Slice(anns, func(i, j int) bool { return positionLess(anns[i].pos, anns[j].pos) })
		for _, sp := range anns {
			switch {
			case !known[sp.analyzer]:
				out = append(out, Diagnostic{
					Analyzer: "dplint", Pos: sp.pos,
					Message: fmt.Sprintf("//dplint:ok names unknown analyzer %q (known: %s)", sp.analyzer, analyzerNames(analyzers)),
				})
			case sp.reason == "":
				out = append(out, Diagnostic{
					Analyzer: "dplint", Pos: sp.pos,
					Message: fmt.Sprintf("//dplint:ok %s needs a reason: //dplint:ok %s <why the finding is safe>", sp.analyzer, sp.analyzer),
				})
			case !sp.used:
				out = append(out, Diagnostic{
					Analyzer: "dplint", Pos: sp.pos,
					Message: fmt.Sprintf("unused suppression: %s reports nothing on the next line (stale //dplint:ok)", sp.analyzer),
				})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if positionLess(out[i].Pos, out[j].Pos) {
			return true
		}
		if positionLess(out[j].Pos, out[i].Pos) {
			return false
		}
		if out[i].Analyzer != out[j].Analyzer {
			return out[i].Analyzer < out[j].Analyzer
		}
		return out[i].Message < out[j].Message
	})
	return out, nil
}

// matchSuppression returns the first annotation covering d: same analyzer,
// same file, on d's line or the line directly above.
func matchSuppression(idx map[string][]*suppression, d Diagnostic) *suppression {
	for _, line := range [2]int{d.Pos.Line, d.Pos.Line - 1} {
		for _, sp := range idx[lineKey(d.Pos.Filename, line)] {
			if sp.analyzer == d.Analyzer && sp.reason != "" {
				return sp
			}
		}
	}
	return nil
}

func positionLess(a, b token.Position) bool {
	if a.Filename != b.Filename {
		return a.Filename < b.Filename
	}
	if a.Line != b.Line {
		return a.Line < b.Line
	}
	return a.Column < b.Column
}

func analyzerNames(analyzers []*Analyzer) string {
	names := make([]string, len(analyzers))
	for i, a := range analyzers {
		names[i] = a.Name
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

// NewAnalyzers returns a fresh instance of the full dplint suite. Instances
// must not be shared between driver runs: registryname accumulates the
// cross-package name→site map of one run.
func NewAnalyzers() []*Analyzer {
	return []*Analyzer{
		NewMapOrder(),
		NewDetSource(),
		NewHotAlloc(),
		NewUnsafeAudit(),
		NewRegistryName(),
	}
}

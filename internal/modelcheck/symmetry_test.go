package modelcheck

import (
	"testing"

	"repro/internal/algo"
	"repro/internal/graph"
	"repro/internal/sim"
)

// mustCanon builds the full-group canonicalizer of a topology.
func mustCanon(t *testing.T, topo *graph.Topology, opts graph.CanonOptions) *graph.OrbitCanonicalizer {
	t.Helper()
	c, err := graph.NewOrbitCanonicalizer(topo, opts)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestSymmetryReducesStateCount pins the headline reduction: quotienting
// ring-n by its dihedral group shrinks the LR1 state space by at least n (the
// rotation factor; most orbits also merge their reflections, approaching 2n).
func TestSymmetryReducesStateCount(t *testing.T) {
	t.Parallel()
	for _, n := range []int{3, 4, 5} {
		topo := graph.Ring(n)
		prog, err := algo.New("LR1", algo.Options{})
		if err != nil {
			t.Fatal(err)
		}
		plain, err := Explore(topo, prog, Options{})
		if err != nil {
			t.Fatal(err)
		}
		quot, err := Explore(topo, prog, Options{Symmetry: mustCanon(t, topo, graph.CanonOptions{})})
		if err != nil {
			t.Fatal(err)
		}
		if !quot.Symmetric() || quot.Canonicalizer() == nil {
			t.Fatalf("ring-%d: quotient space does not report Symmetric", n)
		}
		if plain.Symmetric() {
			t.Fatalf("ring-%d: unreduced space reports Symmetric", n)
		}
		ratio := float64(plain.NumStates()) / float64(quot.NumStates())
		t.Logf("ring-%d LR1: %d -> %d states (%.2fx)", n, plain.NumStates(), quot.NumStates(), ratio)
		if ratio < float64(n) {
			t.Errorf("ring-%d: reduction %.2fx below the rotation factor %d", n, ratio, n)
		}
	}
}

// TestSymmetryDeterministicAcrossWorkersAndShards pins the quotient's dense
// numbering, retained canonical keys, representative keys and counterexample
// paths to be identical for every (workers, shards) configuration — the same
// determinism contract the unreduced exploration has.
func TestSymmetryDeterministicAcrossWorkersAndShards(t *testing.T) {
	t.Parallel()
	topo := graph.Ring(4)
	prog, err := algo.New("LR1", algo.Options{})
	if err != nil {
		t.Fatal(err)
	}
	canon := mustCanon(t, topo, graph.CanonOptions{})
	explore := func(workers, shards int) *StateSpace {
		ss, err := Explore(topo, prog, Options{Symmetry: canon, KeepKeys: true, Workers: workers, Shards: shards})
		if err != nil {
			t.Fatal(err)
		}
		return ss
	}
	ref := explore(1, 1)
	refTrap := ref.FindStarvationTrap()
	for _, cfg := range [][2]int{{2, 4}, {4, 1}, {8, 8}} {
		ss := explore(cfg[0], cfg[1])
		if ss.NumStates() != ref.NumStates() {
			t.Fatalf("workers=%d shards=%d: %d states, want %d", cfg[0], cfg[1], ss.NumStates(), ref.NumStates())
		}
		for s := 0; s < ref.NumStates(); s++ {
			if ss.KeyOf(s) != ref.KeyOf(s) {
				t.Fatalf("workers=%d shards=%d: canonical key of state %d differs", cfg[0], cfg[1], s)
			}
			if ss.RepresentativeKeyOf(s) != ref.RepresentativeKeyOf(s) {
				t.Fatalf("workers=%d shards=%d: representative key of state %d differs", cfg[0], cfg[1], s)
			}
		}
		trap := ss.FindStarvationTrap()
		if trap.Exists != refTrap.Exists || trap.WitnessState != refTrap.WitnessState || trap.States != refTrap.States {
			t.Errorf("workers=%d shards=%d: trap analysis differs from sequential", cfg[0], cfg[1])
		}
	}
}

// TestSymmetryRepresentativeKeys checks the stored representative worlds:
// each dense state's representative plain key must canonicalize to the
// state's canonical key, and the initial state (group-invariant) must be its
// own representative.
func TestSymmetryRepresentativeKeys(t *testing.T) {
	t.Parallel()
	topo := graph.Ring(3)
	prog, err := algo.New("LR2", algo.Options{})
	if err != nil {
		t.Fatal(err)
	}
	canon := mustCanon(t, topo, graph.CanonOptions{})
	ss, err := Explore(topo, prog, Options{Symmetry: canon, KeepKeys: true})
	if err != nil {
		t.Fatal(err)
	}
	w0 := sim.NewWorld(topo)
	prog.Init(w0)
	if got, want := ss.RepresentativeKeyOf(ss.Initial()), string(w0.AppendKey(nil)); got != want {
		t.Errorf("initial representative is not the initial world")
	}
	if got, want := ss.KeyOf(ss.Initial()), string(w0.AppendCanonicalKey(canon, nil)); got != want {
		t.Errorf("initial canonical key mismatch")
	}
	// Without KeepKeys no representatives are retained.
	bare, err := Explore(topo, prog, Options{Symmetry: canon})
	if err != nil {
		t.Fatal(err)
	}
	if bare.RepresentativeKeyOf(0) != "" {
		t.Errorf("RepresentativeKeyOf without KeepKeys = %q, want \"\"", bare.RepresentativeKeyOf(0))
	}
}

// TestSymmetryTopologyMismatch pins the validation error: a canonicalizer
// built for one topology must be rejected by an exploration of another.
func TestSymmetryTopologyMismatch(t *testing.T) {
	t.Parallel()
	prog, err := algo.New("LR1", algo.Options{})
	if err != nil {
		t.Fatal(err)
	}
	canon := mustCanon(t, graph.Ring(4), graph.CanonOptions{})
	if _, err := Explore(graph.Ring(3), prog, Options{Symmetry: canon}); err == nil {
		t.Fatal("Explore accepted a canonicalizer of the wrong topology")
	}
}

// TestSymmetryTrivialGroupMatchesPlain checks that a trivial canonicalizer
// (asymmetric topology) is normalized away: the space is bit-compatible with
// the unreduced exploration and does not report Symmetric.
func TestSymmetryTrivialGroupMatchesPlain(t *testing.T) {
	t.Parallel()
	topo := graph.Theorem2Minimal()
	prog, err := algo.New("LR1", algo.Options{})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Explore(topo, prog, Options{KeepKeys: true})
	if err != nil {
		t.Fatal(err)
	}
	quot, err := Explore(topo, prog, Options{KeepKeys: true, Symmetry: mustCanon(t, topo, graph.CanonOptions{})})
	if err != nil {
		t.Fatal(err)
	}
	if quot.Symmetric() {
		t.Fatal("trivial group not normalized away")
	}
	if quot.NumStates() != plain.NumStates() {
		t.Fatalf("trivial quotient has %d states, plain %d", quot.NumStates(), plain.NumStates())
	}
	for s := 0; s < plain.NumStates(); s++ {
		if quot.KeyOf(s) != plain.KeyOf(s) {
			t.Fatalf("trivial quotient key of state %d differs from plain", s)
		}
	}
}

// TestSymmetryTruncationDeterministic checks that a state cap truncates the
// quotient exploration at the same orbit for every (workers, shards)
// configuration, and that the truncated space stays analyzable.
func TestSymmetryTruncationDeterministic(t *testing.T) {
	t.Parallel()
	topo := graph.Ring(4)
	prog, err := algo.New("LR2", algo.Options{})
	if err != nil {
		t.Fatal(err)
	}
	canon := mustCanon(t, topo, graph.CanonOptions{})
	const cap = 700
	ref, err := Explore(topo, prog, Options{Symmetry: canon, KeepKeys: true, MaxStates: cap, Workers: 1, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !ref.Truncated {
		t.Fatalf("cap %d did not truncate (got %d states); the test needs a truncated run", cap, ref.NumStates())
	}
	for _, cfg := range [][2]int{{2, 4}, {4, 2}} {
		ss, err := Explore(topo, prog, Options{Symmetry: canon, KeepKeys: true, MaxStates: cap, Workers: cfg[0], Shards: cfg[1]})
		if err != nil {
			t.Fatal(err)
		}
		if !ss.Truncated || ss.NumStates() != ref.NumStates() {
			t.Fatalf("workers=%d shards=%d: truncated=%v states=%d, want truncated=true states=%d",
				cfg[0], cfg[1], ss.Truncated, ss.NumStates(), ref.NumStates())
		}
		for s := 0; s < ref.NumStates(); s++ {
			if ss.KeyOf(s) != ref.KeyOf(s) {
				t.Fatalf("workers=%d shards=%d: truncated key sequence diverges at state %d", cfg[0], cfg[1], s)
			}
		}
	}
	// The truncated quotient is still a well-formed view: the analyses run.
	ref.Reachable()
	ref.FindStarvationTrap()
}

// TestSymmetryExploreAllocsPerState pins the allocation budget of the
// quotient hot path: permute-and-compare into the pooled scratch buffer must
// not add per-state heap allocations beyond the unreduced explorer's budget
// (small headroom for the pool bookkeeping and group tables).
func TestSymmetryExploreAllocsPerState(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation counting skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("sync.Pool randomizes caching under the race detector, so allocation counts are meaningless")
	}
	const maxAllocsPerState = 3.0
	topo := graph.Ring(4)
	prog, err := algo.New("LR1", algo.Options{})
	if err != nil {
		t.Fatal(err)
	}
	canon := mustCanon(t, topo, graph.CanonOptions{})
	opts := Options{Symmetry: canon, Workers: 1, Shards: 1}
	ss, err := Explore(topo, prog, opts)
	if err != nil {
		t.Fatal(err)
	}
	states := float64(ss.NumStates())
	allocs := testing.AllocsPerRun(3, func() {
		if _, err := Explore(topo, prog, opts); err != nil {
			t.Fatal(err)
		}
	})
	perState := allocs / states
	t.Logf("ring-4 LR1 quotient: %.0f states, %.0f allocs, %.2f allocs/state", states, allocs, perState)
	if perState > maxAllocsPerState {
		t.Errorf("quotient exploration allocates %.2f per state, over the %.1f budget", perState, maxAllocsPerState)
	}
}

package modelcheck

import (
	"reflect"
	"testing"

	"repro/internal/algo"
	"repro/internal/graph"
	"repro/internal/graphalg/graphalgtest"
)

// TestWorklistMatchesReferenceFixpoint is the equivalence grid for the
// worklist analysis engine: every registered topology × every registered
// algorithm, explored at the constructors' small default sizes with a state
// cap that leaves the large cells truncated (so the unexpanded-state handling
// is exercised too), decided twice — by the live worklist algorithms over the
// shared predecessor index and by the retained reference sweeps of
// graphalgtest — and compared field by field. Deadlock and dead-region state
// lists, trap verdicts, safe-region sizes, witness states, witness keys and
// covered-philosopher sets must all be byte-identical; on trap-positive cells
// the counterexample traces extracted from the two witnesses must match too.
//
// A second pass re-checks the per-philosopher trap analyses (the
// lockout-freedom fan-out) on the smaller cells: one shared index, one
// labelling per philosopher, against one reference sweep each.
func TestWorklistMatchesReferenceFixpoint(t *testing.T) {
	t.Parallel()
	maxStates := 2500
	if testing.Short() {
		maxStates = 1200
	}
	truncatedCells := 0
	for _, topoName := range graph.TopologyNames() {
		for _, algName := range algo.Names() {
			topo, err := graph.NewTopology(topoName, 0)
			if err != nil {
				t.Fatal(err)
			}
			prog, err := algo.New(algName, algo.Options{})
			if err != nil {
				t.Fatal(err)
			}
			ss, err := Explore(topo, prog, Options{MaxStates: maxStates, KeepKeys: true})
			if err != nil {
				t.Fatalf("%s on %s: %v", algName, topoName, err)
			}
			if ss.Truncated {
				truncatedCells++
			}
			cell := algName + " on " + topoName

			if got, want := ss.DeadlockStates(), graphalgtest.DeadlockStates(ss); !reflect.DeepEqual(got, want) {
				t.Errorf("%s: DeadlockStates = %v, reference %v", cell, got, want)
			}
			goal := func(s int) bool { return ss.anyEating[s] }
			if got, want := ss.DeadRegionStates(), graphalgtest.DeadRegionStates(ss, goal); !reflect.DeepEqual(got, want) {
				t.Errorf("%s: DeadRegionStates = %v, reference %v", cell, got, want)
			}
			got := ss.FindStarvationTrap()
			want := ss.trapFrom(graphalgtest.MaximalTrap(ss, ss.Bad))
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%s: trap diverged:\n got  %+v\n want %+v", cell, got, want)
			}
			if got.Exists && got.WitnessState == want.WitnessState {
				// Same witness, same extractor — but pin the full trace
				// anyway, so a regression in either layer shows up as a
				// trace diff rather than a silent verdict drift.
				ctGot, err := ss.CounterexampleTo("starvation-trap", got.WitnessState)
				if err != nil {
					t.Errorf("%s: counterexample from worklist witness: %v", cell, err)
					continue
				}
				ctWant, err := ss.CounterexampleTo("starvation-trap", want.WitnessState)
				if err != nil {
					t.Errorf("%s: counterexample from reference witness: %v", cell, err)
					continue
				}
				if !reflect.DeepEqual(ctGot, ctWant) {
					t.Errorf("%s: counterexample traces diverged", cell)
				}
			}
		}
	}
	if truncatedCells == 0 {
		t.Errorf("no grid cell truncated at MaxStates %d; the grid no longer exercises unexpanded states", maxStates)
	}

	// Per-philosopher pass: the lockout-freedom labellings over one shared
	// index on the two minimal theorem topologies.
	for _, tc := range []struct {
		topo *graph.Topology
		alg  string
	}{
		{graph.Theorem2Minimal(), "LR1"},
		{graph.Theorem2Minimal(), "GDP1"},
		{graph.Theorem1Minimal(), "LR1"},
	} {
		prog, err := algo.New(tc.alg, algo.Options{})
		if err != nil {
			t.Fatal(err)
		}
		ss, err := Explore(tc.topo, prog, Options{KeepKeys: true})
		if err != nil {
			t.Fatal(err)
		}
		for p := 0; p < ss.NumPhils; p++ {
			got, err := ss.FindStarvationTrapAgainst([]graph.PhilID{graph.PhilID(p)})
			if err != nil {
				t.Fatal(err)
			}
			mask := uint64(1) << uint(p)
			want := ss.trapFrom(graphalgtest.MaximalTrap(ss, func(s int) bool { return ss.eating[s]&mask != 0 }))
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%s on %s, philosopher %d: trap diverged:\n got  %+v\n want %+v",
					tc.alg, tc.topo.Name(), p, got, want)
			}
		}
	}
}

package modelcheck

import (
	"testing"

	"repro/internal/algo"
	"repro/internal/graph"
)

// TestAnalysesAllocBudget asserts that every graphalg analysis performs zero
// per-state heap allocations on a warm predecessor index: the index is built
// once, each analysis runs once to warm the scratch pool, and the measured
// allocations per run must then not scale with the state count — only the
// O(1) result slices and pool bookkeeping remain. This subsumes the old
// SCC successor-enumeration complaint (one slice per visited state) and
// guards the worklist layer against regressing into per-state garbage.
func TestAnalysesAllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation counting skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("sync.Pool randomizes caching under the race detector, so allocation counts are meaningless")
	}
	// 0.02 allocs/state on the smallest instance (376 states) allows ~7
	// allocations per analysis — result slices, pool Get bookkeeping, the
	// Tarjan closure — while any per-state allocation blows the budget.
	const maxAllocsPerState = 0.02
	for _, tc := range []struct {
		topo *graph.Topology
		alg  string
	}{
		{graph.Theorem2Minimal(), "LR1"},
		{graph.Theorem1Minimal(), "LR1"},
		{graph.Theorem2Minimal(), "LR2"},
	} {
		prog, err := algo.New(tc.alg, algo.Options{})
		if err != nil {
			t.Fatal(err)
		}
		ss, err := Explore(tc.topo, prog, Options{Workers: 1, Shards: 1})
		if err != nil {
			t.Fatal(err)
		}
		ix := ss.PredecessorIndex()
		states := float64(ss.NumStates())
		for _, an := range []struct {
			name string
			run  func()
		}{
			{"Reachable", func() { ix.Reachable() }},
			{"DeadlockStates", func() { ix.DeadlockStates() }},
			{"DeadRegionStates", func() { ix.DeadRegionStates(ss.Bad) }},
			{"MaximalTrap", func() { ix.MaximalTrap(ss.Bad) }},
		} {
			an.run() // warm the scratch pool
			allocs := testing.AllocsPerRun(5, an.run)
			perState := allocs / states
			t.Logf("%s on %s: %s: %.1f allocs over %.0f states (%.4f allocs/state)",
				tc.alg, tc.topo.Name(), an.name, allocs, states, perState)
			if perState > maxAllocsPerState {
				t.Errorf("%s on %s: %s allocates %.4f per state, over the %.2f budget — a per-state allocation crept back in",
					tc.alg, tc.topo.Name(), an.name, perState, maxAllocsPerState)
			}
		}
	}
}

// TestExploreAllocsPerState is the allocation-regression guard for the
// sequential (workers=1, shards=1) exploration path. The intern-key
// byte-arena (one amortized chunk instead of one string copy per state) and
// the frontier world free-list (revisit clones and expanded frontier worlds
// recycle their backing slices) brought Explore from ~6 allocations per
// state down to under 2; this test pins that budget so a refactor that
// reintroduces per-state copies shows up immediately.
func TestExploreAllocsPerState(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation counting skipped in -short mode")
	}
	const maxAllocsPerState = 2.5
	for _, tc := range []struct {
		topo *graph.Topology
		alg  string
	}{
		{graph.Ring(3), "LR1"},
		{graph.Theorem2Minimal(), "LR1"},
		{graph.Theorem2Minimal(), "GDP1"},
	} {
		prog, err := algo.New(tc.alg, algo.Options{})
		if err != nil {
			t.Fatal(err)
		}
		ss, err := Explore(tc.topo, prog, Options{Workers: 1, Shards: 1})
		if err != nil {
			t.Fatal(err)
		}
		states := float64(ss.NumStates())
		allocs := testing.AllocsPerRun(3, func() {
			if _, err := Explore(tc.topo, prog, Options{Workers: 1, Shards: 1}); err != nil {
				t.Fatal(err)
			}
		})
		perState := allocs / states
		t.Logf("%s on %s: %.0f states, %.0f allocs, %.2f allocs/state", tc.alg, tc.topo.Name(), states, allocs, perState)
		if perState > maxAllocsPerState {
			t.Errorf("%s on %s: %.2f allocs/state exceeds the %.1f budget",
				tc.alg, tc.topo.Name(), perState, maxAllocsPerState)
		}
	}
}

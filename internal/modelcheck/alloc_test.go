package modelcheck

import (
	"testing"

	"repro/internal/algo"
	"repro/internal/graph"
)

// TestExploreAllocsPerState is the allocation-regression guard for the
// sequential (workers=1, shards=1) exploration path. The intern-key
// byte-arena (one amortized chunk instead of one string copy per state) and
// the frontier world free-list (revisit clones and expanded frontier worlds
// recycle their backing slices) brought Explore from ~6 allocations per
// state down to under 2; this test pins that budget so a refactor that
// reintroduces per-state copies shows up immediately.
func TestExploreAllocsPerState(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation counting skipped in -short mode")
	}
	const maxAllocsPerState = 2.5
	for _, tc := range []struct {
		topo *graph.Topology
		alg  string
	}{
		{graph.Ring(3), "LR1"},
		{graph.Theorem2Minimal(), "LR1"},
		{graph.Theorem2Minimal(), "GDP1"},
	} {
		prog, err := algo.New(tc.alg, algo.Options{})
		if err != nil {
			t.Fatal(err)
		}
		ss, err := Explore(tc.topo, prog, Options{Workers: 1, Shards: 1})
		if err != nil {
			t.Fatal(err)
		}
		states := float64(ss.NumStates())
		allocs := testing.AllocsPerRun(3, func() {
			if _, err := Explore(tc.topo, prog, Options{Workers: 1, Shards: 1}); err != nil {
				t.Fatal(err)
			}
		})
		perState := allocs / states
		t.Logf("%s on %s: %.0f states, %.0f allocs, %.2f allocs/state", tc.alg, tc.topo.Name(), states, allocs, perState)
		if perState > maxAllocsPerState {
			t.Errorf("%s on %s: %.2f allocs/state exceeds the %.1f budget",
				tc.alg, tc.topo.Name(), perState, maxAllocsPerState)
		}
	}
}

package modelcheck

// This file binds the generic analyses of internal/graphalg to the explored
// dining MDP. StateSpace implements graphalg.StateView over its dense
// numbering (see explore.go), and every analysis here runs as a worklist
// algorithm over the space's cached reverse-CSR predecessor index
// (PredecessorIndex) — built once, in parallel, and shared by all properties
// of one Engine.Check run; the graph and game algorithms themselves have no
// knowledge of this package. All analyses are pure reads of the state space
// plus pooled per-call scratch, and safe to run concurrently over one shared
// StateSpace — the lockout-freedom property exploits that by fanning its
// per-philosopher trap analyses across workers over the one shared index.

// Reachable returns the set of states reachable from the initial state using
// any actions and any outcomes, as a boolean slice indexed by state.
func (ss *StateSpace) Reachable() []bool {
	return ss.PredecessorIndex().Reachable()
}

// EatReachableFromEverywhere reports whether, from every reachable state, a
// state in which some philosopher is eating remains reachable (existentially
// over scheduling and randomness). A false answer exhibits a true dead end:
// a region from which no meal can ever happen again under any scheduling —
// for example the hold-and-wait deadlock of the colored-philosophers baseline
// on an odd ring.
func (ss *StateSpace) EatReachableFromEverywhere() bool {
	return len(ss.DeadRegionStates()) == 0
}

// DeadRegionStates returns the reachable states from which no eating state is
// reachable under any scheduling and any random outcomes — a reverse BFS
// from the eating states over the predecessor index.
func (ss *StateSpace) DeadRegionStates() []int {
	return ss.PredecessorIndex().DeadRegionStates(func(s int) bool { return ss.anyEating[s] })
}

// DeadlockStates returns the reachable states in which every action of every
// philosopher is a self-loop: the system can never change state again. The
// paper's algorithms have none; the naive hold-and-wait baselines do.
func (ss *StateSpace) DeadlockStates() []int {
	return ss.PredecessorIndex().DeadlockStates()
}

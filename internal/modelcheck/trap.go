package modelcheck

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/graphalg"
)

// Trap describes a "starvation trap": an end component of the sub-MDP in
// which no protected philosopher ever eats, offering an allowed action for
// every philosopher.
//
// Interpretation (see the package comment): if Exists and Reachable are true,
// a fair adversary can — with positive probability — confine the system to
// the trap forever, scheduling every philosopher infinitely often while no
// protected philosopher ever eats. This is precisely the negative result of
// Theorems 1 and 2. If no trap exists anywhere in the reachable state space,
// no fair adversary can starve the protected set forever on this instance
// with positive probability by staying in a fixed recurrent pattern — the
// structure behind Theorems 3 and 4.
//
// Trap is the dining-flavoured form of graphalg.Trap: actions are named as
// philosophers and the witness carries its canonical key when available.
type Trap struct {
	// Exists reports whether a fully covered end component exists within the
	// reachable safe region.
	Exists bool
	// Reachable reports whether some state of the trap is reachable from the
	// initial state (with positive probability under some scheduling).
	Reachable bool
	// States is the number of states in the largest fully covered trap found.
	States int
	// SafeRegionStates is the number of reachable states in which the
	// adversary has at least one move that surely avoids an immediate meal
	// forever (the greatest safe region of the safety game).
	SafeRegionStates int
	// WitnessState is the minimum state index over every fully covered trap
	// (indices are discovery order, so this is the shallowest trap state
	// found), or -1 when no trap exists. It is the anchor for counterexample
	// extraction (StateSpace.CounterexampleTo), which therefore lifts the
	// shortest concrete witness path.
	WitnessState int
	// WitnessKey is the canonical key of one state inside the trap (empty
	// when none exists or when the exploration did not retain keys — see
	// Options.KeepKeys); useful for debugging and for replaying the pattern.
	WitnessKey string
	// CoveredPhilosophers lists, for the largest candidate end component
	// found, which philosophers have an allowed action somewhere inside it.
	// When Exists is false this explains what was missing.
	CoveredPhilosophers []graph.PhilID
}

// FindStarvationTrap analyses the explored state space for a starvation trap
// against the protected set that was configured at exploration time. The
// three-step computation (safety game, maximal end components, philosopher
// coverage) runs as worklist algorithms over the space's cached predecessor
// index; see graphalg.PredecessorIndex.MaximalTrap.
func (ss *StateSpace) FindStarvationTrap() Trap {
	return ss.trapFrom(ss.PredecessorIndex().MaximalTrap(ss.Bad))
}

// FindStarvationTrapAgainst re-runs the trap analysis against an arbitrary
// protected set — nil or empty means every philosopher — using the per-state
// eating bitmasks recorded during exploration. It is what the lockout-freedom
// property uses to test each philosopher individually without re-exploring:
// every call shares the space's one cached predecessor index and draws its
// mutable state from the index's scratch pool, so the per-philosopher calls
// may run concurrently over one shared StateSpace without rebuilding any
// per-analysis state. It returns an error on instances with more than 64
// philosophers (which carry no masks) or an out-of-range philosopher.
func (ss *StateSpace) FindStarvationTrapAgainst(protected []graph.PhilID) (Trap, error) {
	if ss.eating == nil {
		return Trap{}, fmt.Errorf("modelcheck: per-set trap analysis needs the eating bitmasks, which cover at most %d philosophers (topology has %d)", maskablePhils, ss.NumPhils)
	}
	var mask uint64
	if len(protected) == 0 {
		mask = ^uint64(0) >> (maskablePhils - ss.NumPhils)
	} else {
		for _, p := range protected {
			if int(p) < 0 || int(p) >= ss.NumPhils {
				return Trap{}, fmt.Errorf("modelcheck: protected philosopher %d out of range [0, %d)", p, ss.NumPhils)
			}
			mask |= 1 << uint(p)
		}
	}
	bad := func(s int) bool { return ss.eating[s]&mask != 0 }
	return ss.trapFrom(ss.PredecessorIndex().MaximalTrap(bad)), nil
}

// trapFrom converts a generic graphalg trap into the dining form, attaching
// the witness key when the exploration retained keys.
func (ss *StateSpace) trapFrom(t graphalg.Trap) Trap {
	out := Trap{
		Exists:           t.Exists,
		Reachable:        t.Reachable,
		States:           t.States,
		SafeRegionStates: t.SafeRegionStates,
		WitnessState:     t.WitnessState,
	}
	if len(t.CoveredActions) > 0 {
		out.CoveredPhilosophers = make([]graph.PhilID, len(t.CoveredActions))
		for i, a := range t.CoveredActions {
			out.CoveredPhilosophers[i] = graph.PhilID(a)
		}
	}
	if t.Exists {
		out.WitnessKey = ss.KeyOf(t.WitnessState)
	}
	return out
}

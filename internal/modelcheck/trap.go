package modelcheck

import (
	"fmt"
	"sort"

	"repro/internal/graph"
)

// Trap describes a "starvation trap": an end component of the sub-MDP in
// which no protected philosopher ever eats, offering an allowed action for
// every philosopher.
//
// Interpretation (see the package comment): if Exists and Reachable are true,
// a fair adversary can — with positive probability — confine the system to
// the trap forever, scheduling every philosopher infinitely often while no
// protected philosopher ever eats. This is precisely the negative result of
// Theorems 1 and 2. If no trap exists anywhere in the reachable state space,
// no fair adversary can starve the protected set forever on this instance
// with positive probability by staying in a fixed recurrent pattern — the
// structure behind Theorems 3 and 4.
type Trap struct {
	// Exists reports whether a fully covered end component exists within the
	// reachable safe region.
	Exists bool
	// Reachable reports whether some state of the trap is reachable from the
	// initial state (with positive probability under some scheduling).
	Reachable bool
	// States is the number of states in the largest fully covered trap found.
	States int
	// SafeRegionStates is the number of reachable states in which the
	// adversary has at least one move that surely avoids an immediate meal
	// forever (the greatest safe region of the safety game).
	SafeRegionStates int
	// WitnessState is the index of one state inside the trap, or -1 when no
	// trap exists. It is the anchor for counterexample extraction
	// (StateSpace.CounterexampleTo).
	WitnessState int
	// WitnessKey is the canonical key of one state inside the trap (empty
	// when none exists or when the exploration did not retain keys — see
	// Options.KeepKeys); useful for debugging and for replaying the pattern.
	WitnessKey string
	// CoveredPhilosophers lists, for the largest candidate end component
	// found, which philosophers have an allowed action somewhere inside it.
	// When Exists is false this explains what was missing.
	CoveredPhilosophers []graph.PhilID
}

// FindStarvationTrap analyses the explored state space for a starvation trap
// against the protected set that was configured at exploration time.
//
// The computation proceeds in three standard steps:
//
//  1. Safety game: compute the greatest set S of non-bad states such that in
//     every state of S the adversary has at least one philosopher whose every
//     outcome stays in S ("allowed" actions). Outside S, every scheduling
//     choice risks a protected meal no matter what the adversary does later.
//  2. End components: within (S, allowed) compute maximal end components —
//     sets of states closed under the retained actions and strongly connected
//     by them. Inside an end component the adversary can remain forever with
//     probability 1 and can take every retained action infinitely often.
//  3. Coverage: a trap is an end component in which every philosopher has at
//     least one retained action, so remaining inside it forever is compatible
//     with fairness.
func (ss *StateSpace) FindStarvationTrap() Trap {
	return ss.findTrap(ss.bad)
}

// FindStarvationTrapAgainst re-runs the trap analysis against an arbitrary
// protected set — nil or empty means every philosopher — using the per-state
// eating bitmasks recorded during exploration. It is what the lockout-freedom
// property uses to test each philosopher individually without re-exploring.
// It returns an error on instances with more than 64 philosophers (which
// carry no masks) or an out-of-range philosopher.
func (ss *StateSpace) FindStarvationTrapAgainst(protected []graph.PhilID) (Trap, error) {
	if ss.eating == nil {
		return Trap{}, fmt.Errorf("modelcheck: per-set trap analysis needs the eating bitmasks, which cover at most %d philosophers (topology has %d)", maskablePhils, ss.NumPhils)
	}
	var mask uint64
	if len(protected) == 0 {
		mask = ^uint64(0) >> (maskablePhils - ss.NumPhils)
	} else {
		for _, p := range protected {
			if int(p) < 0 || int(p) >= ss.NumPhils {
				return Trap{}, fmt.Errorf("modelcheck: protected philosopher %d out of range [0, %d)", p, ss.NumPhils)
			}
			mask |= 1 << uint(p)
		}
	}
	bad := make([]bool, ss.NumStates())
	for s, m := range ss.eating {
		bad[s] = m&mask != 0
	}
	return ss.findTrap(bad), nil
}

// findTrap is the trap analysis against an explicit bad-state labelling.
func (ss *StateSpace) findTrap(bad []bool) Trap {
	n := ss.NumStates()
	reachable := ss.Reachable()

	// Step 1: greatest safe region S and allowed actions. States that were
	// never expanded (possible only on truncated explorations) are excluded:
	// their artificial self-loops must not be mistaken for safe behaviour.
	inS := make([]bool, n)
	for s := 0; s < n; s++ {
		inS[s] = reachable[s] && !bad[s] && ss.expanded[s]
	}
	allowed := make([][]bool, n)
	for s := range allowed {
		allowed[s] = make([]bool, ss.NumPhils)
	}
	for changed := true; changed; {
		changed = false
		for s := 0; s < n; s++ {
			if !inS[s] {
				continue
			}
			anyAllowed := false
			for a := 0; a < ss.NumPhils; a++ {
				ok := true
				for _, succ := range ss.succsOf(s, a) {
					if !inS[succ] {
						ok = false
						break
					}
				}
				allowed[s][a] = ok
				if ok {
					anyAllowed = true
				}
			}
			if !anyAllowed {
				inS[s] = false
				changed = true
			}
		}
	}
	safeCount := 0
	for s := 0; s < n; s++ {
		if inS[s] {
			safeCount++
		}
	}

	trap := Trap{SafeRegionStates: safeCount, WitnessState: -1}
	if safeCount == 0 {
		return trap
	}

	// Step 2: maximal end components of (S, allowed): repeatedly compute
	// SCCs of the graph restricted to allowed actions, and drop actions whose
	// outcomes leave their SCC (and states left with no actions), until
	// stable.
	inEC := make([]bool, n)
	copy(inEC, inS)
	act := make([][]bool, n)
	for s := range act {
		act[s] = make([]bool, ss.NumPhils)
		copy(act[s], allowed[s])
	}
	comp := make([]int, n)

	for {
		// SCCs (iterative Tarjan) over states with at least one action.
		for i := range comp {
			comp[i] = -1
		}
		sccCount := ss.stronglyConnected(inEC, act, comp)
		_ = sccCount

		changed := false
		for s := 0; s < n; s++ {
			if !inEC[s] {
				continue
			}
			anyAct := false
			for a := 0; a < ss.NumPhils; a++ {
				if !act[s][a] {
					continue
				}
				ok := true
				for _, succ := range ss.succsOf(s, a) {
					if !inEC[succ] || comp[succ] != comp[s] {
						ok = false
						break
					}
				}
				if !ok {
					act[s][a] = false
					changed = true
				} else {
					anyAct = true
				}
			}
			if !anyAct {
				inEC[s] = false
				changed = true
			}
		}
		if !changed {
			break
		}
	}

	// Step 3: group remaining states by component and check philosopher
	// coverage. Components are visited in sorted index order so that the
	// reported best-coverage tie-break is deterministic.
	groups := make(map[int][]int)
	for s := 0; s < n; s++ {
		if inEC[s] {
			groups[comp[s]] = append(groups[comp[s]], s)
		}
	}
	compIDs := make([]int, 0, len(groups))
	for id := range groups {
		compIDs = append(compIDs, id)
	}
	sort.Ints(compIDs)
	bestCovered := 0
	for _, id := range compIDs {
		states := groups[id]
		covered := make([]bool, ss.NumPhils)
		for _, s := range states {
			for a := 0; a < ss.NumPhils; a++ {
				if act[s][a] {
					covered[a] = true
				}
			}
		}
		count := 0
		var coveredIDs []graph.PhilID
		for a, c := range covered {
			if c {
				count++
				coveredIDs = append(coveredIDs, graph.PhilID(a))
			}
		}
		fully := count == ss.NumPhils
		if count > bestCovered || (fully && trap.States < len(states)) {
			bestCovered = count
			trap.CoveredPhilosophers = coveredIDs
			if fully {
				trap.Exists = true
				trap.States = len(states)
				trap.WitnessState = states[0]
				trap.WitnessKey = ss.KeyOf(states[0])
				// Reachability of the trap (the safe region is already
				// restricted to reachable states, so any member works).
				trap.Reachable = true
			}
		}
	}
	sort.Slice(trap.CoveredPhilosophers, func(i, j int) bool {
		return trap.CoveredPhilosophers[i] < trap.CoveredPhilosophers[j]
	})
	return trap
}

// stronglyConnected computes SCC indices (into comp) of the directed graph
// whose nodes are the states with inSet true and whose edges are all outcomes
// of retained actions. It returns the number of components. States not in the
// set keep comp = -1.
func (ss *StateSpace) stronglyConnected(inSet []bool, act [][]bool, comp []int) int {
	n := ss.NumStates()
	const unvisited = -1
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = unvisited
	}
	var stack []int
	var callStack []struct {
		v    int
		edge int
		succ []int32
	}
	nextIndex := 0
	compCount := 0

	successors := func(v int) []int32 {
		var out []int32
		for a := 0; a < ss.NumPhils; a++ {
			if !act[v][a] {
				continue
			}
			for _, s := range ss.succsOf(v, a) {
				if inSet[s] {
					out = append(out, s)
				}
			}
		}
		return out
	}

	for root := 0; root < n; root++ {
		if !inSet[root] || index[root] != unvisited {
			continue
		}
		callStack = callStack[:0]
		callStack = append(callStack, struct {
			v    int
			edge int
			succ []int32
		}{v: root, edge: 0, succ: successors(root)})
		index[root] = nextIndex
		low[root] = nextIndex
		nextIndex++
		stack = append(stack, root)
		onStack[root] = true

		for len(callStack) > 0 {
			frame := &callStack[len(callStack)-1]
			if frame.edge < len(frame.succ) {
				wn := int(frame.succ[frame.edge])
				frame.edge++
				if index[wn] == unvisited {
					index[wn] = nextIndex
					low[wn] = nextIndex
					nextIndex++
					stack = append(stack, wn)
					onStack[wn] = true
					callStack = append(callStack, struct {
						v    int
						edge int
						succ []int32
					}{v: wn, edge: 0, succ: successors(wn)})
				} else if onStack[wn] && index[wn] < low[frame.v] {
					low[frame.v] = index[wn]
				}
				continue
			}
			// Finished v.
			v := frame.v
			callStack = callStack[:len(callStack)-1]
			if len(callStack) > 0 {
				parent := &callStack[len(callStack)-1]
				if low[v] < low[parent.v] {
					low[parent.v] = low[v]
				}
			}
			if low[v] == index[v] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = compCount
					if w == v {
						break
					}
				}
				compCount++
			}
		}
	}
	return compCount
}

// Package modelcheck explores the complete state space of small generalized
// dining-philosopher systems and analyses it as a Markov decision process
// (MDP): the adversary chooses which philosopher moves, the random draws of
// the algorithms resolve probabilistically.
//
// The paper's positive and negative results are statements about this MDP:
//
//   - Theorems 1 and 2 assert that, on suitable topologies, there EXISTS a
//     fair adversary under which LR1 (respectively LR2) makes no progress
//     with positive probability.
//   - Theorems 3 and 4 assert that under EVERY fair adversary GDP1 makes
//     progress (and GDP2 serves every philosopher) with probability 1.
//
// The corresponding verifiable structure is an end component of the
// "no protected philosopher eats" sub-MDP that offers an allowed action for
// every philosopher: inside such a component the adversary can stay forever
// with probability 1 while scheduling every philosopher infinitely often
// (fairness), so its existence is exactly the negative result, and its
// absence on every reachable part of the state space certifies the positive
// result for the explored instance. FindStarvationTrap computes it.
package modelcheck

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/sim"
)

// Options configures an exploration.
type Options struct {
	// MaxStates caps the number of distinct states explored; beyond it the
	// exploration stops and the result is marked Truncated. Zero means
	// DefaultMaxStates.
	MaxStates int
	// Protected is the set of philosophers whose meals count as "bad" for the
	// starvation-trap analysis; nil or empty means all philosophers.
	Protected []graph.PhilID
	// Hunger overrides the AlwaysHungry workload (rarely useful: the paper's
	// progress analysis assumes saturated demand). When set, exploration
	// clones carry the full run metrics so that metric-reading models
	// (sim.NeverHungryAgainAfter) keep working; the default workload uses
	// the faster protocol-only clones.
	Hunger sim.HungerModel
	// KeepKeys retains the canonical key of every state for debugging and
	// witness extraction (StateSpace.KeyOf, Trap.WitnessKey). Off by default:
	// on large instances the per-state key copies dominate the exploration's
	// memory footprint, and the analyses never need them.
	KeepKeys bool
}

// DefaultMaxStates bounds explorations when Options.MaxStates is zero.
const DefaultMaxStates = 2_000_000

// transition is one (state, philosopher) action with its probabilistic
// outcomes.
type transition struct {
	// succ[i] is the state index reached by outcome i.
	succ []int32
	// probs[i] is the probability of outcome i.
	probs []float64
}

// StateSpace is the explored MDP.
type StateSpace struct {
	topo *graph.Topology
	prog sim.Program

	// NumPhils is the number of philosophers (actions per state).
	NumPhils int
	// trans[s][a] is the transition of philosopher a from state s.
	trans [][]transition
	// bad[s] reports whether a protected philosopher is eating in state s.
	bad []bool
	// anyEating[s] reports whether any philosopher is eating in state s.
	anyEating []bool
	// initial is the index of the initial state.
	initial int
	// Truncated reports whether MaxStates was hit; analyses on a truncated
	// space are only valid for the explored fragment.
	Truncated bool
	// expanded[s] reports whether state s had its outgoing transitions fully
	// computed. States discovered but not expanded (possible only when
	// Truncated) are excluded from the safety analyses so that truncation can
	// never fabricate a trap.
	expanded []bool
	// keys holds the canonical key of every state (index-aligned). Retained
	// only when Options.KeepKeys is set; nil otherwise.
	keys []string
}

// NumStates returns the number of distinct states explored.
func (ss *StateSpace) NumStates() int { return len(ss.trans) }

// KeyOf returns the canonical key of state s, or "" when the exploration did
// not retain keys (Options.KeepKeys).
func (ss *StateSpace) KeyOf(s int) string {
	if ss.keys == nil {
		return ""
	}
	return ss.keys[s]
}

// NumTransitions returns the total number of (state, philosopher) actions.
func (ss *StateSpace) NumTransitions() int {
	total := 0
	for _, ts := range ss.trans {
		total += len(ts)
	}
	return total
}

// NumBadStates returns the number of states in which a protected philosopher
// is eating.
func (ss *StateSpace) NumBadStates() int {
	n := 0
	for _, b := range ss.bad {
		if b {
			n++
		}
	}
	return n
}

// Explore builds the complete reachable state space of prog on topo.
func Explore(topo *graph.Topology, prog sim.Program, opts Options) (*StateSpace, error) {
	if topo == nil || prog == nil {
		return nil, fmt.Errorf("modelcheck: Explore requires a topology and a program")
	}
	maxStates := opts.MaxStates
	if maxStates <= 0 {
		maxStates = DefaultMaxStates
	}
	protected := make(map[graph.PhilID]bool)
	for _, p := range opts.Protected {
		protected[p] = true
	}
	isProtected := func(p graph.PhilID) bool {
		return len(protected) == 0 || protected[p]
	}

	ss := &StateSpace{
		topo:     topo,
		prog:     prog,
		NumPhils: topo.NumPhilosophers(),
	}

	initial := sim.NewWorld(topo)
	if opts.Hunger != nil {
		initial.Hunger = opts.Hunger
	}
	prog.Init(initial)

	// index dedupes states by canonical key. Lookups use the string(keyBuf)
	// no-copy idiom: the compiler elides the []byte→string conversion for a
	// map read, so probing a seen state allocates nothing; only genuinely new
	// states pay for one string copy (the retained map key).
	index := make(map[string]int32)
	type frontierEntry struct {
		id int32
		w  *sim.World
	}
	var frontier []frontierEntry
	var keyBuf []byte
	// spare receives protocol clones that turned out to be already-interned
	// states, so the dominant revisit case recycles one world's backing
	// slices instead of allocating fresh ones per probed outcome.
	var spare *sim.World
	// With a custom hunger model the clones must carry run metrics (the
	// model may read them, e.g. NeverHungryAgainAfter reads EatsBy), so fall
	// back to full Clone and skip the spare-recycling fast path.
	clone := func(src, spare *sim.World) *sim.World {
		if opts.Hunger != nil {
			return src.Clone()
		}
		return src.CloneProtocolInto(spare)
	}

	intern := func(w *sim.World) (int32, bool) {
		keyBuf = w.AppendKey(keyBuf[:0])
		if id, ok := index[string(keyBuf)]; ok {
			return id, false
		}
		id := int32(len(ss.trans))
		index[string(keyBuf)] = id
		ss.trans = append(ss.trans, nil)
		ss.expanded = append(ss.expanded, false)
		if opts.KeepKeys {
			ss.keys = append(ss.keys, string(keyBuf))
		}
		badHere := false
		eatingHere := false
		for p := range w.Phils {
			if w.Phils[p].Phase == sim.Eating {
				eatingHere = true
				if isProtected(graph.PhilID(p)) {
					badHere = true
				}
			}
		}
		ss.bad = append(ss.bad, badHere)
		ss.anyEating = append(ss.anyEating, eatingHere)
		return id, true
	}

	w0 := clone(initial, nil)
	id, _ := intern(w0)
	ss.initial = int(id)
	frontier = append(frontier, frontierEntry{id: id, w: w0})

	var obuf, sbuf []sim.Outcome
	for len(frontier) > 0 {
		entry := frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]

		transitions := make([]transition, ss.NumPhils)
		for a := 0; a < ss.NumPhils; a++ {
			pid := graph.PhilID(a)
			// Outcomes must not mutate the world they are computed from, so
			// the shared frontier world can be probed directly; each outcome
			// is then applied to its own clone.
			outcomes := prog.Outcomes(entry.w, pid, obuf[:0])
			obuf = outcomes
			tr := transition{
				succ:  make([]int32, len(outcomes)),
				probs: make([]float64, len(outcomes)),
			}
			for i := range outcomes {
				succWorld := clone(entry.w, spare)
				spare = nil
				succOutcomes := prog.Outcomes(succWorld, pid, sbuf[:0])
				sbuf = succOutcomes
				if len(succOutcomes) != len(outcomes) {
					return nil, fmt.Errorf("modelcheck: %s produced unstable outcome sets for P%d", prog.Name(), pid)
				}
				succOutcomes[i].Do(succWorld, pid)
				succWorld.Step++
				succID, isNew := intern(succWorld)
				tr.succ[i] = succID
				tr.probs[i] = outcomes[i].Prob
				if isNew {
					if len(ss.trans) > maxStates {
						ss.Truncated = true
						// Keep the partially built transition for consistency
						// but stop expanding new states.
						frontier = nil
					} else {
						frontier = append(frontier, frontierEntry{id: succID, w: succWorld})
					}
				} else {
					spare = succWorld
				}
			}
			transitions[a] = tr
		}
		ss.trans[entry.id] = transitions
		ss.expanded[entry.id] = true
		if ss.Truncated {
			break
		}
	}

	// States left unexpanded (nil transitions) get self-loops so that the
	// analyses remain well defined on truncated spaces.
	for s := range ss.trans {
		if ss.trans[s] == nil {
			ts := make([]transition, ss.NumPhils)
			for a := range ts {
				ts[a] = transition{succ: []int32{int32(s)}, probs: []float64{1}}
			}
			ss.trans[s] = ts
		}
	}
	return ss, nil
}

// Reachable returns the set of states reachable from the initial state using
// any actions and any outcomes, as a boolean slice indexed by state.
func (ss *StateSpace) Reachable() []bool {
	seen := make([]bool, ss.NumStates())
	stack := []int{ss.initial}
	seen[ss.initial] = true
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, tr := range ss.trans[s] {
			for _, succ := range tr.succ {
				if !seen[succ] {
					seen[succ] = true
					stack = append(stack, int(succ))
				}
			}
		}
	}
	return seen
}

// EatReachableFromEverywhere reports whether, from every reachable state, a
// state in which some philosopher is eating remains reachable (existentially
// over scheduling and randomness). A false answer exhibits a true dead end:
// a region from which no meal can ever happen again under any scheduling —
// for example the hold-and-wait deadlock of the colored-philosophers baseline
// on an odd ring.
func (ss *StateSpace) EatReachableFromEverywhere() bool {
	return len(ss.DeadRegionStates()) == 0
}

// DeadRegionStates returns the reachable states from which no eating state is
// reachable under any scheduling and any random outcomes.
func (ss *StateSpace) DeadRegionStates() []int {
	n := ss.NumStates()
	// Backward reachability from eating states over the "some action/outcome"
	// relation: build reverse adjacency implicitly by iterating forward.
	canReach := make([]bool, n)
	for s := 0; s < n; s++ {
		if ss.anyEating[s] {
			canReach[s] = true
		}
	}
	// Iterate to fixpoint (the state graph is small enough for the quadratic
	// worst case; typical convergence is a few passes).
	changed := true
	for changed {
		changed = false
		for s := 0; s < n; s++ {
			if canReach[s] {
				continue
			}
			for _, tr := range ss.trans[s] {
				for _, succ := range tr.succ {
					if canReach[succ] {
						canReach[s] = true
						changed = true
						break
					}
				}
				if canReach[s] {
					break
				}
			}
		}
	}
	reachable := ss.Reachable()
	var dead []int
	for s := 0; s < n; s++ {
		if reachable[s] && !canReach[s] {
			dead = append(dead, s)
		}
	}
	return dead
}

// DeadlockStates returns the reachable states in which every action of every
// philosopher is a self-loop: the system can never change state again. The
// paper's algorithms have none; the naive hold-and-wait baselines do.
func (ss *StateSpace) DeadlockStates() []int {
	reachable := ss.Reachable()
	var out []int
	for s := 0; s < ss.NumStates(); s++ {
		if !reachable[s] {
			continue
		}
		stuck := true
		for _, tr := range ss.trans[s] {
			for _, succ := range tr.succ {
				if int(succ) != s {
					stuck = false
					break
				}
			}
			if !stuck {
				break
			}
		}
		if stuck {
			out = append(out, s)
		}
	}
	return out
}

// Package modelcheck explores the complete state space of small generalized
// dining-philosopher systems and analyses it as a Markov decision process
// (MDP): the adversary chooses which philosopher moves, the random draws of
// the algorithms resolve probabilistically.
//
// The paper's positive and negative results are statements about this MDP:
//
//   - Theorems 1 and 2 assert that, on suitable topologies, there EXISTS a
//     fair adversary under which LR1 (respectively LR2) makes no progress
//     with positive probability.
//   - Theorems 3 and 4 assert that under EVERY fair adversary GDP1 makes
//     progress (and GDP2 serves every philosopher) with probability 1.
//
// The corresponding verifiable structure is an end component of the
// "no protected philosopher eats" sub-MDP that offers an allowed action for
// every philosopher: inside such a component the adversary can stay forever
// with probability 1 while scheduling every philosopher infinitely often
// (fairness), so its existence is exactly the negative result, and its
// absence on every reachable part of the state space certifies the positive
// result for the explored instance. FindStarvationTrap computes it.
//
// # Exploration order and parallelism
//
// Explore is a level-synchronous breadth-first search. The states of one BFS
// level are expanded — in parallel across Options.Workers goroutines — and
// their successors are then interned in a single deterministic merge pass
// that walks the level in frontier order, each state's actions in
// philosopher order and each action's outcomes in outcome order. New states
// receive ids in that first-encounter order, so the explored space (state
// numbering, transition tables, probabilities) is byte-identical for every
// worker count; the sequential path is simply the same order executed
// inline.
package modelcheck

import (
	"fmt"
	"runtime"
	"sync"
	"unsafe"

	"repro/internal/graph"
	"repro/internal/sim"
)

// Options configures an exploration.
type Options struct {
	// MaxStates caps the number of distinct states explored; beyond it the
	// exploration stops and the result is marked Truncated. Zero means
	// DefaultMaxStates.
	MaxStates int
	// Protected is the set of philosophers whose meals count as "bad" for the
	// starvation-trap analysis; nil or empty means all philosophers.
	Protected []graph.PhilID
	// Hunger overrides the AlwaysHungry workload (rarely useful: the paper's
	// progress analysis assumes saturated demand). When set, exploration
	// clones carry the full run metrics so that metric-reading models
	// (sim.NeverHungryAgainAfter) keep working; the default workload uses
	// the faster protocol-only clones.
	Hunger sim.HungerModel
	// KeepKeys retains the canonical key of every state for debugging and
	// witness extraction (StateSpace.KeyOf, Trap.WitnessKey). Off by default:
	// on large instances the per-state key copies dominate the exploration's
	// memory footprint, and the analyses never need them.
	KeepKeys bool
	// Interrupt is polled periodically during exploration when non-nil; a
	// non-nil return aborts Explore with that error. It is how context
	// cancellation reaches the exploration loop.
	Interrupt func() error
	// Workers bounds the exploration goroutines (0 = one per CPU,
	// 1 = sequential). The explored space is byte-identical for every value;
	// only wall-clock changes.
	Workers int
}

// DefaultMaxStates bounds explorations when Options.MaxStates is zero.
const DefaultMaxStates = 2_000_000

// maskablePhils is the philosopher-count ceiling for the per-state eating
// bitmasks behind FindStarvationTrapAgainst. Instances beyond it (far larger
// than anything exhaustively explorable) simply skip the masks.
const maskablePhils = 64

// transition is one (state, philosopher) action: a window into the state
// space's shared succs/probs backing arrays. Storing offsets instead of
// per-action slices keeps the whole MDP in three flat allocations instead of
// ~2·NumPhils+1 small ones per state.
type transition struct {
	// off is the offset of the action's first outcome in succs/probs.
	off int32
	// n is the number of outcomes.
	n int32
}

// StateSpace is the explored MDP.
type StateSpace struct {
	topo   *graph.Topology
	prog   sim.Program
	hunger sim.HungerModel

	// NumPhils is the number of philosophers (actions per state).
	NumPhils int
	// trans holds NumPhils consecutive transitions per state: the transition
	// of philosopher a from state s is trans[s*NumPhils+a].
	trans []transition
	// succs and probs are the flat backing arrays shared by every
	// transition: succs[t.off+i] is the state reached by outcome i and
	// probs[t.off+i] its probability.
	succs []int32
	probs []float64
	// bad[s] reports whether a protected philosopher is eating in state s.
	bad []bool
	// anyEating[s] reports whether any philosopher is eating in state s.
	anyEating []bool
	// eating[s] is the bitmask of philosophers eating in state s, backing
	// FindStarvationTrapAgainst; nil when NumPhils > maskablePhils.
	eating []uint64
	// initial is the index of the initial state.
	initial int
	// Truncated reports whether MaxStates was hit; analyses on a truncated
	// space are only valid for the explored fragment.
	Truncated bool
	// expanded[s] reports whether state s had its outgoing transitions fully
	// computed. States discovered but not expanded (possible only when
	// Truncated) are excluded from the safety analyses so that truncation can
	// never fabricate a trap.
	expanded []bool
	// keys holds the canonical key of every state (index-aligned). Retained
	// only when Options.KeepKeys is set; nil otherwise.
	keys []string
}

// NumStates returns the number of distinct states explored.
func (ss *StateSpace) NumStates() int { return len(ss.bad) }

// succsOf returns the successor states of philosopher a's action from state
// s. The returned slice aliases the shared backing array and must not be
// modified.
func (ss *StateSpace) succsOf(s, a int) []int32 {
	t := ss.trans[s*ss.NumPhils+a]
	return ss.succs[t.off : t.off+t.n]
}

// probsOf returns the outcome probabilities of philosopher a's action from
// state s, aligned with succsOf.
func (ss *StateSpace) probsOf(s, a int) []float64 {
	t := ss.trans[s*ss.NumPhils+a]
	return ss.probs[t.off : t.off+t.n]
}

// KeyOf returns the canonical key of state s, or "" when the exploration did
// not retain keys (Options.KeepKeys).
func (ss *StateSpace) KeyOf(s int) string {
	if ss.keys == nil {
		return ""
	}
	return ss.keys[s]
}

// NumTransitions returns the total number of (state, philosopher) actions.
func (ss *StateSpace) NumTransitions() int { return len(ss.trans) }

// NumBadStates returns the number of states in which a protected philosopher
// is eating.
func (ss *StateSpace) NumBadStates() int {
	n := 0
	for _, b := range ss.bad {
		if b {
			n++
		}
	}
	return n
}

// byteArena interns byte strings into large shared chunks: the returned
// string views the arena's backing array directly, so interning a key costs
// an amortized chunk allocation instead of one string copy per state. A
// chunk is never reallocated once strings point into it (growth switches to
// a fresh chunk), so the returned strings stay valid for the lifetime of
// whatever retains them.
type byteArena struct {
	buf []byte
}

// arenaChunkSize is the allocation unit of byteArena.
const arenaChunkSize = 1 << 16

// intern copies b into the arena and returns a stable string view of it.
func (a *byteArena) intern(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	if cap(a.buf)-len(a.buf) < len(b) {
		size := arenaChunkSize
		if len(b) > size {
			size = len(b)
		}
		a.buf = make([]byte, 0, size)
	}
	off := len(a.buf)
	a.buf = append(a.buf, b...)
	return unsafe.String(&a.buf[off], len(b))
}

// scratch is the reusable per-worker expansion state: key and outcome
// buffers, a world free-list, and — for the parallel path — the recorded
// expansion of the worker's chunk awaiting the deterministic merge.
type scratch struct {
	keyBuf     []byte
	obuf, sbuf []sim.Outcome
	// free recycles protocol-clone worlds: revisited successors and expanded
	// frontier worlds go back here and their backing slices are reused by the
	// next clone. Disabled (noRecycle) under a custom hunger model, whose
	// full clones carry metric slices the protocol-clone path must not reuse.
	free      []*sim.World
	noRecycle bool

	// Parallel expansion record, flattened in (state, action, outcome) order.
	counts  []int32   // per (state, action): number of outcomes
	probs   []float64 // per outcome: probability
	refs    []int32   // per outcome: >= 0 global state id, else ^pendingIdx
	pkeys   []string  // per pending (locally new) state: canonical key
	pworlds []*sim.World
	local   map[string]int32 // canonical key -> pending index, this level only
	resolve []int32          // merge scratch: pending index -> assigned id
	err     error
}

func newScratch(noRecycle bool) *scratch {
	return &scratch{noRecycle: noRecycle, local: make(map[string]int32)}
}

func (s *scratch) takeFree() *sim.World {
	if n := len(s.free); n > 0 {
		w := s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		return w
	}
	return nil
}

func (s *scratch) putFree(w *sim.World) {
	if !s.noRecycle {
		s.free = append(s.free, w)
	}
}

// explorer carries the shared state of one Explore call.
type explorer struct {
	ss        *StateSpace
	opts      Options
	maxStates int
	protected map[graph.PhilID]bool

	// index dedupes states by canonical key. During a parallel expansion
	// phase the map is strictly read-only (workers probe it concurrently with
	// the no-copy string(buf) idiom); all writes happen in the sequential
	// merge between levels.
	index map[string]int32
	// arena interns the sequential path's map keys in large chunks, so the
	// per-state key string of the old explorer disappears. The parallel path
	// uses the pending keys the workers already materialised.
	arena byteArena
	// zeroTrans is the reusable blank transition row appended per new state.
	zeroTrans []transition

	// frontW holds the worlds of the current BFS level (sequentially: of
	// every state, indexed by id, consumed in place); nextW collects the next
	// level during a merge. Level ids are contiguous, so only the worlds are
	// stored — the id of frontW[i] is levelStart+i.
	frontW []*sim.World
	nextW  []*sim.World
}

// isProtected reports whether p's meals count as "bad".
func (e *explorer) isProtected(p graph.PhilID) bool {
	return len(e.protected) == 0 || e.protected[p]
}

// clone copies src for one explored transition, reusing spare when possible.
// With a custom hunger model the clones must carry run metrics (the model
// may read them, e.g. NeverHungryAgainAfter reads EatsBy), so fall back to
// full Clone and skip recycling.
func (e *explorer) clone(src, spare *sim.World) *sim.World {
	if e.opts.Hunger != nil {
		return src.Clone()
	}
	return src.CloneProtocolInto(spare)
}

// addState interns a newly discovered state. key must be a stable string
// (arena-interned or heap-allocated); w is the state's world. It returns the
// assigned id.
func (e *explorer) addState(key string, w *sim.World) int32 {
	ss := e.ss
	id := int32(len(ss.bad))
	e.index[key] = id
	ss.trans = append(ss.trans, e.zeroTrans...)
	ss.expanded = append(ss.expanded, false)
	if e.opts.KeepKeys {
		ss.keys = append(ss.keys, key)
	}
	badHere := false
	eatingHere := false
	var mask uint64
	for p := range w.Phils {
		if w.Phils[p].Phase == sim.Eating {
			eatingHere = true
			if p < maskablePhils {
				mask |= 1 << uint(p)
			}
			if e.isProtected(graph.PhilID(p)) {
				badHere = true
			}
		}
	}
	ss.bad = append(ss.bad, badHere)
	ss.anyEating = append(ss.anyEating, eatingHere)
	if ss.NumPhils <= maskablePhils {
		ss.eating = append(ss.eating, mask)
	}
	return id
}

// Explore builds the complete reachable state space of prog on topo.
func Explore(topo *graph.Topology, prog sim.Program, opts Options) (*StateSpace, error) {
	if topo == nil || prog == nil {
		return nil, fmt.Errorf("modelcheck: Explore requires a topology and a program")
	}
	maxStates := opts.MaxStates
	if maxStates <= 0 {
		maxStates = DefaultMaxStates
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	ss := &StateSpace{
		topo:     topo,
		prog:     prog,
		hunger:   opts.Hunger,
		NumPhils: topo.NumPhilosophers(),
	}
	e := &explorer{
		ss:        ss,
		opts:      opts,
		maxStates: maxStates,
		index:     make(map[string]int32),
		zeroTrans: make([]transition, ss.NumPhils),
	}
	if len(opts.Protected) > 0 {
		e.protected = make(map[graph.PhilID]bool, len(opts.Protected))
		for _, p := range opts.Protected {
			e.protected[p] = true
		}
	}

	initial := sim.NewWorld(topo)
	if opts.Hunger != nil {
		initial.Hunger = opts.Hunger
	}
	prog.Init(initial)

	w0 := e.clone(initial, nil)
	e.addState(e.arena.intern(w0.AppendKey(nil)), w0)
	ss.initial = 0
	e.frontW = append(e.frontW, w0)

	var err error
	if workers == 1 {
		err = e.exploreSequential()
	} else {
		err = e.exploreParallel(workers)
	}
	if err != nil {
		return nil, err
	}

	// States left unexpanded (zero-width transitions) get self-loops so that
	// the analyses remain well defined on truncated spaces.
	for s := 0; s < ss.NumStates(); s++ {
		if ss.expanded[s] {
			continue
		}
		for a := 0; a < ss.NumPhils; a++ {
			ss.trans[s*ss.NumPhils+a] = transition{off: int32(len(ss.succs)), n: 1}
			ss.succs = append(ss.succs, int32(s))
			ss.probs = append(ss.probs, 1)
		}
	}
	return ss, nil
}

// interruptCheckInterval is how often (in expanded states) Options.Interrupt
// is polled.
const interruptCheckInterval = 1024

// exploreSequential runs the BFS inline. frontW doubles as the FIFO queue:
// new states are appended in id order, so the world of state id sits at
// frontW[id] until the state is expanded.
func (e *explorer) exploreSequential() error {
	ss := e.ss
	s := newScratch(e.opts.Hunger != nil)
	for head := 0; head < len(e.frontW); head++ {
		if e.opts.Interrupt != nil && head%interruptCheckInterval == 0 {
			if err := e.opts.Interrupt(); err != nil {
				return err
			}
		}
		w := e.frontW[head]
		e.frontW[head] = nil
		id := int32(head)

		base := int(id) * ss.NumPhils
		for a := 0; a < ss.NumPhils; a++ {
			pid := graph.PhilID(a)
			// Outcomes must not mutate the world they are computed from, so
			// the shared frontier world can be probed directly; each outcome
			// is then applied to its own clone.
			outcomes := ss.prog.Outcomes(w, pid, s.obuf[:0])
			s.obuf = outcomes
			off := int32(len(ss.succs))
			for i := range outcomes {
				succ := e.clone(w, s.takeFree())
				succOut := ss.prog.Outcomes(succ, pid, s.sbuf[:0])
				s.sbuf = succOut
				if len(succOut) != len(outcomes) {
					return fmt.Errorf("modelcheck: %s produced unstable outcome sets for P%d", ss.prog.Name(), pid)
				}
				succOut[i].Do(succ, pid)
				succ.Step++
				s.keyBuf = succ.AppendKey(s.keyBuf[:0])
				var sid int32
				// The string(keyBuf) map probe is the no-copy idiom: probing
				// a seen state allocates nothing; genuinely new states intern
				// their key into the shared arena.
				if gid, ok := e.index[string(s.keyBuf)]; ok {
					sid = gid
					s.putFree(succ)
				} else {
					sid = e.addState(e.arena.intern(s.keyBuf), succ)
					e.frontW = append(e.frontW, succ)
				}
				ss.succs = append(ss.succs, sid)
				ss.probs = append(ss.probs, outcomes[i].Prob)
			}
			ss.trans[base+a] = transition{off: off, n: int32(len(outcomes))}
		}
		ss.expanded[id] = true
		s.putFree(w)
		if ss.NumStates() > e.maxStates {
			ss.Truncated = true
			return nil
		}
	}
	return nil
}

// exploreParallel runs the BFS level by level: workers expand disjoint
// contiguous chunks of the current level against the read-only intern table,
// then a sequential merge replays every chunk in frontier order and assigns
// ids — exactly the order exploreSequential would have used.
func (e *explorer) exploreParallel(workers int) error {
	ss := e.ss
	scratches := make([]*scratch, workers)
	for i := range scratches {
		scratches[i] = newScratch(e.opts.Hunger != nil)
	}
	levelStart := int32(0)
	for len(e.frontW) > 0 && !ss.Truncated {
		if e.opts.Interrupt != nil {
			if err := e.opts.Interrupt(); err != nil {
				return err
			}
		}
		n := len(e.frontW)
		chunk := (n + workers - 1) / workers
		active := 0
		var wg sync.WaitGroup
		chunkLo := make([]int, 0, workers)
		for lo := 0; lo < n; lo += chunk {
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			s := scratches[active]
			chunkLo = append(chunkLo, lo)
			active++
			wg.Add(1)
			go func(s *scratch, worlds []*sim.World) {
				defer wg.Done()
				e.expandChunk(s, worlds)
			}(s, e.frontW[lo:hi])
		}
		wg.Wait()
		// The first error in worker order keeps error reporting deterministic
		// (each chunk's contents are deterministic, so so is its error).
		for _, s := range scratches[:active] {
			if s.err != nil {
				return s.err
			}
		}

		e.nextW = e.nextW[:0]
		for wi, s := range scratches[:active] {
			if !e.mergeChunk(s, levelStart+int32(chunkLo[wi])) {
				break // state cap hit; drop the rest of the level
			}
		}
		levelStart = int32(ss.NumStates() - len(e.nextW))
		e.frontW, e.nextW = e.nextW, e.frontW
	}
	return nil
}

// expandChunk computes the outcome record of one contiguous chunk of the
// current level. It only reads shared state (the intern table, the program,
// the frontier worlds of its own chunk) and writes the worker-local scratch.
func (e *explorer) expandChunk(s *scratch, worlds []*sim.World) {
	ss := e.ss
	s.counts = s.counts[:0]
	s.probs = s.probs[:0]
	s.refs = s.refs[:0]
	s.pkeys = s.pkeys[:0]
	s.pworlds = s.pworlds[:0]
	clear(s.local)
	s.err = nil
	for k, w := range worlds {
		if e.opts.Interrupt != nil && k%interruptCheckInterval == 0 {
			if err := e.opts.Interrupt(); err != nil {
				s.err = err
				return
			}
		}
		for a := 0; a < ss.NumPhils; a++ {
			pid := graph.PhilID(a)
			outcomes := ss.prog.Outcomes(w, pid, s.obuf[:0])
			s.obuf = outcomes
			s.counts = append(s.counts, int32(len(outcomes)))
			for i := range outcomes {
				succ := e.clone(w, s.takeFree())
				succOut := ss.prog.Outcomes(succ, pid, s.sbuf[:0])
				s.sbuf = succOut
				if len(succOut) != len(outcomes) {
					s.err = fmt.Errorf("modelcheck: %s produced unstable outcome sets for P%d", ss.prog.Name(), pid)
					return
				}
				succOut[i].Do(succ, pid)
				succ.Step++
				s.keyBuf = succ.AppendKey(s.keyBuf[:0])
				s.probs = append(s.probs, outcomes[i].Prob)
				if gid, ok := e.index[string(s.keyBuf)]; ok {
					s.refs = append(s.refs, gid)
					s.putFree(succ)
				} else if li, ok := s.local[string(s.keyBuf)]; ok {
					s.refs = append(s.refs, ^li)
					s.putFree(succ)
				} else {
					li := int32(len(s.pworlds))
					key := string(s.keyBuf)
					s.local[key] = li
					s.pkeys = append(s.pkeys, key)
					s.pworlds = append(s.pworlds, succ)
					s.refs = append(s.refs, ^li)
				}
			}
		}
		s.putFree(w) // the frontier world is fully expanded
	}
}

// mergeChunk replays one expansion record into the global space. id is the
// global id of the chunk's first state. Pending successors are resolved in
// first-encounter order — states a worker deduplicated locally, or that two
// workers discovered independently, land on one id. It returns false when
// the state cap was crossed; the chunk's current state is then complete (its
// successors are all interned), matching the sequential stop point.
func (e *explorer) mergeChunk(s *scratch, id int32) bool {
	ss := e.ss
	s.resolve = s.resolve[:0]
	for range s.pworlds {
		s.resolve = append(s.resolve, -1)
	}
	ri, ci := 0, 0
	nStates := len(s.counts) / ss.NumPhils
	for k := 0; k < nStates; k++ {
		base := int(id) * ss.NumPhils
		for a := 0; a < ss.NumPhils; a++ {
			n := s.counts[ci]
			ci++
			off := int32(len(ss.succs))
			for j := int32(0); j < n; j++ {
				sid := s.refs[ri]
				prob := s.probs[ri]
				ri++
				if sid < 0 {
					li := ^sid
					if s.resolve[li] >= 0 {
						sid = s.resolve[li]
					} else {
						key := s.pkeys[li]
						w := s.pworlds[li]
						s.pworlds[li] = nil
						if gid, ok := e.index[key]; ok {
							sid = gid
							s.putFree(w)
						} else {
							sid = e.addState(key, w)
							e.nextW = append(e.nextW, w)
						}
						s.resolve[li] = sid
					}
				}
				ss.succs = append(ss.succs, sid)
				ss.probs = append(ss.probs, prob)
			}
			ss.trans[base+a] = transition{off: off, n: n}
		}
		ss.expanded[id] = true
		id++
		if ss.NumStates() > e.maxStates {
			ss.Truncated = true
			return false
		}
	}
	return true
}

// Reachable returns the set of states reachable from the initial state using
// any actions and any outcomes, as a boolean slice indexed by state.
func (ss *StateSpace) Reachable() []bool {
	seen := make([]bool, ss.NumStates())
	stack := []int{ss.initial}
	seen[ss.initial] = true
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for a := 0; a < ss.NumPhils; a++ {
			for _, succ := range ss.succsOf(s, a) {
				if !seen[succ] {
					seen[succ] = true
					stack = append(stack, int(succ))
				}
			}
		}
	}
	return seen
}

// EatReachableFromEverywhere reports whether, from every reachable state, a
// state in which some philosopher is eating remains reachable (existentially
// over scheduling and randomness). A false answer exhibits a true dead end:
// a region from which no meal can ever happen again under any scheduling —
// for example the hold-and-wait deadlock of the colored-philosophers baseline
// on an odd ring.
func (ss *StateSpace) EatReachableFromEverywhere() bool {
	return len(ss.DeadRegionStates()) == 0
}

// DeadRegionStates returns the reachable states from which no eating state is
// reachable under any scheduling and any random outcomes.
func (ss *StateSpace) DeadRegionStates() []int {
	n := ss.NumStates()
	// Backward reachability from eating states over the "some action/outcome"
	// relation: build reverse adjacency implicitly by iterating forward.
	// States never expanded (possible only when Truncated) count as able to
	// reach a meal: their artificial self-loops say nothing about the real
	// system, and truncation must never fabricate a violation — on a
	// truncated space the analysis under-approximates, like findTrap.
	canReach := make([]bool, n)
	for s := 0; s < n; s++ {
		if ss.anyEating[s] || !ss.expanded[s] {
			canReach[s] = true
		}
	}
	// Iterate to fixpoint (the state graph is small enough for the quadratic
	// worst case; typical convergence is a few passes).
	changed := true
	for changed {
		changed = false
		for s := 0; s < n; s++ {
			if canReach[s] {
				continue
			}
			for a := 0; a < ss.NumPhils && !canReach[s]; a++ {
				for _, succ := range ss.succsOf(s, a) {
					if canReach[succ] {
						canReach[s] = true
						changed = true
						break
					}
				}
			}
		}
	}
	reachable := ss.Reachable()
	var dead []int
	for s := 0; s < n; s++ {
		if reachable[s] && !canReach[s] {
			dead = append(dead, s)
		}
	}
	return dead
}

// DeadlockStates returns the reachable states in which every action of every
// philosopher is a self-loop: the system can never change state again. The
// paper's algorithms have none; the naive hold-and-wait baselines do.
func (ss *StateSpace) DeadlockStates() []int {
	reachable := ss.Reachable()
	var out []int
	for s := 0; s < ss.NumStates(); s++ {
		// Unexpanded states (possible only when Truncated) carry artificial
		// self-loops; treating them as deadlocks would fabricate violations
		// out of the truncation itself.
		if !reachable[s] || !ss.expanded[s] {
			continue
		}
		stuck := true
		for a := 0; a < ss.NumPhils && stuck; a++ {
			for _, succ := range ss.succsOf(s, a) {
				if int(succ) != s {
					stuck = false
					break
				}
			}
		}
		if stuck {
			out = append(out, s)
		}
	}
	return out
}

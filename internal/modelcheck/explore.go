// Package modelcheck explores the complete state space of small generalized
// dining-philosopher systems and analyses it as a Markov decision process
// (MDP): the adversary chooses which philosopher moves, the random draws of
// the algorithms resolve probabilistically.
//
// The paper's positive and negative results are statements about this MDP:
//
//   - Theorems 1 and 2 assert that, on suitable topologies, there EXISTS a
//     fair adversary under which LR1 (respectively LR2) makes no progress
//     with positive probability.
//   - Theorems 3 and 4 assert that under EVERY fair adversary GDP1 makes
//     progress (and GDP2 serves every philosopher) with probability 1.
//
// The corresponding verifiable structure is an end component of the
// "no protected philosopher eats" sub-MDP that offers an allowed action for
// every philosopher: inside such a component the adversary can stay forever
// with probability 1 while scheduling every philosopher infinitely often
// (fairness), so its existence is exactly the negative result, and its
// absence on every reachable part of the state space certifies the positive
// result for the explored instance. FindStarvationTrap computes it.
package modelcheck

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/sim"
)

// Options configures an exploration.
type Options struct {
	// MaxStates caps the number of distinct states explored; beyond it the
	// exploration stops and the result is marked Truncated. Zero means
	// DefaultMaxStates.
	MaxStates int
	// Protected is the set of philosophers whose meals count as "bad" for the
	// starvation-trap analysis; nil or empty means all philosophers.
	Protected []graph.PhilID
	// Hunger overrides the AlwaysHungry workload (rarely useful: the paper's
	// progress analysis assumes saturated demand). When set, exploration
	// clones carry the full run metrics so that metric-reading models
	// (sim.NeverHungryAgainAfter) keep working; the default workload uses
	// the faster protocol-only clones.
	Hunger sim.HungerModel
	// KeepKeys retains the canonical key of every state for debugging and
	// witness extraction (StateSpace.KeyOf, Trap.WitnessKey). Off by default:
	// on large instances the per-state key copies dominate the exploration's
	// memory footprint, and the analyses never need them.
	KeepKeys bool
	// Interrupt is polled periodically during exploration when non-nil; a
	// non-nil return aborts Explore with that error. It is how context
	// cancellation reaches the exploration loop.
	Interrupt func() error
}

// DefaultMaxStates bounds explorations when Options.MaxStates is zero.
const DefaultMaxStates = 2_000_000

// transition is one (state, philosopher) action: a window into the state
// space's shared succs/probs backing arrays. Storing offsets instead of
// per-action slices keeps the whole MDP in three flat allocations instead of
// ~2·NumPhils+1 small ones per state.
type transition struct {
	// off is the offset of the action's first outcome in succs/probs.
	off int32
	// n is the number of outcomes.
	n int32
}

// StateSpace is the explored MDP.
type StateSpace struct {
	topo *graph.Topology
	prog sim.Program

	// NumPhils is the number of philosophers (actions per state).
	NumPhils int
	// trans holds NumPhils consecutive transitions per state: the transition
	// of philosopher a from state s is trans[s*NumPhils+a].
	trans []transition
	// succs and probs are the flat backing arrays shared by every
	// transition: succs[t.off+i] is the state reached by outcome i and
	// probs[t.off+i] its probability.
	succs []int32
	probs []float64
	// bad[s] reports whether a protected philosopher is eating in state s.
	bad []bool
	// anyEating[s] reports whether any philosopher is eating in state s.
	anyEating []bool
	// initial is the index of the initial state.
	initial int
	// Truncated reports whether MaxStates was hit; analyses on a truncated
	// space are only valid for the explored fragment.
	Truncated bool
	// expanded[s] reports whether state s had its outgoing transitions fully
	// computed. States discovered but not expanded (possible only when
	// Truncated) are excluded from the safety analyses so that truncation can
	// never fabricate a trap.
	expanded []bool
	// keys holds the canonical key of every state (index-aligned). Retained
	// only when Options.KeepKeys is set; nil otherwise.
	keys []string
}

// NumStates returns the number of distinct states explored.
func (ss *StateSpace) NumStates() int { return len(ss.bad) }

// succsOf returns the successor states of philosopher a's action from state
// s. The returned slice aliases the shared backing array and must not be
// modified.
func (ss *StateSpace) succsOf(s, a int) []int32 {
	t := ss.trans[s*ss.NumPhils+a]
	return ss.succs[t.off : t.off+t.n]
}

// probsOf returns the outcome probabilities of philosopher a's action from
// state s, aligned with succsOf.
func (ss *StateSpace) probsOf(s, a int) []float64 {
	t := ss.trans[s*ss.NumPhils+a]
	return ss.probs[t.off : t.off+t.n]
}

// KeyOf returns the canonical key of state s, or "" when the exploration did
// not retain keys (Options.KeepKeys).
func (ss *StateSpace) KeyOf(s int) string {
	if ss.keys == nil {
		return ""
	}
	return ss.keys[s]
}

// NumTransitions returns the total number of (state, philosopher) actions.
func (ss *StateSpace) NumTransitions() int { return len(ss.trans) }

// NumBadStates returns the number of states in which a protected philosopher
// is eating.
func (ss *StateSpace) NumBadStates() int {
	n := 0
	for _, b := range ss.bad {
		if b {
			n++
		}
	}
	return n
}

// Explore builds the complete reachable state space of prog on topo.
func Explore(topo *graph.Topology, prog sim.Program, opts Options) (*StateSpace, error) {
	if topo == nil || prog == nil {
		return nil, fmt.Errorf("modelcheck: Explore requires a topology and a program")
	}
	maxStates := opts.MaxStates
	if maxStates <= 0 {
		maxStates = DefaultMaxStates
	}
	protected := make(map[graph.PhilID]bool)
	for _, p := range opts.Protected {
		protected[p] = true
	}
	isProtected := func(p graph.PhilID) bool {
		return len(protected) == 0 || protected[p]
	}

	ss := &StateSpace{
		topo:     topo,
		prog:     prog,
		NumPhils: topo.NumPhilosophers(),
	}

	initial := sim.NewWorld(topo)
	if opts.Hunger != nil {
		initial.Hunger = opts.Hunger
	}
	prog.Init(initial)

	// index dedupes states by canonical key. Lookups use the string(keyBuf)
	// no-copy idiom: the compiler elides the []byte→string conversion for a
	// map read, so probing a seen state allocates nothing; only genuinely new
	// states pay for one string copy (the retained map key).
	index := make(map[string]int32)
	type frontierEntry struct {
		id int32
		w  *sim.World
	}
	var frontier []frontierEntry
	var keyBuf []byte
	// spare receives protocol clones that turned out to be already-interned
	// states, so the dominant revisit case recycles one world's backing
	// slices instead of allocating fresh ones per probed outcome.
	var spare *sim.World
	// With a custom hunger model the clones must carry run metrics (the
	// model may read them, e.g. NeverHungryAgainAfter reads EatsBy), so fall
	// back to full Clone and skip the spare-recycling fast path.
	clone := func(src, spare *sim.World) *sim.World {
		if opts.Hunger != nil {
			return src.Clone()
		}
		return src.CloneProtocolInto(spare)
	}

	// zeroTrans is the reusable blank transition row appended for each newly
	// interned state; append copies it, so every state gets fresh slots from
	// the shared backing array without a per-state allocation.
	zeroTrans := make([]transition, ss.NumPhils)

	intern := func(w *sim.World) (int32, bool) {
		keyBuf = w.AppendKey(keyBuf[:0])
		if id, ok := index[string(keyBuf)]; ok {
			return id, false
		}
		id := int32(len(ss.bad))
		index[string(keyBuf)] = id
		ss.trans = append(ss.trans, zeroTrans...)
		ss.expanded = append(ss.expanded, false)
		if opts.KeepKeys {
			ss.keys = append(ss.keys, string(keyBuf))
		}
		badHere := false
		eatingHere := false
		for p := range w.Phils {
			if w.Phils[p].Phase == sim.Eating {
				eatingHere = true
				if isProtected(graph.PhilID(p)) {
					badHere = true
				}
			}
		}
		ss.bad = append(ss.bad, badHere)
		ss.anyEating = append(ss.anyEating, eatingHere)
		return id, true
	}

	w0 := clone(initial, nil)
	id, _ := intern(w0)
	ss.initial = int(id)
	frontier = append(frontier, frontierEntry{id: id, w: w0})

	var obuf, sbuf []sim.Outcome
	var expandedCount int
	for len(frontier) > 0 {
		if opts.Interrupt != nil && expandedCount%interruptCheckInterval == 0 {
			if err := opts.Interrupt(); err != nil {
				return nil, err
			}
		}
		expandedCount++
		entry := frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]

		base := int(entry.id) * ss.NumPhils
		for a := 0; a < ss.NumPhils; a++ {
			pid := graph.PhilID(a)
			// Outcomes must not mutate the world they are computed from, so
			// the shared frontier world can be probed directly; each outcome
			// is then applied to its own clone.
			outcomes := prog.Outcomes(entry.w, pid, obuf[:0])
			obuf = outcomes
			off := int32(len(ss.succs))
			for i := range outcomes {
				succWorld := clone(entry.w, spare)
				spare = nil
				succOutcomes := prog.Outcomes(succWorld, pid, sbuf[:0])
				sbuf = succOutcomes
				if len(succOutcomes) != len(outcomes) {
					return nil, fmt.Errorf("modelcheck: %s produced unstable outcome sets for P%d", prog.Name(), pid)
				}
				succOutcomes[i].Do(succWorld, pid)
				succWorld.Step++
				succID, isNew := intern(succWorld)
				ss.succs = append(ss.succs, succID)
				ss.probs = append(ss.probs, outcomes[i].Prob)
				if isNew {
					if ss.NumStates() > maxStates {
						ss.Truncated = true
						// Keep the partially built transition for consistency
						// but stop expanding new states.
						frontier = nil
					} else {
						frontier = append(frontier, frontierEntry{id: succID, w: succWorld})
					}
				} else {
					spare = succWorld
				}
			}
			ss.trans[base+a] = transition{off: off, n: int32(len(outcomes))}
		}
		ss.expanded[entry.id] = true
		if ss.Truncated {
			break
		}
	}

	// States left unexpanded (zero-width transitions) get self-loops so that
	// the analyses remain well defined on truncated spaces.
	for s := 0; s < ss.NumStates(); s++ {
		if ss.expanded[s] {
			continue
		}
		for a := 0; a < ss.NumPhils; a++ {
			ss.trans[s*ss.NumPhils+a] = transition{off: int32(len(ss.succs)), n: 1}
			ss.succs = append(ss.succs, int32(s))
			ss.probs = append(ss.probs, 1)
		}
	}
	return ss, nil
}

// interruptCheckInterval is how often (in expanded states) Options.Interrupt
// is polled.
const interruptCheckInterval = 1024

// Reachable returns the set of states reachable from the initial state using
// any actions and any outcomes, as a boolean slice indexed by state.
func (ss *StateSpace) Reachable() []bool {
	seen := make([]bool, ss.NumStates())
	stack := []int{ss.initial}
	seen[ss.initial] = true
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for a := 0; a < ss.NumPhils; a++ {
			for _, succ := range ss.succsOf(s, a) {
				if !seen[succ] {
					seen[succ] = true
					stack = append(stack, int(succ))
				}
			}
		}
	}
	return seen
}

// EatReachableFromEverywhere reports whether, from every reachable state, a
// state in which some philosopher is eating remains reachable (existentially
// over scheduling and randomness). A false answer exhibits a true dead end:
// a region from which no meal can ever happen again under any scheduling —
// for example the hold-and-wait deadlock of the colored-philosophers baseline
// on an odd ring.
func (ss *StateSpace) EatReachableFromEverywhere() bool {
	return len(ss.DeadRegionStates()) == 0
}

// DeadRegionStates returns the reachable states from which no eating state is
// reachable under any scheduling and any random outcomes.
func (ss *StateSpace) DeadRegionStates() []int {
	n := ss.NumStates()
	// Backward reachability from eating states over the "some action/outcome"
	// relation: build reverse adjacency implicitly by iterating forward.
	canReach := make([]bool, n)
	for s := 0; s < n; s++ {
		if ss.anyEating[s] {
			canReach[s] = true
		}
	}
	// Iterate to fixpoint (the state graph is small enough for the quadratic
	// worst case; typical convergence is a few passes).
	changed := true
	for changed {
		changed = false
		for s := 0; s < n; s++ {
			if canReach[s] {
				continue
			}
			for a := 0; a < ss.NumPhils && !canReach[s]; a++ {
				for _, succ := range ss.succsOf(s, a) {
					if canReach[succ] {
						canReach[s] = true
						changed = true
						break
					}
				}
			}
		}
	}
	reachable := ss.Reachable()
	var dead []int
	for s := 0; s < n; s++ {
		if reachable[s] && !canReach[s] {
			dead = append(dead, s)
		}
	}
	return dead
}

// DeadlockStates returns the reachable states in which every action of every
// philosopher is a self-loop: the system can never change state again. The
// paper's algorithms have none; the naive hold-and-wait baselines do.
func (ss *StateSpace) DeadlockStates() []int {
	reachable := ss.Reachable()
	var out []int
	for s := 0; s < ss.NumStates(); s++ {
		if !reachable[s] {
			continue
		}
		stuck := true
		for a := 0; a < ss.NumPhils && stuck; a++ {
			for _, succ := range ss.succsOf(s, a) {
				if int(succ) != s {
					stuck = false
					break
				}
			}
		}
		if stuck {
			out = append(out, s)
		}
	}
	return out
}

// Package modelcheck explores the complete state space of small generalized
// dining-philosopher systems and analyses it as a Markov decision process
// (MDP): the adversary chooses which philosopher moves, the random draws of
// the algorithms resolve probabilistically.
//
// The paper's positive and negative results are statements about this MDP:
//
//   - Theorems 1 and 2 assert that, on suitable topologies, there EXISTS a
//     fair adversary under which LR1 (respectively LR2) makes no progress
//     with positive probability.
//   - Theorems 3 and 4 assert that under EVERY fair adversary GDP1 makes
//     progress (and GDP2 serves every philosopher) with probability 1.
//
// The corresponding verifiable structure is an end component of the
// "no protected philosopher eats" sub-MDP that offers an allowed action for
// every philosopher: inside such a component the adversary can stay forever
// with probability 1 while scheduling every philosopher infinitely often
// (fairness), so its existence is exactly the negative result, and its
// absence on every reachable part of the state space certifies the positive
// result for the explored instance. FindStarvationTrap computes it. The
// graph and game algorithms themselves live in internal/graphalg and operate
// on the read-only graphalg.StateView interface, which StateSpace
// implements; this package owns only the storage and the exploration.
//
// # Sharded storage
//
// The explored MDP is stored in 2^k independently-owned shards (Options.
// Shards). Each shard holds its own intern table (canonical key → id), key
// arena and flat trans/succs/probs arrays; a state belongs to the shard
// selected by a deterministic FNV-1a hash of its canonical key, and its
// shard-internal address is the packed id shard<<localBits | local. During
// parallel exploration every shard is written by exactly one goroutine, so
// interning and appending need no locks and no single sequential merge.
//
// On top of the shards sits the dense view: states are also numbered
// 0..NumStates-1 in exploration (breadth-first discovery) order, which is
// the numbering every exported method and analysis uses. The dense order is
// identical for every (workers, shards) combination — it equals the
// sequential exploration's numbering — so verdicts, witnesses and
// counterexample traces never depend on how the exploration was
// parallelized; only the internal shard layout does, and the remap test in
// golden_test.go pins the correspondence.
//
// # Exploration order and parallelism
//
// Explore is a level-synchronous breadth-first search. Each BFS level runs
// four phases:
//
//  1. Expand: workers expand disjoint contiguous chunks of the level against
//     the read-only shard intern tables and record, per chunk, the outcome
//     probabilities and successor references (dense ids for known states,
//     pending indices for locally new ones).
//  2. Intern: one goroutine per shard replays every chunk's pending keys in
//     (chunk, first-encounter) order and interns the ones hashing to its
//     shard, assigning packed ids — disjoint shards, no lock, no global
//     merge.
//  3. Gather: workers assign the new states their dense ids — the (chunk,
//     first-encounter) order is exactly the order the sequential exploration
//     discovers them in — record state labels, and build the next frontier.
//  4. Rows: one goroutine per shard writes the transition rows of the level
//     states it owns, in frontier order, resolving pending references
//     through the intern results.
//
// The sequential path (workers = 1, shards = 1) is the same order executed
// inline with no phases. A level that could cross Options.MaxStates is
// merged by a single goroutine in global frontier order instead, so
// truncated explorations stop at exactly the state the sequential
// exploration stops at; this endgame runs at most once, on the final level.
package modelcheck

import (
	"fmt"
	"runtime"
	"slices"
	"sync"
	"unsafe"

	"repro/internal/graph"
	"repro/internal/graphalg"
	"repro/internal/sim"
)

// Options configures an exploration.
type Options struct {
	// MaxStates caps the number of distinct states explored; beyond it the
	// exploration stops and the result is marked Truncated. Zero means
	// DefaultMaxStates.
	MaxStates int
	// Protected is the set of philosophers whose meals count as "bad" for the
	// starvation-trap analysis; nil or empty means all philosophers.
	Protected []graph.PhilID
	// Hunger overrides the AlwaysHungry workload (rarely useful: the paper's
	// progress analysis assumes saturated demand). When set, exploration
	// clones carry the full run metrics so that metric-reading models
	// (sim.NeverHungryAgainAfter) keep working; the default workload uses
	// the faster protocol-only clones.
	Hunger sim.HungerModel
	// KeepKeys retains the canonical key of every state for debugging and
	// witness extraction (StateSpace.KeyOf, Trap.WitnessKey). Off by default:
	// on large instances the per-state key copies dominate the exploration's
	// memory footprint, and the analyses never need them.
	KeepKeys bool
	// Interrupt is polled periodically during exploration when non-nil; a
	// non-nil return aborts Explore with that error. It is how context
	// cancellation reaches the exploration loop.
	Interrupt func() error
	// Workers bounds the exploration goroutines (0 = one per CPU,
	// 1 = sequential). The explored space is identical for every value; only
	// wall-clock changes.
	Workers int
	// Shards is the number of independently-owned state stores (rounded up
	// to a power of two, capped at MaxShards; 0 = match the resolved worker
	// count). Workers intern and append into disjoint shards, removing the
	// sequential per-level merge; the dense state numbering — and therefore
	// every analysis, verdict and counterexample — is identical for every
	// value. Negative values are an error.
	Shards int
	// Symmetry, when non-nil and non-trivial, interns orbit-canonical keys
	// (sim.World.AppendCanonicalKey) instead of plain keys, quotienting the
	// state space by the canonicalizer's automorphism group: each stored
	// state is the first-discovered (representative) world of its orbit, and
	// the dense discovery-order numbering stays deterministic for every
	// (workers, shards) pair. Off (nil) by default; the nil path is
	// byte-identical to the unreduced exploration. The caller is responsible
	// for only quotienting by groups the program is equivariant under (see
	// dining.WithSymmetry for the gating) and for the canonicalizer matching
	// the explored topology. Crashed philosophers need no special casing:
	// the crashed flag rides in the permuted key image, so a crash pattern
	// only collides with its genuine automorphic images.
	Symmetry *graph.OrbitCanonicalizer
}

// DefaultMaxStates bounds explorations when Options.MaxStates is zero.
const DefaultMaxStates = 2_000_000

// maskablePhils is the philosopher-count ceiling for the per-state eating
// bitmasks behind FindStarvationTrapAgainst. Instances beyond it (far larger
// than anything exhaustively explorable) simply skip the masks.
const maskablePhils = 64

const (
	// localBits is the width of the shard-local index inside a packed state
	// id: packed = shard<<localBits | local.
	localBits = 25
	// localMask extracts the shard-local index from a packed id.
	localMask = 1<<localBits - 1
	// MaxShards is the shard-count ceiling. MaxShards<<localBits is exactly
	// 1<<31, so every packed id fits an int32.
	MaxShards = 64
)

// transition is one (state, philosopher) action: a window into the owning
// shard's succs/probs backing arrays. Storing offsets instead of per-action
// slices keeps each shard's MDP fragment in three flat allocations instead
// of ~2·NumPhils+1 small ones per state.
type transition struct {
	// off is the offset of the action's first outcome in succs/probs.
	off int32
	// n is the number of outcomes.
	n int32
}

// shardStore is one independently-owned fragment of the explored MDP. All
// per-state arrays are indexed by the shard-local index of the packed id;
// succs holds dense state ids, so reading a transition row never needs a
// cross-shard translation.
type shardStore struct {
	// index dedupes states by canonical key; the value is the packed id.
	// During a parallel expansion phase the map is strictly read-only
	// (workers probe it concurrently with the no-copy string(buf) idiom);
	// all writes happen in the per-shard intern phase between levels.
	index map[string]int32
	// dense maps the shard-local index to the state's dense id.
	dense []int32
	// trans holds NumPhils consecutive transitions per state: the transition
	// of philosopher a from local state l is trans[l*NumPhils+a].
	trans []transition
	// succs and probs are the flat backing arrays shared by every transition
	// of this shard: succs[t.off+i] is the dense id of the state reached by
	// outcome i and probs[t.off+i] its probability.
	succs []int32
	probs []float64
	// keys holds the canonical key of every state (local-index-aligned).
	// Retained only when Options.KeepKeys is set; nil otherwise.
	keys []string
}

// StateSpace is the explored MDP: 2^k shard stores plus the dense
// exploration-order view over them. It implements graphalg.StateView; all
// exported state indices are dense ids.
type StateSpace struct {
	topo   *graph.Topology
	prog   sim.Program
	hunger sim.HungerModel

	// NumPhils is the number of philosophers (actions per state).
	NumPhils int
	// shards are the per-shard stores; len(shards) is a power of two.
	shards []shardStore
	// shardMask is len(shards)-1, the mask applied to the key hash.
	shardMask uint32
	// order maps dense ids to packed ids — the remap between the analysis
	// view and the sharded storage.
	order []int32
	// bad[s] reports whether a protected philosopher is eating in dense
	// state s.
	bad []bool
	// anyEating[s] reports whether any philosopher is eating in state s.
	anyEating []bool
	// eating[s] is the bitmask of philosophers eating in state s, backing
	// FindStarvationTrapAgainst; nil when NumPhils > maskablePhils.
	eating []uint64
	// expanded[s] reports whether state s had its outgoing transitions fully
	// computed. States discovered but not expanded (possible only when
	// Truncated) are excluded from the safety analyses so that truncation can
	// never fabricate a trap.
	expanded []bool
	// hasKeys records whether the exploration retained canonical keys.
	hasKeys bool
	// Truncated reports whether MaxStates was hit; analyses on a truncated
	// space are only valid for the explored fragment. It shares the padding
	// slot of hasKeys, which keeps the struct inside the allocation size
	// class it occupied before the symmetry surface was added.
	Truncated bool
	// sym carries the symmetry-quotient surface behind one pointer, so an
	// unreduced space pays a single word and keeps its pre-symmetry
	// allocation size class; nil when the space is unreduced (including
	// trivial-group requests).
	sym *symSpace
	// initial is the dense index of the initial state (always 0).
	initial int
	// workers is the resolved exploration worker count; the lazily built
	// predecessor index reuses it for its parallel construction.
	workers int
	// predOnce/pred cache the reverse-CSR predecessor index shared by every
	// analysis of this space (see PredecessorIndex).
	predOnce sync.Once
	pred     *graphalg.PredecessorIndex
}

// PredecessorIndex returns the reverse-CSR predecessor index of the explored
// MDP, building it on first use (in parallel over state chunks, with the
// exploration's worker count) and caching it on the space — all worklist
// analyses of one space, including every property of one Engine.Check run
// and the per-philosopher trap checks of lockout-freedom, share the one
// index. The index is immutable and safe for concurrent use.
func (ss *StateSpace) PredecessorIndex() *graphalg.PredecessorIndex {
	ss.predOnce.Do(func() {
		ss.pred = graphalg.NewPredecessorIndex(ss, ss.workers)
	})
	return ss.pred
}

// NumStates returns the number of distinct states explored.
func (ss *StateSpace) NumStates() int { return len(ss.bad) }

// NumActions returns the number of actions per state (one per philosopher).
// It implements graphalg.StateView.
func (ss *StateSpace) NumActions() int { return ss.NumPhils }

// Initial returns the dense index of the initial state.
func (ss *StateSpace) Initial() int { return ss.initial }

// NumShards returns the number of shard stores the space is split into.
func (ss *StateSpace) NumShards() int { return len(ss.shards) }

// locate resolves a dense id to its owning shard store and local index.
func (ss *StateSpace) locate(s int) (*shardStore, int32) {
	p := ss.order[s]
	return &ss.shards[p>>localBits], p & localMask
}

// Succs returns the dense ids of the successor states of philosopher a's
// action from dense state s. The returned slice aliases the owning shard's
// backing array and must not be modified. It implements graphalg.StateView.
func (ss *StateSpace) Succs(s, a int) []int32 {
	st, l := ss.locate(s)
	t := st.trans[int(l)*ss.NumPhils+a]
	return st.succs[t.off : t.off+t.n]
}

// Probs returns the outcome probabilities of philosopher a's action from
// dense state s, aligned with Succs. The returned slice aliases the owning
// shard's backing array and must not be modified.
func (ss *StateSpace) Probs(s, a int) []float64 {
	st, l := ss.locate(s)
	t := st.trans[int(l)*ss.NumPhils+a]
	return st.probs[t.off : t.off+t.n]
}

// Bad reports whether a protected philosopher is eating in state s. It
// implements graphalg.StateView.
func (ss *StateSpace) Bad(s int) bool { return ss.bad[s] }

// Expanded reports whether state s had its outgoing transitions fully
// computed (false only on truncated explorations). It implements
// graphalg.StateView.
func (ss *StateSpace) Expanded(s int) bool { return ss.expanded[s] }

// KeyOf returns the intern key of state s — under a symmetry quotient the
// orbit-canonical key, otherwise the plain world key — or "" when the
// exploration did not retain keys (Options.KeepKeys).
func (ss *StateSpace) KeyOf(s int) string {
	if !ss.hasKeys {
		return ""
	}
	st, l := ss.locate(s)
	return st.keys[l]
}

// symSpace is the symmetry-quotient surface of a StateSpace, allocated only
// for reduced explorations so the unreduced struct layout — and with it the
// byte-identical symmetry-off exploration — is preserved.
type symSpace struct {
	// canon is the orbit canonicalizer the space was quotiented by.
	canon *graph.OrbitCanonicalizer
	// repKeys holds, per dense state, the plain (unreduced) key of the
	// orbit's representative world — the first-discovered concrete state.
	// Retained only when Options.KeepKeys is also set.
	repKeys []string
	// repBuf is the sequential exploration path's scratch buffer for
	// encoding representative keys; it lives here rather than on the
	// explorer so the unreduced explorer carries no symmetry fields.
	repBuf []byte
}

// Symmetric reports whether the space was explored under a symmetry quotient
// (Options.Symmetry with a non-trivial group).
func (ss *StateSpace) Symmetric() bool { return ss.sym != nil }

// Canonicalizer returns the orbit canonicalizer the space was quotiented by,
// or nil for an unreduced space.
func (ss *StateSpace) Canonicalizer() *graph.OrbitCanonicalizer {
	if ss.sym == nil {
		return nil
	}
	return ss.sym.canon
}

// RepresentativeKeyOf returns the plain (unreduced) key of the representative
// world of dense state s — the first concrete state of its orbit in discovery
// order. Retained only on symmetry-quotient explorations with
// Options.KeepKeys; "" otherwise.
func (ss *StateSpace) RepresentativeKeyOf(s int) string {
	if ss.sym == nil || ss.sym.repKeys == nil {
		return ""
	}
	return ss.sym.repKeys[s]
}

// denseOf returns the dense id of the state interned under key, or -1 when
// the key was never interned.
func (ss *StateSpace) denseOf(key []byte) int32 {
	st := &ss.shards[ss.shardOf(key)]
	packed, ok := st.index[string(key)]
	if !ok {
		return -1
	}
	return st.dense[packed&localMask]
}

// NumTransitions returns the total number of (state, philosopher) actions.
func (ss *StateSpace) NumTransitions() int { return ss.NumStates() * ss.NumPhils }

// NumBadStates returns the number of states in which a protected philosopher
// is eating.
func (ss *StateSpace) NumBadStates() int {
	n := 0
	for _, b := range ss.bad {
		if b {
			n++
		}
	}
	return n
}

// fnvShard hashes a canonical key with FNV-1a — a fixed, seedless hash, so
// the shard layout is deterministic across runs and processes (unlike Go's
// randomized map hash). One generic body serves both key representations;
// exploration hashes the scratch []byte, tests and tools the interned
// string.
func fnvShard[T ~string | ~[]byte](key T, mask uint32) uint32 {
	if mask == 0 {
		return 0
	}
	const prime = 16777619
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h = (h ^ uint32(key[i])) * prime
	}
	return h & mask
}

// shardOf returns the owning shard of a canonical key.
func (ss *StateSpace) shardOf(key []byte) uint32 { return fnvShard(key, ss.shardMask) }

// shardOfString is shardOf for an already-materialized key string.
func (ss *StateSpace) shardOfString(key string) uint32 { return fnvShard(key, ss.shardMask) }

// byteArena interns byte strings into large shared chunks: the returned
// string views the arena's backing array directly, so interning a key costs
// an amortized chunk allocation instead of one string copy per state. A
// chunk is never reallocated once strings point into it (growth switches to
// a fresh chunk), so the returned strings stay valid for the lifetime of
// whatever retains them.
type byteArena struct {
	buf []byte
}

// arenaChunkSize is the allocation unit of byteArena.
const arenaChunkSize = 1 << 16

// intern copies b into the arena and returns a stable string view of it.
func (a *byteArena) intern(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	if cap(a.buf)-len(a.buf) < len(b) {
		size := arenaChunkSize
		if len(b) > size {
			size = len(b)
		}
		a.buf = make([]byte, 0, size)
	}
	off := len(a.buf)
	a.buf = append(a.buf, b...)
	return unsafe.String(&a.buf[off], len(b))
}

// frontEntry is one state of the current BFS level: its world and its packed
// id. The dense id is implicit — the level's states are dense-contiguous, so
// the dense id of front[i] is levelStart+i.
type frontEntry struct {
	w      *sim.World
	packed int32
}

// scratch is the reusable per-worker expansion state: key and outcome
// buffers, a world free-list, and — for the parallel path — the recorded
// expansion of the worker's chunk awaiting the per-shard merge phases.
type scratch struct {
	keyBuf     []byte
	obuf, sbuf []sim.Outcome
	// free recycles protocol-clone worlds: revisited successors and expanded
	// frontier worlds go back here and their backing slices are reused by the
	// next clone. Disabled (noRecycle) under a custom hunger model, whose
	// full clones carry metric slices the protocol-clone path must not reuse.
	free      []*sim.World
	noRecycle bool

	// Parallel expansion record, flattened in (state, action, outcome) order.
	counts []int32   // per (state, action): number of outcomes
	probs  []float64 // per outcome: probability
	refs   []int32   // per outcome: >= 0 dense state id, else ^pendingIdx
	// Pending (locally new) states, in first-encounter order.
	pkeys   []string     // canonical keys
	pworlds []*sim.World // successor worlds
	pshard  []uint8      // owning shard (hash computed once, at expansion)
	created []bool       // set by the intern phase: this entry created its state
	// resolve is the pending-index resolution scratch: the intern phase
	// stores packed ids here; the sequential truncation endgame stores dense
	// ids instead (only one of the two runs per level).
	resolve []int32
	local   map[string]int32 // canonical key -> pending index, this level only
	err     error
}

func newScratch(noRecycle bool) *scratch {
	return &scratch{noRecycle: noRecycle, local: make(map[string]int32)}
}

func (s *scratch) takeFree() *sim.World {
	if n := len(s.free); n > 0 {
		w := s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		return w
	}
	return nil
}

func (s *scratch) putFree(w *sim.World) {
	if !s.noRecycle {
		s.free = append(s.free, w)
	}
}

// shardScratch is the per-shard merge-phase state.
type shardScratch struct {
	// newPerChunk[ci] counts the states this shard created from chunk ci's
	// pendings in the last intern phase; the gather phase prefix-sums these
	// into dense-id bases.
	newPerChunk []int32
	err         error
}

// explorer carries the shared state of one Explore call.
type explorer struct {
	ss *StateSpace
	// opts is the caller's Options with every knob normalized in place —
	// MaxStates resolved against the default, Symmetry trivial-group
	// requests cleared to nil — so the explorer carries no duplicate
	// resolved fields and keeps its pre-symmetry allocation size class.
	opts      Options
	protected map[graph.PhilID]bool

	// arena interns the sequential path's map keys in large chunks, so the
	// per-state key string of the old explorer disappears. The parallel path
	// uses the pending keys the workers already materialised.
	arena byteArena
	// zeroTrans is the reusable blank transition row appended per new state.
	zeroTrans []transition

	// front holds the current BFS level in discovery order (sequentially: the
	// whole queue, consumed in place); nextFront collects the next level
	// during the merge phases. levelStart is the dense id of front[0].
	front      []frontEntry
	nextFront  []frontEntry
	levelStart int
}

// isProtected reports whether p's meals count as "bad".
func (e *explorer) isProtected(p graph.PhilID) bool {
	return len(e.protected) == 0 || e.protected[p]
}

// appendKey appends the intern key of w: the orbit-canonical encoding under a
// symmetry quotient, the plain encoding otherwise. The nil-canon branch keeps
// the unreduced path byte-identical to a plain AppendKey call.
func (e *explorer) appendKey(w *sim.World, buf []byte) []byte {
	if c := e.opts.Symmetry; c != nil {
		return w.AppendCanonicalKey(c, buf)
	}
	return w.AppendKey(buf)
}

// keepRepKeys reports whether the exploration records the plain key of each
// orbit's representative world alongside the canonical ones.
func (e *explorer) keepRepKeys() bool {
	return e.opts.Symmetry != nil && e.opts.KeepKeys
}

// clone copies src for one explored transition, reusing spare when possible.
// With a custom hunger model the clones must carry run metrics (the model
// may read them, e.g. NeverHungryAgainAfter reads EatsBy), so fall back to
// full Clone and skip recycling.
func (e *explorer) clone(src, spare *sim.World) *sim.World {
	if e.opts.Hunger != nil {
		return src.Clone()
	}
	return src.CloneProtocolInto(spare)
}

// stateFlags computes the per-state labels recorded at intern time.
func (e *explorer) stateFlags(w *sim.World) (bad, eat bool, mask uint64) {
	for p := range w.Phils {
		if w.Phils[p].Phase == sim.Eating {
			eat = true
			if p < maskablePhils {
				mask |= 1 << uint(p)
			}
			if e.isProtected(graph.PhilID(p)) {
				bad = true
			}
		}
	}
	return bad, eat, mask
}

// addState interns a newly discovered state into shard g and appends its
// dense-view entries. key must be a stable string (arena-interned or
// heap-allocated); w is the state's world. It returns the packed and dense
// ids. It is used by the sequential path and the truncation endgame; the
// parallel phases split the same work between internShard and gatherChunk.
func (e *explorer) addState(g uint32, key string, w *sim.World) (packed, dense int32, err error) {
	ss := e.ss
	st := &ss.shards[g]
	local := int32(len(st.dense))
	if local > localMask {
		return 0, 0, fmt.Errorf("modelcheck: shard %d overflowed %d states; raise Options.Shards", g, localMask+1)
	}
	packed = int32(g)<<localBits | local
	dense = int32(len(ss.bad))
	st.index[key] = packed
	st.dense = append(st.dense, dense)
	st.trans = append(st.trans, e.zeroTrans...)
	if e.opts.KeepKeys {
		st.keys = append(st.keys, key)
	}
	if e.keepRepKeys() {
		ss.sym.repBuf = w.AppendKey(ss.sym.repBuf[:0])
		ss.sym.repKeys = append(ss.sym.repKeys, string(ss.sym.repBuf))
	}
	ss.order = append(ss.order, packed)
	ss.expanded = append(ss.expanded, false)
	bad, eat, mask := e.stateFlags(w)
	ss.bad = append(ss.bad, bad)
	ss.anyEating = append(ss.anyEating, eat)
	if ss.NumPhils <= maskablePhils {
		ss.eating = append(ss.eating, mask)
	}
	return packed, dense, nil
}

// resolveShards normalizes an Options.Shards value against the resolved
// worker count: 0 matches workers, everything is rounded up to a power of
// two and capped at MaxShards.
func resolveShards(shards, workers int) int {
	if shards <= 0 {
		shards = workers
	}
	k := 1
	for k < shards && k < MaxShards {
		k <<= 1
	}
	return k
}

// Explore builds the complete reachable state space of prog on topo.
func Explore(topo *graph.Topology, prog sim.Program, opts Options) (*StateSpace, error) {
	if topo == nil || prog == nil {
		return nil, fmt.Errorf("modelcheck: Explore requires a topology and a program")
	}
	if opts.Shards < 0 {
		return nil, fmt.Errorf("modelcheck: Options.Shards must be >= 0, got %d", opts.Shards)
	}
	maxStates := opts.MaxStates
	if maxStates <= 0 {
		maxStates = DefaultMaxStates
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	shards := resolveShards(opts.Shards, workers)
	canon := opts.Symmetry
	if canon != nil {
		if canon.Topology() != topo {
			return nil, fmt.Errorf("modelcheck: Options.Symmetry canonicalizer is for topology %q, not %q",
				canon.Topology().Name(), topo.Name())
		}
		if canon.Trivial() {
			canon = nil // the identity quotient is the unreduced exploration
		}
	}
	// The explorer carries the normalized options — resolved state cap,
	// trivial-group symmetry cleared — instead of duplicate resolved fields.
	opts.MaxStates = maxStates
	opts.Symmetry = canon

	ss := &StateSpace{
		topo:      topo,
		prog:      prog,
		hunger:    opts.Hunger,
		NumPhils:  topo.NumPhilosophers(),
		shards:    make([]shardStore, shards),
		shardMask: uint32(shards - 1),
		hasKeys:   opts.KeepKeys,
		workers:   workers,
	}
	if canon != nil {
		ss.sym = &symSpace{canon: canon}
	}
	for i := range ss.shards {
		ss.shards[i].index = make(map[string]int32)
	}
	e := &explorer{
		ss:        ss,
		opts:      opts,
		zeroTrans: make([]transition, ss.NumPhils),
	}
	if len(opts.Protected) > 0 {
		e.protected = make(map[graph.PhilID]bool, len(opts.Protected))
		for _, p := range opts.Protected {
			e.protected[p] = true
		}
	}

	initial := sim.NewWorld(topo)
	if opts.Hunger != nil {
		initial.Hunger = opts.Hunger
	}
	prog.Init(initial)

	w0 := e.clone(initial, nil)
	keyBytes := e.appendKey(w0, nil)
	packed0, _, err := e.addState(ss.shardOf(keyBytes), e.arena.intern(keyBytes), w0)
	if err != nil {
		return nil, err
	}
	ss.initial = 0
	e.front = append(e.front, frontEntry{w: w0, packed: packed0})

	if workers == 1 && shards == 1 {
		err = e.exploreSequential()
	} else {
		err = e.exploreSharded(workers)
	}
	if err != nil {
		return nil, err
	}

	// States left unexpanded (zero-width transitions) get self-loops so that
	// the analyses remain well defined on truncated spaces.
	for s := 0; s < ss.NumStates(); s++ {
		if ss.expanded[s] {
			continue
		}
		st, l := ss.locate(s)
		base := int(l) * ss.NumPhils
		for a := 0; a < ss.NumPhils; a++ {
			st.trans[base+a] = transition{off: int32(len(st.succs)), n: 1}
			st.succs = append(st.succs, int32(s))
			st.probs = append(st.probs, 1)
		}
	}
	return ss, nil
}

// interruptCheckInterval is how often (in expanded states) Options.Interrupt
// is polled.
const interruptCheckInterval = 1024

// exploreSequential runs the BFS inline on a single shard. front doubles as
// the FIFO queue: new states are appended in id order, so the world of state
// id sits at front[id] until the state is expanded. With one shard the
// packed, local and dense ids of a state coincide, which is what makes this
// path free of any translation work.
func (e *explorer) exploreSequential() error {
	ss := e.ss
	st := &ss.shards[0]
	s := newScratch(e.opts.Hunger != nil)
	for head := 0; head < len(e.front); head++ {
		if e.opts.Interrupt != nil && head%interruptCheckInterval == 0 {
			if err := e.opts.Interrupt(); err != nil {
				return err
			}
		}
		w := e.front[head].w
		e.front[head].w = nil
		id := int32(head)

		base := int(id) * ss.NumPhils
		for a := 0; a < ss.NumPhils; a++ {
			pid := graph.PhilID(a)
			// Outcomes must not mutate the world they are computed from, so
			// the shared frontier world can be probed directly; each outcome
			// is then applied to its own clone.
			outcomes := ss.prog.Outcomes(w, pid, s.obuf[:0])
			s.obuf = outcomes
			off := int32(len(st.succs))
			for i := range outcomes {
				succ := e.clone(w, s.takeFree())
				succOut := ss.prog.Outcomes(succ, pid, s.sbuf[:0])
				s.sbuf = succOut
				if len(succOut) != len(outcomes) {
					return fmt.Errorf("modelcheck: %s produced unstable outcome sets for P%d", ss.prog.Name(), pid)
				}
				succOut[i].Do(succ, pid)
				succ.Step++
				s.keyBuf = e.appendKey(succ, s.keyBuf[:0])
				var sid int32
				// The string(keyBuf) map probe is the no-copy idiom: probing
				// a seen state allocates nothing; genuinely new states intern
				// their key into the shared arena.
				if gid, ok := st.index[string(s.keyBuf)]; ok {
					sid = gid
					s.putFree(succ)
				} else {
					var err error
					if _, sid, err = e.addState(0, e.arena.intern(s.keyBuf), succ); err != nil {
						return err
					}
					e.front = append(e.front, frontEntry{w: succ, packed: sid})
				}
				st.succs = append(st.succs, sid)
				st.probs = append(st.probs, outcomes[i].Prob)
			}
			st.trans[base+a] = transition{off: off, n: int32(len(outcomes))}
		}
		ss.expanded[id] = true
		s.putFree(w)
		if ss.NumStates() > e.opts.MaxStates {
			ss.Truncated = true
			return nil
		}
	}
	return nil
}

// grown extends s by n zeroed elements, amortizing reallocation.
func grown[T any](s []T, n int) []T {
	s = slices.Grow(s, n)
	s = s[:len(s)+n]
	clear(s[len(s)-n:])
	return s
}

// exploreSharded runs the BFS level by level through the four phases
// described in the package comment. Every phase is parallel — over chunks
// (expand, gather) or over shards (intern, rows) — and every write target is
// owned by exactly one goroutine, so the only synchronization is the barrier
// between phases. A level that could cross the state cap falls back to
// mergeLevelSequential, preserving the sequential truncation point exactly.
func (e *explorer) exploreSharded(workers int) error {
	ss := e.ss
	scratches := make([]*scratch, workers)
	for i := range scratches {
		scratches[i] = newScratch(e.opts.Hunger != nil)
	}
	shardScr := make([]*shardScratch, len(ss.shards))
	for g := range shardScr {
		shardScr[g] = &shardScratch{}
	}
	chunkLo := make([]int, 0, workers)
	chunkBase := make([]int, 0, workers)
	var wg sync.WaitGroup

	for len(e.front) > 0 {
		if e.opts.Interrupt != nil {
			if err := e.opts.Interrupt(); err != nil {
				return err
			}
		}

		// Phase 1: expand disjoint chunks of the level in parallel.
		n := len(e.front)
		chunk := (n + workers - 1) / workers
		active := 0
		chunkLo = chunkLo[:0]
		for lo := 0; lo < n; lo += chunk {
			hi := min(lo+chunk, n)
			s := scratches[active]
			chunkLo = append(chunkLo, lo)
			active++
			wg.Add(1)
			go func(s *scratch, entries []frontEntry) {
				defer wg.Done()
				e.expandChunk(s, entries)
			}(s, e.front[lo:hi])
		}
		wg.Wait()
		// The first error in chunk order keeps error reporting deterministic
		// (each chunk's contents are deterministic, so so is its error).
		for _, s := range scratches[:active] {
			if s.err != nil {
				return s.err
			}
		}

		// Truncation endgame: if this level could cross the state cap
		// (totalPending over-counts cross-chunk duplicates, so the trigger
		// errs on the safe side), merge it in global frontier order on one
		// goroutine so the exploration stops at exactly the state the
		// sequential exploration stops at. This runs at most on the final
		// level of a capped run — never on the steady-state path.
		totalPending := 0
		for _, s := range scratches[:active] {
			totalPending += len(s.pkeys)
		}
		d0 := ss.NumStates()
		if d0+totalPending > e.opts.MaxStates {
			if err := e.mergeLevelSequential(scratches[:active], chunkLo); err != nil {
				return err
			}
			if ss.Truncated {
				return nil
			}
			e.front, e.nextFront = e.nextFront, e.front[:0]
			e.levelStart = d0
			continue
		}

		// Phase 2: intern pending states, one goroutine per shard.
		for g := range ss.shards {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				e.internShard(uint32(g), shardScr[g], scratches[:active])
			}(g)
		}
		wg.Wait()
		for _, sc := range shardScr {
			if sc.err != nil {
				return sc.err
			}
		}

		// Dense-id bases: chunk ci's creations become dense ids
		// d0+chunkBase[ci].. in pending order — the global first-encounter
		// order, which is exactly the sequential discovery order.
		chunkBase = chunkBase[:0]
		totalCreated := 0
		for ci := 0; ci < active; ci++ {
			chunkBase = append(chunkBase, totalCreated)
			for _, sc := range shardScr {
				totalCreated += int(sc.newPerChunk[ci])
			}
		}
		ss.order = grown(ss.order, totalCreated)
		ss.bad = grown(ss.bad, totalCreated)
		ss.anyEating = grown(ss.anyEating, totalCreated)
		ss.expanded = grown(ss.expanded, totalCreated)
		if ss.NumPhils <= maskablePhils {
			ss.eating = grown(ss.eating, totalCreated)
		}
		if e.keepRepKeys() {
			ss.sym.repKeys = grown(ss.sym.repKeys, totalCreated)
		}
		e.nextFront = grown(e.nextFront[:0], totalCreated)

		// Phase 3: assign dense ids, record labels and build the next
		// frontier, one goroutine per chunk (disjoint dense-id ranges).
		for ci := 0; ci < active; ci++ {
			wg.Add(1)
			go func(s *scratch, base int) {
				defer wg.Done()
				e.gatherChunk(s, d0, base)
			}(scratches[ci], chunkBase[ci])
		}
		wg.Wait()

		// Phase 4: write transition rows, one goroutine per shard.
		for g := range ss.shards {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				e.writeRows(uint32(g), scratches[:active], chunkLo)
			}(g)
		}
		wg.Wait()

		e.front, e.nextFront = e.nextFront, e.front[:0]
		e.levelStart = d0
	}
	return nil
}

// expandChunk computes the outcome record of one contiguous chunk of the
// current level. It only reads shared state (the shard intern tables, the
// program, the frontier worlds of its own chunk) and writes the worker-local
// scratch.
func (e *explorer) expandChunk(s *scratch, entries []frontEntry) {
	ss := e.ss
	s.counts = s.counts[:0]
	s.probs = s.probs[:0]
	s.refs = s.refs[:0]
	s.pkeys = s.pkeys[:0]
	s.pworlds = s.pworlds[:0]
	s.pshard = s.pshard[:0]
	s.created = s.created[:0]
	s.resolve = s.resolve[:0]
	clear(s.local)
	s.err = nil
	for k := range entries {
		if e.opts.Interrupt != nil && k%interruptCheckInterval == 0 {
			if err := e.opts.Interrupt(); err != nil {
				s.err = err
				return
			}
		}
		w := entries[k].w
		for a := 0; a < ss.NumPhils; a++ {
			pid := graph.PhilID(a)
			outcomes := ss.prog.Outcomes(w, pid, s.obuf[:0])
			s.obuf = outcomes
			s.counts = append(s.counts, int32(len(outcomes)))
			for i := range outcomes {
				succ := e.clone(w, s.takeFree())
				succOut := ss.prog.Outcomes(succ, pid, s.sbuf[:0])
				s.sbuf = succOut
				if len(succOut) != len(outcomes) {
					s.err = fmt.Errorf("modelcheck: %s produced unstable outcome sets for P%d", ss.prog.Name(), pid)
					return
				}
				succOut[i].Do(succ, pid)
				succ.Step++
				s.keyBuf = e.appendKey(succ, s.keyBuf[:0])
				s.probs = append(s.probs, outcomes[i].Prob)
				g := ss.shardOf(s.keyBuf)
				st := &ss.shards[g]
				if gid, ok := st.index[string(s.keyBuf)]; ok {
					s.refs = append(s.refs, st.dense[gid&localMask])
					s.putFree(succ)
				} else if li, ok := s.local[string(s.keyBuf)]; ok {
					s.refs = append(s.refs, ^li)
					s.putFree(succ)
				} else {
					li := int32(len(s.pworlds))
					key := string(s.keyBuf)
					s.local[key] = li
					s.pkeys = append(s.pkeys, key)
					s.pworlds = append(s.pworlds, succ)
					s.pshard = append(s.pshard, uint8(g))
					s.created = append(s.created, false)
					s.resolve = append(s.resolve, -1)
					s.refs = append(s.refs, ^li)
				}
			}
		}
		s.putFree(w) // the frontier world is fully expanded
	}
}

// internShard interns, into shard g, every pending state hashing to g, in
// (chunk, first-encounter) order — the restriction of the sequential
// discovery order to this shard, so shard-local numbering is deterministic
// for every worker count. Dense ids are left to the gather phase; resolve
// receives the packed id of every pending entry owned by g.
func (e *explorer) internShard(g uint32, sc *shardScratch, scratches []*scratch) {
	ss := e.ss
	st := &ss.shards[g]
	sc.newPerChunk = grown(sc.newPerChunk[:0], len(scratches))
	sc.err = nil
	for ci, s := range scratches {
		created := int32(0)
		for li, key := range s.pkeys {
			if uint32(s.pshard[li]) != g {
				continue
			}
			if pid, ok := st.index[key]; ok {
				s.resolve[li] = pid
				continue
			}
			local := int32(len(st.dense))
			if local > localMask {
				sc.err = fmt.Errorf("modelcheck: shard %d overflowed %d states; raise Options.Shards", g, localMask+1)
				return
			}
			packed := int32(g)<<localBits | local
			st.index[key] = packed
			st.dense = append(st.dense, -1) // assigned in the gather phase
			st.trans = append(st.trans, e.zeroTrans...)
			if e.opts.KeepKeys {
				st.keys = append(st.keys, key)
			}
			s.resolve[li] = packed
			s.created[li] = true
			created++
		}
		sc.newPerChunk[ci] = created
	}
}

// gatherChunk walks one chunk's pendings in first-encounter order and, for
// each entry that created its state, assigns the next dense id, records the
// state labels and frontier entry, and completes the shard's local→dense
// map. Entries that lost the intern race to an earlier chunk recycle their
// worlds. Chunks write disjoint dense-id ranges, so the phase is parallel.
func (e *explorer) gatherChunk(s *scratch, d0, base int) {
	ss := e.ss
	d := d0 + base
	nf := e.nextFront[base:]
	j := 0
	for li := range s.pkeys {
		w := s.pworlds[li]
		s.pworlds[li] = nil
		if !s.created[li] {
			s.putFree(w)
			continue
		}
		packed := s.resolve[li]
		st := &ss.shards[packed>>localBits]
		st.dense[packed&localMask] = int32(d)
		ss.order[d] = packed
		if e.keepRepKeys() {
			// Chunks own disjoint dense ranges, so writing repKeys here is as
			// race-free as the other dense arrays. The creating world is the
			// orbit representative: first encountered in discovery order.
			s.keyBuf = w.AppendKey(s.keyBuf[:0])
			ss.sym.repKeys[d] = string(s.keyBuf)
		}
		bad, eat, mask := e.stateFlags(w)
		ss.bad[d] = bad
		ss.anyEating[d] = eat
		if ss.eating != nil {
			ss.eating[d] = mask
		}
		nf[j] = frontEntry{w: w, packed: packed}
		j++
		d++
	}
}

// writeRows replays every chunk's record in frontier order and appends the
// transition rows of the level states owned by shard g into g's flat arrays,
// resolving pending successor references through the intern results. Rows
// land in deterministic (frontier, philosopher, outcome) order per shard.
func (e *explorer) writeRows(g uint32, scratches []*scratch, chunkLo []int) {
	ss := e.ss
	st := &ss.shards[g]
	for ci, s := range scratches {
		ri, kk := 0, 0
		nStates := len(s.counts) / ss.NumPhils
		for k := 0; k < nStates; k++ {
			fe := e.front[chunkLo[ci]+k]
			if uint32(fe.packed)>>localBits != g {
				// Skip the state's record: it belongs to another shard.
				for a := 0; a < ss.NumPhils; a++ {
					ri += int(s.counts[kk])
					kk++
				}
				continue
			}
			base := int(fe.packed&localMask) * ss.NumPhils
			for a := 0; a < ss.NumPhils; a++ {
				cnt := s.counts[kk]
				kk++
				off := int32(len(st.succs))
				for j := int32(0); j < cnt; j++ {
					sid := s.refs[ri]
					prob := s.probs[ri]
					ri++
					if sid < 0 {
						li := ^sid
						packed := s.resolve[li]
						sid = ss.shards[packed>>localBits].dense[packed&localMask]
					}
					st.succs = append(st.succs, sid)
					st.probs = append(st.probs, prob)
				}
				st.trans[base+a] = transition{off: off, n: cnt}
			}
			ss.expanded[e.levelStart+chunkLo[ci]+k] = true
		}
	}
}

// mergeLevelSequential is the truncation endgame: it replays every chunk's
// record in global frontier order on one goroutine, interning new states
// into their shards at first encounter — the same shard-local and dense
// numbering the parallel phases would produce — and stops the moment the
// state cap is crossed, exactly where the sequential exploration stops. The
// rest of the level is dropped; discovered-but-unexpanded states keep their
// blank rows for the post-pass self-loops.
func (e *explorer) mergeLevelSequential(scratches []*scratch, chunkLo []int) error {
	ss := e.ss
	for ci, s := range scratches {
		ri, kk := 0, 0
		nStates := len(s.counts) / ss.NumPhils
		for k := 0; k < nStates; k++ {
			fe := e.front[chunkLo[ci]+k]
			st := &ss.shards[uint32(fe.packed)>>localBits]
			base := int(fe.packed&localMask) * ss.NumPhils
			for a := 0; a < ss.NumPhils; a++ {
				cnt := s.counts[kk]
				kk++
				off := int32(len(st.succs))
				for j := int32(0); j < cnt; j++ {
					sid := s.refs[ri]
					prob := s.probs[ri]
					ri++
					if sid < 0 {
						li := ^sid
						// resolve caches dense ids on this path.
						if s.resolve[li] >= 0 {
							sid = s.resolve[li]
						} else {
							key := s.pkeys[li]
							w := s.pworlds[li]
							s.pworlds[li] = nil
							g := uint32(s.pshard[li])
							if pid, ok := ss.shards[g].index[key]; ok {
								// Interned by an earlier chunk of this level.
								sid = ss.shards[g].dense[pid&localMask]
								s.putFree(w)
							} else {
								packed, dense, err := e.addState(g, key, w)
								if err != nil {
									return err
								}
								e.nextFront = append(e.nextFront, frontEntry{w: w, packed: packed})
								sid = dense
							}
							s.resolve[li] = sid
						}
					}
					st.succs = append(st.succs, sid)
					st.probs = append(st.probs, prob)
				}
				st.trans[base+a] = transition{off: off, n: cnt}
			}
			ss.expanded[e.levelStart+chunkLo[ci]+k] = true
			if ss.NumStates() > e.opts.MaxStates {
				ss.Truncated = true
				return nil
			}
		}
	}
	return nil
}

package modelcheck

import (
	"encoding/hex"
	"strings"
	"testing"

	"repro/internal/algo"
	"repro/internal/graph"
	"repro/internal/sim"
	"repro/internal/trace"
)

func mustProg(t *testing.T, name string, opts algo.Options) sim.Program {
	t.Helper()
	prog, err := algo.New(name, opts)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func runCheck(t *testing.T, topo *graph.Topology, algoName string, opts algo.Options, protected []graph.PhilID) *Report {
	t.Helper()
	rep, err := Check(topo, mustProg(t, algoName, opts), Options{Protected: protected})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Truncated {
		t.Fatalf("%s on %s: exploration truncated; the instance is supposed to fit", algoName, topo.Name())
	}
	return rep
}

func TestExploreBasicProperties(t *testing.T) {
	t.Parallel()
	ss, err := Explore(graph.Ring(3), mustProg(t, "LR1", algo.Options{}), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ss.NumStates() == 0 || ss.NumTransitions() == 0 {
		t.Fatal("empty state space")
	}
	if ss.NumTransitions() != ss.NumStates()*3 {
		t.Errorf("expected 3 actions per state, got %d transitions for %d states", ss.NumTransitions(), ss.NumStates())
	}
	if ss.NumBadStates() == 0 {
		t.Error("the ring has reachable eating states")
	}
	reach := ss.Reachable()
	count := 0
	for _, r := range reach {
		if r {
			count++
		}
	}
	if count != ss.NumStates() {
		t.Errorf("only %d/%d states reachable; exploration should only produce reachable states", count, ss.NumStates())
	}
}

func TestExploreSupportsMetricReadingHungerModel(t *testing.T) {
	t.Parallel()
	// NeverHungryAgainAfter reads the EatsBy metric, which protocol-only
	// clones do not carry; Explore must fall back to full clones for custom
	// hunger models instead of panicking on the nil slice.
	ss, err := Explore(graph.Ring(3), mustProg(t, "LR1", algo.Options{}), Options{
		Hunger:    sim.NeverHungryAgainAfter{Limit: 1},
		MaxStates: 20_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if ss.NumStates() == 0 {
		t.Fatal("empty state space")
	}
}

func TestExploreRejectsNilArguments(t *testing.T) {
	t.Parallel()
	if _, err := Explore(nil, mustProg(t, "LR1", algo.Options{}), Options{}); err == nil {
		t.Error("Explore accepted nil topology")
	}
	if _, err := Explore(graph.Ring(3), nil, Options{}); err == nil {
		t.Error("Explore accepted nil program")
	}
}

func TestExploreTruncation(t *testing.T) {
	t.Parallel()
	ss, err := Explore(graph.Ring(4), mustProg(t, "LR1", algo.Options{}), Options{MaxStates: 50})
	if err != nil {
		t.Fatal(err)
	}
	if !ss.Truncated {
		t.Error("exploration with MaxStates 50 should truncate on Ring(4)")
	}
	// Truncated explorations must not fabricate violations out of unexpanded
	// states: the unexpanded frontier carries artificial self-loops, which
	// must not read as traps, deadlocks or dead regions. LR1 on Ring(4) has
	// none of the three.
	trap := ss.FindStarvationTrap()
	_ = trap
	if dead := ss.DeadlockStates(); len(dead) != 0 {
		t.Errorf("truncation fabricated %d deadlock states for LR1, which never wedges", len(dead))
	}
	if dead := ss.DeadRegionStates(); len(dead) != 0 {
		t.Errorf("truncation fabricated %d dead-region states for LR1, which always keeps meals reachable", len(dead))
	}
}

func TestNoDeadlocksForPaperAlgorithms(t *testing.T) {
	t.Parallel()
	for _, name := range []string{"LR1", "LR2", "GDP1", "GDP2"} {
		rep := runCheck(t, graph.Theorem2Minimal(), name, algo.Options{}, nil)
		if rep.DeadlockStates != 0 {
			t.Errorf("%s: %d deadlock states on the theta graph; the paper's algorithms never wedge", name, rep.DeadlockStates)
		}
		if rep.DeadRegionStates != 0 {
			t.Errorf("%s: %d states with no reachable meal", name, rep.DeadRegionStates)
		}
	}
}

func TestLR1NoTrapOnClassicRing(t *testing.T) {
	t.Parallel()
	// Lehmann & Rabin's original theorem: LR1 guarantees progress with
	// probability 1 on the simple ring, so no fair adversary has a starvation
	// trap against global progress.
	rep := runCheck(t, graph.Ring(3), "LR1", algo.Options{}, nil)
	if rep.FairAdversaryWins() {
		t.Errorf("found a global-progress trap for LR1 on the classic ring:\n%s", rep)
	}
}

func TestTheorem1LR1TrapOnRingWithExtraArc(t *testing.T) {
	t.Parallel()
	// Theorem 1: as soon as a ring fork is shared by an additional
	// philosopher, a fair adversary can prevent the ring philosophers from
	// ever eating. The minimal instance is a triangle plus one parallel arc.
	ring := []graph.PhilID{0, 1, 2}
	rep := runCheck(t, graph.Theorem1Minimal(), "LR1", algo.Options{}, ring)
	if !rep.FairAdversaryWins() {
		t.Errorf("Theorem 1: expected a starvation trap for LR1 on %s:\n%s", graph.Theorem1Minimal().Name(), rep)
	}
	// The same holds on the ring-with-pendant form, where the extra arc leads
	// to a private fork.
	rep2 := runCheck(t, graph.RingWithPendant(3), "LR1", algo.Options{}, ring)
	if !rep2.FairAdversaryWins() {
		t.Errorf("Theorem 1: expected a starvation trap for LR1 on %s:\n%s", graph.RingWithPendant(3).Name(), rep2)
	}
	// And LR1 even fails for global progress there (protect everyone).
	rep3 := runCheck(t, graph.Theorem1Minimal(), "LR1", algo.Options{}, nil)
	if !rep3.FairAdversaryWins() {
		t.Errorf("expected a global-progress trap for LR1 on theorem1-minimal:\n%s", rep3)
	}
}

func TestTheorem2LR2TrapOnThetaGraph(t *testing.T) {
	t.Parallel()
	// Theorem 2: with two forks joined by three internally disjoint paths a
	// fair adversary defeats LR2 (and LR1) — here even for global progress.
	for _, name := range []string{"LR1", "LR2"} {
		rep := runCheck(t, graph.Theorem2Minimal(), name, algo.Options{}, nil)
		if !rep.FairAdversaryWins() {
			t.Errorf("Theorem 2: expected a starvation trap for %s on the theta graph:\n%s", name, rep)
		}
	}
}

func TestLR2SurvivesWhereOnlyTheorem1Applies(t *testing.T) {
	if testing.Short() {
		t.Skip("large LR2 state space skipped in -short mode")
	}
	t.Parallel()
	// The paper notes that the Theorem 1 construction does not defeat LR2:
	// once the extra philosopher has eaten, the guest book stops it from
	// retaking the shared fork before the ring philosophers eat. On the
	// ring-with-pendant topology (which has the Theorem 1 structure but not
	// the Theorem 2 structure) LR2 has no starvation trap against the ring.
	ring := []graph.PhilID{0, 1, 2}
	rep := runCheck(t, graph.RingWithPendant(3), "LR2", algo.Options{}, ring)
	if rep.FairAdversaryWins() {
		t.Errorf("LR2 should not be defeatable on ring-with-pendant (no Theorem 2 structure):\n%s", rep)
	}
}

func TestTheorem3GDP1NoProgressTrap(t *testing.T) {
	t.Parallel()
	// Theorem 3: GDP1 guarantees progress (someone eats) with probability 1
	// under every fair adversary, on every topology. Verified exhaustively on
	// the minimal counterexample topologies that defeat LR1/LR2.
	for _, topo := range []*graph.Topology{graph.Theorem2Minimal(), graph.Theorem1Minimal(), graph.Ring(3)} {
		rep := runCheck(t, topo, "GDP1", algo.Options{}, nil)
		if rep.FairAdversaryWins() {
			t.Errorf("Theorem 3: found a global-progress trap for GDP1 on %s:\n%s", topo.Name(), rep)
		}
	}
}

func TestGDP1IsNotLockoutFree(t *testing.T) {
	t.Parallel()
	// The paper's Section 5 motivation: GDP1 ensures progress but not
	// lockout-freedom — a fair adversary can starve an individual philosopher.
	rep := runCheck(t, graph.Theorem2Minimal(), "GDP1", algo.Options{}, []graph.PhilID{0})
	if !rep.FairAdversaryWins() {
		t.Errorf("expected an individual-starvation trap for GDP1 (it is not lockout-free):\n%s", rep)
	}
}

func TestTheorem4GDP2LockoutFreedomOnTheta(t *testing.T) {
	t.Parallel()
	// Theorem 4 on the minimal generalized instance: no fair adversary can
	// starve an individual GDP2 philosopher on the theta graph.
	rep := runCheck(t, graph.Theorem2Minimal(), "GDP2", algo.Options{}, []graph.PhilID{0})
	if rep.FairAdversaryWins() {
		t.Errorf("Theorem 4: found an individual-starvation trap for GDP2 on the theta graph:\n%s", rep)
	}
}

func TestGDP2FirstForkCourtesyGapOnClassicRing(t *testing.T) {
	if testing.Short() {
		t.Skip("large GDP2 state space skipped in -short mode")
	}
	t.Parallel()
	// Reproduction finding: reading Tables 2/4 literally, the courtesy test
	// Cond(fork) guards only the FIRST fork acquisition. On the classic ring
	// a fair adversary can then starve an individual GDP2 philosopher by
	// steering the fork numbers so that both neighbours always acquire their
	// shared fork with the victim as their *second* fork, which is never
	// courtesy-checked. Extending the courtesy test to both acquisitions
	// removes the trap. EXPERIMENTS.md (E-T4) discusses the discrepancy with
	// the paper's Theorem 4.
	victim := []graph.PhilID{0}

	asPrinted := runCheck(t, graph.Ring(3), "GDP2", algo.Options{}, victim)
	if !asPrinted.FairAdversaryWins() {
		t.Errorf("expected the first-fork-only courtesy reading of GDP2 to admit an individual-starvation trap on Ring(3):\n%s", asPrinted)
	}

	strengthened := runCheck(t, graph.Ring(3), "GDP2", algo.Options{CourtesyOnBothForks: true}, victim)
	if strengthened.FairAdversaryWins() {
		t.Errorf("GDP2 with courtesy on both forks should have no individual-starvation trap on Ring(3):\n%s", strengthened)
	}
}

func TestLR2LockoutFreeOnClassicRing(t *testing.T) {
	t.Parallel()
	// Lehmann & Rabin's second algorithm is lockout-free on the classic ring;
	// LR1 is not (it only guarantees progress).
	lr2 := runCheck(t, graph.Ring(3), "LR2", algo.Options{}, []graph.PhilID{0})
	if lr2.FairAdversaryWins() {
		t.Errorf("LR2 should be lockout-free on the classic ring:\n%s", lr2)
	}
	lr1 := runCheck(t, graph.Ring(3), "LR1", algo.Options{}, []graph.PhilID{0})
	if !lr1.FairAdversaryWins() {
		t.Errorf("LR1 is not lockout-free even on the classic ring; expected an individual trap:\n%s", lr1)
	}
}

func TestPathToFindsReplayableCounterexamples(t *testing.T) {
	t.Parallel()
	// The naive hold-and-wait baseline deadlocks on the ring; the path to the
	// deadlock state must replay to exactly that state.
	prog := mustProg(t, "naive-left-first", algo.Options{})
	ss, err := Explore(graph.Ring(3), prog, Options{KeepKeys: true})
	if err != nil {
		t.Fatal(err)
	}

	if path, ok := ss.PathTo(ss.initial); !ok || len(path) != 0 {
		t.Errorf("PathTo(initial) = %v, %v; want an empty path", path, ok)
	}
	if _, ok := ss.PathTo(ss.NumStates()); ok {
		t.Error("PathTo accepted an out-of-range state")
	}

	dead := ss.DeadlockStates()
	if len(dead) == 0 {
		t.Fatal("expected a deadlock state for the naive baseline on Ring(3)")
	}
	path, ok := ss.PathTo(dead[0])
	if !ok {
		t.Fatal("deadlock state unreachable; DeadlockStates only returns reachable states")
	}
	if len(path) == 0 {
		t.Fatal("the deadlock is not the initial state; expected a non-empty path")
	}

	cx, err := ss.CounterexampleTo("deadlock-freedom", dead[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(cx.Steps) != len(path) {
		t.Errorf("trace has %d steps, path has %d choices", len(cx.Steps), len(path))
	}
	for i, s := range cx.Steps {
		if s.Label == "" {
			t.Errorf("step %d missing its outcome label", i)
		}
	}
	if cx.FinalKey != hex.EncodeToString([]byte(ss.KeyOf(dead[0]))) {
		t.Errorf("trace final key %s does not match the target state's canonical key", cx.FinalKey)
	}
	w, err := trace.Replay(graph.Ring(3), prog, nil, cx)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if w == nil {
		t.Fatal("replay returned no world")
	}

	// A tampered trace must be rejected.
	bad := *cx
	bad.FinalKey = "00"
	if _, err := trace.Replay(graph.Ring(3), prog, nil, &bad); err == nil {
		t.Error("Replay accepted a trace with a corrupted final key")
	}
}

func TestFindStarvationTrapAgainstMatchesConfiguredSet(t *testing.T) {
	t.Parallel()
	// Re-running the trap analysis against an explicit protected set via the
	// eating bitmasks must agree with an exploration configured with that
	// protected set — same trap size, same safe region.
	prog := mustProg(t, "GDP1", algo.Options{})
	ss, err := Explore(graph.Theorem2Minimal(), prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	configured, err := Explore(graph.Theorem2Minimal(), prog, Options{Protected: []graph.PhilID{0}})
	if err != nil {
		t.Fatal(err)
	}
	want := configured.FindStarvationTrap()
	got, err := ss.FindStarvationTrapAgainst([]graph.PhilID{0})
	if err != nil {
		t.Fatal(err)
	}
	if got.Exists != want.Exists || got.States != want.States || got.SafeRegionStates != want.SafeRegionStates {
		t.Errorf("trap against {0}: got %+v, want %+v", got, want)
	}
	if !got.Exists || got.WitnessState < 0 {
		t.Errorf("GDP1 is not lockout-free on the theta graph; expected a trap with a witness state, got %+v", got)
	}

	// The empty set means everyone — equivalent to the default analysis.
	all, err := ss.FindStarvationTrapAgainst(nil)
	if err != nil {
		t.Fatal(err)
	}
	def := ss.FindStarvationTrap()
	if all.Exists != def.Exists || all.States != def.States || all.SafeRegionStates != def.SafeRegionStates {
		t.Errorf("trap against nil: got %+v, want the default analysis %+v", all, def)
	}

	if _, err := ss.FindStarvationTrapAgainst([]graph.PhilID{99}); err == nil {
		t.Error("FindStarvationTrapAgainst accepted an out-of-range philosopher")
	}
}

func TestReportString(t *testing.T) {
	t.Parallel()
	rep := runCheck(t, graph.Ring(3), "LR1", algo.Options{}, nil)
	s := rep.String()
	for _, want := range []string{"LR1", "ring-3", "states:", "VERDICT"} {
		if !strings.Contains(s, want) {
			t.Errorf("report missing %q:\n%s", want, s)
		}
	}
}

func TestNaiveBaselineDeadlocksAndOthersDoNot(t *testing.T) {
	t.Parallel()
	// The naive symmetric deterministic baseline (everyone left-first,
	// hold-and-wait) deadlocks on every ring — Lehmann & Rabin's
	// impossibility result in action. The model checker finds both true
	// deadlock states and a non-empty dead region.
	naive := runCheck(t, graph.Ring(3), "naive-left-first", algo.Options{}, nil)
	if naive.DeadlockStates == 0 || naive.DeadRegionStates == 0 {
		t.Errorf("expected the naive left-first baseline to deadlock on a ring:\n%s", naive)
	}
	// The colored and ordered-fork baselines are deadlock-free on the ring.
	for _, name := range []string{"colored", "ordered-forks"} {
		rep := runCheck(t, graph.Ring(3), name, algo.Options{}, nil)
		if rep.DeadRegionStates != 0 || rep.DeadlockStates != 0 {
			t.Errorf("%s should be deadlock-free on Ring(3): %+v", name, rep)
		}
	}
}

package modelcheck

import (
	"fmt"
	"strings"

	"repro/internal/graph"
	"repro/internal/sim"
)

// Report bundles every analysis of one explored instance.
type Report struct {
	Topology  string
	Algorithm string
	Protected []graph.PhilID

	States      int
	Transitions int
	BadStates   int
	Truncated   bool

	// DeadlockStates is the number of reachable states from which no
	// philosopher can ever change the state again.
	DeadlockStates int
	// DeadRegionStates is the number of reachable states from which no meal
	// is reachable under any scheduling (0 for all correct algorithms).
	DeadRegionStates int
	// Trap is the starvation-trap analysis (Theorems 1–4).
	Trap Trap
}

// Check explores prog on topo and runs every analysis.
func Check(topo *graph.Topology, prog sim.Program, opts Options) (*Report, error) {
	ss, err := Explore(topo, prog, opts)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		Topology:         topo.Name(),
		Algorithm:        prog.Name(),
		Protected:        append([]graph.PhilID(nil), opts.Protected...),
		States:           ss.NumStates(),
		Transitions:      ss.NumTransitions(),
		BadStates:        ss.NumBadStates(),
		Truncated:        ss.Truncated,
		DeadlockStates:   len(ss.DeadlockStates()),
		DeadRegionStates: len(ss.DeadRegionStates()),
		Trap:             ss.FindStarvationTrap(),
	}
	return rep, nil
}

// FairAdversaryWins reports the headline verdict: a fair adversary can, with
// positive probability, starve the protected set forever.
func (r *Report) FairAdversaryWins() bool {
	return r.Trap.Exists && r.Trap.Reachable
}

// String renders a compact multi-line report.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s on %s", r.Algorithm, r.Topology)
	if len(r.Protected) > 0 {
		fmt.Fprintf(&b, " (protected: %v)", r.Protected)
	}
	fmt.Fprintf(&b, "\n  states: %d, transitions: %d, eating states (protected): %d",
		r.States, r.Transitions, r.BadStates)
	if r.Truncated {
		b.WriteString(" [TRUNCATED]")
	}
	fmt.Fprintf(&b, "\n  deadlock states: %d, dead (no future meal) states: %d",
		r.DeadlockStates, r.DeadRegionStates)
	fmt.Fprintf(&b, "\n  safe region: %d states", r.Trap.SafeRegionStates)
	if r.FairAdversaryWins() {
		fmt.Fprintf(&b, "\n  VERDICT: a fair adversary can starve the protected set forever (trap of %d states)", r.Trap.States)
	} else {
		fmt.Fprintf(&b, "\n  VERDICT: no fair starvation trap exists (best coverage %d/%d philosophers)",
			len(r.Trap.CoveredPhilosophers), philCount(r))
	}
	return b.String()
}

func philCount(r *Report) int {
	// Transitions per state equal the number of philosophers; recover it from
	// the ratio to avoid storing it twice.
	if r.States == 0 {
		return 0
	}
	return r.Transitions / r.States
}

package modelcheck

import (
	"reflect"
	"testing"

	"repro/internal/algo"
	"repro/internal/graph"
)

// TestExplorationGolden pins the exact exploration results (state counts,
// transition counts, bad/deadlock/dead-region counts, safe-region sizes and
// trap sizes) of the instances the experiment suite model-checks. The values
// were captured from the original fmt-keyed, per-fork-slice implementation;
// the binary AppendKey encoder, the flattened World layout, the
// protocol-only cloning of Explore and the sharded state stores must keep
// every one of them byte-identical — a refactor that merges or splits states
// shows up here immediately.
//
// Larger instances (ring-3 GDP2, theorem1-minimal GDP1) are skipped in -short
// mode; the small ones still cover every algorithm and key feature (guest
// books, request lists, nr fields, globals, aux registers).
func TestExplorationGolden(t *testing.T) {
	t.Parallel()
	type want struct {
		states, trans, bad, deadlock, dead, safe, trapStates int
		trapExists                                           bool
	}
	type inst struct {
		topo      *graph.Topology
		algorithm string
		opts      algo.Options
		protected []graph.PhilID
		big       bool
		want      want
	}
	ring3 := []graph.PhilID{0, 1, 2}
	instances := []inst{
		{graph.Theorem1Minimal(), "LR1", algo.Options{}, ring3, false,
			want{2736, 10944, 1280, 0, 0, 1456, 462, true}},
		{graph.Theorem1Minimal(), "LR1", algo.Options{}, nil, false,
			want{2736, 10944, 1664, 0, 0, 1072, 134, true}},
		{graph.Theorem1Minimal(), "GDP1", algo.Options{}, nil, true,
			want{64392, 257568, 28728, 0, 0, 35664, 0, false}},
		{graph.RingWithPendant(3), "LR1", algo.Options{}, ring3, false,
			want{3450, 13800, 1760, 0, 0, 1690, 350, true}},
		{graph.Ring(3), "LR1", algo.Options{}, nil, false,
			want{486, 1458, 288, 0, 0, 198, 0, false}},
		{graph.Ring(3), "LR1", algo.Options{}, []graph.PhilID{0}, false,
			want{486, 1458, 96, 0, 0, 390, 315, true}},
		{graph.Ring(3), "LR2", algo.Options{}, []graph.PhilID{0}, false,
			want{16282, 48846, 3710, 0, 0, 12572, 0, false}},
		{graph.Ring(3), "GDP2", algo.Options{}, []graph.PhilID{0}, true,
			want{182951, 548853, 34992, 0, 0, 147959, 392, true}},
		{graph.Ring(3), "GDP2", algo.Options{CourtesyOnBothForks: true}, []graph.PhilID{0}, true,
			want{180359, 541077, 34128, 0, 0, 146231, 0, false}},
		{graph.Theorem2Minimal(), "LR1", algo.Options{}, nil, false,
			want{376, 1128, 192, 0, 0, 184, 48, true}},
		{graph.Theorem2Minimal(), "LR2", algo.Options{}, nil, false,
			want{12830, 38490, 7950, 0, 0, 4880, 48, true}},
		{graph.Theorem2Minimal(), "GDP1", algo.Options{}, nil, false,
			want{324, 972, 108, 0, 0, 216, 0, false}},
		{graph.Theorem2Minimal(), "GDP2", algo.Options{}, nil, false,
			want{10096, 30288, 5088, 0, 0, 5008, 0, false}},
		{graph.Theorem2Minimal(), "GDP1", algo.Options{}, []graph.PhilID{0}, false,
			want{324, 972, 36, 0, 0, 288, 33, true}},
		{graph.Theorem2Minimal(), "GDP2", algo.Options{}, []graph.PhilID{0}, false,
			want{10096, 30288, 1696, 0, 0, 8400, 0, false}},
		{graph.Ring(3), "naive-left-first", algo.Options{}, nil, false,
			want{135, 405, 72, 1, 1, 63, 1, true}},
		{graph.Ring(3), "colored", algo.Options{}, nil, false,
			want{126, 378, 70, 0, 0, 56, 0, false}},
		{graph.Ring(3), "ordered-forks", algo.Options{}, nil, false,
			want{126, 378, 70, 0, 0, 56, 0, false}},
		{graph.Ring(3), "ticket-box", algo.Options{}, nil, false,
			want{176, 528, 84, 0, 0, 92, 0, false}},
		{graph.Ring(3), "central-monitor", algo.Options{}, nil, false,
			want{68, 204, 48, 0, 0, 20, 0, false}},
	}
	for _, in := range instances {
		if testing.Short() && in.big {
			continue
		}
		prog, err := algo.New(in.algorithm, in.opts)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := Check(in.topo, prog, Options{Protected: in.protected})
		if err != nil {
			t.Fatal(err)
		}
		got := want{rep.States, rep.Transitions, rep.BadStates, rep.DeadlockStates,
			rep.DeadRegionStates, rep.Trap.SafeRegionStates, rep.Trap.States, rep.Trap.Exists}
		if got != in.want {
			t.Errorf("%s on %s (protected %v, opts %+v):\n got  %+v\n want %+v",
				in.algorithm, in.topo.Name(), in.protected, in.opts, got, in.want)
		}
	}
}

// assertSameSpace compares two single-shard explorations field by field:
// state numbering, transition tables, outcome probabilities, labels, masks
// and keys must all be identical — the contract that makes the parallel
// explorer at Shards: 1 a drop-in replacement for the sequential one.
func assertSameSpace(t *testing.T, label string, a, b *StateSpace) {
	t.Helper()
	if a.NumShards() != 1 || b.NumShards() != 1 {
		t.Fatalf("%s: assertSameSpace wants single-shard spaces, got %d and %d shards", label, a.NumShards(), b.NumShards())
	}
	if a.NumStates() != b.NumStates() || a.initial != b.initial || a.Truncated != b.Truncated {
		t.Fatalf("%s: shape differs: %d vs %d states, initial %d vs %d, truncated %v vs %v",
			label, a.NumStates(), b.NumStates(), a.initial, b.initial, a.Truncated, b.Truncated)
	}
	for name, pair := range map[string][2]any{
		"trans":     {a.shards[0].trans, b.shards[0].trans},
		"succs":     {a.shards[0].succs, b.shards[0].succs},
		"probs":     {a.shards[0].probs, b.shards[0].probs},
		"dense":     {a.shards[0].dense, b.shards[0].dense},
		"keys":      {a.shards[0].keys, b.shards[0].keys},
		"order":     {a.order, b.order},
		"bad":       {a.bad, b.bad},
		"anyEating": {a.anyEating, b.anyEating},
		"eating":    {a.eating, b.eating},
		"expanded":  {a.expanded, b.expanded},
	} {
		if !reflect.DeepEqual(pair[0], pair[1]) {
			t.Fatalf("%s: %s differs between worker counts", label, name)
		}
	}
}

// assertEquivalentSpace verifies that a sharded exploration is the
// sequential space under the shard-id remap. The dense view — state
// numbering, labels, transition rows, keys — must be identical outright
// (dense ids are assigned in sequential discovery order for every worker and
// shard count), and the shard layout must be a consistent bijection: every
// state's key hashes to its owning shard, packed ids round-trip through the
// order/dense maps, and the shard sizes add up.
func assertEquivalentSpace(t *testing.T, label string, seq, sh *StateSpace) {
	t.Helper()
	if seq.NumStates() != sh.NumStates() || seq.initial != sh.initial || seq.Truncated != sh.Truncated {
		t.Fatalf("%s: shape differs: %d vs %d states, initial %d vs %d, truncated %v vs %v",
			label, seq.NumStates(), sh.NumStates(), seq.initial, sh.initial, seq.Truncated, sh.Truncated)
	}
	n := seq.NumStates()
	for s := 0; s < n; s++ {
		if seq.KeyOf(s) != sh.KeyOf(s) {
			t.Fatalf("%s: state %d has different canonical keys — the dense numbering diverged", label, s)
		}
		if seq.bad[s] != sh.bad[s] || seq.anyEating[s] != sh.anyEating[s] || seq.expanded[s] != sh.expanded[s] {
			t.Fatalf("%s: state %d labels differ", label, s)
		}
		if seq.eating != nil && seq.eating[s] != sh.eating[s] {
			t.Fatalf("%s: state %d eating mask differs", label, s)
		}
		for a := 0; a < seq.NumPhils; a++ {
			if !reflect.DeepEqual(seq.Succs(s, a), sh.Succs(s, a)) {
				t.Fatalf("%s: successors of (state %d, phil %d) differ: %v vs %v",
					label, s, a, seq.Succs(s, a), sh.Succs(s, a))
			}
			if !reflect.DeepEqual(seq.Probs(s, a), sh.Probs(s, a)) {
				t.Fatalf("%s: probabilities of (state %d, phil %d) differ", label, s, a)
			}
		}
	}
	// Shard-layout invariants of the sharded space.
	total := 0
	for g := range sh.shards {
		st := &sh.shards[g]
		total += len(st.dense)
		for l, d := range st.dense {
			packed := int32(g)<<localBits | int32(l)
			if sh.order[d] != packed {
				t.Fatalf("%s: order[%d] = %d, want packed id %d (shard %d, local %d)",
					label, d, sh.order[d], packed, g, l)
			}
			if key := st.keys[l]; sh.shardOfString(key) != uint32(g) {
				t.Fatalf("%s: state (shard %d, local %d) has a key hashing to shard %d",
					label, g, l, sh.shardOfString(key))
			}
		}
	}
	if total != n {
		t.Fatalf("%s: shard sizes sum to %d, want %d", label, total, n)
	}
}

// TestExplorationParallelMatchesSequential pins the strongest form of the
// determinism contract on a single shard: for every worker count the
// explored space is byte-identical to the sequential exploration — same
// state numbering, same flat transition arrays, same keys. It covers every
// algorithm family (free choice, request lists + guest books, nr draws,
// globals) and a truncated exploration, whose stop point must also agree.
func TestExplorationParallelMatchesSequential(t *testing.T) {
	t.Parallel()
	for _, alg := range []string{"LR1", "LR2", "GDP1", "GDP2", "naive-left-first", "central-monitor"} {
		prog, err := algo.New(alg, algo.Options{})
		if err != nil {
			t.Fatal(err)
		}
		seq, err := Explore(graph.Theorem2Minimal(), prog, Options{Workers: 1, Shards: 1, KeepKeys: true})
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 3, 7} {
			par, err := Explore(graph.Theorem2Minimal(), prog, Options{Workers: workers, Shards: 1, KeepKeys: true})
			if err != nil {
				t.Fatal(err)
			}
			assertSameSpace(t, alg, seq, par)
		}
	}

	prog, err := algo.New("LR1", algo.Options{})
	if err != nil {
		t.Fatal(err)
	}
	seq, err := Explore(graph.Ring(4), prog, Options{Workers: 1, Shards: 1, MaxStates: 50, KeepKeys: true})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Explore(graph.Ring(4), prog, Options{Workers: 5, Shards: 1, MaxStates: 50, KeepKeys: true})
	if err != nil {
		t.Fatal(err)
	}
	if !seq.Truncated || !par.Truncated {
		t.Fatal("MaxStates 50 on Ring(4) should truncate at any worker count")
	}
	assertSameSpace(t, "truncated LR1", seq, par)
}

// TestExplorationShardedEquivalentToSequential pins the sharded-store
// contract: for every (workers, shards) combination the explored space is
// the sequential space under the shard-id remap — identical dense view
// (numbering, rows, labels, keys) plus a consistent shard layout. The grid
// covers every algorithm family; a truncated run must stop at the exact
// sequential stop point too.
func TestExplorationShardedEquivalentToSequential(t *testing.T) {
	t.Parallel()
	for _, alg := range []string{"LR1", "LR2", "GDP1", "GDP2", "naive-left-first", "central-monitor"} {
		prog, err := algo.New(alg, algo.Options{})
		if err != nil {
			t.Fatal(err)
		}
		seq, err := Explore(graph.Theorem2Minimal(), prog, Options{Workers: 1, Shards: 1, KeepKeys: true})
		if err != nil {
			t.Fatal(err)
		}
		for _, cfg := range []struct{ workers, shards int }{
			{1, 2}, {1, 8}, {2, 2}, {3, 4}, {7, 8}, {4, 64},
		} {
			sh, err := Explore(graph.Theorem2Minimal(), prog, Options{
				Workers: cfg.workers, Shards: cfg.shards, KeepKeys: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			if want := resolveShards(cfg.shards, cfg.workers); sh.NumShards() != want {
				t.Fatalf("%s: NumShards = %d, want %d", alg, sh.NumShards(), want)
			}
			label := alg
			assertEquivalentSpace(t, label, seq, sh)
		}
	}

	// Truncated runs: the sharded exploration must stop at the exact state
	// the sequential exploration stops at, for every (workers, shards) pair.
	prog, err := algo.New("LR1", algo.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, maxStates := range []int{50, 500} {
		seq, err := Explore(graph.Ring(4), prog, Options{Workers: 1, Shards: 1, MaxStates: maxStates, KeepKeys: true})
		if err != nil {
			t.Fatal(err)
		}
		if !seq.Truncated {
			t.Fatalf("MaxStates %d on Ring(4) should truncate", maxStates)
		}
		for _, cfg := range []struct{ workers, shards int }{
			{1, 4}, {3, 2}, {5, 8},
		} {
			sh, err := Explore(graph.Ring(4), prog, Options{
				Workers: cfg.workers, Shards: cfg.shards, MaxStates: maxStates, KeepKeys: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			assertEquivalentSpace(t, "truncated LR1", seq, sh)
		}
	}
}

// TestExplorationShardsDefaultAndValidation pins the Shards normalization:
// negative values error, zero matches the worker count, and everything is
// rounded up to a power of two capped at MaxShards.
func TestExplorationShardsDefaultAndValidation(t *testing.T) {
	t.Parallel()
	prog, err := algo.New("LR1", algo.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Explore(graph.Ring(3), prog, Options{Shards: -1}); err == nil {
		t.Error("Explore accepted negative Shards")
	}
	for _, tc := range []struct{ workers, shards, want int }{
		{1, 0, 1},
		{3, 0, 4},
		{2, 3, 4},
		{1, 1000, MaxShards},
	} {
		ss, err := Explore(graph.Ring(3), prog, Options{Workers: tc.workers, Shards: tc.shards})
		if err != nil {
			t.Fatal(err)
		}
		if ss.NumShards() != tc.want {
			t.Errorf("workers %d, shards %d: NumShards = %d, want %d",
				tc.workers, tc.shards, ss.NumShards(), tc.want)
		}
	}
}

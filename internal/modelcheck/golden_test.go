package modelcheck

import (
	"reflect"
	"testing"

	"repro/internal/algo"
	"repro/internal/graph"
)

// TestExplorationGolden pins the exact exploration results (state counts,
// transition counts, bad/deadlock/dead-region counts, safe-region sizes and
// trap sizes) of the instances the experiment suite model-checks. The values
// were captured from the original fmt-keyed, per-fork-slice implementation;
// the binary AppendKey encoder, the flattened World layout and the
// protocol-only cloning of Explore must keep every one of them byte-identical
// — a refactor that merges or splits states shows up here immediately.
//
// Larger instances (ring-3 GDP2, theorem1-minimal GDP1) are skipped in -short
// mode; the small ones still cover every algorithm and key feature (guest
// books, request lists, nr fields, globals, aux registers).
func TestExplorationGolden(t *testing.T) {
	t.Parallel()
	type want struct {
		states, trans, bad, deadlock, dead, safe, trapStates int
		trapExists                                           bool
	}
	type inst struct {
		topo      *graph.Topology
		algorithm string
		opts      algo.Options
		protected []graph.PhilID
		big       bool
		want      want
	}
	ring3 := []graph.PhilID{0, 1, 2}
	instances := []inst{
		{graph.Theorem1Minimal(), "LR1", algo.Options{}, ring3, false,
			want{2736, 10944, 1280, 0, 0, 1456, 462, true}},
		{graph.Theorem1Minimal(), "LR1", algo.Options{}, nil, false,
			want{2736, 10944, 1664, 0, 0, 1072, 134, true}},
		{graph.Theorem1Minimal(), "GDP1", algo.Options{}, nil, true,
			want{64392, 257568, 28728, 0, 0, 35664, 0, false}},
		{graph.RingWithPendant(3), "LR1", algo.Options{}, ring3, false,
			want{3450, 13800, 1760, 0, 0, 1690, 350, true}},
		{graph.Ring(3), "LR1", algo.Options{}, nil, false,
			want{486, 1458, 288, 0, 0, 198, 0, false}},
		{graph.Ring(3), "LR1", algo.Options{}, []graph.PhilID{0}, false,
			want{486, 1458, 96, 0, 0, 390, 315, true}},
		{graph.Ring(3), "LR2", algo.Options{}, []graph.PhilID{0}, false,
			want{16282, 48846, 3710, 0, 0, 12572, 0, false}},
		{graph.Ring(3), "GDP2", algo.Options{}, []graph.PhilID{0}, true,
			want{182951, 548853, 34992, 0, 0, 147959, 392, true}},
		{graph.Ring(3), "GDP2", algo.Options{CourtesyOnBothForks: true}, []graph.PhilID{0}, true,
			want{180359, 541077, 34128, 0, 0, 146231, 0, false}},
		{graph.Theorem2Minimal(), "LR1", algo.Options{}, nil, false,
			want{376, 1128, 192, 0, 0, 184, 48, true}},
		{graph.Theorem2Minimal(), "LR2", algo.Options{}, nil, false,
			want{12830, 38490, 7950, 0, 0, 4880, 48, true}},
		{graph.Theorem2Minimal(), "GDP1", algo.Options{}, nil, false,
			want{324, 972, 108, 0, 0, 216, 0, false}},
		{graph.Theorem2Minimal(), "GDP2", algo.Options{}, nil, false,
			want{10096, 30288, 5088, 0, 0, 5008, 0, false}},
		{graph.Theorem2Minimal(), "GDP1", algo.Options{}, []graph.PhilID{0}, false,
			want{324, 972, 36, 0, 0, 288, 33, true}},
		{graph.Theorem2Minimal(), "GDP2", algo.Options{}, []graph.PhilID{0}, false,
			want{10096, 30288, 1696, 0, 0, 8400, 0, false}},
		{graph.Ring(3), "naive-left-first", algo.Options{}, nil, false,
			want{135, 405, 72, 1, 1, 63, 1, true}},
		{graph.Ring(3), "colored", algo.Options{}, nil, false,
			want{126, 378, 70, 0, 0, 56, 0, false}},
		{graph.Ring(3), "ordered-forks", algo.Options{}, nil, false,
			want{126, 378, 70, 0, 0, 56, 0, false}},
		{graph.Ring(3), "ticket-box", algo.Options{}, nil, false,
			want{176, 528, 84, 0, 0, 92, 0, false}},
		{graph.Ring(3), "central-monitor", algo.Options{}, nil, false,
			want{68, 204, 48, 0, 0, 20, 0, false}},
	}
	for _, in := range instances {
		if testing.Short() && in.big {
			continue
		}
		prog, err := algo.New(in.algorithm, in.opts)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := Check(in.topo, prog, Options{Protected: in.protected})
		if err != nil {
			t.Fatal(err)
		}
		got := want{rep.States, rep.Transitions, rep.BadStates, rep.DeadlockStates,
			rep.DeadRegionStates, rep.Trap.SafeRegionStates, rep.Trap.States, rep.Trap.Exists}
		if got != in.want {
			t.Errorf("%s on %s (protected %v, opts %+v):\n got  %+v\n want %+v",
				in.algorithm, in.topo.Name(), in.protected, in.opts, got, in.want)
		}
	}
}

// assertSameSpace compares two explorations field by field: state numbering,
// transition tables, outcome probabilities, labels, masks and keys must all
// be identical — the contract that makes the parallel explorer a drop-in
// replacement for the sequential one.
func assertSameSpace(t *testing.T, label string, a, b *StateSpace) {
	t.Helper()
	if a.NumStates() != b.NumStates() || a.initial != b.initial || a.Truncated != b.Truncated {
		t.Fatalf("%s: shape differs: %d vs %d states, initial %d vs %d, truncated %v vs %v",
			label, a.NumStates(), b.NumStates(), a.initial, b.initial, a.Truncated, b.Truncated)
	}
	for name, pair := range map[string][2]any{
		"trans":     {a.trans, b.trans},
		"succs":     {a.succs, b.succs},
		"probs":     {a.probs, b.probs},
		"bad":       {a.bad, b.bad},
		"anyEating": {a.anyEating, b.anyEating},
		"eating":    {a.eating, b.eating},
		"expanded":  {a.expanded, b.expanded},
		"keys":      {a.keys, b.keys},
	} {
		if !reflect.DeepEqual(pair[0], pair[1]) {
			t.Fatalf("%s: %s differs between worker counts", label, name)
		}
	}
}

// TestExplorationParallelMatchesSequential pins the determinism contract of
// the level-synchronous parallel BFS: for every worker count the explored
// space is byte-identical to the sequential exploration — same state
// numbering, same flat transition arrays, same keys. It covers every
// algorithm family (free choice, request lists + guest books, nr draws,
// globals) and a truncated exploration, whose stop point must also agree.
func TestExplorationParallelMatchesSequential(t *testing.T) {
	t.Parallel()
	for _, alg := range []string{"LR1", "LR2", "GDP1", "GDP2", "naive-left-first", "central-monitor"} {
		prog, err := algo.New(alg, algo.Options{})
		if err != nil {
			t.Fatal(err)
		}
		seq, err := Explore(graph.Theorem2Minimal(), prog, Options{Workers: 1, KeepKeys: true})
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 3, 7} {
			par, err := Explore(graph.Theorem2Minimal(), prog, Options{Workers: workers, KeepKeys: true})
			if err != nil {
				t.Fatal(err)
			}
			assertSameSpace(t, alg, seq, par)
		}
	}

	prog, err := algo.New("LR1", algo.Options{})
	if err != nil {
		t.Fatal(err)
	}
	seq, err := Explore(graph.Ring(4), prog, Options{Workers: 1, MaxStates: 50, KeepKeys: true})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Explore(graph.Ring(4), prog, Options{Workers: 5, MaxStates: 50, KeepKeys: true})
	if err != nil {
		t.Fatal(err)
	}
	if !seq.Truncated || !par.Truncated {
		t.Fatal("MaxStates 50 on Ring(4) should truncate at any worker count")
	}
	assertSameSpace(t, "truncated LR1", seq, par)
}

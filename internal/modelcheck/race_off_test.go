//go:build !race

package modelcheck

// raceEnabled reports whether this test binary runs under the race detector.
const raceEnabled = false

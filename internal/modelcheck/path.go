package modelcheck

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/graphalg"
	"repro/internal/trace"
)

// Choice is one move along a counterexample path: the adversary schedules
// Phil and the probabilistic draw resolves to the outcome with index Outcome
// (within the outcome set of Phil's action in the state the choice executes
// in). A sequence of Choices is exactly the information needed to replay an
// exploration path on a fresh world.
type Choice struct {
	// Phil is the scheduled philosopher.
	Phil graph.PhilID
	// Outcome is the index of the outcome taken.
	Outcome int
}

// PathTo returns a shortest scheduler-choice path from the initial state to
// target, and whether target is reachable. The breadth-first search lives in
// graphalg.PathTo: it visits actions in philosopher order and outcomes in
// outcome order, so the returned path is deterministic — the same for every
// exploration worker and shard count, since the dense state numbering itself
// is.
func (ss *StateSpace) PathTo(target int) ([]Choice, bool) {
	choices, ok := graphalg.PathTo(ss, target)
	if !ok {
		return nil, false
	}
	path := make([]Choice, len(choices))
	for i, c := range choices {
		path[i] = Choice{Phil: graph.PhilID(c.Action), Outcome: c.Outcome}
	}
	return path, true
}

// CounterexampleTo builds a replayable counterexample trace from the initial
// state to target: a shortest scheduler-choice path completed (labels,
// probabilities, rendered final state, canonical final key) by re-executing
// it on a fresh world. property names the property the trace refutes.
func (ss *StateSpace) CounterexampleTo(property string, target int) (*trace.Trace, error) {
	choices, ok := ss.PathTo(target)
	if !ok {
		return nil, fmt.Errorf("modelcheck: state %d is not reachable from the initial state", target)
	}
	steps := make([]trace.Step, len(choices))
	for i, c := range choices {
		steps[i] = trace.Step{Phil: int(c.Phil), Outcome: c.Outcome}
	}
	return trace.Build(ss.topo, ss.prog, ss.hunger, property, steps)
}

package modelcheck

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/trace"
)

// Choice is one move along a counterexample path: the adversary schedules
// Phil and the probabilistic draw resolves to the outcome with index Outcome
// (within the outcome set of Phil's action in the state the choice executes
// in). A sequence of Choices is exactly the information needed to replay an
// exploration path on a fresh world.
type Choice struct {
	// Phil is the scheduled philosopher.
	Phil graph.PhilID
	// Outcome is the index of the outcome taken.
	Outcome int
}

// PathTo returns a shortest scheduler-choice path from the initial state to
// target, and whether target is reachable. The search visits states in index
// order, actions in philosopher order and outcomes in outcome order, so the
// returned path is deterministic — the same for every exploration worker
// count, since the state numbering itself is.
func (ss *StateSpace) PathTo(target int) ([]Choice, bool) {
	if target < 0 || target >= ss.NumStates() {
		return nil, false
	}
	if target == ss.initial {
		return nil, true
	}
	n := ss.NumStates()
	prevState := make([]int32, n)
	prevChoice := make([]Choice, n)
	for i := range prevState {
		prevState[i] = -1
	}
	start := int32(ss.initial)
	prevState[start] = start
	queue := make([]int32, 0, 64)
	queue = append(queue, start)
	for head := 0; head < len(queue); head++ {
		s := queue[head]
		for a := 0; a < ss.NumPhils; a++ {
			succs := ss.succsOf(int(s), a)
			for oi, succ := range succs {
				if prevState[succ] != -1 {
					continue
				}
				prevState[succ] = s
				prevChoice[succ] = Choice{Phil: graph.PhilID(a), Outcome: oi}
				if int(succ) == target {
					// Reconstruct backwards, then reverse.
					var path []Choice
					for at := succ; at != start; at = prevState[at] {
						path = append(path, prevChoice[at])
					}
					for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
						path[i], path[j] = path[j], path[i]
					}
					return path, true
				}
				queue = append(queue, succ)
			}
		}
	}
	return nil, false
}

// CounterexampleTo builds a replayable counterexample trace from the initial
// state to target: a shortest scheduler-choice path completed (labels,
// probabilities, rendered final state, canonical final key) by re-executing
// it on a fresh world. property names the property the trace refutes.
func (ss *StateSpace) CounterexampleTo(property string, target int) (*trace.Trace, error) {
	choices, ok := ss.PathTo(target)
	if !ok {
		return nil, fmt.Errorf("modelcheck: state %d is not reachable from the initial state", target)
	}
	steps := make([]trace.Step, len(choices))
	for i, c := range choices {
		steps[i] = trace.Step{Phil: int(c.Phil), Outcome: c.Outcome}
	}
	return trace.Build(ss.topo, ss.prog, ss.hunger, property, steps)
}

package modelcheck

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/graphalg"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Choice is one move along a counterexample path: the adversary schedules
// Phil and the probabilistic draw resolves to the outcome with index Outcome
// (within the outcome set of Phil's action in the state the choice executes
// in). A sequence of Choices is exactly the information needed to replay an
// exploration path on a fresh world.
type Choice struct {
	// Phil is the scheduled philosopher.
	Phil graph.PhilID
	// Outcome is the index of the outcome taken.
	Outcome int
}

// PathTo returns a shortest scheduler-choice path from the initial state to
// target, and whether target is reachable. The breadth-first search lives in
// graphalg.PathTo: it visits actions in philosopher order and outcomes in
// outcome order, so the returned path is deterministic — the same for every
// exploration worker and shard count, since the dense state numbering itself
// is.
func (ss *StateSpace) PathTo(target int) ([]Choice, bool) {
	choices, ok := graphalg.PathTo(ss, target)
	if !ok {
		return nil, false
	}
	path := make([]Choice, len(choices))
	for i, c := range choices {
		path[i] = Choice{Phil: graph.PhilID(c.Action), Outcome: c.Outcome}
	}
	return path, true
}

// CounterexampleTo builds a replayable counterexample trace from the initial
// state to target: a shortest scheduler-choice path completed (labels,
// probabilities, rendered final state, canonical final key) by re-executing
// it on a fresh world. property names the property the trace refutes.
//
// On a symmetry-quotient space the stored path moves between orbits, not
// concrete states, so it is first lifted to a concrete scheduler path (see
// liftChoices); the returned trace replays on the unreduced semantics and
// verifies on an unreduced engine.
func (ss *StateSpace) CounterexampleTo(property string, target int) (*trace.Trace, error) {
	choices, ok := ss.PathTo(target)
	if !ok {
		return nil, fmt.Errorf("modelcheck: state %d is not reachable from the initial state", target)
	}
	var steps []trace.Step
	if ss.sym != nil {
		var err error
		steps, err = ss.liftChoices(choices)
		if err != nil {
			return nil, err
		}
	} else {
		steps = make([]trace.Step, len(choices))
		for i, c := range choices {
			steps[i] = trace.Step{Phil: int(c.Phil), Outcome: c.Outcome}
		}
	}
	return trace.Build(ss.topo, ss.prog, ss.hunger, property, steps)
}

// liftChoices translates a quotient scheduler path into a concrete one. The
// quotient path is replayed through the dense transition rows; in parallel a
// concrete world is advanced step by step, at each step scheduling the first
// (philosopher, outcome) pair — philosophers ascending, outcomes ascending —
// whose concrete successor canonicalizes into the path's next quotient state.
// Equivariance of the program under the quotient group guarantees such a pair
// exists (the quotient step executed from the orbit's representative, and the
// current concrete world is a group image of that representative), and the
// first-match rule makes the lift deterministic.
func (ss *StateSpace) liftChoices(choices []Choice) ([]trace.Step, error) {
	steps := make([]trace.Step, len(choices))
	w := sim.NewWorld(ss.topo)
	if ss.hunger != nil {
		w.Hunger = ss.hunger
	}
	ss.prog.Init(w)
	q := ss.initial
	var buf []byte
	for i, c := range choices {
		succs := ss.Succs(q, int(c.Phil))
		if c.Outcome < 0 || c.Outcome >= len(succs) {
			return nil, fmt.Errorf("modelcheck: quotient path step %d schedules outcome %d of P%d in state %d, which has %d outcomes",
				i, c.Outcome, c.Phil, q, len(succs))
		}
		next := int(succs[c.Outcome])
		found := false
	search:
		for a := 0; a < ss.NumPhils; a++ {
			pid := graph.PhilID(a)
			outcomes := ss.prog.Outcomes(w, pid, nil)
			for o := range outcomes {
				succ := w.Clone()
				succOut := ss.prog.Outcomes(succ, pid, nil)
				succOut[o].Do(succ, pid)
				succ.Step++
				buf = succ.AppendCanonicalKey(ss.sym.canon, buf[:0])
				if int(ss.denseOf(buf)) == next {
					steps[i] = trace.Step{Phil: a, Outcome: o}
					w = succ
					found = true
					break search
				}
			}
		}
		if !found {
			return nil, fmt.Errorf("modelcheck: cannot lift quotient counterexample step %d (state %d -> %d): no concrete transition canonicalizes into the target orbit",
				i, q, next)
		}
		q = next
	}
	return steps, nil
}

package par

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestStreamCoversEveryIndexOnce(t *testing.T) {
	t.Parallel()
	for _, workers := range []int{1, 4, 64} {
		seen := make([]bool, 100)
		for s := range Stream(context.Background(), workers, 100, func(i int) (int, error) { return i * i, nil }) {
			if s.Err != nil {
				t.Fatal(s.Err)
			}
			if seen[s.Index] {
				t.Fatalf("workers=%d: index %d yielded twice", workers, s.Index)
			}
			seen[s.Index] = true
			if s.Value != s.Index*s.Index {
				t.Fatalf("workers=%d: index %d carries value %d", workers, s.Index, s.Value)
			}
		}
		for i, ok := range seen {
			if !ok {
				t.Fatalf("workers=%d: index %d never yielded", workers, i)
			}
		}
	}
}

func TestStreamEarlyBreakDoesNotDeadlock(t *testing.T) {
	t.Parallel()
	done := make(chan struct{})
	go func() {
		defer close(done)
		n := 0
		for s := range Stream(context.Background(), 8, 1000, func(i int) (int, error) { return i, nil }) {
			if s.Err != nil {
				t.Error(s.Err)
			}
			n++
			if n == 5 {
				break
			}
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("breaking out of a Stream deadlocked")
	}
}

func TestStreamYieldsTrialErrors(t *testing.T) {
	t.Parallel()
	boom := errors.New("boom")
	var sawBoom, sawOK bool
	for s := range Stream(context.Background(), 2, 10, func(i int) (int, error) {
		if i == 3 {
			return 0, boom
		}
		return i, nil
	}) {
		if errors.Is(s.Err, boom) {
			if s.Index != 3 {
				t.Errorf("boom reported at index %d", s.Index)
			}
			sawBoom = true
		} else if s.Err == nil {
			sawOK = true
		}
	}
	if !sawBoom || !sawOK {
		t.Errorf("stream should yield both successes and the error (boom=%v ok=%v)", sawBoom, sawOK)
	}
}

func TestStreamCancelledContext(t *testing.T) {
	t.Parallel()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var last Streamed[int]
	count := 0
	for s := range Stream(ctx, 4, 50, func(i int) (int, error) { return i, nil }) {
		last = s
		count++
	}
	if count == 0 || !errors.Is(last.Err, context.Canceled) {
		t.Errorf("cancelled stream yielded %d items, last err %v; want a terminal context error", count, last.Err)
	}
}

func TestStreamZeroTrials(t *testing.T) {
	t.Parallel()
	for range Stream(context.Background(), 4, 0, func(i int) (int, error) { return i, nil }) {
		t.Fatal("zero-trial stream yielded")
	}
}

// Package par provides the generic worker-pool trial runner shared by the
// experiment layer (core) and the Monte-Carlo checks (verify). It is a leaf
// package so both can import it without a cycle.
//
// The contract that makes parallel trials deterministic lives here: trial
// functions derive all randomness from their index, results land at their
// index, and callers aggregate in index order — so scheduling is
// unobservable and every aggregate (including floating-point folds) is
// bit-identical to a sequential run.
package par

import (
	"context"
	"iter"
	"runtime"
	"sync"
	"sync/atomic"
)

// Trials runs trials independent trial functions across min(workers, trials)
// goroutines and returns their results in trial-index order. A workers value
// <= 0 means one worker per available CPU; workers == 1 runs inline with no
// goroutines. run receives the trial index and must derive all randomness
// from it (typically via a per-trial seed) — it must not communicate with
// other trials.
//
// If any trial fails, Trials returns the error of the lowest-indexed failing
// trial (so the reported error is deterministic too) and remaining trials
// may be skipped.
func Trials[T any](workers, trials int, run func(trial int) (T, error)) ([]T, error) {
	if trials <= 0 {
		return nil, nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > trials {
		workers = trials
	}
	results := make([]T, trials)
	if workers == 1 {
		for i := 0; i < trials; i++ {
			var err error
			if results[i], err = run(i); err != nil {
				return nil, err
			}
		}
		return results, nil
	}

	var (
		next   atomic.Int64 // next trial index to claim
		failed atomic.Bool  // fast-path flag: some trial errored
		wg     sync.WaitGroup
		mu     sync.Mutex
		errAt  = -1 // lowest failing trial index, under mu
		retErr error
	)
	wg.Add(workers)
	for wkr := 0; wkr < workers; wkr++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= trials || failed.Load() {
					return
				}
				res, err := run(i)
				if err != nil {
					failed.Store(true)
					mu.Lock()
					if errAt < 0 || i < errAt {
						errAt, retErr = i, err
					}
					mu.Unlock()
					return
				}
				results[i] = res
			}
		}()
	}
	wg.Wait()
	if retErr != nil {
		return nil, retErr
	}
	return results, nil
}

// Streamed couples a trial index with its result (or the error that trial
// returned). Index is always a valid trial index; a context-cancellation
// error is reported with the index of a trial whose result was not
// delivered.
type Streamed[T any] struct {
	// Index is the trial index the value or error belongs to.
	Index int
	// Value is the trial's result when Err is nil.
	Value T
	// Err is the trial's error, or the context's error for trials abandoned
	// by cancellation.
	Err error
}

// Stream runs trials independent trial functions across min(workers, trials)
// goroutines and yields each result as it completes — in completion order,
// not index order. The determinism contract of Trials still applies: run must
// derive everything from its index, so the value yielded for a given index is
// identical whatever the worker count or completion order; only the order of
// the yielded sequence varies. Callers that aggregate must do so in index
// order (collect, then fold by Index) to stay bit-identical to a sequential
// run.
//
// A workers value <= 0 means one worker per available CPU; workers == 1 runs
// inline with no goroutines. The stream ends early when the consumer breaks
// out of the loop or ctx is cancelled; a cancellation that left trials
// undelivered yields one terminal item carrying ctx's error on an
// undelivered index (a cancellation arriving after every result was
// delivered yields nothing — the stream completed). Unlike Trials, a trial
// error does not cancel the remaining trials — it is yielded like any other
// item, and the consumer decides whether to keep ranging.
func Stream[T any](ctx context.Context, workers, trials int, run func(trial int) (T, error)) iter.Seq[Streamed[T]] {
	return func(yield func(Streamed[T]) bool) {
		if trials <= 0 {
			return
		}
		if ctx == nil {
			ctx = context.Background()
		}
		if workers <= 0 {
			workers = runtime.GOMAXPROCS(0)
		}
		if workers > trials {
			workers = trials
		}
		if workers == 1 {
			for i := 0; i < trials; i++ {
				if err := ctx.Err(); err != nil {
					yield(Streamed[T]{Index: i, Err: err})
					return
				}
				v, err := run(i)
				if !yield(Streamed[T]{Index: i, Value: v, Err: err}) {
					return
				}
			}
			return
		}

		var (
			next    atomic.Int64
			wg      sync.WaitGroup
			results = make(chan Streamed[T], workers)
			done    = make(chan struct{}) // closed when the consumer stops pulling
		)
		wg.Add(workers)
		for wkr := 0; wkr < workers; wkr++ {
			go func() {
				defer wg.Done()
				for {
					select {
					case <-done:
						return
					case <-ctx.Done():
						return
					default:
					}
					i := int(next.Add(1)) - 1
					if i >= trials {
						return
					}
					v, err := run(i)
					select {
					case results <- Streamed[T]{Index: i, Value: v, Err: err}:
					case <-done:
						return
					}
				}
			}()
		}
		go func() {
			wg.Wait()
			close(results)
		}()
		defer func() {
			close(done)
			for range results {
				// Drain so the workers' pending sends unblock and the channel
				// closes; their results are discarded.
			}
		}()
		delivered := make([]bool, trials)
		deliveredCount := 0
		for r := range results {
			delivered[r.Index] = true
			deliveredCount++
			if !yield(r) {
				return
			}
		}
		if err := ctx.Err(); err != nil && deliveredCount < trials {
			// Workers bailed out on cancellation with results outstanding;
			// report exactly one terminal error on the first undelivered
			// index. A cancellation after full delivery yields nothing.
			for i := 0; i < trials; i++ {
				if !delivered[i] {
					yield(Streamed[T]{Index: i, Err: err})
					return
				}
			}
		}
	}
}

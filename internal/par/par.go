// Package par provides the generic worker-pool trial runner shared by the
// experiment layer (core) and the Monte-Carlo checks (verify). It is a leaf
// package so both can import it without a cycle.
//
// The contract that makes parallel trials deterministic lives here: trial
// functions derive all randomness from their index, results land at their
// index, and callers aggregate in index order — so scheduling is
// unobservable and every aggregate (including floating-point folds) is
// bit-identical to a sequential run.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Trials runs trials independent trial functions across min(workers, trials)
// goroutines and returns their results in trial-index order. A workers value
// <= 0 means one worker per available CPU; workers == 1 runs inline with no
// goroutines. run receives the trial index and must derive all randomness
// from it (typically via a per-trial seed) — it must not communicate with
// other trials.
//
// If any trial fails, Trials returns the error of the lowest-indexed failing
// trial (so the reported error is deterministic too) and remaining trials
// may be skipped.
func Trials[T any](workers, trials int, run func(trial int) (T, error)) ([]T, error) {
	if trials <= 0 {
		return nil, nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > trials {
		workers = trials
	}
	results := make([]T, trials)
	if workers == 1 {
		for i := 0; i < trials; i++ {
			var err error
			if results[i], err = run(i); err != nil {
				return nil, err
			}
		}
		return results, nil
	}

	var (
		next   atomic.Int64 // next trial index to claim
		failed atomic.Bool  // fast-path flag: some trial errored
		wg     sync.WaitGroup
		mu     sync.Mutex
		errAt  = -1 // lowest failing trial index, under mu
		retErr error
	)
	wg.Add(workers)
	for wkr := 0; wkr < workers; wkr++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= trials || failed.Load() {
					return
				}
				res, err := run(i)
				if err != nil {
					failed.Store(true)
					mu.Lock()
					if errAt < 0 || i < errAt {
						errAt, retErr = i, err
					}
					mu.Unlock()
					return
				}
				results[i] = res
			}
		}()
	}
	wg.Wait()
	if retErr != nil {
		return nil, retErr
	}
	return results, nil
}

package trace

import (
	"encoding/hex"
	"fmt"
	"strings"

	"repro/internal/graph"
	"repro/internal/sim"
)

// Step is one move of a counterexample trace: the adversary schedules a
// philosopher and the probabilistic draw of that philosopher's atomic action
// resolves to the outcome with the given index. Phil and Outcome are the
// replayable part of the wire format; Label and Prob are filled in by Build
// for human consumption.
type Step struct {
	// Phil is the scheduled philosopher.
	Phil int `json:"phil"`
	// Outcome is the index of the outcome taken, within the outcome set of
	// the philosopher's next atomic action in the state the step executes in.
	Outcome int `json:"outcome"`
	// Label is the outcome's human-readable description ("commit left").
	Label string `json:"label,omitempty"`
	// Prob is the outcome's probability.
	Prob float64 `json:"prob,omitempty"`
}

// Trace is a replayable counterexample: the scheduler-choice path that leads
// from the initial state of an algorithm on a topology to a state violating
// a property (a deadlock, a dead region, a starvation-trap member). The
// struct is the stable JSON wire format emitted by the property layer and
// the CLI tools; Replay re-executes it and verifies it lands in FinalKey.
type Trace struct {
	// Property names the property the trace refutes ("deadlock-freedom").
	Property string `json:"property,omitempty"`
	// Topology and Algorithm identify the system the trace belongs to.
	Topology  string `json:"topology"`
	Algorithm string `json:"algorithm"`
	// Faults is the canonical fault-model spec the trace was recorded under
	// ("crash-rejoin:0.05,0.5"), empty for unperturbed systems. Replay
	// verifies that the replaying program injects the same faults, and fault
	// branches show up as "fault: "-labelled steps.
	Faults string `json:"faults,omitempty"`
	// Steps is the scheduler-choice path from the initial state.
	Steps []Step `json:"steps"`
	// FinalKey is the hex-encoded canonical key (sim.World.AppendKey) of the
	// state the trace ends in; Replay verifies against it.
	FinalKey string `json:"final_key"`
	// FinalState is the violating state rendered in the arrow notation of
	// the paper's figures (RenderState).
	FinalState string `json:"final_state,omitempty"`
}

// Len returns the number of steps.
func (t *Trace) Len() int { return len(t.Steps) }

// String renders the trace compactly: one line per step plus the rendered
// final state.
func (t *Trace) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "counterexample to %s: %s on %s", t.Property, t.Algorithm, t.Topology)
	if t.Faults != "" {
		fmt.Fprintf(&b, " under %s", t.Faults)
	}
	fmt.Fprintf(&b, ", %d steps\n", len(t.Steps))
	for i, s := range t.Steps {
		fmt.Fprintf(&b, "  %3d. P%d", i+1, s.Phil)
		if s.Label != "" {
			fmt.Fprintf(&b, ": %s", s.Label)
		}
		if s.Prob > 0 && s.Prob < 1 {
			fmt.Fprintf(&b, " (p=%.3g)", s.Prob)
		}
		b.WriteByte('\n')
	}
	if t.FinalState != "" {
		b.WriteString("  final ")
		b.WriteString(strings.ReplaceAll(strings.TrimRight(t.FinalState, "\n"), "\n", "\n  "))
		b.WriteByte('\n')
	}
	return b.String()
}

// run executes steps from the initial state of prog on topo (under hunger;
// nil keeps the saturated default workload) and returns the final world. The
// execution mirrors the model checker's transition semantics exactly: the
// scheduled philosopher's outcome set is computed, the indexed outcome is
// applied, and the step counter advances. fill controls whether each step's
// Label and Prob are (re)written from the executed outcome.
func run(topo *graph.Topology, prog sim.Program, hunger sim.HungerModel, steps []Step, fill bool) (*sim.World, error) {
	if topo == nil || prog == nil {
		return nil, fmt.Errorf("trace: run requires a topology and a program")
	}
	w := sim.NewWorld(topo)
	if hunger != nil {
		w.Hunger = hunger
	}
	prog.Init(w)
	var buf []sim.Outcome
	for i := range steps {
		st := &steps[i]
		if st.Phil < 0 || st.Phil >= topo.NumPhilosophers() {
			return nil, fmt.Errorf("trace: step %d schedules philosopher %d, out of range [0, %d)", i, st.Phil, topo.NumPhilosophers())
		}
		p := graph.PhilID(st.Phil)
		buf = prog.Outcomes(w, p, buf[:0])
		if st.Outcome < 0 || st.Outcome >= len(buf) {
			return nil, fmt.Errorf("trace: step %d takes outcome %d of P%d, but the action has %d outcomes", i, st.Outcome, st.Phil, len(buf))
		}
		o := &buf[st.Outcome]
		if fill {
			st.Label = o.Label
			st.Prob = o.Prob
		}
		o.Do(w, p)
		w.Step++
	}
	return w, nil
}

// Build executes the scheduler choices (each step's Phil and Outcome) from
// the initial state of prog on topo and completes the trace: labels and
// probabilities are filled in from the executed outcomes, the final state is
// rendered in the paper's arrow notation, and its canonical key is recorded
// for replay verification. Build takes ownership of steps.
func Build(topo *graph.Topology, prog sim.Program, hunger sim.HungerModel, property string, steps []Step) (*Trace, error) {
	w, err := run(topo, prog, hunger, steps, true)
	if err != nil {
		return nil, err
	}
	return &Trace{
		Property:   property,
		Topology:   topo.Name(),
		Algorithm:  prog.Name(),
		Faults:     faultSpec(prog),
		Steps:      steps,
		FinalKey:   hex.EncodeToString(w.AppendKey(nil)),
		FinalState: RenderState(w),
	}, nil
}

// faultSpec returns the canonical fault spec of a fault-wrapped program
// (package fault's wrapper exposes it), or "" for plain algorithms.
func faultSpec(prog sim.Program) string {
	if fs, ok := prog.(interface{ FaultSpec() string }); ok {
		return fs.FaultSpec()
	}
	return ""
}

// Replay re-executes a trace's scheduler choices against prog on topo (under
// hunger; nil keeps the default workload) and verifies the run lands in the
// state the trace reports. It returns the final world on success and an
// error when the trace names a different system, a step is inapplicable, or
// the final state diverges from FinalKey.
func Replay(topo *graph.Topology, prog sim.Program, hunger sim.HungerModel, t *Trace) (*sim.World, error) {
	if t == nil {
		return nil, fmt.Errorf("trace: Replay requires a trace")
	}
	if topo != nil && t.Topology != "" && topo.Name() != t.Topology {
		return nil, fmt.Errorf("trace: trace was recorded on topology %q, not %q", t.Topology, topo.Name())
	}
	if prog != nil && t.Algorithm != "" && prog.Name() != t.Algorithm {
		return nil, fmt.Errorf("trace: trace was recorded for algorithm %q, not %q", t.Algorithm, prog.Name())
	}
	if prog != nil && t.Faults != faultSpec(prog) {
		return nil, fmt.Errorf("trace: trace was recorded under faults %q, not %q", t.Faults, faultSpec(prog))
	}
	steps := append([]Step(nil), t.Steps...)
	w, err := run(topo, prog, hunger, steps, false)
	if err != nil {
		return nil, err
	}
	key := hex.EncodeToString(w.AppendKey(nil))
	if key != t.FinalKey {
		return nil, fmt.Errorf("trace: replay diverged after %d steps: final key %s, trace recorded %s", len(t.Steps), key, t.FinalKey)
	}
	return w, nil
}

// Package trace records simulation events and renders system states in the
// style of the paper's figures: an "empty arrow" (->) for a philosopher that
// has committed to a fork without holding it, and a "filled arrow" (=>) for a
// philosopher holding a fork. It is used by the adversary-walk reproduction
// tool (cmd/dpadversary) and by the examples.
package trace

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/graph"
	"repro/internal/sim"
)

// Log is an in-memory event recorder. It is safe for concurrent use so the
// goroutine runtime can share one.
type Log struct {
	mu     sync.Mutex
	events []sim.Event
	limit  int
}

// NewLog returns a Log that keeps at most limit events (0 = unlimited).
func NewLog(limit int) *Log {
	return &Log{limit: limit}
}

// Record implements sim.Recorder.
func (l *Log) Record(e sim.Event) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.limit > 0 && len(l.events) >= l.limit {
		return
	}
	l.events = append(l.events, e)
}

// Events returns a copy of the recorded events.
func (l *Log) Events() []sim.Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]sim.Event(nil), l.events...)
}

// Len returns the number of recorded events.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.events)
}

// Filter returns the recorded events of the given kinds, preserving order.
func (l *Log) Filter(kinds ...sim.EventKind) []sim.Event {
	want := make(map[sim.EventKind]bool, len(kinds))
	for _, k := range kinds {
		want[k] = true
	}
	var out []sim.Event
	for _, e := range l.Events() {
		if want[e.Kind] {
			out = append(out, e)
		}
	}
	return out
}

// String renders the full event list, one event per line.
func (l *Log) String() string {
	var b strings.Builder
	for _, e := range l.Events() {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// RenderState draws the instantaneous state of a world in the notation of the
// paper's figures: for every philosopher its phase and its relation to its
// two forks, and for every fork its holder, nr value and pending requests.
func RenderState(w *sim.World) string {
	var b strings.Builder
	fmt.Fprintf(&b, "step %d\n", w.Step)
	b.WriteString("  philosophers:\n")
	for p := range w.Phils {
		pid := graph.PhilID(p)
		st := &w.Phils[p]
		phase := st.Phase.String()
		if st.Crashed {
			phase = "crashed"
		}
		fmt.Fprintf(&b, "    P%-3d %-8s %s\n", p, phase, describeArrows(w, pid))
	}
	b.WriteString("  forks:\n")
	for f := 0; f < w.Topo.NumForks(); f++ {
		fid := graph.ForkID(f)
		fs := &w.Forks[f]
		holder := "free"
		if fs.Holder != graph.NoPhil {
			holder = fmt.Sprintf("held by P%d", fs.Holder)
		}
		extras := ""
		if fs.NR != 0 {
			extras += fmt.Sprintf(" nr=%d", fs.NR)
		}
		if reqs := requestList(w, fid); reqs != "" {
			extras += " requests=" + reqs
		}
		fmt.Fprintf(&b, "    f%-3d %s%s\n", f, holder, extras)
	}
	return b.String()
}

// describeArrows renders a philosopher's relation to its forks: "P -> f"
// (committed, the paper's empty arrow), "P => f" (holding, filled arrow), or
// "idle".
func describeArrows(w *sim.World, p graph.PhilID) string {
	st := &w.Phils[p]
	if st.First == graph.NoFork {
		return fmt.Sprintf("(forks f%d, f%d)", w.Topo.Left(p), w.Topo.Right(p))
	}
	var parts []string
	first := st.First
	second := w.Topo.OtherFork(p, first)
	if st.HasFirst {
		parts = append(parts, fmt.Sprintf("=> f%d", first))
	} else {
		parts = append(parts, fmt.Sprintf("-> f%d", first))
	}
	if st.HasSecond {
		parts = append(parts, fmt.Sprintf("=> f%d", second))
	}
	return strings.Join(parts, "  ")
}

func requestList(w *sim.World, f graph.ForkID) string {
	var ids []string
	for _, p := range w.Topo.PhilosophersAt(f) {
		if w.HasRequest(p, f) {
			ids = append(ids, fmt.Sprintf("P%d", p))
		}
	}
	return strings.Join(ids, ",")
}

// StateWalk captures a sequence of rendered states, one per recorded
// snapshot, reproducing the "State 1 ... State N" presentation of the paper's
// figures.
type StateWalk struct {
	titles []string
	states []string
}

// Snapshot appends the current state of w under the given title.
func (sw *StateWalk) Snapshot(title string, w *sim.World) {
	sw.titles = append(sw.titles, title)
	sw.states = append(sw.states, RenderState(w))
}

// Len returns the number of snapshots.
func (sw *StateWalk) Len() int { return len(sw.states) }

// String renders all snapshots in order.
func (sw *StateWalk) String() string {
	var b strings.Builder
	for i := range sw.states {
		fmt.Fprintf(&b, "=== %s ===\n%s\n", sw.titles[i], sw.states[i])
	}
	return b.String()
}

// Summarize produces a compact per-philosopher activity table from a log:
// how many times each philosopher was scheduled, committed, took and released
// forks, and ate.
func Summarize(log *Log, numPhils int) string {
	type row struct {
		scheduled, committed, took, released, ate int
	}
	rows := make([]row, numPhils)
	for _, e := range log.Events() {
		if int(e.Phil) < 0 || int(e.Phil) >= numPhils {
			continue
		}
		r := &rows[e.Phil]
		switch e.Kind {
		case sim.EventScheduled:
			r.scheduled++
		case sim.EventCommitted:
			r.committed++
		case sim.EventTookFork:
			r.took++
		case sim.EventReleasedFork:
			r.released++
		case sim.EventDoneEat:
			r.ate++
		}
	}
	var b strings.Builder
	b.WriteString("phil  scheduled  committed  took  released  meals\n")
	for p, r := range rows {
		fmt.Fprintf(&b, "P%-4d %9d  %9d  %4d  %8d  %5d\n", p, r.scheduled, r.committed, r.took, r.released, r.ate)
	}
	return b.String()
}

package trace

import (
	"strings"
	"testing"

	"repro/internal/algo"
	"repro/internal/graph"
	"repro/internal/prng"
	"repro/internal/sched"
	"repro/internal/sim"
)

func TestLogRecordsAndFilters(t *testing.T) {
	t.Parallel()
	log := NewLog(0)
	prog, err := algo.New("GDP1", algo.Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, err = sim.Run(graph.Ring(3), prog, sched.NewRoundRobin(), prng.New(1), sim.RunOptions{
		MaxSteps: 500,
		Recorder: log,
	})
	if err != nil {
		t.Fatal(err)
	}
	if log.Len() == 0 {
		t.Fatal("no events recorded")
	}
	eats := log.Filter(sim.EventDoneEat)
	if len(eats) == 0 {
		t.Error("expected at least one completed meal event")
	}
	for _, e := range eats {
		if e.Kind != sim.EventDoneEat {
			t.Error("Filter returned wrong kinds")
		}
	}
	if !strings.Contains(log.String(), "took-fork") {
		t.Error("log string missing expected events")
	}
}

func TestLogLimit(t *testing.T) {
	t.Parallel()
	log := NewLog(5)
	for i := 0; i < 20; i++ {
		log.Record(sim.Event{Step: int64(i), Kind: sim.EventScheduled})
	}
	if log.Len() != 5 {
		t.Errorf("limited log kept %d events, want 5", log.Len())
	}
}

func TestRenderStateShowsArrows(t *testing.T) {
	t.Parallel()
	topo := graph.Ring(3)
	w := sim.NewWorld(topo)
	w.BecomeHungry(0)
	w.Commit(0, topo.Left(0))
	w.BecomeHungry(1)
	w.Commit(1, topo.Left(1))
	w.TryTake(1, topo.Left(1))
	w.MarkHoldingFirst(1)
	w.SetNR(1, topo.Left(1), 4)
	w.Request(2, topo.Left(2))
	w.BecomeHungry(2)

	out := RenderState(w)
	if !strings.Contains(out, "-> f0") {
		t.Errorf("render missing the committed (empty) arrow:\n%s", out)
	}
	if !strings.Contains(out, "=> f1") {
		t.Errorf("render missing the holding (filled) arrow:\n%s", out)
	}
	if !strings.Contains(out, "held by P1") {
		t.Errorf("render missing fork holder:\n%s", out)
	}
	if !strings.Contains(out, "nr=4") {
		t.Errorf("render missing nr value:\n%s", out)
	}
	if !strings.Contains(out, "requests=P2") {
		t.Errorf("render missing request list:\n%s", out)
	}
}

func TestStateWalk(t *testing.T) {
	t.Parallel()
	topo := graph.Figure1A()
	w := sim.NewWorld(topo)
	var walk StateWalk
	walk.Snapshot("State 1", w)
	w.BecomeHungry(0)
	walk.Snapshot("State 2", w)
	if walk.Len() != 2 {
		t.Errorf("walk length %d, want 2", walk.Len())
	}
	out := walk.String()
	if !strings.Contains(out, "State 1") || !strings.Contains(out, "State 2") {
		t.Errorf("walk rendering missing titles:\n%s", out)
	}
}

func TestSummarize(t *testing.T) {
	t.Parallel()
	log := NewLog(0)
	prog, err := algo.New("LR1", algo.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(graph.Ring(4), prog, sched.NewRoundRobin(), prng.New(2), sim.RunOptions{
		MaxSteps: 2000,
		Recorder: log,
	})
	if err != nil {
		t.Fatal(err)
	}
	table := Summarize(log, 4)
	if !strings.Contains(table, "P0") || !strings.Contains(table, "meals") {
		t.Errorf("summary table malformed:\n%s", table)
	}
	if res.TotalEats > 0 && !strings.Contains(table, " 1") {
		t.Errorf("summary should reflect meals:\n%s", table)
	}
}

package trace

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/algo"
	"repro/internal/graph"
)

func TestBuildFillsLabelsAndReplayVerifies(t *testing.T) {
	t.Parallel()
	topo := graph.Ring(3)
	prog, err := algo.New("LR1", algo.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Schedule P0 twice: become hungry, then the commit coin flip (outcome 0).
	steps := []Step{{Phil: 0, Outcome: 0}, {Phil: 0, Outcome: 0}}
	tr, err := Build(topo, prog, nil, "test-property", steps)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Topology != topo.Name() || tr.Algorithm != "LR1" || tr.Property != "test-property" {
		t.Errorf("trace identity wrong: %+v", tr)
	}
	if tr.Steps[0].Label == "" || tr.Steps[1].Label == "" {
		t.Errorf("Build did not fill outcome labels: %+v", tr.Steps)
	}
	if tr.Steps[1].Prob != 0.5 {
		t.Errorf("the commit step is a fair coin flip; got prob %v", tr.Steps[1].Prob)
	}
	if tr.FinalKey == "" || tr.FinalState == "" {
		t.Error("Build must record the final key and rendered final state")
	}
	if _, err := Replay(topo, prog, nil, tr); err != nil {
		t.Fatalf("replay of a freshly built trace failed: %v", err)
	}
	if s := tr.String(); !strings.Contains(s, "test-property") || !strings.Contains(s, "P0") {
		t.Errorf("String rendering incomplete:\n%s", s)
	}
}

func TestBuildAndReplayRejectBadInput(t *testing.T) {
	t.Parallel()
	topo := graph.Ring(3)
	prog, err := algo.New("LR1", algo.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Build(topo, prog, nil, "p", []Step{{Phil: 9, Outcome: 0}}); err == nil {
		t.Error("Build accepted an out-of-range philosopher")
	}
	if _, err := Build(topo, prog, nil, "p", []Step{{Phil: 0, Outcome: 7}}); err == nil {
		t.Error("Build accepted an out-of-range outcome index")
	}
	tr, err := Build(topo, prog, nil, "p", []Step{{Phil: 0, Outcome: 0}})
	if err != nil {
		t.Fatal(err)
	}
	other, err := algo.New("GDP1", algo.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Replay(topo, other, nil, tr); err == nil {
		t.Error("Replay accepted a trace recorded for a different algorithm")
	}
	if _, err := Replay(graph.Ring(4), prog, nil, tr); err == nil {
		t.Error("Replay accepted a trace recorded on a different topology")
	}
	bad := *tr
	bad.FinalKey = "ff"
	if _, err := Replay(topo, prog, nil, &bad); err == nil {
		t.Error("Replay accepted a diverging final key")
	}
}

func TestTraceJSONRoundTrip(t *testing.T) {
	t.Parallel()
	topo := graph.Ring(3)
	prog, err := algo.New("LR1", algo.Options{})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Build(topo, prog, nil, "progress", []Step{{Phil: 0, Outcome: 0}, {Phil: 1, Outcome: 0}})
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(tr)
	if err != nil {
		t.Fatal(err)
	}
	var back Trace
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	// The wire format is replayable: a trace decoded from JSON verifies.
	if _, err := Replay(topo, prog, nil, &back); err != nil {
		t.Fatalf("replay of a JSON round-tripped trace failed: %v", err)
	}
}

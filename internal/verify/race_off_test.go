//go:build !race

package verify

// raceEnabled reports whether this test binary runs under the race detector.
const raceEnabled = false

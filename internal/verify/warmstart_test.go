package verify

import (
	"math"
	"testing"

	"repro/internal/algo"
	"repro/internal/graph"
	"repro/internal/prng"
	"repro/internal/sim"
	"repro/internal/stats"
)

// TestWarmStartMatchesFreshWorlds pins that the trial pool is unobservable:
// a ProgressCheck run (whose trials clone the shared prototype world into
// recycled per-worker worlds) produces exactly the aggregates of a manual
// loop that rebuilds every world from the topology with the same per-trial
// seed derivation.
func TestWarmStartMatchesFreshWorlds(t *testing.T) {
	t.Parallel()
	topo := graph.Figure1A()
	prog, err := algo.New("GDP1", algo.Options{})
	if err != nil {
		t.Fatal(err)
	}
	const trials, maxSteps, seed = 20, 30_000, 9
	res, err := ProgressCheck{
		Topology:  topo,
		Algorithm: prog,
		Scheduler: randomSched,
		Trials:    trials,
		MaxSteps:  maxSteps,
		Seed:      seed,
		Workers:   3,
	}.Run()
	if err != nil {
		t.Fatal(err)
	}

	var prop stats.Proportion
	var firstMeal stats.Running
	for i := 0; i < trials; i++ {
		s := uint64(seed) + uint64(i)*0x9e3779b9
		rng := prng.New(s)
		r, err := sim.Run(topo, prog, randomSched(rng.Split()), rng, sim.RunOptions{
			MaxSteps:           maxSteps,
			StopAfterTotalEats: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		prop.Add(r.Progress())
		if r.Progress() {
			firstMeal.Add(float64(r.FirstEatStep))
		}
	}
	if res.Proportion != prop {
		t.Errorf("proportion %+v, fresh-world loop %+v", res.Proportion, prop)
	}
	if math.Abs(res.StepsToFirstMeal.Mean()-firstMeal.Mean()) > 0 {
		t.Errorf("mean steps to first meal %v, fresh-world loop %v",
			res.StepsToFirstMeal.Mean(), firstMeal.Mean())
	}
	if len(res.Failures) != 0 {
		t.Errorf("GDP1 unexpectedly failed trials %v", res.Failures)
	}
}

// TestTrialWarmStartAllocs is the allocation-regression guard for the trial
// pool: with the pool warm, a statistical trial must not rebuild any world
// state from the topology, and — since trials run through sim.RunWorldInto
// against the slot's pooled Result — must not copy per-philosopher metric
// slices either. The trial RNG, scheduler RNG and scheduler are recycled in
// the slot too (trialSlot.prepare), and the step loop's outcome buffer rides
// the pooled Result, so the steady-state marginal cost of a trial is zero
// allocations; the budget below only absorbs the amortized fixed costs
// (pool and slot construction, result aggregation) spread over the trial
// count, and stays flat when the topology grows from 5 to 64 philosophers.
func TestTrialWarmStartAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation counting skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("sync.Pool randomizes caching under the race detector, so allocation counts are meaningless")
	}
	const maxAllocsPerTrial = 2.0
	prog, err := algo.New("GDP1", algo.Options{})
	if err != nil {
		t.Fatal(err)
	}
	const trials = 50
	for _, topo := range []*graph.Topology{graph.Ring(5), graph.Ring(64)} {
		checks := map[string]func() error{
			"progress": func() error {
				_, err := ProgressCheck{
					Topology:  topo,
					Algorithm: prog,
					Scheduler: randomSched,
					Trials:    trials,
					MaxSteps:  500,
					Seed:      17,
					Workers:   1,
				}.Run()
				return err
			},
			"lockout": func() error {
				_, err := LockoutCheck{
					Topology:  topo,
					Algorithm: prog,
					Scheduler: randomSched,
					Trials:    trials,
					MaxSteps:  500,
					Seed:      17,
					Workers:   1,
				}.Run()
				return err
			},
		}
		for name, run := range checks {
			allocs := testing.AllocsPerRun(3, func() {
				if err := run(); err != nil {
					t.Fatal(err)
				}
			})
			perTrial := allocs / trials
			t.Logf("%s/%s: %.0f allocs over %d trials, %.1f allocs/trial", topo.Name(), name, allocs, trials, perTrial)
			if perTrial > maxAllocsPerTrial {
				t.Errorf("%s/%s: %.1f allocs/trial exceeds the %.0f budget", topo.Name(), name, perTrial, maxAllocsPerTrial)
			}
		}
	}
}

// closureSched is deliberately NOT resettable: it hides per-trial state in a
// closure, so the trial pool must fall back to reconstructing it through the
// factory each trial. The decisions mix the closure counter with the trial's
// scheduler RNG, so any stale state or stale RNG stream would change the
// aggregates.
func closureSched(rng *prng.Source) sim.Scheduler {
	next := 0
	return sim.SchedulerFunc{
		SchedulerName: "closure-robin",
		NextFunc: func(w *sim.World) graph.PhilID {
			next += 1 + rng.Intn(2)
			return graph.PhilID(next % len(w.Phils))
		},
	}
}

// TestWarmStartNonResettableScheduler pins the factory-fallback path of the
// trial pool: a scheduler that does not implement sim.ResettableScheduler is
// rebuilt per trial, and the check still reproduces the fresh-world loop
// exactly.
func TestWarmStartNonResettableScheduler(t *testing.T) {
	t.Parallel()
	topo := graph.Figure1A()
	prog, err := algo.New("LR1", algo.Options{})
	if err != nil {
		t.Fatal(err)
	}
	const trials, maxSteps, seed = 12, 20_000, 23
	res, err := ProgressCheck{
		Topology:  topo,
		Algorithm: prog,
		Scheduler: closureSched,
		Trials:    trials,
		MaxSteps:  maxSteps,
		Seed:      seed,
		Workers:   4,
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	var prop stats.Proportion
	for i := 0; i < trials; i++ {
		s := uint64(seed) + uint64(i)*0x9e3779b9
		rng := prng.New(s)
		r, err := sim.Run(topo, prog, closureSched(rng.Split()), rng, sim.RunOptions{
			MaxSteps:           maxSteps,
			StopAfterTotalEats: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		prop.Add(r.Progress())
	}
	if res.Proportion != prop {
		t.Errorf("proportion %+v, fresh-world loop %+v", res.Proportion, prop)
	}
}

// Package verify provides machine-checkable formulations of the paper's
// statements that complement the exhaustive model checker on instances too
// large to explore: Monte-Carlo progress and lockout-freedom checks
// (Theorems 3 and 4), the probability lower bound used in the proof of
// Theorem 3, and a symmetry audit of the algorithms (the paper's symmetry and
// full-distribution conditions).
package verify

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/algo"
	"repro/internal/graph"
	"repro/internal/par"
	"repro/internal/prng"
	"repro/internal/sim"
	"repro/internal/stats"
)

// SchedulerFactory constructs a fresh scheduler for each trial (schedulers
// carry state, so they cannot be shared across trials).
type SchedulerFactory func(rng *prng.Source) sim.Scheduler

// forEachTrial runs trial functions across a worker pool, collecting
// results in trial-index order so that aggregation (including
// floating-point folds) is identical to a sequential run; see par.Trials.
func forEachTrial[T any](workers, trials int, run func(trial int) (T, error)) ([]T, error) {
	return par.Trials(workers, trials, run)
}

// trialSlot is the per-worker working set of one Monte-Carlo trial: the
// recycled world, the recycled run summary, and the recycled run-level
// bookkeeping (trial RNG, scheduler RNG, scheduler). Keeping the Result in
// the slot lets trials run through sim.RunWorldInto, which reuses the
// summary's metric slices (EatsBy, FirstEatBy, ScheduledCount, Starved) and
// scratch arrays in place instead of copying them per trial; keeping the
// RNGs as values and the scheduler instance lets prepare reseed and reset
// them in place instead of re-deriving all three per trial.
type trialSlot struct {
	w   *sim.World
	res sim.Result

	rng      prng.Source
	schedRNG prng.Source
	sched    sim.Scheduler
}

// prepare rewinds the slot's run-level state for the trial with the given
// seed, bit-identically to the unpooled derivation
//
//	rng := prng.New(seed)
//	sched := factory(rng.Split())
//
// The trial RNG is reseeded in place; the scheduler RNG is re-derived with
// SplitTo (same stream advance and same resulting state as Split); and the
// scheduler is Reset when it supports it — its captured *prng.Source pointer
// sees the reseeded stream — or reconstructed through the factory otherwise.
func (s *trialSlot) prepare(factory SchedulerFactory, seed uint64) (*prng.Source, sim.Scheduler) {
	s.rng.Reseed(seed)
	s.rng.SplitTo(&s.schedRNG)
	if rs, ok := s.sched.(sim.ResettableScheduler); ok {
		rs.Reset()
	} else {
		s.sched = factory(&s.schedRNG)
	}
	return &s.rng, s.sched
}

// trialPool warm-starts Monte-Carlo trials: the initial world is built (and
// the program initialized on it) exactly once, and every trial clones the
// prototype's protocol state into a recycled per-worker world via
// CloneProtocolInto instead of rebuilding phil/fork/slot arrays from the
// topology. The prototype is read-only after construction, so concurrent
// trial workers share it safely; the recycled world/Result slots cycle
// through a sync.Pool, so a steady-state trial allocates neither world state
// nor summary slices (pinned by TestTrialWarmStartAllocs).
type trialPool struct {
	proto *sim.World
	pool  sync.Pool
}

// newTrialPool builds the shared prototype for topo/prog.
func newTrialPool(topo *graph.Topology, prog sim.Program) *trialPool {
	proto := sim.NewWorld(topo)
	prog.Init(proto)
	return &trialPool{proto: proto}
}

// get returns a slot whose world is in the exact state a fresh NewWorld+Init
// would produce, recycling a pooled slot when one is available. The slot's
// Result holds whatever the previous trial left; RunWorldInto overwrites
// every field.
func (tp *trialPool) get() *trialSlot {
	s, _ := tp.pool.Get().(*trialSlot)
	if s == nil {
		s = &trialSlot{}
	}
	s.w = tp.proto.CloneProtocolInto(s.w)
	s.w.ResetMetrics()
	return s
}

// put recycles a trial's slot for the next get. The Result's Final aliases
// the pooled world; sever it so no retained Result ever observes a world
// another trial is overwriting.
func (tp *trialPool) put(s *trialSlot) {
	s.res.Final = nil
	tp.pool.Put(s)
}

// ProgressCheck is the Monte-Carlo form of a progress statement
// T --(F, p)--> E: starting every trial from the all-thinking initial state
// under a saturated workload, the system must reach a state where some
// philosopher eats.
type ProgressCheck struct {
	Topology  *graph.Topology
	Algorithm sim.Program
	Scheduler SchedulerFactory
	Trials    int
	MaxSteps  int64
	Seed      uint64
	// Workers bounds the trial goroutines (0 = one per CPU, 1 = sequential);
	// the result is identical for every value.
	Workers int
	// Stop is polled by every trial's step loop when non-nil; a true return
	// ends the trial early. It is how context cancellation reaches a running
	// check (the caller should treat a stopped check's result as invalid).
	Stop func() bool
}

// ProgressResult summarises a ProgressCheck.
type ProgressResult struct {
	Proportion stats.Proportion
	// StepsToFirstMeal aggregates the number of steps before the first meal
	// over successful trials.
	StepsToFirstMeal stats.Running
	// Failures lists the seeds of trials with no progress (empty when the
	// check passed).
	Failures []uint64
}

// Passed reports whether every trial made progress.
func (r *ProgressResult) Passed() bool { return len(r.Failures) == 0 }

// Run executes the check.
func (c ProgressCheck) Run() (*ProgressResult, error) {
	if c.Topology == nil || c.Algorithm == nil || c.Scheduler == nil {
		return nil, fmt.Errorf("verify: ProgressCheck requires a topology, an algorithm and a scheduler factory")
	}
	if c.Trials <= 0 {
		c.Trials = 100
	}
	if c.MaxSteps <= 0 {
		c.MaxSteps = 100_000
	}
	type trialResult struct {
		ok       bool
		firstEat float64
		seed     uint64
	}
	worlds := newTrialPool(c.Topology, c.Algorithm)
	perTrial, err := forEachTrial(c.Workers, c.Trials, func(i int) (trialResult, error) {
		seed := c.Seed + uint64(i)*0x9e3779b9
		s := worlds.get()
		rng, sched := s.prepare(c.Scheduler, seed)
		if err := sim.RunWorldInto(&s.res, s.w, c.Algorithm, sched, rng, sim.RunOptions{
			MaxSteps:           c.MaxSteps,
			StopAfterTotalEats: 1,
			Stop:               c.Stop,
		}); err != nil {
			return trialResult{}, fmt.Errorf("verify: progress trial %d: %w", i, err)
		}
		tr := trialResult{ok: s.res.Progress(), firstEat: float64(s.res.FirstEatStep), seed: seed}
		worlds.put(s)
		return tr, nil
	})
	if err != nil {
		return nil, err
	}
	out := &ProgressResult{}
	for _, tr := range perTrial {
		out.Proportion.Add(tr.ok)
		if tr.ok {
			out.StepsToFirstMeal.Add(tr.firstEat)
		} else {
			out.Failures = append(out.Failures, tr.seed)
		}
	}
	return out, nil
}

// LockoutCheck is the Monte-Carlo form of the lockout-freedom statement
// T_i --(F, 1)--> E_i: every philosopher that becomes hungry eventually eats.
// A trial passes when every philosopher completes at least MealsEach meals
// within the step budget.
type LockoutCheck struct {
	Topology  *graph.Topology
	Algorithm sim.Program
	Scheduler SchedulerFactory
	Trials    int
	MaxSteps  int64
	MealsEach int64
	Seed      uint64
	// Workers bounds the trial goroutines (0 = one per CPU, 1 = sequential);
	// the result is identical for every value.
	Workers int
	// Stop is polled by every trial's step loop when non-nil; a true return
	// ends the trial early (see ProgressCheck.Stop).
	Stop func() bool
}

// LockoutResult summarises a LockoutCheck.
type LockoutResult struct {
	Proportion stats.Proportion
	// WorstJainIndex is the smallest Jain fairness index over per-philosopher
	// meal counts observed across trials.
	WorstJainIndex float64
	// Failures lists the seeds of failed trials.
	Failures []uint64
}

// Passed reports whether every trial served every philosopher.
func (r *LockoutResult) Passed() bool { return len(r.Failures) == 0 }

// Run executes the check.
func (c LockoutCheck) Run() (*LockoutResult, error) {
	if c.Topology == nil || c.Algorithm == nil || c.Scheduler == nil {
		return nil, fmt.Errorf("verify: LockoutCheck requires a topology, an algorithm and a scheduler factory")
	}
	if c.Trials <= 0 {
		c.Trials = 50
	}
	if c.MaxSteps <= 0 {
		c.MaxSteps = 200_000
	}
	if c.MealsEach <= 0 {
		c.MealsEach = 1
	}
	type trialResult struct {
		ok   bool
		jain float64
		seed uint64
	}
	worlds := newTrialPool(c.Topology, c.Algorithm)
	perTrial, err := forEachTrial(c.Workers, c.Trials, func(i int) (trialResult, error) {
		seed := c.Seed + uint64(i)*0x9e3779b9
		s := worlds.get()
		rng, sched := s.prepare(c.Scheduler, seed)
		if err := sim.RunWorldInto(&s.res, s.w, c.Algorithm, sched, rng, sim.RunOptions{
			MaxSteps: c.MaxSteps,
			Stop:     c.Stop,
		}); err != nil {
			return trialResult{}, fmt.Errorf("verify: lockout trial %d: %w", i, err)
		}
		ok := true
		for _, meals := range s.res.EatsBy {
			if meals < c.MealsEach {
				ok = false
				break
			}
		}
		tr := trialResult{ok: ok, jain: stats.JainIndex(s.res.EatsBy), seed: seed}
		worlds.put(s)
		return tr, nil
	})
	if err != nil {
		return nil, err
	}
	out := &LockoutResult{WorstJainIndex: 1}
	for _, tr := range perTrial {
		out.Proportion.Add(tr.ok)
		if tr.jain < out.WorstJainIndex {
			out.WorstJainIndex = tr.jain
		}
		if !tr.ok {
			out.Failures = append(out.Failures, tr.seed)
		}
	}
	return out, nil
}

// DistinctNumberBound returns the lower bound used in the proof of Theorem 3:
// the probability that k independent uniform draws from [1, m] are pairwise
// distinct, m!/(m^k (m−k)!). It panics if k > m (the paper requires m >= k).
func DistinctNumberBound(m, k int) float64 {
	if k > m {
		panic(fmt.Sprintf("verify: DistinctNumberBound requires k <= m, got k=%d m=%d", k, m))
	}
	if k <= 1 {
		return 1
	}
	p := 1.0
	for i := 0; i < k; i++ {
		p *= float64(m-i) / float64(m)
	}
	return p
}

// EstimateDistinctNumberProbability estimates, by simulation, the probability
// that k independent uniform draws from [1, m] are pairwise distinct. It is
// used to validate DistinctNumberBound against an independent computation.
func EstimateDistinctNumberProbability(m, k int, trials int, seed uint64) float64 {
	if trials <= 0 {
		trials = 100_000
	}
	rng := prng.New(seed)
	hits := 0
	seen := make(map[int]bool, k)
	for t := 0; t < trials; t++ {
		for key := range seen {
			delete(seen, key)
		}
		distinct := true
		for i := 0; i < k; i++ {
			v := rng.IntRange(1, m)
			if seen[v] {
				distinct = false
				break
			}
			seen[v] = true
		}
		if distinct {
			hits++
		}
	}
	return float64(hits) / float64(trials)
}

// Section3Bound returns the paper's lower bound for the probability that the
// fair approximation of the Section 3 scheduler succeeds forever:
// 1/4 · Π_{k≥1}(1 − p^k) ≥ 1/4 · (1 − p − p²), which is at least 1/16 for
// p ≤ 1/2.
func Section3Bound(p float64) float64 {
	if p < 0 || p >= 1 {
		return 0
	}
	return 0.25 * (1 - p - p*p)
}

// SymmetryReport is the result of a symmetry audit.
type SymmetryReport struct {
	// IdenticalInitialStates reports whether all philosophers and all forks
	// start in identical states.
	IdenticalInitialStates bool
	// UsesSharedGlobals reports whether the algorithm touched any shared
	// global register during a probe run (full distribution forbids it).
	UsesSharedGlobals bool
	// Details carries human-readable findings.
	Details []string
}

// Symmetric is the overall verdict: identical initial states and no shared
// state beyond the forks.
func (r SymmetryReport) Symmetric() bool {
	return r.IdenticalInitialStates && !r.UsesSharedGlobals
}

// AuditSymmetry checks the paper's symmetry and full-distribution conditions
// for an algorithm on a topology: all philosophers and forks must start in the
// same state, and a probe run must not use any shared variable other than the
// forks themselves.
func AuditSymmetry(topo *graph.Topology, prog sim.Program, seed uint64) SymmetryReport {
	var rep SymmetryReport
	w := sim.NewWorld(topo)
	prog.Init(w)

	rep.IdenticalInitialStates = true
	for p := 1; p < len(w.Phils); p++ {
		if w.Phils[p] != w.Phils[0] {
			rep.IdenticalInitialStates = false
			//dplint:ok hotalloc cold path: the symmetry audit runs once per algorithm, not per trial
			rep.Details = append(rep.Details, fmt.Sprintf("philosopher %d starts in a different state than philosopher 0", p))
			break
		}
	}
	for f := 1; f < len(w.Forks); f++ {
		if w.Forks[f].NR != w.Forks[0].NR || w.Forks[f].Holder != w.Forks[0].Holder {
			rep.IdenticalInitialStates = false
			//dplint:ok hotalloc cold path: the symmetry audit runs once per algorithm, not per trial
			rep.Details = append(rep.Details, fmt.Sprintf("fork %d starts in a different state than fork 0", f))
			break
		}
	}
	if len(w.Globals) > 0 {
		for _, g := range w.Globals {
			if g != 0 {
				rep.UsesSharedGlobals = true
			}
		}
	}

	// Probe run: any write to a shared global register is a violation of full
	// distribution.
	rng := prng.New(seed)
	sched := sim.SchedulerFunc{
		SchedulerName: "audit-round-robin",
		NextFunc: func(w *sim.World) graph.PhilID {
			return graph.PhilID(w.Step % int64(len(w.Phils)))
		},
	}
	res, err := sim.RunWorld(w, prog, sched, rng, sim.RunOptions{MaxSteps: 5000})
	if err != nil {
		rep.Details = append(rep.Details, "probe run failed: "+err.Error())
		return rep
	}
	for _, g := range res.Final.Globals {
		if g != 0 {
			rep.UsesSharedGlobals = true
		}
	}
	if len(res.Final.Globals) > 0 && !rep.UsesSharedGlobals {
		// Globals allocated but never set to a non-zero value still indicate
		// shared state (for example a monitor token that happened to be free
		// at the end); report it.
		rep.UsesSharedGlobals = true
	}
	if rep.UsesSharedGlobals {
		rep.Details = append(rep.Details, "algorithm uses shared global registers (not fully distributed)")
	}
	return rep
}

// AlgorithmOptionsForTheorem3 returns the algorithm options used by the
// Theorem 3 experiments for a given m multiplier: m = multiplier × k, so the
// DistinctNumberBound can be swept.
func AlgorithmOptionsForTheorem3(topo *graph.Topology, multiplier int) algo.Options {
	if multiplier < 1 {
		multiplier = 1
	}
	return algo.Options{M: topo.NumForks() * multiplier}
}

// TheoremBoundGap quantifies how conservative the Theorem 3 bound is for a
// given m and k: the ratio between the exact distinct-draw probability and 1.
// It is exported for the bound-sweep experiment (E-B2).
func TheoremBoundGap(m, k int) float64 {
	return math.Max(0, 1-DistinctNumberBound(m, k))
}

package verify

import (
	"math"
	"testing"

	"repro/internal/algo"
	"repro/internal/graph"
	"repro/internal/prng"
	"repro/internal/sched"
	"repro/internal/sim"
)

func randomSched(rng *prng.Source) sim.Scheduler { return sched.NewUniformRandom(rng) }
func roundRobinSched(*prng.Source) sim.Scheduler { return sched.NewRoundRobin() }

func TestDistinctNumberBound(t *testing.T) {
	t.Parallel()
	if got := DistinctNumberBound(5, 1); got != 1 {
		t.Errorf("k=1 bound = %v, want 1", got)
	}
	// m=3, k=3: 3!/3^3 = 6/27.
	if got, want := DistinctNumberBound(3, 3), 6.0/27.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("bound(3,3) = %v, want %v", got, want)
	}
	// m=6, k=3: (6*5*4)/6^3 = 120/216.
	if got, want := DistinctNumberBound(6, 3), 120.0/216.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("bound(6,3) = %v, want %v", got, want)
	}
	// Larger m gives a larger probability of distinct numbers.
	if DistinctNumberBound(12, 3) <= DistinctNumberBound(3, 3) {
		t.Error("bound should increase with m")
	}
}

func TestDistinctNumberBoundPanicsWhenKExceedsM(t *testing.T) {
	t.Parallel()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for k > m")
		}
	}()
	DistinctNumberBound(2, 3)
}

func TestDistinctNumberBoundMatchesSimulation(t *testing.T) {
	t.Parallel()
	for _, tc := range []struct{ m, k int }{{3, 3}, {6, 3}, {10, 4}} {
		analytic := DistinctNumberBound(tc.m, tc.k)
		estimated := EstimateDistinctNumberProbability(tc.m, tc.k, 200_000, 7)
		if math.Abs(analytic-estimated) > 0.01 {
			t.Errorf("m=%d k=%d: analytic %v vs estimated %v", tc.m, tc.k, analytic, estimated)
		}
	}
}

func TestSection3Bound(t *testing.T) {
	t.Parallel()
	// For p <= 1/2 the bound is at least 1/16.
	if got := Section3Bound(0.5); got < 1.0/16.0-1e-12 {
		t.Errorf("Section3Bound(0.5) = %v, want >= 1/16", got)
	}
	if got := Section3Bound(0); got != 0.25 {
		t.Errorf("Section3Bound(0) = %v, want 0.25", got)
	}
	if Section3Bound(-1) != 0 || Section3Bound(1) != 0 {
		t.Error("out-of-range p should give 0")
	}
}

func TestProgressCheckGDP1OnFigure1Topologies(t *testing.T) {
	t.Parallel()
	// Theorem 3, Monte-Carlo form: GDP1 makes progress on every Figure 1
	// topology under random fair scheduling, in every trial.
	for _, topo := range graph.Figure1() {
		prog, err := algo.New("GDP1", algo.Options{})
		if err != nil {
			t.Fatal(err)
		}
		res, err := ProgressCheck{
			Topology:  topo,
			Algorithm: prog,
			Scheduler: randomSched,
			Trials:    30,
			MaxSteps:  50_000,
			Seed:      11,
		}.Run()
		if err != nil {
			t.Fatal(err)
		}
		if !res.Passed() {
			t.Errorf("GDP1 failed to progress on %s in trials with seeds %v", topo.Name(), res.Failures)
		}
		if res.StepsToFirstMeal.Mean() <= 0 {
			t.Errorf("first-meal statistics missing for %s", topo.Name())
		}
	}
}

func TestProgressCheckDetectsDeadlock(t *testing.T) {
	t.Parallel()
	// The naive baseline deadlocks under round-robin; the progress check must
	// report the failures rather than hide them.
	res, err := ProgressCheck{
		Topology:  graph.Ring(5),
		Algorithm: algo.NewNaive(),
		Scheduler: roundRobinSched,
		Trials:    5,
		MaxSteps:  20_000,
		Seed:      3,
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Passed() {
		t.Error("progress check passed for the deadlocking naive baseline")
	}
}

func TestLockoutCheckGDP2(t *testing.T) {
	t.Parallel()
	prog, err := algo.New("GDP2", algo.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := LockoutCheck{
		Topology:  graph.Figure1A(),
		Algorithm: prog,
		Scheduler: randomSched,
		Trials:    10,
		MaxSteps:  150_000,
		MealsEach: 1,
		Seed:      5,
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Passed() {
		t.Errorf("GDP2 lockout check failed for seeds %v", res.Failures)
	}
	if res.WorstJainIndex <= 0 || res.WorstJainIndex > 1 {
		t.Errorf("implausible Jain index %v", res.WorstJainIndex)
	}
}

func TestAuditSymmetryPaperAlgorithms(t *testing.T) {
	t.Parallel()
	topo := graph.Figure1A()
	for _, name := range []string{"LR1", "LR2", "GDP1", "GDP2"} {
		prog, err := algo.New(name, algo.Options{})
		if err != nil {
			t.Fatal(err)
		}
		rep := AuditSymmetry(topo, prog, 3)
		if !rep.Symmetric() {
			t.Errorf("%s should pass the symmetry audit: %+v", name, rep)
		}
	}
}

func TestAuditSymmetryRejectsCentralizedBaselines(t *testing.T) {
	t.Parallel()
	topo := graph.Ring(5)
	for _, name := range []string{"central-monitor", "ticket-box"} {
		prog, err := algo.New(name, algo.Options{})
		if err != nil {
			t.Fatal(err)
		}
		rep := AuditSymmetry(topo, prog, 3)
		if rep.Symmetric() {
			t.Errorf("%s uses shared state and must fail the symmetry audit", name)
		}
	}
}

func TestAlgorithmOptionsForTheorem3(t *testing.T) {
	t.Parallel()
	topo := graph.Ring(4)
	if got := AlgorithmOptionsForTheorem3(topo, 3).M; got != 12 {
		t.Errorf("M = %d, want 12", got)
	}
	if got := AlgorithmOptionsForTheorem3(topo, 0).M; got != 4 {
		t.Errorf("M with zero multiplier = %d, want 4", got)
	}
	if gap := TheoremBoundGap(4, 4); gap <= 0 || gap >= 1 {
		t.Errorf("TheoremBoundGap(4,4) = %v out of (0,1)", gap)
	}
}

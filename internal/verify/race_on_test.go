//go:build race

package verify

// raceEnabled reports that this test binary runs under the race detector,
// whose instrumentation (and sync.Pool's deliberate cache randomization)
// makes allocation counts meaningless.
const raceEnabled = true

package sim

import (
	"bytes"
	"sync"

	"repro/internal/graph"
)

// canonScratchPool recycles the candidate-image buffer of AppendCanonicalKey
// so canonicalization allocates nothing in steady state even when many
// goroutines encode keys concurrently.
var canonScratchPool = sync.Pool{New: func() any { return new([]byte) }}

// AppendCanonicalKey appends the orbit-canonical encoding of the world under
// the canonicalizer's automorphism group: the lexicographically smallest
// AppendKey image over all group elements. Two worlds produce the same
// canonical key exactly when some enumerated automorphism maps one onto the
// other, so interning canonical keys quotients the state space by the group.
//
// With a nil or trivial canonicalizer — or when the world carries Globals,
// which have no per-philosopher structure to permute — the result is exactly
// AppendKey, so the unreduced path is byte-identical. The hot path encodes
// each non-identity image into a pooled scratch buffer and keeps the
// smallest; no per-state allocation.
func (w *World) AppendCanonicalKey(c *graph.OrbitCanonicalizer, buf []byte) []byte {
	if c == nil || c.Trivial() || len(w.Globals) > 0 {
		return w.AppendKey(buf)
	}
	start := len(buf)
	buf = w.AppendKey(buf) // the identity image
	sp := canonScratchPool.Get().(*[]byte)
	scratch := *sp
	perms := c.Perms()
	for i := 1; i < len(perms); i++ {
		scratch = w.appendPermutedKey(&perms[i], scratch[:0])
		if bytes.Compare(scratch, buf[start:]) < 0 {
			buf = append(buf[:start], scratch...)
		}
	}
	*sp = scratch
	canonScratchPool.Put(sp)
	return buf
}

// appendPermutedKey appends the AppendKey encoding of the world's image
// under one automorphism, without materializing the permuted world: the
// destination-indexed loop reads each field through the element's source
// tables and maps state-internal references (selected fork, fork holder,
// adjacency slots) through the image tables. The byte layout is identical
// to AppendKey's, so the identity element reproduces AppendKey exactly.
func (w *World) appendPermutedKey(el *graph.AutPerm, buf []byte) []byte {
	for q := range w.Phils {
		p := &w.Phils[el.PhilSrc[q]]
		flags := byte(p.Phase) & 0x3
		if p.HasFirst {
			flags |= 1 << 2
		}
		if p.HasSecond {
			flags |= 1 << 3
		}
		if p.Crashed {
			flags |= 1 << 4
		}
		buf = append(buf, p.PC, flags)
		first := p.First
		if first != graph.NoFork {
			first = graph.ForkID(el.ForkImg[first])
		}
		buf = appendUvarint(buf, uint64(first+1))
		buf = appendVarint(buf, p.Aux[0])
		buf = appendVarint(buf, p.Aux[1])
	}
	for g := range w.Forks {
		f := &w.Forks[el.ForkSrc[g]]
		holder := f.Holder
		if holder != graph.NoPhil {
			holder = graph.PhilID(el.PhilImg[holder])
		}
		buf = appendUvarint(buf, uint64(holder+1))
		buf = appendUvarint(buf, uint64(f.NR))
		base := w.Topo.SlotBase(graph.ForkID(g))
		deg := w.Topo.Degree(graph.ForkID(g))
		var bits, nbits byte
		for s := 0; s < deg; s++ {
			if w.req[el.SlotSrc[base+s]] {
				bits |= 1 << nbits
			}
			if nbits++; nbits == 8 {
				buf = append(buf, bits)
				bits, nbits = 0, 0
			}
		}
		if nbits > 0 {
			buf = append(buf, bits)
		}
		buf = appendPermutedGuestBookRanks(buf, w.used, el.SlotSrc[base:base+deg])
	}
	buf = appendUvarint(buf, uint64(len(w.Globals)))
	for _, gv := range w.Globals {
		buf = appendVarint(buf, gv)
	}
	if w.pending != nil {
		for s := range w.pending.slots {
			if v := w.pending.slots[el.SlotSrc[s]]; v != 0 {
				buf = appendUvarint(buf, uint64(s+1))
				buf = append(buf, v)
			}
		}
	}
	return buf
}

// appendPermutedGuestBookRanks is appendGuestBookRanks reading the fork's
// guest-book window through a slot-source table instead of a contiguous
// slice. Ranks count distinct smaller non-negative entries, so they are the
// plain ranks carried to their permuted slots.
func appendPermutedGuestBookRanks(buf []byte, used []int64, src []int32) []byte {
	for _, si := range src {
		ui := used[si]
		if ui < 0 {
			buf = append(buf, 0)
			continue
		}
		rank := 0
		for j, sj := range src {
			uj := used[sj]
			if uj < 0 || uj >= ui {
				continue
			}
			// Count each distinct smaller value once (first occurrence only).
			first := true
			for k := 0; k < j; k++ {
				if used[src[k]] == uj {
					first = false
					break
				}
			}
			if first {
				rank++
			}
		}
		buf = append(buf, byte(rank+1))
	}
	return buf
}

package sim

import (
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/prng"
)

// toyProgram is a deliberately simple symmetric program used to exercise the
// engine: a hungry philosopher takes its left fork, then its right fork
// (releasing and retrying when blocked), eats, and releases. It is NOT a
// correct dining-philosopher algorithm (it can deadlock on a ring if every
// philosopher holds its left fork), which also makes it useful for testing
// detectors.
type toyProgram struct{}

func (toyProgram) Name() string    { return "toy" }
func (toyProgram) Init(*World)     {}
func (toyProgram) Symmetric() bool { return true }
func (toyProgram) Outcomes(w *World, p graph.PhilID, buf []Outcome) []Outcome {
	switch w.Phils[p].PC {
	case 1: // thinking
		return ThinkOutcomes(w, p, buf, 2)
	case 2: // take left
		return append(buf, Outcome{Prob: 1, Label: "take left", Apply: toyApplyTakeLeft})
	case 3: // take right or release
		return append(buf, Outcome{Prob: 1, Label: "take right", Apply: toyApplyTakeRight})
	case 4: // finish eating
		return append(buf, Outcome{Prob: 1, Label: "finish", Apply: toyApplyFinish})
	default:
		panic("toy: bad pc")
	}
}

func toyApplyTakeLeft(w *World, p graph.PhilID, _ int64) {
	w.Commit(p, w.Topo.Left(p))
	if w.TryTake(p, w.Topo.Left(p)) {
		w.MarkHoldingFirst(p)
		w.Phils[p].PC = 3
	}
}

func toyApplyTakeRight(w *World, p graph.PhilID, _ int64) {
	st := &w.Phils[p]
	right := w.Topo.OtherFork(p, st.First)
	if w.TryTake(p, right) {
		w.MarkHoldingSecond(p)
		w.StartEating(p)
		st.PC = 4
	} else {
		w.Release(p, st.First)
		st.PC = 2
	}
}

func toyApplyFinish(w *World, p graph.PhilID, _ int64) {
	w.FinishEating(p)
	w.ReleaseAll(p)
	w.BackToThinking(p, 1)
}

// roundRobin is a minimal fair scheduler for engine tests.
type roundRobin struct{ next int }

func (*roundRobin) Name() string { return "test-round-robin" }
func (s *roundRobin) Next(w *World) graph.PhilID {
	p := graph.PhilID(s.next % len(w.Phils))
	s.next++
	return p
}

func TestRunToyOnPathMakesProgress(t *testing.T) {
	t.Parallel()
	topo := graph.Path(3) // acyclic: the toy program cannot deadlock
	res, err := Run(topo, toyProgram{}, &roundRobin{}, prng.New(1), RunOptions{
		MaxSteps:         5000,
		CheckInvariants:  true,
		ValidateOutcomes: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Progress() {
		t.Fatal("toy program on a path made no progress")
	}
	if res.TotalEats < 10 {
		t.Errorf("suspiciously few meals: %d", res.TotalEats)
	}
	if res.FirstEatStep < 0 {
		t.Error("FirstEatStep not recorded")
	}
	var sum int64
	for _, e := range res.EatsBy {
		sum += e
	}
	if sum != res.TotalEats {
		t.Errorf("per-philosopher meals %d do not add up to total %d", sum, res.TotalEats)
	}
}

func TestRunStopsAfterTotalEats(t *testing.T) {
	t.Parallel()
	res, err := Run(graph.Path(4), toyProgram{}, &roundRobin{}, prng.New(2), RunOptions{
		MaxSteps:           100000,
		StopAfterTotalEats: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Reason != StopTotalEats {
		t.Errorf("stop reason %q, want %q", res.Reason, StopTotalEats)
	}
	if res.TotalEats != 5 {
		t.Errorf("TotalEats = %d, want exactly 5", res.TotalEats)
	}
}

func TestRunStopsWhenAllHaveEaten(t *testing.T) {
	t.Parallel()
	res, err := Run(graph.Path(4), toyProgram{}, &roundRobin{}, prng.New(3), RunOptions{
		MaxSteps:             100000,
		StopWhenAllHaveEaten: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Reason != StopAllAte {
		t.Errorf("stop reason %q, want %q", res.Reason, StopAllAte)
	}
	for p, e := range res.EatsBy {
		if e == 0 {
			t.Errorf("philosopher %d has not eaten at stop", p)
		}
	}
	if !res.LockoutFree() {
		t.Errorf("run that fed everyone reports starvation: %v", res.Starved)
	}
}

func TestRunStopsWhenSpecificPhilEats(t *testing.T) {
	t.Parallel()
	res, err := Run(graph.Path(5), toyProgram{}, &roundRobin{}, prng.New(4), RunOptions{
		MaxSteps:         100000,
		StopWhenPhilEats: true,
		StopPhil:         3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Reason != StopPhilAte {
		t.Errorf("stop reason %q, want %q", res.Reason, StopPhilAte)
	}
	if res.EatsBy[3] == 0 {
		t.Error("philosopher 3 did not eat at stop")
	}
}

func TestRunDetectsStarvationUnderUnfairScheduler(t *testing.T) {
	t.Parallel()
	// A scheduler that only ever schedules philosophers 0 and 1 of a path of
	// 3: philosopher 2 never even becomes hungry, so it is not "starved" in
	// the paper's sense; but a scheduler that schedules everyone once and then
	// ignores philosopher 2 leaves it hungry forever.
	calls := 0
	unfair := SchedulerFunc{
		SchedulerName: "unfair",
		NextFunc: func(w *World) graph.PhilID {
			calls++
			if calls <= 3 {
				return graph.PhilID(calls - 1) // let everyone become hungry
			}
			return graph.PhilID(calls % 2)
		},
	}
	res, err := Run(graph.Path(3), toyProgram{}, unfair, prng.New(5), RunOptions{MaxSteps: 2000})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, p := range res.Starved {
		if p == 2 {
			found = true
		}
	}
	if !found {
		t.Errorf("expected philosopher 2 to be starved, got %v", res.Starved)
	}
	if res.MaxScheduleGap < 1000 {
		t.Errorf("MaxScheduleGap = %d, expected a large gap for the ignored philosopher", res.MaxScheduleGap)
	}
}

func TestRunRecordsEvents(t *testing.T) {
	t.Parallel()
	var events []Event
	rec := RecorderFunc(func(e Event) { events = append(events, e) })
	_, err := Run(graph.Path(2), toyProgram{}, &roundRobin{}, prng.New(6), RunOptions{
		MaxSteps: 200,
		Recorder: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("no events recorded")
	}
	kinds := map[EventKind]bool{}
	for _, e := range events {
		kinds[e.Kind] = true
	}
	for _, want := range []EventKind{EventScheduled, EventBecameHungry, EventTookFork, EventStartEat, EventDoneEat, EventReleasedFork} {
		if !kinds[want] {
			t.Errorf("missing event kind %v", want)
		}
	}
}

func TestRunRejectsBadScheduler(t *testing.T) {
	t.Parallel()
	bad := SchedulerFunc{SchedulerName: "bad", NextFunc: func(*World) graph.PhilID { return 99 }}
	if _, err := Run(graph.Path(2), toyProgram{}, bad, prng.New(1), RunOptions{MaxSteps: 10}); err == nil {
		t.Fatal("Run accepted an out-of-range philosopher from the scheduler")
	}
}

func TestRunRejectsNilArguments(t *testing.T) {
	t.Parallel()
	if _, err := Run(nil, toyProgram{}, &roundRobin{}, prng.New(1), RunOptions{}); err == nil {
		t.Error("Run accepted nil topology")
	}
	if _, err := Run(graph.Path(2), nil, &roundRobin{}, prng.New(1), RunOptions{}); err == nil {
		t.Error("Run accepted nil program")
	}
	if _, err := Run(graph.Path(2), toyProgram{}, nil, prng.New(1), RunOptions{}); err == nil {
		t.Error("Run accepted nil scheduler")
	}
	if _, err := Run(graph.Path(2), toyProgram{}, &roundRobin{}, nil, RunOptions{}); err == nil {
		t.Error("Run accepted nil rng")
	}
}

func TestRunIsDeterministicForSeed(t *testing.T) {
	t.Parallel()
	run := func(seed uint64) *Result {
		res, err := Run(graph.Ring(4), toyProgram{}, &roundRobin{}, prng.New(seed), RunOptions{
			MaxSteps: 3000,
			Hunger:   BernoulliHunger{P: 0.5},
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(11), run(11)
	if a.TotalEats != b.TotalEats || a.Steps != b.Steps || a.FirstEatStep != b.FirstEatStep {
		t.Error("identical seeds produced different runs")
	}
}

func TestHungerModels(t *testing.T) {
	t.Parallel()
	w := NewWorld(graph.Ring(3))
	if got := (AlwaysHungry{}).HungerProbability(w, 0); got != 1 {
		t.Errorf("AlwaysHungry probability = %v", got)
	}
	limited := NeverHungryAgainAfter{Limit: 2}
	if got := limited.HungerProbability(w, 0); got != 1 {
		t.Errorf("limited appetite before limit = %v, want 1", got)
	}
	w.EatsBy[0] = 2
	if got := limited.HungerProbability(w, 0); got != 0 {
		t.Errorf("limited appetite at limit = %v, want 0", got)
	}
	if got := (BernoulliHunger{P: 0.3}).HungerProbability(w, 0); math.Abs(got-0.3) > 1e-12 {
		t.Errorf("Bernoulli probability = %v", got)
	}
	if (AlwaysHungry{}).Name() == "" || limited.Name() == "" || (BernoulliHunger{P: 0.3}).Name() == "" {
		t.Error("hunger models should have names")
	}
}

func TestThinkOutcomes(t *testing.T) {
	t.Parallel()
	w := NewWorld(graph.Ring(3))
	w.Hunger = BernoulliHunger{P: 0.25}
	got := ThinkOutcomes(w, 0, nil, 2)
	if len(got) != 2 {
		t.Fatalf("expected 2 outcomes for fractional hunger, got %d", len(got))
	}
	if err := ValidateOutcomes(got); err != nil {
		t.Error(err)
	}
	w.Hunger = AlwaysHungry{}
	if got := ThinkOutcomes(w, 0, nil, 2); len(got) != 1 {
		t.Errorf("AlwaysHungry should give a single outcome, got %d", len(got))
	}
	w.Hunger = NeverHungryAgainAfter{Limit: 0}
	if got := ThinkOutcomes(w, 0, nil, 2); len(got) != 1 || got[0].Label != "keep thinking" {
		t.Errorf("zero appetite should give a single keep-thinking outcome")
	}
	// The hungry outcome applies the standard bookkeeping and jumps to the
	// requested PC.
	w.Hunger = AlwaysHungry{}
	hungry := ThinkOutcomes(w, 0, nil, 7)
	hungry[0].Do(w, 0)
	if !w.IsHungry(0) || w.Phils[0].PC != 7 {
		t.Errorf("hungry outcome did not apply: phase %v pc %d", w.PhaseOf(0), w.Phils[0].PC)
	}
}

func TestValidateOutcomes(t *testing.T) {
	t.Parallel()
	noop := func(*World, graph.PhilID, int64) {}
	ok := []Outcome{{Prob: 0.5, Apply: noop}, {Prob: 0.5, Apply: noop}}
	if err := ValidateOutcomes(ok); err != nil {
		t.Errorf("valid outcomes rejected: %v", err)
	}
	if err := ValidateOutcomes(nil); err == nil {
		t.Error("empty outcome set accepted")
	}
	if err := ValidateOutcomes([]Outcome{{Prob: 0.4, Apply: noop}}); err == nil {
		t.Error("probabilities not summing to 1 accepted")
	}
	if err := ValidateOutcomes([]Outcome{{Prob: 1, Apply: nil}}); err == nil {
		t.Error("nil Apply accepted")
	}
	if err := ValidateOutcomes([]Outcome{{Prob: -1, Apply: noop}, {Prob: 2, Apply: noop}}); err == nil {
		t.Error("negative probability accepted")
	}
}

func TestSampleOutcomeDistribution(t *testing.T) {
	t.Parallel()
	rng := prng.New(77)
	counts := map[string]int{}
	noop := func(*World, graph.PhilID, int64) {}
	outcomes := []Outcome{
		{Prob: 0.75, Label: "a", Apply: noop},
		{Prob: 0.25, Label: "b", Apply: noop},
	}
	const n = 20000
	for i := 0; i < n; i++ {
		counts[SampleOutcome(outcomes, rng).Label]++
	}
	fracA := float64(counts["a"]) / n
	if math.Abs(fracA-0.75) > 0.02 {
		t.Errorf("outcome 'a' frequency %v, want about 0.75", fracA)
	}
}

func TestEventStrings(t *testing.T) {
	t.Parallel()
	e := Event{Step: 3, Kind: EventTookFork, Phil: 1, Fork: 2}
	if e.String() == "" {
		t.Error("empty event string")
	}
	e2 := Event{Step: 3, Kind: EventBecameHungry, Phil: 1, Fork: graph.NoFork}
	if e2.String() == "" {
		t.Error("empty event string")
	}
	for k := EventScheduled; k <= EventAux; k++ {
		if k.String() == "" {
			t.Errorf("event kind %d has empty string", k)
		}
	}
}

// Package sim implements the execution model of the paper: a probabilistic
// automaton in the sense of Segala and Lynch, specialised to generalized
// dining-philosopher systems.
//
// A World holds the complete instantaneous state of a system: one PhilState
// per philosopher and one ForkState per fork (plus optional shared "globals"
// used only by the non-distributed baseline algorithms). Philosopher programs
// (package algo) describe, for the currently scheduled philosopher, the set of
// possible next atomic actions as Outcomes with probabilities; an adversary
// (a Scheduler) resolves the nondeterministic choice of which philosopher
// moves, and a PRNG (or, in the model checker, exhaustive branching) resolves
// the probabilistic choice among outcomes.
//
// Worlds are plain values: cloning copies all state, and Key returns a
// canonical encoding of the protocol-relevant state so that the model checker
// can identify revisited states.
package sim

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/graph"
)

// Phase is the coarse activity of a philosopher, as used in the paper's
// progress and lockout statements: thinking, in the trying section (hungry),
// or eating.
type Phase uint8

const (
	// Thinking means the philosopher is outside the trying section.
	Thinking Phase = iota
	// Hungry means the philosopher is in the trying section (steps 2..5 of
	// the algorithms): it wants to eat and is competing for forks.
	Hungry
	// Eating means the philosopher holds both forks and is eating.
	Eating
)

// String implements fmt.Stringer.
func (p Phase) String() string {
	switch p {
	case Thinking:
		return "thinking"
	case Hungry:
		return "hungry"
	case Eating:
		return "eating"
	default:
		return fmt.Sprintf("Phase(%d)", uint8(p))
	}
}

// PhilState is the local state of one philosopher. All fields are values so
// that copying a PhilState copies the state.
type PhilState struct {
	// PC is the algorithm-specific program counter (line number of the
	// pseudo-code being executed next).
	PC uint8
	// Phase is the coarse phase; kept in sync by the World helpers.
	Phase Phase
	// First is the fork currently selected as "fork" in the pseudo-code
	// (the first fork to acquire), or graph.NoFork when no selection is
	// active.
	First graph.ForkID
	// HasFirst reports whether the philosopher currently holds First.
	HasFirst bool
	// HasSecond reports whether the philosopher currently holds the fork
	// opposite to First.
	HasSecond bool
	// Aux is algorithm-specific scratch state (for example the ticket held by
	// a philosopher in the ticket-box baseline). Included in Key.
	Aux [2]int64
}

// ForkState is the state of one fork. Req and Used are indexed by the
// adjacency slot of each philosopher sharing the fork
// (graph.Topology.Slot).
type ForkState struct {
	// Holder is the philosopher currently holding the fork, or graph.NoPhil.
	Holder graph.PhilID
	// NR is the fork's number field used by GDP1/GDP2 (0 initially).
	NR int
	// Req[slot] reports whether the philosopher at that adjacency slot has an
	// outstanding request in the fork's request list r (LR2/GDP2).
	Req []bool
	// Used[slot] is the step at which the philosopher at that slot last
	// signed the fork's guest book g, or -1 if never (LR2/GDP2). Only the
	// relative order of entries matters to the algorithms.
	Used []int64
}

// World is the complete state of a generalized dining-philosopher system
// together with run-time bookkeeping (metrics and the event recorder), which
// is excluded from Clone-equality and Key.
type World struct {
	Topo  *graph.Topology
	Phils []PhilState
	Forks []ForkState
	// Globals is shared auxiliary state used only by the non-distributed
	// baseline algorithms (central monitor, ticket box). Empty for the
	// symmetric fully distributed algorithms.
	Globals []int64
	// Step counts atomic actions executed so far.
	Step int64
	// Hunger decides when thinking philosophers become hungry (the workload).
	// It is policy, not protocol state, and is excluded from Key.
	Hunger HungerModel

	// Metrics (not part of Key):

	// TotalEats is the number of completed meals.
	TotalEats int64
	// EatsBy[p] is the number of completed meals of philosopher p.
	EatsBy []int64
	// FirstEatStep is the step at which the first meal started, or -1.
	FirstEatStep int64
	// FirstEatBy[p] is the step at which philosopher p first started eating,
	// or -1.
	FirstEatBy []int64
	// HungrySince[p] is the step at which philosopher p last became hungry,
	// or -1 if it is not currently hungry.
	HungrySince []int64
	// TotalWait accumulates, over completed meals, the number of steps between
	// becoming hungry and starting to eat.
	TotalWait int64
	// ScheduledCount[p] counts how many times p was scheduled.
	ScheduledCount []int64
	// LastScheduled[p] is the step at which p was last scheduled, or -1.
	// Adversaries use it to spread their harmless "idle" scheduling evenly so
	// that fairness pressure never builds up behind their back.
	LastScheduled []int64

	rec Recorder
}

// NewWorld returns a World in the initial state required by the paper's
// symmetry condition: every philosopher thinking with program counter 1 and no
// selection, every fork free with nr = 0, empty request lists and guest books.
func NewWorld(topo *graph.Topology) *World {
	n := topo.NumPhilosophers()
	k := topo.NumForks()
	w := &World{
		Topo:           topo,
		Phils:          make([]PhilState, n),
		Forks:          make([]ForkState, k),
		Step:           0,
		Hunger:         AlwaysHungry{},
		EatsBy:         make([]int64, n),
		FirstEatStep:   -1,
		FirstEatBy:     make([]int64, n),
		HungrySince:    make([]int64, n),
		ScheduledCount: make([]int64, n),
	}
	w.LastScheduled = make([]int64, n)
	for p := range w.Phils {
		w.Phils[p] = PhilState{PC: 1, Phase: Thinking, First: graph.NoFork}
		w.FirstEatBy[p] = -1
		w.HungrySince[p] = -1
		w.LastScheduled[p] = -1
	}
	for f := range w.Forks {
		deg := topo.Degree(graph.ForkID(f))
		w.Forks[f] = ForkState{
			Holder: graph.NoPhil,
			NR:     0,
			Req:    make([]bool, deg),
			Used:   make([]int64, deg),
		}
		for i := range w.Forks[f].Used {
			w.Forks[f].Used[i] = -1
		}
	}
	return w
}

// SetRecorder installs an event recorder (may be nil to disable recording).
func (w *World) SetRecorder(r Recorder) { w.rec = r }

// Recorder returns the installed event recorder, or nil.
func (w *World) Recorder() Recorder { return w.rec }

// Clone returns a deep copy of the world sharing only the immutable topology
// and dropping the event recorder.
func (w *World) Clone() *World {
	c := &World{
		Topo:           w.Topo,
		Phils:          append([]PhilState(nil), w.Phils...),
		Forks:          make([]ForkState, len(w.Forks)),
		Globals:        append([]int64(nil), w.Globals...),
		Step:           w.Step,
		Hunger:         w.Hunger,
		TotalEats:      w.TotalEats,
		EatsBy:         append([]int64(nil), w.EatsBy...),
		FirstEatStep:   w.FirstEatStep,
		FirstEatBy:     append([]int64(nil), w.FirstEatBy...),
		HungrySince:    append([]int64(nil), w.HungrySince...),
		TotalWait:      w.TotalWait,
		ScheduledCount: append([]int64(nil), w.ScheduledCount...),
		LastScheduled:  append([]int64(nil), w.LastScheduled...),
	}
	for f := range w.Forks {
		src := &w.Forks[f]
		c.Forks[f] = ForkState{
			Holder: src.Holder,
			NR:     src.NR,
			Req:    append([]bool(nil), src.Req...),
			Used:   append([]int64(nil), src.Used...),
		}
	}
	return c
}

// Key returns a canonical encoding of the protocol-relevant state. Two worlds
// with equal keys are indistinguishable to every philosopher program: the
// encoding covers program counters, phases, fork selections and holdings,
// auxiliary registers, fork holders, nr values, request lists, globals, and
// the guest books up to order-preserving renaming of timestamps (only the
// relative order of guest-book entries per fork is observable).
func (w *World) Key() string {
	var b strings.Builder
	b.Grow(16*len(w.Phils) + 16*len(w.Forks))
	for i := range w.Phils {
		p := &w.Phils[i]
		fmt.Fprintf(&b, "p%d,%d,%d,%t,%t,%d,%d;", p.PC, p.Phase, p.First, p.HasFirst, p.HasSecond, p.Aux[0], p.Aux[1])
	}
	for i := range w.Forks {
		f := &w.Forks[i]
		fmt.Fprintf(&b, "f%d,%d,", f.Holder, f.NR)
		for _, r := range f.Req {
			if r {
				b.WriteByte('1')
			} else {
				b.WriteByte('0')
			}
		}
		b.WriteByte(',')
		for _, rank := range rankNormalize(f.Used) {
			fmt.Fprintf(&b, "%d.", rank)
		}
		b.WriteByte(';')
	}
	for _, g := range w.Globals {
		fmt.Fprintf(&b, "g%d;", g)
	}
	return b.String()
}

// rankNormalize maps the values of used to their rank order: -1 stays -1, and
// the remaining distinct values are replaced by 0, 1, 2, ... in increasing
// order. Guest-book semantics depend only on comparisons between entries of
// the same fork, so this keeps the state space finite for model checking.
func rankNormalize(used []int64) []int {
	distinct := make([]int64, 0, len(used))
	for _, u := range used {
		if u >= 0 {
			distinct = append(distinct, u)
		}
	}
	sort.Slice(distinct, func(i, j int) bool { return distinct[i] < distinct[j] })
	// Dedupe.
	uniq := distinct[:0]
	var last int64 = -1
	for i, u := range distinct {
		if i == 0 || u != last {
			uniq = append(uniq, u)
			last = u
		}
	}
	out := make([]int, len(used))
	for i, u := range used {
		if u < 0 {
			out[i] = -1
			continue
		}
		out[i] = sort.Search(len(uniq), func(j int) bool { return uniq[j] >= u })
	}
	return out
}

// --- Generic state queries used by schedulers, adversaries and detectors ---

// IsFree reports whether fork f is not held by any philosopher.
func (w *World) IsFree(f graph.ForkID) bool { return w.Forks[f].Holder == graph.NoPhil }

// HolderOf returns the philosopher holding fork f, or graph.NoPhil.
func (w *World) HolderOf(f graph.ForkID) graph.PhilID { return w.Forks[f].Holder }

// PhaseOf returns the phase of philosopher p.
func (w *World) PhaseOf(p graph.PhilID) Phase { return w.Phils[p].Phase }

// IsHungry reports whether philosopher p is in the trying section.
func (w *World) IsHungry(p graph.PhilID) bool { return w.Phils[p].Phase == Hungry }

// IsEating reports whether philosopher p is eating.
func (w *World) IsEating(p graph.PhilID) bool { return w.Phils[p].Phase == Eating }

// AnyEating reports whether some philosopher is eating.
func (w *World) AnyEating() bool {
	for p := range w.Phils {
		if w.Phils[p].Phase == Eating {
			return true
		}
	}
	return false
}

// AnyHungry reports whether some philosopher is in the trying section.
func (w *World) AnyHungry() bool {
	for p := range w.Phils {
		if w.Phils[p].Phase == Hungry {
			return true
		}
	}
	return false
}

// FirstForkOf returns the fork currently selected as first fork by p, or
// graph.NoFork.
func (w *World) FirstForkOf(p graph.PhilID) graph.ForkID { return w.Phils[p].First }

// SecondForkOf returns the fork opposite to p's current selection, or
// graph.NoFork if p has no selection.
func (w *World) SecondForkOf(p graph.PhilID) graph.ForkID {
	first := w.Phils[p].First
	if first == graph.NoFork {
		return graph.NoFork
	}
	return w.Topo.OtherFork(p, first)
}

// HoldsOnlyFirst reports whether p holds exactly its first fork.
func (w *World) HoldsOnlyFirst(p graph.PhilID) bool {
	return w.Phils[p].HasFirst && !w.Phils[p].HasSecond
}

// IsCommitted reports whether p has selected a first fork it does not yet
// hold — the "empty arrow" of the paper's figures.
func (w *World) IsCommitted(p graph.PhilID) bool {
	st := &w.Phils[p]
	return st.Phase == Hungry && st.First != graph.NoFork && !st.HasFirst
}

// CouldEatNext reports whether p holds its first fork and its second fork is
// currently free: scheduling p repeatedly from such a state leads to eating
// (used by livelock adversaries as the "dangerous" predicate).
func (w *World) CouldEatNext(p graph.PhilID) bool {
	if !w.HoldsOnlyFirst(p) {
		return false
	}
	second := w.SecondForkOf(p)
	return second != graph.NoFork && w.IsFree(second)
}

// HeldForks returns the forks currently held by p (0, 1 or 2 forks).
func (w *World) HeldForks(p graph.PhilID) []graph.ForkID {
	st := &w.Phils[p]
	var out []graph.ForkID
	if st.HasFirst {
		out = append(out, st.First)
	}
	if st.HasSecond {
		out = append(out, w.Topo.OtherFork(p, st.First))
	}
	return out
}

// NumHungry returns the number of philosophers in the trying section.
func (w *World) NumHungry() int {
	n := 0
	for p := range w.Phils {
		if w.Phils[p].Phase == Hungry {
			n++
		}
	}
	return n
}

// CheckInvariants verifies the structural invariants that every algorithm must
// preserve: fork holders hold adjacent forks, holder bookkeeping matches
// philosopher bookkeeping, a fork has at most one holder, and eating
// philosophers hold both forks. It returns a descriptive error on violation.
// It is used by tests and by the engine in debug mode.
func (w *World) CheckInvariants() error {
	holderSeen := make(map[graph.ForkID]graph.PhilID)
	for f := range w.Forks {
		h := w.Forks[f].Holder
		if h == graph.NoPhil {
			continue
		}
		if int(h) < 0 || int(h) >= len(w.Phils) {
			return fmt.Errorf("sim: fork %d held by out-of-range philosopher %d", f, h)
		}
		adjacent := false
		for _, fk := range w.Topo.Forks(h) {
			if fk == graph.ForkID(f) {
				adjacent = true
			}
		}
		if !adjacent {
			return fmt.Errorf("sim: fork %d held by non-adjacent philosopher %d", f, h)
		}
		holderSeen[graph.ForkID(f)] = h
	}
	for p := range w.Phils {
		st := &w.Phils[p]
		if st.HasSecond && !st.HasFirst {
			return fmt.Errorf("sim: philosopher %d holds second fork without first", p)
		}
		if st.HasFirst {
			if st.First == graph.NoFork {
				return fmt.Errorf("sim: philosopher %d marked holding first fork but has no selection", p)
			}
			if w.Forks[st.First].Holder != graph.PhilID(p) {
				return fmt.Errorf("sim: philosopher %d claims fork %d but fork holder is %d", p, st.First, w.Forks[st.First].Holder)
			}
		}
		if st.HasSecond {
			second := w.Topo.OtherFork(graph.PhilID(p), st.First)
			if w.Forks[second].Holder != graph.PhilID(p) {
				return fmt.Errorf("sim: philosopher %d claims second fork %d but fork holder is %d", p, second, w.Forks[second].Holder)
			}
		}
		if st.Phase == Eating && !(st.HasFirst && st.HasSecond) {
			return fmt.Errorf("sim: philosopher %d eating without both forks", p)
		}
	}
	// Every held fork's holder must acknowledge holding it.
	for f, h := range holderSeen {
		st := &w.Phils[h]
		owns := (st.HasFirst && st.First == f) ||
			(st.HasSecond && st.First != graph.NoFork && w.Topo.OtherFork(h, st.First) == f)
		if !owns {
			return fmt.Errorf("sim: fork %d lists holder %d but philosopher does not acknowledge it", f, h)
		}
	}
	return nil
}

// String renders a compact single-line description of the state, mainly for
// test failure messages. For full diagrams use package trace.
func (w *World) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "step %d |", w.Step)
	for p := range w.Phils {
		st := &w.Phils[p]
		fmt.Fprintf(&b, " P%d[%s pc%d", p, st.Phase, st.PC)
		if st.First != graph.NoFork {
			fmt.Fprintf(&b, " f%d", st.First)
			if st.HasFirst {
				b.WriteString("*")
			}
			if st.HasSecond {
				b.WriteString("*")
			}
		}
		b.WriteString("]")
	}
	b.WriteString(" |")
	for f := range w.Forks {
		fs := &w.Forks[f]
		fmt.Fprintf(&b, " f%d(nr%d", f, fs.NR)
		if fs.Holder != graph.NoPhil {
			fmt.Fprintf(&b, " P%d", fs.Holder)
		}
		b.WriteString(")")
	}
	return b.String()
}
